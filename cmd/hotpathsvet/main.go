// Command hotpathsvet is the repo's contract-enforcing static-analysis
// suite. It mechanically checks the invariants the fleet's correctness
// rests on — typed error classification, span lifecycle, batch-granular
// observability, lock-section discipline, and metric naming — that were
// previously enforced only by review.
//
// Two modes:
//
//	go run ./cmd/hotpathsvet ./...                 # standalone, local use
//	go vet -vettool=$(which hotpathsvet) ./...     # cmd/go vet-tool protocol (CI)
//
// Findings print in the standard vet shape (file:line:col: message) so
// editors pick them up; the exit status is 1 when there are findings.
// Suppress a deliberate contract exception with a reasoned directive on
// or directly above the line:
//
//	//hotpathsvet:ignore locksnapshot flush barrier: queues quiesce under the lock by design
//
// Run with -help for the list of analyzers and the contract each one
// enforces.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hotpaths/internal/analysis/batchclock"
	"hotpaths/internal/analysis/errstring"
	"hotpaths/internal/analysis/framework"
	"hotpaths/internal/analysis/locksnapshot"
	"hotpaths/internal/analysis/metricname"
	"hotpaths/internal/analysis/spanend"
)

var all = []*framework.Analyzer{
	batchclock.Analyzer,
	errstring.Analyzer,
	locksnapshot.Analyzer,
	metricname.Analyzer,
	spanend.Analyzer,
}

func main() {
	// cmd/go probes the tool with -V=full (version for the build-cache
	// key) and -flags (JSON list of tool flags vet should pass through)
	// before any analysis; both must be handled before normal flag
	// parsing since our flag set differs.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			framework.PrintVersionAndExit()
		case "-flags", "--flags":
			// All analyzers are always on under vet; no flags to expose.
			fmt.Println("[]")
			return
		}
	}

	fs := flag.NewFlagSet("hotpathsvet", flag.ExitOnError)
	includeTests := fs.Bool("test", true, "also analyze _test.go files (standalone mode)")
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, true, doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: hotpathsvet [flags] [packages]\n")
		fmt.Fprintf(fs.Output(), "   or: go vet -vettool=$(which hotpathsvet) [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nflags:\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(os.Args[1:])

	var analyzers []*framework.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	args := fs.Args()
	// Under `go vet -vettool`, cmd/go invokes the tool once per package
	// with a single *.cfg argument describing the compilation unit.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		framework.RunUnitchecker(args[0], analyzers)
		return // unreachable: RunUnitchecker exits
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := framework.Load(args, *includeTests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	found := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.ImportPath, terr)
			found = true
		}
		diags, err := framework.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			found = true
		}
	}
	if found {
		os.Exit(1)
	}
}

// Package experiment regenerates the paper's evaluation (Section 6):
// one parameter sweep per figure, each producing the same rows/series the
// paper plots, plus the qualitative network-recovery renders.
//
//	Figure 7 (a,b,c): index size, top-k score and coordinator time while
//	                  varying the number of objects N, at ε=10.
//	Figure 8 (a,b,c): the same metrics varying the tolerance ε, at N=20k.
//	Figure 9:         all discovered motion paths (SVG).
//	Figure 10:        the top-20 hottest paths in the city centre (SVG).
//	Table 2:          the experimental parameters.
//
// Absolute numbers differ from the paper (different hardware, language and
// synthetic network); the reproduced quantity is the SHAPE of each series —
// who wins, by what rough factor, and where trends reverse.
package experiment

import (
	"fmt"
	"io"
	"time"

	"hotpaths/internal/geom"
	"hotpaths/internal/roadnet"
	"hotpaths/internal/simulation"
	"hotpaths/internal/stats"
	"hotpaths/internal/svg"
)

// Row is one point of a sweep: the averaged per-epoch metrics for both
// methods at one parameter value.
type Row struct {
	Param        float64       // the swept value (N or ε)
	SPIndexSize  float64       // SinglePath: avg motion paths stored
	DPIndexSize  float64       // DP benchmark: avg segments stored
	SPScore      float64       // SinglePath: avg top-k score
	DPScore      float64       // DP benchmark: avg top-k score
	SPTime       time.Duration // SinglePath: avg per-epoch processing time
	UpMessages   int           // filtered messages sent by RayTrace
	Measurements int           // naive message count for comparison
}

// Base returns the paper's default configuration (Table 2) over the
// synthetic Athens network.
func Base(seed int64) (simulation.Config, error) {
	net, err := roadnet.GenerateAthens(seed)
	if err != nil {
		return simulation.Config{}, err
	}
	cfg := simulation.Config{Net: net, Seed: seed, RunDP: true}
	cfg.ApplyDefaults()
	return cfg, nil
}

// QuickBase returns a scaled-down configuration (smaller network, fewer
// objects, shorter run) with the same parameter ratios, for tests and
// benchmarks that must finish in seconds.
func QuickBase(seed int64) (simulation.Config, error) {
	net, err := roadnet.Generate(roadnet.GenConfig{
		GridCols: 12, GridRows: 12, Size: 3000, Jitter: 0.25, Seed: seed,
	})
	if err != nil {
		return simulation.Config{}, err
	}
	cfg := simulation.Config{
		Net:      net,
		N:        1000,
		Duration: 150,
		// Higher agility than the paper default compensates for the short
		// run: objects reach several turns, so both methods emit segments.
		Agility: 0.5,
		Seed:    seed,
		RunDP:   true,
	}
	cfg.ApplyDefaults()
	return cfg, nil
}

// SweepN runs the Figure 7 sweep: vary the number of objects.
func SweepN(base simulation.Config, ns []int) ([]Row, error) {
	rows := make([]Row, 0, len(ns))
	for _, n := range ns {
		cfg := base
		cfg.N = n
		res, err := simulation.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: N=%d: %w", n, err)
		}
		rows = append(rows, rowFrom(float64(n), res))
	}
	return rows, nil
}

// SweepEps runs the Figure 8 sweep: vary the tolerance ε.
func SweepEps(base simulation.Config, epss []float64) ([]Row, error) {
	rows := make([]Row, 0, len(epss))
	for _, e := range epss {
		cfg := base
		cfg.Eps = e
		res, err := simulation.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: eps=%v: %w", e, err)
		}
		rows = append(rows, rowFrom(e, res))
	}
	return rows, nil
}

func rowFrom(param float64, res *simulation.Result) Row {
	return Row{
		Param:        param,
		SPIndexSize:  res.AvgIndexSize,
		DPIndexSize:  res.AvgDPIndexSize,
		SPScore:      res.AvgTopKScore,
		DPScore:      res.AvgDPTopKScore,
		SPTime:       res.AvgProcTime,
		UpMessages:   res.Comm.UpMessages,
		Measurements: res.Comm.Measurements,
	}
}

// WriteRows renders a sweep as the three paper sub-figures in one table.
func WriteRows(w io.Writer, paramName string, rows []Row) error {
	var tb stats.Table
	tb.AddRow(paramName,
		"sp-index", "dp-index", // (a)
		"sp-score", "dp-score", // (b)
		"sp-time-ms", // (c)
		"msgs", "naive-msgs")
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprintf("%g", r.Param),
			fmt.Sprintf("%.0f", r.SPIndexSize),
			fmt.Sprintf("%.0f", r.DPIndexSize),
			fmt.Sprintf("%.0f", r.SPScore),
			fmt.Sprintf("%.0f", r.DPScore),
			fmt.Sprintf("%.3f", float64(r.SPTime.Microseconds())/1000),
			fmt.Sprintf("%d", r.UpMessages),
			fmt.Sprintf("%d", r.Measurements),
		)
	}
	_, err := tb.WriteTo(w)
	return err
}

// Figure9 runs the default configuration and renders every discovered path
// (hotness > 0) as SVG, together with the source network for visual
// comparison (Figure 6).
func Figure9(base simulation.Config) (pathsSVG, networkSVG string, err error) {
	res, err := simulation.Run(base)
	if err != nil {
		return "", "", err
	}
	bounds := base.Net.Bounds()
	pathsSVG = svg.RenderHotPaths(res.AllPaths, bounds, svg.Options{WidthPx: 900})
	networkSVG = svg.RenderNetwork(base.Net, svg.Options{WidthPx: 900})
	return pathsSVG, networkSVG, nil
}

// Figure10 renders the top-k hottest paths restricted to the central
// quarter of the map.
func Figure10(base simulation.Config, k int) (string, error) {
	cfg := base
	cfg.K = k
	res, err := simulation.Run(cfg)
	if err != nil {
		return "", err
	}
	b := base.Net.Bounds()
	centre := geom.Rect{
		Lo: b.Lo.Add(geom.Pt(b.Width()*0.3, b.Height()*0.3)),
		Hi: b.Lo.Add(geom.Pt(b.Width()*0.7, b.Height()*0.7)),
	}
	return svg.RenderHotPaths(res.TopK, b, svg.Options{WidthPx: 900, Crop: centre}), nil
}

// Table2 renders the experimental-parameter table.
func Table2(w io.Writer, cfg simulation.Config) error {
	var tb stats.Table
	tb.AddRow("parameter", "value")
	tb.AddRowf("objects (N)", cfg.N)
	tb.AddRowf("tolerance (eps, m)", cfg.Eps)
	tb.AddRowf("positional error (err, m)", cfg.Err)
	tb.AddRowf("agility (alpha)", cfg.Agility)
	tb.AddRowf("displacement (s, m)", cfg.Step)
	tb.AddRowf("window size (W, ts)", cfg.W)
	tb.AddRowf("epoch (ts)", cfg.Epoch)
	tb.AddRowf("duration (ts)", cfg.Duration)
	tb.AddRowf("k", cfg.K)
	tb.AddRowf("network nodes", len(cfg.Net.Nodes))
	tb.AddRowf("network links", len(cfg.Net.Links))
	_, err := tb.WriteTo(w)
	return err
}

// CommRow is one point of the communication ablation: messages sent with
// RayTrace filtering versus the naive ship-everything policy.
type CommRow struct {
	Eps          float64
	UpMessages   int
	Measurements int
	Ratio        float64
}

// CommAblation sweeps ε and reports the communication savings RayTrace
// achieves over naive streaming (the motivation of Section 1/3.2).
func CommAblation(base simulation.Config, epss []float64) ([]CommRow, error) {
	out := make([]CommRow, 0, len(epss))
	for _, e := range epss {
		cfg := base
		cfg.Eps = e
		cfg.RunDP = false
		res, err := simulation.Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, CommRow{
			Eps:          e,
			UpMessages:   res.Comm.UpMessages,
			Measurements: res.Comm.Measurements,
			Ratio:        res.CompressionRatio(),
		})
	}
	return out, nil
}

// WriteCommRows renders the communication ablation table.
func WriteCommRows(w io.Writer, rows []CommRow) error {
	var tb stats.Table
	tb.AddRow("eps", "raytrace-msgs", "naive-msgs", "compression")
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprintf("%g", r.Eps),
			fmt.Sprintf("%d", r.UpMessages),
			fmt.Sprintf("%d", r.Measurements),
			fmt.Sprintf("%.1fx", r.Ratio),
		)
	}
	_, err := tb.WriteTo(w)
	return err
}

package engine

import "hotpaths/internal/metrics"

// Instrumentation for the ingestion pipeline. All instruments live in the
// process-global registry; observation cost is a handful of atomic ops, so
// the hooks are cheap enough for the ObserveBatch hot path (one time.Now
// pair per batch, never per observation).
var (
	mObserveBatch = metrics.Default.Histogram("hotpaths_engine_observe_batch_seconds",
		"Latency of ObserveBatch enqueue calls (sharding plus queue sends).",
		metrics.LatencyBuckets, nil)
	mTick = metrics.Default.Histogram("hotpaths_engine_tick_seconds",
		"Duration of epoch-boundary Tick processing (barrier, merge, coordinator batch, reseed).",
		metrics.LatencyBuckets, nil)
	mBarrier = metrics.Default.Histogram("hotpaths_engine_epoch_barrier_seconds",
		"Duration of the shard flush barrier inside an epoch-boundary Tick.",
		metrics.LatencyBuckets, nil)
	mQueueDepth = metrics.Default.Gauge("hotpaths_engine_queue_depth",
		"Observations waiting in shard queues, sampled at the start of each epoch-boundary Tick.",
		nil)
	mObservations = metrics.Default.Counter("hotpaths_engine_observations_total",
		"Observations accepted into the engine.", nil)
	mEpochs = metrics.Default.Counter("hotpaths_engine_epochs_total",
		"Epoch batches processed by the coordinator tier.", nil)
)

package flightrec

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// eventJSON is the exposition form of one event, shared by
// GET /debug/events and DumpTo.
type eventJSON struct {
	Seq      uint64         `json:"seq"`
	Time     string         `json:"time"`
	UnixNano int64          `json:"unix_nano"`
	Type     string         `json:"type"`
	TraceID  string         `json:"trace_id,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

func toJSON(ev Event) eventJSON {
	out := eventJSON{
		Seq:      ev.Seq,
		Time:     ev.Time.UTC().Format(time.RFC3339Nano),
		UnixNano: ev.Time.UnixNano(),
		Type:     ev.Type,
		TraceID:  ev.TraceID,
	}
	if len(ev.Attrs) > 0 {
		out.Attrs = make(map[string]any, len(ev.Attrs))
		for _, a := range ev.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	return out
}

// RegisterDebug mounts GET /debug/events on an admin mux, alongside
// /metrics, /debug/pprof and /debug/traces.
//
// Query parameters:
//
//   - type:  keep only events of this type (one Ev* string)
//   - since: keep only events at or after this instant — RFC3339(Nano),
//     or a Go duration ("5m") meaning that long before now
//   - limit: keep only the newest N events after filtering
//
// The response is a JSON array, oldest event first.
func (r *Recorder) RegisterDebug(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/events", r.handleEvents)
}

func (r *Recorder) handleEvents(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	var since time.Time
	if s := q.Get("since"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			since = time.Now().Add(-d)
		} else if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
			since = t
		} else {
			http.Error(w, "since: want RFC3339 timestamp or duration like 5m", http.StatusBadRequest)
			return
		}
	}
	limit := 0
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "limit: want a non-negative integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	evs := r.Snapshot(q.Get("type"), since, limit)
	out := make([]eventJSON, len(evs))
	for i, ev := range evs {
		out[i] = toJSON(ev)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Errors past the header are client disconnects; nothing to do.
	_ = enc.Encode(out)
}

package hotpaths

import (
	"math/rand"
	"sort"

	"hotpaths/internal/coordinator"
	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
)

// IngestWorkload builds a deterministic multi-object workload: seeded
// random walks with occasional sharp turns, so filters report and the
// coordinator exercises all three SinglePath cases. One batch per
// timestamp from 1 to horizon. The correctness tests, the go-test
// benchmarks and the `hotpaths bench` harness all drive this generator,
// so every measurement along the bench trajectory exercises the same
// workload.
func IngestWorkload(nObjects int, horizon, seed int64) [][]Observation {
	rng := rand.New(rand.NewSource(seed))
	type state struct{ x, y, dx, dy float64 }
	objs := make([]state, nObjects)
	for i := range objs {
		objs[i] = state{x: float64(i%16) * 40, y: float64(i/16) * 40, dx: 6}
	}
	out := make([][]Observation, 0, horizon)
	for t := int64(1); t <= horizon; t++ {
		batch := make([]Observation, 0, nObjects)
		for i := range objs {
			o := &objs[i]
			if rng.Float64() < 0.15 {
				o.dx, o.dy = rng.Float64()*12-6, rng.Float64()*12-6
			}
			o.x += o.dx + rng.Float64() - 0.5
			o.y += o.dy + rng.Float64() - 0.5
			batch = append(batch, Observation{ObjectID: i, X: o.x, Y: o.y, T: t})
		}
		out = append(out, batch)
	}
	return out
}

// NewBenchSnapshot assembles a Snapshot directly from synthetic paths, so
// the query benchmarks can exercise 10k–100k-path snapshots without
// replaying a workload of that size. Paths are put into canonical
// hottest-first order; cols/rows are the grid resolution behind Region.
func NewBenchSnapshot(paths []HotPath, bounds Rect, cols, rows, k int) Snapshot {
	mp := make([]motion.HotPath, len(paths))
	for i, hp := range paths {
		mp[i] = motion.HotPath{
			Path: motion.Path{
				ID: motion.PathID(hp.ID),
				S:  geom.Pt(hp.Start.X, hp.Start.Y),
				E:  geom.Pt(hp.End.X, hp.End.Y),
			},
			Hotness: hp.Hotness,
		}
	}
	sort.Slice(mp, func(i, j int) bool {
		if mp[i].Hotness != mp[j].Hotness {
			return mp[i].Hotness > mp[j].Hotness
		}
		li, lj := mp[i].Path.Length(), mp[j].Path.Length()
		if li != lj {
			return li > lj
		}
		return mp[i].Path.ID < mp[j].Path.ID
	})
	gb := geom.Rect{Lo: geom.Pt(bounds.Min.X, bounds.Min.Y), Hi: geom.Pt(bounds.Max.X, bounds.Max.Y)}
	return Snapshot{snap: coordinator.SnapshotOf(mp, gb, cols, rows), k: k}
}

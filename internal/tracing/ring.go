package tracing

import "sync"

// ring is the bounded buffer of completed traces: newest wins, oldest is
// overwritten. A single mutex is fine — commits happen once per sampled
// request, not per span.
type ring struct {
	mu  sync.Mutex
	buf []*trace
	pos int    // next slot to write
	seq uint64 // total commits ever; commit order for exposition
}

func newRing(capacity int) *ring {
	if capacity < 1 {
		capacity = 1
	}
	return &ring{buf: make([]*trace, capacity)}
}

func (r *ring) commit(tr *trace) {
	r.mu.Lock()
	tr.seq = r.seq
	r.seq++
	r.buf[r.pos] = tr
	r.pos = (r.pos + 1) % len(r.buf)
	r.mu.Unlock()
}

// snapshot returns the retained traces newest-first.
func (r *ring) snapshot() []*trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*trace, 0, len(r.buf))
	for i := 1; i <= len(r.buf); i++ {
		tr := r.buf[(r.pos-i+len(r.buf))%len(r.buf)]
		if tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// byID returns every retained trace with the given ID, oldest commit
// first. More than one entry is normal: a write that also ticks sends two
// requests to the same partition under one trace ID, and each inbound
// request commits its own local span set.
func (r *ring) byID(id TraceID) []*trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*trace
	for i := 1; i <= len(r.buf); i++ {
		tr := r.buf[(r.pos-i+len(r.buf))%len(r.buf)]
		if tr != nil && tr.id == id {
			out = append(out, tr)
		}
	}
	// Collected newest-first; reverse to oldest-first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Package metricname defines an analyzer that enforces the fleet's
// metric-naming contract at every registration site.
//
// # Contract
//
// Metric names are part of the wire protocol with Prometheus: dashboards
// and the bench trajectory gate key on them, so they follow the upstream
// naming conventions and never drift. The metrics registry's GetOrCreate
// semantics make double-registration safe only when every call site
// agrees on the kind — a name registered as both a counter and a gauge
// panics at runtime (metrics.Registry.family), which this analyzer moves
// to vet time.
//
// At each Counter / Gauge / Histogram / GaugeFunc call on a
// *metrics.Registry the analyzer checks:
//
//   - the name is a compile-time constant (dynamic names defeat
//     registry idempotence and cardinality review)
//   - the name matches ^[a-z][a-z0-9_]*$ (Prometheus base naming)
//   - counters end in _total; gauges do NOT end in _total
//   - histograms end in a unit suffix: _seconds, _bytes or _records
//   - the help string is a non-empty constant
//   - all registrations of one name within the package agree on kind
//
// _test.go files are exempt: the registry's own tests register
// deliberately malformed names to exercise its runtime validation.
package metricname

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"

	"hotpaths/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "metricname",
	Doc:  "metric names follow Prometheus conventions and registration kinds agree across call sites",
	Run:  run,
}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

var registryMethods = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"Histogram": "histogram",
	"GaugeFunc": "gauge",
}

func run(pass *framework.Pass) error {
	type registration struct {
		kind string
		pos  ast.Node
	}
	seen := make(map[string]registration)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.Callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			kind, ok := registryMethods[fn.Name()]
			if !ok || !framework.IsMethodOf(fn, "metrics", "Registry", fn.Name()) {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}

			name, isConst := constString(pass, call.Args[0])
			if !isConst {
				pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time constant so registrations stay idempotent and reviewable")
				return true
			}
			if !nameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q does not match Prometheus naming ^[a-z][a-z0-9_]*$", name)
			}
			switch kind {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					pass.Reportf(call.Args[0].Pos(), "counter %q must end in _total", name)
				}
			case "gauge":
				if strings.HasSuffix(name, "_total") {
					pass.Reportf(call.Args[0].Pos(), "gauge %q must not end in _total; that suffix is reserved for counters", name)
				}
			case "histogram":
				if !hasUnitSuffix(name) {
					pass.Reportf(call.Args[0].Pos(), "histogram %q must end in a unit suffix: _seconds, _bytes or _records", name)
				}
			}
			if help, ok := constString(pass, call.Args[1]); ok && help == "" {
				pass.Reportf(call.Args[1].Pos(), "metric %q needs a non-empty help string", name)
			} else if !ok {
				pass.Reportf(call.Args[1].Pos(), "metric %q help string must be a compile-time constant", name)
			}
			if prev, dup := seen[name]; dup && prev.kind != kind {
				pass.Reportf(call.Pos(), "metric %q registered as %s here but as %s at %s; the registry panics on kind mismatch at runtime",
					name, kind, prev.kind, pass.Fset.Position(prev.pos.Pos()))
			} else if !dup {
				seen[name] = registration{kind: kind, pos: call}
			}
			return true
		})
	}
	return nil
}

func hasUnitSuffix(name string) bool {
	return strings.HasSuffix(name, "_seconds") ||
		strings.HasSuffix(name, "_bytes") ||
		strings.HasSuffix(name, "_records")
}

// constString evaluates e as a compile-time string constant.
func constString(pass *framework.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

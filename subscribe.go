package hotpaths

import (
	"errors"
	"sort"
	"sync"

	"hotpaths/internal/flightrec"
)

// ErrSourceClosed is returned by Subscribe on a Source that has been
// closed: no further epochs will ever be published, so a standing query
// against it could never fire.
var ErrSourceClosed = errors.New("hotpaths: source closed; no further epochs will be published")

// subscriptionBuffer is the per-subscription delta channel capacity. A
// consumer that falls further behind than this does not block ingestion;
// the oldest undelivered deltas are condensed (see Delta.Missed).
const subscriptionBuffer = 16

// Delta is one epoch's change to a subscription's result set: the paths
// that entered the result, left it, or stayed but changed hotness (path
// geometry is immutable per id, so hotness — and with it score — is the
// only thing that can change). A delta is emitted once per epoch boundary,
// even when nothing changed (an empty delta doubles as a liveness signal
// for network watchers).
//
// Applied to the previous result set with Apply, a delta reproduces
// exactly what Snapshot().Query(q) would have returned at the boundary —
// the subscription golden tests enforce this bit for bit across the
// System, Engine and Durable deployments.
type Delta struct {
	// Clock is the source clock at the epoch boundary that produced this
	// delta (Snapshot.Clock() of the snapshot it was diffed against).
	Clock int64

	// Epoch is the coordinator's epoch sequence number at the boundary
	// (Snapshot.Epoch()); it is strictly increasing along a subscription
	// after the initial baseline delta, so network consumers can use it
	// as a resume cursor.
	Epoch int64

	// Entered holds the paths now in the result set that were absent from
	// the previous delta's result, in result order. On a Reset delta it
	// holds the query's entire current result.
	Entered []HotPath

	// Changed holds the paths present in both results whose hotness
	// changed, with their new values, in result order.
	Changed []HotPath

	// Left holds the ids of paths that dropped out of the result set —
	// expired from the window, fallen below MinHotness, or displaced from
	// the top-k.
	Left []uint64

	// Reset marks a delta that carries the query's full current result in
	// Entered instead of an incremental diff: Apply discards the previous
	// result and starts over from it. The first delta of every
	// subscription is a reset (the baseline), and so is the delta that
	// follows a buffer overflow — so a consumer that fell behind is
	// re-baselined automatically and never has to resynchronise by hand.
	Reset bool

	// Missed counts the epochs whose deltas were dropped because the
	// subscriber's buffer was full; it is non-zero only on a Reset delta,
	// which replaces everything the dropped deltas would have said.
	Missed int

	// Order is the subscription query's sort order; Apply uses it to
	// restore result order.
	Order SortOrder
}

// Empty reports whether the delta carries no change (a pure heartbeat).
func (d Delta) Empty() bool {
	return len(d.Entered) == 0 && len(d.Changed) == 0 && len(d.Left) == 0
}

// Apply transforms the previous result set by the delta and returns the
// new result in the query's order — exactly the slice Snapshot().Query(q)
// would have produced at the delta's epoch. prev is not modified. The
// very first delta of a subscription applies to nil.
func (d Delta) Apply(prev []HotPath) []HotPath {
	if d.Reset {
		// The full result rides in Entered, already in query order. The
		// copy is non-nil even when empty, matching what Query returns.
		return append(make([]HotPath, 0, len(d.Entered)), d.Entered...)
	}
	m := make(map[uint64]HotPath, len(prev)+len(d.Entered))
	for _, hp := range prev {
		m[hp.ID] = hp
	}
	for _, id := range d.Left {
		delete(m, id)
	}
	for _, hp := range d.Changed {
		m[hp.ID] = hp
	}
	for _, hp := range d.Entered {
		m[hp.ID] = hp
	}
	out := make([]HotPath, 0, len(m))
	for _, hp := range m {
		out = append(out, hp)
	}
	sortResults(out, d.Order)
	return out
}

// SortResults orders a result set in place the way Snapshot.Query
// materialises it: the canonical hottest-first order for ByHotness
// (hotness desc, length desc, id asc — coordinator.TopK's comparator),
// the score order for ByScore. Both orders are total, so any multiset of
// paths has exactly one sorted form — which is what lets a scatter-gather
// reader merge per-partition results and reproduce, byte for byte, the
// order a single deployment would have produced.
func SortResults(out []HotPath, order SortOrder) { sortResults(out, order) }

// DiffResults computes the Delta between two materialised results of the
// same query, exactly as the subscription hub does at each epoch
// boundary: Entered/Changed in cur's order, Left in prev's order. Clock
// and Epoch are left zero for the caller to fill in. It is exported for
// readers that rebuild a delta stream from merged per-partition results
// (the gateway's /watch fan-in) and must emit the identical deltas a
// single deployment's hub would have.
func DiffResults(prev, cur []HotPath, order SortOrder) Delta {
	return diffResults(prev, cur, order)
}

// sortResults orders a result set the way Snapshot.Query materialises it:
// the canonical hottest-first order for ByHotness, the score order for
// ByScore. Both comparators break every tie down to the path id, so the
// order is total and reconstruction is deterministic.
//
// The ByHotness branch MUST stay identical to coordinator.TopK's
// comparator (hotness desc, length desc, id asc) — Delta.Apply's
// exactness guarantee rides on reproducing the canonical order the
// snapshot layer inherits from it; TestSubscriptionMatchesSnapshots
// pins the contract.
func sortResults(out []HotPath, order SortOrder) {
	sort.Slice(out, func(i, j int) bool { return lessResult(order, out[i], out[j]) })
}

func lessResult(order SortOrder, a, b HotPath) bool {
	if order == ByScore {
		sa, sb := a.Score(), b.Score()
		if sa != sb {
			return sa > sb
		}
		if a.Hotness != b.Hotness {
			return a.Hotness > b.Hotness
		}
		return a.ID < b.ID
	}
	if a.Hotness != b.Hotness {
		return a.Hotness > b.Hotness
	}
	la, lb := a.Length(), b.Length()
	if la != lb {
		return la > lb
	}
	return a.ID < b.ID
}

// Subscription is a standing query registered with Subscribe. Deltas
// arrive on its channel once per epoch boundary until Close — the
// subscriber's own Close, or the owning Engine/Durable shutting down
// (which closes the channel). Close and channel reads are safe from any
// goroutine.
type Subscription struct {
	hub *hub
	id  uint64
	q   Query
	ch  chan Delta

	// prev is the result set of the last published delta, and lastEpoch
	// the epoch sequence it was taken at; owned by the hub and guarded by
	// hub.mu.
	prev      []HotPath
	lastEpoch int64
}

// Deltas returns the subscription's delta channel. It is closed when the
// subscription — or the source behind it — is closed.
func (s *Subscription) Deltas() <-chan Delta { return s.ch }

// Query returns the standing query the subscription evaluates.
func (s *Subscription) Query() Query { return s.q }

// Close unregisters the subscription and closes its channel. It is
// idempotent and safe to call concurrently with epoch publication.
func (s *Subscription) Close() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s.id]; !ok {
		return // already closed, by us or by the source shutting down
	}
	delete(h.subs, s.id)
	mSubscribers.Add(-1)
	close(s.ch)
}

// hub fans epoch snapshots out to the standing subscriptions of one
// deployment. Publication happens on the ingestion path (inside Tick, at
// the epoch boundary), so every send is non-blocking: a full buffer
// condenses deltas instead of stalling the epoch. hub.mu is a leaf lock —
// nothing is acquired while holding it — so publish may safely run under
// the Engine's write lock.
type hub struct {
	mu     sync.Mutex
	subs   map[uint64]*Subscription
	nextID uint64
	closed bool
}

// any reports whether at least one subscription is live; Tick uses it to
// skip the snapshot copy entirely when nobody is watching.
func (h *hub) any() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs) > 0
}

// subscribe registers a standing query via the source's snapshot
// accessor: the subscription's first delta is a reset carrying the
// query's current result (applied to nil, it yields the baseline), and
// every epoch boundary after registration diffs against the previous
// result.
//
// Seeding cannot be atomic with registration — taking a snapshot under
// hub.mu would invert the lock order against an epoch publishing under
// the source's own lock — so an epoch may slip between the seed snapshot
// and registration, leaving the baseline one epoch stale with no delta
// ever due (the next epoch heals it, but a sparse clock may never fire
// one). The second snapshot catches that: registration precedes it, so
// any epoch it shows beyond the subscription's lastEpoch was missed, and
// reseedLocked re-baselines with a fresh reset.
func (h *hub) subscribe(q Query, snapshot func() Snapshot) (*Subscription, error) {
	snap := snapshot()
	cur := snap.Query(q)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrSourceClosed
	}
	if h.subs == nil {
		h.subs = make(map[uint64]*Subscription)
	}
	sub := &Subscription{
		hub:  h,
		id:   h.nextID,
		q:    q,
		ch:   make(chan Delta, subscriptionBuffer),
		prev: cur,
	}
	h.nextID++
	h.subs[sub.id] = sub
	mSubscribers.Add(1)
	h.reseedLocked(sub, snap, cur)
	h.mu.Unlock()

	if again := snapshot(); again.Epoch() != snap.Epoch() {
		h.mu.Lock()
		if _, live := h.subs[sub.id]; live && again.Epoch() > sub.lastEpoch {
			h.reseedLocked(sub, again, again.Query(q))
		}
		h.mu.Unlock()
	}
	return sub, nil
}

// reseedLocked re-baselines a subscription: prev becomes cur and a reset
// delta carrying it is delivered. The payload is copied so nothing a
// consumer might mutate aliases sub.prev. Caller holds hub.mu.
func (h *hub) reseedLocked(sub *Subscription, snap Snapshot, cur []HotPath) {
	sub.prev = cur
	sub.lastEpoch = snap.Epoch()
	sub.deliverLocked(Delta{
		Clock:   snap.Clock(),
		Epoch:   snap.Epoch(),
		Entered: append([]HotPath(nil), cur...),
		Reset:   true,
		Order:   sub.q.order,
	})
}

// publish re-evaluates every standing query against the epoch's snapshot
// and emits one delta each. Cost is O(result) per subscription — Region
// queries run over the snapshot's grid index and K/MinHotness are prefix
// cuts, so large path stores with narrow standing queries stay cheap.
func (h *hub) publish(snap Snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, sub := range h.subs {
		if sub.lastEpoch >= snap.Epoch() {
			// A newer epoch already published — possible when the owner
			// violates the Tick contract and ticks concurrently, which
			// reorders epoch callbacks. Dropping the stale view keeps
			// every subscription's stream strictly epoch-ordered.
			continue
		}
		cur := snap.Query(sub.q)
		d := diffResults(sub.prev, cur, sub.q.order)
		d.Clock = snap.Clock()
		d.Epoch = snap.Epoch()
		sub.prev = cur
		sub.lastEpoch = snap.Epoch()
		sub.deliverLocked(d)
	}
}

// closeAll shuts the hub down: every subscription channel is closed and
// later subscribes fail with ErrSourceClosed. Called when the owning
// Engine or Durable closes.
func (h *hub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, sub := range h.subs {
		delete(h.subs, id)
		mSubscribers.Add(-1)
		close(sub.ch)
	}
}

// deliverLocked enqueues a delta without ever blocking: when the buffer
// is full, every delta still queued is dropped (counted) and replaced by
// one reset delta carrying the query's full current result. A reset
// applies correctly after ANY prefix of the stream — it overwrites the
// consumer's state instead of amending it — so the unavoidable race with
// a consumer that receives queued deltas while we drain is harmless:
// whatever it managed to apply first, the reset lands it on the exact
// current result. (Folding the backlog into an incremental delta instead
// would not survive that race: the consumer could steal a delta newer
// than one we absorbed, then apply the older state on top of it.) The
// caller holds hub.mu, which serialises all senders and excludes Close,
// so the channel cannot be closed or written concurrently.
func (s *Subscription) deliverLocked(d Delta) {
	select {
	case s.ch <- d:
		mDeltas.Inc()
		return
	default:
	}
	// d itself is not counted: the reset replaces it and still delivers
	// this epoch's result, just non-incrementally.
	dropped := d.Missed
	for {
		select {
		case old := <-s.ch:
			dropped += old.Missed + 1
			continue
		default:
		}
		break
	}
	// s.prev is the result the hub just published (or the subscribe-time
	// baseline); hub.mu is held, so it is stable here.
	reset := Delta{
		Clock:   d.Clock,
		Epoch:   d.Epoch,
		Entered: append([]HotPath(nil), s.prev...),
		Reset:   true,
		Missed:  dropped,
		Order:   d.Order,
	}
	// The buffer was just drained and we are the only sender, so this
	// cannot block (consumers only ever remove).
	//hotpathsvet:ignore locksnapshot non-blocking by construction: the buffer was drained above and the hub lock makes this the sole sender
	s.ch <- reset
	mDeltas.Inc()
	mSlowResets.Inc()
	mSlowMissed.Add(uint64(dropped))
	flightrec.Default.Record(flightrec.EvSubscriberReset,
		flightrec.KV("subscription", s.id),
		flightrec.KV("missed", dropped),
		flightrec.KV("epoch", d.Epoch))
}

// diffResults computes the delta between two materialised results of the
// same query: O(len(prev)+len(cur)), with Entered/Changed in cur's order
// and Left in prev's order, so the diff is deterministic for identical
// result streams.
func diffResults(prev, cur []HotPath, order SortOrder) Delta {
	prevByID := make(map[uint64]HotPath, len(prev))
	for _, hp := range prev {
		prevByID[hp.ID] = hp
	}
	curIDs := make(map[uint64]struct{}, len(cur))
	var entered, changed []HotPath
	for _, hp := range cur {
		curIDs[hp.ID] = struct{}{}
		p, ok := prevByID[hp.ID]
		if !ok {
			entered = append(entered, hp)
			continue
		}
		if p.Hotness != hp.Hotness {
			changed = append(changed, hp)
		}
	}
	var left []uint64
	for _, hp := range prev {
		if _, ok := curIDs[hp.ID]; !ok {
			left = append(left, hp.ID)
		}
	}
	return Delta{Entered: entered, Changed: changed, Left: left, Order: order}
}

// Subscribe registers a standing query with the system. The first delta
// is the query's current result; afterwards one delta arrives per epoch
// boundary (ticks that fire an epoch). Subscribe itself must be called
// from the goroutine driving the System — it reads live state — but the
// returned subscription's channel and Close are safe anywhere.
func (s *System) Subscribe(q Query) (*Subscription, error) {
	return s.subs.subscribe(q, s.Snapshot)
}

// Subscribe registers a standing query with the engine. It is safe to
// call concurrently with ingestion and Tick; deltas are published after
// the epoch barrier, under the same ordering guarantees that make the
// Engine bit-identical to the System, so the delta stream for a given
// input schedule is deterministic. After Close the engine publishes no
// further epochs, so Subscribe fails with ErrSourceClosed.
func (e *Engine) Subscribe(q Query) (*Subscription, error) {
	return e.subs.subscribe(q, e.Snapshot)
}

// Subscribe registers a standing query with the durable deployment,
// delegating to the backing System or Engine: deltas fire at the same
// epoch boundaries, so a Durable emits the identical stream to the bare
// deployment fed the same journal.
func (d *Durable) Subscribe(q Query) (*Subscription, error) {
	if d.eng != nil {
		return d.eng.Subscribe(q)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrSourceClosed
	}
	return d.sys.Subscribe(q)
}

package tracing

import (
	"fmt"
	"io"
	"log/slog"
	"os"
)

// SetupSlog installs the process-wide slog default used by the hotpaths
// binaries: a text or JSON handler on stderr stamped with the service
// name. format accepts "text" (the default when empty) or "json".
// Request-scoped call sites add LogAttrs(ctx) so log lines carry the
// trace_id/span_id of the request that emitted them.
func SetupSlog(format, service string) error {
	return setupSlog(os.Stderr, format, service)
}

func setupSlog(w io.Writer, format, service string) error {
	opts := &slog.HandlerOptions{Level: slog.LevelInfo}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return fmt.Errorf("tracing: unknown log format %q (want text or json)", format)
	}
	slog.SetDefault(slog.New(h).With("service", service))
	return nil
}

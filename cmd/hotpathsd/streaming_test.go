package main

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hotpaths/internal/tracing"
)

// withTracing force-samples every request for the duration of one test,
// restoring the dark default after. The tracer is process-global, like
// the metrics registry, so this must not leak into other tests.
func withTracing(t *testing.T) {
	t.Helper()
	tracing.Default.Configure("hotpathsd-test", 1, 0)
	t.Cleanup(func() { tracing.Default.Configure("hotpathsd-test", 0, 0) })
}

// Streaming endpoints type-assert their ResponseWriter: /watch needs
// http.Flusher for SSE, /wal/stream refuses to start without it. Both
// must keep working through the full middleware stack — metrics recorder
// wrapping tracing recorder wrapping the real writer — with tracing
// sampling every request. This is the regression test for the recorders
// forwarding Flush (and declaring it unconditionally).
func TestStreamingSurvivesMiddlewareStack(t *testing.T) {
	withTracing(t)
	h, _ := newDurableHandler(t)
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := &http.Client{Timeout: 30 * time.Second}

	// SSE /watch: subscribe, push one epoch through, and require a delta
	// event to arrive — it only does if Flush reaches the connection.
	watch, err := client.Get(ts.URL + "/watch?k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Body.Close()
	if watch.StatusCode != http.StatusOK {
		t.Fatalf("watch through middleware stack: %d", watch.StatusCode)
	}
	if ct := watch.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content-type %q", ct)
	}
	feedZigZag(t, h)
	sawDelta := false
	sc := bufio.NewScanner(watch.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			sawDelta = true
			break
		}
	}
	if !sawDelta {
		t.Fatalf("no SSE delta arrived through the middleware stack: %v", sc.Err())
	}

	// /wal/stream: the handler 500s at startup when the writer has lost
	// Flusher, and its opening heartbeat frame only arrives flushed.
	stream, err := client.Get(ts.URL + "/wal/stream?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("wal/stream through middleware stack: %d", stream.StatusCode)
	}
	buf := make([]byte, 1)
	if _, err := stream.Body.Read(buf); err != nil {
		t.Fatalf("no bytes arrived on /wal/stream: %v", err)
	}
}

package uncertainty

import (
	"math"
	"math/rand"
	"testing"

	"hotpaths/internal/geom"
)

func TestPhi(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.998650101968370},
	}
	for _, c := range cases {
		if got := Phi(c.z); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Phi(%v) = %v want %v", c.z, got, c.want)
		}
	}
}

func TestMaxOffsetValidation(t *testing.T) {
	if _, err := MaxOffset(1, 0.05, 0); err == nil {
		t.Error("sigma=0 must error")
	}
	if _, err := MaxOffset(0, 0.05, 1); err == nil {
		t.Error("eps=0 must error")
	}
	if _, err := MaxOffset(1, 0, 1); err == nil {
		t.Error("delta=0 must error")
	}
	if _, err := MaxOffset(1, 1, 1); err == nil {
		t.Error("delta=1 must error")
	}
}

func TestMaxOffsetNoSolution(t *testing.T) {
	// With sigma huge relative to eps, even w=0 fails: coverage(0,a) =
	// 2Φ(a)−1 ≈ a·√(2/π) → tiny.
	_, err := MaxOffset(1, 0.05, 100)
	if err != ErrNoSolution {
		t.Errorf("want ErrNoSolution, got %v", err)
	}
}

// The defining equation must hold at the returned offset.
func TestMaxOffsetSolvesEquation(t *testing.T) {
	for _, c := range []struct{ eps, delta, sigma float64 }{
		{10, 0.05, 1},
		{10, 0.05, 3},
		{1, 0.1, 0.3},
		{5, 0.01, 1.5},
		{2, 0.5, 1},
	} {
		w, err := MaxOffset(c.eps, c.delta, c.sigma)
		if err != nil {
			t.Fatalf("MaxOffset(%+v): %v", c, err)
		}
		got := Phi((w+c.eps)/c.sigma) - Phi((w-c.eps)/c.sigma)
		if math.Abs(got-(1-c.delta)) > 1e-9 {
			t.Errorf("coverage at w=%v is %v want %v (case %+v)", w, got, 1-c.delta, c)
		}
	}
}

// Monotonicity: w grows with eps, shrinks as delta shrinks, shrinks with
// noisier sigma (for fixed eps).
func TestMaxOffsetMonotonicity(t *testing.T) {
	w1, _ := MaxOffset(5, 0.05, 1)
	w2, _ := MaxOffset(10, 0.05, 1)
	if w2 <= w1 {
		t.Errorf("offset must grow with eps: %v vs %v", w1, w2)
	}
	w3, _ := MaxOffset(5, 0.01, 1)
	if w3 >= w1 {
		t.Errorf("offset must shrink as delta shrinks: %v vs %v", w3, w1)
	}
	w4, _ := MaxOffset(5, 0.05, 2)
	if w4 >= w1 {
		t.Errorf("offset must shrink with larger sigma: %v vs %v", w4, w1)
	}
}

// As sigma→0 the measurement becomes exact and w→eps (the deterministic
// tolerance square is recovered).
func TestMaxOffsetDeterministicLimit(t *testing.T) {
	w, err := MaxOffset(10, 0.05, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-10) > 1e-3 {
		t.Errorf("w = %v want ≈ 10", w)
	}
}

func TestToleranceInterval(t *testing.T) {
	lo, hi, err := ToleranceInterval(100, 1, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((100-lo)-(hi-100)) > 1e-9 {
		t.Error("interval must be symmetric around the mean")
	}
	if hi-100 >= 10 {
		t.Errorf("offset %v must be strictly below eps for sigma>0", hi-100)
	}
}

func TestToleranceRect(t *testing.T) {
	m := Measurement{Mean: geom.Pt(50, 80), SigmaX: 1, SigmaY: 2}
	r, err := ToleranceRect(m, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(m.Mean) {
		t.Error("rect must contain the mean")
	}
	// Noisier axis gets a narrower admissible band.
	if r.Height() >= r.Width() {
		t.Errorf("sigmaY > sigmaX should give height < width: w=%v h=%v", r.Width(), r.Height())
	}
	// Both half-widths below eps.
	if r.Width()/2 >= 10 || r.Height()/2 >= 10 {
		t.Error("half-extents must be < eps")
	}
	// Error propagation.
	bad := Measurement{Mean: geom.Pt(0, 0), SigmaX: 100, SigmaY: 1}
	if _, err := ToleranceRect(bad, 1, 0.05); err == nil {
		t.Error("excessive SigmaX must error")
	}
}

func TestToleranceRectOrMin(t *testing.T) {
	bad := Measurement{Mean: geom.Pt(5, 5), SigmaX: 100, SigmaY: 100}
	r := ToleranceRectOrMin(bad, 1, 0.05, 0.5)
	if r != geom.RectAround(geom.Pt(5, 5), 0.5) {
		t.Errorf("fallback rect = %v", r)
	}
	good := Measurement{Mean: geom.Pt(5, 5), SigmaX: 1, SigmaY: 1}
	r2 := ToleranceRectOrMin(good, 10, 0.05, 0.5)
	if r2.Width() <= 1 {
		t.Error("solvable case must not use the fallback")
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(0, 1, 10, 8); err == nil {
		t.Error("delta=0 must error")
	}
	if _, err := NewTable(0.05, 0, 10, 8); err == nil {
		t.Error("aMin=0 must error")
	}
	if _, err := NewTable(0.05, 5, 5, 8); err == nil {
		t.Error("empty range must error")
	}
	if _, err := NewTable(0.05, 1, 10, 0); err == nil {
		t.Error("steps=0 must error")
	}
}

func TestTableMatchesExactSolver(t *testing.T) {
	tab, err := NewTable(0.05, 0.5, 50, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Delta() != 0.05 {
		t.Error("Delta accessor")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		sigma := 0.3 + rng.Float64()*3
		eps := sigma * (0.6 + rng.Float64()*40) // keep a in range
		exact, err := MaxOffset(eps, 0.05, sigma)
		approx, ok := tab.MaxOffset(eps, sigma)
		if err == ErrNoSolution {
			if ok && approx > 0.1*sigma {
				t.Errorf("table returned %v where solver says no solution", approx)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("table miss for eps=%v sigma=%v", eps, sigma)
		}
		if math.Abs(exact-approx) > 0.02*sigma+1e-6 {
			t.Errorf("table %v vs exact %v (eps=%v sigma=%v)", approx, exact, eps, sigma)
		}
	}
}

func TestTableOutOfRange(t *testing.T) {
	tab, _ := NewTable(0.05, 1, 10, 100)
	if _, ok := tab.MaxOffset(0.5, 1); ok {
		t.Error("a below range must miss")
	}
	if _, ok := tab.MaxOffset(100, 1); ok {
		t.Error("a above range must miss")
	}
	if _, ok := tab.MaxOffset(5, 0); ok {
		t.Error("sigma=0 must miss")
	}
	if _, ok := tab.MaxOffset(0, 1); ok {
		t.Error("eps=0 must miss")
	}
}

func TestTableToleranceRect(t *testing.T) {
	tab, _ := NewTable(0.025, 0.5, 50, 2000) // delta/2 for delta=0.05
	m := Measurement{Mean: geom.Pt(10, 20), SigmaX: 1, SigmaY: 1}
	r, ok := tab.ToleranceRect(m, 10)
	if !ok {
		t.Fatal("expected a rect")
	}
	exact, err := ToleranceRect(m, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Width()-exact.Width()) > 0.05 {
		t.Errorf("table rect width %v vs exact %v", r.Width(), exact.Width())
	}
	bad := Measurement{Mean: geom.Pt(0, 0), SigmaX: 1000, SigmaY: 1}
	if _, ok := tab.ToleranceRect(bad, 10); ok {
		t.Error("out-of-range sigma must miss")
	}
}

// Monte-Carlo check: a point at the boundary offset really does contain the
// true location with probability ≈ 1−δ.
func TestMaxOffsetMonteCarlo(t *testing.T) {
	const (
		eps   = 10.0
		delta = 0.10
		sigma = 4.0
		n     = 200000
	)
	w, err := MaxOffset(eps, delta, sigma)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	hits := 0
	for i := 0; i < n; i++ {
		x := rng.NormFloat64() * sigma // true deviation from mean
		if math.Abs(x-w) <= eps {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-(1-delta)) > 0.005 {
		t.Errorf("empirical coverage %v want %v", got, 1-delta)
	}
}

// Package gridindex implements the MotionPath index of the paper
// (Section 5.1): a lightweight uniform grid over the monitored space that
// indexes the END vertices of stored motion paths.
//
// Every cell keeps its entries in a small hash table keyed by path id, as
// in the paper, giving expected O(1) insertion and deletion. Each entry
// carries the endpoint coordinates, the path id and the coordinates of the
// path's other (start) endpoint, so range queries can answer both
// "paths from s ending in R" (SinglePath Case 1) and "end vertices in R"
// (Case 2) without touching any other structure.
package gridindex

import (
	"fmt"

	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
)

// Entry is one indexed endpoint.
type Entry struct {
	ID    motion.PathID
	End   geom.Point // the indexed (end) vertex
	Start geom.Point // the path's other endpoint
}

// Grid is a uniform spatial hash over a bounding rectangle. Points outside
// the bounds are clamped into the boundary cells, so no entry is ever lost.
type Grid struct {
	bounds       geom.Rect
	cols, rows   int
	cellW, cellH float64
	cells        []map[motion.PathID]Entry
	n            int
}

// New creates a grid with cols×rows cells over bounds.
func New(bounds geom.Rect, cols, rows int) (*Grid, error) {
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("gridindex: need at least 1x1 cells, got %dx%d", cols, rows)
	}
	if bounds.Empty() || bounds.Width() == 0 || bounds.Height() == 0 {
		return nil, fmt.Errorf("gridindex: bounds %v must have positive area", bounds)
	}
	return &Grid{
		bounds: bounds,
		cols:   cols,
		rows:   rows,
		cellW:  bounds.Width() / float64(cols),
		cellH:  bounds.Height() / float64(rows),
		cells:  make([]map[motion.PathID]Entry, cols*rows),
	}, nil
}

// Len returns the number of indexed entries.
func (g *Grid) Len() int { return g.n }

// Bounds returns the grid's covering rectangle.
func (g *Grid) Bounds() geom.Rect { return g.bounds }

// clampCol maps an x coordinate to a column index, clamping out-of-bounds
// coordinates into the boundary columns.
func (g *Grid) clampCol(x float64) int {
	c := int((x - g.bounds.Lo.X) / g.cellW)
	if c < 0 {
		return 0
	}
	if c >= g.cols {
		return g.cols - 1
	}
	return c
}

func (g *Grid) clampRow(y float64) int {
	r := int((y - g.bounds.Lo.Y) / g.cellH)
	if r < 0 {
		return 0
	}
	if r >= g.rows {
		return g.rows - 1
	}
	return r
}

func (g *Grid) cellAt(p geom.Point) int {
	return g.clampRow(p.Y)*g.cols + g.clampCol(p.X)
}

// Insert adds an entry. Inserting a second entry with an id already present
// in the same cell overwrites it; the caller (the coordinator) allocates
// fresh ids per path, so this only matters for misuse.
func (g *Grid) Insert(e Entry) {
	i := g.cellAt(e.End)
	if g.cells[i] == nil {
		g.cells[i] = make(map[motion.PathID]Entry)
	}
	if _, dup := g.cells[i][e.ID]; !dup {
		g.n++
	}
	g.cells[i][e.ID] = e
}

// Remove deletes the entry for id whose end vertex is at end. It reports
// whether an entry was removed.
func (g *Grid) Remove(id motion.PathID, end geom.Point) bool {
	i := g.cellAt(end)
	if g.cells[i] == nil {
		return false
	}
	if _, ok := g.cells[i][id]; !ok {
		return false
	}
	delete(g.cells[i], id)
	g.n--
	return true
}

// Query invokes fn for every entry whose end vertex lies inside r
// (inclusive). Iteration stops early if fn returns false.
func (g *Grid) Query(r geom.Rect, fn func(Entry) bool) {
	if r.Empty() {
		return
	}
	c0, c1 := g.clampCol(r.Lo.X), g.clampCol(r.Hi.X)
	r0, r1 := g.clampRow(r.Lo.Y), g.clampRow(r.Hi.Y)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			for _, e := range g.cells[row*g.cols+col] {
				if r.Contains(e.End) {
					if !fn(e) {
						return
					}
				}
			}
		}
	}
}

// QueryAll returns all entries with end vertex inside r.
func (g *Grid) QueryAll(r geom.Rect) []Entry {
	var out []Entry
	g.Query(r, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// ForEach visits every entry in the index.
func (g *Grid) ForEach(fn func(Entry) bool) {
	for _, cell := range g.cells {
		for _, e := range cell {
			if !fn(e) {
				return
			}
		}
	}
}

// Fixture for the errstring analyzer: errors are classified with
// errors.Is / errors.As, never by matching their rendered text.
package a

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

var errGone = errors.New("gone")

// The PR 7 gateway bug, verbatim: classifying an upstream failure by
// substring-matching the formatted message. A record payload containing
// the text — or one extra wrapping level — misclassifies the response.
func classifyUpstream(err error) bool {
	return strings.Contains(err.Error(), "upstream status 4") // want `strings\.Contains on err\.Error\(\)`
}

func prefixCheck(err error) bool {
	return strings.HasPrefix(err.Error(), "hotpaths:") // want `strings\.HasPrefix on err\.Error\(\)`
}

func compareText(err error) bool {
	return err.Error() == "gone" // want `comparing err\.Error\(\) text`
}

func switchText(err error) int {
	switch err.Error() { // want `switching on err\.Error\(\) text`
	case "gone":
		return 1
	}
	return 0
}

// Matching survives intermediate transforms: still text classification.
func lowered(err error) bool {
	return strings.Contains(strings.ToLower(err.Error()), "gone") // want `strings\.Contains on err\.Error\(\)`
}

// The legacy os predicates don't unwrap, so fmt.Errorf("...: %w", err)
// wrappers defeat them.
func legacyPredicate(err error) bool {
	return os.IsNotExist(err) // want `os\.IsNotExist does not unwrap wrapped errors`
}

// Allowed: sentinel classification.
func typedIs(err error) bool { return errors.Is(err, errGone) }

type statusError struct{ code int }

func (e *statusError) Error() string { return fmt.Sprintf("upstream status %d", e.code) }

// Allowed: typed classification — the PR 7 fix's shape.
func typedAs(err error) (int, bool) {
	var se *statusError
	if errors.As(err, &se) {
		return se.code, true
	}
	return 0, false
}

// Allowed: substring matching on text that is not an error message.
func plainContains(s string) bool { return strings.Contains(s, "upstream status 4") }

// Allowed: rendering the message for a log line; only branching on it
// is classification.
func renderForLog(err error) string { return fmt.Sprintf("failed: %s", err.Error()) }

// Allowed: a reasoned suppression directive waives the finding.
func suppressed(err error) bool {
	//hotpathsvet:ignore errstring third-party driver returns undocumented plain errors; typed wrapper tracked separately
	return strings.Contains(err.Error(), "busy")
}

package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parse builds a Package from source, type-checking without imports.
func parse(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := NewTypesInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: "p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// assigns reports every assignment statement — a probe analyzer for
// exercising the suppression machinery.
var assigns = &Analyzer{
	Name: "assigns",
	Doc:  "test probe: reports every assignment",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if a, ok := n.(*ast.AssignStmt); ok {
					pass.Reportf(a.Pos(), "assignment")
				}
				return true
			})
		}
		return nil
	},
}

func TestDirectiveSuppression(t *testing.T) {
	pkg := parse(t, `package p

func f() int {
	//hotpathsvet:ignore assigns covered by design
	a := 1
	b := 2
	//hotpathsvet:ignore other this directive names a different analyzer
	c := 3
	//hotpathsvet:ignore all everything on the next line is waived
	d := 4
	e := 5 //hotpathsvet:ignore assigns same-line directives work too
	return a + b + c + d + e
}
`)
	diags, err := RunAnalyzers(pkg, []*Analyzer{assigns})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, d.Pos.Line)
	}
	// a (line 5) suppressed; b (6) reported; c (8) reported (directive
	// names another analyzer); d (10) suppressed via "all"; e (11)
	// suppressed same-line.
	want := []int{6, 8}
	if len(lines) != len(want) {
		t.Fatalf("diagnostics on lines %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("diagnostics on lines %v, want %v", lines, want)
		}
	}
}

func TestBareDirectiveIsReported(t *testing.T) {
	pkg := parse(t, `package p

func f() int {
	//hotpathsvet:ignore assigns
	a := 1
	return a
}
`)
	diags, err := RunAnalyzers(pkg, []*Analyzer{assigns})
	if err != nil {
		t.Fatal(err)
	}
	// The reason-less directive does not suppress, and is itself a
	// finding: the assignment plus the framework complaint.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "framework" || !strings.Contains(diags[0].Message, "needs an analyzer name and a reason") {
		t.Errorf("first diagnostic = %s, want the bad-directive report", diags[0])
	}
	if diags[1].Analyzer != "assigns" {
		t.Errorf("second diagnostic = %s, want the unsuppressed assignment", diags[1])
	}
}

func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{
		Analyzer: "errstring",
		Pos:      token.Position{Filename: "gateway.go", Line: 12, Column: 7},
		Message:  "use errors.As",
	}
	if got, want := d.String(), "gateway.go:12:7: use errors.As [errstring]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDiagnosticsSorted(t *testing.T) {
	pkg := parse(t, `package p

func g() int {
	b := 2
	a := 1
	return a + b
}
`)
	diags, err := RunAnalyzers(pkg, []*Analyzer{assigns})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Pos.Line > diags[1].Pos.Line {
		t.Fatalf("diagnostics not sorted by position: %v", diags)
	}
}

package hotpaths

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// flowWorkload builds a deterministic commuter flow: objects traverse the
// same two-leg route (east, then north) with small lateral offsets and
// staggered departures, going silent after arrival. Shared routes make
// crossings pile onto the same paths, so hotness climbs while flows run
// and decays as the window slides — exactly the Entered/Changed/Left
// churn the subscription tests need (pure random walks almost never cross
// the same path twice).
func flowWorkload(nObjects int, horizon, seed int64) [][]Observation {
	rng := rand.New(rand.NewSource(seed))
	const (
		legLen = 30   // steps per leg
		speed  = 12.0 // metres per step
	)
	depart := make([]int64, nObjects)
	offset := make([]float64, nObjects)
	for i := range depart {
		depart[i] = 1 + int64(rng.Intn(int(horizon-2*legLen)))
		offset[i] = rng.Float64()*6 - 3
	}
	out := make([][]Observation, 0, horizon)
	for t := int64(1); t <= horizon; t++ {
		var batch []Observation
		for i := range depart {
			s := t - depart[i]
			if s < 0 || s > 2*legLen+5 {
				continue // not departed yet / arrived and gone quiet
			}
			var x, y float64
			switch {
			case s <= legLen:
				x, y = float64(s)*speed, offset[i]
			case s <= 2*legLen:
				x, y = legLen*speed, offset[i]+float64(s-legLen)*speed
			default:
				x, y = legLen*speed, offset[i]+legLen*speed
			}
			batch = append(batch, Observation{ObjectID: i, X: x, Y: y, T: t})
		}
		if len(batch) == 0 {
			// Keep every timestamp's batch non-empty so the feed loops can
			// read the clock from batch[0].T.
			batch = append(batch, Observation{ObjectID: nObjects, X: 0, Y: 0, T: t})
		}
		out = append(out, batch)
	}
	return out
}

// recvDelta receives one delta or fails the test after a timeout, so a
// lost publication shows up as a clear failure instead of a hang.
func recvDelta(t *testing.T, sub *Subscription) Delta {
	t.Helper()
	select {
	case d, ok := <-sub.Deltas():
		if !ok {
			t.Fatal("subscription channel closed early")
		}
		return d
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a delta")
	}
	panic("unreachable")
}

// subscriptionQueries are the standing-query shapes the golden tests run:
// a plain top-k, a hotness threshold, and a region query re-ranked by
// score — together they cover every Query feature.
func subscriptionQueries() []Query {
	return []Query{
		Query{}.K(5),
		Query{}.MinHotness(2),
		Query{}.Region(Rect{Min: Pt(50, -50), Max: Pt(370, 200)}).SortBy(ByScore).K(8),
	}
}

// runSubscribed feeds the deterministic engine workload into src while
// holding the given standing queries, checking after every epoch that the
// received delta, applied to the previous result, reproduces
// Snapshot().Query(q) exactly. It returns the full delta streams so the
// caller can compare deployments.
func runSubscribed(t *testing.T, src Source, queries []Query, batches [][]Observation) [][]Delta {
	t.Helper()
	subs := make([]*Subscription, len(queries))
	results := make([][]HotPath, len(queries))
	streams := make([][]Delta, len(queries))
	for i, q := range queries {
		sub, err := src.Subscribe(q)
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		subs[i] = sub
		// The baseline delta applies to nil and must equal the current
		// (empty) result.
		d := recvDelta(t, sub)
		streams[i] = append(streams[i], d)
		results[i] = d.Apply(nil)
		if got, want := results[i], src.Snapshot().Query(q); !reflect.DeepEqual(got, want) {
			t.Fatalf("baseline delta applies to %v, want %v", got, want)
		}
	}
	lastEpoch := src.Snapshot().Epoch()
	for _, batch := range batches {
		if err := observeAll(src, batch); err != nil {
			t.Fatal(err)
		}
		if err := src.Tick(batch[0].T); err != nil {
			t.Fatal(err)
		}
		snap := src.Snapshot()
		if snap.Epoch() == lastEpoch {
			continue // no boundary crossed: no deltas due
		}
		lastEpoch = snap.Epoch()
		for i, sub := range subs {
			d := recvDelta(t, sub)
			if d.Epoch != lastEpoch || d.Clock != snap.Clock() {
				t.Fatalf("delta stamped epoch=%d clock=%d, want epoch=%d clock=%d",
					d.Epoch, d.Clock, lastEpoch, snap.Clock())
			}
			streams[i] = append(streams[i], d)
			results[i] = d.Apply(results[i])
			if want := snap.Query(queries[i]); !reflect.DeepEqual(results[i], want) {
				t.Fatalf("query %d epoch %d: delta-applied result diverged:\n got %v\nwant %v",
					i, lastEpoch, results[i], want)
			}
		}
	}
	return streams
}

// observeAll feeds one timestamp's batch through the fastest path the
// deployment offers, mirroring how each is driven in production.
func observeAll(src Source, batch []Observation) error {
	type batcher interface {
		ObserveBatch(batch []Observation) error
	}
	if b, ok := src.(batcher); ok {
		return b.ObserveBatch(batch)
	}
	for _, o := range batch {
		if err := src.Observe(o.ObjectID, o.X, o.Y, o.T); err != nil {
			return err
		}
	}
	return nil
}

// Golden contract of the tentpole: every epoch's delta, applied to the
// previous result set, reproduces Snapshot().Query(q) exactly — on the
// System, the Engine and the Durable deployments — and all three emit
// bit-identical delta streams for the same trace. CI runs this under
// -race.
func TestSubscriptionMatchesSnapshots(t *testing.T) {
	cfg := engineTestConfig()
	batches := flowWorkload(48, 160, 42)

	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	dur, err := OpenDurable(t.TempDir(), DurableConfig{
		Config:        cfg,
		Concurrent:    true,
		Shards:        4,
		FsyncInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dur.Close() })

	streams := map[string][][]Delta{
		"system":  runSubscribed(t, sys, subscriptionQueries(), batches),
		"engine":  runSubscribed(t, eng, subscriptionQueries(), batches),
		"durable": runSubscribed(t, dur, subscriptionQueries(), batches),
	}
	for _, name := range []string{"engine", "durable"} {
		if !reflect.DeepEqual(streams["system"], streams[name]) {
			t.Errorf("%s delta streams differ from system", name)
		}
	}
	// The workload must actually have exercised the delta surface.
	var entered, left, changed int
	for _, s := range streams["system"] {
		for _, d := range s {
			entered += len(d.Entered)
			changed += len(d.Changed)
			left += len(d.Left)
		}
	}
	if entered == 0 || changed == 0 || left == 0 {
		t.Fatalf("workload too tame: entered=%d changed=%d left=%d", entered, changed, left)
	}
}

// A consumer that stops reading must not block ingestion; when it resumes
// it is re-baselined by a reset delta whose Missed counter accounts for
// every dropped epoch, and applying the received stream still lands on
// the exact current result.
func TestSubscriptionSlowConsumerResets(t *testing.T) {
	cfg := engineTestConfig()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{}.K(8)
	sub, err := sys.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// 300 timestamps = 30 epochs; with the baseline that is 31 deltas
	// against a buffer of 16, so condensation must kick in.
	const horizon = 300
	epochs := int64(0)
	for _, batch := range IngestWorkload(32, horizon, 7) {
		for _, o := range batch {
			if err := sys.Observe(o.ObjectID, o.X, o.Y, o.T); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Tick(batch[0].T); err != nil {
			t.Fatal(err)
		}
	}
	epochs = sys.Snapshot().Epoch()

	var result []HotPath
	delivered, missed, resets := 0, 0, 0
	for {
		var d Delta
		select {
		case d = <-sub.Deltas():
		default:
			d = Delta{Clock: -1}
		}
		if d.Clock == -1 {
			break
		}
		delivered++
		missed += d.Missed
		if d.Missed > 0 {
			resets++
			if !d.Reset {
				t.Fatalf("delta with Missed=%d must be a reset: %+v", d.Missed, d)
			}
		}
		result = d.Apply(result)
	}
	if resets == 0 {
		t.Fatalf("expected a reset after %d undelivered epochs, got none (delivered %d)", epochs, delivered)
	}
	// Every published delta (baseline + one per epoch) is accounted for:
	// delivered as-is, or dropped and counted by a reset.
	if int64(delivered+missed) != epochs+1 {
		t.Fatalf("delivered %d + missed %d != %d epochs + baseline", delivered, missed, epochs)
	}
	if want := sys.Snapshot().Query(q); !reflect.DeepEqual(result, want) {
		t.Fatalf("re-baselined stream diverged:\n got %v\nwant %v", result, want)
	}
}

// Subscribe/Close must be safe while another goroutine ingests and ticks
// — the -race job leans on this test — and closing the source must close
// every remaining subscription channel.
func TestSubscribeConcurrentWithIngestion(t *testing.T) {
	cfg := engineTestConfig()
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := eng.Subscribe(Query{}.K(3))
				if err != nil {
					return // engine closed under us: also fine
				}
				var result []HotPath
				for i := 0; i < 3; i++ {
					select {
					case d, ok := <-sub.Deltas():
						if !ok {
							sub.Close() // must be safe after the hub closed it
							return
						}
						result = d.Apply(result)
					case <-stop:
						sub.Close()
						return
					}
				}
				sub.Close()
			}
		}()
	}

	// A subscription that outlives the churn, to check shutdown semantics.
	held, err := eng.Subscribe(Query{})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range IngestWorkload(32, 120, 3) {
		if err := eng.ObserveBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := eng.Tick(batch[0].T); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Close drains: the held subscription's channel must end after its
	// buffered deltas.
	for i := 0; ; i++ {
		if _, ok := <-held.Deltas(); !ok {
			break
		}
		if i > subscriptionBuffer {
			t.Fatal("held subscription not closed by engine Close")
		}
	}
	if _, err := eng.Subscribe(Query{}); err == nil {
		t.Fatal("Subscribe after Close must fail")
	}
}

// The Tick contract forbids concurrent ticks, but the daemon's HTTP
// surface cannot enforce it — two producers POSTing /tick race. With a
// subscriber attached, the epoch fan-out must neither tear state (the
// snapshot is captured under the write lock) nor deliver epochs out of
// order (the hub drops stale views). The -race job leans on this test;
// losing tickers just get "time must advance" errors, which are fine.
func TestConcurrentTickersWithSubscriberStayOrdered(t *testing.T) {
	cfg := engineTestConfig()
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	sub, err := eng.Subscribe(Query{}.K(5))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	batches := flowWorkload(16, 200, 9)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, batch := range batches {
				_ = eng.ObserveBatch(batch)
				_ = eng.Tick(batch[0].T) // the loser errors; that's the contract
			}
		}()
	}
	wg.Wait()
	eng.Close() // closes the channel so the drain below terminates

	last := int64(-1)
	for d := range sub.Deltas() {
		if d.Epoch <= last {
			t.Fatalf("epoch regressed in the delta stream: %d after %d", d.Epoch, last)
		}
		last = d.Epoch
	}
	if last < 1 {
		t.Fatal("no epochs reached the subscriber")
	}
}

// Regression for the overflow-drain race: while the hub drains a full
// buffer, the consumer may concurrently steal any prefix (or arbitrary
// subset — channel receives are not serialised with the drain) of the
// queued deltas and apply them first. The reset that follows must land
// the consumer on the exact current result regardless of which state it
// reached, because Apply on a reset discards the previous result.
func TestResetDeltaOverridesAnyPriorState(t *testing.T) {
	hp := func(id uint64, h int) HotPath {
		return HotPath{ID: id, Start: Pt(0, 0), End: Pt(float64(id), 0), Hotness: h}
	}
	full := []HotPath{hp(1, 6), hp(4, 2)}
	reset := Delta{Clock: 30, Epoch: 3, Entered: full, Reset: true, Missed: 3, Order: ByHotness}
	for _, prior := range [][]HotPath{
		nil,                  // consumer stole nothing
		{hp(9, 3)},           // stole a delta that entered a since-departed path
		{hp(1, 1), hp(9, 3)}, // stale hotness and a departed path
		full,                 // already current
	} {
		if got := reset.Apply(prior); !reflect.DeepEqual(got, full) {
			t.Errorf("reset over %v applied to %v, want %v", prior, got, full)
		}
	}
	// A reset's Entered must not alias the consumer's result slice.
	out := reset.Apply(nil)
	out[0].Hotness = 99
	if reset.Entered[0].Hotness == 99 {
		t.Error("Apply must copy the reset payload")
	}
}

// Non-finite measurements must be rejected at every ingestion surface
// before they can poison filter, shard or journal state.
func TestObserveRejectsNonFinite(t *testing.T) {
	cfg := engineTestConfig()
	cfg.Delta = 0.05
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	dur, err := OpenDurable(t.TempDir(), DurableConfig{Config: cfg, FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dur.Close() })

	nan, inf := math.NaN(), math.Inf(1)
	for _, src := range []Source{sys, eng, dur} {
		for _, bad := range [][2]float64{{nan, 1}, {1, nan}, {inf, 1}, {1, -inf}} {
			if err := src.Observe(1, bad[0], bad[1], 1); err == nil {
				t.Errorf("%T.Observe(%v, %v) accepted a non-finite coordinate", src, bad[0], bad[1])
			}
		}
	}
	type noisy interface {
		ObserveNoisy(objectID int, x, y, sigmaX, sigmaY float64, t int64) error
	}
	for _, src := range []Source{sys, eng, dur} {
		n := src.(noisy)
		if err := n.ObserveNoisy(1, nan, 0, 1, 1, 1); err == nil {
			t.Errorf("%T.ObserveNoisy accepted a NaN coordinate", src)
		}
		if err := n.ObserveNoisy(1, 0, 0, inf, 1, 1); err == nil {
			t.Errorf("%T.ObserveNoisy accepted an infinite sigma", src)
		}
		if err := n.ObserveNoisy(1, 0, 0, nan, 1, 1); err == nil {
			t.Errorf("%T.ObserveNoisy accepted a NaN sigma", src)
		}
	}
	for _, src := range []interface {
		ObserveBatch(batch []Observation) error
	}{eng, dur} {
		err := src.ObserveBatch([]Observation{
			{ObjectID: 1, X: 0, Y: 0, T: 1},
			{ObjectID: 2, X: nan, Y: 0, T: 1},
		})
		if err == nil {
			t.Errorf("%T.ObserveBatch accepted a NaN coordinate", src)
		}
	}
	// The WAL must not have journaled any rejected record: recovery would
	// replay it into a fresh deployment.
	if n := dur.WAL().Records; n != 0 {
		t.Fatalf("rejected observations reached the journal: %d records", n)
	}
	// Valid observations still flow after the rejections.
	if err := sys.Observe(1, 10, 10, 1); err != nil {
		t.Fatal(err)
	}
}

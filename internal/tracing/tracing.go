// Package tracing is a dependency-free distributed tracing layer for the
// partitioned hotpaths fleet: spans with 128-bit trace IDs and parent
// links, W3C traceparent propagation over HTTP, and a bounded per-process
// ring buffer of completed traces exposed on the admin listener as
// GET /debug/traces. One gateway write fans out to N partition primaries;
// every process records its own spans under the shared trace ID, so the
// hops of a single request can be stitched back together across the fleet
// by ID alone.
//
// (The neighbouring package internal/trace is unrelated: it replays
// recorded measurement streams.)
//
// # Model
//
// A Tracer owns the per-process sampling policy and the ring of completed
// traces. A request entering the process starts a local root span —
// continuing the caller's traceparent when one is present, minting a
// fresh trace ID otherwise — and every instrumented layer underneath
// (gateway scatter legs, engine batches, WAL appends, checkpoints) hangs
// child spans off the context. When the local root ends, the process-local
// span set is committed to the ring as one completed trace.
//
// # Sampling
//
// Two triggers, matching the README's slow-request workflow:
//
//   - Probabilistic: a fresh trace is sampled when its randomly generated
//     ID falls under the configured rate. The decision is derived from the
//     ID alone, and the W3C sampled flag carries it downstream, so every
//     process of the fleet agrees without coordination.
//   - Slow requests: with a slow threshold configured, every request is
//     recorded, but the trace is only committed (and logged) when it was
//     sampled anyway or its root exceeded the threshold — tail sampling
//     for exactly the requests worth keeping.
//
// A request that is neither sampled nor under a slow threshold pays one
// context check per instrumented layer and allocates nothing: StartSpan
// on a context without a span returns nil, and every *Span method is
// nil-safe.
//
// # Cost contract
//
// Span creation is batch-granularity, like internal/metrics: one span per
// HTTP request, per partition leg, per engine batch, per WAL append call —
// never per observation record. Mutations (SetAttr, Annotate, End) take
// the owning trace's mutex; exposition marshals under the same mutex, so
// spans are safe to publish while a scrape is in flight.
package tracing

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"log/slog"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a W3C trace-context 128-bit trace ID.
type TraceID [16]byte

// SpanID is a W3C trace-context 64-bit span ID.
type SpanID [8]byte

// String returns the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String returns the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is all zeroes (invalid per the W3C spec).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is all zeroes (invalid per the W3C spec).
func (id SpanID) IsZero() bool { return id == SpanID{} }

// ParseTraceID parses 32 hex digits into a TraceID.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("tracing: trace id must be 32 hex digits, got %q", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("tracing: trace id %q: %w", s, err)
	}
	return id, nil
}

// idState drives the ID generator: a crypto-seeded counter whipped through
// a splitmix64 finaliser per draw. Cheaper than crypto/rand on the request
// path, unique within and across processes (the seed is random per
// process), and good enough mixing that the low half of a trace ID is a
// uniform sampling coin.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		// No entropy source: fall back to the clock; IDs stay unique within
		// the process, which is what the ring and stitching need.
		binary.BigEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	idState.Store(binary.BigEndian.Uint64(seed[:]))
}

func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTraceID mints a random non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:8], nextID())
		binary.BigEndian.PutUint64(id[8:], nextID())
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], nextID())
	}
	return id
}

// DefaultRingSize is the per-process completed-trace buffer capacity.
const DefaultRingSize = 256

// Tracer owns a process's sampling policy and completed-trace ring.
// The zero value is not usable; use New or the package Default.
type Tracer struct {
	service atomic.Pointer[string]
	// threshold is the sampling coin: a fresh trace is sampled when the
	// low 8 bytes of its ID, read as a uint64, fall under it.
	threshold atomic.Uint64
	slow      atomic.Int64 // time.Duration; 0 disables slow-request capture
	ring      *ring
}

// New returns a tracer for the named service. rate is the probabilistic
// sampling rate in [0,1]; slow, when positive, force-samples any request
// whose root span exceeds it.
func New(service string, rate float64, slow time.Duration) *Tracer {
	t := &Tracer{ring: newRing(DefaultRingSize)}
	t.Configure(service, rate, slow)
	return t
}

// Default is the process-wide tracer every instrumented layer records
// into. It starts dark (rate 0, no slow threshold): until a binary calls
// Configure, no request is recorded and the instrumentation costs one
// context check. Mirrors metrics.Default.
var Default = New(processName(), 0, 0)

func processName() string {
	if len(os.Args) > 0 && os.Args[0] != "" {
		base := os.Args[0]
		for i := len(base) - 1; i >= 0; i-- {
			if base[i] == '/' {
				return base[i+1:]
			}
		}
		return base
	}
	return "process"
}

// Configure sets the service name stamped on this process's spans and the
// sampling policy. Safe to call at any time; requests in flight keep the
// decision they started with.
func (t *Tracer) Configure(service string, rate float64, slow time.Duration) {
	t.service.Store(&service)
	switch {
	case rate <= 0:
		t.threshold.Store(0)
	case rate >= 1:
		t.threshold.Store(math.MaxUint64)
	default:
		t.threshold.Store(uint64(rate * math.MaxUint64))
	}
	if slow < 0 {
		slow = 0
	}
	t.slow.Store(int64(slow))
}

// Service returns the configured service name.
func (t *Tracer) Service() string { return *t.service.Load() }

// SlowThreshold returns the configured slow-request threshold (0 when
// disabled).
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slow.Load()) }

// sampleFresh is the probabilistic coin for a locally minted trace ID:
// deterministic in the ID, so any process holding the same ID — there are
// none for a fresh ID, but the property documents the design — agrees.
func (t *Tracer) sampleFresh(id TraceID) bool {
	return binary.BigEndian.Uint64(id[8:]) < t.threshold.Load()
}

// trace is the process-local container of one trace's spans. Committed to
// the ring when its local root ends and the sampling policy keeps it.
type trace struct {
	tracer  *Tracer
	id      TraceID
	sampled bool // the propagated W3C decision (probabilistic or inherited)
	seq     uint64

	mu    sync.Mutex
	spans []*Span
}

// Span is one timed operation inside a trace. A nil *Span is the valid
// "not recording" span: every method no-ops, so instrumentation sites
// never branch on sampling themselves.
type Span struct {
	tr     *trace
	name   string
	id     SpanID
	parent SpanID // zero for the trace root; remote for a continued request
	root   bool   // local root: its End commits the process's span set
	start  time.Time

	// Guarded by tr.mu after creation (exposition can race mutation).
	end   time.Time
	attrs []Attr
	notes []string
}

// Attr is one span attribute. Values should be JSON-encodable.
type Attr struct {
	Key   string
	Value any
}

func (t *Tracer) newTrace(id TraceID, sampled bool) *trace {
	return &trace{tracer: t, id: id, sampled: sampled}
}

func (tr *trace) newSpan(name string, parent SpanID, root bool) *Span {
	s := &Span{
		tr:     tr,
		name:   name,
		id:     newSpanID(),
		parent: parent,
		root:   root,
		start:  time.Now(),
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	return s
}

// StartRequest begins the process-local root span for an inbound request.
// traceparent is the raw header value ("" when absent): a valid header
// continues the caller's trace under its sampling decision; a missing or
// malformed one — or an all-zero trace or parent ID — falls back to a
// fresh root trace with a locally drawn sampling coin.
//
// It returns (ctx, nil) when the request is not recorded — not sampled and
// no slow threshold configured — which is the only cost unsampled requests
// pay.
func (t *Tracer) StartRequest(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	var (
		id      TraceID
		parent  SpanID
		sampled bool
	)
	if tid, pid, flagged, ok := parseTraceparent(traceparent); ok {
		id, parent, sampled = tid, pid, flagged
	} else {
		id = NewTraceID()
		sampled = t.sampleFresh(id)
	}
	if !sampled && t.slow.Load() == 0 {
		return ctx, nil
	}
	tr := t.newTrace(id, sampled)
	s := tr.newSpan(name, parent, true)
	return ContextWithSpan(ctx, s), s
}

// StartRoot begins a local root span with a fresh trace ID under the
// probabilistic coin — for background work that no request context covers,
// like the replication apply loop. Returns nil when the draw misses.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	id := NewTraceID()
	if !t.sampleFresh(id) {
		return ctx, nil
	}
	tr := t.newTrace(id, true)
	s := tr.newSpan(name, SpanID{}, true)
	return ContextWithSpan(ctx, s), s
}

type ctxKey struct{}

// ContextWithSpan returns ctx carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the context's span, or nil when the request is not
// being recorded. The nil span is valid: every method no-ops.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan begins a child of the context's span. On an unrecorded context
// it returns (ctx, nil) without allocating — the per-layer cost of an
// unsampled request.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tr.newSpan(name, parent.id, false)
	return ContextWithSpan(ctx, s), s
}

// End stamps the span's end time and returns its duration. Ending the
// local root commits the trace to the tracer's ring when the sampling
// policy keeps it (sampled, or root duration over the slow threshold).
// Nil-safe; ending twice keeps the first end time.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	now := time.Now()
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	dur := s.end.Sub(s.start)
	s.tr.mu.Unlock()
	if s.root {
		t := s.tr.tracer
		slow := time.Duration(t.slow.Load())
		if s.tr.sampled || (slow > 0 && dur >= slow) {
			t.ring.commit(s.tr)
		}
	}
	return dur
}

// SetAttr attaches one key/value attribute. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// Annotate appends a formatted, timestamped note to the span — the span
// equivalent of a request-scoped log line (alignment retries, degraded
// legs). Nil-safe.
func (s *Span) Annotate(format string, args ...any) {
	if s == nil {
		return
	}
	note := fmt.Sprintf("%s %s", time.Since(s.start).Round(time.Microsecond), fmt.Sprintf(format, args...))
	s.tr.mu.Lock()
	s.notes = append(s.notes, note)
	s.tr.mu.Unlock()
}

// TraceID returns the span's trace ID (zero for the nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.tr.id
}

// SpanID returns the span's ID (zero for the nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Sampled reports whether the span's trace carries the propagated sampled
// decision (false for the nil span and for slow-threshold-only recording).
func (s *Span) Sampled() bool {
	if s == nil {
		return false
	}
	return s.tr.sampled
}

// LogAttrs returns the trace_id/span_id slog attributes of the context's
// span, for stamping request-scoped log lines. Empty when the request is
// not recorded, so call sites can pass it unconditionally.
func LogAttrs(ctx context.Context) []any {
	s := FromContext(ctx)
	if s == nil {
		return nil
	}
	return []any{
		slog.String("trace_id", s.tr.id.String()),
		slog.String("span_id", s.id.String()),
	}
}

// Package hotness maintains motion-path hotness over a sliding time window
// (paper Section 5.2).
//
// Hotness of a path is the number of crossings whose exit timestamp te lies
// within the last W time units. The implementation follows the paper: a
// hash table keyed by path id holds the current counts, and an event queue
// (a binary min-heap ordered by expiry time te+W) decrements counts as
// crossings slide out of the window. Counter updates are expected O(1);
// heap operations are O(log n).
package hotness

import (
	"container/heap"
	"fmt"

	"hotpaths/internal/motion"
	"hotpaths/internal/trajectory"
)

type event struct {
	expiry trajectory.Time // te + W
	id     motion.PathID
}

type eventQueue []event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].expiry < q[j].expiry }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old = old[:n-1]
	// Re-slicing alone would pin the high-water backing array for the
	// life of the window after a mass expiry; halve the capacity whenever
	// occupancy falls below a quarter (amortised O(1) per pop, and the
	// next growth burst is still one allocation away).
	if cap(old) > minQueueCap && len(old) < cap(old)/4 {
		shrunk := make(eventQueue, len(old), cap(old)/2)
		copy(shrunk, old)
		*q = shrunk
	} else {
		*q = old
	}
	return e
}

// minQueueCap is the capacity floor below which the event queue stops
// shrinking; reallocating tiny arrays would cost more than it frees.
const minQueueCap = 64

// Window tracks per-path crossing counts over a sliding window of length W.
type Window struct {
	w      trajectory.Time
	counts map[motion.PathID]int
	queue  eventQueue
}

// New returns an empty window of length w (must be positive).
func New(w trajectory.Time) (*Window, error) {
	if w <= 0 {
		return nil, fmt.Errorf("hotness: window length must be positive, got %d", w)
	}
	return &Window{w: w, counts: make(map[motion.PathID]int)}, nil
}

// W returns the window length.
func (h *Window) W() trajectory.Time { return h.w }

// Cross records that an object crossed path id with exit timestamp te. The
// crossing counts toward hotness until te+W.
func (h *Window) Cross(id motion.PathID, te trajectory.Time) {
	h.counts[id]++
	heap.Push(&h.queue, event{expiry: te + h.w, id: id})
}

// Hotness returns the current count for id (0 if unknown).
func (h *Window) Hotness(id motion.PathID) int { return h.counts[id] }

// Len returns the number of paths with non-zero hotness.
func (h *Window) Len() int { return len(h.counts) }

// Pending returns the number of scheduled expiry events.
func (h *Window) Pending() int { return len(h.queue) }

// Advance processes all crossings that expire at or before now (i.e. with
// te+W ≤ now). When a path's count drops to zero it is removed from the
// table and onZero is invoked (the coordinator uses this to evict the path
// from the grid index). onZero may be nil.
func (h *Window) Advance(now trajectory.Time, onZero func(motion.PathID)) {
	for len(h.queue) > 0 && h.queue[0].expiry <= now {
		e := heap.Pop(&h.queue).(event)
		c := h.counts[e.id] - 1
		if c > 0 {
			h.counts[e.id] = c
			continue
		}
		delete(h.counts, e.id)
		if onZero != nil {
			onZero(e.id)
		}
	}
}

// Crossing is one scheduled expiry event, exported for checkpointing.
type Crossing struct {
	Expiry trajectory.Time // te + W
	ID     motion.PathID
}

// Dump captures the window's pending expiry events in heap layout. The
// counts table is fully derived from the events (every live crossing has
// exactly one pending event), so the dump is the complete window state.
func (h *Window) Dump() []Crossing {
	out := make([]Crossing, len(h.queue))
	for i, e := range h.queue {
		out[i] = Crossing{Expiry: e.expiry, ID: e.id}
	}
	return out
}

// Restore rebuilds a window of length w from a dump. The events are
// reinstated in the dumped order — a valid heap layout, since that is how
// they were captured — so subsequent Advance calls pop in exactly the
// order the dumped window would have.
func Restore(w trajectory.Time, events []Crossing) (*Window, error) {
	h, err := New(w)
	if err != nil {
		return nil, err
	}
	h.queue = make(eventQueue, len(events))
	for i, e := range events {
		h.queue[i] = event{expiry: e.Expiry, id: e.ID}
		h.counts[e.ID]++
	}
	return h, nil
}

// ForEach visits every (id, hotness) pair with non-zero hotness. Iteration
// stops early if fn returns false. Order is unspecified.
func (h *Window) ForEach(fn func(id motion.PathID, hotness int) bool) {
	for id, c := range h.counts {
		if !fn(id, c) {
			return
		}
	}
}

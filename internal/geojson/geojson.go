// Package geojson exports discovered hot motion paths and road networks as
// GeoJSON FeatureCollections (RFC 7946 structure with planar coordinates),
// so results drop straight into common mapping tools. Each motion path
// becomes a LineString feature with hotness, length and score properties;
// network links carry their road class.
//
// Coordinates are emitted in the simulation's metric frame. For real
// deployments with geodetic input, positions would already be in lon/lat;
// nothing in the encoding assumes otherwise.
package geojson

import (
	"encoding/json"
	"fmt"
	"io"

	"hotpaths/internal/motion"
	"hotpaths/internal/roadnet"
)

// Feature is a minimal GeoJSON feature with a LineString geometry.
type Feature struct {
	Type       string         `json:"type"`
	Geometry   Geometry       `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

// Geometry is a GeoJSON LineString.
type Geometry struct {
	Type        string       `json:"type"`
	Coordinates [][2]float64 `json:"coordinates"`
}

// FeatureCollection is the top-level GeoJSON container.
type FeatureCollection struct {
	Type     string    `json:"type"`
	Features []Feature `json:"features"`
}

// FromHotPaths converts hot motion paths into a FeatureCollection ordered
// as given (callers typically pass a TopK result, hottest first, so the
// rank property is meaningful).
func FromHotPaths(paths []motion.HotPath) FeatureCollection {
	// Features starts non-nil so an empty collection encodes as the
	// RFC 7946-required "features": [] rather than null.
	fc := FeatureCollection{Type: "FeatureCollection", Features: []Feature{}}
	for rank, hp := range paths {
		fc.Features = append(fc.Features, Feature{
			Type: "Feature",
			Geometry: Geometry{
				Type: "LineString",
				Coordinates: [][2]float64{
					{hp.Path.S.X, hp.Path.S.Y},
					{hp.Path.E.X, hp.Path.E.Y},
				},
			},
			Properties: map[string]any{
				"id":      uint64(hp.Path.ID),
				"rank":    rank + 1,
				"hotness": hp.Hotness,
				"length":  hp.Path.Length(),
				"score":   hp.Score(),
			},
		})
	}
	return fc
}

// FromNetwork converts a road network into a FeatureCollection, one
// LineString per link with its class name.
func FromNetwork(net *roadnet.Network) FeatureCollection {
	fc := FeatureCollection{Type: "FeatureCollection"}
	for _, l := range net.Links {
		a, b := net.Nodes[l.From].P, net.Nodes[l.To].P
		fc.Features = append(fc.Features, Feature{
			Type: "Feature",
			Geometry: Geometry{
				Type:        "LineString",
				Coordinates: [][2]float64{{a.X, a.Y}, {b.X, b.Y}},
			},
			Properties: map[string]any{
				"id":     l.ID,
				"class":  l.Class.String(),
				"weight": l.Class.Weight(),
			},
		})
	}
	return fc
}

// Write encodes the collection as indented JSON.
func Write(w io.Writer, fc FeatureCollection) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("geojson: %w", err)
	}
	return nil
}

package simulation

import (
	"testing"

	"hotpaths/internal/workload"
)

// The movement-model ablation, in miniature: the literal i.i.d. agility
// reading turns trajectories into random staircases in time, so RayTrace
// must report far more often and the index must inflate relative to the
// bursty traffic model on the identical network.
func TestMovementModelAblation(t *testing.T) {
	base := smallConfig(t)
	base.Duration = 150

	bursty := base
	bursty.Model = workload.Bursty
	rb, err := Run(bursty)
	if err != nil {
		t.Fatal(err)
	}
	iid := base
	iid.Model = workload.IID
	ri, err := Run(iid)
	if err != nil {
		t.Fatal(err)
	}

	if ri.Comm.UpMessages <= rb.Comm.UpMessages {
		t.Errorf("iid must report more: %d vs bursty %d",
			ri.Comm.UpMessages, rb.Comm.UpMessages)
	}
	if ri.AvgIndexSize <= rb.AvgIndexSize {
		t.Errorf("iid index %f must exceed bursty %f",
			ri.AvgIndexSize, rb.AvgIndexSize)
	}
	// Both remain correct: communication still suppressed vs naive.
	if ri.Comm.UpMessages >= ri.Comm.Measurements {
		t.Error("iid filtering must still suppress messages")
	}
}

// StopProb propagates: heavier red lights mean shorter bursts and more
// state messages per measurement.
func TestStopProbPropagates(t *testing.T) {
	few := smallConfig(t)
	few.Duration = 150
	few.StopProb = 0.2
	many := few
	many.StopProb = 0.9

	rf, err := Run(few)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(many)
	if err != nil {
		t.Fatal(err)
	}
	rateF := float64(rf.Comm.UpMessages) / float64(rf.Comm.Measurements)
	rateM := float64(rm.Comm.UpMessages) / float64(rm.Comm.Measurements)
	if rateM <= rateF {
		t.Errorf("report rate must grow with stop probability: %.4f (p=0.2) vs %.4f (p=0.9)",
			rateF, rateM)
	}
}

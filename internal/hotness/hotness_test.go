package hotness

import (
	"math/rand"
	"testing"

	"hotpaths/internal/motion"
	"hotpaths/internal/trajectory"
)

func mustWindow(t *testing.T, w trajectory.Time) *Window {
	t.Helper()
	h, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("W=0 must error")
	}
	if _, err := New(-5); err == nil {
		t.Error("negative W must error")
	}
}

func TestCrossAndHotness(t *testing.T) {
	h := mustWindow(t, 100)
	if h.W() != 100 {
		t.Error("W accessor")
	}
	h.Cross(1, 10)
	h.Cross(1, 20)
	h.Cross(2, 15)
	if h.Hotness(1) != 2 || h.Hotness(2) != 1 || h.Hotness(3) != 0 {
		t.Errorf("hotness = %d,%d,%d", h.Hotness(1), h.Hotness(2), h.Hotness(3))
	}
	if h.Len() != 2 || h.Pending() != 3 {
		t.Errorf("Len=%d Pending=%d", h.Len(), h.Pending())
	}
}

func TestAdvanceExpiry(t *testing.T) {
	h := mustWindow(t, 100)
	h.Cross(1, 10) // expires at 110
	h.Cross(1, 50) // expires at 150
	var zeroed []motion.PathID
	onZero := func(id motion.PathID) { zeroed = append(zeroed, id) }

	h.Advance(109, onZero)
	if h.Hotness(1) != 2 {
		t.Error("nothing should expire before 110")
	}
	h.Advance(110, onZero)
	if h.Hotness(1) != 1 {
		t.Errorf("first crossing should expire at exactly te+W; hotness=%d", h.Hotness(1))
	}
	if len(zeroed) != 0 {
		t.Error("path still hot, no onZero expected")
	}
	h.Advance(150, onZero)
	if h.Hotness(1) != 0 || h.Len() != 0 {
		t.Error("path should be fully expired")
	}
	if len(zeroed) != 1 || zeroed[0] != 1 {
		t.Errorf("onZero = %v", zeroed)
	}
	// Nil callback is allowed.
	h.Cross(2, 200)
	h.Advance(400, nil)
	if h.Len() != 0 {
		t.Error("nil-callback advance should still expire")
	}
}

func TestAdvanceOrderIndependentOfInsertion(t *testing.T) {
	h := mustWindow(t, 10)
	// Insert out of te order; the heap must expire in te order anyway.
	h.Cross(1, 50)
	h.Cross(2, 5)
	h.Cross(3, 30)
	var order []motion.PathID
	for _, now := range []trajectory.Time{15, 40, 60} {
		h.Advance(now, func(id motion.PathID) { order = append(order, id) })
	}
	want := []motion.PathID{2, 3, 1}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("expiry order = %v want %v", order, want)
	}
}

func TestForEach(t *testing.T) {
	h := mustWindow(t, 10)
	h.Cross(1, 1)
	h.Cross(2, 1)
	h.Cross(2, 2)
	sum := 0
	h.ForEach(func(id motion.PathID, c int) bool { sum += c; return true })
	if sum != 3 {
		t.Errorf("total crossings = %d", sum)
	}
	n := 0
	h.ForEach(func(motion.PathID, int) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

// Property: after any interleaving of crossings and advances, the counts
// equal a brute-force recount of the un-expired crossings.
func TestWindowMatchesBruteForce(t *testing.T) {
	const W = 50
	rng := rand.New(rand.NewSource(5))
	h := mustWindow(t, W)
	type crossing struct {
		id motion.PathID
		te trajectory.Time
	}
	var all []crossing
	now := trajectory.Time(0)
	for step := 0; step < 5000; step++ {
		if rng.Float64() < 0.7 {
			c := crossing{id: motion.PathID(rng.Intn(20)), te: now}
			all = append(all, c)
			h.Cross(c.id, c.te)
		} else {
			now += trajectory.Time(rng.Intn(10))
			h.Advance(now, nil)
		}
		if step%250 != 0 {
			continue
		}
		want := make(map[motion.PathID]int)
		for _, c := range all {
			if c.te+W > now { // not yet expired
				want[c.id]++
			}
		}
		for id := motion.PathID(0); id < 20; id++ {
			if h.Hotness(id) != want[id] {
				t.Fatalf("step %d now %d: hotness(%d) = %d want %d",
					step, now, id, h.Hotness(id), want[id])
			}
		}
		if h.Len() != len(want) {
			t.Fatalf("Len %d want %d", h.Len(), len(want))
		}
	}
}

// After a mass expiry the event queue's backing array must shrink: Pop
// used to re-slice only, pinning the high-water allocation for the life
// of the window.
func TestEventQueueShrinksAfterMassExpiry(t *testing.T) {
	h := mustWindow(t, 10)
	const n = 1 << 14
	for i := 0; i < n; i++ {
		h.Cross(motion.PathID(i), trajectory.Time(i%100+1))
	}
	highWater := cap(h.queue)
	if highWater < n {
		t.Fatalf("sanity: queue capacity %d below %d events", highWater, n)
	}

	// Expire everything; the drain must hand the memory back instead of
	// keeping a 16k-event array behind an empty queue.
	h.Advance(1_000_000, nil)
	if h.Pending() != 0 || h.Len() != 0 {
		t.Fatalf("window not drained: %d pending, %d counts", h.Pending(), h.Len())
	}
	if c := cap(h.queue); c > highWater/8 {
		t.Errorf("event queue capacity %d did not shrink from high water %d", c, highWater)
	}

	// Shrinking must not corrupt the heap: a fresh burst still expires in
	// exact order.
	for i := 0; i < 100; i++ {
		h.Cross(motion.PathID(i), trajectory.Time(2_000_000+int64(i)))
	}
	h.Advance(2_000_000+50+10, nil)
	if got := h.Len(); got != 49 {
		t.Fatalf("after partial re-expiry: %d live paths, want 49", got)
	}
}

// A partial expiry must shrink too, without touching surviving events.
func TestEventQueueShrinkKeepsSurvivors(t *testing.T) {
	h := mustWindow(t, 5)
	const n = 4096
	for i := 0; i < n; i++ {
		h.Cross(motion.PathID(i), trajectory.Time(i+1))
	}
	before := cap(h.queue)
	// Expire all but the last 64 crossings (te+W <= n-64+5).
	h.Advance(trajectory.Time(n-64+5), nil)
	if got := h.Pending(); got != 64 {
		t.Fatalf("pending %d want 64", got)
	}
	if c := cap(h.queue); c >= before {
		t.Errorf("capacity %d did not drop from %d", c, before)
	}
	for i := n - 64; i < n; i++ {
		if h.Hotness(motion.PathID(i)) != 1 {
			t.Fatalf("survivor %d lost its count", i)
		}
	}
}

package metrics

import (
	"sync"
	"time"
)

// SLOOptions configures multi-window SLO burn-rate derivation over
// instruments a registry already holds — the per-route request counters
// and latency histograms the HTTP layers register. Derivation is pure
// scrape-side arithmetic: nothing new is recorded on the request path.
type SLOOptions struct {
	// RequestsTotal names the counter family carrying one counter per
	// {route, code} with code a status class ("2xx".."5xx"). Requests in
	// the "5xx" class spend availability error budget.
	RequestsTotal string
	// LatencySeconds names the histogram family carrying one latency
	// histogram per route. Observations over LatencyThreshold spend
	// latency error budget.
	LatencySeconds string

	// AvailabilityObjective is the target fraction of non-5xx requests
	// (default 0.999). LatencyObjective is the target fraction of
	// requests under LatencyThreshold seconds (default 0.99, threshold
	// default 0.25 — snapped down to a bucket bound at evaluation, since
	// bucket counts are the only sub-histogram resolution available).
	AvailabilityObjective float64
	LatencyObjective      float64
	LatencyThreshold      float64

	// FastWindow (default 5m) catches fast burn — an incident in
	// progress; SlowWindow (default 1h) catches slow burn — budget
	// leaking away. Interval (default 10s) is the sampling cadence that
	// bounds window resolution.
	FastWindow time.Duration
	SlowWindow time.Duration
	Interval   time.Duration
}

func (o *SLOOptions) defaults() {
	if o.AvailabilityObjective <= 0 || o.AvailabilityObjective >= 1 {
		o.AvailabilityObjective = 0.999
	}
	if o.LatencyObjective <= 0 || o.LatencyObjective >= 1 {
		o.LatencyObjective = 0.99
	}
	if o.LatencyThreshold <= 0 {
		o.LatencyThreshold = 0.25
	}
	if o.FastWindow <= 0 {
		o.FastWindow = 5 * time.Minute
	}
	if o.SlowWindow <= o.FastWindow {
		o.SlowWindow = time.Hour
	}
	if o.Interval <= 0 {
		o.Interval = 10 * time.Second
	}
}

// sloSample is one cumulative reading of the SLO inputs.
type sloSample struct {
	t                 time.Time
	total, errs       uint64 // requests, 5xx requests
	latTotal, latGood uint64 // latency observations, under-threshold ones
}

// SLOStatus is one evaluation of every burn gauge, for /healthz
// component breakdowns and tests.
type SLOStatus struct {
	AvailabilityFast float64 `json:"availability_burn_fast"`
	AvailabilitySlow float64 `json:"availability_burn_slow"`
	LatencyFast      float64 `json:"latency_burn_fast"`
	LatencySlow      float64 `json:"latency_burn_slow"`
}

// Max returns the worst burn across objectives and windows.
func (s SLOStatus) Max() float64 {
	m := s.AvailabilityFast
	for _, v := range []float64{s.AvailabilitySlow, s.LatencyFast, s.LatencySlow} {
		if v > m {
			m = v
		}
	}
	return m
}

// SLO derives multi-window burn rates from a registry's own instruments.
// A burn rate of 1.0 means error budget is being spent exactly as fast
// as the objective allows over that window; an alert rule pages on
// sustained fast-window burn well above 1 (see the README's starter
// expressions).
type SLO struct {
	reg *Registry
	o   SLOOptions

	mu      sync.Mutex
	samples []sloSample // ring, oldest overwritten
	pos, n  int

	stop     chan struct{}
	stopOnce sync.Once
}

// StartSLO registers the hotpaths_slo_* gauge families on reg and starts
// the background sampler feeding them. The gauges are computed at scrape
// time from retained samples; the request path pays nothing.
func StartSLO(reg *Registry, o SLOOptions) *SLO {
	o.defaults()
	cap := int(o.SlowWindow/o.Interval) + 2
	s := &SLO{reg: reg, o: o, samples: make([]sloSample, cap), stop: make(chan struct{})}
	s.Sample()

	reg.GaugeFunc("hotpaths_slo_availability_objective_ratio",
		"configured availability SLO: target fraction of non-5xx requests",
		nil, func() float64 { return o.AvailabilityObjective })
	reg.GaugeFunc("hotpaths_slo_latency_objective_ratio",
		"configured latency SLO: target fraction of requests under the threshold",
		nil, func() float64 { return o.LatencyObjective })
	reg.GaugeFunc("hotpaths_slo_latency_threshold_seconds",
		"latency SLO threshold (snapped down to a histogram bucket bound)",
		nil, func() float64 { return o.LatencyThreshold })
	reg.GaugeFunc("hotpaths_slo_availability_burn_ratio",
		"availability error-budget burn rate over the window (1.0 = spending budget exactly at the objective rate)",
		Labels{"window": "fast"}, func() float64 { return s.Status().AvailabilityFast })
	reg.GaugeFunc("hotpaths_slo_availability_burn_ratio",
		"availability error-budget burn rate over the window (1.0 = spending budget exactly at the objective rate)",
		Labels{"window": "slow"}, func() float64 { return s.Status().AvailabilitySlow })
	reg.GaugeFunc("hotpaths_slo_latency_burn_ratio",
		"latency error-budget burn rate over the window (1.0 = spending budget exactly at the objective rate)",
		Labels{"window": "fast"}, func() float64 { return s.Status().LatencyFast })
	reg.GaugeFunc("hotpaths_slo_latency_burn_ratio",
		"latency error-budget burn rate over the window (1.0 = spending budget exactly at the objective rate)",
		Labels{"window": "slow"}, func() float64 { return s.Status().LatencySlow })

	go s.run()
	return s
}

func (s *SLO) run() {
	t := time.NewTicker(s.o.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Sample()
		}
	}
}

// Stop halts the background sampler. The gauges keep answering from
// retained samples.
func (s *SLO) Stop() { s.stopOnce.Do(func() { close(s.stop) }) }

// Sample takes one cumulative reading now. The background sampler calls
// it on its cadence; tests call it directly to advance time-free.
func (s *SLO) Sample() {
	sm := s.collect()
	s.mu.Lock()
	s.samples[s.pos] = sm
	s.pos = (s.pos + 1) % len(s.samples)
	if s.n < len(s.samples) {
		s.n++
	}
	s.mu.Unlock()
}

// collect reads the cumulative SLO inputs from the registry's live
// instruments.
func (s *SLO) collect() sloSample {
	sm := sloSample{t: time.Now()}
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	if f, ok := s.reg.families[s.o.RequestsTotal]; ok && f.kind == kindCounter {
		for key, m := range f.metrics {
			c, ok := m.(*Counter)
			if !ok {
				continue
			}
			v := c.Value()
			sm.total += v
			if isErrorClass(key) {
				sm.errs += v
			}
		}
	}
	if f, ok := s.reg.families[s.o.LatencySeconds]; ok && f.kind == kindHistogram {
		for _, m := range f.metrics {
			h, ok := m.(*Histogram)
			if !ok {
				continue
			}
			sm.latTotal += h.Count()
			var under uint64
			for i, b := range h.bounds {
				if b > s.o.LatencyThreshold {
					break
				}
				under += h.counts[i].Load()
			}
			sm.latGood += under
		}
	}
	return sm
}

// isErrorClass reports whether a rendered label key carries code="5xx".
// Label keys are rendered with sorted names and quoted values, so a
// substring probe is exact.
func isErrorClass(renderedLabels string) bool {
	return containsLabel(renderedLabels, `code="5xx"`)
}

func containsLabel(rendered, probe string) bool {
	for i := 0; i+len(probe) <= len(rendered); i++ {
		if rendered[i:i+len(probe)] == probe {
			return true
		}
	}
	return false
}

// Status evaluates every burn gauge now.
func (s *SLO) Status() SLOStatus {
	cur := s.collect()
	fast := s.at(cur.t.Add(-s.o.FastWindow))
	slow := s.at(cur.t.Add(-s.o.SlowWindow))
	return SLOStatus{
		AvailabilityFast: burn(cur.total-fast.total, cur.errs-fast.errs, s.o.AvailabilityObjective),
		AvailabilitySlow: burn(cur.total-slow.total, cur.errs-slow.errs, s.o.AvailabilityObjective),
		LatencyFast:      burn(cur.latTotal-fast.latTotal, (cur.latTotal-cur.latGood)-(fast.latTotal-fast.latGood), s.o.LatencyObjective),
		LatencySlow:      burn(cur.latTotal-slow.latTotal, (cur.latTotal-cur.latGood)-(slow.latTotal-slow.latGood), s.o.LatencyObjective),
	}
}

// at returns the newest retained sample at or before t, or the oldest
// retained sample when none is old enough (early in process life, every
// window degrades to "since start", which is the honest answer).
func (s *SLO) at(t time.Time) sloSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return sloSample{}
	}
	start := s.pos - s.n
	best := s.samples[(start+len(s.samples))%len(s.samples)]
	for i := 0; i < s.n; i++ {
		sm := s.samples[(start+i+len(s.samples))%len(s.samples)]
		if sm.t.After(t) {
			break
		}
		best = sm
	}
	return best
}

// burn turns a windowed (total, bad) delta into an error-budget burn
// rate against the objective: badFraction / (1 - objective). No traffic
// burns nothing.
func burn(total, bad uint64, objective float64) float64 {
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - objective)
}

package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotpaths"
	"hotpaths/internal/partition"
)

// fakePart is a scriptable stand-in for one partition daemon: it records
// the writes it receives and serves a fixed path set, so the tests can
// check routing (what reached whom, how many times) and failure handling
// (what the gateway answers when a partition is down).
type fakePart struct {
	id, count int

	failing atomic.Bool // 500 on every request while set

	observeHook func() // runs inside /observe, before the share is recorded

	mu      sync.Mutex
	batches [][]hotpaths.ObservationJSON
	ticks   []int64
	paths   []hotpaths.PathJSON
	epoch   int64
	srv     *httptest.Server
}

func newFakePart(t *testing.T, id, count int) *fakePart {
	t.Helper()
	f := &fakePart{id: id, count: count}
	mux := http.NewServeMux()
	guard := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if f.failing.Load() {
				http.Error(w, `{"error":"injected failure"}`, http.StatusInternalServerError)
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("POST /observe", guard(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Observations []hotpaths.ObservationJSON `json:"observations"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if f.observeHook != nil {
			f.observeHook()
		}
		f.mu.Lock()
		f.batches = append(f.batches, req.Observations)
		f.mu.Unlock()
		fmt.Fprintf(w, `{"accepted": %d}`, len(req.Observations))
	}))
	mux.HandleFunc("POST /tick", guard(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Now int64 `json:"now"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.ticks = append(f.ticks, req.Now)
		f.mu.Unlock()
		fmt.Fprintf(w, `{"now": %d}`, req.Now)
	}))
	mux.HandleFunc("GET /paths", guard(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		paths, epoch := f.paths, f.epoch
		f.mu.Unlock()
		if paths == nil {
			paths = []hotpaths.PathJSON{}
		}
		w.Header().Set(hotpaths.EpochHeader, strconv.FormatInt(epoch, 10))
		w.Header().Set(hotpaths.ClockHeader, strconv.FormatInt(epoch*10, 10))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(paths)
	}))
	mux.HandleFunc("GET /healthz", guard(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	mux.HandleFunc("GET /stats", guard(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		epoch := f.epoch
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{
			"partition_id":    f.id,
			"partition_count": f.count,
			"epoch":           epoch,
			"clock":           epoch * 10,
			"observations":    1,
			"index_size":      len(f.paths),
		})
	}))
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func newFakeFleet(t *testing.T, n int) []*fakePart {
	t.Helper()
	fleet := make([]*fakePart, n)
	for i := range fleet {
		fleet[i] = newFakePart(t, i, n)
	}
	return fleet
}

func newTestGateway(t *testing.T, fleet []*fakePart, probe time.Duration) *Gateway {
	t.Helper()
	urls := make([]string, len(fleet))
	for i, f := range fleet {
		urls[i] = f.srv.URL
	}
	g, err := New(Config{
		Table:         partition.NewTable(urls...),
		K:             10,
		ProbeInterval: probe,
		AlignRetries:  3,
		AlignWait:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func doReq(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// hp builds one wire path with a distinguishable id and hotness.
func hp(id uint64, hotness int) hotpaths.PathJSON {
	return hotpaths.PathJSON{
		ID: id, Hotness: hotness,
		Start: hotpaths.PointJSON{X: 0, Y: float64(id)},
		End:   hotpaths.PointJSON{X: 100, Y: float64(id)},
	}
}

// TestBatchSplitExactlyOnce is the routing contract: a cross-partition
// batch is split by owner, each share arrives at exactly one partition
// exactly once, in the batch's relative order, and the epoch barrier
// reaches every partition — including those with no records in the batch.
func TestBatchSplitExactlyOnce(t *testing.T) {
	fleet := newFakeFleet(t, 4)
	g := newTestGateway(t, fleet, -1)
	h := g.Handler()

	var obs []hotpaths.ObservationJSON
	for id := 1; id <= 20; id++ {
		obs = append(obs, hotpaths.ObservationJSON{Object: id, X: float64(id), Y: 1, T: 5})
	}
	rec := doReq(t, h, http.MethodPost, "/observe_batch", map[string]any{
		"observations": obs, "tick": 5,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("observe: %d %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Accepted int   `json:"accepted"`
		Now      int64 `json:"now"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 20 || resp.Now != 5 {
		t.Fatalf("response = %+v, want accepted 20 now 5", resp)
	}

	seen := make(map[int]int) // object id -> deliveries
	for i, f := range fleet {
		f.mu.Lock()
		if len(f.batches) > 1 {
			t.Errorf("partition %d received %d batches, want at most 1", i, len(f.batches))
		}
		prevIdx := -1
		for _, batch := range f.batches {
			for _, o := range batch {
				seen[o.Object]++
				if got := partition.Index(o.Object, 4); got != i {
					t.Errorf("object %d (owner %d) delivered to partition %d", o.Object, got, i)
				}
				// Relative order within the original batch must survive
				// the split: object ids were fed ascending.
				if o.Object <= prevIdx {
					t.Errorf("partition %d: objects out of relative order: %d after %d", i, o.Object, prevIdx)
				}
				prevIdx = o.Object
			}
		}
		if len(f.ticks) != 1 || f.ticks[0] != 5 {
			t.Errorf("partition %d ticks = %v, want [5]", i, f.ticks)
		}
		f.mu.Unlock()
	}
	for id := 1; id <= 20; id++ {
		if seen[id] != 1 {
			t.Errorf("object %d delivered %d times, want exactly once", id, seen[id])
		}
	}
}

// TestMergeSumsByID: a corridor discovered by two partitions (one id,
// content-addressed) merges into one path with summed hotness.
func TestMergeSumsByID(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	fleet[0].paths = []hotpaths.PathJSON{hp(9, 6), hp(7, 2)}
	fleet[1].paths = []hotpaths.PathJSON{hp(7, 3)}
	g := newTestGateway(t, fleet, -1)

	rec := doReq(t, g.Handler(), http.MethodGet, "/topk", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("topk: %d %s", rec.Code, rec.Body.String())
	}
	var got []hotpaths.PathJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d paths, want 2 (id 7 merged)", len(got))
	}
	if got[0].ID != 9 || got[0].Hotness != 6 {
		t.Errorf("rank 1 = id %d hotness %d, want id 9 hotness 6", got[0].ID, got[0].Hotness)
	}
	if got[1].ID != 7 || got[1].Hotness != 5 {
		t.Errorf("rank 2 = id %d hotness %d, want id 7 hotness 2+3", got[1].ID, got[1].Hotness)
	}
}

// TestPartialResults: a dead partition turns reads into 206 with the
// missing partition named in X-Hotpaths-Partial; the partial view is
// never cached, so the read heals as soon as the partition does; with
// every partition down the gateway answers 502.
func TestPartialResults(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	fleet[0].paths = []hotpaths.PathJSON{hp(1, 4)}
	fleet[1].paths = []hotpaths.PathJSON{hp(2, 9)}
	g := newTestGateway(t, fleet, -1)
	h := g.Handler()

	fleet[1].failing.Store(true)
	rec := doReq(t, h, http.MethodGet, "/paths", nil)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("paths with partition 1 down: %d, want 206", rec.Code)
	}
	if got := rec.Header().Get(hotpaths.PartialHeader); got != "1" {
		t.Fatalf("%s = %q, want \"1\"", hotpaths.PartialHeader, got)
	}
	var got []hotpaths.PathJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("partial body = %+v, want partition 0's path only", got)
	}

	// Heal: the 206 must not have been cached.
	fleet[1].failing.Store(false)
	rec = doReq(t, h, http.MethodGet, "/paths", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("paths after heal: %d, want 200", rec.Code)
	}
	if got := rec.Header().Get(hotpaths.PartialHeader); got != "" {
		t.Fatalf("healed response still partial: %q", got)
	}
	got = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("healed body has %d paths, want 2", len(got))
	}

	fleet[0].failing.Store(true)
	fleet[1].failing.Store(true)
	// The healed read above cached a complete view, which legitimately
	// keeps answering (the fleet cannot have changed without a routed
	// write). A write invalidates it; only then must reads fail hard.
	doReq(t, h, http.MethodPost, "/tick", map[string]any{"now": 99})
	rec = doReq(t, h, http.MethodGet, "/topk", nil)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("topk with whole fleet down: %d, want 502", rec.Code)
	}
}

// TestWriteFailureExactlyOnce: with one partition down, a cross-partition
// batch answers 503, the healthy partition has applied its share exactly
// once (no retry, no duplicate), and the response maps each touched
// partition to "ok" or its error so the operator knows where the records
// went.
func TestWriteFailureExactlyOnce(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	g := newTestGateway(t, fleet, -1)
	h := g.Handler()

	// Objects 1 and 2 happen to split across the two partitions; assert
	// rather than assume.
	if partition.Index(1, 2) == partition.Index(2, 2) {
		t.Fatal("test objects 1 and 2 no longer split across 2 partitions")
	}
	down := partition.Index(1, 2)
	fleet[down].failing.Store(true)

	rec := doReq(t, h, http.MethodPost, "/observe", map[string]any{
		"observations": []hotpaths.ObservationJSON{
			{Object: 1, X: 1, Y: 1, T: 1},
			{Object: 2, X: 2, Y: 2, T: 1},
		},
	})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("observe with partition %d down: %d, want 503", down, rec.Code)
	}
	var resp struct {
		Error      string            `json:"error"`
		Partitions map[string]string `json:"partitions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	up := 1 - down
	if resp.Partitions[strconv.Itoa(up)] != "ok" {
		t.Errorf("healthy partition reported %q, want \"ok\"", resp.Partitions[strconv.Itoa(up)])
	}
	if resp.Partitions[strconv.Itoa(down)] == "" || resp.Partitions[strconv.Itoa(down)] == "ok" {
		t.Errorf("failed partition reported %q, want its error", resp.Partitions[strconv.Itoa(down)])
	}

	fleet[up].mu.Lock()
	if len(fleet[up].batches) != 1 || len(fleet[up].batches[0]) != 1 {
		t.Errorf("healthy partition batches = %v, want exactly one single-record batch", fleet[up].batches)
	}
	fleet[up].mu.Unlock()
	fleet[down].mu.Lock()
	if len(fleet[down].batches) != 0 {
		t.Errorf("failed partition recorded %d batches, want 0", len(fleet[down].batches))
	}
	fleet[down].mu.Unlock()
}

// TestHealthzDegrades: the prober turns a dead partition into a 503
// /healthz naming it, and recovery turns it back.
func TestHealthzDegrades(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	g := newTestGateway(t, fleet, 5*time.Millisecond)
	h := g.Handler()

	if rec := doReq(t, h, http.MethodGet, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("initial healthz: %d %s", rec.Code, rec.Body.String())
	}

	fleet[1].failing.Store(true)
	waitFor(t, "healthz to degrade", func() bool {
		return doReq(t, h, http.MethodGet, "/healthz", nil).Code == http.StatusServiceUnavailable
	})
	rec := doReq(t, h, http.MethodGet, "/healthz", nil)
	if rec.Code == http.StatusServiceUnavailable {
		var body struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if body.Status != "degraded" || body.Error == "" {
			t.Errorf("degraded body = %+v, want status degraded with an error", body)
		}
	}

	fleet[1].failing.Store(false)
	waitFor(t, "healthz to recover", func() bool {
		return doReq(t, h, http.MethodGet, "/healthz", nil).Code == http.StatusOK
	})
}

// TestTopologyMismatch: a daemon declaring a different partition slot
// than the table assigns it (a crossed wire in the fleet config) degrades
// health rather than silently serving misrouted traffic.
func TestTopologyMismatch(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	fleet[1].id = 0 // daemon thinks it is partition 0; table says 1
	g := newTestGateway(t, fleet, -1)

	rec := doReq(t, g.Handler(), http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with misdeclared partition: %d, want 503", rec.Code)
	}
	if body := rec.Body.String(); !bytes.Contains([]byte(body), []byte("topology mismatch")) {
		t.Errorf("healthz body %q does not name the topology mismatch", body)
	}
}

// TestCacheInvalidatedByWrites: the merged view is cached between
// writes (all writes flow through the gateway) and re-gathered after
// any routed write.
func TestCacheInvalidatedByWrites(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	fleet[0].paths = []hotpaths.PathJSON{hp(1, 1)}
	g := newTestGateway(t, fleet, -1)
	h := g.Handler()

	doReq(t, h, http.MethodGet, "/paths", nil) // warm the cache
	fleet[0].mu.Lock()
	fleet[0].paths = []hotpaths.PathJSON{hp(1, 8)}
	fleet[0].mu.Unlock()

	// No write yet: the cached view still answers.
	rec := doReq(t, h, http.MethodGet, "/paths", nil)
	var got []hotpaths.PathJSON
	json.Unmarshal(rec.Body.Bytes(), &got)
	if len(got) != 1 || got[0].Hotness != 1 {
		t.Fatalf("cached read = %+v, want the pre-write view (hotness 1)", got)
	}

	// A routed write invalidates; the next read re-gathers.
	doReq(t, h, http.MethodPost, "/tick", map[string]any{"now": 10})
	rec = doReq(t, h, http.MethodGet, "/paths", nil)
	got = nil
	json.Unmarshal(rec.Body.Bytes(), &got)
	if len(got) != 1 || got[0].Hotness != 8 {
		t.Fatalf("post-write read = %+v, want the fresh view (hotness 8)", got)
	}
}

// TestObserveReadYourWrites: a read racing an in-flight /observe must not
// poison the cache. Regression: invalidating before the forward let a
// mid-write read gather the pre-write state and cache it under the
// post-write generation — with no tick attached, nothing ever invalidated
// it, so the gateway kept serving the stale view after the write's 200.
func TestObserveReadYourWrites(t *testing.T) {
	fleet := newFakeFleet(t, 1)
	fleet[0].paths = []hotpaths.PathJSON{hp(1, 1)}
	g := newTestGateway(t, fleet, -1)
	h := g.Handler()

	doReq(t, h, http.MethodGet, "/paths", nil) // warm the cache

	inWrite := make(chan struct{})
	release := make(chan struct{})
	fleet[0].observeHook = func() {
		close(inWrite)
		<-release
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- doReq(t, h, http.MethodPost, "/observe", map[string]any{
			"observations": []hotpaths.ObservationJSON{{Object: 1, X: 1, Y: 1, T: 1}},
		})
	}()
	<-inWrite
	// Concurrent read while the write is in flight: it legitimately sees
	// the pre-write state, but must not cache it past the write.
	doReq(t, h, http.MethodGet, "/paths", nil)
	// The write "applies": the partition serves the post-write state.
	fleet[0].mu.Lock()
	fleet[0].paths = []hotpaths.PathJSON{hp(1, 8)}
	fleet[0].mu.Unlock()
	close(release)
	if rec := <-done; rec.Code != http.StatusOK {
		t.Fatalf("observe: %d %s", rec.Code, rec.Body.String())
	}

	rec := doReq(t, h, http.MethodGet, "/paths", nil)
	var got []hotpaths.PathJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Hotness != 8 {
		t.Fatalf("read after observe = %+v, want the post-write view (hotness 8)", got)
	}
}

// TestStaleEpochExcluded: when alignment retries run dry with a partition
// stuck at an older epoch, its paths are excluded from the merge AND it
// is named in X-Hotpaths-Partial — never both "absent" and merged in.
func TestStaleEpochExcluded(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	fleet[0].paths = []hotpaths.PathJSON{hp(1, 4)}
	fleet[0].epoch = 5
	fleet[1].paths = []hotpaths.PathJSON{hp(2, 9)}
	fleet[1].epoch = 3 // permanently behind: retries cannot fix it
	g := newTestGateway(t, fleet, -1)

	rec := doReq(t, g.Handler(), http.MethodGet, "/paths", nil)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("paths with a stuck partition: %d, want 206", rec.Code)
	}
	if got := rec.Header().Get(hotpaths.PartialHeader); got != "1" {
		t.Fatalf("%s = %q, want \"1\"", hotpaths.PartialHeader, got)
	}
	if got := rec.Header().Get(hotpaths.EpochHeader); got != "5" {
		t.Fatalf("%s = %q, want the target epoch \"5\"", hotpaths.EpochHeader, got)
	}
	var got []hotpaths.PathJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("merged body = %+v, want the stale partition's paths excluded", got)
	}
}

// TestWriteErrStatusClassification: the 400-vs-503 split keys off the
// typed upstream status, not the error text — an upstream whose error
// body happens to contain "upstream status 4xx" is still a 503.
func TestWriteErrStatusClassification(t *testing.T) {
	for _, tc := range []struct {
		name string
		errs []partError
		want int
	}{
		{"all 4xx", []partError{{0, &upstreamError{status: 400}}, {1, &upstreamError{status: 422}}}, http.StatusBadRequest},
		{"5xx", []partError{{0, &upstreamError{status: 500}}}, http.StatusServiceUnavailable},
		{"4xx and unreachable", []partError{{0, &upstreamError{status: 400}}, {1, errors.New("dial tcp: refused")}}, http.StatusServiceUnavailable},
		{"echoed text is not a status", []partError{{0, errors.New(`500: body says "upstream status 400"`)}}, http.StatusServiceUnavailable},
	} {
		if got := writeErrStatus(tc.errs); got != tc.want {
			t.Errorf("%s: writeErrStatus = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestStatsAllPartitionsDown: /stats fails hard (502) when no partition
// answers, matching the merged read endpoints, rather than presenting
// all-zero sums as a partial result.
func TestStatsAllPartitionsDown(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	g := newTestGateway(t, fleet, -1)
	fleet[0].failing.Store(true)
	fleet[1].failing.Store(true)

	rec := doReq(t, g.Handler(), http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("stats with whole fleet down: %d, want 502", rec.Code)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Error == "" {
		t.Fatal("502 stats body carries no error")
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

package hotpaths

import (
	"io"

	"hotpaths/internal/geojson"
	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
)

// EpochHeader is the HTTP response header hotpathsd's read endpoints set
// to the epoch sequence number of the snapshot that answered the request.
// A scatter-gather reader uses it to verify that every partition of a
// fleet answered at the same epoch before merging their results.
const EpochHeader = "X-Hotpaths-Epoch"

// ClockHeader is the companion of EpochHeader carrying the snapshot's
// clock (the timestamp of the last Tick it reflects).
const ClockHeader = "X-Hotpaths-Clock"

// PartialHeader is set by a gateway when a scatter-gather response is
// missing one or more partitions (HTTP 206): a comma-separated list of
// the partition ids whose results are absent.
const PartialHeader = "X-Hotpaths-Partial"

// PointJSON is the wire form of a Point.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// PathJSON is the canonical wire form of a HotPath: the path's identity
// and geometry plus its 1-based rank in the result it was taken from and
// the derived length and score, so clients need no follow-up computation.
// It is the element type of hotpathsd's /topk and /paths responses.
type PathJSON struct {
	ID      uint64    `json:"id"`
	Rank    int       `json:"rank"`
	Hotness int       `json:"hotness"`
	Length  float64   `json:"length"`
	Score   float64   `json:"score"`
	Start   PointJSON `json:"start"`
	End     PointJSON `json:"end"`
}

// PathsJSON converts a query result to its wire form, assigning ranks in
// the order given (pass a TopK or Query result so rank 1 is the best
// match). It returns a non-nil slice so an empty result encodes as [].
func PathsJSON(paths []HotPath) []PathJSON {
	out := make([]PathJSON, len(paths))
	for i, hp := range paths {
		out[i] = PathJSON{
			ID:      hp.ID,
			Rank:    i + 1,
			Hotness: hp.Hotness,
			Length:  hp.Length(),
			Score:   hp.Score(),
			Start:   PointJSON{hp.Start.X, hp.Start.Y},
			End:     PointJSON{hp.End.X, hp.End.Y},
		}
	}
	return out
}

// HotPath converts the wire form back to a HotPath, dropping the derived
// rank/length/score fields (they are recomputed from geometry and hotness
// wherever they are needed). Float64 coordinates survive the JSON round
// trip bit-exactly — Go emits the shortest representation that parses
// back to the same value — so a merged, re-encoded result is
// byte-identical to one computed locally from the same paths.
func (p PathJSON) HotPath() HotPath {
	return HotPath{
		ID:      p.ID,
		Start:   Pt(p.Start.X, p.Start.Y),
		End:     Pt(p.End.X, p.End.Y),
		Hotness: p.Hotness,
	}
}

// ObservationJSON is the wire form of one measurement, the element of
// hotpathsd's POST /observe body. It lives in the library so routers and
// clients share one encoding with the daemon.
type ObservationJSON struct {
	Object int     `json:"object"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	T      int64   `json:"t"`
	SigmaX float64 `json:"sigma_x,omitempty"`
	SigmaY float64 `json:"sigma_y,omitempty"`
}

// Observation converts the wire form to the ingestion type.
func (o ObservationJSON) Observation() Observation {
	return Observation{
		ObjectID: o.Object,
		X:        o.X, Y: o.Y, T: o.T,
		SigmaX: o.SigmaX, SigmaY: o.SigmaY,
	}
}

// WriteGeoJSON writes paths as a GeoJSON FeatureCollection in the order
// given: one LineString feature per path with id/rank/hotness/length/score
// properties, rank following the input order. The encoding is the single
// internal/geojson schema, so the daemon, the snapshot dump and the render
// tools all emit the same wire format.
func WriteGeoJSON(w io.Writer, paths []HotPath) error {
	mp := make([]motion.HotPath, len(paths))
	for i, hp := range paths {
		mp[i] = motion.HotPath{
			Path: motion.Path{
				ID: motion.PathID(hp.ID),
				S:  geom.Pt(hp.Start.X, hp.Start.Y),
				E:  geom.Pt(hp.End.X, hp.End.Y),
			},
			Hotness: hp.Hotness,
		}
	}
	return geojson.Write(w, geojson.FromHotPaths(mp))
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hotpaths"
)

func serverTestConfig() hotpaths.Config {
	return hotpaths.Config{
		Eps:    5,
		W:      100,
		Epoch:  10,
		K:      10,
		Bounds: hotpaths.Rect{Min: hotpaths.Pt(-100, -100), Max: hotpaths.Pt(2000, 2000)},
	}
}

func newTestHandler(t *testing.T) http.Handler {
	t.Helper()
	eng, err := hotpaths.NewEngine(hotpaths.EngineConfig{
		Config: serverTestConfig(),
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return newServer(eng, serverOpts{}).handler()
}

// newDurableHandler backs the server with a Durable engine journaling
// into a fresh directory, as `hotpathsd -wal DIR` does.
func newDurableHandler(t *testing.T) (http.Handler, string) {
	t.Helper()
	dir := t.TempDir()
	dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
		Config:        serverTestConfig(),
		Concurrent:    true,
		Shards:        2,
		FsyncInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dur.Close() })
	return newServer(dur, serverOpts{dur: dur}).handler(), dir
}

func do(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decode[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return v
}

// feedZigZag drives two objects along a zig-zag for 40 timestamps through
// the HTTP surface, forcing reports and path creation.
func feedZigZag(t *testing.T, h http.Handler) {
	t.Helper()
	for now := int64(1); now <= 40; now++ {
		x := float64(now) * 6
		y := 0.0
		if (now/5)%2 == 0 {
			y = 40
		}
		req := observeRequest{
			Observations: []observationJSON{
				{Object: 1, X: x, Y: y, T: now},
				{Object: 2, X: x, Y: y + 0.5, T: now},
			},
			Tick: now,
		}
		rec := do(t, h, http.MethodPost, "/observe", req)
		if rec.Code != http.StatusOK {
			t.Fatalf("observe at t=%d: %d %s", now, rec.Code, rec.Body.String())
		}
	}
}

func TestObserveAndTopK(t *testing.T) {
	h := newTestHandler(t)
	feedZigZag(t, h)

	rec := do(t, h, http.MethodGet, "/topk", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("topk: %d %s", rec.Code, rec.Body.String())
	}
	paths := decode[[]hotpaths.PathJSON](t, rec)
	if len(paths) == 0 {
		t.Fatal("no hot paths discovered through the HTTP surface")
	}
	if paths[0].Rank != 1 || paths[0].Hotness <= 0 || paths[0].Length <= 0 {
		t.Errorf("malformed top path: %+v", paths[0])
	}
	shared := false
	for _, p := range paths {
		if p.Hotness >= 2 {
			shared = true
		}
	}
	if !shared {
		t.Errorf("two objects on the same route should share a path: %+v", paths)
	}
}

func TestStatsEndpoint(t *testing.T) {
	h := newTestHandler(t)
	feedZigZag(t, h)

	rec := do(t, h, http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	st := decode[map[string]any](t, rec)
	if got := st["observations"].(float64); got != 80 {
		t.Errorf("observations = %v, want 80", got)
	}
	if st["reports"].(float64) == 0 {
		t.Error("zig-zag raised no reports")
	}
	if st["shards"].(float64) != 2 {
		t.Errorf("shards = %v, want 2", st["shards"])
	}
}

func TestGeoJSONEndpoint(t *testing.T) {
	h := newTestHandler(t)
	feedZigZag(t, h)

	rec := do(t, h, http.MethodGet, "/paths.geojson", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("paths.geojson: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/geo+json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type        string       `json:"type"`
				Coordinates [][2]float64 `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &fc); err != nil {
		t.Fatal(err)
	}
	if fc.Type != "FeatureCollection" || len(fc.Features) == 0 {
		t.Fatalf("bad collection: type=%q features=%d", fc.Type, len(fc.Features))
	}
	f := fc.Features[0]
	if f.Geometry.Type != "LineString" || len(f.Geometry.Coordinates) != 2 {
		t.Errorf("bad geometry: %+v", f.Geometry)
	}
	if f.Properties["hotness"].(float64) <= 0 {
		t.Errorf("bad properties: %+v", f.Properties)
	}
}

func TestTickEndpoint(t *testing.T) {
	h := newTestHandler(t)
	if rec := do(t, h, http.MethodPost, "/tick", tickRequest{Now: 5}); rec.Code != http.StatusOK {
		t.Fatalf("tick: %d %s", rec.Code, rec.Body.String())
	}
	// Backwards time must be rejected.
	if rec := do(t, h, http.MethodPost, "/tick", tickRequest{Now: 3}); rec.Code != http.StatusBadRequest {
		t.Errorf("backwards tick: %d, want 400", rec.Code)
	}
}

func TestBadRequests(t *testing.T) {
	h := newTestHandler(t)
	// Malformed JSON.
	req := httptest.NewRequest(http.MethodPost, "/observe", bytes.NewBufferString("{nope"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed observe: %d, want 400", rec.Code)
	}
	// Noise without the (eps,delta) model enabled.
	bad := observeRequest{Observations: []observationJSON{{Object: 1, T: 1, SigmaX: 1, SigmaY: 1}}}
	if rec := do(t, h, http.MethodPost, "/observe", bad); rec.Code != http.StatusBadRequest {
		t.Errorf("noisy observe without delta: %d, want 400", rec.Code)
	}
	// Wrong method.
	if rec := do(t, h, http.MethodGet, "/observe", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /observe: %d, want 405", rec.Code)
	}
}

func TestOversizedRequestRejected(t *testing.T) {
	h := newTestHandler(t)
	// Valid JSON that streams past the size cap, so the decoder hits the
	// limit rather than a syntax error.
	raw := append([]byte(`{"pad":"`), bytes.Repeat([]byte("a"), maxRequestBytes+1)...)
	raw = append(raw, '"', '}')
	body := bytes.NewReader(raw)
	req := httptest.NewRequest(http.MethodPost, "/observe", body)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized observe: %d, want 413", rec.Code)
	}
}

// A client clock that skips over an epoch boundary must still get its
// reports processed.
func TestSparseTickTriggersEpoch(t *testing.T) {
	h := newTestHandler(t)
	for now := int64(1); now <= 8; now++ {
		x := float64(now) * 6
		y := 0.0
		if now > 4 {
			y = 40 // sharp turn forces a report
		}
		req := observeRequest{
			Observations: []observationJSON{{Object: 1, X: x, Y: y, T: now}},
		}
		if rec := do(t, h, http.MethodPost, "/observe", req); rec.Code != http.StatusOK {
			t.Fatalf("observe at t=%d: %d", now, rec.Code)
		}
	}
	// Jump from 0 straight past the epoch boundary at 10.
	if rec := do(t, h, http.MethodPost, "/tick", tickRequest{Now: 13}); rec.Code != http.StatusOK {
		t.Fatalf("tick: %d %s", rec.Code, rec.Body.String())
	}
	rec := do(t, h, http.MethodGet, "/stats", nil)
	st := decode[map[string]any](t, rec)
	if st["responses"].(float64) == 0 {
		t.Errorf("epoch was skipped: %v", rec.Body.String())
	}
}

// The /topk query parameters must compose: k caps, min_hotness filters,
// bbox restricts to end vertices inside the box, sort=score re-ranks.
func TestTopKQueryParams(t *testing.T) {
	h := newTestHandler(t)
	feedZigZag(t, h)

	all := decode[[]hotpaths.PathJSON](t, do(t, h, http.MethodGet, "/paths", nil))
	if len(all) < 2 {
		t.Fatalf("workload too tame: %d paths", len(all))
	}

	if got := decode[[]hotpaths.PathJSON](t, do(t, h, http.MethodGet, "/topk?k=1", nil)); len(got) != 1 {
		t.Errorf("k=1 returned %d paths", len(got))
	}

	rec := do(t, h, http.MethodGet, "/topk?min_hotness=2&k=1000", nil)
	for _, p := range decode[[]hotpaths.PathJSON](t, rec) {
		if p.Hotness < 2 {
			t.Errorf("min_hotness=2 returned hotness %d", p.Hotness)
		}
	}

	// bbox around one path's end vertex must return that path and only
	// paths ending inside the box.
	target := all[0]
	bbox := fmt.Sprintf("bbox=%g,%g,%g,%g",
		target.End.X-1, target.End.Y-1, target.End.X+1, target.End.Y+1)
	got := decode[[]hotpaths.PathJSON](t, do(t, h, http.MethodGet, "/topk?k=1000&"+bbox, nil))
	found := false
	for _, p := range got {
		if p.ID == target.ID {
			found = true
		}
		if p.End.X < target.End.X-1 || p.End.X > target.End.X+1 ||
			p.End.Y < target.End.Y-1 || p.End.Y > target.End.Y+1 {
			t.Errorf("bbox query returned out-of-box end %+v", p.End)
		}
	}
	if !found {
		t.Errorf("bbox query around path %d missed it: %+v", target.ID, got)
	}

	scored := decode[[]hotpaths.PathJSON](t, do(t, h, http.MethodGet, "/topk?sort=score&k=1000", nil))
	for i := 1; i < len(scored); i++ {
		if scored[i].Score > scored[i-1].Score {
			t.Errorf("sort=score not descending at %d: %v > %v", i, scored[i].Score, scored[i-1].Score)
		}
	}

	for _, bad := range []string{"k=-1", "k=x", "min_hotness=-2", "bbox=1,2,3", "bbox=9,9,1,1", "sort=sideways", "k=3&limit=5"} {
		if rec := do(t, h, http.MethodGet, "/topk?"+bad, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("/topk?%s: %d, want 400", bad, rec.Code)
		}
	}
}

// The read side caches one snapshot between writes: repeated reads agree,
// and a write (observe+tick) refreshes the view.
func TestSnapshotCacheInvalidation(t *testing.T) {
	h := newTestHandler(t)
	feedZigZag(t, h)

	first := decode[[]hotpaths.PathJSON](t, do(t, h, http.MethodGet, "/paths", nil))
	again := decode[[]hotpaths.PathJSON](t, do(t, h, http.MethodGet, "/paths", nil))
	if len(first) == 0 {
		t.Fatal("no paths after zig-zag")
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("two reads with no write in between disagree")
	}

	// Silence past the window (W=100): every crossing expires, so the
	// refreshed snapshot must be empty.
	if rec := do(t, h, http.MethodPost, "/tick", tickRequest{Now: 400}); rec.Code != http.StatusOK {
		t.Fatalf("tick: %d", rec.Code)
	}
	after := decode[[]hotpaths.PathJSON](t, do(t, h, http.MethodGet, "/paths", nil))
	if len(after) != 0 {
		t.Errorf("stale snapshot served after tick: %d paths, want 0", len(after))
	}
}

// /paths returns every live path (no default cap), consistent with /stats.
func TestPathsEndpoint(t *testing.T) {
	h := newTestHandler(t)
	feedZigZag(t, h)

	rec := do(t, h, http.MethodGet, "/paths", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("paths: %d %s", rec.Code, rec.Body.String())
	}
	paths := decode[[]hotpaths.PathJSON](t, rec)
	st := decode[map[string]any](t, do(t, h, http.MethodGet, "/stats", nil))
	if want := int(st["index_size"].(float64)); len(paths) != want {
		t.Errorf("/paths returned %d paths, index_size is %d", len(paths), want)
	}
	for i, p := range paths {
		if p.Rank != i+1 {
			t.Errorf("rank %d at position %d", p.Rank, i)
		}
	}
}

// /paths.geojson accepts bbox and limit and rejects malformed parameters
// before any body is written.
func TestGeoJSONQueryParams(t *testing.T) {
	h := newTestHandler(t)
	feedZigZag(t, h)

	rec := do(t, h, http.MethodGet, "/paths.geojson?limit=1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("paths.geojson?limit=1: %d", rec.Code)
	}
	var fc struct {
		Features []json.RawMessage `json:"features"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &fc); err != nil {
		t.Fatal(err)
	}
	if len(fc.Features) != 1 {
		t.Errorf("limit=1 returned %d features", len(fc.Features))
	}

	if rec := do(t, h, http.MethodGet, "/paths.geojson?bbox=nope", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed bbox: %d, want 400", rec.Code)
	}
	// An empty result must still be a valid FeatureCollection: RFC 7946
	// requires a "features" array, so null is not acceptable.
	rec = do(t, h, http.MethodGet, "/paths.geojson?bbox=90000,90000,90001,90001", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("far-away bbox: %d", rec.Code)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	feats, ok := raw["features"]
	if !ok || string(feats) == "null" {
		t.Errorf("empty collection must encode \"features\": [], got %s", feats)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &fc); err != nil {
		t.Fatal(err)
	}
	if len(fc.Features) != 0 {
		t.Errorf("far-away bbox returned %d features", len(fc.Features))
	}
}

// With -wal the stats report the journal, /admin/checkpoint forces one,
// and a second server over the same directory recovers the state the
// first one served.
func TestDurableEndpoints(t *testing.T) {
	h, dir := newDurableHandler(t)
	feedZigZag(t, h)

	st := decode[map[string]any](t, do(t, h, http.MethodGet, "/stats", nil))
	if st["wal_enabled"] != true {
		t.Fatalf("wal_enabled = %v", st["wal_enabled"])
	}
	// 40 ticks + 80 observations journaled.
	if got := st["wal_records"].(float64); got != 120 {
		t.Errorf("wal_records = %v, want 120", got)
	}

	rec := do(t, h, http.MethodPost, "/admin/checkpoint", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("admin/checkpoint: %d %s", rec.Code, rec.Body.String())
	}
	if lsn := decode[map[string]any](t, rec)["lsn"].(float64); lsn != 120 {
		t.Errorf("checkpoint lsn = %v, want 120", lsn)
	}
	st = decode[map[string]any](t, do(t, h, http.MethodGet, "/stats", nil))
	if st["wal_checkpoints"].(float64) == 0 {
		t.Error("stats do not reflect the explicit checkpoint")
	}

	want := decode[[]hotpaths.PathJSON](t, do(t, h, http.MethodGet, "/paths", nil))
	if len(want) == 0 {
		t.Fatal("no paths served")
	}

	// A recovered deployment over the same directory serves identical paths.
	rec2, err := hotpaths.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := hotpaths.PathsJSON(rec2.Snapshot().HotPaths())
	if !reflect.DeepEqual(want, got) {
		t.Errorf("recovered paths diverge from served paths:\n want %+v\n got  %+v", want, got)
	}
}

// Without -wal, the admin endpoint must refuse rather than 404, so
// operators learn why instead of suspecting a version mismatch.
func TestCheckpointWithoutWAL(t *testing.T) {
	h := newTestHandler(t)
	if rec := do(t, h, http.MethodPost, "/admin/checkpoint", nil); rec.Code != http.StatusConflict {
		t.Errorf("admin/checkpoint without wal: %d, want 409", rec.Code)
	}
	st := decode[map[string]any](t, do(t, h, http.MethodGet, "/stats", nil))
	if st["wal_enabled"] != false {
		t.Errorf("wal_enabled = %v, want false", st["wal_enabled"])
	}
}

func TestHealthz(t *testing.T) {
	h := newTestHandler(t)
	if rec := do(t, h, http.MethodGet, "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("healthz: %d", rec.Code)
	}
}

func TestParseBounds(t *testing.T) {
	r, err := parseBounds("0, 0, 100, 200")
	if err != nil {
		t.Fatal(err)
	}
	if r.Max.X != 100 || r.Max.Y != 200 {
		t.Errorf("parsed %+v", r)
	}
	for _, bad := range []string{
		"", "1,2,3", "a,b,c,d",
		// ParseFloat accepts these spellings; the daemon must not.
		"NaN,0,1,1", "0,nan,1,1", "0,0,Inf,1", "0,0,1,-Inf", "+Inf,0,1,1",
	} {
		if _, err := parseBounds(bad); err == nil {
			t.Errorf("parseBounds(%q) must fail", bad)
		}
	}
}

// The shared query-parameter parser must reject the whole error matrix —
// including non-finite bbox components, which strconv.ParseFloat happily
// accepts and every rectangle comparison then silently mismatches.
func TestQueryParamsErrorMatrix(t *testing.T) {
	h := newTestHandler(t)
	bad := []string{
		"/topk?k=1&limit=2",
		"/topk?k=-1",
		"/topk?k=abc",
		"/topk?limit=-5",
		"/paths?min_hotness=-1",
		"/paths?min_hotness=x",
		"/topk?bbox=1,2,3",
		"/topk?bbox=a,b,c,d",
		"/topk?bbox=NaN,0,10,10",
		"/topk?bbox=0,NaN,10,10",
		"/topk?bbox=0,0,Inf,10",
		"/topk?bbox=0,0,10,-Inf",
		"/topk?bbox=+Inf,0,10,10",
		"/paths.geojson?bbox=10,10,0,0",
		"/watch?bbox=0,NaN,5,5",
		"/watch?k=2&limit=3",
		"/topk?sort=banana",
	}
	for _, u := range bad {
		if rec := do(t, h, http.MethodGet, u, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400 (%s)", u, rec.Code, rec.Body.String())
		}
	}
	good := []string{
		"/topk?k=3&min_hotness=1&bbox=0,0,500,500&sort=score",
		"/paths?limit=2&sort=hotness",
		"/paths?bbox=-10,-10,10,10",
		"/paths.geojson?bbox=5,5,5,5", // degenerate point box is a valid region
	}
	for _, u := range good {
		if rec := do(t, h, http.MethodGet, u, nil); rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200 (%s)", u, rec.Code, rec.Body.String())
		}
	}
}

// GET /watch end to end: an SSE client subscribes, the zig-zag feed runs
// its epochs, and the deltas — applied event by event — must reconstruct
// exactly what /topk reports from the final snapshot.
func TestWatchStreamsDeltas(t *testing.T) {
	h := newTestHandler(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(ts.URL + "/watch?k=5&min_hotness=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content-type %q", ct)
	}

	feedZigZag(t, h) // 40 timestamps -> epoch boundaries at t=10,20,30,40

	result := map[uint64]int{}
	events, sawID, sawEvent, reachedEnd := 0, false, false, false
	sc := bufio.NewScanner(resp.Body)
scan:
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			sawID = true
		case line == "event: delta":
			sawEvent = true
		case strings.HasPrefix(line, "data: "):
			var d deltaJSON
			if err := json.Unmarshal([]byte(line[len("data: "):]), &d); err != nil {
				t.Fatalf("bad delta payload %q: %v", line, err)
			}
			events++
			if d.Missed != 0 {
				t.Errorf("unexpected drops in a promptly-read stream: %+v", d)
			}
			if events == 1 && !d.Reset {
				t.Errorf("first event must be the reset baseline: %s", line)
			}
			if d.Entered == nil || d.Changed == nil || d.Left == nil {
				t.Errorf("delta slices must encode as [], got %s", line)
			}
			if d.Reset {
				result = map[uint64]int{}
			}
			for _, p := range d.Entered {
				result[p.ID] = p.Hotness
			}
			for _, p := range d.Changed {
				result[p.ID] = p.Hotness
			}
			for _, id := range d.Left {
				delete(result, id)
			}
			if d.Clock == 40 {
				reachedEnd = true
				break scan
			}
		}
	}
	if !reachedEnd {
		t.Fatalf("stream ended before the t=40 delta (%d events, err %v)", events, sc.Err())
	}
	if !sawID || !sawEvent {
		t.Errorf("SSE framing incomplete: id line %v, event line %v", sawID, sawEvent)
	}
	if events < 2 {
		t.Errorf("only %d delta events over 4 epochs", events)
	}

	rec := do(t, h, http.MethodGet, "/topk?k=5&min_hotness=1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("topk: %d", rec.Code)
	}
	want := map[uint64]int{}
	for _, p := range decode[[]hotpaths.PathJSON](t, rec) {
		want[p.ID] = p.Hotness
	}
	if len(want) == 0 {
		t.Fatal("no hot paths at t=40; the feed should have produced some")
	}
	if !reflect.DeepEqual(result, want) {
		t.Errorf("SSE-reconstructed result %v != /topk %v", result, want)
	}
}

// Once journal I/O fails the WAL is poisoned and every write is refused;
// /healthz must flip to 503 with the poisoning error and /stats must
// surface it as wal_error, instead of the old unconditional 200.
func TestHealthzReportsPoisonedWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
		Config:          serverTestConfig(),
		Concurrent:      true,
		Shards:          2,
		FsyncInterval:   -1,
		CheckpointEvery: -1,
		SegmentBytes:    1, // every append after the first forces a segment rotation
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dur.Close() }) // returns the poisoning error; irrelevant here
	h := newServer(dur, serverOpts{dur: dur}).handler()

	if rec := do(t, h, http.MethodGet, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthy daemon: healthz = %d", rec.Code)
	}
	st := decode[map[string]any](t, do(t, h, http.MethodGet, "/stats", nil))
	if got := st["wal_error"]; got != "" {
		t.Fatalf("healthy daemon: wal_error = %v", got)
	}

	obs := func(tick int64) *httptest.ResponseRecorder {
		return do(t, h, http.MethodPost, "/observe", observeRequest{
			Observations: []observationJSON{{Object: 1, X: float64(tick), Y: 0, T: tick}},
		})
	}
	if rec := obs(1); rec.Code != http.StatusOK {
		t.Fatalf("first observe: %d %s", rec.Code, rec.Body.String())
	}
	// Yank the journal directory out from under the daemon: the next
	// append needs a segment rotation, whose create fails and poisons the
	// log — the closest test stand-in for a dying disk.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// The poisoning write itself may surface as either status depending
	// on when the failure is detected, but once poisoned every further
	// write must be 503 — it is a server fault, not a client one.
	if rec := obs(2); rec.Code != http.StatusBadRequest && rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write on a dying WAL: %d, want 400 or 503", rec.Code)
	}
	if rec := obs(3); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write on a poisoned WAL: %d, want 503", rec.Code)
	}

	rec := do(t, h, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("poisoned daemon: healthz = %d, want 503", rec.Code)
	}
	body := decode[map[string]any](t, rec)
	if body["status"] != "degraded" || body["error"] == "" {
		t.Errorf("healthz body %v", body)
	}
	st = decode[map[string]any](t, do(t, h, http.MethodGet, "/stats", nil))
	if got, _ := st["wal_error"].(string); !strings.Contains(got, "wal") {
		t.Errorf("stats wal_error = %q, want the poisoning error", got)
	}
}

package experiment

import (
	"fmt"

	"hotpaths/internal/cluster"
	"hotpaths/internal/coordinator"
	"hotpaths/internal/geom"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/trajectory"
)

// ContrastResult reports the moving-cluster differentiation experiment
// (paper Section 2): hot motion paths versus moving clusters on the same
// asynchronous flow.
type ContrastResult struct {
	MaxHotness     int // hottest motion path discovered
	MovingClusters int // qualifying moving clusters detected
	PathsStored    int
}

// MovingClusterContrast runs the scenario behind the paper's key
// differentiation claim: objects traverse the SAME two-leg route one after
// another, spaced far apart in time. Each crossing falls inside the hotness
// window, so the shared route becomes hot — yet no two objects are ever
// near each other simultaneously, so no moving cluster exists.
//
// objects is the number of travellers, spacing the departure gap in
// timestamps. eps is the path tolerance; the cluster detector uses a 2·eps
// proximity radius, which is generous to the competitor.
func MovingClusterContrast(objects int, spacing trajectory.Time, eps float64) (*ContrastResult, error) {
	if objects < 2 {
		return nil, fmt.Errorf("experiment: need at least 2 objects, got %d", objects)
	}
	if spacing < 1 {
		return nil, fmt.Errorf("experiment: spacing must be positive, got %d", spacing)
	}
	if eps <= 0 {
		return nil, fmt.Errorf("experiment: eps must be positive, got %v", eps)
	}

	const (
		legSteps = 40
		speed    = 10.0
		park     = 15 // observations after arrival; the stop flushes the trip
	)
	routeLen := trajectory.Time(2*legSteps + park)
	duration := spacing*trajectory.Time(objects) + routeLen + 20
	w := duration // window covers every crossing

	coord, err := coordinator.New(coordinator.Config{
		Bounds: geom.Rect{Lo: geom.Pt(-100, -100), Hi: geom.Pt(1000, 1000)},
		W:      w,
		Eps:    eps,
	})
	if err != nil {
		return nil, err
	}
	det, err := cluster.New(cluster.Config{
		R:           2 * eps,
		MinPts:      2,
		Theta:       0.5,
		MinDuration: 3,
	})
	if err != nil {
		return nil, err
	}

	pos := func(step int64) (geom.Point, bool) {
		switch {
		case step < 1:
			return geom.Point{}, false
		case step <= legSteps:
			return geom.Pt(float64(step)*speed, 0), true
		case step <= 2*legSteps:
			return geom.Pt(legSteps*speed, float64(step-legSteps)*speed), true
		case step <= int64(routeLen):
			return geom.Pt(legSteps*speed, legSteps*speed), true // parked
		default:
			return geom.Point{}, false
		}
	}

	filters := make([]*raytrace.Filter, objects)
	var pending []coordinator.Report
	for now := trajectory.Time(1); now <= duration; now++ {
		snapshot := make(map[int]geom.Point)
		for id := 0; id < objects; id++ {
			p, ok := pos(int64(now) - int64(id)*int64(spacing))
			if !ok {
				continue
			}
			snapshot[id] = p
			tp := trajectory.TP(p, now)
			if filters[id] == nil {
				filters[id] = raytrace.New(tp, eps)
				continue
			}
			st, report, err := filters[id].Process(tp)
			if err != nil {
				return nil, err
			}
			if report {
				pending = append(pending, coordinator.Report{ObjectID: id, State: st})
			}
		}
		if len(snapshot) > 0 {
			if err := det.Observe(now, snapshot); err != nil {
				return nil, err
			}
		}
		coord.Advance(now)
		if now%10 == 0 && len(pending) > 0 {
			batch := pending
			pending = nil
			resps, err := coord.ProcessEpoch(batch)
			if err != nil {
				return nil, err
			}
			for _, r := range resps {
				st, report, err := filters[r.ObjectID].Respond(r.End)
				if err != nil {
					return nil, err
				}
				if report {
					pending = append(pending, coordinator.Report{ObjectID: r.ObjectID, State: st})
				}
			}
		}
	}

	res := &ContrastResult{
		MovingClusters: len(det.Close()),
		PathsStored:    coord.IndexSize(),
	}
	for _, hp := range coord.AllPaths() {
		if hp.Hotness > res.MaxHotness {
			res.MaxHotness = hp.Hotness
		}
	}
	return res, nil
}

// Package uncertainty implements the paper's (ε,δ) tolerance model for
// imprecise location measurements (Section 4.1).
//
// A measurement reports the mean and standard deviation of a Gaussian
// location estimate. For a single axis, a reported value x' is "close" to
// the true location X ~ N(x,σ²) when
//
//	Pr(|X − x'| ≤ ε) ≥ 1 − δ.
//
// The admissible offsets w = x' − x form a symmetric interval [−w*, +w*]
// where w* is the largest solution of
//
//	Φ((w+ε)/σ) − Φ((w−ε)/σ) = 1 − δ.
//
// The package solves this equation numerically (bisection over the standard
// normal CDF, computed from math.Erf) and also provides a precomputed
// lookup table delivering constant-time answers, mirroring the paper's two
// proposed strategies. In two dimensions the per-axis failure budget is
// δ/2, since (1−δ/2)² ≥ 1−δ.
package uncertainty

import (
	"errors"
	"fmt"
	"math"

	"hotpaths/internal/geom"
)

// ErrNoSolution is returned when the measurement is too noisy for the
// requested (ε,δ): even the mean itself is not close with probability 1−δ.
var ErrNoSolution = errors.New("uncertainty: no admissible tolerance interval (sigma too large for eps,delta)")

// Phi is the standard normal cumulative distribution function.
func Phi(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// coverage returns Pr(X ∈ [x'−ε, x'+ε]) for X ~ N(0,1) scaled measurements:
// the probability mass of the ±a window centred at offset v, i.e.
// Φ(v+a) − Φ(v−a).
func coverage(v, a float64) float64 {
	return Phi(v+a) - Phi(v-a)
}

// MaxOffset returns the largest w ≥ 0 such that a reported location at
// distance w from the measurement mean is still close to the true location
// under tolerance (eps, delta), for a Gaussian with standard deviation
// sigma. sigma must be positive; eps must be positive; delta in (0,1).
func MaxOffset(eps, delta, sigma float64) (float64, error) {
	if sigma <= 0 {
		return 0, fmt.Errorf("uncertainty: sigma must be positive, got %v", sigma)
	}
	if eps <= 0 {
		return 0, fmt.Errorf("uncertainty: eps must be positive, got %v", eps)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("uncertainty: delta must be in (0,1), got %v", delta)
	}
	a := eps / sigma
	v, err := maxOffsetNorm(a, delta)
	if err != nil {
		return 0, err
	}
	return v * sigma, nil
}

// maxOffsetNorm solves coverage(v, a) = 1−delta for the largest v ≥ 0, in
// normalized units (sigma = 1). coverage is strictly decreasing in v for
// v ≥ 0, so bisection applies.
func maxOffsetNorm(a, delta float64) (float64, error) {
	target := 1 - delta
	if coverage(0, a) < target {
		return 0, ErrNoSolution
	}
	// Upper bracket: coverage(v,a) ≤ Φ(v+a) − Φ(v−a) ≤ 1 − Φ(v−a); for
	// v = a + 40 the right side is astronomically below any target.
	lo, hi := 0.0, a+40
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if coverage(mid, a) >= target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-13 {
			break
		}
	}
	return lo, nil
}

// ToleranceInterval returns the interval [lo,hi] of admissible reported
// locations for a 1-D Gaussian measurement with the given mean and sigma.
func ToleranceInterval(mean, sigma, eps, delta float64) (lo, hi float64, err error) {
	w, err := MaxOffset(eps, delta, sigma)
	if err != nil {
		return 0, 0, err
	}
	return mean - w, mean + w, nil
}

// Measurement is an imprecise 2-D location: independent Gaussian noise on
// each axis.
type Measurement struct {
	Mean   geom.Point
	SigmaX float64
	SigmaY float64
}

// ToleranceRect returns the tolerance rectangle for a 2-D measurement under
// tolerance (eps, delta), splitting the failure budget as δ/2 per axis as in
// the paper. The rectangle plays the role of RayTrace's tolerance square.
func ToleranceRect(m Measurement, eps, delta float64) (geom.Rect, error) {
	half := delta / 2
	wx, err := MaxOffset(eps, half, m.SigmaX)
	if err != nil {
		return geom.Rect{}, fmt.Errorf("x axis: %w", err)
	}
	wy, err := MaxOffset(eps, half, m.SigmaY)
	if err != nil {
		return geom.Rect{}, fmt.Errorf("y axis: %w", err)
	}
	return geom.Rect{
		Lo: geom.Pt(m.Mean.X-wx, m.Mean.Y-wy),
		Hi: geom.Pt(m.Mean.X+wx, m.Mean.Y+wy),
	}, nil
}

// ToleranceRectOrMin is the paper's "retroactive" fallback: when (ε,δ) has
// no solution for this measurement's noise, assign a predefined minimal
// tolerance square of half-side minHalf around the mean instead of failing.
func ToleranceRectOrMin(m Measurement, eps, delta, minHalf float64) geom.Rect {
	r, err := ToleranceRect(m, eps, delta)
	if err != nil {
		return geom.RectAround(m.Mean, minHalf)
	}
	return r
}

// Table is a precomputed lookup table for MaxOffset at a fixed delta,
// following the paper's constant-time strategy. It stores the normalized
// solution v*(a) on a uniform grid of a = ε/σ values and interpolates
// linearly between grid points. Interpolation always rounds down to the
// conservative (smaller) neighbour first, so the returned offset is within
// one grid cell of the exact value and never wildly optimistic.
type Table struct {
	delta      float64
	aMin, aMax float64
	step       float64
	v          []float64 // v[i] = v*(aMin + i·step); NaN where no solution
}

// NewTable precomputes steps+1 samples of the normalized offset for
// a ∈ [aMin, aMax] at the given delta.
func NewTable(delta, aMin, aMax float64, steps int) (*Table, error) {
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("uncertainty: delta must be in (0,1), got %v", delta)
	}
	if !(aMin > 0) || aMax <= aMin || steps < 1 {
		return nil, fmt.Errorf("uncertainty: bad table range [%v,%v]/%d", aMin, aMax, steps)
	}
	t := &Table{
		delta: delta,
		aMin:  aMin,
		aMax:  aMax,
		step:  (aMax - aMin) / float64(steps),
		v:     make([]float64, steps+1),
	}
	for i := range t.v {
		a := aMin + float64(i)*t.step
		v, err := maxOffsetNorm(a, delta)
		if err != nil {
			v = math.NaN()
		}
		t.v[i] = v
	}
	return t, nil
}

// Delta returns the failure probability the table was built for.
func (t *Table) Delta() float64 { return t.delta }

// MaxOffset returns the (interpolated) maximal offset for the given eps and
// sigma. ok is false when a = eps/sigma falls outside the table range or in
// a region with no solution.
func (t *Table) MaxOffset(eps, sigma float64) (w float64, ok bool) {
	if sigma <= 0 || eps <= 0 {
		return 0, false
	}
	a := eps / sigma
	if a < t.aMin || a > t.aMax {
		return 0, false
	}
	f := (a - t.aMin) / t.step
	i := int(f)
	if i >= len(t.v)-1 {
		i = len(t.v) - 2
	}
	v0, v1 := t.v[i], t.v[i+1]
	if math.IsNaN(v0) || math.IsNaN(v1) {
		return 0, false
	}
	frac := f - float64(i)
	return (v0 + frac*(v1-v0)) * sigma, true
}

// ToleranceRect is the table-backed variant of the package-level
// ToleranceRect; it requires a table built with delta/2 matching.
func (t *Table) ToleranceRect(m Measurement, eps float64) (geom.Rect, bool) {
	wx, ok := t.MaxOffset(eps, m.SigmaX)
	if !ok {
		return geom.Rect{}, false
	}
	wy, ok := t.MaxOffset(eps, m.SigmaY)
	if !ok {
		return geom.Rect{}, false
	}
	return geom.Rect{
		Lo: geom.Pt(m.Mean.X-wx, m.Mean.Y-wy),
		Hi: geom.Pt(m.Mean.X+wx, m.Mean.Y+wy),
	}, true
}

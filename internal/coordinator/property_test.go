package coordinator

import (
	"math/rand"
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/trajectory"
)

// Randomised batch property test: across many epochs of random reports,
// the coordinator must keep its core invariants —
//
//  1. every response endpoint lies inside the reporting FSA and carries the
//     reported te;
//  2. the index holds exactly the paths with positive hotness;
//  3. total live hotness equals crossings minus expirations;
//  4. after quiescence of W, everything expires.
func TestCoordinatorRandomBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const (
		W   = 60
		eps = 10.0
	)
	c, err := New(Config{
		Bounds: geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(2000, 2000)},
		W:      W,
		Eps:    eps,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Per-object chaining state: the next report must start where the last
	// response ended (mirroring the filter contract).
	type chainState struct {
		s  geom.Point
		ts trajectory.Time
	}
	chains := map[int]chainState{}
	now := trajectory.Time(0)
	totalCrossings := 0

	for epoch := 0; epoch < 60; epoch++ {
		now += 10
		batchSize := 1 + rng.Intn(20)
		var reports []Report
		var fsas []geom.Rect
		for i := 0; i < batchSize; i++ {
			obj := rng.Intn(30)
			ch, ok := chains[obj]
			if !ok {
				ch = chainState{
					s:  geom.Pt(rng.Float64()*1800+100, rng.Float64()*1800+100),
					ts: now - trajectory.Time(1+rng.Intn(9)),
				}
			}
			// FSA somewhere within reach of the start, sized like a
			// realistic sliver-to-square range.
			ctr := ch.s.Add(geom.Pt(rng.Float64()*80-40, rng.Float64()*80-40))
			half := 0.5 + rng.Float64()*eps
			fsa := geom.RectAround(ctr, half)
			reports = append(reports, Report{
				ObjectID: obj,
				State:    raytrace.State{Start: ch.s, Ts: ch.ts, FSA: fsa, Te: now},
			})
			fsas = append(fsas, fsa)
		}
		resps, err := c.ProcessEpoch(reports)
		if err != nil {
			t.Fatal(err)
		}
		if len(resps) != len(reports) {
			t.Fatalf("got %d responses for %d reports", len(resps), len(reports))
		}
		for i, r := range resps {
			if !fsas[i].Contains(r.End.P) {
				t.Fatalf("epoch %d: endpoint %v outside FSA %v", epoch, r.End.P, fsas[i])
			}
			if r.End.T != now {
				t.Fatalf("epoch %d: endpoint timestamp %d want %d", epoch, r.End.T, now)
			}
			if r.Case < 1 || r.Case > 3 {
				t.Fatalf("bad case %d", r.Case)
			}
			totalCrossings++
			chains[reports[i].ObjectID] = chainState{s: r.End.P, ts: now}
		}
		c.Advance(now)

		// Invariant 2+3: index contents match hotness table.
		live := 0
		liveHot := 0
		for _, hp := range c.AllPaths() {
			if hp.Hotness <= 0 {
				t.Fatal("stored path with non-positive hotness")
			}
			live++
			liveHot += hp.Hotness
		}
		if live != c.IndexSize() {
			t.Fatalf("AllPaths %d vs IndexSize %d", live, c.IndexSize())
		}
		if liveHot > totalCrossings {
			t.Fatalf("live hotness %d exceeds crossings %d", liveHot, totalCrossings)
		}
	}

	// Invariant 4: quiescence drains everything.
	c.Advance(now + W + 1)
	if c.IndexSize() != 0 {
		t.Errorf("index size = %d after full window of quiescence", c.IndexSize())
	}
	st := c.Stats()
	if st.PathsExpired != st.PathsCreated {
		t.Errorf("expired %d != created %d after drain", st.PathsExpired, st.PathsCreated)
	}
	if st.Crossings != totalCrossings {
		t.Errorf("crossings %d want %d", st.Crossings, totalCrossings)
	}
}

// TopK must agree with a brute-force sort of AllPaths.
func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	c := mustCoord(t, testConfig())
	for i := 0; i < 200; i++ {
		s := geom.Pt(rng.Float64()*900, rng.Float64()*900)
		fsa := geom.RectAround(s.Add(geom.Pt(50, 0)), 5)
		if _, err := c.ProcessEpoch([]Report{report(i, s, fsa, trajectory.Time(i), trajectory.Time(i+5))}); err != nil {
			t.Fatal(err)
		}
	}
	all := c.AllPaths()
	top := c.TopK(10)
	if len(top) != 10 {
		t.Fatalf("topk = %d", len(top))
	}
	// No path outside the top-k may beat the last one inside.
	worst := top[len(top)-1]
	inTop := make(map[motion.PathID]bool)
	for _, hp := range top {
		inTop[hp.Path.ID] = true
	}
	for _, hp := range all {
		if inTop[hp.Path.ID] {
			continue
		}
		if hp.Hotness > worst.Hotness {
			t.Fatalf("path %d (hotness %d) should be in top-k over %d (hotness %d)",
				hp.Path.ID, hp.Hotness, worst.Path.ID, worst.Hotness)
		}
	}
}

// Package motion defines the shared identity types for discovered motion
// paths, used by the grid index, the hotness window and the coordinator.
package motion

import (
	"fmt"
	"math"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
)

// PathID identifies a stored motion path. The id is content-addressed —
// derived from the path's geometry by PathIDFor — so the same directed
// segment always carries the same id, in every deployment and across
// expiry/re-discovery. That is what lets independently running partitions
// mint identical ids for identical corridors, and a merging reader sum
// their hotness by id alone.
type PathID uint64

// PathIDFor derives the identity of the directed path s→e from its
// geometry: a 64-bit mix of the exact float bit patterns of the four
// coordinates. The mapping is deterministic, direction-sensitive (s→e and
// e→s differ) and spread uniformly, so ids double as hash keys. Collisions
// between distinct live geometries are possible in principle but need
// ~2³² simultaneously stored paths to become likely; real indexes hold
// orders of magnitude fewer.
func PathIDFor(s, e geom.Point) PathID {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range [4]uint64{
		coordBits(s.X), coordBits(s.Y),
		coordBits(e.X), coordBits(e.Y),
	} {
		h ^= v
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
		h ^= h >> 33
	}
	return PathID(h)
}

// coordBits is Float64bits with the sign of zero erased: point equality
// throughout the pipeline is plain ==, under which -0 and +0 are the same
// coordinate (and the ε-grid snap readily produces -0), so the identity
// hash must not tell them apart either.
func coordBits(f float64) uint64 {
	if f == 0 {
		f = 0 // drops a negative sign: -0 == 0, but their bits differ
	}
	return math.Float64bits(f)
}

// Path is the stored geometry of a discovered motion path: the directed
// segment S→E. Crossing intervals are tracked separately by the hotness
// window, since one path is crossed by many objects at different times.
type Path struct {
	ID PathID
	S  geom.Point
	E  geom.Point
}

// Segment returns the path's spatial segment.
func (p Path) Segment() geom.Segment { return geom.Seg(p.S, p.E) }

// Length returns the Euclidean length of the path.
func (p Path) Length() float64 { return p.S.Dist(p.E) }

func (p Path) String() string {
	return fmt.Sprintf("path#%d %v->%v", p.ID, p.S, p.E)
}

// Crossing records that some object crossed a path during [Ts,Te].
type Crossing struct {
	Path   PathID
	Ts, Te trajectory.Time
}

// HotPath pairs a stored path with its current hotness; it is the unit of
// top-k reporting.
type HotPath struct {
	Path    Path
	Hotness int
}

// Score is the paper's quality metric for a single path:
// hotness × length.
func (hp HotPath) Score() float64 {
	return float64(hp.Hotness) * hp.Path.Length()
}

// TopKScore is the paper's quality metric for a top-k set: the average
// score of its members. It returns 0 for an empty set.
func TopKScore(set []HotPath) float64 {
	if len(set) == 0 {
		return 0
	}
	var sum float64
	for _, hp := range set {
		sum += hp.Score()
	}
	return sum / float64(len(set))
}

// Package motion defines the shared identity types for discovered motion
// paths, used by the grid index, the hotness window and the coordinator.
package motion

import (
	"fmt"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
)

// PathID identifies a stored motion path. IDs are allocated by the
// coordinator and never reused within a run.
type PathID uint64

// Path is the stored geometry of a discovered motion path: the directed
// segment S→E. Crossing intervals are tracked separately by the hotness
// window, since one path is crossed by many objects at different times.
type Path struct {
	ID PathID
	S  geom.Point
	E  geom.Point
}

// Segment returns the path's spatial segment.
func (p Path) Segment() geom.Segment { return geom.Seg(p.S, p.E) }

// Length returns the Euclidean length of the path.
func (p Path) Length() float64 { return p.S.Dist(p.E) }

func (p Path) String() string {
	return fmt.Sprintf("path#%d %v->%v", p.ID, p.S, p.E)
}

// Crossing records that some object crossed a path during [Ts,Te].
type Crossing struct {
	Path   PathID
	Ts, Te trajectory.Time
}

// HotPath pairs a stored path with its current hotness; it is the unit of
// top-k reporting.
type HotPath struct {
	Path    Path
	Hotness int
}

// Score is the paper's quality metric for a single path:
// hotness × length.
func (hp HotPath) Score() float64 {
	return float64(hp.Hotness) * hp.Path.Length()
}

// TopKScore is the paper's quality metric for a top-k set: the average
// score of its members. It returns 0 for an empty set.
func TopKScore(set []HotPath) float64 {
	if len(set) == 0 {
		return 0
	}
	var sum float64
	for _, hp := range set {
		sum += hp.Score()
	}
	return sum / float64(len(set))
}

package errstring_test

import (
	"testing"

	"hotpaths/internal/analysis/analyzertest"
	"hotpaths/internal/analysis/errstring"
)

func TestErrstring(t *testing.T) {
	analyzertest.Run(t, errstring.Analyzer, "a")
}

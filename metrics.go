package hotpaths

import "hotpaths/internal/metrics"

// Instrumentation owned by the public package: durability checkpoints, the
// subscription hub, and the follower side of replication. The instruments
// live in the process-global metrics.Default registry (see internal/metrics)
// and are shared across instances: a process running several deployments
// aggregates them, exactly like Prometheus' default registerer.
var (
	mCheckpoint = metrics.Default.Histogram("hotpaths_checkpoint_seconds",
		"Duration of full-state checkpoints (sync, dump, write, truncate).",
		metrics.LatencyBuckets, nil)
	mCheckpointBytes = metrics.Default.Histogram("hotpaths_checkpoint_bytes",
		"Encoded checkpoint payload size in bytes.",
		metrics.ExpBuckets(1024, 4, 12), nil)

	mSubscribers = metrics.Default.Gauge("hotpaths_subscribers",
		"Live epoch-delta subscriptions.", nil)
	mDeltas = metrics.Default.Counter("hotpaths_subscription_deltas_total",
		"Epoch deltas delivered to subscribers.", nil)
	mSlowResets = metrics.Default.Counter("hotpaths_subscription_resets_total",
		"Slow-consumer resets (subscriber buffer overflowed; stream restarts from a snapshot).",
		nil)
	mSlowMissed = metrics.Default.Counter("hotpaths_subscription_missed_total",
		"Deltas dropped by slow-consumer resets.", nil)

	mFollowerLag = metrics.Default.Gauge("hotpaths_follower_lag_records",
		"Records the primary has journaled but this follower has not applied (last heartbeat).",
		nil)
	mFollowerConnected = metrics.Default.Gauge("hotpaths_follower_connected",
		"1 while the follower's stream to the primary is live, else 0.", nil)
	mFollowerApplied = metrics.Default.Counter("hotpaths_follower_applied_total",
		"WAL records applied by followers in this process.", nil)
	mFollowerReconnects = metrics.Default.Counter("hotpaths_follower_reconnects_total",
		"Stream reconnect attempts by followers in this process.", nil)
	mFollowerBootstrap = metrics.Default.Histogram("hotpaths_follower_bootstrap_seconds",
		"Duration of follower bootstraps (checkpoint fetch plus restore).",
		metrics.LatencyBuckets, nil)
)

// Package raytrace implements the client-side RayTrace filter of the paper
// (Section 4, Algorithm 1).
//
// RayTrace is a one-pass greedy algorithm with O(1) time and space per
// timepoint. It maintains a Spatial Safe Area (SSA): a pyramid in xyt space
// with apex at the current start timepoint ⟨s,ts⟩ that widens linearly to
// the Final Safe Area (FSA) rectangle at time te. The SSA's defining
// property is that for ANY endpoint e inside the FSA, the motion path s→e
// crossed during [ts,te] stays within the tolerance of every measurement
// processed so far.
//
// When a new timepoint's tolerance rectangle no longer intersects the SSA's
// linear projection, the filter emits its state to the coordinator and
// enters waiting mode, buffering subsequent measurements. The coordinator's
// response — an endpoint chosen inside the FSA — seeds the next SSA, which
// guarantees the produced motion paths chain into a covering motion path
// set.
//
// Why checking only measurement timestamps suffices: between consecutive
// measurements both the (interpolated) object trajectory and the candidate
// motion path are linear in t, so each coordinate difference is linear and
// its absolute value convex; the maximum over an interval is attained at
// the interval's endpoints. Closeness at measurement timestamps therefore
// implies closeness at every intermediate timestamp.
package raytrace

import (
	"fmt"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
)

// State is the message a filter sends to the coordinator when its SSA can
// no longer grow: ⟨l(ts), ts, l(te), u(te), te⟩ in the paper's notation.
type State struct {
	Start geom.Point      // s = l(ts), the SSA apex
	Ts    trajectory.Time // start timestamp
	FSA   geom.Rect       // final safe area (l(te), u(te))
	Te    trajectory.Time // end timestamp
}

// StateBytes is the wire size of a state message used for communication
// accounting: six float64 coordinates plus two int64 timestamps.
const StateBytes = 6*8 + 2*8

// ResponseBytes is the wire size of a coordinator response: one endpoint
// (two float64) plus one int64 timestamp.
const ResponseBytes = 2*8 + 8

func (s State) String() string {
	return fmt.Sprintf("state{s=%v ts=%d fsa=%v te=%d}", s.Start, s.Ts, s.FSA, s.Te)
}

// ToleranceFunc maps a timepoint to its tolerance rectangle. The plain-ε
// model uses the square of side 2ε around the measurement; the (ε,δ) model
// substitutes the Gaussian tolerance rectangle of package uncertainty.
type ToleranceFunc func(tp trajectory.TimePoint) geom.Rect

// FixedTolerance returns the deterministic tolerance function: the square
// of side 2·eps centred at the measurement.
func FixedTolerance(eps float64) ToleranceFunc {
	return func(tp trajectory.TimePoint) geom.Rect {
		return geom.RectAround(tp.P, eps)
	}
}

// Stats aggregates a filter's lifetime counters for communication and
// processing accounting.
type Stats struct {
	Processed  int // timepoints consumed by the SSA logic
	StatesSent int // state messages emitted to the coordinator
	Responses  int // coordinator responses received
	Buffered   int // timepoints that went through the waiting-mode buffer
	MaxBuffer  int // high-water mark of the buffer length
}

// Filter is the per-object RayTrace instance. It is not safe for concurrent
// use; each moving object owns exactly one filter.
type Filter struct {
	tol ToleranceFunc

	// SSA state.
	start   geom.Point
	ts      trajectory.Time
	fsa     geom.Rect
	te      trajectory.Time
	waiting bool
	lastT   trajectory.Time
	primed  bool // true once the initial timepoint is set

	buf   []trajectory.TimePoint
	stats Stats
}

// New returns a filter with the given initial timepoint and the fixed-ε
// tolerance model.
func New(initial trajectory.TimePoint, eps float64) *Filter {
	return NewWithTolerance(initial, FixedTolerance(eps))
}

// NewWithTolerance returns a filter with a custom tolerance model.
func NewWithTolerance(initial trajectory.TimePoint, tol ToleranceFunc) *Filter {
	f := &Filter{tol: tol}
	f.reset(initial)
	return f
}

// reset re-seeds the SSA at the given timepoint.
func (f *Filter) reset(tp trajectory.TimePoint) {
	f.start = tp.P
	f.ts = tp.T
	f.te = tp.T
	f.fsa = geom.Rect{Lo: tp.P, Hi: tp.P}
	f.lastT = tp.T
	f.primed = true
}

// State returns the filter's current SSA as a state message.
func (f *Filter) State() State {
	return State{Start: f.start, Ts: f.ts, FSA: f.fsa, Te: f.te}
}

// Waiting reports whether the filter awaits a coordinator response.
func (f *Filter) Waiting() bool { return f.waiting }

// Stats returns a copy of the filter's counters.
func (f *Filter) Stats() Stats { return f.stats }

// BufferLen returns the number of timepoints parked in the waiting buffer.
func (f *Filter) BufferLen() int { return len(f.buf) }

// Process consumes one measurement. When the SSA can no longer accommodate
// it, the filter's state is returned with report=true and the filter enters
// waiting mode (the violating point stays buffered for reprocessing after
// the coordinator responds). Timestamps must be strictly increasing.
func (f *Filter) Process(tp trajectory.TimePoint) (st State, report bool, err error) {
	if !f.primed {
		return State{}, false, fmt.Errorf("raytrace: filter used before initialization")
	}
	if tp.T <= f.lastT {
		return State{}, false, fmt.Errorf("raytrace: non-increasing timestamp %d (last %d)", tp.T, f.lastT)
	}
	f.lastT = tp.T
	if f.waiting {
		f.buf = append(f.buf, tp)
		f.stats.Buffered++
		if len(f.buf) > f.stats.MaxBuffer {
			f.stats.MaxBuffer = len(f.buf)
		}
		return State{}, false, nil
	}
	return f.step(tp)
}

// step advances the SSA with one timepoint (the body of Algorithm 1's inner
// loop).
func (f *Filter) step(tp trajectory.TimePoint) (State, bool, error) {
	f.stats.Processed++
	q := f.tol(tp)
	if q.Empty() {
		return State{}, false, fmt.Errorf("raytrace: empty tolerance rect for %v", tp)
	}
	if f.te == f.ts {
		// First timepoint after the apex: the FSA is the tolerance rect.
		f.te = tp.T
		f.fsa = q
		return State{}, false, nil
	}
	// Project the SSA pyramid onto tp.T (extrapolation for tp.T > te).
	lambda := float64(tp.T-f.ts) / float64(f.te-f.ts)
	proj := f.fsa.Lerp(f.start, lambda)
	inter := proj.Intersect(q)
	if !inter.Empty() {
		f.te = tp.T
		f.fsa = inter
		return State{}, false, nil
	}
	// Violation: report state, park the point at the FRONT of the buffer
	// (it may have been popped off during a replay and must keep its place
	// before any younger buffered points), and wait for the coordinator.
	f.waiting = true
	f.buf = append([]trajectory.TimePoint{tp}, f.buf...)
	f.stats.Buffered++
	if len(f.buf) > f.stats.MaxBuffer {
		f.stats.MaxBuffer = len(f.buf)
	}
	f.stats.StatesSent++
	return f.State(), true, nil
}

// Respond delivers the coordinator's chosen endpoint ⟨e,te⟩, which becomes
// the apex of the next SSA. Buffered measurements are then replayed; if one
// of them violates the fresh SSA, the new state is reported immediately
// (report=true) and the filter stays in waiting mode with the remainder of
// the buffer intact.
//
// The response endpoint must lie inside the FSA that was reported and carry
// the reported te; this is what guarantees a covering motion path set.
func (f *Filter) Respond(e trajectory.TimePoint) (st State, report bool, err error) {
	if !f.waiting {
		return State{}, false, fmt.Errorf("raytrace: Respond while not waiting")
	}
	if e.T != f.te {
		return State{}, false, fmt.Errorf("raytrace: response timestamp %d does not match reported te %d", e.T, f.te)
	}
	if !f.fsa.Contains(e.P) {
		return State{}, false, fmt.Errorf("raytrace: response endpoint %v outside FSA %v", e.P, f.fsa)
	}
	f.stats.Responses++
	f.waiting = false
	f.reset(e)
	f.lastT = e.T
	// Replay the buffer.
	for len(f.buf) > 0 {
		tp := f.buf[0]
		f.buf = f.buf[1:]
		f.lastT = tp.T
		st, report, err = f.step(tp)
		if err != nil {
			return State{}, false, err
		}
		if report {
			return st, true, nil
		}
	}
	f.buf = nil
	return State{}, false, nil
}

// FilterState is the complete mutable state of a Filter, exported for
// checkpointing. Restoring it (with the same tolerance model) yields a
// filter whose future behaviour is bit-identical to the dumped one.
type FilterState struct {
	Start   geom.Point
	Ts      trajectory.Time
	FSA     geom.Rect
	Te      trajectory.Time
	Waiting bool
	LastT   trajectory.Time
	Buf     []trajectory.TimePoint
	Stats   Stats
}

// Dump captures the filter's state for checkpointing.
func (f *Filter) Dump() FilterState {
	buf := make([]trajectory.TimePoint, len(f.buf))
	copy(buf, f.buf)
	return FilterState{
		Start:   f.start,
		Ts:      f.ts,
		FSA:     f.fsa,
		Te:      f.te,
		Waiting: f.waiting,
		LastT:   f.lastT,
		Buf:     buf,
		Stats:   f.stats,
	}
}

// Restore rebuilds a filter from a dumped state and its tolerance model.
// Only primed filters are ever dumped, so the restored filter is primed.
func Restore(st FilterState, tol ToleranceFunc) *Filter {
	buf := make([]trajectory.TimePoint, len(st.Buf))
	copy(buf, st.Buf)
	return &Filter{
		tol:     tol,
		start:   st.Start,
		ts:      st.Ts,
		fsa:     st.FSA,
		te:      st.Te,
		waiting: st.Waiting,
		lastT:   st.LastT,
		primed:  true,
		buf:     buf,
		stats:   st.Stats,
	}
}

// Flush force-emits the current SSA as a final state (e.g. at simulation
// end) provided at least one timepoint extended it. It does not enter
// waiting mode.
func (f *Filter) Flush() (State, bool) {
	if !f.primed || f.te == f.ts {
		return State{}, false
	}
	return f.State(), true
}

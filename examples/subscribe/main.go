// Subscribe quickstart: watch hot motion paths appear, heat up and expire
// through a standing query instead of polling snapshots.
//
// A morning commute plays out in three acts: an eastbound flow builds up,
// a second northbound flow joins it, then both stop and the window slides
// everything back out. A subscription with MinHotness(3) turns those acts
// into a stream of per-epoch deltas — paths entering the hot set, changing
// hotness, and finally leaving — the same stream the hotpathsd daemon
// serves over GET /watch.
//
// Run with: go run ./examples/subscribe
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hotpaths"
)

func main() {
	eng, err := hotpaths.NewEngine(hotpaths.EngineConfig{
		Config: hotpaths.Config{
			Eps:    15,  // metres: trajectory deviation absorbed by one path
			W:      120, // timestamps: crossings older than this stop counting
			Epoch:  10,  // coordinator cadence = delta cadence
			K:      5,
			Bounds: hotpaths.Rect{Min: hotpaths.Pt(-100, -100), Max: hotpaths.Pt(2000, 2000)},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// The standing query: paths crossed at least 3 times in the window.
	// The first delta is the current result (empty here); afterwards one
	// delta arrives per epoch. Applying each delta to the previous result
	// reproduces Snapshot().Query(q) at that boundary exactly.
	sub, err := eng.Subscribe(hotpaths.Query{}.MinHotness(3))
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var result []hotpaths.HotPath
		for d := range sub.Deltas() {
			result = d.Apply(result)
			if d.Empty() {
				continue // heartbeat epoch: nothing crossed the threshold
			}
			fmt.Printf("t=%-4d %d hot paths", d.Clock, len(result))
			for _, hp := range d.Entered {
				fmt.Printf("  +#%d(h=%d)", hp.ID, hp.Hotness)
			}
			for _, hp := range d.Changed {
				fmt.Printf("  ~#%d(h=%d)", hp.ID, hp.Hotness)
			}
			for _, id := range d.Left {
				fmt.Printf("  -#%d", id)
			}
			fmt.Println()
		}
	}()

	rng := rand.New(rand.NewSource(7))
	const horizon = 400
	for now := int64(1); now <= horizon; now++ {
		var batch []hotpaths.Observation
		for i := 0; i < 24; i++ {
			// Act 1: eastbound flow for the first half of the run.
			if now <= 200 {
				s := (float64(now) + float64(i*9%60)) * 7
				batch = append(batch, hotpaths.Observation{
					ObjectID: i, X: s - float64(int64(s)/1400*1400), Y: rng.Float64()*8 - 4, T: now,
				})
			}
			// Act 2: northbound flow joins from t=80 until t=260.
			if now >= 80 && now <= 260 {
				s := (float64(now-80) + float64(i*7%40)) * 7
				batch = append(batch, hotpaths.Observation{
					ObjectID: 100 + i, X: 800 + rng.Float64()*8 - 4, Y: s - float64(int64(s)/1400*1400), T: now,
				})
			}
			// Act 3 (t>260): silence — the sliding window drains the hot set.
		}
		if err := eng.ObserveBatch(batch); err != nil {
			log.Fatal(err)
		}
		if err := eng.Tick(now); err != nil {
			log.Fatal(err)
		}
	}

	// Closing the engine closes the subscription channel; wait for the
	// watcher to drain so its last lines print before we exit.
	eng.Close()
	<-done
	fmt.Println("engine closed, subscription drained")
}

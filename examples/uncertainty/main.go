// Heterogeneous measurement uncertainty (paper Section 4.1): the same fleet
// observed through two device classes — GPS handsets (σ ≈ 2 m) and phones
// positioned by cell-tower triangulation (σ ≈ 8 m) — under the (ε,δ)
// tolerance model. Noisier devices get tighter safe areas (their reported
// positions are less trustworthy, so less slack remains within ε), which
// shows up as more frequent reports to the coordinator.
//
// Run with: go run ./examples/uncertainty
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"hotpaths"
)

func main() {
	const (
		eps   = 20.0
		delta = 0.05
	)
	run := func(sigma float64) (reports, observations int) {
		sys, err := hotpaths.New(hotpaths.Config{
			Eps:    eps,
			Delta:  delta,
			W:      200,
			Epoch:  10,
			K:      5,
			Bounds: hotpaths.Rect{Min: hotpaths.Pt(-500, -500), Max: hotpaths.Pt(4000, 4000)},
		})
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		const vehicles = 20
		for now := int64(1); now <= 200; now++ {
			for id := 0; id < vehicles; id++ {
				// A gentle S-curve at 12 m/ts plus the device's Gaussian noise.
				base := float64(now) * 12
				lateral := 150*math.Sin(base/900) + float64(id%5)*8
				x := base + rng.NormFloat64()*sigma
				y := lateral + rng.NormFloat64()*sigma
				if err := sys.ObserveNoisy(id, x, y, sigma, sigma, now); err != nil {
					log.Fatal(err)
				}
			}
			if err := sys.Tick(now); err != nil {
				log.Fatal(err)
			}
		}
		st := sys.Stats()
		fmt.Printf("sigma=%.0fm: %d observations -> %d reports, %d paths, top score %.0f\n",
			sigma, st.Observations, st.Reports, st.IndexSize, sys.Score())
		return st.Reports, st.Observations
	}

	fmt.Printf("(eps=%.0fm, delta=%.2f) — identical movement, two device classes\n\n", eps, delta)
	gpsReports, _ := run(2)  // GPS-grade
	cellReports, _ := run(8) // cell-triangulation-grade

	fmt.Println()
	if cellReports > gpsReports {
		fmt.Printf("noisier devices reported %.1fx more often: their tolerance "+
			"rectangles shrink to keep the (eps,delta) guarantee\n",
			float64(cellReports)/float64(gpsReports))
	} else {
		fmt.Println("unexpected: noise did not increase reporting")
	}
}

package hotpaths

import (
	"math"
	"math/rand"
	"testing"
)

func testConfig() Config {
	return Config{
		Eps:    5,
		W:      100,
		Epoch:  10,
		K:      10,
		Bounds: Rect{Min: Pt(-1000, -1000), Max: Pt(1000, 1000)},
	}
}

func TestNewValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Eps = 0 },
		func(c *Config) { c.Delta = 1 },
		func(c *Config) { c.Delta = -0.1 },
		func(c *Config) { c.W = 0 },
		func(c *Config) { c.Epoch = 0 },
		func(c *Config) { c.Bounds = Rect{} },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config must be rejected", i)
		}
	}
	if _, err := New(testConfig()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestHotPathScore(t *testing.T) {
	hp := HotPath{Start: Pt(0, 0), End: Pt(3, 4), Hotness: 2}
	if hp.Length() != 5 || hp.Score() != 10 {
		t.Errorf("Length=%v Score=%v", hp.Length(), hp.Score())
	}
}

// Two objects follow the same L-shaped route with a small offset; the
// system must discover shared hot paths.
func TestSharedRouteBecomesHot(t *testing.T) {
	sys, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A route with two sharp corners: the first corner forces both filters
	// to report and re-seeds them at a shared vertex; at the second corner
	// they report from that shared start, concentrating hotness on one path.
	pos := func(step int, offset float64) (float64, float64) {
		switch {
		case step < 30:
			return float64(step) * 8, offset // east leg
		case step < 60:
			return 240, offset + float64(step-30)*8 // north leg
		default:
			return 240 + float64(step-60)*8, offset + 240 // east again
		}
	}
	for now := int64(1); now <= 100; now++ {
		step := int(now - 1)
		x0, y0 := pos(step, 0)
		if err := sys.Observe(1, x0, y0, now); err != nil {
			t.Fatal(err)
		}
		// The offset must stay well below ε: at a corner the final safe
		// area degenerates to a thin sliver around the turn, and two
		// objects share vertices only if their slivers intersect.
		x1, y1 := pos(step, 0.5)
		if err := sys.Observe(2, x1, y1, now); err != nil {
			t.Fatal(err)
		}
		if err := sys.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.Stats()
	if st.Observations != 200 {
		t.Errorf("observations = %d", st.Observations)
	}
	if st.Reports == 0 {
		t.Fatal("the corner must force at least one report")
	}
	top := sys.TopK()
	if len(top) == 0 {
		t.Fatal("no hot paths discovered")
	}
	found := false
	for _, hp := range top {
		if hp.Hotness >= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("two objects on the same route should share a path: %+v", top)
	}
	if sys.Score() <= 0 {
		t.Error("score must be positive")
	}
	if len(sys.HotPaths()) < len(top) {
		t.Error("HotPaths must include at least the top-k")
	}
}

func TestObserveTimestampValidation(t *testing.T) {
	sys, _ := New(testConfig())
	sys.Observe(1, 0, 0, 5)
	if err := sys.Observe(1, 1, 1, 5); err == nil {
		t.Error("repeated timestamp must error")
	}
	if err := sys.Observe(1, 1, 1, 4); err == nil {
		t.Error("decreasing timestamp must error")
	}
}

func TestTickValidation(t *testing.T) {
	sys, _ := New(testConfig())
	if err := sys.Tick(1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Tick(1); err == nil {
		t.Error("repeated Tick must error")
	}
	if err := sys.Tick(0); err == nil {
		t.Error("backwards Tick must error")
	}
}

func TestObserveNoisyRequiresDelta(t *testing.T) {
	sys, _ := New(testConfig())
	if err := sys.ObserveNoisy(1, 0, 0, 1, 1, 1); err == nil {
		t.Error("ObserveNoisy without Delta must error")
	}
	cfg := testConfig()
	cfg.Delta = 0.05
	sys2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.ObserveNoisy(1, 0, 0, 0, 1, 1); err == nil {
		t.Error("non-positive sigma must error")
	}
	if err := sys2.ObserveNoisy(1, 0, 0, 0.5, 0.5, 1); err != nil {
		t.Errorf("valid noisy observation rejected: %v", err)
	}
}

// The (ε,δ) mode must behave like a slightly tightened ε mode: a straight
// mover with mild noise still produces few reports.
func TestUncertaintyModeEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.Eps = 10
	cfg.Delta = 0.05
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for now := int64(1); now <= 100; now++ {
		x := float64(now)*7 + rng.NormFloat64()*0.5
		y := rng.NormFloat64() * 0.5
		if err := sys.ObserveNoisy(1, x, y, 0.5, 0.5, now); err != nil {
			t.Fatal(err)
		}
		if err := sys.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.Stats()
	if st.Reports > 20 {
		t.Errorf("straight noisy mover raised %d reports; tolerance looks broken", st.Reports)
	}
}

// Hotness expires: a burst of activity followed by silence empties the
// index after W timestamps.
func TestWindowExpiry(t *testing.T) {
	cfg := testConfig()
	cfg.W = 50
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Zig-zag for 40 ts to force reports and path creation.
	for now := int64(1); now <= 40; now++ {
		x := float64(now) * 6
		y := 0.0
		if (now/5)%2 == 0 {
			y = 40
		}
		if err := sys.Observe(1, x, y, now); err != nil {
			t.Fatal(err)
		}
		if err := sys.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Stats().IndexSize == 0 {
		t.Fatal("zig-zag produced no paths")
	}
	// Silence until every crossing has expired.
	for now := int64(41); now <= 200; now++ {
		if err := sys.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	if got := sys.Stats().IndexSize; got != 0 {
		t.Errorf("index size = %d after expiry window", got)
	}
	if len(sys.TopK()) != 0 {
		t.Error("TopK must be empty after expiry")
	}
}

// Reported paths approximate the true movement: every hot path endpoint
// pair must be near some observed position of some object.
func TestPathsStayNearObservations(t *testing.T) {
	sys, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var observed []Point
	rng := rand.New(rand.NewSource(9))
	x, y := 0.0, 0.0
	dx, dy := 6.0, 0.0
	for now := int64(1); now <= 200; now++ {
		if rng.Float64() < 0.1 {
			dx, dy = rng.Float64()*12-6, rng.Float64()*12-6
		}
		x += dx
		y += dy
		observed = append(observed, Pt(x, y))
		if err := sys.Observe(1, x, y, now); err != nil {
			t.Fatal(err)
		}
		if err := sys.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	for _, hp := range sys.HotPaths() {
		for _, end := range []Point{hp.Start, hp.End} {
			best := math.Inf(1)
			for _, o := range observed {
				d := math.Max(math.Abs(o.X-end.X), math.Abs(o.Y-end.Y))
				if d < best {
					best = d
				}
			}
			// Endpoints are chosen inside FSAs, which live within ε of
			// observations.
			if best > 5+1e-9 {
				t.Errorf("endpoint %v at distance %v from every observation", end, best)
			}
		}
	}
}

package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// Bucket boundaries are inclusive upper bounds: an observation exactly on
// a bound lands in that bound's bucket, and exposition is cumulative.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "", []float64{1, 2, 5}, nil)
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4.9, 5, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_hist_bucket{le="1"} 2`,    // 0.5, 1
		`test_hist_bucket{le="2"} 4`,    // + 1.0000001, 2
		`test_hist_bucket{le="5"} 6`,    // + 4.9, 5
		`test_hist_bucket{le="+Inf"} 7`, // + 100
		`test_hist_count 7`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got, want := h.Sum(), 0.5+1+1.0000001+2+4.9+5+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum() = %v, want %v", got, want)
	}
}

func TestHistogramRejectsBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing buckets did not panic")
		}
	}()
	NewRegistry().Histogram("bad", "", []float64{1, 1}, nil)
}

// Registration is idempotent: same name+labels yields the same instance,
// different labels yield siblings in one family.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "requests", Labels{"route": "/topk"})
	b := r.Counter("reqs_total", "requests", Labels{"route": "/topk"})
	c := r.Counter("reqs_total", "requests", Labels{"route": "/paths"})
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	if a == c {
		t.Error("different labels returned the same counter")
	}
	a.Add(3)
	c.Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `reqs_total{route="/topk"} 3`) || !strings.Contains(out, `reqs_total{route="/paths"} 1`) {
		t.Errorf("label sets not exposed independently:\n%s", out)
	}
	if strings.Count(out, "# TYPE reqs_total counter") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "", nil)
}

// GaugeFunc re-registration must repoint the closure (a reopened engine
// replaces a closed one) and expose the fresh value.
func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("depth", "", nil, func() float64 { return 1 })
	r.GaugeFunc("depth", "", nil, func() float64 { return 42 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "depth 42\n") {
		t.Errorf("GaugeFunc not replaced:\n%s", b.String())
	}
}

// The exposition text must parse as the Prometheus 0.0.4 format: every
// non-comment line is `name[{labels}] value`, every family has exactly
// one TYPE line, histograms end with _sum/_count.
func TestExpositionWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "with \"quotes\" and\nnewline", Labels{"p": `v"\x`}).Inc()
	r.Gauge("b", "", nil).Set(-5)
	r.Histogram("lat_seconds", "latency", LatencyBuckets, Labels{"route": "/x"}).Observe(0.003)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkExposition(t, b.String())
}

// checkExposition is a minimal 0.0.4 parser shared with the daemon's
// /metrics golden test via this package's test helpers.
func checkExposition(t *testing.T, out string) {
	t.Helper()
	types := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if name == "" {
			t.Fatalf("sample with no name: %q", line)
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.LastIndex(rest, "}")
			if end < 0 {
				t.Fatalf("unterminated label set: %q", line)
			}
			rest = rest[end+1:]
		}
		val := strings.TrimSpace(rest)
		if val == "" {
			t.Fatalf("sample with no value: %q", line)
		}
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := parseFloat(val); err != nil {
				t.Fatalf("sample value %q does not parse: %v", val, err)
			}
		}
		// The sample must belong to a declared family (histogram samples
		// carry the _bucket/_sum/_count suffixes).
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if bn := strings.TrimSuffix(name, suf); bn != name {
				if _, ok := types[bn]; ok {
					base = bn
				}
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q precedes or lacks its TYPE line", name)
		}
	}
}

func parseFloat(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return f, err
}

// One registry hammered from concurrent writers and scrapers: the -race
// test the ISSUE calls for. Correctness of the final counts is asserted
// too — atomics must not lose increments.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const writers, perWriter = 8, 5000
	var wg, scrapers sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers run the whole time, including during registration of new
	// label children.
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("hammer_total", "", nil)
			h := r.Histogram("hammer_seconds", "", LatencyBuckets, nil)
			g := r.Gauge("hammer_depth", "", nil)
			lab := r.Counter("hammer_labeled_total", "", Labels{"w": fmt.Sprint(id)})
			t0 := time.Now()
			for j := 0; j < perWriter; j++ {
				c.Inc()
				h.ObserveSince(t0)
				g.Set(int64(j))
				lab.Inc()
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	if got := r.Counter("hammer_total", "", nil).Value(); got != writers*perWriter {
		t.Errorf("counter lost increments: %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("hammer_seconds", "", LatencyBuckets, nil).Count(); got != writers*perWriter {
		t.Errorf("histogram lost observations: %d, want %d", got, writers*perWriter)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

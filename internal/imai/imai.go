// Package imai provides an offline baseline for the degenerate single-object
// case of the hot-motion-path problem (paper Section 3.1, ref [13]):
// summarising one trajectory with the fewest motion paths under the
// time-parameterised L∞ tolerance.
//
// GreedyAnchored implements a furthest-reaching greedy in the spirit of
// Imai–Iri's optimal piecewise-linear approximation, adapted to the paper's
// motion-path semantics. Each chunk's start vertex is anchored at the first
// measurement of the chunk; the end vertex floats freely inside the chunk's
// final safe area (the same cone-intersection geometry RayTrace maintains
// on-line). Feasibility of a prefix is monotone — a motion path that fits
// timepoints i..j also fits i..j′ for j′<j — so extending each chunk as far
// as possible minimises the number of chunks among all anchored
// segmentations (the standard exchange argument for greedy interval
// covering).
//
// The value of this baseline is as an ablation reference: it sees the whole
// trajectory at once and pays no chaining penalty to a coordinator's
// endpoint choice, so it bounds from below the number of segments an
// on-line anchored method can hope for.
package imai

import (
	"fmt"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
)

// GreedyAnchored segments the trajectory into the minimum number of motion
// paths among anchored segmentations (see package comment). The endpoint of
// each emitted path is the centroid of the chunk's final safe area, except
// that consecutive paths share vertices only in the anchored sense: each
// chunk starts at a measured location, not at the previous chunk's chosen
// endpoint. The result therefore is NOT a covering motion path set; it is a
// per-chunk summary used to count segments.
func GreedyAnchored(pts []trajectory.TimePoint, eps float64) ([]trajectory.MotionPath, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("imai: eps must be positive, got %v", eps)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			return nil, fmt.Errorf("imai: timestamps not strictly increasing at %d", i)
		}
	}
	if len(pts) < 2 {
		return nil, nil
	}
	var out []trajectory.MotionPath
	i := 0
	for i < len(pts)-1 {
		// Grow a cone anchored at pts[i] as far as it reaches.
		apex := pts[i]
		var fsa geom.Rect
		te := apex.T
		j := i + 1
		for ; j < len(pts); j++ {
			q := geom.RectAround(pts[j].P, eps)
			if te == apex.T {
				fsa, te = q, pts[j].T
				continue
			}
			lambda := float64(pts[j].T-apex.T) / float64(te-apex.T)
			inter := fsa.Lerp(apex.P, lambda).Intersect(q)
			if inter.Empty() {
				break
			}
			fsa, te = inter, pts[j].T
		}
		out = append(out, trajectory.MotionPath{
			S:  apex.P,
			E:  fsa.Centroid(),
			Ts: apex.T,
			Te: te,
		})
		// Next chunk anchors at the last covered measurement, sharing it
		// with the previous chunk so the whole trajectory stays covered.
		i = j - 1
	}
	return out, nil
}

// SegmentCount is a convenience wrapper returning just the number of chunks.
func SegmentCount(pts []trajectory.TimePoint, eps float64) (int, error) {
	paths, err := GreedyAnchored(pts, eps)
	if err != nil {
		return 0, err
	}
	return len(paths), nil
}

package raytrace

import (
	"math/rand"
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
)

func tp(x, y float64, t trajectory.Time) trajectory.TimePoint {
	return trajectory.TP(geom.Pt(x, y), t)
}

func TestFirstTimepointSetsFSA(t *testing.T) {
	f := New(tp(0, 0, 0), 2)
	_, report, err := f.Process(tp(10, 0, 1))
	if err != nil || report {
		t.Fatalf("unexpected report/err: %v %v", report, err)
	}
	st := f.State()
	want := geom.RectAround(geom.Pt(10, 0), 2)
	if st.FSA != want || st.Te != 1 || st.Ts != 0 || !st.Start.Eq(geom.Pt(0, 0)) {
		t.Errorf("state = %v", st)
	}
}

func TestSSAIntersectionShrinks(t *testing.T) {
	// Straight movement along x at speed 10; tolerance 2.
	f := New(tp(0, 0, 0), 2)
	mustProcess(t, f, tp(10, 0, 1))
	mustProcess(t, f, tp(20, 0, 2))
	st := f.State()
	if st.Te != 2 {
		t.Fatalf("Te = %d", st.Te)
	}
	// Projection of FSA [(8,-2),(12,2)] at t=2 is [(16,-4),(24,4)];
	// intersection with [(18,-2),(22,2)] is [(18,-2),(22,2)].
	want := geom.Rect{Lo: geom.Pt(18, -2), Hi: geom.Pt(22, 2)}
	if st.FSA != want {
		t.Errorf("FSA = %v want %v", st.FSA, want)
	}
}

func TestViolationReports(t *testing.T) {
	f := New(tp(0, 0, 0), 1)
	mustProcess(t, f, tp(10, 0, 1))
	// A sharp reversal the cone cannot absorb.
	st, report, err := f.Process(tp(-10, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !report {
		t.Fatal("expected report")
	}
	if st.Te != 1 || st.Ts != 0 {
		t.Errorf("reported interval [%d,%d]", st.Ts, st.Te)
	}
	if !f.Waiting() {
		t.Error("filter should be waiting")
	}
	if f.BufferLen() != 1 {
		t.Errorf("violating point must be buffered, len=%d", f.BufferLen())
	}
}

func TestBufferingWhileWaiting(t *testing.T) {
	f := New(tp(0, 0, 0), 1)
	mustProcess(t, f, tp(10, 0, 1))
	_, report, _ := f.Process(tp(-10, 0, 2))
	if !report {
		t.Fatal("expected report")
	}
	for i := trajectory.Time(3); i <= 5; i++ {
		_, r, err := f.Process(tp(-10-float64(i)*2, 0, i))
		if err != nil || r {
			t.Fatalf("waiting filter must only buffer (r=%v err=%v)", r, err)
		}
	}
	if f.BufferLen() != 4 {
		t.Errorf("buffer len = %d want 4", f.BufferLen())
	}
	stats := f.Stats()
	if stats.MaxBuffer != 4 || stats.Buffered != 4 || stats.StatesSent != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRespondReplaysBuffer(t *testing.T) {
	f := New(tp(0, 0, 0), 1)
	mustProcess(t, f, tp(10, 0, 1))
	st, report, _ := f.Process(tp(-10, 0, 2))
	if !report {
		t.Fatal("expected report")
	}
	// Respond with the FSA centroid.
	e := trajectory.TP(st.FSA.Centroid(), st.Te)
	st2, report2, err := f.Respond(e)
	if err != nil {
		t.Fatal(err)
	}
	if report2 {
		t.Fatalf("single buffered point should seed the new SSA without violating: %v", st2)
	}
	if f.Waiting() {
		t.Error("filter should have left waiting mode")
	}
	ns := f.State()
	if ns.Ts != 1 || !ns.Start.Eq(e.P) {
		t.Errorf("new SSA apex = %v @%d", ns.Start, ns.Ts)
	}
	if ns.Te != 2 {
		t.Errorf("buffered point should extend new SSA to te=2, got %d", ns.Te)
	}
}

func TestRespondValidation(t *testing.T) {
	f := New(tp(0, 0, 0), 1)
	mustProcess(t, f, tp(10, 0, 1))
	if _, _, err := f.Respond(tp(10, 0, 1)); err == nil {
		t.Error("Respond while not waiting must error")
	}
	st, report, _ := f.Process(tp(-10, 0, 2))
	if !report {
		t.Fatal("expected report")
	}
	if _, _, err := f.Respond(trajectory.TP(st.FSA.Centroid(), st.Te+1)); err == nil {
		t.Error("wrong response timestamp must error")
	}
	outside := st.FSA.Hi.Add(geom.Pt(5, 5))
	if _, _, err := f.Respond(trajectory.TP(outside, st.Te)); err == nil {
		t.Error("endpoint outside FSA must error")
	}
	// A valid response still works afterwards.
	if _, _, err := f.Respond(trajectory.TP(st.FSA.Centroid(), st.Te)); err != nil {
		t.Errorf("valid respond failed: %v", err)
	}
}

func TestRespondCanImmediatelyReport(t *testing.T) {
	f := New(tp(0, 0, 0), 1)
	mustProcess(t, f, tp(10, 0, 1))
	st, report, _ := f.Process(tp(-10, 0, 2))
	if !report {
		t.Fatal("expected report")
	}
	// While waiting, feed a zig-zag that cannot fit one SSA.
	f.Process(tp(50, 0, 3))
	f.Process(tp(-50, 0, 4))
	st2, report2, err := f.Respond(trajectory.TP(st.FSA.Centroid(), st.Te))
	if err != nil {
		t.Fatal(err)
	}
	if !report2 {
		t.Fatal("zig-zag buffer must violate the fresh SSA")
	}
	if !f.Waiting() {
		t.Error("filter must be waiting again")
	}
	if st2.Ts != st.Te {
		t.Errorf("new state must chain: Ts=%d want %d", st2.Ts, st.Te)
	}
}

// Regression test: when a replayed buffer point violates the fresh SSA, it
// must return to the FRONT of the buffer. A bug that appended it to the
// back scrambled the ordering and produced states with Te < Ts.
func TestReplayViolationPreservesBufferOrder(t *testing.T) {
	f := New(tp(0, 0, 0), 1)
	mustProcess(t, f, tp(10, 0, 1))
	st, report, _ := f.Process(tp(-10, 0, 2))
	if !report {
		t.Fatal("expected report")
	}
	// Buffer a zig-zag: after the first respond, the replay will violate
	// mid-buffer repeatedly.
	f.Process(tp(30, 0, 3))
	f.Process(tp(-30, 0, 4))
	f.Process(tp(50, 0, 5))
	for rounds := 0; report && rounds < 10; rounds++ {
		st, report, _ = f.Respond(trajectory.TP(st.FSA.Centroid(), st.Te))
		if report {
			if st.Te <= st.Ts {
				t.Fatalf("inverted state interval [%d,%d]", st.Ts, st.Te)
			}
		}
	}
	if f.Waiting() {
		t.Fatal("zig-zag should drain within a few rounds")
	}
}

func TestTimestampValidation(t *testing.T) {
	f := New(tp(0, 0, 5), 1)
	if _, _, err := f.Process(tp(1, 1, 5)); err == nil {
		t.Error("equal timestamp must error")
	}
	if _, _, err := f.Process(tp(1, 1, 4)); err == nil {
		t.Error("decreasing timestamp must error")
	}
	var zero Filter
	if _, _, err := zero.Process(tp(1, 1, 9)); err == nil {
		t.Error("unprimed filter must error")
	}
}

func TestFlush(t *testing.T) {
	f := New(tp(0, 0, 0), 1)
	if _, ok := f.Flush(); ok {
		t.Error("flush with no extension must be empty")
	}
	mustProcess(t, f, tp(10, 0, 1))
	st, ok := f.Flush()
	if !ok || st.Te != 1 {
		t.Errorf("flush = %v %v", st, ok)
	}
	var zero Filter
	if _, ok := zero.Flush(); ok {
		t.Error("unprimed flush must be empty")
	}
}

func TestCustomToleranceFunc(t *testing.T) {
	// Per-point rectangles that are wider in x than in y.
	tol := func(p trajectory.TimePoint) geom.Rect {
		return geom.Rect{
			Lo: p.P.Sub(geom.Pt(4, 1)),
			Hi: p.P.Add(geom.Pt(4, 1)),
		}
	}
	f := NewWithTolerance(tp(0, 0, 0), tol)
	mustProcess(t, f, tp(10, 0, 1))
	st := f.State()
	want := geom.Rect{Lo: geom.Pt(6, -1), Hi: geom.Pt(14, 1)}
	if st.FSA != want {
		t.Errorf("FSA = %v want %v", st.FSA, want)
	}
	// An empty tolerance rect is an error.
	badTol := func(trajectory.TimePoint) geom.Rect {
		return geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(0, 0)}
	}
	g := NewWithTolerance(tp(0, 0, 0), badTol)
	if _, _, err := g.Process(tp(1, 0, 1)); err == nil {
		t.Error("empty tolerance rect must error")
	}
}

// randomWalk produces a jittery trajectory starting at the origin.
func randomWalk(rng *rand.Rand, n int, step float64) []trajectory.TimePoint {
	pts := make([]trajectory.TimePoint, n)
	cur := geom.Pt(0, 0)
	dir := geom.Pt(1, 0)
	tcur := trajectory.Time(0)
	for i := range pts {
		// Mostly keep heading, occasionally turn.
		if rng.Float64() < 0.2 {
			dir = geom.Pt(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		cur = cur.Add(dir.Scale(step)).Add(geom.Pt(rng.Float64()-0.5, rng.Float64()-0.5))
		pts[i] = trajectory.TP(cur, tcur)
		tcur += trajectory.Time(1 + rng.Intn(3))
	}
	return pts
}

// The central correctness property (paper Section 4): for any endpoint e in
// a reported FSA, the motion path start→e over [ts,te] is within ε of every
// measurement the SSA absorbed.
func TestSSAClosenessInvariant(t *testing.T) {
	const eps = 3.0
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		pts := randomWalk(rng, 120, 4)
		f := New(pts[0], eps)
		recorded := []trajectory.TimePoint{pts[0]}

		check := func(st State) {
			// Try several endpoints inside the FSA, including corners.
			ends := []geom.Point{
				st.FSA.Centroid(), st.FSA.Lo, st.FSA.Hi,
				geom.Pt(st.FSA.Lo.X, st.FSA.Hi.Y),
				geom.Pt(st.FSA.Lo.X+rng.Float64()*st.FSA.Width(),
					st.FSA.Lo.Y+rng.Float64()*st.FSA.Height()),
			}
			for _, e := range ends {
				mp := trajectory.MotionPath{S: st.Start, E: e, Ts: st.Ts, Te: st.Te}
				for _, m := range recorded {
					if m.T < st.Ts || m.T > st.Te {
						continue
					}
					if d := mp.LocationAt(m.T).MaxDist(m.P); d > eps+1e-9 {
						t.Fatalf("trial %d: endpoint %v: measurement %v at distance %v > eps",
							trial, e, m, d)
					}
				}
			}
		}

		for _, p := range pts[1:] {
			st, report, err := f.Process(p)
			if err != nil {
				t.Fatal(err)
			}
			recorded = append(recorded, p)
			for report {
				check(st)
				st, report, err = f.Respond(trajectory.TP(st.FSA.Centroid(), st.Te))
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		if st, ok := f.Flush(); ok {
			check(st)
		}
	}
}

// Reported states must chain into a covering motion path set when the
// coordinator always answers with a point inside the FSA.
func TestCoveringChainInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomWalk(rng, 300, 5)
	f := New(pts[0], 2.5)
	var paths []trajectory.MotionPath
	for _, p := range pts[1:] {
		st, report, err := f.Process(p)
		if err != nil {
			t.Fatal(err)
		}
		for report {
			e := st.FSA.Centroid()
			paths = append(paths, trajectory.MotionPath{S: st.Start, E: e, Ts: st.Ts, Te: st.Te})
			st, report, err = f.Respond(trajectory.TP(e, st.Te))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(paths) < 2 {
		t.Skip("walk too tame to emit multiple paths")
	}
	if !trajectory.CoveringSet(paths, paths[0].Ts, paths[len(paths)-1].Te) {
		t.Error("reported paths do not chain into a covering set")
	}
}

// A straight-line mover should never trigger a report: one SSA absorbs the
// entire trip.
func TestStraightLineNeverReports(t *testing.T) {
	f := New(tp(0, 0, 0), 1)
	for i := 1; i <= 1000; i++ {
		st, report, err := f.Process(tp(float64(i)*7, float64(i)*3, trajectory.Time(i)))
		if err != nil {
			t.Fatal(err)
		}
		if report {
			t.Fatalf("straight line reported at i=%d: %v", i, st)
		}
	}
	if f.Stats().StatesSent != 0 {
		t.Error("no states should have been sent")
	}
}

// O(1) space: the filter never keeps more than the SSA regardless of input
// length (buffer only grows while waiting).
func TestConstantSpaceWhenNotWaiting(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randomWalk(rng, 2000, 3)
	f := New(pts[0], 5)
	for _, p := range pts[1:] {
		st, report, err := f.Process(p)
		if err != nil {
			t.Fatal(err)
		}
		if report {
			if _, _, err := f.Respond(trajectory.TP(st.FSA.Centroid(), st.Te)); err != nil {
				t.Fatal(err)
			}
		}
		if f.BufferLen() > 1 {
			t.Fatalf("buffer grew to %d while being serviced every step", f.BufferLen())
		}
	}
}

func mustProcess(t *testing.T, f *Filter, p trajectory.TimePoint) {
	t.Helper()
	st, report, err := f.Process(p)
	if err != nil {
		t.Fatal(err)
	}
	if report {
		t.Fatalf("unexpected report: %v", st)
	}
}

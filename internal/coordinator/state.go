package coordinator

import (
	"fmt"
	"sort"

	"hotpaths/internal/gridindex"
	"hotpaths/internal/hotness"
	"hotpaths/internal/motion"
)

// State is the coordinator's complete mutable state, exported for
// checkpointing: the stored paths, the counters and the hotness window's
// pending crossings. Restoring it into a coordinator built with the same
// Config yields bit-identical future behaviour — the grid index is
// derived from the paths, and the crossing list carries the window's heap
// layout verbatim.
type State struct {
	Paths []motion.Path // sorted by id, for a canonical encoding
	// NextID is vestigial: ids are content-addressed (motion.PathIDFor),
	// so there is no allocator to checkpoint. The field stays so old gob
	// checkpoints decode; its value is ignored on restore.
	NextID    motion.PathID
	Stats     Stats
	Crossings []hotness.Crossing // the window's pending events, heap order
}

// DumpState captures the coordinator's state for checkpointing.
func (c *Coordinator) DumpState() State {
	paths := make([]motion.Path, 0, len(c.paths))
	for _, p := range c.paths {
		paths = append(paths, p)
	}
	sort.Slice(paths, func(i, j int) bool { return paths[i].ID < paths[j].ID })
	return State{
		Paths:     paths,
		Stats:     c.stats,
		Crossings: c.hot.Dump(),
	}
}

// RestoreState replaces the coordinator's state with a dumped one. The
// coordinator must have been built with the same Config as the dumping
// one; the grid index is rebuilt from the dumped paths.
func (c *Coordinator) RestoreState(st State) error {
	hot, err := hotness.Restore(c.cfg.W, st.Crossings)
	if err != nil {
		return fmt.Errorf("coordinator: restore hotness window: %w", err)
	}
	grid, err := gridindex.New(c.cfg.Bounds, c.cfg.Cols, c.cfg.Rows)
	if err != nil {
		return fmt.Errorf("coordinator: restore grid: %w", err)
	}
	paths := make(map[motion.PathID]motion.Path, len(st.Paths))
	for _, p := range st.Paths {
		if _, dup := paths[p.ID]; dup {
			return fmt.Errorf("coordinator: restored path id %d is duplicated", p.ID)
		}
		paths[p.ID] = p
		grid.Insert(gridindex.Entry{ID: p.ID, End: p.E, Start: p.S})
	}
	for _, cr := range st.Crossings {
		if _, ok := paths[cr.ID]; !ok {
			return fmt.Errorf("coordinator: restored crossing references unknown path %d", cr.ID)
		}
	}
	c.paths = paths
	c.grid = grid
	c.hot = hot
	c.stats = st.Stats
	return nil
}

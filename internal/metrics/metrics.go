// Package metrics is a zero-dependency metrics registry with Prometheus
// text-format exposition. It backs the observability layer of every hot
// subsystem — engine ingest, WAL, replication, subscriptions and the
// hotpathsd HTTP surface.
//
// # Model
//
// A Registry holds named metric families; each family holds one metric
// per label set. Three kinds exist, mirroring the Prometheus data model:
//
//   - Counter: a monotone uint64, updated with a single atomic add.
//   - Gauge: an int64 that can move both ways, plus GaugeFunc for values
//     computed at scrape time (e.g. queue depths, subscriber counts).
//   - Histogram: fixed upper-bound buckets with cumulative exposition
//     ("le" labels, +Inf, _sum, _count). Buckets are chosen at creation
//     and never reallocated, so Observe is a binary search plus two
//     atomic adds — cheap enough for per-batch ingest instrumentation.
//
// # Concurrency
//
// Registration (Counter/Gauge/Histogram/GaugeFunc) takes the registry
// mutex and is idempotent: the same name+labels returns the same
// instance, so packages may re-register from every constructor without
// leaking families. Updates on the returned handles are lock-free
// atomics, safe under -race from any number of goroutines concurrently
// with exposition. WritePrometheus takes the mutex only to snapshot the
// family list; values are read with atomic loads, so a scrape observes
// each metric at one instant but the scrape as a whole is not a
// transaction (standard Prometheus semantics).
//
// Metrics are process-global by design (the Default registry): two
// engines in one process share families exactly as two libraries
// sharing a Prometheus default registerer would.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attaches dimension values to a metric within its family
// (e.g. {"route": "/topk"}). Nil means no labels.
type Labels map[string]string

// kind is the family's exposition TYPE line.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Registry is a set of metric families. The zero value is not usable;
// call NewRegistry (or use Default).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help string
	kind       kind
	metrics    map[string]metric // keyed by rendered label string
	order      []string          // registration order, for stable exposition
}

// metric is anything a family can expose.
type metric interface {
	write(w io.Writer, name, labelStr string) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry every package-level metric
// registers with; Handler exposes it.
var Default = NewRegistry()

// family returns (creating if needed) the named family, enforcing that a
// name never changes kind — that is a programming error, caught loudly.
func (r *Registry) family(name, help string, k kind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, metrics: make(map[string]metric)}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.kind, k))
	}
	return f
}

// get returns the family's metric for the label set, creating it with
// mk when absent.
func (f *family) get(labels Labels, mk func() metric) metric {
	key := renderLabels(labels)
	m, ok := f.metrics[key]
	if !ok {
		m = mk()
		f.metrics[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.family(name, help, kindCounter).get(labels, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("metrics: %s%s is not a counter", name, renderLabels(labels)))
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.family(name, help, kindGauge).get(labels, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("metrics: %s%s is not a settable gauge", name, renderLabels(labels)))
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values the owner already tracks (queue depths, map sizes)
// where mirroring into a stored gauge would just add a write path.
// Re-registering the same name+labels replaces fn, so a reconstructed
// owner (a reopened engine) repoints the gauge at its live state instead
// of scraping a dead closure.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	key := renderLabels(labels)
	if m, ok := f.metrics[key]; ok {
		gf, ok := m.(*gaugeFunc)
		if !ok {
			panic(fmt.Sprintf("metrics: %s%s is not a func gauge", name, key))
		}
		gf.fn.Store(&fn)
		return
	}
	gf := &gaugeFunc{}
	gf.fn.Store(&fn)
	f.metrics[key] = gf
	f.order = append(f.order, key)
}

// Histogram returns the named histogram, registering it on first use
// with the given bucket upper bounds (strictly increasing; +Inf is
// implicit). Later calls for the same name+labels return the existing
// histogram and ignore buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.family(name, help, kindHistogram).get(labels, func() metric { return newHistogram(buckets) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("metrics: %s%s is not a histogram", name, renderLabels(labels)))
	}
	return h
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labelStr string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labelStr, c.v.Load())
	return err
}

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer, name, labelStr string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labelStr, g.v.Load())
	return err
}

type gaugeFunc struct {
	fn atomic.Pointer[func() float64]
}

func (g *gaugeFunc) write(w io.Writer, name, labelStr string) error {
	v := 0.0
	if fn := g.fn.Load(); fn != nil {
		v = (*fn)()
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labelStr, formatFloat(v))
	return err
}

// Histogram counts observations into fixed buckets. Observe is safe for
// concurrent use; the exposition is cumulative per Prometheus convention
// (a bucket's count includes every smaller bucket, le is inclusive).
type Histogram struct {
	bounds []float64       // upper bounds, strictly increasing
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomicFloat
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram buckets not strictly increasing at %g", buckets[i]))
		}
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// SearchFloat64s finds the first bound >= v only via >=: it returns
	// the insertion point for v, which lands on the bucket whose bound
	// equals v (le is inclusive) or the next greater one.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveSince records the seconds elapsed since t0 — the one-line form
// for latency instrumentation.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

func (h *Histogram) write(w io.Writer, name, labelStr string) error {
	// Merge the le label into any existing label set.
	prefix := "{"
	if labelStr != "" {
		prefix = labelStr[:len(labelStr)-1] + ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, prefix, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, prefix, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelStr, formatFloat(h.sum.load())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelStr, h.count.Load())
	return err
}

// atomicFloat accumulates float64 values with a CAS loop.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// ExpBuckets returns n strictly increasing buckets starting at start,
// each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 10µs to ~20s in 1-2.5-5 steps — wide enough for
// both an in-memory batch enqueue and a cold checkpoint write.
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10, 20,
}

// SizeBuckets is a power-of-two ladder for batch sizes and byte counts.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}

// WritePrometheus writes every family in name order in the Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	// Snapshot each family's metric list under the lock; values are read
	// atomically afterwards, so a long scrape never blocks registration.
	type snap struct {
		f    *family
		keys []string
	}
	snaps := make([]snap, len(fams))
	for i, f := range fams {
		snaps[i] = snap{f: f, keys: append([]string(nil), f.order...)}
	}
	r.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].f.name < snaps[j].f.name })

	for _, s := range snaps {
		if s.f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.f.name, escapeHelp(s.f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.f.name, s.f.kind); err != nil {
			return err
		}
		for _, key := range s.keys {
			r.mu.Lock()
			m := s.f.metrics[key]
			r.mu.Unlock()
			if m == nil {
				continue
			}
			if err := m.write(w, s.f.name, key); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler serves the Default registry as a Prometheus scrape target.
func Handler() http.Handler { return HandlerFor(Default) }

// HandlerFor serves r as a Prometheus scrape target.
func HandlerFor(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are client disconnects; nothing to do.
		_ = r.WritePrometheus(w)
	})
}

// renderLabels serialises a label set as {k="v",...} with sorted keys, or
// "" for no labels — the canonical per-family metric key.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

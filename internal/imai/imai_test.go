package imai

import (
	"math/rand"
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/trajectory"
)

func tp(x, y float64, t trajectory.Time) trajectory.TimePoint {
	return trajectory.TP(geom.Pt(x, y), t)
}

func TestValidation(t *testing.T) {
	if _, err := GreedyAnchored([]trajectory.TimePoint{tp(0, 0, 0), tp(1, 1, 1)}, 0); err == nil {
		t.Error("eps=0 must error")
	}
	if _, err := GreedyAnchored([]trajectory.TimePoint{tp(0, 0, 1), tp(1, 1, 1)}, 1); err == nil {
		t.Error("non-increasing timestamps must error")
	}
}

func TestTrivialInputs(t *testing.T) {
	if got, _ := GreedyAnchored(nil, 1); got != nil {
		t.Error("nil input")
	}
	if got, _ := GreedyAnchored([]trajectory.TimePoint{tp(0, 0, 0)}, 1); got != nil {
		t.Error("single point")
	}
}

func TestStraightLineOneSegment(t *testing.T) {
	var pts []trajectory.TimePoint
	for i := 0; i < 100; i++ {
		pts = append(pts, tp(float64(i)*5, float64(i)*2, trajectory.Time(i)))
	}
	paths, err := GreedyAnchored(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("straight line needs 1 segment, got %d", len(paths))
	}
	if paths[0].Ts != 0 || paths[0].Te != 99 {
		t.Errorf("span [%d,%d]", paths[0].Ts, paths[0].Te)
	}
}

func TestRightAngleTwoSegments(t *testing.T) {
	var pts []trajectory.TimePoint
	for i := 0; i <= 10; i++ {
		pts = append(pts, tp(0, float64(i)*10, trajectory.Time(i)))
	}
	for i := 1; i <= 10; i++ {
		pts = append(pts, tp(float64(i)*10, 100, trajectory.Time(10+i)))
	}
	n, err := SegmentCount(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("right angle needs 2 segments, got %d", n)
	}
}

// Every produced path must fit the covered measurements within eps.
func TestFitInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const eps = 3.0
	for trial := 0; trial < 40; trial++ {
		var pts []trajectory.TimePoint
		cur := geom.Pt(0, 0)
		dir := geom.Pt(4, 0)
		for i := 0; i < 200; i++ {
			if rng.Float64() < 0.15 {
				dir = geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
			}
			cur = cur.Add(dir).Add(geom.Pt(rng.Float64()-0.5, rng.Float64()-0.5))
			pts = append(pts, trajectory.TP(cur, trajectory.Time(i)))
		}
		paths, err := GreedyAnchored(pts, eps)
		if err != nil {
			t.Fatal(err)
		}
		byTime := make(map[trajectory.Time]geom.Point, len(pts))
		for _, p := range pts {
			byTime[p.T] = p.P
		}
		for _, mp := range paths {
			for tt := mp.Ts; tt <= mp.Te; tt++ {
				loc, ok := byTime[tt]
				if !ok {
					continue
				}
				if d := mp.LocationAt(tt).MaxDist(loc); d > eps+1e-9 {
					t.Fatalf("trial %d: path %v misses measurement at t=%d by %v", trial, mp, tt, d)
				}
			}
		}
		// Chunks must jointly cover the whole time span.
		if paths[0].Ts != pts[0].T || paths[len(paths)-1].Te != pts[len(pts)-1].T {
			t.Fatalf("trial %d: chunks span [%d,%d], trajectory [%d,%d]",
				trial, paths[0].Ts, paths[len(paths)-1].Te, pts[0].T, pts[len(pts)-1].T)
		}
		for i := 1; i < len(paths); i++ {
			if paths[i].Ts != paths[i-1].Te {
				t.Fatalf("trial %d: temporal gap between chunks %d and %d", trial, i-1, i)
			}
		}
	}
}

// The offline greedy should track the on-line RayTrace+centroid pipeline
// closely. The two optimise different families (anchored vs chained
// segmentations), so neither strictly dominates per input; we assert the
// offline count stays within one segment per trial and wins in aggregate.
func TestNotWorseThanRayTrace(t *testing.T) {
	totalOffline, totalOnline := 0, 0
	rng := rand.New(rand.NewSource(29))
	const eps = 3.0
	for trial := 0; trial < 30; trial++ {
		var pts []trajectory.TimePoint
		cur := geom.Pt(0, 0)
		dir := geom.Pt(4, 0)
		for i := 0; i < 300; i++ {
			if rng.Float64() < 0.2 {
				dir = geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
			}
			cur = cur.Add(dir)
			pts = append(pts, trajectory.TP(cur, trajectory.Time(i)))
		}
		offline, err := SegmentCount(pts, eps)
		if err != nil {
			t.Fatal(err)
		}
		// On-line pipeline with immediate centroid responses.
		f := raytrace.New(pts[0], eps)
		online := 0
		for _, p := range pts[1:] {
			st, report, err := f.Process(p)
			if err != nil {
				t.Fatal(err)
			}
			for report {
				online++
				st, report, err = f.Respond(trajectory.TP(st.FSA.Centroid(), st.Te))
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, ok := f.Flush(); ok {
			online++
		}
		totalOffline += offline
		totalOnline += online
		if offline > online+1 {
			t.Errorf("trial %d: offline %d far exceeds online %d segments", trial, offline, online)
		}
	}
	if totalOffline > totalOnline {
		t.Errorf("aggregate: offline %d > online %d segments", totalOffline, totalOnline)
	}
}

package locksnapshot_test

import (
	"testing"

	"hotpaths/internal/analysis/analyzertest"
	"hotpaths/internal/analysis/locksnapshot"
)

func TestLocksnapshot(t *testing.T) {
	analyzertest.Run(t, locksnapshot.Analyzer, "a")
}

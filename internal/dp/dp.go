// Package dp implements the Douglas-Peucker family of trajectory
// simplifiers used by the paper as its competitor (Sections 2 and 6):
//
//   - Simplify: the classic offline, recursive Douglas-Peucker line
//     generalisation [Douglas & Peucker 1973].
//   - OpeningWindow: the on-line windowed adaptation of Meratnia & de By
//     (EDBT 2004), with both endpoint-fixing policies: NOPW (conservative —
//     break at the most deviant location) and BOPW (eager — break at the
//     location just before the floating endpoint).
//   - HotSegments: the paper's DP benchmark (Section 6): emitted segments
//     are reused when an existing segment lies completely within the
//     candidate's ε-expanded MBB, otherwise inserted with hotness 1; time
//     is ignored, hotness still slides out of the window W.
package dp

import (
	"fmt"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
)

// Simplify applies the classic offline Douglas-Peucker algorithm: it keeps
// the subset of input vertices whose removal would leave some dropped
// vertex farther than eps (perpendicular segment distance) from the
// simplified polyline. The first and last points are always kept.
func Simplify(pts []geom.Point, eps float64) []geom.Point {
	if len(pts) <= 2 {
		out := make([]geom.Point, len(pts))
		copy(out, pts)
		return out
	}
	keep := make([]bool, len(pts))
	keep[0], keep[len(pts)-1] = true, true
	simplifyRange(pts, 0, len(pts)-1, eps, keep)
	var out []geom.Point
	for i, k := range keep {
		if k {
			out = append(out, pts[i])
		}
	}
	return out
}

func simplifyRange(pts []geom.Point, lo, hi int, eps float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	seg := geom.Seg(pts[lo], pts[hi])
	maxD, maxI := -1.0, -1
	for i := lo + 1; i < hi; i++ {
		if d := seg.DistToPoint(pts[i]); d > maxD {
			maxD, maxI = d, i
		}
	}
	if maxD <= eps {
		return
	}
	keep[maxI] = true
	simplifyRange(pts, lo, maxI, eps, keep)
	simplifyRange(pts, maxI, hi, eps, keep)
}

// Policy selects how the opening-window algorithm fixes a segment endpoint
// when the tolerance is violated.
type Policy int

const (
	// NOPW (normal opening window) breaks at the location that caused the
	// violation: the buffered point with the greatest distance from the
	// candidate segment.
	NOPW Policy = iota
	// BOPW (before opening window) breaks at the location just before the
	// floating endpoint.
	BOPW
)

func (p Policy) String() string {
	if p == BOPW {
		return "BOPW"
	}
	return "NOPW"
}

// Emitted is a simplified trajectory segment produced by the opening-window
// algorithm, with the timestamps of its two endpoints.
type Emitted struct {
	Seg    geom.Segment
	Ts, Te trajectory.Time
}

// OpeningWindow is the on-line windowed Douglas-Peucker simplifier. Feed it
// timepoints in order; it emits a segment whenever the window can no longer
// be approximated by a single segment within eps.
//
// Unlike RayTrace, the endpoints of emitted segments are always input
// locations (the method "is constrained to choose a subset of the reported
// locations as endpoints"), and the per-point cost is linear in the window
// length (every buffered point is re-checked against the new candidate
// segment).
type OpeningWindow struct {
	eps    float64
	policy Policy
	win    []trajectory.TimePoint // win[0] is the anchor
	checks int                    // distance checks performed (cost metric)
}

// NewOpeningWindow returns a simplifier with the given tolerance and
// endpoint policy.
func NewOpeningWindow(eps float64, policy Policy) (*OpeningWindow, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("dp: eps must be positive, got %v", eps)
	}
	if policy != NOPW && policy != BOPW {
		return nil, fmt.Errorf("dp: unknown policy %d", policy)
	}
	return &OpeningWindow{eps: eps, policy: policy}, nil
}

// Checks returns the cumulative number of point-to-segment distance checks,
// the dominant cost of the method.
func (w *OpeningWindow) Checks() int { return w.checks }

// WindowLen returns the current number of buffered timepoints.
func (w *OpeningWindow) WindowLen() int { return len(w.win) }

// Process consumes one timepoint and returns any segments emitted as a
// consequence (usually zero or one; a violation can cascade when the
// remaining window again violates immediately).
func (w *OpeningWindow) Process(tp trajectory.TimePoint) ([]Emitted, error) {
	if n := len(w.win); n > 0 && tp.T <= w.win[n-1].T {
		return nil, fmt.Errorf("dp: non-increasing timestamp %d after %d", tp.T, w.win[n-1].T)
	}
	w.win = append(w.win, tp)
	var out []Emitted
	for {
		emitted, again := w.check()
		if emitted != nil {
			out = append(out, *emitted)
		}
		if !again {
			return out, nil
		}
	}
}

// check tests the current window against the candidate segment
// anchor→latest. It returns a segment if the policy fixed one, and whether
// the (shrunk) window must be re-checked.
func (w *OpeningWindow) check() (*Emitted, bool) {
	n := len(w.win)
	if n < 3 {
		return nil, false
	}
	anchor, float := w.win[0], w.win[n-1]
	cand := geom.Seg(anchor.P, float.P)
	maxD, maxI := -1.0, -1
	for i := 1; i < n-1; i++ {
		w.checks++
		if d := cand.DistToPoint(w.win[i].P); d > maxD {
			maxD, maxI = d, i
		}
	}
	if maxD <= w.eps {
		return nil, false
	}
	// Violation: fix an endpoint per policy.
	breakI := maxI // NOPW: the most deviant location
	if w.policy == BOPW {
		breakI = n - 2 // the location just before the floating endpoint
	}
	em := &Emitted{
		Seg: geom.Seg(anchor.P, w.win[breakI].P),
		Ts:  anchor.T,
		Te:  w.win[breakI].T,
	}
	// The break point becomes the new anchor; everything after it stays in
	// the window and must be re-validated.
	w.win = append([]trajectory.TimePoint{}, w.win[breakI:]...)
	return em, len(w.win) >= 3
}

// Flush emits the remaining window as a final segment, if it holds at least
// two points, and resets the window.
func (w *OpeningWindow) Flush() (Emitted, bool) {
	n := len(w.win)
	if n < 2 {
		w.win = nil
		return Emitted{}, false
	}
	em := Emitted{
		Seg: geom.Seg(w.win[0].P, w.win[n-1].P),
		Ts:  w.win[0].T,
		Te:  w.win[n-1].T,
	}
	w.win = nil
	return em, true
}

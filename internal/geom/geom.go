// Package geom provides the planar geometry kernel used throughout the
// hot-motion-path system: points, axis-aligned rectangles, directed
// segments, and the distance metrics of the paper (max-distance / L∞ by
// default, Euclidean / L2 as an option).
//
// All coordinates are float64 metres in an arbitrary Cartesian frame.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the xy plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p+q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p−q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Lerp linearly interpolates from p to q; λ=0 gives p, λ=1 gives q.
func (p Point) Lerp(q Point, lambda float64) Point {
	return Point{p.X + lambda*(q.X-p.X), p.Y + lambda*(q.Y-p.Y)}
}

// MaxDist returns the L∞ (Chebyshev) distance between p and q. This is the
// paper's default proximity metric.
func (p Point) MaxDist(q Point) float64 {
	return math.Max(math.Abs(p.X-q.X), math.Abs(p.Y-q.Y))
}

// Dist returns the Euclidean (L2) distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Eq reports whether p and q are exactly equal.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Near reports whether p and q are within tol under the L∞ metric.
func (p Point) Near(q Point, tol float64) bool { return p.MaxDist(q) <= tol }

// Min returns the componentwise minimum of p and q.
func (p Point) Min(q Point) Point {
	return Point{math.Min(p.X, q.X), math.Min(p.Y, q.Y)}
}

// Max returns the componentwise maximum of p and q.
func (p Point) Max(q Point) Point {
	return Point{math.Max(p.X, q.X), math.Max(p.Y, q.Y)}
}

func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Metric selects a distance function.
type Metric int

const (
	// LInf is the max-distance metric used by the paper.
	LInf Metric = iota
	// L2 is the Euclidean metric.
	L2
)

// Distance computes the distance between p and q under the metric.
func (m Metric) Distance(p, q Point) float64 {
	if m == L2 {
		return p.Dist(q)
	}
	return p.MaxDist(q)
}

func (m Metric) String() string {
	if m == L2 {
		return "L2"
	}
	return "LInf"
}

// Rect is an axis-aligned rectangle with inclusive bounds Lo ≤ Hi.
// The zero Rect is the degenerate rectangle at the origin.
type Rect struct {
	Lo, Hi Point
}

// RectAround returns the tolerance square of side 2·eps centred at p
// (the paper's "tolerance square Q").
func RectAround(p Point, eps float64) Rect {
	d := Point{eps, eps}
	return Rect{Lo: p.Sub(d), Hi: p.Add(d)}
}

// RectFromPoints returns the minimum bounding rectangle of the points.
// It panics on an empty slice.
func RectFromPoints(pts ...Point) Rect {
	if len(pts) == 0 {
		panic("geom: RectFromPoints with no points")
	}
	r := Rect{Lo: pts[0], Hi: pts[0]}
	for _, p := range pts[1:] {
		r.Lo = r.Lo.Min(p)
		r.Hi = r.Hi.Max(p)
	}
	return r
}

// Valid reports whether Lo ≤ Hi on both axes.
func (r Rect) Valid() bool { return r.Lo.X <= r.Hi.X && r.Lo.Y <= r.Hi.Y }

// Empty reports whether the rectangle encloses no area and no point
// (i.e. it is invalid). A degenerate rectangle (a point or a segment)
// is not empty.
func (r Rect) Empty() bool { return !r.Valid() }

// Width returns the x extent.
func (r Rect) Width() float64 { return r.Hi.X - r.Lo.X }

// Height returns the y extent.
func (r Rect) Height() float64 { return r.Hi.Y - r.Lo.Y }

// Area returns the rectangle's area; 0 for degenerate or invalid rects.
func (r Rect) Area() float64 {
	if !r.Valid() {
		return 0
	}
	return r.Width() * r.Height()
}

// Centroid returns the centre point.
func (r Rect) Centroid() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// ContainsRect reports whether s lies entirely inside r (inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Lo) && r.Contains(s.Hi)
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Lo.X <= s.Hi.X && s.Lo.X <= r.Hi.X &&
		r.Lo.Y <= s.Hi.Y && s.Lo.Y <= r.Hi.Y
}

// Intersect returns the intersection of r and s. If they do not intersect
// the result is invalid (Empty() is true).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{Lo: r.Lo.Max(s.Lo), Hi: r.Hi.Min(s.Hi)}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{Lo: r.Lo.Min(s.Lo), Hi: r.Hi.Max(s.Hi)}
}

// Expand grows the rectangle by d on every side (shrinks for d<0).
func (r Rect) Expand(d float64) Rect {
	dd := Point{d, d}
	return Rect{Lo: r.Lo.Sub(dd), Hi: r.Hi.Add(dd)}
}

// Lerp interpolates between the rectangle's corners: λ=0 yields the
// degenerate rectangle {p,p}, λ=1 yields r itself. It is used to project
// the SSA pyramid with apex p onto intermediate timestamps.
func (r Rect) Lerp(apex Point, lambda float64) Rect {
	return Rect{
		Lo: apex.Lerp(r.Lo, lambda),
		Hi: apex.Lerp(r.Hi, lambda),
	}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%v - %v]", r.Lo, r.Hi)
}

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// At returns the point A + λ(B−A).
func (s Segment) At(lambda float64) Point { return s.A.Lerp(s.B, lambda) }

// MBB returns the segment's minimum bounding rectangle.
func (s Segment) MBB() Rect { return RectFromPoints(s.A, s.B) }

// Reverse returns the segment with its direction flipped.
func (s Segment) Reverse() Segment { return Segment{A: s.B, B: s.A} }

// DistToPoint returns the minimum Euclidean distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	len2 := d.X*d.X + d.Y*d.Y
	if len2 == 0 {
		return s.A.Dist(p)
	}
	t := ((p.X-s.A.X)*d.X + (p.Y-s.A.Y)*d.Y) / len2
	t = math.Max(0, math.Min(1, t))
	return s.At(t).Dist(p)
}

// PerpDist returns the perpendicular distance from p to the infinite line
// through the segment; used by the classic Douglas-Peucker test. For a
// degenerate segment it falls back to point distance.
func (s Segment) PerpDist(p Point) float64 {
	d := s.B.Sub(s.A)
	l := math.Hypot(d.X, d.Y)
	if l == 0 {
		return s.A.Dist(p)
	}
	return math.Abs(d.X*(s.A.Y-p.Y)-d.Y*(s.A.X-p.X)) / l
}

func (s Segment) String() string { return fmt.Sprintf("%v->%v", s.A, s.B) }

package deadreckon

import (
	"math/rand"
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/trajectory"
)

func tp(x, y float64, t trajectory.Time) trajectory.TimePoint {
	return trajectory.TP(geom.Pt(x, y), t)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(tp(0, 0, 0), 0); err == nil {
		t.Error("eps=0 must error")
	}
	f, err := New(tp(0, 0, 0), 5)
	if err != nil {
		t.Fatal(err)
	}
	if f.Sent() != 1 {
		t.Error("seed update must count")
	}
}

func TestTimestampValidation(t *testing.T) {
	f, _ := New(tp(0, 0, 5), 5)
	if _, _, err := f.Process(tp(1, 1, 5)); err == nil {
		t.Error("equal timestamp must error")
	}
	var zero Filter
	if _, _, err := zero.Process(tp(1, 1, 9)); err == nil {
		t.Error("unprimed filter must error")
	}
}

func TestStationaryNeverUpdates(t *testing.T) {
	f, _ := New(tp(100, 100, 0), 5)
	for i := 1; i <= 100; i++ {
		_, send, err := f.Process(tp(100, 100, trajectory.Time(i)))
		if err != nil {
			t.Fatal(err)
		}
		if send {
			t.Fatal("stationary object must never update")
		}
	}
	if f.Sent() != 1 {
		t.Errorf("sent = %d", f.Sent())
	}
}

func TestConstantVelocityOneResync(t *testing.T) {
	// The seed has zero velocity, so the first moves drift past eps once;
	// after the single re-anchor with the correct velocity no further
	// updates are needed.
	f, _ := New(tp(0, 0, 0), 5)
	updates := 0
	for i := 1; i <= 200; i++ {
		_, send, err := f.Process(tp(float64(i)*10, 0, trajectory.Time(i)))
		if err != nil {
			t.Fatal(err)
		}
		if send {
			updates++
		}
	}
	if updates != 1 {
		t.Errorf("constant velocity should need exactly 1 resync, got %d", updates)
	}
}

func TestTurnForcesUpdate(t *testing.T) {
	f, _ := New(tp(0, 0, 0), 5)
	f.Process(tp(10, 0, 1))
	f.Process(tp(20, 0, 2)) // resync with velocity (10,0)
	// Sharp turn.
	_, send, err := f.Process(tp(20, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !send {
		t.Error("a sharp turn must trigger an update")
	}
}

func TestPredictionTracksWithinEps(t *testing.T) {
	// Whenever no update is sent, the prediction is within eps by
	// construction; spot-check the invariant on a noisy walk.
	rng := rand.New(rand.NewSource(21))
	f, _ := New(tp(0, 0, 0), 8)
	x, y := 0.0, 0.0
	dx, dy := 6.0, 1.0
	for i := 1; i <= 500; i++ {
		if rng.Float64() < 0.05 {
			dx, dy = rng.Float64()*12-6, rng.Float64()*12-6
		}
		x += dx + rng.Float64() - 0.5
		y += dy + rng.Float64() - 0.5
		now := trajectory.Time(i)
		_, sent, err := f.Process(tp(x, y, now))
		if err != nil {
			t.Fatal(err)
		}
		if !sent {
			if d := f.Predicted(now).Dist(geom.Pt(x, y)); d > 8 {
				t.Fatalf("silent deviation %v > eps", d)
			}
		} else {
			if !f.Predicted(now).Eq(geom.Pt(x, y)) {
				t.Fatal("update must re-anchor the prediction")
			}
		}
	}
}

// Ablation: on road-like movement both filters suppress the vast majority
// of points; dead reckoning needs no coordinator round-trips but carries no
// path geometry. We assert both achieve >80% suppression on a piecewise
// straight walk and stay within a factor 4 of each other.
func TestSuppressionComparableToRayTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const eps = 10.0
	mkWalk := func() []trajectory.TimePoint {
		var pts []trajectory.TimePoint
		x, y := 0.0, 0.0
		dx, dy := 8.0, 0.0
		for i := 0; i < 2000; i++ {
			if rng.Float64() < 0.02 { // occasional turns
				dx, dy = rng.Float64()*16-8, rng.Float64()*16-8
			}
			x += dx + rng.Float64()*2 - 1
			y += dy + rng.Float64()*2 - 1
			pts = append(pts, tp(x, y, trajectory.Time(i)))
		}
		return pts
	}
	pts := mkWalk()

	dr, _ := New(pts[0], eps)
	for _, p := range pts[1:] {
		if _, _, err := dr.Process(p); err != nil {
			t.Fatal(err)
		}
	}
	rt := raytrace.New(pts[0], eps)
	rtSent := 0
	for _, p := range pts[1:] {
		st, report, err := rt.Process(p)
		if err != nil {
			t.Fatal(err)
		}
		for report {
			rtSent++
			st, report, err = rt.Respond(trajectory.TP(st.FSA.Centroid(), st.Te))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	n := len(pts) - 1
	drRate := float64(dr.Sent()-1) / float64(n)
	rtRate := float64(rtSent) / float64(n)
	if drRate > 0.2 || rtRate > 0.2 {
		t.Errorf("suppression too weak: DR %.3f, RayTrace %.3f", drRate, rtRate)
	}
	ratio := drRate / rtRate
	if ratio < 0.25 || ratio > 4 {
		t.Errorf("suppression rates diverge unreasonably: DR %.4f vs RT %.4f", drRate, rtRate)
	}
}

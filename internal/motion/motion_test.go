package motion

import (
	"math"
	"testing"

	"hotpaths/internal/geom"
)

func TestPathBasics(t *testing.T) {
	p := Path{ID: 7, S: geom.Pt(0, 0), E: geom.Pt(3, 4)}
	if p.Length() != 5 {
		t.Errorf("Length = %v", p.Length())
	}
	if p.Segment() != geom.Seg(geom.Pt(0, 0), geom.Pt(3, 4)) {
		t.Error("Segment mismatch")
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestHotPathScore(t *testing.T) {
	hp := HotPath{Path: Path{S: geom.Pt(0, 0), E: geom.Pt(10, 0)}, Hotness: 3}
	if hp.Score() != 30 {
		t.Errorf("Score = %v", hp.Score())
	}
}

func TestTopKScore(t *testing.T) {
	if TopKScore(nil) != 0 {
		t.Error("empty set score must be 0")
	}
	set := []HotPath{
		{Path: Path{S: geom.Pt(0, 0), E: geom.Pt(10, 0)}, Hotness: 2}, // 20
		{Path: Path{S: geom.Pt(0, 0), E: geom.Pt(0, 5)}, Hotness: 4},  // 20
		{Path: Path{S: geom.Pt(0, 0), E: geom.Pt(8, 6)}, Hotness: 1},  // 10
	}
	if got := TopKScore(set); math.Abs(got-50.0/3) > 1e-12 {
		t.Errorf("TopKScore = %v", got)
	}
}

func TestPathIDFor(t *testing.T) {
	a := PathIDFor(geom.Pt(1, 2), geom.Pt(3, 4))
	if b := PathIDFor(geom.Pt(1, 2), geom.Pt(3, 4)); b != a {
		t.Errorf("identical geometry hashed to %d and %d", a, b)
	}
	if r := PathIDFor(geom.Pt(3, 4), geom.Pt(1, 2)); r == a {
		t.Error("reversed direction must not share the id")
	}
	if o := PathIDFor(geom.Pt(1, 2), geom.Pt(3, 4.000001)); o == a {
		t.Error("distinct geometry must not share the id")
	}
	// -0 and +0 are the same coordinate under == (the equality the whole
	// pipeline uses), so they must carry the same identity.
	neg := math.Copysign(0, -1)
	if PathIDFor(geom.Pt(neg, 0), geom.Pt(10, neg)) != PathIDFor(geom.Pt(0, 0), geom.Pt(10, 0)) {
		t.Error("-0 and +0 coordinates must hash identically")
	}
	// Coordinate positions must matter: swapping x and y changes the path.
	if PathIDFor(geom.Pt(2, 1), geom.Pt(3, 4)) == a {
		t.Error("swapped coordinates must not share the id")
	}
	// Uniqueness smoke over a realistic grid of snapped vertices.
	seen := make(map[PathID]struct{})
	for x := 0; x < 50; x++ {
		for y := 0; y < 50; y++ {
			id := PathIDFor(geom.Pt(0, 0), geom.Pt(float64(x)*5, float64(y)*5))
			if _, dup := seen[id]; dup {
				t.Fatalf("collision at (%d,%d)", x, y)
			}
			seen[id] = struct{}{}
		}
	}
}

// Package analyzertest runs a framework.Analyzer over a fixture package
// under testdata/src/<name> and checks its findings against `// want`
// comments — the x/tools analysistest workflow, reimplemented on the
// standard library so the main module stays dependency-free.
//
// Fixture files annotate the lines they expect findings on:
//
//	if strings.Contains(err.Error(), "gone") { // want `use errors\.Is`
//
// Each backquoted (or double-quoted) string after `// want` is a regular
// expression that must match exactly one finding reported on that line;
// findings on lines without a matching want — and wants without a
// finding — fail the test. Fixtures may import real repo packages
// (hotpaths/internal/tracing, hotpaths/internal/metrics, ...): imports
// are resolved through `go list -export`, so the fixture sees the same
// type information the production analysis does. A fixture line
// suppressed by a //hotpathsvet:ignore directive must NOT carry a want —
// that is exactly how directive behaviour is tested.
package analyzertest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"hotpaths/internal/analysis/framework"
)

// Run analyzes testdata/src/<pkgname> (relative to the calling test's
// package directory) with the analyzer and asserts findings == wants.
func Run(t *testing.T, a *framework.Analyzer, pkgname string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", pkgname))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", dir, pkg.TypeErrors[0])
	}
	diags, err := framework.RunAnalyzers(pkg, []*framework.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants, err := parseWants(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no finding matched `// want %s`", w.file, w.line, w.re)
		}
	}
}

// want is one expected-finding annotation.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func parseWants(fset *token.FileSet, files []*ast.File) ([]want, error) {
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(text[len("want "):], -1)
				if len(ms) == 0 {
					return nil, fmt.Errorf("%s: `// want` without a backquoted pattern", pos)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern: %v", pos, err)
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out, nil
}

// ---- fixture loading -----------------------------------------------------

// load parses every .go file in dir and type-checks them as one package,
// resolving imports through `go list -export` run from the module.
func load(dir string) (*framework.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	exports, err := exportData(importSet)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	// The fixture's import path is its slash-separated directory: it
	// contains "/testdata/", which package-scoped analyzers treat as
	// in-scope.
	pkgPath := filepath.ToSlash(dir)
	pkg := &framework.Package{ImportPath: pkgPath, Dir: dir, Fset: fset, Files: files}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = framework.NewTypesInfo()
	pkg.Types, _ = conf.Check(pkgPath, fset, files, pkg.Info)
	return pkg, nil
}

var (
	exportMu    sync.Mutex
	exportCache = make(map[string]string) // import path -> export data file
)

// exportData resolves export-data files for the imports (and their
// transitive dependencies), caching results for the test binary's life.
func exportData(imports map[string]bool) (map[string]string, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for imp := range imports {
		if _, ok := exportCache[imp]; !ok {
			missing = append(missing, imp)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		args := append([]string{"list", "-e", "-export", "-json", "-deps"}, missing...)
		cmd := exec.Command("go", args...)
		cmd.Stderr = new(bytes.Buffer)
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, cmd.Stderr)
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var lp struct {
				ImportPath string
				Export     string
			}
			if err := dec.Decode(&lp); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if lp.Export != "" {
				exportCache[lp.ImportPath] = lp.Export
			}
		}
	}
	out := make(map[string]string, len(exportCache))
	for k, v := range exportCache {
		out[k] = v
	}
	return out, nil
}

package spanend_test

import (
	"testing"

	"hotpaths/internal/analysis/analyzertest"
	"hotpaths/internal/analysis/spanend"
)

func TestSpanend(t *testing.T) {
	analyzertest.Run(t, spanend.Analyzer, "a")
}

package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hotpaths"
	"hotpaths/internal/flightrec"
)

// lastEventSeq is the exactly-once baseline: every assertion below
// counts only events recorded after it, so the process-global ring
// shared with other tests never bleeds into the counts.
func lastEventSeq() uint64 {
	evs := flightrec.Default.Snapshot("", time.Time{}, 0)
	if len(evs) == 0 {
		return 0
	}
	return evs[len(evs)-1].Seq
}

// eventsVia fetches one event type through the real admin surface —
// GET /debug/events on adminHandler's mux, the endpoint operators use —
// and keeps only events newer than the baseline seq.
func eventsVia(t *testing.T, typ string, after uint64) []map[string]any {
	t.Helper()
	rec := do(t, adminHandler(), http.MethodGet, "/debug/events?type="+typ, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/events: %d %s", rec.Code, rec.Body.String())
	}
	all := decode[[]map[string]any](t, rec)
	var out []map[string]any
	for _, ev := range all {
		if seq, _ := ev["seq"].(float64); uint64(seq) > after {
			out = append(out, ev)
		}
	}
	return out
}

// TestPoisonedWALEventExactlyOnce: the healthy-to-poisoned flip is one
// flight-recorder event, no matter how many writes fail afterwards —
// and /healthz carries the stable wal_poisoned reason token.
func TestPoisonedWALEventExactlyOnce(t *testing.T) {
	base := lastEventSeq()
	dir := filepath.Join(t.TempDir(), "wal")
	dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
		Config:          serverTestConfig(),
		Concurrent:      true,
		Shards:          2,
		FsyncInterval:   -1,
		CheckpointEvery: -1,
		SegmentBytes:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dur.Close() })
	h := newServer(dur, serverOpts{dur: dur}).handler()

	obs := func(tick int64) int {
		return do(t, h, http.MethodPost, "/observe", observeRequest{
			Observations: []observationJSON{{Object: 1, X: float64(tick), Y: 0, T: tick}},
		}).Code
	}
	if code := obs(1); code != http.StatusOK {
		t.Fatalf("first observe: %d", code)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// The poisoning write, then several more on the already-poisoned log:
	// only the flip is an event.
	obs(2)
	for tick := int64(3); tick <= 6; tick++ {
		if code := obs(tick); code != http.StatusServiceUnavailable {
			t.Fatalf("write %d on a poisoned WAL: %d, want 503", tick, code)
		}
	}
	evs := eventsVia(t, flightrec.EvWALPoisoned, base)
	if len(evs) != 1 {
		t.Fatalf("wal_poisoned events = %d, want exactly 1: %v", len(evs), evs)
	}

	// The stable degraded-cause token, and a single daemon-level
	// health transition across repeated polls.
	transBase := lastEventSeq()
	for i := 0; i < 3; i++ {
		rec := do(t, h, http.MethodGet, "/healthz", nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("poisoned healthz poll %d: %d, want 503", i, rec.Code)
		}
		if body := decode[map[string]any](t, rec); body["reason"] != "wal_poisoned" {
			t.Fatalf("healthz reason = %v, want wal_poisoned", body["reason"])
		}
	}
	trans := eventsVia(t, flightrec.EvHealthTransition, transBase)
	if len(trans) != 1 {
		t.Fatalf("health_transition events over 3 polls = %d, want exactly 1: %v", len(trans), trans)
	}
	attrs, _ := trans[0]["attrs"].(map[string]any)
	if attrs["to"] != "degraded" || attrs["reason"] != "wal_poisoned" {
		t.Errorf("transition attrs = %v, want to=degraded reason=wal_poisoned", attrs)
	}
}

// TestFollowerReplicationEventsExactlyOnce: the connect and disconnect
// flips each record one event — heartbeats and failed reconnect
// attempts, which repeat constantly, record none.
func TestFollowerReplicationEventsExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
		Config:        serverTestConfig(),
		FsyncInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	srv := httptest.NewServer(newServer(dur, serverOpts{dur: dur}).handler())

	base := lastEventSeq()
	fol, err := hotpaths.OpenFollower(srv.URL, hotpaths.FollowerConfig{ReconnectMin: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	follower := newServer(fol, serverOpts{fol: fol}).handler()

	waitReplication(t, fol, func(rs hotpaths.ReplicationStats) bool { return rs.Connected })
	if evs := eventsVia(t, flightrec.EvReplConnect, base); len(evs) != 1 {
		t.Fatalf("replication_connect events after first connect = %d, want 1: %v", len(evs), evs)
	}

	// A forced reconnect drops and re-establishes the stream: exactly one
	// disconnect and one more connect.
	reconnects := fol.Replication().Reconnects
	if rec := do(t, follower, http.MethodPost, "/admin/reconnect", nil); rec.Code != http.StatusOK {
		t.Fatalf("/admin/reconnect: %d", rec.Code)
	}
	waitReplication(t, fol, func(rs hotpaths.ReplicationStats) bool {
		return rs.Connected && rs.Reconnects > reconnects
	})
	if evs := eventsVia(t, flightrec.EvReplDisconnect, base); len(evs) != 1 {
		t.Fatalf("replication_disconnect events after forced reconnect = %d, want 1: %v", len(evs), evs)
	}
	if evs := eventsVia(t, flightrec.EvReplConnect, base); len(evs) != 2 {
		t.Fatalf("replication_connect events after forced reconnect = %d, want 2: %v", len(evs), evs)
	}

	// Kill the primary: the stream drops once, then every reconnect
	// attempt fails — still exactly one more disconnect event.
	srv.CloseClientConnections()
	srv.Close()
	waitReplication(t, fol, func(rs hotpaths.ReplicationStats) bool { return !rs.Connected })
	// Give the retry loop time for several failed attempts (ReconnectMin
	// is 1ms); none of them may record an event.
	time.Sleep(50 * time.Millisecond)
	if evs := eventsVia(t, flightrec.EvReplDisconnect, base); len(evs) != 2 {
		t.Fatalf("replication_disconnect events after primary death = %d, want 2: %v", len(evs), evs)
	}

	// The stable degraded-cause token, and the per-component breakdown.
	rec := do(t, follower, http.MethodGet, "/healthz?verbose=1", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("disconnected follower healthz: %d, want 503", rec.Code)
	}
	body := decode[map[string]any](t, rec)
	if body["reason"] != "replication_disconnected" {
		t.Errorf("healthz reason = %v, want replication_disconnected", body["reason"])
	}
	comps, _ := body["components"].(map[string]any)
	repl, _ := comps["replication"].(map[string]any)
	if repl == nil || repl["status"] != "degraded" {
		t.Errorf("replication component = %v, want status degraded", comps["replication"])
	}
	if slo, _ := comps["slo"].(map[string]any); slo == nil || slo["status"] == nil {
		t.Errorf("slo component missing: %v", comps)
	}
}

func waitReplication(t *testing.T, fol *hotpaths.Follower, ok func(hotpaths.ReplicationStats) bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !ok(fol.Replication()) {
		if time.Now().After(deadline) {
			t.Fatalf("replication state never reached: %+v", fol.Replication())
		}
		time.Sleep(time.Millisecond)
	}
}

package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// TypeErrors holds type-checking problems. Analyses still run — the
	// AST and partial type info are usually good enough — but the driver
	// surfaces them so a broken build is never mistaken for a clean one.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath      string
	Dir             string
	Name            string
	Export          string
	Standard        bool
	DepOnly         bool
	ForTest         string
	GoFiles         []string
	CgoFiles        []string
	CompiledGoFiles []string
	ImportMap       map[string]string
	Error           *struct{ Err string }
}

// Load resolves patterns with the go command, then parses and
// type-checks every matched (non-dependency) package from source, using
// `go list -export`-produced export data for imports — the same scheme
// x/tools' go/packages uses, without the dependency. With includeTests,
// test files are analyzed too (the package's test variant replaces the
// plain package, so each file is analyzed once).
func Load(patterns []string, includeTests bool) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-json", "-deps"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = new(bytes.Buffer)
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, cmd.Stderr)
	}

	var all []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		all = append(all, lp)
	}

	// Export data for every resolved package, for the type-checker's
	// importer.
	exports := make(map[string]string)
	// Packages replaced by a test variant ("hotpaths [hotpaths.test]"
	// covers all of "hotpaths" plus its _test.go files).
	replaced := make(map[string]bool)
	for _, lp := range all {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.ForTest != "" && !lp.DepOnly && strings.Contains(lp.ImportPath, " [") {
			replaced[lp.ForTest] = true
		}
	}

	var pkgs []*Package
	for _, lp := range all {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if strings.HasSuffix(lp.ImportPath, ".test") {
			continue // generated test main package
		}
		if replaced[lp.ImportPath] {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := check(lp, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package against its
// dependencies' export data.
func check(lp *listedPackage, exports map[string]string) (*Package, error) {
	files := lp.CompiledGoFiles
	if len(files) == 0 {
		files = lp.GoFiles
	}
	fset := token.NewFileSet()
	var asts []*ast.File
	for _, name := range files {
		if !strings.HasSuffix(name, ".go") {
			continue
		}
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, path)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		asts = append(asts, f)
	}

	pkg := &Package{ImportPath: lp.ImportPath, Dir: lp.Dir, Fset: fset, Files: asts}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = NewTypesInfo()
	// Check returns an error on any issue; the Error hook already
	// collected them, so the partial package is still usable.
	pkg.Types, _ = conf.Check(lp.ImportPath, fset, asts, pkg.Info)
	return pkg, nil
}

// NewTypesInfo returns a types.Info with every map analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Fixture for the spanend analyzer: every started span reaches End()
// on all return paths.
package a

import (
	"context"

	"hotpaths/internal/tracing"
)

// Discarding the span loses the only handle that can End it.
func discarded(ctx context.Context) {
	_, _ = tracing.StartSpan(ctx, "work") // want `span discarded with _`
}

// Same, without even binding the results.
func dropped(ctx context.Context) {
	tracing.StartSpan(ctx, "work") // want `span-start result discarded`
}

// An early return that skips End truncates the trace on that path.
func earlyReturn(ctx context.Context, fail bool) {
	_, span := tracing.StartSpan(ctx, "work")
	if fail {
		return // want `return without ending span span`
	}
	span.End()
}

// No End on any path: reported at the start site.
func neverEnded(ctx context.Context) {
	_, span := tracing.StartSpan(ctx, "work") // want `span span is not ended before the function returns`
	span.SetAttr("k", "v")
}

// Allowed: the canonical shape.
func deferred(ctx context.Context) {
	_, span := tracing.StartSpan(ctx, "work")
	defer span.End()
	work(ctx)
}

// Allowed: an unsampled request has no span; the nil branch needs no End.
func nilChecked(ctx context.Context, tr *tracing.Tracer) {
	ctx, span := tr.StartRequest(ctx, "req", "")
	if span == nil {
		work(ctx)
		return
	}
	defer span.End()
	work(ctx)
}

// Allowed: both branches end the span explicitly.
func branches(ctx context.Context, fail bool) {
	_, span := tracing.StartSpan(ctx, "work")
	if fail {
		span.End()
		return
	}
	span.End()
}

// Allowed: capture by a closure hands the span off (the gateway's
// scatter path ends its span inside a done() closure).
func escapes(ctx context.Context) func() {
	_, span := tracing.StartSpan(ctx, "work")
	done := func() { span.End() }
	return done
}

// Allowed: a reasoned suppression directive waives the finding.
func suppressed(ctx context.Context) {
	//hotpathsvet:ignore spanend session span deliberately outlives this call; the monitor goroutine ends it at disconnect
	_, span := tracing.StartSpan(ctx, "session")
	span.SetAttr("k", "v")
}

func work(context.Context) {}

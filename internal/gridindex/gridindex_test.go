package gridindex

import (
	"math/rand"
	"sort"
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
)

func mustGrid(t *testing.T, bounds geom.Rect, cols, rows int) *Grid {
	t.Helper()
	g, err := New(bounds, cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	good := geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(100, 100)}
	if _, err := New(good, 0, 5); err == nil {
		t.Error("zero cols must error")
	}
	if _, err := New(good, 5, 0); err == nil {
		t.Error("zero rows must error")
	}
	if _, err := New(geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(0, 0)}, 2, 2); err == nil {
		t.Error("invalid bounds must error")
	}
	if _, err := New(geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(1, 5)}, 2, 2); err == nil {
		t.Error("zero-width bounds must error")
	}
}

func TestInsertQueryRemove(t *testing.T) {
	g := mustGrid(t, geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(100, 100)}, 10, 10)
	e1 := Entry{ID: 1, End: geom.Pt(5, 5), Start: geom.Pt(0, 0)}
	e2 := Entry{ID: 2, End: geom.Pt(55, 55), Start: geom.Pt(50, 50)}
	g.Insert(e1)
	g.Insert(e2)
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	got := g.QueryAll(geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)})
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("query = %v", got)
	}
	if !g.Remove(1, geom.Pt(5, 5)) {
		t.Error("Remove should succeed")
	}
	if g.Remove(1, geom.Pt(5, 5)) {
		t.Error("second Remove should fail")
	}
	if g.Remove(99, geom.Pt(55, 55)) {
		t.Error("unknown id Remove should fail")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d after removal", g.Len())
	}
}

func TestDuplicateInsertDoesNotDoubleCount(t *testing.T) {
	g := mustGrid(t, geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)}, 2, 2)
	e := Entry{ID: 1, End: geom.Pt(1, 1), Start: geom.Pt(0, 0)}
	g.Insert(e)
	g.Insert(e)
	if g.Len() != 1 {
		t.Errorf("Len = %d want 1", g.Len())
	}
}

func TestOutOfBoundsClamping(t *testing.T) {
	g := mustGrid(t, geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(100, 100)}, 4, 4)
	// Entries far outside bounds must still be stored and retrievable.
	e := Entry{ID: 9, End: geom.Pt(-50, 250), Start: geom.Pt(0, 0)}
	g.Insert(e)
	got := g.QueryAll(geom.Rect{Lo: geom.Pt(-100, 200), Hi: geom.Pt(0, 300)})
	if len(got) != 1 || got[0].ID != 9 {
		t.Errorf("clamped entry not found: %v", got)
	}
	if !g.Remove(9, geom.Pt(-50, 250)) {
		t.Error("clamped entry not removable")
	}
}

func TestQueryBoundaryInclusive(t *testing.T) {
	g := mustGrid(t, geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(100, 100)}, 10, 10)
	g.Insert(Entry{ID: 1, End: geom.Pt(10, 10), Start: geom.Pt(0, 0)})
	got := g.QueryAll(geom.Rect{Lo: geom.Pt(10, 10), Hi: geom.Pt(20, 20)})
	if len(got) != 1 {
		t.Error("inclusive lower boundary missed")
	}
	got = g.QueryAll(geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)})
	if len(got) != 1 {
		t.Error("inclusive upper boundary missed")
	}
}

func TestQueryEarlyStop(t *testing.T) {
	g := mustGrid(t, geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)}, 1, 1)
	for i := 0; i < 10; i++ {
		g.Insert(Entry{ID: motion.PathID(i), End: geom.Pt(5, 5), Start: geom.Pt(0, 0)})
	}
	n := 0
	g.Query(geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)}, func(Entry) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
	if g.QueryAll(geom.Rect{Lo: geom.Pt(6, 6), Hi: geom.Pt(5, 5)}) != nil {
		t.Error("empty query rect must return nothing")
	}
}

func TestForEach(t *testing.T) {
	g := mustGrid(t, geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)}, 3, 3)
	for i := 0; i < 5; i++ {
		g.Insert(Entry{ID: motion.PathID(i), End: geom.Pt(float64(i*2), float64(i*2)), Start: geom.Pt(0, 0)})
	}
	n := 0
	g.ForEach(func(Entry) bool { n++; return true })
	if n != 5 {
		t.Errorf("ForEach visited %d", n)
	}
	n = 0
	g.ForEach(func(Entry) bool { n++; return false })
	if n != 1 {
		t.Errorf("ForEach early stop visited %d", n)
	}
}

// Property: grid query results always equal the brute-force scan, across
// random insert/remove workloads and random query rectangles.
func TestQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bounds := geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(1000, 1000)}
	g := mustGrid(t, bounds, 16, 16)
	live := make(map[motion.PathID]Entry)
	var nextID motion.PathID

	randPoint := func() geom.Point {
		// 10% of points fall outside bounds to exercise clamping.
		span := 1000.0
		if rng.Float64() < 0.1 {
			return geom.Pt(rng.Float64()*span*2-500, rng.Float64()*span*2-500)
		}
		return geom.Pt(rng.Float64()*span, rng.Float64()*span)
	}

	for step := 0; step < 3000; step++ {
		switch {
		case len(live) == 0 || rng.Float64() < 0.6:
			e := Entry{ID: nextID, End: randPoint(), Start: randPoint()}
			nextID++
			g.Insert(e)
			live[e.ID] = e
		default:
			// Remove a random live entry.
			for id, e := range live {
				if !g.Remove(id, e.End) {
					t.Fatalf("failed to remove live entry %d", id)
				}
				delete(live, id)
				break
			}
		}
		if step%100 != 0 {
			continue
		}
		lo := randPoint()
		q := geom.Rect{Lo: lo, Hi: lo.Add(geom.Pt(rng.Float64()*300, rng.Float64()*300))}
		var want []motion.PathID
		for id, e := range live {
			if q.Contains(e.End) {
				want = append(want, id)
			}
		}
		var got []motion.PathID
		for _, e := range g.QueryAll(q) {
			got = append(got, e.ID)
		}
		sortIDs(want)
		sortIDs(got)
		if !equalIDs(want, got) {
			t.Fatalf("step %d: query %v mismatch: got %v want %v", step, q, got, want)
		}
		if g.Len() != len(live) {
			t.Fatalf("Len %d != live %d", g.Len(), len(live))
		}
	}
}

func sortIDs(ids []motion.PathID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func equalIDs(a, b []motion.PathID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package motion

import (
	"math"
	"testing"

	"hotpaths/internal/geom"
)

func TestPathBasics(t *testing.T) {
	p := Path{ID: 7, S: geom.Pt(0, 0), E: geom.Pt(3, 4)}
	if p.Length() != 5 {
		t.Errorf("Length = %v", p.Length())
	}
	if p.Segment() != geom.Seg(geom.Pt(0, 0), geom.Pt(3, 4)) {
		t.Error("Segment mismatch")
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestHotPathScore(t *testing.T) {
	hp := HotPath{Path: Path{S: geom.Pt(0, 0), E: geom.Pt(10, 0)}, Hotness: 3}
	if hp.Score() != 30 {
		t.Errorf("Score = %v", hp.Score())
	}
}

func TestTopKScore(t *testing.T) {
	if TopKScore(nil) != 0 {
		t.Error("empty set score must be 0")
	}
	set := []HotPath{
		{Path: Path{S: geom.Pt(0, 0), E: geom.Pt(10, 0)}, Hotness: 2}, // 20
		{Path: Path{S: geom.Pt(0, 0), E: geom.Pt(0, 5)}, Hotness: 4},  // 20
		{Path: Path{S: geom.Pt(0, 0), E: geom.Pt(8, 6)}, Hotness: 1},  // 10
	}
	if got := TopKScore(set); math.Abs(got-50.0/3) > 1e-12 {
		t.Errorf("TopKScore = %v", got)
	}
}

package trajectory

import (
	"math"
	"math/rand"
	"testing"

	"hotpaths/internal/geom"
)

func line(n int) *Trajectory {
	pts := make([]TimePoint, n)
	for i := range pts {
		pts[i] = TP(geom.Pt(float64(i)*10, 0), Time(i))
	}
	return MustNew(pts...)
}

func TestNewRejectsUnordered(t *testing.T) {
	_, err := New(TP(geom.Pt(0, 0), 5), TP(geom.Pt(1, 1), 5))
	if err == nil {
		t.Error("equal timestamps must be rejected")
	}
	_, err = New(TP(geom.Pt(0, 0), 5), TP(geom.Pt(1, 1), 3))
	if err == nil {
		t.Error("decreasing timestamps must be rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad input")
		}
	}()
	MustNew(TP(geom.Pt(0, 0), 2), TP(geom.Pt(0, 0), 1))
}

func TestAppend(t *testing.T) {
	tr := MustNew()
	if err := tr.Append(TP(geom.Pt(1, 1), 10)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(TP(geom.Pt(2, 2), 10)); err == nil {
		t.Error("Append must reject non-increasing timestamp")
	}
	if err := tr.Append(TP(geom.Pt(2, 2), 11)); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestAccessors(t *testing.T) {
	tr := line(5)
	if tr.Start().T != 0 || tr.End().T != 4 {
		t.Error("Start/End wrong")
	}
	t0, t1 := tr.Span()
	if t0 != 0 || t1 != 4 {
		t.Errorf("Span = %d,%d", t0, t1)
	}
	if tr.At(2).P != geom.Pt(20, 0) {
		t.Errorf("At(2) = %v", tr.At(2))
	}
	if len(tr.Points()) != 5 {
		t.Error("Points length")
	}
	empty := MustNew()
	if a, b := empty.Span(); a != 0 || b != 0 {
		t.Error("empty Span should be 0,0")
	}
}

func TestLocationAtInterpolation(t *testing.T) {
	tr := MustNew(
		TP(geom.Pt(0, 0), 0),
		TP(geom.Pt(10, 0), 2),
		TP(geom.Pt(10, 10), 4),
	)
	cases := []struct {
		t    Time
		want geom.Point
		ok   bool
	}{
		{0, geom.Pt(0, 0), true},
		{1, geom.Pt(5, 0), true},
		{2, geom.Pt(10, 0), true},
		{3, geom.Pt(10, 5), true},
		{4, geom.Pt(10, 10), true},
		{-1, geom.Point{}, false},
		{5, geom.Point{}, false},
	}
	for _, c := range cases {
		got, ok := tr.LocationAt(c.t)
		if ok != c.ok || (ok && !got.Eq(c.want)) {
			t.Errorf("LocationAt(%d) = %v,%v want %v,%v", c.t, got, ok, c.want, c.ok)
		}
	}
}

func TestSub(t *testing.T) {
	tr := line(10)
	got := tr.Sub(3, 6)
	if len(got) != 4 || got[0].T != 3 || got[3].T != 6 {
		t.Errorf("Sub(3,6) = %v", got)
	}
	if len(tr.Sub(100, 200)) != 0 {
		t.Error("out-of-range Sub should be empty")
	}
}

func TestPathLengthAndMBB(t *testing.T) {
	tr := MustNew(
		TP(geom.Pt(0, 0), 0),
		TP(geom.Pt(3, 4), 1),
		TP(geom.Pt(3, 10), 2),
	)
	if got := tr.PathLength(); math.Abs(got-11) > 1e-12 {
		t.Errorf("PathLength = %v", got)
	}
	if got := tr.MBB(); got != (geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(3, 10)}) {
		t.Errorf("MBB = %v", got)
	}
	if got := MustNew().MBB(); got != (geom.Rect{}) {
		t.Errorf("empty MBB = %v", got)
	}
}

func TestMotionPathBasics(t *testing.T) {
	mp := MotionPath{S: geom.Pt(0, 0), E: geom.Pt(30, 40), Ts: 0, Te: 10}
	if mp.Length() != 50 {
		t.Errorf("Length = %v", mp.Length())
	}
	if mp.Duration() != 10 {
		t.Errorf("Duration = %v", mp.Duration())
	}
	if !mp.LocationAt(5).Eq(geom.Pt(15, 20)) {
		t.Errorf("LocationAt(5) = %v", mp.LocationAt(5))
	}
	// Clamping outside the interval.
	if !mp.LocationAt(-5).Eq(mp.S) || !mp.LocationAt(99).Eq(mp.E) {
		t.Error("LocationAt should clamp")
	}
	zero := MotionPath{S: geom.Pt(1, 1), E: geom.Pt(2, 2), Ts: 3, Te: 3}
	if !zero.LocationAt(3).Eq(zero.S) {
		t.Error("zero-duration path should sit at S")
	}
}

func TestMotionPathFits(t *testing.T) {
	// Object moves straight along x at 10 m/ts.
	tr := line(11)
	exact := MotionPath{S: geom.Pt(0, 0), E: geom.Pt(100, 0), Ts: 0, Te: 10}
	if !exact.Fits(tr, 0.001, geom.LInf) {
		t.Error("exact path must fit")
	}
	// A path that lags: at time t it is at x=8t vs the object at x=10t,
	// so the deviation is 2t with maximum 20 at t=10.
	lag := MotionPath{S: geom.Pt(0, 0), E: geom.Pt(80, 0), Ts: 0, Te: 10}
	if lag.Fits(tr, 19, geom.LInf) {
		t.Error("lagging path must not fit with eps=19")
	}
	if !lag.Fits(tr, 20, geom.LInf) {
		t.Error("lagging path must fit with eps=20")
	}
	// A path whose interval leaves the trajectory span never fits.
	out := MotionPath{S: geom.Pt(0, 0), E: geom.Pt(100, 0), Ts: 5, Te: 15}
	if out.Fits(tr, 1e9, geom.LInf) {
		t.Error("interval outside trajectory must not fit")
	}
}

func TestCoveringSet(t *testing.T) {
	a := MotionPath{S: geom.Pt(0, 0), E: geom.Pt(10, 0), Ts: 0, Te: 5}
	b := MotionPath{S: geom.Pt(10, 0), E: geom.Pt(10, 10), Ts: 5, Te: 9}
	if !CoveringSet([]MotionPath{a, b}, 0, 9) {
		t.Error("chained paths should form a covering set")
	}
	if CoveringSet([]MotionPath{a, b}, 0, 10) {
		t.Error("wrong end time should fail")
	}
	gap := MotionPath{S: geom.Pt(11, 0), E: geom.Pt(10, 10), Ts: 5, Te: 9}
	if CoveringSet([]MotionPath{a, gap}, 0, 9) {
		t.Error("spatial gap should fail")
	}
	tgap := MotionPath{S: geom.Pt(10, 0), E: geom.Pt(10, 10), Ts: 6, Te: 9}
	if CoveringSet([]MotionPath{a, tgap}, 0, 9) {
		t.Error("temporal gap should fail")
	}
	if !CoveringSet(nil, 3, 3) {
		t.Error("empty set covers an empty range")
	}
	if CoveringSet(nil, 3, 4) {
		t.Error("empty set cannot cover a non-empty range")
	}
}

// Property: LocationAt at stored timestamps returns stored points exactly,
// and interpolated points lie inside the segment MBB.
func TestLocationAtProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		pts := make([]TimePoint, n)
		tcur := Time(rng.Intn(5))
		for i := range pts {
			pts[i] = TP(geom.Pt(rng.Float64()*1000, rng.Float64()*1000), tcur)
			tcur += Time(1 + rng.Intn(4))
		}
		tr := MustNew(pts...)
		for _, tp := range pts {
			got, ok := tr.LocationAt(tp.T)
			if !ok || !got.Eq(tp.P) {
				t.Fatalf("stored timepoint not returned exactly: %v vs %v", got, tp.P)
			}
		}
		// Interpolation containment.
		for i := 1; i < n; i++ {
			a, b := pts[i-1], pts[i]
			for tt := a.T; tt <= b.T; tt++ {
				got, ok := tr.LocationAt(tt)
				if !ok {
					t.Fatal("in-span timestamp rejected")
				}
				mbb := geom.RectFromPoints(a.P, b.P).Expand(1e-9)
				if !mbb.Contains(got) {
					t.Fatalf("interpolated point %v outside segment MBB %v", got, mbb)
				}
			}
		}
	}
}

package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode locks in the decoder's safety contract: arbitrary input
// must never panic, never over-read the buffer, and a reported success
// must re-encode to exactly the bytes it consumed.
func FuzzWALDecode(f *testing.F) {
	// Seed with valid frames and near-misses.
	seed := func(r Record) []byte {
		b, err := AppendRecord(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	obs := seed(Record{Kind: KindObserve, ObjectID: 7, T: 42, X: 1.5, Y: -2.5, SigmaX: 0.1, SigmaY: 0.2})
	tick := seed(Record{Kind: KindTick, T: 99})
	f.Add(obs)
	f.Add(tick)
	f.Add(append(append([]byte{}, obs...), tick...))
	f.Add(obs[:len(obs)-3])                           // torn tail
	f.Add([]byte{})                                   // empty
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length
	mut := append([]byte{}, obs...)
	mut[9] ^= 0x40 // payload corruption -> CRC mismatch
	f.Add(mut)

	f.Fuzz(func(t *testing.T, b []byte) {
		// Walk the buffer the way the segment scanner does.
		off := 0
		for off <= len(b) {
			r, n, err := DecodeRecord(b[off:])
			if err != nil {
				return // a torn/corrupt tail ends the scan — fine
			}
			if n <= 0 || off+n > len(b) {
				t.Fatalf("decoder consumed %d bytes from a %d-byte buffer", n, len(b)-off)
			}
			if r.Kind != KindObserve && r.Kind != KindTick {
				t.Fatalf("decoded impossible kind %d", r.Kind)
			}
			// Round-trip: re-encoding the decoded record must reproduce the
			// consumed frame bit for bit (NaN payloads survive via raw bits).
			re, err := AppendRecord(nil, r)
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if !bytes.Equal(re, b[off:off+n]) {
				t.Fatalf("re-encode differs from consumed frame")
			}
			off += n
		}
	})
}

package simulation

import (
	"testing"

	"hotpaths/internal/roadnet"
	"hotpaths/internal/trajectory"
)

// smallConfig returns a laptop-fast configuration over a small network.
func smallConfig(t *testing.T) Config {
	t.Helper()
	net, err := roadnet.Generate(roadnet.GenConfig{
		GridCols: 8, GridRows: 8, Size: 2000, Jitter: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Net:      net,
		N:        200,
		Eps:      10,
		Err:      1,
		Agility:  0.5,
		Step:     10,
		W:        100,
		Epoch:    10,
		Duration: 120,
		K:        10,
		Seed:     5,
	}
}

func TestRunRequiresNetwork(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil network must error")
	}
}

func TestApplyDefaults(t *testing.T) {
	var c Config
	c.ApplyDefaults()
	if c.N != 20000 || c.Eps != 10 || c.Err != 1 || c.Agility != 0.1 ||
		c.Step != 10 || c.W != 100 || c.Epoch != 10 || c.Duration != 250 || c.K != 10 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestRunProducesPaths(t *testing.T) {
	res, err := Run(smallConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerEpoch) != 12 {
		t.Errorf("epochs = %d want 12", len(res.PerEpoch))
	}
	if len(res.AllPaths) == 0 {
		t.Error("no motion paths discovered")
	}
	if len(res.TopK) == 0 || len(res.TopK) > 10 {
		t.Errorf("topk size = %d", len(res.TopK))
	}
	if res.AvgIndexSize <= 0 {
		t.Error("avg index size must be positive")
	}
	if res.Comm.UpMessages == 0 || res.Comm.DownMessages == 0 {
		t.Errorf("communication counters empty: %+v", res.Comm)
	}
	bounds := res.Config.Net.Bounds().Expand(res.Config.Eps * 4)
	if err := res.VerifyTopKWithin(bounds); err != nil {
		t.Error(err)
	}
	// Top-k must be sorted by hotness descending.
	for i := 1; i < len(res.TopK); i++ {
		if res.TopK[i].Hotness > res.TopK[i-1].Hotness {
			t.Error("topk not sorted")
		}
	}
}

func TestRayTraceSavesCommunication(t *testing.T) {
	res, err := Run(smallConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.UpMessages >= res.Comm.Measurements {
		t.Errorf("filtering sent %d messages for %d measurements; expected substantial suppression",
			res.Comm.UpMessages, res.Comm.Measurements)
	}
	if ratio := res.CompressionRatio(); ratio < 1.5 {
		t.Errorf("compression ratio = %v, expected > 1.5", ratio)
	}
}

func TestRunWithDPBaseline(t *testing.T) {
	cfg := smallConfig(t)
	cfg.RunDP = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DPAll) == 0 {
		t.Error("DP produced no segments")
	}
	if res.AvgDPIndexSize <= 0 {
		t.Error("DP avg index size must be positive")
	}
	last := res.PerEpoch[len(res.PerEpoch)-1]
	if last.DPIndexSize == 0 {
		t.Error("DP per-epoch stats missing")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := smallConfig(t)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Comm != b.Comm {
		t.Errorf("comm differs: %+v vs %+v", a.Comm, b.Comm)
	}
	if len(a.AllPaths) != len(b.AllPaths) {
		t.Errorf("path counts differ: %d vs %d", len(a.AllPaths), len(b.AllPaths))
	}
	for i := range a.PerEpoch {
		if a.PerEpoch[i].IndexSize != b.PerEpoch[i].IndexSize ||
			a.PerEpoch[i].TopKScore != b.PerEpoch[i].TopKScore {
			t.Fatalf("epoch %d differs", i)
		}
	}
}

func TestWindowBoundsIndexSize(t *testing.T) {
	// With a short window, old paths must expire: index size late in the
	// run should not keep growing linearly with time.
	cfg := smallConfig(t)
	cfg.Duration = 200
	cfg.W = 40
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid := res.PerEpoch[len(res.PerEpoch)/2].IndexSize
	last := res.PerEpoch[len(res.PerEpoch)-1].IndexSize
	if mid == 0 {
		t.Skip("no paths at mid-run")
	}
	if float64(last) > 3*float64(mid) {
		t.Errorf("index size grows unboundedly: mid=%d last=%d", mid, last)
	}
}

func TestLargerToleranceFewerReports(t *testing.T) {
	small := smallConfig(t)
	small.Eps = 2
	large := smallConfig(t)
	large.Eps = 25
	rs, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(large)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Comm.UpMessages >= rs.Comm.UpMessages {
		t.Errorf("eps=25 sent %d messages vs eps=2's %d; larger tolerance must suppress more",
			rl.Comm.UpMessages, rs.Comm.UpMessages)
	}
}

func TestHotnessConservation(t *testing.T) {
	// Total hotness in the window equals crossings minus expiries.
	res, err := Run(smallConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, hp := range res.AllPaths {
		total += hp.Hotness
	}
	if total <= 0 {
		t.Fatal("no live hotness at end of run")
	}
	if total > res.CoordStats.Crossings {
		t.Errorf("live hotness %d exceeds total crossings %d", total, res.CoordStats.Crossings)
	}
}

func TestEpochCadence(t *testing.T) {
	cfg := smallConfig(t)
	cfg.Duration = 95 // not a multiple of the epoch
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerEpoch) != 9 {
		t.Errorf("epochs = %d want 9 (t=10..90)", len(res.PerEpoch))
	}
	for i, e := range res.PerEpoch {
		if e.Now != trajectory.Time((i+1)*10) {
			t.Errorf("epoch %d at t=%d", i, e.Now)
		}
	}
}

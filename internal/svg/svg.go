// Package svg renders road networks and discovered motion paths as SVG
// documents, reproducing the qualitative figures of the paper (Figure 6:
// the network; Figure 9: all discovered paths; Figure 10: the top-20
// hottest paths in the city centre). Hotter paths are drawn thicker, as in
// the paper.
package svg

import (
	"fmt"
	"sort"
	"strings"

	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
	"hotpaths/internal/roadnet"
)

// Options controls rendering.
type Options struct {
	WidthPx    int       // output width in pixels (height follows aspect), default 800
	Crop       geom.Rect // if valid and non-zero, restrict drawing to this region
	Background string    // CSS colour, default "white"
}

func (o *Options) applyDefaults() {
	if o.WidthPx == 0 {
		o.WidthPx = 800
	}
	if o.Background == "" {
		o.Background = "white"
	}
}

// canvas maps world coordinates into pixel space with y flipped (SVG's y
// grows downward).
type canvas struct {
	world geom.Rect
	scale float64
	hPx   float64
}

func newCanvas(world geom.Rect, widthPx int) canvas {
	w := world.Width()
	if w == 0 {
		w = 1
	}
	scale := float64(widthPx) / w
	return canvas{world: world, scale: scale, hPx: world.Height() * scale}
}

func (c canvas) pt(p geom.Point) (x, y float64) {
	return (p.X - c.world.Lo.X) * c.scale, c.hPx - (p.Y-c.world.Lo.Y)*c.scale
}

// RenderNetwork draws the road network, colour-coded by class (Figure 6).
func RenderNetwork(net *roadnet.Network, opts Options) string {
	opts.applyDefaults()
	world := pickWorld(opts, net.Bounds())
	c := newCanvas(world, opts.WidthPx)
	var b strings.Builder
	header(&b, opts, c)
	for _, l := range net.Links {
		a, bb := net.Nodes[l.From].P, net.Nodes[l.To].P
		if !world.Intersects(geom.RectFromPoints(a, bb)) {
			continue
		}
		x1, y1 := c.pt(a)
		x2, y2 := c.pt(bb)
		colour, width := classStyle(l.Class)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
			x1, y1, x2, y2, colour, width)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func classStyle(cl roadnet.Class) (colour string, width float64) {
	switch cl {
	case roadnet.Motorway:
		return "#c0392b", 2.5
	case roadnet.Highway:
		return "#e67e22", 2.0
	case roadnet.Primary:
		return "#7f8c8d", 1.2
	default:
		return "#bdc3c7", 0.6
	}
}

// RenderHotPaths draws motion paths with stroke width scaled by hotness
// (Figures 9 and 10). bounds gives the world extent when Crop is unset.
func RenderHotPaths(paths []motion.HotPath, bounds geom.Rect, opts Options) string {
	opts.applyDefaults()
	world := pickWorld(opts, bounds)
	c := newCanvas(world, opts.WidthPx)
	maxHot := 1
	for _, hp := range paths {
		if hp.Hotness > maxHot {
			maxHot = hp.Hotness
		}
	}
	// Draw coldest first so hot paths stay visible.
	sorted := append([]motion.HotPath(nil), paths...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Hotness < sorted[j].Hotness })

	var b strings.Builder
	header(&b, opts, c)
	for _, hp := range sorted {
		seg := hp.Path.Segment()
		if !world.Intersects(seg.MBB()) {
			continue
		}
		x1, y1 := c.pt(seg.A)
		x2, y2 := c.pt(seg.B)
		frac := float64(hp.Hotness) / float64(maxHot)
		width := 0.8 + 4.2*frac
		// Shade from light blue (cold) to dark red (hot).
		r := int(40 + 180*frac)
		g := int(60 * (1 - frac))
		bl := int(200 * (1 - frac))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="rgb(%d,%d,%d)" stroke-width="%.1f" stroke-linecap="round"/>`+"\n",
			x1, y1, x2, y2, r, g, bl, width)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func pickWorld(opts Options, fallback geom.Rect) geom.Rect {
	if opts.Crop.Valid() && opts.Crop.Area() > 0 {
		return opts.Crop
	}
	if fallback.Area() == 0 {
		return geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(1, 1)}
	}
	return fallback
}

func header(b *strings.Builder, opts Options, c canvas) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%.0f" viewBox="0 0 %d %.0f">`+"\n",
		opts.WidthPx, c.hPx, opts.WidthPx, c.hPx)
	fmt.Fprintf(b, `<rect width="100%%" height="100%%" fill="%s"/>`+"\n", opts.Background)
}

package wal

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// drain reads everything currently decodable from the tailer.
func drain(t *testing.T, tl *Tailer) []Record {
	t.Helper()
	var out []Record
	for {
		frames, first, n, err := tl.ReadBatch(0)
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		if n == 0 {
			return out
		}
		got, lsn := decodeFrames(t, frames), first
		if lsn+uint64(len(got)) != tl.Pos() {
			t.Fatalf("frame count %d from LSN %d does not reach Pos %d", len(got), lsn, tl.Pos())
		}
		out = append(out, got...)
	}
}

func decodeFrames(t *testing.T, frames []byte) []Record {
	t.Helper()
	var out []Record
	for off := 0; off < len(frames); {
		r, consumed, err := DecodeRecord(frames[off:])
		if err != nil {
			t.Fatalf("decode frame at %d: %v", off, err)
		}
		out = append(out, r)
		off += consumed
	}
	return out
}

// TestFollowTailsLiveLog proves the tailer sees every record the writer
// appends, in order, across the flush boundary: records buffered but not
// yet flushed are invisible, then appear after Sync.
func TestFollowTailsLiveLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	recs := testRecords(100)
	for _, r := range recs[:60] {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	tl := Follow(dir, 0)
	defer tl.Close()
	if got := drain(t, tl); len(got) != 0 {
		t.Fatalf("read %d records before any flush", len(got))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := drain(t, tl)
	if len(got) != 60 {
		t.Fatalf("read %d records after flush, want 60", len(got))
	}
	for _, r := range recs[60:] {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got = append(got, drain(t, tl)...)
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r != recs[i] {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, r, recs[i])
		}
	}
}

// TestFollowAcrossRotation tails a log whose tiny segments rotate many
// times, attaching mid-stream.
func TestFollowAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs := testRecords(200)
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("expected several segments, got %d", st.Segments)
	}
	const from = 37
	tl := Follow(dir, from)
	defer tl.Close()
	got := drain(t, tl)
	if len(got) != len(recs)-from {
		t.Fatalf("read %d records from LSN %d, want %d", len(got), from, len(recs)-from)
	}
	for i, r := range got {
		if r != recs[from+i] {
			t.Fatalf("record %d mismatch", from+i)
		}
	}
}

// TestFollowTruncated proves a tailer positioned below the oldest
// surviving segment reports TruncatedError with the resume point.
func TestFollowTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, r := range testRecords(200) {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(150); err != nil {
		t.Fatal(err)
	}
	tl := Follow(dir, 0)
	_, _, _, err = tl.ReadBatch(0)
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("ReadBatch after truncation: got %v, want TruncatedError", err)
	}
	if te.Oldest == 0 || te.Oldest > 150 {
		t.Fatalf("TruncatedError.Oldest = %d, want in (0, 150]", te.Oldest)
	}
	// Resuming from the reported oldest LSN works.
	tl2 := Follow(dir, te.Oldest)
	defer tl2.Close()
	got := drain(t, tl2)
	if want := 200 - int(te.Oldest); len(got) != want {
		t.Fatalf("resumed read got %d records, want %d", len(got), want)
	}
}

// TestFollowHeartbeatNeverInLog pins the satellite contract that
// KindHeartbeat is a stream-only frame: the codec round-trips it (the
// replication stream needs that) but it never appears in segment files,
// because nothing journals it.
func TestFollowHeartbeatNeverInLog(t *testing.T) {
	hb := Record{Kind: KindHeartbeat, NextLSN: 42, Epoch: 7, T: 99}
	frame, err := AppendRecord(nil, hb)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeRecord(frame)
	if err != nil || n != len(frame) {
		t.Fatalf("heartbeat decode: %v (consumed %d of %d)", err, n, len(frame))
	}
	if got != hb {
		t.Fatalf("heartbeat round-trip: got %+v want %+v", got, hb)
	}
}

// TestFollowConcurrentWithAppendAndTruncate is the satellite race test:
// a writer appends (with the group-commit loop running) while another
// goroutine checkpoints/truncates and a tailer follows the live tail.
// The tailer must see a gapless prefix of the true record stream — no
// torn reads, no duplicates, no reordering — or a clean TruncatedError,
// and the log's Stats must stay consistent throughout.
func TestFollowConcurrentWithAppendAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1 << 10, FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const total = 5000
	recs := testRecords(total)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: appends everything, some singly, some batched.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			if i%7 == 0 && i+5 <= total {
				if _, err := l.AppendBatch(recs[i : i+5]); err != nil {
					t.Errorf("append batch at %d: %v", i, err)
					return
				}
				i += 5
				continue
			}
			if _, err := l.Append(recs[i]); err != nil {
				t.Errorf("append at %d: %v", i, err)
				return
			}
			i++
		}
	}()

	// Truncator: repeatedly drops segments behind the append position,
	// exactly what a checkpoint does, racing the writer and the tailer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			next := l.NextLSN()
			if next > 100 {
				if err := l.TruncateBefore(next - 100); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("truncate: %v", err)
					return
				}
			}
			_ = l.Stats() // Stats must never wedge or race
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Tailer: follows from 0; on truncation it restarts from the reported
	// oldest LSN, so it reads a suffix-complete record stream.
	var got []Record
	var gotFrom uint64
	tl := Follow(dir, 0)
	deadline := time.Now().Add(30 * time.Second)
	for uint64(len(got))+gotFrom < total {
		if time.Now().After(deadline) {
			t.Fatalf("tailer stalled at %d/%d records", len(got), total)
		}
		frames, first, n, err := tl.ReadBatch(0)
		var te *TruncatedError
		if errors.As(err, &te) {
			tl.Close()
			tl = Follow(dir, te.Oldest)
			got, gotFrom = nil, te.Oldest
			continue
		}
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		if n == 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		if want := gotFrom + uint64(len(got)); first != want {
			t.Fatalf("gap: batch starts at LSN %d, want %d", first, want)
		}
		got = append(got, decodeFrames(t, frames)...)
	}
	tl.Close()
	close(stop)
	wg.Wait()

	for i, r := range got {
		if want := recs[gotFrom+uint64(i)]; r != want {
			t.Fatalf("record at LSN %d mismatch: got %+v want %+v", gotFrom+uint64(i), r, want)
		}
	}
	st := l.Stats()
	if st.Records != total || st.NextLSN != total {
		t.Fatalf("stats after race: Records=%d NextLSN=%d, want %d", st.Records, st.NextLSN, total)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestResetToRacingAppendAndFollow is the other satellite race: ResetTo
// fast-forwards (deleting every segment) while a tailer follows. The
// tailer must come back with TruncatedError and be able to resume at the
// reset position; appends after the reset land at the new LSNs.
func TestResetToRacingAppendAndFollow(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, r := range testRecords(50) {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	tl := Follow(dir, 0)
	defer tl.Close()
	if got := drain(t, tl); len(got) != 50 {
		t.Fatalf("pre-reset read %d records, want 50", len(got))
	}

	// Reset concurrently with a reader mid-follow and the commit loop live.
	const resetTo = 1000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := l.ResetTo(resetTo); err != nil {
			t.Errorf("ResetTo: %v", err)
		}
	}()
	wg.Wait()

	post := testRecords(10)
	for _, r := range post {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if next := l.NextLSN(); next != resetTo+10 {
		t.Fatalf("NextLSN after reset = %d, want %d", next, resetTo+10)
	}

	// The old tailer position is gone; it must say so, then resume cleanly.
	var te *TruncatedError
	for i := 0; ; i++ {
		_, _, n, err := tl.ReadBatch(0)
		if errors.As(err, &te) {
			break
		}
		if err != nil {
			t.Fatalf("ReadBatch after reset: %v", err)
		}
		if n != 0 || i > 3 {
			t.Fatalf("tailer read %d records past a reset (iteration %d)", n, i)
		}
	}
	if te.Oldest != resetTo {
		t.Fatalf("TruncatedError.Oldest = %d, want %d", te.Oldest, resetTo)
	}
	tl2 := Follow(dir, resetTo)
	defer tl2.Close()
	got := drain(t, tl2)
	if len(got) != len(post) {
		t.Fatalf("post-reset read %d records, want %d", len(got), len(post))
	}
	for i, r := range got {
		if r != post[i] {
			t.Fatalf("post-reset record %d mismatch", i)
		}
	}
}

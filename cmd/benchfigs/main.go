// Command benchfigs regenerates every table and figure of the paper's
// evaluation (Section 6) and prints the corresponding rows/series.
//
// Usage:
//
//	benchfigs -fig 7            # Figure 7: sweep N (index size, score, time)
//	benchfigs -fig 8            # Figure 8: sweep eps
//	benchfigs -fig 9 -out dir   # Figure 9: all discovered paths (SVG)
//	benchfigs -fig 10 -out dir  # Figure 10: top-20 in the city centre (SVG)
//	benchfigs -fig comm         # communication ablation (naive vs RayTrace)
//	benchfigs -table 2          # Table 2: parameters
//	benchfigs -all -out dir     # everything
//
// -quick shrinks the workload (fewer objects, smaller network) so a full
// pass finishes in well under a minute; drop it to run the paper-scale
// parameters.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hotpaths/internal/experiment"
	"hotpaths/internal/simulation"
)

func main() {
	var (
		fig   = flag.String("fig", "", "figure to regenerate: 7, 8, 9, 10, comm")
		table = flag.String("table", "", "table to regenerate: 2")
		all   = flag.Bool("all", false, "regenerate everything")
		out   = flag.String("out", ".", "output directory for SVG figures")
		seed  = flag.Int64("seed", 1, "random seed")
		quick = flag.Bool("quick", false, "scaled-down workload for fast runs")
	)
	flag.Parse()

	base, err := baseConfig(*quick, *seed)
	if err != nil {
		fatal(err)
	}

	if *all || *table == "2" {
		fmt.Println("== Table 2: experimental parameters ==")
		if err := experiment.Table2(os.Stdout, base); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *all || *fig == "7" {
		ns := []int{10000, 20000, 50000, 100000}
		if *quick {
			ns = []int{500, 1000, 2500, 5000}
		}
		fmt.Println("== Figure 7: varying the number of objects (eps fixed) ==")
		rows, err := experiment.SweepN(base, ns)
		if err != nil {
			fatal(err)
		}
		if err := experiment.WriteRows(os.Stdout, "N", rows); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *all || *fig == "8" {
		fmt.Println("== Figure 8: varying the tolerance (N fixed) ==")
		rows, err := experiment.SweepEps(base, []float64{1, 2, 10, 20})
		if err != nil {
			fatal(err)
		}
		if err := experiment.WriteRows(os.Stdout, "eps", rows); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *all || *fig == "9" {
		fmt.Println("== Figure 9: discovered network (SVG) ==")
		paths, network, err := experiment.Figure9(base)
		if err != nil {
			fatal(err)
		}
		if err := write(*out, "figure9_paths.svg", paths); err != nil {
			fatal(err)
		}
		if err := write(*out, "figure6_network.svg", network); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *all || *fig == "10" {
		fmt.Println("== Figure 10: top-20 hottest paths, city centre (SVG) ==")
		svg, err := experiment.Figure10(base, 20)
		if err != nil {
			fatal(err)
		}
		if err := write(*out, "figure10_top20.svg", svg); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *all || *fig == "comm" {
		fmt.Println("== Communication ablation: RayTrace vs naive streaming ==")
		rows, err := experiment.CommAblation(base, []float64{1, 2, 10, 20})
		if err != nil {
			fatal(err)
		}
		if err := experiment.WriteCommRows(os.Stdout, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if !*all && *fig == "" && *table == "" {
		flag.Usage()
		os.Exit(2)
	}
}

func baseConfig(quick bool, seed int64) (simulation.Config, error) {
	if quick {
		return experiment.QuickBase(seed)
	}
	return experiment.Base(seed)
}

func write(dir, name, content string) error {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfigs:", err)
	os.Exit(1)
}

package hotpaths

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hotpaths/internal/engine"
	"hotpaths/internal/flightrec"
	"hotpaths/internal/tracing"
	"hotpaths/internal/wal"
)

// DurableConfig parameterises OpenDurable: the common Config plus the
// journal and checkpoint knobs.
type DurableConfig struct {
	Config

	// Concurrent selects the backing deployment: false wraps the
	// single-goroutine System, true wraps the sharded Engine. Either way
	// the Durable write path is serialised by its own mutex (journaling
	// fixes a total observation order — the order recovery replays), so
	// Concurrent mainly buys concurrent reads and the Engine's batched
	// filter tier.
	Concurrent bool

	// Shards, Buffer are the Engine's concurrency knobs (Concurrent only).
	Shards, Buffer int

	// SegmentBytes rotates WAL segments at this size (default 64 MiB).
	SegmentBytes int64

	// FsyncInterval is the group-commit cadence (default 25ms): appends
	// are acknowledged immediately and made durable together every
	// interval, so a crash can lose at most the last interval's records.
	// Negative disables timed fsync entirely; durability then happens at
	// rotation, checkpoint, Sync and Close only (useful for tests and
	// bulk loads).
	FsyncInterval time.Duration

	// CheckpointEvery is the auto-checkpoint cadence in timestamps:
	// at epoch boundaries, once the clock has advanced this far since the
	// last checkpoint, the full state is checkpointed and older WAL
	// segments are truncated. The default is W — recovery then replays at
	// most about one window of records. Negative disables automatic
	// checkpoints (Checkpoint can still be called explicitly).
	CheckpointEvery int64

	// KeepCheckpoints is how many checkpoint files to retain (default 2:
	// the newest plus one fallback in case the newest is unreadable).
	KeepCheckpoints int
}

func (cfg DurableConfig) withDefaults() (DurableConfig, error) {
	c, err := cfg.Config.withDefaults()
	if err != nil {
		return cfg, err
	}
	cfg.Config = c
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = 64 << 20
	}
	if cfg.FsyncInterval == 0 {
		cfg.FsyncInterval = 25 * time.Millisecond
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = cfg.W
	}
	if cfg.KeepCheckpoints <= 0 {
		cfg.KeepCheckpoints = 2
	}
	return cfg, nil
}

// WALStats reports the durability layer's counters.
type WALStats struct {
	Records             uint64 // records appended this process
	NextLSN             uint64 // total records in the stream (next record's index)
	Segments            int    // live segment files on disk
	Bytes               int64  // bytes across live segments
	Syncs               uint64 // fsync batches issued
	Truncated           int64  // torn-tail bytes discarded when the log was opened
	Checkpoints         uint64 // checkpoints written this process
	LastCheckpointLSN   uint64
	LastCheckpointClock int64
	Replayed            uint64 // WAL records replayed while opening
}

// Durable wraps a System or Engine with a write-ahead log: every Observe
// and Tick is journaled before it is applied, so the exact state can be
// reconstructed after a crash by OpenDurable (which recovers
// automatically) or Recover. Because both deployments are
// observation-order-deterministic, replaying the journal reproduces the
// pre-crash state bit for bit; periodic checkpoints bound the replay to
// roughly one window.
//
// Durable implements Source. All write methods are serialised by an
// internal mutex — the journal fixes the total observation order that
// recovery replays — and are safe to call from many goroutines. Snapshot
// is safe concurrently with writes.
//
// Durability is group-committed: an acknowledged write is on disk no
// later than FsyncInterval after it returned. Call Sync for a hard
// barrier.
//
// Because replay is deterministic, the journal doubles as a replication
// log: hotpathsd ships it to read-only followers over HTTP, and
// OpenFollower replays it into a live replica whose query results are
// byte-identical to this deployment's at every shared epoch boundary.
type Durable struct {
	cfg DurableConfig
	dir string

	mu     sync.Mutex
	sys    *System // exactly one of sys/eng is non-nil
	eng    *Engine
	log    *wal.Log
	clock  int64
	closed bool

	lastCkptClock int64
	lastCkptLSN   uint64
	ckptCount     uint64
	replayed      uint64
}

// metaFile records the Config a log directory was created under, so later
// opens (and Recover, which takes no config) replay under identical
// parameters. A mismatched Config would silently break determinism.
const metaFile = "meta.json"

// writeMeta writes meta.json with the fsync-before-rename discipline the
// checkpoint writer uses: this one file gates opening the directory at
// all, so a power loss must never leave a renamed-but-empty meta behind.
func writeMeta(dir string, cfg Config) error {
	b, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, metaFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, metaFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func readMeta(dir string) (Config, bool, error) {
	b, err := os.ReadFile(filepath.Join(dir, metaFile))
	if errors.Is(err, fs.ErrNotExist) {
		return Config{}, false, nil
	}
	if err != nil {
		return Config{}, false, err
	}
	var cfg Config
	if err := json.Unmarshal(b, &cfg); err != nil {
		return Config{}, false, fmt.Errorf("hotpaths: corrupt %s: %w", metaFile, err)
	}
	return cfg, true, nil
}

// OpenDurable opens (creating if needed) a durable deployment rooted at
// dir. When the directory already holds a journal, the previous state is
// recovered first — latest checkpoint plus WAL tail — and journaling
// continues where it left off, so a daemon restart or crash loses at most
// the records of the last un-synced group commit.
func OpenDurable(dir string, cfg DurableConfig) (*Durable, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if prev, ok, err := readMeta(dir); err != nil {
		return nil, err
	} else if ok {
		if prev != cfg.Config {
			return nil, fmt.Errorf("hotpaths: %s was journaled under config %+v; reopening with %+v would break replay determinism", dir, prev, cfg.Config)
		}
	} else if err := writeMeta(dir, cfg.Config); err != nil {
		return nil, err
	}

	// Open the log first: it truncates any torn tail, so the replay below
	// sees exactly the record stream that will be appended to.
	log, err := wal.Open(dir, wal.Options{
		SegmentBytes:  cfg.SegmentBytes,
		FsyncInterval: cfg.FsyncInterval,
	})
	if err != nil {
		return nil, err
	}

	d := &Durable{cfg: cfg, dir: dir, log: log}
	if err := d.buildSource(); err != nil {
		log.Close()
		return nil, err
	}
	ckptLSN, replayed, err := recoverInto(dir, cfg.Config, d.source())
	if err != nil {
		d.closeSource()
		log.Close()
		return nil, err
	}
	d.clock = d.snapshotClock()
	d.lastCkptClock = d.clock
	d.lastCkptLSN = ckptLSN
	d.replayed = replayed
	if log.NextLSN() < ckptLSN {
		// The checkpoint is newer than the log's decodable end (segments
		// removed out-of-band): appending below its LSN would write
		// records recovery skips.
		if err := log.ResetTo(ckptLSN); err != nil {
			d.closeSource()
			log.Close()
			return nil, err
		}
	}
	if replayed > 0 && cfg.CheckpointEvery >= 0 {
		// Re-checkpoint after a non-trivial replay so the next recovery
		// starts from here instead of paying the same replay again.
		if err := d.checkpointLocked(context.Background()); err != nil {
			d.closeSource()
			log.Close()
			return nil, err
		}
	}
	return d, nil
}

// Recover rebuilds the state journaled in dir — latest checkpoint plus
// WAL tail — into a fresh single-goroutine System and returns it, without
// opening the directory for writing. It is the read-only half of the
// durability contract: the returned Source is bit-identical to the
// Durable that wrote the journal at its last applied record. The
// directory's meta file supplies the Config.
func Recover(dir string) (Source, error) {
	cfg, ok, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("hotpaths: %s has no %s; not a durable log directory", dir, metaFile)
	}
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if _, _, err := recoverInto(dir, cfg, sys); err != nil {
		return nil, err
	}
	return sys, nil
}

// restorer is the state-restoration surface shared by System and Engine.
type restorer interface {
	Source
	restoreCheckpoint(st engine.State) error
}

func (s *System) restoreCheckpoint(st engine.State) error { return s.restoreState(st) }

func (e *Engine) restoreCheckpoint(st engine.State) error { return e.eng.RestoreState(st) }

// recoverInto loads the newest decodable checkpoint into src and replays
// the WAL tail after it. Apply errors during replay are ignored: the
// original run saw the identical error from the identical call and
// carried on, so ignoring it reproduces the original state.
func recoverInto(dir string, cfg Config, src restorer) (ckptLSN uint64, replayed uint64, err error) {
	lsns, err := wal.Checkpoints(dir)
	if err != nil {
		return 0, 0, err
	}
	for i := len(lsns) - 1; i >= 0; i-- {
		payload, rerr := wal.ReadCheckpoint(dir, lsns[i])
		if rerr != nil {
			continue
		}
		st, derr := decodeCheckpoint(payload, cfg)
		if derr != nil {
			continue // corrupt or mismatched checkpoint: fall back to an older one
		}
		if err := src.restoreCheckpoint(st); err != nil {
			return 0, 0, err
		}
		ckptLSN = lsns[i]
		break
	}
	err = wal.ReadFrom(dir, ckptLSN, func(lsn uint64, r wal.Record) error {
		replayed++
		applyRecord(src, r)
		return nil
	})
	if err != nil {
		return ckptLSN, replayed, err
	}
	return ckptLSN, replayed, nil
}

// applyRecord replays one journaled call, discarding the error exactly as
// the journaling path did after writing the record.
func applyRecord(src Source, r wal.Record) {
	switch r.Kind {
	case wal.KindObserve:
		if r.SigmaX != 0 || r.SigmaY != 0 {
			type noisy interface {
				ObserveNoisy(objectID int, x, y, sigmaX, sigmaY float64, t int64) error
			}
			_ = src.(noisy).ObserveNoisy(int(r.ObjectID), r.X, r.Y, r.SigmaX, r.SigmaY, r.T)
			return
		}
		_ = src.Observe(int(r.ObjectID), r.X, r.Y, r.T)
	case wal.KindTick:
		_ = src.Tick(r.T)
	}
}

func (d *Durable) buildSource() error {
	if d.cfg.Concurrent {
		eng, err := NewEngine(EngineConfig{Config: d.cfg.Config, Shards: d.cfg.Shards, Buffer: d.cfg.Buffer})
		if err != nil {
			return err
		}
		d.eng = eng
		return nil
	}
	sys, err := New(d.cfg.Config)
	if err != nil {
		return err
	}
	d.sys = sys
	return nil
}

func (d *Durable) source() restorer {
	if d.eng != nil {
		return d.eng
	}
	return d.sys
}

func (d *Durable) closeSource() {
	if d.eng != nil {
		d.eng.Close()
	}
}

func (d *Durable) snapshotClock() int64 {
	if d.eng != nil {
		return d.eng.Snapshot().Clock()
	}
	return d.sys.lastNow
}

// Observe journals and applies one exact location measurement. It is
// validated first — a rejected measurement must never reach the journal,
// where replay would re-apply it after every recovery.
func (d *Durable) Observe(objectID int, x, y float64, t int64) error {
	if err := checkCoords(x, y); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrDurableClosed
	}
	if _, err := d.log.Append(wal.Record{
		Kind: wal.KindObserve, ObjectID: int64(objectID), T: t, X: x, Y: y,
	}); err != nil {
		return fmt.Errorf("hotpaths: journal observe: %w", err)
	}
	return d.source().Observe(objectID, x, y, t)
}

// ObserveNoisy journals and applies one Gaussian measurement. It requires
// Config.Delta > 0, like the underlying deployments.
func (d *Durable) ObserveNoisy(objectID int, x, y, sigmaX, sigmaY float64, t int64) error {
	if d.cfg.Delta <= 0 {
		return fmt.Errorf("hotpaths: ObserveNoisy requires Config.Delta > 0")
	}
	if err := checkCoords(x, y); err != nil {
		return err
	}
	if err := checkSigmas(sigmaX, sigmaY); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrDurableClosed
	}
	if _, err := d.log.Append(wal.Record{
		Kind: wal.KindObserve, ObjectID: int64(objectID), T: t, X: x, Y: y,
		SigmaX: sigmaX, SigmaY: sigmaY,
	}); err != nil {
		return fmt.Errorf("hotpaths: journal observe: %w", err)
	}
	if d.eng != nil {
		return d.eng.ObserveNoisy(objectID, x, y, sigmaX, sigmaY, t)
	}
	return d.sys.ObserveNoisy(objectID, x, y, sigmaX, sigmaY, t)
}

// ObserveBatch journals and applies a batch of observations under one
// lock acquisition and one journal write — the fast path for network
// ingestion. The batch is validated before anything is journaled, so a
// rejected batch leaves both journal and state untouched (matching
// Engine.ObserveBatch's all-or-nothing contract). A journal I/O failure
// poisons the log — every later write fails until the process restarts
// and recovers — so the journal can never silently diverge from the
// acknowledged stream.
func (d *Durable) ObserveBatch(batch []Observation) error {
	return d.ObserveBatchCtx(context.Background(), batch)
}

// ObserveBatchCtx is ObserveBatch recording spans on the context's trace:
// one wal.append span per journal write plus the engine's batch span. On
// an unrecorded context the only cost is a context check per layer.
func (d *Durable) ObserveBatchCtx(ctx context.Context, batch []Observation) error {
	if len(batch) == 0 {
		return nil
	}
	recs := make([]wal.Record, len(batch))
	for i, o := range batch {
		if err := checkObservation(i, o, d.cfg.Delta); err != nil {
			return err
		}
		recs[i] = wal.Record{
			Kind: wal.KindObserve, ObjectID: int64(o.ObjectID), T: o.T,
			X: o.X, Y: o.Y, SigmaX: o.SigmaX, SigmaY: o.SigmaY,
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrDurableClosed
	}
	_, wspan := tracing.StartSpan(ctx, "wal.append")
	wspan.SetAttr("records", len(recs))
	_, err := d.log.AppendBatch(recs)
	wspan.End()
	if err != nil {
		return fmt.Errorf("hotpaths: journal batch: %w", err)
	}
	if d.eng != nil {
		return d.eng.ObserveBatchCtx(ctx, batch)
	}
	// The System applies record-by-record — exactly how recovery replays —
	// with per-record errors ignored, matching applyRecord.
	for _, o := range batch {
		if o.SigmaX != 0 || o.SigmaY != 0 {
			_ = d.sys.ObserveNoisy(o.ObjectID, o.X, o.Y, o.SigmaX, o.SigmaY, o.T)
			continue
		}
		_ = d.sys.Observe(o.ObjectID, o.X, o.Y, o.T)
	}
	return nil
}

// Tick journals and applies a clock advance. At epoch boundaries, once
// the clock has moved CheckpointEvery timestamps past the last
// checkpoint, the state is checkpointed and old WAL segments truncated.
func (d *Durable) Tick(now int64) error {
	return d.TickCtx(context.Background(), now)
}

// TickCtx is Tick recording spans on the context's trace: the journal
// append, the engine's epoch spans, and — when this tick crosses a
// checkpoint boundary — the checkpoint with its fsync child.
func (d *Durable) TickCtx(ctx context.Context, now int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrDurableClosed
	}
	_, wspan := tracing.StartSpan(ctx, "wal.append")
	wspan.SetAttr("records", 1)
	_, aerr := d.log.Append(wal.Record{Kind: wal.KindTick, T: now})
	wspan.End()
	if aerr != nil {
		return fmt.Errorf("hotpaths: journal tick: %w", aerr)
	}
	var err error
	if d.eng != nil {
		err = d.eng.TickCtx(ctx, now)
	} else {
		err = d.sys.Tick(now)
	}
	if now <= d.clock {
		return err // clock did not advance; no epoch, no checkpoint
	}
	prev := d.clock
	d.clock = now
	boundary := now/d.cfg.Epoch != prev/d.cfg.Epoch
	if boundary && d.cfg.CheckpointEvery >= 0 && now-d.lastCkptClock >= d.cfg.CheckpointEvery {
		if cerr := d.checkpointLocked(ctx); cerr != nil {
			err = errors.Join(err, cerr)
		}
	}
	return err
}

// Snapshot captures an immutable view of the current hot paths, counters
// and clock. With a Concurrent backend it does not block writers.
func (d *Durable) Snapshot() Snapshot {
	if d.eng != nil {
		return d.eng.Snapshot()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sys.Snapshot()
}

// Stats returns the underlying deployment's counters (no path copy).
func (d *Durable) Stats() Stats {
	if d.eng != nil {
		return d.eng.Stats()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sys.Stats()
}

// Shards returns the backing Engine's shard count (1 for the
// single-goroutine System backend).
func (d *Durable) Shards() int {
	if d.eng != nil {
		return d.eng.Shards()
	}
	return 1
}

// Config returns the configuration with defaults applied.
func (d *Durable) Config() Config { return d.cfg.Config }

// Checkpoint forces a full-state checkpoint now and truncates WAL
// segments older than it. It returns the LSN the checkpoint covers up to.
func (d *Durable) Checkpoint() (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrDurableClosed
	}
	if err := d.checkpointLocked(context.Background()); err != nil {
		return 0, err
	}
	return d.lastCkptLSN, nil
}

// checkpointLocked: commit the journal, dump the state, write the
// checkpoint durably, then drop segments the checkpoint covers. The
// context carries the trace of the tick that crossed the checkpoint
// boundary, so checkpoint stalls show up inside that request's trace.
func (d *Durable) checkpointLocked(ctx context.Context) error {
	t0 := time.Now()
	ctx, span := tracing.StartSpan(ctx, "checkpoint")
	defer span.End()
	flightrec.Default.RecordCtx(ctx, flightrec.EvCheckpointStart,
		flightrec.KV("count", d.ckptCount))
	_, fspan := tracing.StartSpan(ctx, "wal.fsync")
	serr := d.log.Sync()
	fspan.End()
	if serr != nil {
		return fmt.Errorf("hotpaths: checkpoint sync: %w", serr)
	}
	lsn := d.log.NextLSN()
	var st engine.State
	if d.eng != nil {
		var err error
		st, err = d.eng.eng.DumpState()
		if err != nil {
			return err
		}
	} else {
		st = d.sys.dumpState()
	}
	payload, err := encodeCheckpoint(d.cfg.Config, st)
	if err != nil {
		return err
	}
	if err := wal.WriteCheckpoint(d.dir, lsn, payload, d.cfg.KeepCheckpoints); err != nil {
		return fmt.Errorf("hotpaths: write checkpoint: %w", err)
	}
	if err := d.log.TruncateBefore(lsn); err != nil {
		return fmt.Errorf("hotpaths: truncate journal: %w", err)
	}
	d.lastCkptLSN = lsn
	d.lastCkptClock = int64(st.Clock)
	d.ckptCount++
	span.SetAttr("lsn", lsn)
	span.SetAttr("bytes", len(payload))
	el := time.Since(t0)
	mCheckpoint.Observe(el.Seconds())
	mCheckpointBytes.Observe(float64(len(payload)))
	flightrec.Default.RecordCtx(ctx, flightrec.EvCheckpointFinish,
		flightrec.KV("lsn", lsn),
		flightrec.KV("bytes", len(payload)),
		flightrec.KV("duration_ms", el.Milliseconds()))
	return nil
}

// NextLSN returns the LSN the next journaled record will get — the
// length of the acknowledged observation stream so far. It is the
// primary-side position replication heartbeats advertise, and is cheap
// (no directory walk, unlike WAL).
func (d *Durable) NextLSN() uint64 {
	return d.log.NextLSN()
}

// Clock returns the deployment's current clock: the timestamp of the
// last applied Tick (or the recovered clock right after open). Cheap —
// no snapshot is taken.
func (d *Durable) Clock() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clock
}

// Err reports the durability layer's poisoned state: the first journal
// I/O failure, or nil while the log is healthy. Once non-nil, every write
// fails with it until the process restarts and recovers — operators
// should surface it from health probes (the hotpathsd daemon turns it
// into a 503 on /healthz and a wal_error field on /stats).
func (d *Durable) Err() error {
	return d.log.Err()
}

// Sync is a hard durability barrier: every acknowledged write is on disk
// when it returns.
func (d *Durable) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrDurableClosed
	}
	return d.log.Sync()
}

// WAL returns the durability layer's counters.
func (d *Durable) WAL() WALStats {
	d.mu.Lock()
	ckpts, ckptLSN, ckptClock, replayed := d.ckptCount, d.lastCkptLSN, d.lastCkptClock, d.replayed
	log := d.log
	d.mu.Unlock()
	ls := log.Stats()
	return WALStats{
		Records:             ls.Records,
		NextLSN:             ls.NextLSN,
		Segments:            ls.Segments,
		Bytes:               ls.Bytes,
		Syncs:               ls.Syncs,
		Truncated:           ls.Truncated,
		Checkpoints:         ckpts,
		LastCheckpointLSN:   ckptLSN,
		LastCheckpointClock: ckptClock,
		Replayed:            replayed,
	}
}

// Close checkpoints the final state (unless automatic checkpoints are
// disabled), commits and closes the journal, and stops the Engine's
// shards when Concurrent. The directory recovers instantly on the next
// OpenDurable. Close is idempotent.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	var errs []error
	if d.cfg.CheckpointEvery >= 0 {
		if err := d.checkpointLocked(context.Background()); err != nil {
			errs = append(errs, err)
		}
	}
	if err := d.log.Close(); err != nil {
		errs = append(errs, err)
	}
	if d.eng != nil {
		if err := d.eng.Close(); err != nil {
			errs = append(errs, err)
		}
	} else {
		// The Engine backend closes its subscriptions itself; the System
		// has no Close, so shut its hub down here.
		d.sys.subs.closeAll()
	}
	d.closed = true
	return errors.Join(errs...)
}

// ErrDurableClosed is returned by operations on a closed Durable.
var ErrDurableClosed = errors.New("hotpaths: durable deployment closed")

var _ Source = (*Durable)(nil)

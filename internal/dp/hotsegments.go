package dp

import (
	"fmt"
	"math"
	"sort"

	"hotpaths/internal/geom"
	"hotpaths/internal/hotness"
	"hotpaths/internal/motion"
	"hotpaths/internal/trajectory"
)

// HotSegments is the paper's DP benchmark store (Section 6). Candidate
// segments produced by per-object OpeningWindow simplifiers are offered via
// Offer. If an existing segment lies completely within the candidate's
// ε-expanded MBB, the existing segment's hotness is incremented; otherwise
// the candidate is stored with hotness 1. Time is ignored for matching, but
// hotness still expires from the sliding window W.
type HotSegments struct {
	eps      float64
	cellSize float64
	hot      *hotness.Window
	segs     map[motion.PathID]geom.Segment
	buckets  map[[2]int][]motion.PathID // midpoint cell -> ids
	nextID   motion.PathID
	queries  int
}

// NewHotSegments builds a store with the given tolerance and window.
func NewHotSegments(eps float64, w trajectory.Time) (*HotSegments, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("dp: eps must be positive, got %v", eps)
	}
	hot, err := hotness.New(w)
	if err != nil {
		return nil, fmt.Errorf("dp: %w", err)
	}
	return &HotSegments{
		eps:      eps,
		cellSize: 4 * eps,
		hot:      hot,
		segs:     make(map[motion.PathID]geom.Segment),
		buckets:  make(map[[2]int][]motion.PathID),
	}, nil
}

func (h *HotSegments) midCell(s geom.Segment) [2]int {
	m := s.A.Lerp(s.B, 0.5)
	return [2]int{int(math.Floor(m.X / h.cellSize)), int(math.Floor(m.Y / h.cellSize))}
}

// Offer submits a candidate segment observed at exit time te. It returns
// the id of the segment whose hotness was incremented (existing or new) and
// whether the candidate was merged into an existing segment.
func (h *HotSegments) Offer(seg geom.Segment, te trajectory.Time) (motion.PathID, bool) {
	mbb := seg.MBB().Expand(h.eps)
	h.queries++
	// One range query over the grid: candidate cells are those the MBB
	// covers; a contained segment's midpoint necessarily lies in the MBB.
	c0 := int(math.Floor(mbb.Lo.X / h.cellSize))
	r0 := int(math.Floor(mbb.Lo.Y / h.cellSize))
	c1 := int(math.Floor(mbb.Hi.X / h.cellSize))
	r1 := int(math.Floor(mbb.Hi.Y / h.cellSize))
	bestID, found := motion.PathID(0), false
	bestLen := -1.0
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			for _, id := range h.buckets[[2]int{col, row}] {
				s, live := h.segs[id]
				if !live {
					continue
				}
				if mbb.Contains(s.A) && mbb.Contains(s.B) {
					// Prefer the longest contained segment for determinism.
					if l := s.Length(); l > bestLen || (l == bestLen && (!found || id < bestID)) {
						bestID, bestLen, found = id, l, true
					}
				}
			}
		}
	}
	if found {
		h.hot.Cross(bestID, te)
		return bestID, true
	}
	id := h.nextID
	h.nextID++
	h.segs[id] = seg
	cell := h.midCell(seg)
	h.buckets[cell] = append(h.buckets[cell], id)
	h.hot.Cross(id, te)
	return id, false
}

// Advance slides the window, evicting segments whose hotness reaches zero.
func (h *HotSegments) Advance(now trajectory.Time) {
	h.hot.Advance(now, func(id motion.PathID) {
		seg, ok := h.segs[id]
		if !ok {
			return
		}
		cell := h.midCell(seg)
		ids := h.buckets[cell]
		for i, x := range ids {
			if x == id {
				ids[i] = ids[len(ids)-1]
				h.buckets[cell] = ids[:len(ids)-1]
				break
			}
		}
		if len(h.buckets[cell]) == 0 {
			delete(h.buckets, cell)
		}
		delete(h.segs, id)
	})
}

// IndexSize returns the number of live segments.
func (h *HotSegments) IndexSize() int { return len(h.segs) }

// Queries returns the number of range queries issued (DP's cost metric).
func (h *HotSegments) Queries() int { return h.queries }

// Hotness returns the current hotness of a stored segment.
func (h *HotSegments) Hotness(id motion.PathID) int { return h.hot.Hotness(id) }

// TopK returns the k hottest segments as HotPaths (sorted by hotness, then
// length, then id). k ≤ 0 returns all.
func (h *HotSegments) TopK(k int) []motion.HotPath {
	out := make([]motion.HotPath, 0, len(h.segs))
	h.hot.ForEach(func(id motion.PathID, c int) bool {
		if s, ok := h.segs[id]; ok {
			out = append(out, motion.HotPath{
				Path:    motion.Path{ID: id, S: s.A, E: s.B},
				Hotness: c,
			})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hotness != out[j].Hotness {
			return out[i].Hotness > out[j].Hotness
		}
		li, lj := out[i].Path.Length(), out[j].Path.Length()
		if li != lj {
			return li > lj
		}
		return out[i].Path.ID < out[j].Path.ID
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Score returns the average hotness×length over the top-k segments.
func (h *HotSegments) Score(k int) float64 { return motion.TopKScore(h.TopK(k)) }

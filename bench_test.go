// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (Section 6), plus micro-benchmarks of every substrate
// and ablation benches for the design choices called out in DESIGN.md.
//
// The figure benches run scaled-down workloads (see experiment.QuickBase)
// so `go test -bench=.` completes in minutes; the cmd/benchfigs tool runs
// the same sweeps at paper scale. Alongside ns/op, each figure bench
// reports the paper's own metrics via b.ReportMetric: index sizes, top-k
// scores and coordinator time, for both SinglePath and the DP benchmark.
package hotpaths_test

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"hotpaths"

	"hotpaths/internal/coordinator"
	"hotpaths/internal/dp"
	"hotpaths/internal/experiment"
	"hotpaths/internal/geom"
	"hotpaths/internal/gridindex"
	"hotpaths/internal/hotness"
	"hotpaths/internal/imai"
	"hotpaths/internal/motion"
	"hotpaths/internal/overlap"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/simulation"
	"hotpaths/internal/trajectory"
	"hotpaths/internal/uncertainty"
	"hotpaths/internal/workload"
)

// --- Figure 7: varying the number of objects (index size, score, time) ---

func BenchmarkFigure7(b *testing.B) {
	for _, n := range []int{500, 1000, 2500, 5000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			base, err := experiment.QuickBase(1)
			if err != nil {
				b.Fatal(err)
			}
			base.N = n
			var last *simulation.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := simulation.Run(base)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			reportFigureMetrics(b, last)
		})
	}
}

// --- Figure 8: varying the tolerance ---

func BenchmarkFigure8(b *testing.B) {
	for _, eps := range []float64{1, 2, 10, 20} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			base, err := experiment.QuickBase(1)
			if err != nil {
				b.Fatal(err)
			}
			base.Eps = eps
			var last *simulation.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := simulation.Run(base)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			reportFigureMetrics(b, last)
		})
	}
}

func reportFigureMetrics(b *testing.B, res *simulation.Result) {
	b.Helper()
	if res == nil {
		return
	}
	b.ReportMetric(res.AvgIndexSize, "sp-index")
	b.ReportMetric(res.AvgDPIndexSize, "dp-index")
	b.ReportMetric(res.AvgTopKScore, "sp-score")
	b.ReportMetric(res.AvgDPTopKScore, "dp-score")
	b.ReportMetric(float64(res.AvgProcTime.Microseconds())/1000, "sp-ms/epoch")
	b.ReportMetric(float64(res.Comm.UpMessages), "msgs")
}

// --- Figures 9/10: qualitative renders (bench the full pipeline + render) ---

func BenchmarkFigure9Render(b *testing.B) {
	base, err := experiment.QuickBase(1)
	if err != nil {
		b.Fatal(err)
	}
	base.Duration = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Figure9(base); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10Render(b *testing.B) {
	base, err := experiment.QuickBase(1)
	if err != nil {
		b.Fatal(err)
	}
	base.Duration = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure10(base, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2 / communication ablation ---

func BenchmarkCommAblation(b *testing.B) {
	base, err := experiment.QuickBase(1)
	if err != nil {
		b.Fatal(err)
	}
	base.Duration = 100
	var rows []experiment.CommRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = experiment.CommAblation(base, []float64{2, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(rows) == 3 {
		b.ReportMetric(rows[0].Ratio, "ratio-eps2")
		b.ReportMetric(rows[2].Ratio, "ratio-eps20")
	}
}

// --- Micro-benchmarks: substrates ---

func benchWalk(n int, seed int64) []trajectory.TimePoint {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]trajectory.TimePoint, n)
	cur := geom.Pt(0, 0)
	dir := geom.Pt(5, 0)
	for i := range pts {
		if rng.Float64() < 0.1 {
			dir = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		cur = cur.Add(dir).Add(geom.Pt(rng.Float64()-0.5, rng.Float64()-0.5))
		pts[i] = trajectory.TP(cur, trajectory.Time(i))
	}
	return pts
}

// BenchmarkRayTraceProcess measures the per-timepoint cost of the filter —
// the paper's O(1) claim.
func BenchmarkRayTraceProcess(b *testing.B) {
	pts := benchWalk(b.N+1, 3)
	f := raytrace.New(pts[0], 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, report, err := f.Process(pts[i+1])
		if err != nil {
			b.Fatal(err)
		}
		if report {
			if _, _, err := f.Respond(trajectory.TP(st.FSA.Centroid(), st.Te)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkGridInsertRemove(b *testing.B) {
	bounds := geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10000, 10000)}
	g, err := gridindex.New(bounds, 64, 64)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, b.N)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := gridindex.Entry{ID: motion.PathID(i), End: pts[i], Start: geom.Pt(0, 0)}
		g.Insert(e)
		if i >= 1000 {
			g.Remove(motion.PathID(i-1000), pts[i-1000])
		}
	}
}

func BenchmarkGridQuery(b *testing.B) {
	bounds := geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10000, 10000)}
	g, _ := gridindex.New(bounds, 64, 64)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		g.Insert(gridindex.Entry{
			ID:  motion.PathID(i),
			End: geom.Pt(rng.Float64()*10000, rng.Float64()*10000),
		})
	}
	b.ResetTimer()
	found := 0
	for i := 0; i < b.N; i++ {
		lo := geom.Pt(rng.Float64()*9900, rng.Float64()*9900)
		q := geom.Rect{Lo: lo, Hi: lo.Add(geom.Pt(40, 40))}
		g.Query(q, func(gridindex.Entry) bool { found++; return true })
	}
	_ = found
}

func BenchmarkHotnessWindow(b *testing.B) {
	h, _ := hotness.New(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Cross(motion.PathID(i%1000), trajectory.Time(i))
		if i%10 == 0 {
			h.Advance(trajectory.Time(i), nil)
		}
	}
}

func BenchmarkOverlapDeepest(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	s, _ := overlap.NewSet(20)
	// A realistic epoch batch: 2000 FSAs clustered around 50 hotspots.
	for i := 0; i < 2000; i++ {
		cx := float64(rng.Intn(50)) * 200
		cy := float64(rng.Intn(50)) * 200
		lo := geom.Pt(cx+rng.Float64()*30, cy+rng.Float64()*30)
		s.Add(geom.Rect{Lo: lo, Hi: lo.Add(geom.Pt(20, 20))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx := float64(rng.Intn(50)) * 200
		q := geom.Rect{Lo: geom.Pt(cx, cx), Hi: geom.Pt(cx+60, cx+60)}
		s.DeepestWithin(q)
	}
}

func BenchmarkDPOpeningWindow(b *testing.B) {
	pts := benchWalk(b.N+1, 11)
	w, err := dp.NewOpeningWindow(5, dp.NOPW)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Process(pts[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUncertaintySolver(b *testing.B) {
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := uncertainty.MaxOffset(10, 0.05, 1+float64(i%5)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("table", func(b *testing.B) {
		tab, err := uncertainty.NewTable(0.05, 0.5, 50, 2000)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := tab.MaxOffset(10, 1+float64(i%5)); !ok {
				b.Fatal("table miss")
			}
		}
	})
}

// BenchmarkCoordinatorEpoch measures SinglePath's per-epoch batch cost.
func BenchmarkCoordinatorEpoch(b *testing.B) {
	for _, batch := range []int{100, 1000} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			bounds := geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10000, 10000)}
			c, err := coordinator.New(coordinator.Config{Bounds: bounds, W: 100, Eps: 10})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(13))
			now := trajectory.Time(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reports := make([]coordinator.Report, batch)
				for j := range reports {
					s := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
					fsa := geom.RectAround(s.Add(geom.Pt(80, 20)), 10)
					reports[j] = coordinator.Report{
						ObjectID: j,
						State:    raytrace.State{Start: s, Ts: now, FSA: fsa, Te: now + 10},
					}
				}
				if _, err := c.ProcessEpoch(reports); err != nil {
					b.Fatal(err)
				}
				now += 10
				c.Advance(now)
			}
		})
	}
}

// --- Ingest throughput: single-threaded System vs sharded Engine ---

// ingestBatches precomputes a per-timestamp observation stream: nObjects
// seeded random walkers with occasional sharp turns, so the filter tier
// does real SSA work and periodically reports. It is the same generator
// the Engine/System equivalence test uses (hotpaths.IngestWorkload).
func ingestBatches(nObjects int, horizon int64) [][]hotpaths.Observation {
	return hotpaths.IngestWorkload(nObjects, horizon, 21)
}

func ingestConfig() hotpaths.Config {
	return hotpaths.Config{
		Eps:    5,
		W:      100,
		Epoch:  10,
		K:      10,
		Bounds: hotpaths.Rect{Min: hotpaths.Pt(-3000, -3000), Max: hotpaths.Pt(4000, 4000)},
	}
}

// BenchmarkSystemIngest is the single-threaded baseline: the full
// filter+coordinator pipeline driven through hotpaths.System.
func BenchmarkSystemIngest(b *testing.B) {
	const nObjects, horizon = 512, 60
	batches := ingestBatches(nObjects, horizon)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := hotpaths.New(ingestConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range batches {
			for _, o := range batch {
				if err := sys.Observe(o.ObjectID, o.X, o.Y, o.T); err != nil {
					b.Fatal(err)
				}
			}
			if err := sys.Tick(batch[0].T); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	reportObsRate(b, nObjects*horizon)
}

// BenchmarkEngineIngest sweeps the shard count over the same workload. At
// 4+ shards on a multi-core machine the sharded filter tier should beat
// the System baseline by >=2x; shards=1 measures the pipeline overhead.
func BenchmarkEngineIngest(b *testing.B) {
	const nObjects, horizon = 512, 60
	batches := ingestBatches(nObjects, horizon)
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	for _, shards := range counts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := hotpaths.NewEngine(hotpaths.EngineConfig{
					Config: ingestConfig(),
					Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, batch := range batches {
					if err := eng.ObserveBatch(batch); err != nil {
						b.Fatal(err)
					}
					if err := eng.Tick(batch[0].T); err != nil {
						b.Fatal(err)
					}
				}
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportObsRate(b, nObjects*horizon)
		})
	}
}

// --- Durable write path: journaled ingest and crash recovery ---

// BenchmarkWALAppend measures durable ingest: the BenchmarkEngineIngest
// workload pushed through OpenDurable at the default group-commit
// interval, so every observation and tick is journaled before it is
// applied. The acceptance bar for the durability subsystem is >=50% of
// the in-memory Engine's obs/s.
func BenchmarkWALAppend(b *testing.B) {
	const nObjects, horizon = 512, 60
	batches := ingestBatches(nObjects, horizon)
	for _, backend := range []string{"system", "engine"} {
		b.Run(backend, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir() // fresh journal per iteration, not timed
				b.StartTimer()
				dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
					Config:     ingestConfig(),
					Concurrent: backend == "engine",
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, batch := range batches {
					if err := dur.ObserveBatch(batch); err != nil {
						b.Fatal(err)
					}
					if err := dur.Tick(batch[0].T); err != nil {
						b.Fatal(err)
					}
				}
				// The hard durability barrier is part of the measured cost;
				// the final checkpoint Close writes is shutdown cost, not
				// append cost, so it runs off the clock.
				if err := dur.Sync(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := dur.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.StopTimer()
			reportObsRate(b, nObjects*horizon)
		})
	}
}

// BenchmarkRecover measures both recovery paths: "replay" reconstructs
// purely from the WAL (no checkpoint — the worst case), "checkpoint"
// loads the final checkpoint plus an empty tail (the steady-state restart
// cost with default retention).
func BenchmarkRecover(b *testing.B) {
	const nObjects, horizon = 512, 60
	batches := ingestBatches(nObjects, horizon)
	prepare := func(b *testing.B, ckptEvery int64) string {
		b.Helper()
		dir := b.TempDir()
		dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
			Config:          ingestConfig(),
			FsyncInterval:   -1,
			CheckpointEvery: ckptEvery,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range batches {
			if err := dur.ObserveBatch(batch); err != nil {
				b.Fatal(err)
			}
			if err := dur.Tick(batch[0].T); err != nil {
				b.Fatal(err)
			}
		}
		if err := dur.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	b.Run("replay", func(b *testing.B) {
		dir := prepare(b, -1) // no checkpoints: recovery replays every record
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, err := hotpaths.Recover(dir)
			if err != nil {
				b.Fatal(err)
			}
			if src.Snapshot().Stats().Observations != nObjects*horizon {
				b.Fatal("short recovery")
			}
		}
		b.StopTimer()
		reportObsRate(b, nObjects*horizon)
	})
	b.Run("checkpoint", func(b *testing.B) {
		dir := prepare(b, 0) // default cadence + final checkpoint on Close
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, err := hotpaths.Recover(dir)
			if err != nil {
				b.Fatal(err)
			}
			if src.Snapshot().Stats().Observations != nObjects*horizon {
				b.Fatal("short recovery")
			}
		}
		b.StopTimer()
		reportObsRate(b, nObjects*horizon)
	})
}

// BenchmarkFollowerReplay measures follower apply throughput: the
// BenchmarkRecover/replay workload, but arriving over a real (loopback)
// replication stream into hotpaths.OpenFollower instead of from local
// disk. The acceptance bar for the replication subsystem is staying
// within 2x of BenchmarkRecover's replay path — the follower pays HTTP
// framing and stream decode on top of the same deterministic replay, and
// batching the applies is what keeps that overhead in budget.
func BenchmarkFollowerReplay(b *testing.B) {
	const nObjects, horizon = 512, 60
	batches := ingestBatches(nObjects, horizon)
	dir := b.TempDir()
	dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
		Config:          ingestConfig(),
		FsyncInterval:   -1,
		CheckpointEvery: -1, // no checkpoints: the follower replays every record
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range batches {
		if err := dur.ObserveBatch(batch); err != nil {
			b.Fatal(err)
		}
		if err := dur.Tick(batch[0].T); err != nil {
			b.Fatal(err)
		}
	}
	if err := dur.Sync(); err != nil {
		b.Fatal(err)
	}
	defer dur.Close()
	srv := httptest.NewServer(hotpaths.NewReplicationFeed(dur, nil))
	defer srv.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := hotpaths.OpenFollower(srv.URL, hotpaths.FollowerConfig{})
		if err != nil {
			b.Fatal(err)
		}
		for f.Replication().AppliedLSN < dur.NextLSN() {
			time.Sleep(200 * time.Microsecond)
		}
		b.StopTimer()
		// Verification (an O(paths) snapshot) and teardown run off-clock;
		// the timed section is bootstrap + stream + apply only.
		if got := f.Snapshot().Stats().Observations; got != nObjects*horizon {
			b.Fatalf("follower replayed %d observations, want %d", got, nObjects*horizon)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	reportObsRate(b, nObjects*horizon)
}

// --- Snapshot query path: region scans and top-k over large snapshots ---

// benchSnapshot builds an n-path snapshot of short random paths spread
// over a 16 km square, hotness zipf-ish so sorting and min-hotness cuts
// have realistic shape.
func benchSnapshot(n int) hotpaths.Snapshot {
	rng := rand.New(rand.NewSource(31))
	bounds := hotpaths.Rect{Min: hotpaths.Pt(0, 0), Max: hotpaths.Pt(16000, 16000)}
	paths := make([]hotpaths.HotPath, n)
	for i := range paths {
		sx, sy := rng.Float64()*16000, rng.Float64()*16000
		paths[i] = hotpaths.HotPath{
			ID:      uint64(i),
			Start:   hotpaths.Pt(sx, sy),
			End:     hotpaths.Pt(sx+rng.Float64()*100-50, sy+rng.Float64()*100-50),
			Hotness: 1 + rng.Intn(64)/(1+rng.Intn(8)),
		}
	}
	return hotpaths.NewBenchSnapshot(paths, bounds, 64, 64, 10)
}

// BenchmarkSnapshotQuery measures the read side of the API: top-k and
// viewport (bbox) queries over 10k/100k-path snapshots. region-linear is
// the brute-force baseline the grid-index range scan must beat.
func BenchmarkSnapshotQuery(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		snap := benchSnapshot(n)
		rng := rand.New(rand.NewSource(37))
		viewports := make([]hotpaths.Rect, 64)
		for i := range viewports {
			lo := hotpaths.Pt(rng.Float64()*15800, rng.Float64()*15800)
			viewports[i] = hotpaths.Rect{Min: lo, Max: hotpaths.Pt(lo.X+200, lo.Y+200)}
		}
		// Warm the lazy region index outside the timed sections.
		snap.Query(hotpaths.Query{}.Region(viewports[0]))
		all := snap.HotPaths()

		b.Run(fmt.Sprintf("paths=%d/topk", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := snap.Query(hotpaths.Query{}.K(10)); len(got) != 10 {
					b.Fatalf("topk returned %d", len(got))
				}
			}
		})
		b.Run(fmt.Sprintf("paths=%d/region-grid", n), func(b *testing.B) {
			found := 0
			for i := 0; i < b.N; i++ {
				found += len(snap.Query(hotpaths.Query{}.Region(viewports[i%len(viewports)])))
			}
			reportMatchRate(b, found)
		})
		b.Run(fmt.Sprintf("paths=%d/region-linear", n), func(b *testing.B) {
			found := 0
			for i := 0; i < b.N; i++ {
				r := viewports[i%len(viewports)]
				for _, hp := range all {
					if hp.End.X >= r.Min.X && hp.End.X <= r.Max.X &&
						hp.End.Y >= r.Min.Y && hp.End.Y <= r.Max.Y {
						found++
					}
				}
			}
			reportMatchRate(b, found)
		})
		b.Run(fmt.Sprintf("paths=%d/region-topk-score", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				snap.Query(hotpaths.Query{}.
					Region(viewports[i%len(viewports)]).
					SortBy(hotpaths.ByScore).
					K(10))
			}
		})
	}
}

func reportMatchRate(b *testing.B, found int) {
	b.Helper()
	b.ReportMetric(float64(found)/float64(b.N), "matches/op")
}

func reportObsRate(b *testing.B, obsPerIter int) {
	b.Helper()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(obsPerIter*b.N)/sec, "obs/s")
	}
}

// --- Ablation benches (DESIGN.md Section 5) ---

// BenchmarkAblationImai compares the on-line RayTrace segment count against
// the offline anchored greedy on identical single-object inputs.
func BenchmarkAblationImai(b *testing.B) {
	pts := benchWalk(5000, 17)
	const eps = 5.0
	var offline, online int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		offline, err = imai.SegmentCount(pts, eps)
		if err != nil {
			b.Fatal(err)
		}
		f := raytrace.New(pts[0], eps)
		online = 0
		for _, p := range pts[1:] {
			st, report, err := f.Process(p)
			if err != nil {
				b.Fatal(err)
			}
			for report {
				online++
				st, report, err = f.Respond(trajectory.TP(st.FSA.Centroid(), st.Te))
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(offline), "offline-segs")
	b.ReportMetric(float64(online), "online-segs")
}

// BenchmarkAblationGridCell sweeps the coordinator grid resolution.
func BenchmarkAblationGridCell(b *testing.B) {
	for _, cells := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("grid=%dx%d", cells, cells), func(b *testing.B) {
			base, err := experiment.QuickBase(1)
			if err != nil {
				b.Fatal(err)
			}
			base.Duration = 100
			base.RunDP = false
			base.GridCols, base.GridRows = cells, cells
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := simulation.Run(base); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMovementModel quantifies the α-semantics ablation
// discussed in DESIGN.md/EXPERIMENTS.md: the literal i.i.d. coin-flip
// realisation of agility versus the traffic-light (bursty) model.
func BenchmarkAblationMovementModel(b *testing.B) {
	for _, model := range []workload.MovementModel{workload.Bursty, workload.IID} {
		b.Run(model.String(), func(b *testing.B) {
			base, err := experiment.QuickBase(1)
			if err != nil {
				b.Fatal(err)
			}
			base.Duration = 100
			base.Model = model
			base.RunDP = false
			var last *simulation.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = simulation.Run(base)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if last != nil {
				b.ReportMetric(last.AvgIndexSize, "sp-index")
				b.ReportMetric(last.AvgTopKScore, "sp-score")
				b.ReportMetric(float64(last.Comm.UpMessages), "msgs")
			}
		})
	}
}

// BenchmarkAblationDPPolicy compares the two opening-window policies.
func BenchmarkAblationDPPolicy(b *testing.B) {
	for _, pol := range []dp.Policy{dp.NOPW, dp.BOPW} {
		b.Run(pol.String(), func(b *testing.B) {
			base, err := experiment.QuickBase(1)
			if err != nil {
				b.Fatal(err)
			}
			base.Duration = 100
			base.DPPolicy = pol
			var last *simulation.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = simulation.Run(base)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if last != nil {
				b.ReportMetric(last.AvgDPIndexSize, "dp-index")
				b.ReportMetric(last.AvgDPTopKScore, "dp-score")
			}
		})
	}
}

package main

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"hotpaths"
)

// newReplicaPair builds a durable primary served over a real listener and
// a follower server attached to it — the in-process shape of
// `hotpathsd -wal DIR` plus `hotpathsd -follow URL`.
func newReplicaPair(t *testing.T, maxLag uint64) (primary http.Handler, dur *hotpaths.Durable, follower http.Handler, fol *hotpaths.Follower) {
	t.Helper()
	dir := t.TempDir()
	dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
		Config:        serverTestConfig(),
		Concurrent:    true,
		Shards:        2,
		FsyncInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dur.Close() })
	primary = newServer(dur, serverOpts{dur: dur}).handler()
	srv := httptest.NewServer(primary)
	t.Cleanup(srv.Close)

	fol, err = hotpaths.OpenFollower(srv.URL, hotpaths.FollowerConfig{
		Shards:       2,
		ReconnectMin: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })
	follower = newServer(fol, serverOpts{fol: fol, maxLag: maxLag}).handler()
	return primary, dur, follower, fol
}

// TestFollowerWritesForbidden pins the daemon half of the read-only
// contract: every write endpoint answers 403 and names the primary.
func TestFollowerWritesForbidden(t *testing.T) {
	_, _, follower, _ := newReplicaPair(t, 0)
	writes := []struct {
		method, path string
		body         any
	}{
		{http.MethodPost, "/observe", observeRequest{Observations: []observationJSON{{Object: 1, X: 1, Y: 2, T: 3}}}},
		{http.MethodPost, "/tick", tickRequest{Now: 5}},
		{http.MethodPost, "/admin/checkpoint", nil},
	}
	for _, wr := range writes {
		rec := do(t, follower, wr.method, wr.path, wr.body)
		if rec.Code != http.StatusForbidden {
			t.Errorf("%s %s on follower: %d, want 403", wr.method, wr.path, rec.Code)
			continue
		}
		resp := decode[map[string]any](t, rec)
		if resp["primary"] == "" || resp["error"] == "" {
			t.Errorf("%s %s: 403 body must name the error and the primary, got %v", wr.method, wr.path, resp)
		}
	}
	// The rejected writes reached no state.
	st := decode[map[string]any](t, do(t, follower, http.MethodGet, "/stats", nil))
	if got := st["observations"]; got != float64(0) {
		t.Fatalf("rejected writes leaked into stats: %v", got)
	}
}

// TestFollowerServesIdenticalReads drives the primary over HTTP and
// checks the follower's /topk, /paths and /stats converge to identical
// answers, with the replication_* fields tracking the catch-up.
func TestFollowerServesIdenticalReads(t *testing.T) {
	primary, dur, follower, fol := newReplicaPair(t, 0)

	// A deterministic three-lane flow, driven through the primary's HTTP
	// ingest exactly as a producer would.
	for tick := int64(1); tick <= 60; tick++ {
		var obs []observationJSON
		for lane := 0; lane < 3; lane++ {
			obs = append(obs, observationJSON{
				Object: lane, X: float64(tick) * 10, Y: float64(lane * 50), T: tick,
			})
		}
		rec := do(t, primary, http.MethodPost, "/observe", observeRequest{Observations: obs, Tick: tick})
		if rec.Code != http.StatusOK {
			t.Fatalf("primary observe at t=%d: %d %s", tick, rec.Code, rec.Body)
		}
	}

	// Wait until the follower has applied everything the primary journaled.
	want := dur.NextLSN()
	deadline := time.Now().Add(15 * time.Second)
	for fol.Replication().AppliedLSN < want {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck: %+v (want lsn %d)", fol.Replication(), want)
		}
		time.Sleep(time.Millisecond)
	}

	for _, path := range []string{"/topk", "/paths", "/topk?sort=score&k=5", "/paths?min_hotness=2"} {
		p := do(t, primary, http.MethodGet, path, nil)
		f := do(t, follower, http.MethodGet, path, nil)
		if p.Code != http.StatusOK || f.Code != http.StatusOK {
			t.Fatalf("%s: primary %d, follower %d", path, p.Code, f.Code)
		}
		if !reflect.DeepEqual(p.Body.Bytes(), f.Body.Bytes()) {
			t.Errorf("%s diverged:\nprimary:  %s\nfollower: %s", path, p.Body, f.Body)
		}
	}

	pst := decode[map[string]any](t, do(t, primary, http.MethodGet, "/stats", nil))
	fst := decode[map[string]any](t, do(t, follower, http.MethodGet, "/stats", nil))
	for _, key := range []string{"observations", "epoch", "clock", "snapshot_paths", "index_size", "crossings"} {
		if pst[key] != fst[key] {
			t.Errorf("stats[%q]: primary %v, follower %v", key, pst[key], fst[key])
		}
	}
	if fst["replica"] != true || pst["replica"] != false {
		t.Errorf("replica flags: primary %v, follower %v", pst["replica"], fst["replica"])
	}
	if fst["replication_connected"] != true {
		t.Errorf("follower stats not connected: %v", fst)
	}
	if fst["replication_applied_lsn"] != float64(want) {
		t.Errorf("replication_applied_lsn = %v, want %d", fst["replication_applied_lsn"], want)
	}

	// Forced reconnect via the admin endpoint, then convergence again.
	if rec := do(t, follower, http.MethodPost, "/admin/reconnect", nil); rec.Code != http.StatusOK {
		t.Fatalf("admin/reconnect: %d", rec.Code)
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		rs := fol.Replication()
		if rs.Connected && rs.Reconnects > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reconnected: %+v", rs)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFollowerHealthzDegradesOnLag: with a 1-record threshold and the
// primary gone, /healthz flips to 503 once the follower can no longer
// keep up (disconnection is immediate degradation).
func TestFollowerHealthzDegrades(t *testing.T) {
	dir := t.TempDir()
	dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
		Config:        serverTestConfig(),
		FsyncInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	primary := newServer(dur, serverOpts{dur: dur}).handler()
	srv := httptest.NewServer(primary)

	fol, err := hotpaths.OpenFollower(srv.URL, hotpaths.FollowerConfig{ReconnectMin: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	follower := newServer(fol, serverOpts{fol: fol, maxLag: 1}).handler()

	// Healthy while the stream is up.
	deadline := time.Now().Add(10 * time.Second)
	for !fol.Replication().Connected {
		if time.Now().After(deadline) {
			t.Fatalf("follower never connected: %+v", fol.Replication())
		}
		time.Sleep(time.Millisecond)
	}
	if rec := do(t, follower, http.MethodGet, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("connected follower healthz = %d: %s", rec.Code, rec.Body)
	}

	// Kill the primary: the stream drops and reconnects keep failing, so
	// the follower must report itself degraded.
	srv.CloseClientConnections()
	srv.Close()
	deadline = time.Now().Add(15 * time.Second)
	for {
		rec := do(t, follower, http.MethodGet, "/healthz", nil)
		if rec.Code == http.StatusServiceUnavailable {
			resp := decode[map[string]any](t, rec)
			if resp["status"] != "degraded" {
				t.Fatalf("degraded healthz body: %v", resp)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower healthz never degraded after primary death")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPrimaryFeedEndpoints: the replication feed is mounted iff -wal is
// set, and absent on bare engines.
func TestPrimaryFeedEndpoints(t *testing.T) {
	durH, _ := newDurableHandler(t)
	if rec := do(t, durH, http.MethodGet, "/wal/meta", nil); rec.Code != http.StatusOK {
		t.Errorf("/wal/meta on primary: %d", rec.Code)
	}
	// Fresh directory: no checkpoint yet.
	if rec := do(t, durH, http.MethodGet, "/wal/checkpoint", nil); rec.Code != http.StatusNotFound {
		t.Errorf("/wal/checkpoint on fresh primary: %d, want 404", rec.Code)
	}
	if rec := do(t, durH, http.MethodGet, "/wal/stream?from=abc", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("/wal/stream?from=abc: %d, want 400", rec.Code)
	}

	bare := newTestHandler(t)
	for _, path := range []string{"/wal/meta", "/wal/checkpoint", "/wal/stream"} {
		if rec := do(t, bare, http.MethodGet, path, nil); rec.Code != http.StatusNotFound {
			t.Errorf("%s on bare engine: %d, want 404", path, rec.Code)
		}
	}
}

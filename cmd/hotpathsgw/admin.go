package main

import (
	"net/http"
	"net/http/pprof"

	"hotpaths/internal/flightrec"
	"hotpaths/internal/metrics"
	"hotpaths/internal/tracing"
)

// adminHandler is the -pprof listener's mux: the profiling endpoints, a
// second /metrics mount, the completed-trace ring under /debug/traces,
// and the flight-recorder ring under /debug/events — the same admin
// surface hotpathsd exposes, so one set of tooling works against every
// process in the fleet.
func adminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", metrics.Handler())
	tracing.Default.RegisterDebug(mux)
	flightrec.Default.RegisterDebug(mux)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func sloFixture() (*Registry, SLOOptions) {
	reg := NewRegistry()
	o := SLOOptions{
		RequestsTotal:  "hotpaths_http_requests_total",
		LatencySeconds: "hotpaths_http_request_seconds",
	}
	o.defaults()
	return reg, o
}

func TestSLOAvailabilityBurn(t *testing.T) {
	reg, o := sloFixture()
	ok := reg.Counter(o.RequestsTotal, "req", Labels{"route": "/observe", "code": "2xx"})
	bad := reg.Counter(o.RequestsTotal, "req", Labels{"route": "/observe", "code": "5xx"})
	s := &SLO{reg: reg, o: o, samples: make([]sloSample, 8)}
	s.Sample() // zero baseline

	ok.Add(999)
	bad.Add(1)
	st := s.Status()
	// 1/1000 errors against a 99.9% objective is exactly budget rate.
	if math.Abs(st.AvailabilityFast-1.0) > 1e-9 {
		t.Fatalf("availability fast burn = %g, want 1.0", st.AvailabilityFast)
	}
	// One retained sample serves both windows early in life.
	if st.AvailabilityFast != st.AvailabilitySlow {
		t.Fatalf("fast %g != slow %g with a single baseline", st.AvailabilityFast, st.AvailabilitySlow)
	}

	bad.Add(9) // 10/1009 ≈ 9.9x budget
	st = s.Status()
	if st.AvailabilityFast < 9 || st.AvailabilityFast > 11 {
		t.Fatalf("availability burn = %g, want ~9.9", st.AvailabilityFast)
	}
	if st.Max() != st.AvailabilityFast {
		t.Fatalf("Max() = %g, want worst burn %g", st.Max(), st.AvailabilityFast)
	}
}

func TestSLOLatencyBurn(t *testing.T) {
	reg, o := sloFixture()
	h := reg.Histogram(o.LatencySeconds, "latency", LatencyBuckets, Labels{"route": "/topk"})
	s := &SLO{reg: reg, o: o, samples: make([]sloSample, 8)}
	s.Sample()

	for i := 0; i < 99; i++ {
		h.Observe(0.001) // under the 0.25s threshold
	}
	h.Observe(1.5) // over it
	st := s.Status()
	// 1/100 slow against a 99% objective is exactly budget rate.
	if math.Abs(st.LatencyFast-1.0) > 1e-9 {
		t.Fatalf("latency burn = %g, want 1.0", st.LatencyFast)
	}
	if st.AvailabilityFast != 0 {
		t.Fatalf("no requests counted, availability burn = %g, want 0", st.AvailabilityFast)
	}
}

func TestSLOThresholdSnapsToBucket(t *testing.T) {
	reg, o := sloFixture()
	o.LatencyThreshold = 0.3 // between the 0.25 and 0.5 bounds: snaps down to 0.25
	h := reg.Histogram(o.LatencySeconds, "latency", LatencyBuckets, nil)
	s := &SLO{reg: reg, o: o, samples: make([]sloSample, 8)}
	s.Sample()
	h.Observe(0.4) // over 0.25, under 0.3: counts as slow after snapping
	if st := s.Status(); st.LatencyFast == 0 {
		t.Fatalf("0.4s observation should burn against a snapped 0.25s threshold, burn = %g", st.LatencyFast)
	}
}

func TestSLOWindowSelection(t *testing.T) {
	reg, o := sloFixture()
	s := &SLO{reg: reg, o: o, samples: make([]sloSample, 8)}
	now := time.Now()
	// Hand-plant a history: an hour-old sample and a 2-minute-old one.
	for _, sm := range []sloSample{
		{t: now.Add(-time.Hour), total: 0, errs: 0},
		{t: now.Add(-2 * time.Minute), total: 1000, errs: 0},
	} {
		s.samples[s.pos] = sm
		s.pos = (s.pos + 1) % len(s.samples)
		s.n++
	}
	if got := s.at(now.Add(-o.FastWindow)); got.total != 0 {
		t.Fatalf("fast window (5m) should reach past the 2m sample to the 1h one, got total=%d", got.total)
	}
	if got := s.at(now.Add(-time.Minute)); got.total != 1000 {
		t.Fatalf("1m lookback should pick the 2m-old sample, got total=%d", got.total)
	}
}

func TestSLOZeroTraffic(t *testing.T) {
	reg, o := sloFixture()
	s := &SLO{reg: reg, o: o, samples: make([]sloSample, 8)}
	s.Sample()
	st := s.Status()
	if st.Max() != 0 {
		t.Fatalf("zero traffic must burn nothing, got %+v", st)
	}
}

func TestSLOGaugeExposition(t *testing.T) {
	reg, o := sloFixture()
	c := reg.Counter(o.RequestsTotal, "req", Labels{"route": "/paths", "code": "5xx"})
	s := StartSLO(reg, o)
	defer s.Stop()
	c.Add(5)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`hotpaths_slo_availability_burn_ratio{window="fast"}`,
		`hotpaths_slo_availability_burn_ratio{window="slow"}`,
		`hotpaths_slo_latency_burn_ratio{window="fast"}`,
		`hotpaths_slo_latency_burn_ratio{window="slow"}`,
		"hotpaths_slo_availability_objective_ratio 0.999",
		"hotpaths_slo_latency_objective_ratio 0.99",
		"hotpaths_slo_latency_threshold_seconds 0.25",
		"# TYPE hotpaths_slo_availability_burn_ratio gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// All-5xx traffic: fast burn must expose well above budget rate
	// (~1000x; float rendering keeps it just under).
	if !strings.Contains(out, `hotpaths_slo_availability_burn_ratio{window="fast"} 99`) {
		t.Fatalf("100%% errors against 99.9%% objective should expose burn ~1000:\n%s", out)
	}
}

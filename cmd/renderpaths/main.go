// Command renderpaths runs a simulation and renders the discovered motion
// paths (and the underlying road network) as SVG, reproducing the paper's
// qualitative figures.
//
// Usage:
//
//	renderpaths [-topk 0] [-crop] [-out .] [-n 20000] [-eps 10] [-seed 1]
//	            [-duration 250] [-quick]
//
// -topk 0 renders every live path (Figure 9); -topk 20 -crop renders the
// paper's Figure 10. The network itself is always written alongside
// (Figure 6) for visual comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hotpaths/internal/experiment"
	"hotpaths/internal/geojson"
	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
	"hotpaths/internal/simulation"
	"hotpaths/internal/svg"
	"hotpaths/internal/trajectory"
)

func main() {
	var (
		topk     = flag.Int("topk", 0, "render only the k hottest paths (0 = all)")
		crop     = flag.Bool("crop", false, "crop to the central 40% of the map")
		out      = flag.String("out", ".", "output directory")
		n        = flag.Int("n", 20000, "number of objects")
		eps      = flag.Float64("eps", 10, "tolerance, metres")
		seed     = flag.Int64("seed", 1, "random seed")
		duration = flag.Int64("duration", 250, "simulation length, timestamps")
		quick    = flag.Bool("quick", false, "scaled-down workload")
		asGeo    = flag.Bool("geojson", false, "also write paths.geojson and network.geojson")
	)
	flag.Parse()

	var cfg simulation.Config
	var err error
	if *quick {
		cfg, err = experiment.QuickBase(*seed)
	} else {
		cfg, err = experiment.Base(*seed)
		cfg.N = *n
	}
	if err != nil {
		fatal(err)
	}
	cfg.Eps = *eps
	cfg.Duration = trajectory.Time(*duration)
	cfg.RunDP = false

	res, err := simulation.Run(cfg)
	if err != nil {
		fatal(err)
	}
	var paths []motion.HotPath
	if *topk > 0 {
		paths = res.AllPaths
		if *topk < len(paths) {
			paths = paths[:*topk]
		}
	} else {
		paths = res.AllPaths
	}

	bounds := cfg.Net.Bounds()
	opts := svg.Options{WidthPx: 900}
	if *crop {
		opts.Crop = geom.Rect{
			Lo: bounds.Lo.Add(geom.Pt(bounds.Width()*0.3, bounds.Height()*0.3)),
			Hi: bounds.Lo.Add(geom.Pt(bounds.Width()*0.7, bounds.Height()*0.7)),
		}
	}
	if err := write(*out, "paths.svg", svg.RenderHotPaths(paths, bounds, opts)); err != nil {
		fatal(err)
	}
	if err := write(*out, "network.svg", svg.RenderNetwork(cfg.Net, opts)); err != nil {
		fatal(err)
	}
	if *asGeo {
		if err := writeGeo(*out, "paths.geojson", geojson.FromHotPaths(paths)); err != nil {
			fatal(err)
		}
		if err := writeGeo(*out, "network.geojson", geojson.FromNetwork(cfg.Net)); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("rendered %d paths (of %d live) discovered by %d objects\n",
		len(paths), len(res.AllPaths), cfg.N)
}

func writeGeo(dir, name string, fc geojson.FeatureCollection) error {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := geojson.Write(f, fc); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func write(dir, name, content string) error {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "renderpaths:", err)
	os.Exit(1)
}

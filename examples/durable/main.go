// Durability quickstart: journal an observation stream through
// hotpaths.OpenDurable, "crash" halfway, and watch recovery rebuild the
// exact state from disk.
//
// A fleet of taxis shuttles along a boulevard. The first life ingests
// half the stream with checkpoints disabled and stops — the journal
// holds every record but no checkpoint, exactly the recovery work a
// crash that outran its last checkpoint leaves behind. (A second writer
// on a live directory is refused: the journal is flock-guarded, so a
// true kill-9 demo needs two processes — see the crash-recovery golden
// tests, which cut the journal mid-record instead.) A second OpenDurable
// replays the journal and its counters and paths match the first life's;
// it then ingests the second half. Offline, hotpaths.Recover reads the
// directory once more and agrees with the final state bit for bit.
//
// Run with: go run ./examples/durable
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"hotpaths"
)

func main() {
	dir := filepath.Join(os.TempDir(), "hotpaths-durable-example")
	if err := os.RemoveAll(dir); err != nil {
		log.Fatal(err)
	}

	cfg := hotpaths.DurableConfig{
		Config: hotpaths.Config{
			Eps:    15,
			W:      300,
			Epoch:  10,
			K:      3,
			Bounds: hotpaths.Rect{Min: hotpaths.Pt(-100, -100), Max: hotpaths.Pt(2000, 200)},
		},
		// Journal knobs (all defaulted in real deployments): no fsync
		// ticker (the example syncs by hand) and no checkpoints, so the
		// reopen below has a full journal replay to do.
		FsyncInterval:   -1,
		CheckpointEvery: -1,
	}

	rng := rand.New(rand.NewSource(7))
	const taxis, horizon = 32, 240
	offset := make([]float64, taxis)
	for i := range offset {
		offset[i] = rng.Float64()*8 - 4
	}
	// Taxi i drives east along the boulevard and loops back.
	feed := func(src hotpaths.Source, from, to int64) {
		for now := from; now <= to; now++ {
			for i := 0; i < taxis; i++ {
				s := (now + int64(i)*9) % 200
				x := float64(s) * 9
				if s > 100 {
					x = float64(200-s) * 9
				}
				if err := src.Observe(i, x, offset[i], now); err != nil {
					log.Fatal(err)
				}
			}
			if err := src.Tick(now); err != nil {
				log.Fatal(err)
			}
		}
	}

	// First life: ingest half the stream and stop without a checkpoint —
	// recovery has the whole journal to replay, as after a crash.
	dur, err := hotpaths.OpenDurable(dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	feed(dur, 1, horizon/2)
	crashed := dur.Snapshot()
	if err := dur.Close(); err != nil { // releases the journal lock; writes no checkpoint
		log.Fatal(err)
	}
	fmt.Printf("before crash:  %d observations, %d paths live, clock %d\n",
		crashed.Stats().Observations, crashed.Stats().IndexSize, crashed.Clock())

	// Second life: OpenDurable replays the journal, bit-identical.
	dur2, err := hotpaths.OpenDurable(dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	recovered := dur2.Snapshot()
	fmt.Printf("after recover: %d observations, %d paths live, clock %d (replayed %d WAL records)\n",
		recovered.Stats().Observations, recovered.Stats().IndexSize,
		recovered.Clock(), dur2.WAL().Replayed)
	if recovered.Stats() != crashed.Stats() {
		log.Fatal("recovery diverged from the pre-crash state")
	}

	feed(dur2, horizon/2+1, horizon)
	final := dur2.Snapshot()
	if _, err := dur2.Checkpoint(); err != nil { // bound the next recovery: no replay needed
		log.Fatal(err)
	}
	if err := dur2.Close(); err != nil {
		log.Fatal(err)
	}

	// Offline reconstruction — what `hotpaths -wal-replay DIR` runs.
	replica, err := hotpaths.Recover(dir)
	if err != nil {
		log.Fatal(err)
	}
	if replica.Snapshot().Stats() != final.Stats() {
		log.Fatal("offline replica diverged")
	}
	fmt.Printf("final state:   %d observations, %d paths live — offline replica agrees\n",
		final.Stats().Observations, final.Stats().IndexSize)
	fmt.Println("hottest motion paths:")
	for _, hp := range replica.Snapshot().TopK() {
		fmt.Printf("  #%d  hotness %d  length %.0fm\n", hp.ID, hp.Hotness, hp.Length())
	}
}

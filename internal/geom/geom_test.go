package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); !got.Eq(Pt(4, -2)) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(-2, 6)) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(2, 4)) {
		t.Errorf("Scale = %v", got)
	}
}

func TestPointLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); !got.Eq(p) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); !got.Eq(q) {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := p.Lerp(q, 0.5); !got.Eq(Pt(5, 10)) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestDistances(t *testing.T) {
	p, q := Pt(0, 0), Pt(3, 4)
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := p.MaxDist(q); got != 4 {
		t.Errorf("MaxDist = %v", got)
	}
	if LInf.Distance(p, q) != 4 || L2.Distance(p, q) != 5 {
		t.Error("Metric.Distance mismatch")
	}
}

func TestMetricString(t *testing.T) {
	if LInf.String() != "LInf" || L2.String() != "L2" {
		t.Error("Metric.String mismatch")
	}
}

func TestMinMaxNear(t *testing.T) {
	p, q := Pt(1, 5), Pt(2, 3)
	if got := p.Min(q); !got.Eq(Pt(1, 3)) {
		t.Errorf("Min = %v", got)
	}
	if got := p.Max(q); !got.Eq(Pt(2, 5)) {
		t.Errorf("Max = %v", got)
	}
	if !p.Near(Pt(1.5, 4.5), 0.5) {
		t.Error("Near should hold at tol boundary")
	}
	if p.Near(Pt(1.5, 4.4), 0.5) {
		t.Error("Near should fail beyond tol")
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Pt(5, 5), 2)
	want := Rect{Lo: Pt(3, 3), Hi: Pt(7, 7)}
	if r != want {
		t.Errorf("RectAround = %v want %v", r, want)
	}
	if r.Width() != 4 || r.Height() != 4 || r.Area() != 16 {
		t.Errorf("dims wrong: %v %v %v", r.Width(), r.Height(), r.Area())
	}
	if !r.Centroid().Eq(Pt(5, 5)) {
		t.Errorf("Centroid = %v", r.Centroid())
	}
}

func TestRectFromPoints(t *testing.T) {
	r := RectFromPoints(Pt(1, 8), Pt(4, 2), Pt(-1, 5))
	want := Rect{Lo: Pt(-1, 2), Hi: Pt(4, 8)}
	if r != want {
		t.Errorf("RectFromPoints = %v want %v", r, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty input")
		}
	}()
	RectFromPoints()
}

func TestRectContains(t *testing.T) {
	r := Rect{Lo: Pt(0, 0), Hi: Pt(10, 10)}
	for _, p := range []Point{Pt(0, 0), Pt(10, 10), Pt(5, 5), Pt(0, 10)} {
		if !r.Contains(p) {
			t.Errorf("should contain %v", p)
		}
	}
	for _, p := range []Point{Pt(-0.1, 5), Pt(5, 10.1), Pt(11, 11)} {
		if r.Contains(p) {
			t.Errorf("should not contain %v", p)
		}
	}
	if !r.ContainsRect(Rect{Pt(1, 1), Pt(9, 9)}) {
		t.Error("should contain inner rect")
	}
	if r.ContainsRect(Rect{Pt(1, 1), Pt(11, 9)}) {
		t.Error("should not contain overflowing rect")
	}
}

func TestRectIntersection(t *testing.T) {
	a := Rect{Pt(0, 0), Pt(10, 10)}
	b := Rect{Pt(5, 5), Pt(15, 15)}
	if !a.Intersects(b) {
		t.Fatal("a,b should intersect")
	}
	got := a.Intersect(b)
	want := Rect{Pt(5, 5), Pt(10, 10)}
	if got != want {
		t.Errorf("Intersect = %v want %v", got, want)
	}
	c := Rect{Pt(20, 20), Pt(30, 30)}
	if a.Intersects(c) {
		t.Error("a,c should not intersect")
	}
	if !a.Intersect(c).Empty() {
		t.Error("empty intersection should be Empty")
	}
	// Touching rectangles share a boundary point.
	d := Rect{Pt(10, 10), Pt(20, 20)}
	if !a.Intersects(d) {
		t.Error("touching rects should intersect")
	}
	if a.Intersect(d).Area() != 0 {
		t.Error("touching intersection should have zero area")
	}
}

func TestRectUnionExpand(t *testing.T) {
	a := Rect{Pt(0, 0), Pt(1, 1)}
	b := Rect{Pt(5, -2), Pt(6, 0.5)}
	u := a.Union(b)
	want := Rect{Pt(0, -2), Pt(6, 1)}
	if u != want {
		t.Errorf("Union = %v want %v", u, want)
	}
	e := a.Expand(1)
	if e != (Rect{Pt(-1, -1), Pt(2, 2)}) {
		t.Errorf("Expand = %v", e)
	}
	if !a.Expand(-1).Empty() {
		t.Error("over-shrunk rect should be empty")
	}
}

func TestRectLerp(t *testing.T) {
	apex := Pt(0, 0)
	r := Rect{Pt(8, -2), Pt(12, 2)}
	if got := r.Lerp(apex, 0); got.Lo != apex || got.Hi != apex {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := r.Lerp(apex, 1); got != r {
		t.Errorf("Lerp(1) = %v", got)
	}
	got := r.Lerp(apex, 0.5)
	want := Rect{Pt(4, -1), Pt(6, 1)}
	if got != want {
		t.Errorf("Lerp(0.5) = %v want %v", got, want)
	}
}

func TestSegment(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(6, 8))
	if s.Length() != 10 {
		t.Errorf("Length = %v", s.Length())
	}
	if !s.At(0.5).Eq(Pt(3, 4)) {
		t.Errorf("At(0.5) = %v", s.At(0.5))
	}
	if s.MBB() != (Rect{Pt(0, 0), Pt(6, 8)}) {
		t.Errorf("MBB = %v", s.MBB())
	}
	if s.Reverse() != Seg(Pt(6, 8), Pt(0, 0)) {
		t.Error("Reverse mismatch")
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 3},   // above the middle
		{Pt(-3, 4), 5},  // before A: distance to A
		{Pt(13, -4), 5}, // after B: distance to B
		{Pt(7, 0), 0},   // on the segment
		{Pt(0, 0), 0},   // endpoint
	}
	for _, c := range cases {
		if got := s.DistToPoint(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %v want %v", c.p, got, c.want)
		}
	}
	deg := Seg(Pt(2, 2), Pt(2, 2))
	if got := deg.DistToPoint(Pt(5, 6)); got != 5 {
		t.Errorf("degenerate DistToPoint = %v", got)
	}
}

func TestSegmentPerpDist(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if got := s.PerpDist(Pt(-100, 3)); got != 3 {
		t.Errorf("PerpDist = %v (infinite line, so x is ignored)", got)
	}
	deg := Seg(Pt(1, 1), Pt(1, 1))
	if got := deg.PerpDist(Pt(4, 5)); got != 5 {
		t.Errorf("degenerate PerpDist = %v", got)
	}
}

func TestStringMethods(t *testing.T) {
	// Smoke-test the formatters; they are used in error paths.
	if Pt(1, 2).String() == "" || (Rect{}).String() == "" ||
		Seg(Pt(0, 0), Pt(1, 1)).String() == "" {
		t.Error("empty String output")
	}
}

// Property: intersection is commutative, contained in both operands, and
// intersecting is equivalent to a non-empty intersection.
func TestRectIntersectProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := Rect{Pt(ax, ay), Pt(ax+math.Abs(aw), ay+math.Abs(ah))}
		b := Rect{Pt(bx, by), Pt(bx+math.Abs(bw), by+math.Abs(bh))}
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if i1 != i2 {
			return false
		}
		if a.Intersects(b) != !i1.Empty() {
			return false
		}
		if !i1.Empty() {
			if !a.ContainsRect(i1) || !b.ContainsRect(i1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Lerp of a rect stays inside the union of apex and rect, and
// distances to apex scale linearly.
func TestRectLerpProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		apex := Pt(rng.Float64()*100, rng.Float64()*100)
		lo := Pt(rng.Float64()*100, rng.Float64()*100)
		r := Rect{lo, lo.Add(Pt(rng.Float64()*50, rng.Float64()*50))}
		lam := rng.Float64()
		p := r.Lerp(apex, lam)
		if !p.Valid() {
			t.Fatalf("Lerp produced invalid rect %v", p)
		}
		wantW := r.Width() * lam
		if math.Abs(p.Width()-wantW) > 1e-9 {
			t.Fatalf("width %v want %v", p.Width(), wantW)
		}
	}
}

// Property: DistToPoint is always ≤ distance to either endpoint and ≥ the
// perpendicular distance to the supporting line.
func TestSegmentDistProperties(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		// Constrain magnitudes for numerical sanity.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		s := Seg(Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by)))
		p := Pt(clamp(px), clamp(py))
		d := s.DistToPoint(p)
		if d > p.Dist(s.A)+1e-9 || d > p.Dist(s.B)+1e-9 {
			return false
		}
		return d+1e-9 >= s.PerpDist(p) || s.Length() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

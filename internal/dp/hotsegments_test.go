package dp

import (
	"testing"

	"hotpaths/internal/geom"
)

func TestNewHotSegmentsValidation(t *testing.T) {
	if _, err := NewHotSegments(0, 100); err == nil {
		t.Error("eps=0 must error")
	}
	if _, err := NewHotSegments(1, 0); err == nil {
		t.Error("W=0 must error")
	}
}

func TestOfferInsertAndMerge(t *testing.T) {
	h, err := NewHotSegments(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	s1 := geom.Seg(geom.Pt(0, 0), geom.Pt(100, 0))
	id1, merged := h.Offer(s1, 10)
	if merged {
		t.Error("first offer cannot merge")
	}
	if h.IndexSize() != 1 || h.Hotness(id1) != 1 {
		t.Errorf("size=%d hot=%d", h.IndexSize(), h.Hotness(id1))
	}
	// A slightly longer, slightly offset segment whose expanded MBB
	// contains s1 entirely: must merge.
	s2 := geom.Seg(geom.Pt(-1, 1), geom.Pt(101, 1))
	id2, merged := h.Offer(s2, 20)
	if !merged || id2 != id1 {
		t.Errorf("expected merge into %d, got %d merged=%v", id1, id2, merged)
	}
	if h.IndexSize() != 1 || h.Hotness(id1) != 2 {
		t.Errorf("after merge: size=%d hot=%d", h.IndexSize(), h.Hotness(id1))
	}
	// A far-away segment must insert fresh.
	s3 := geom.Seg(geom.Pt(500, 500), geom.Pt(600, 500))
	id3, merged := h.Offer(s3, 30)
	if merged || id3 == id1 {
		t.Error("distant segment must not merge")
	}
	if h.IndexSize() != 2 {
		t.Errorf("size = %d", h.IndexSize())
	}
	if h.Queries() != 3 {
		t.Errorf("queries = %d (one per offer)", h.Queries())
	}
}

func TestOfferPartialOverlapDoesNotMerge(t *testing.T) {
	h, _ := NewHotSegments(2, 100)
	h.Offer(geom.Seg(geom.Pt(0, 0), geom.Pt(100, 0)), 10)
	// Overlapping but extending beyond the candidate's expanded MBB.
	_, merged := h.Offer(geom.Seg(geom.Pt(50, 0), geom.Pt(90, 0)), 20)
	if merged {
		t.Error("candidate MBB [48-92] cannot contain the 0-100 segment")
	}
	if h.IndexSize() != 2 {
		t.Errorf("size = %d", h.IndexSize())
	}
}

func TestAdvanceEviction(t *testing.T) {
	h, _ := NewHotSegments(2, 100)
	id, _ := h.Offer(geom.Seg(geom.Pt(0, 0), geom.Pt(100, 0)), 10)
	h.Offer(geom.Seg(geom.Pt(-1, 1), geom.Pt(101, 1)), 50) // merges, expiry 150
	h.Advance(110)
	if h.Hotness(id) != 1 {
		t.Errorf("hotness = %d after first expiry", h.Hotness(id))
	}
	if h.IndexSize() != 1 {
		t.Error("segment must survive while hot")
	}
	h.Advance(150)
	if h.IndexSize() != 0 {
		t.Error("segment must be evicted at zero hotness")
	}
	// After eviction, the same geometry inserts fresh.
	id2, merged := h.Offer(geom.Seg(geom.Pt(0, 0), geom.Pt(100, 0)), 200)
	if merged || id2 == id {
		t.Error("evicted segment must not be merged into")
	}
}

func TestTopKAndScore(t *testing.T) {
	h, _ := NewHotSegments(2, 1000)
	a := geom.Seg(geom.Pt(0, 0), geom.Pt(100, 0))
	b := geom.Seg(geom.Pt(0, 500), geom.Pt(10, 500))
	h.Offer(a, 1)
	h.Offer(a, 2) // merge: hotness 2
	h.Offer(b, 3)
	top := h.TopK(10)
	if len(top) != 2 {
		t.Fatalf("topk len = %d", len(top))
	}
	if top[0].Hotness != 2 || top[0].Path.Length() != 100 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if got := h.Score(1); got != 200 {
		t.Errorf("Score(1) = %v", got)
	}
	if got := h.Score(10); got != 105 {
		t.Errorf("Score(10) = %v", got)
	}
	if len(h.TopK(1)) != 1 {
		t.Error("TopK truncation")
	}
}

func TestMergePrefersLongestContained(t *testing.T) {
	h, _ := NewHotSegments(5, 1000)
	short := geom.Seg(geom.Pt(10, 0), geom.Pt(30, 0))
	long := geom.Seg(geom.Pt(0, 0), geom.Pt(90, 0))
	idShort, _ := h.Offer(short, 1)
	idLong, _ := h.Offer(geom.Seg(geom.Pt(0, 2), geom.Pt(90, 2)), 2)
	_ = long
	// Candidate containing both: must merge into the longer one.
	got, merged := h.Offer(geom.Seg(geom.Pt(-2, 1), geom.Pt(95, 1)), 3)
	if !merged {
		t.Fatal("expected merge")
	}
	if got != idLong {
		t.Errorf("merged into %d want longest %d (short=%d)", got, idLong, idShort)
	}
}

package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"hotpaths"
)

// The /watch fan-in merges the partitions' per-epoch delta streams into
// one stream a client cannot tell from a single hotpathsd's.
//
// Each partition stream is consumed with limit=0 — deltas over the
// partition's full (bbox-filtered) result — and replayed through
// Delta.Apply, so the gateway always holds every partition's complete
// result at each epoch. A collector waits until all partitions have
// reached a common epoch, merges their results (sum hotness by id),
// applies the client's query, and emits the diff against the previously
// emitted result — the same diff a single node would have computed over
// the same merged state. Only bbox is pushed down to the partitions:
// region membership is per-path geometry, while k and min_hotness are
// properties of the global result and must be applied after the merge.
//
// A partition stream that re-baselines (its reset with missed > 0 means
// it skipped epochs) leaves holes no merged increment can cross, so the
// fan-in emits its own reset with the skipped epochs counted in missed —
// the exact contract a single daemon's slow-consumer path has. A
// partition stream that dies ends the merged stream; the client
// reconnects and re-baselines, which is already its reconnect story.

// deltaJSON is hotpathsd's SSE delta wire form; the gateway both parses
// it (partition streams) and emits it (the merged stream).
type deltaJSON struct {
	Clock   int64               `json:"clock"`
	Epoch   int64               `json:"epoch"`
	Reset   bool                `json:"reset,omitempty"`
	Missed  int                 `json:"missed,omitempty"`
	Entered []hotpaths.PathJSON `json:"entered"`
	Changed []hotpaths.PathJSON `json:"changed"`
	Left    []uint64            `json:"left"`
}

// delta converts the wire form back to the library type.
func (dj deltaJSON) delta() hotpaths.Delta {
	toHot := func(ps []hotpaths.PathJSON) []hotpaths.HotPath {
		if len(ps) == 0 {
			return nil
		}
		out := make([]hotpaths.HotPath, len(ps))
		for i, p := range ps {
			out[i] = p.HotPath()
		}
		return out
	}
	return hotpaths.Delta{
		Clock:   dj.Clock,
		Epoch:   dj.Epoch,
		Reset:   dj.Reset,
		Missed:  dj.Missed,
		Entered: toHot(dj.Entered),
		Changed: toHot(dj.Changed),
		Left:    dj.Left,
		Order:   hotpaths.ByHotness,
	}
}

// unranked converts delta paths to the wire form with rank zeroed — a
// delta sees a slice of the result, so no real rank exists (hotpathsd's
// rule, replicated for byte-identical streams).
func unranked(paths []hotpaths.HotPath) []hotpaths.PathJSON {
	out := hotpaths.PathsJSON(paths)
	for i := range out {
		out[i].Rank = 0
	}
	return out
}

// writeSSEDelta emits one delta in hotpathsd's exact SSE framing.
func writeSSEDelta(w http.ResponseWriter, d hotpaths.Delta) error {
	left := d.Left
	if left == nil {
		left = []uint64{}
	}
	body, err := json.Marshal(deltaJSON{
		Clock:   d.Clock,
		Epoch:   d.Epoch,
		Reset:   d.Reset,
		Missed:  d.Missed,
		Entered: unranked(d.Entered),
		Changed: unranked(d.Changed),
		Left:    left,
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: delta\ndata: %s\n\n", d.Epoch, body)
	return err
}

// partUpdate is one partition's rebuilt full result at one epoch.
type partUpdate struct {
	idx   int
	epoch int64
	clock int64
	state []hotpaths.HotPath
}

// openWatch starts one partition's delta stream. The request context has
// no deadline — streams live as long as the client — so it is not routed
// through Gateway.do.
func (g *Gateway) openWatch(ctx context.Context, p *part, bbox string) (*http.Response, error) {
	u := p.url + "/watch?limit=0"
	if bbox != "" {
		u += "&bbox=" + url.QueryEscape(bbox)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	return resp, nil
}

// watchPartition consumes one partition's SSE stream, rebuilding its
// full result with Delta.Apply and pushing one partUpdate per epoch.
func (g *Gateway) watchPartition(ctx context.Context, idx int, resp *http.Response, updates chan<- partUpdate) error {
	defer resp.Body.Close()
	rd := bufio.NewReaderSize(resp.Body, 64<<10)
	var event, data string
	var prev []hotpaths.HotPath
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return fmt.Errorf("stream ended: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if event == "delta" && data != "" {
				var dj deltaJSON
				if err := json.Unmarshal([]byte(data), &dj); err != nil {
					return fmt.Errorf("decode delta: %w", err)
				}
				d := dj.delta()
				prev = d.Apply(prev)
				select {
				case updates <- partUpdate{idx: idx, epoch: d.Epoch, clock: d.Clock, state: prev}:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// mergeStates merges per-partition results into one canonical-order
// result, summing hotness by (content-addressed) id.
func mergeStates(states [][]hotpaths.HotPath) []hotpaths.HotPath {
	byID := make(map[uint64]hotpaths.HotPath)
	for _, st := range states {
		for _, hp := range st {
			if prev, ok := byID[hp.ID]; ok {
				hp.Hotness += prev.Hotness
			}
			byID[hp.ID] = hp
		}
	}
	out := make([]hotpaths.HotPath, 0, len(byID))
	for _, hp := range byID {
		out = append(out, hp)
	}
	hotpaths.SortResults(out, hotpaths.ByHotness)
	return out
}

// handleWatch serves GET /watch: the merged SSE delta stream, with
// hotpathsd's parameters and framing.
func (g *Gateway) handleWatch(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r, g.cfg.K)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("streaming unsupported by connection"))
		return
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	// Open every partition stream before committing to SSE, so a dead
	// partition is a clean 503 instead of a stream that never baselines.
	bbox := r.URL.Query().Get("bbox")
	resps := make([]*http.Response, len(g.parts))
	for i, p := range g.parts {
		resp, err := g.openWatch(ctx, p, bbox)
		if err != nil {
			for _, open := range resps[:i] {
				open.Body.Close()
			}
			httpError(w, http.StatusServiceUnavailable, partError{id: p.id, err: err})
			return
		}
		resps[i] = resp
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	updates := make(chan partUpdate)
	readerErr := make(chan error, len(g.parts))
	for i := range g.parts {
		go func(i int) {
			readerErr <- g.watchPartition(ctx, i, resps[i], updates)
		}(i)
	}

	// pending holds, per partition, the rebuilt results for epochs not
	// yet folded into the merged stream.
	pending := make([]map[int64]partUpdate, len(g.parts))
	for i := range pending {
		pending[i] = make(map[int64]partUpdate)
	}
	var (
		prevResult []hotpaths.HotPath
		lastEpoch  int64
		started    bool
	)
	emit := func(e partUpdate, states [][]hotpaths.HotPath, clock int64) error {
		cur := q.apply(mergeStates(states))
		var d hotpaths.Delta
		if !started || e.epoch != lastEpoch+1 {
			// First event, or a partition re-baselined across missed
			// epochs: no increment can span the gap, so the merged
			// stream resets the same way a single daemon would.
			missed := 0
			if started {
				missed = int(e.epoch - lastEpoch - 1)
			}
			d = hotpaths.Delta{
				Clock: clock, Epoch: e.epoch,
				Entered: cur, Reset: true, Missed: missed, Order: q.order,
			}
		} else {
			d = hotpaths.DiffResults(prevResult, cur, q.order)
			d.Clock, d.Epoch = clock, e.epoch
		}
		started, lastEpoch, prevResult = true, e.epoch, cur
		if err := writeSSEDelta(w, d); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}

	for {
		select {
		case <-ctx.Done():
			return
		case <-g.closing:
			return
		case <-readerErr:
			// One partition's stream died: the merged stream cannot stay
			// complete, so end it and let the client reconnect.
			return
		case u := <-updates:
			pending[u.idx][u.epoch] = u
			for {
				// The next merged epoch is the highest "smallest pending
				// epoch" across partitions: everything below it can never
				// be completed (some partition has already moved past).
				target := int64(-1)
				complete := true
				for i := range pending {
					min := int64(-1)
					for e := range pending[i] {
						if min == -1 || e < min {
							min = e
						}
					}
					if min == -1 {
						complete = false
						break
					}
					if min > target {
						target = min
					}
				}
				if !complete {
					break
				}
				ready := true
				for i := range pending {
					for e := range pending[i] {
						if e < target {
							delete(pending[i], e)
						}
					}
					if _, has := pending[i][target]; !has {
						ready = false
					}
				}
				if !ready {
					break
				}
				states := make([][]hotpaths.HotPath, len(pending))
				var clock int64
				var at partUpdate
				for i := range pending {
					at = pending[i][target]
					states[i] = at.state
					if at.clock > clock {
						clock = at.clock
					}
					delete(pending[i], target)
				}
				at.epoch = target
				if err := emit(at, states, clock); err != nil {
					return
				}
			}
		}
	}
}

package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// ReadFrom replays the directory's record stream, calling fn for every
// record with LSN >= from, in LSN order. A torn or corrupt tail in the
// last segment ends the replay cleanly (that is the expected shape of a
// crash); corruption anywhere else is an error. fn returning an error
// aborts the replay with that error.
func ReadFrom(dir string, from uint64, fn func(lsn uint64, r Record) error) error {
	starts, err := segments(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	// The first surviving segment must start at or before `from`,
	// otherwise records in [from, start) are missing — e.g. a fallback to
	// an older checkpoint after TruncateBefore already dropped the
	// segments that covered the gap. Replaying silently from the later
	// start would hand back a state with a hole in it.
	if len(starts) > 0 && starts[0] > from {
		return fmt.Errorf("wal: cannot replay from LSN %d: oldest surviving segment starts at LSN %d", from, starts[0])
	}
	if len(starts) == 0 && from > 0 {
		return fmt.Errorf("wal: cannot replay from LSN %d: no segments", from)
	}
	for i, start := range starts {
		// Skip segments that end before `from`: their record count is the
		// next segment's start minus theirs.
		if i+1 < len(starts) && starts[i+1] <= from {
			continue
		}
		path := filepath.Join(dir, segName(start))
		n, validEnd, err := scanSegment(path, start, func(lsn uint64, r Record) error {
			if lsn < from {
				return nil
			}
			return fn(lsn, r)
		})
		if err != nil {
			return err
		}
		if info, serr := os.Stat(path); serr == nil && validEnd < info.Size() && i != len(starts)-1 {
			return fmt.Errorf("wal: segment %s is corrupt at byte %d (not the last segment)", path, validEnd)
		}
		if i+1 < len(starts) && start+n != starts[i+1] {
			return fmt.Errorf("wal: segment %s holds %d records but next segment starts at LSN %d", path, n, starts[i+1])
		}
	}
	return nil
}

// WriteCheckpoint atomically writes a checkpoint file whose state covers
// every record with LSN < lsn: payload goes to a temp file, is fsynced,
// and is renamed into place. Older checkpoint files beyond the most recent
// `keep` are deleted afterwards (keep < 1 keeps only the new one).
func WriteCheckpoint(dir string, lsn uint64, payload []byte, keep int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(dir, ckptName(lsn))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename must be durable BEFORE the caller deletes the segments
	// this checkpoint covers; without the directory fsync a power loss
	// could persist the unlinks but not the rename, losing both the
	// checkpoint and the records that could rebuild it.
	if err := syncDir(dir); err != nil {
		return err
	}
	// Retention: drop old checkpoints beyond the newest `keep` extras.
	lsns, err := Checkpoints(dir)
	if err != nil {
		return err
	}
	if keep < 1 {
		keep = 1
	}
	var errs []error
	for i := 0; i+keep < len(lsns); i++ {
		if lsns[i] == lsn {
			continue
		}
		if err := os.Remove(filepath.Join(dir, ckptName(lsns[i]))); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Checkpoints lists the directory's checkpoint LSNs in ascending order.
func Checkpoints(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var lsns []uint64
	for _, e := range entries {
		if lsn, ok := parseLSN(e.Name(), ckptPrefix, ckptSuffix); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}

// ReadCheckpoint returns the payload of the checkpoint file at lsn.
// Callers validate the payload themselves (the checkpoint codec carries
// its own magic and checksum) and fall back to an older checkpoint — or a
// full replay — when it does not decode.
func ReadCheckpoint(dir string, lsn uint64) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, ckptName(lsn)))
}

package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
	"hotpaths/internal/workload"
)

func rec(t trajectory.Time, id int, x, y float64) Record {
	return Record{ObjectID: id, TP: trajectory.TP(geom.Pt(x, y), t)}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []Record{
		rec(1, 0, 1.5, 2.5),
		rec(1, 1, -3, 4),
		rec(2, 0, 10, 20.25),
		rec(5, 2, 0, 0),
	}
	for _, r := range in {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 4 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("record %d: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestWriterRejectsTimeTravel(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(rec(5, 0, 0, 0))
	if err := w.Write(rec(4, 0, 0, 0)); err == nil {
		t.Error("decreasing timestamp must error")
	}
	// Equal timestamps are fine (different objects share ticks).
	if err := w.Write(rec(5, 1, 0, 0)); err != nil {
		t.Errorf("equal timestamp rejected: %v", err)
	}
}

func TestWriteMeasurement(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	m := workload.Measurement{ObjectID: 7, TP: trajectory.TP(geom.Pt(1, 2), 3)}
	if err := w.WriteMeasurement(m); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	out, _ := ReadAll(&buf)
	if len(out) != 1 || out[0].ObjectID != 7 {
		t.Errorf("out = %+v", out)
	}
}

func TestReaderErrors(t *testing.T) {
	bad := []string{
		"1 x 2 3",
		"abc",
		"2 0 1 1\n1 0 2 2", // time travel
	}
	for _, s := range bad {
		if _, err := ReadAll(strings.NewReader(s)); err == nil {
			t.Errorf("input %q must error", s)
		}
	}
	// Comments and blanks are skipped.
	ok := "# header\n\n1 0 2 3\n"
	recs, err := ReadAll(strings.NewReader(ok))
	if err != nil || len(recs) != 1 {
		t.Errorf("valid input: %v %v", recs, err)
	}
}

func TestNextEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestReplayBatching(t *testing.T) {
	input := "1 0 0 0\n1 1 5 5\n2 0 1 0\n4 1 6 6\n4 2 7 7\n"
	var batches [][]Record
	var ticks []trajectory.Time
	err := Replay(strings.NewReader(input),
		func(rs []Record) error {
			cp := append([]Record(nil), rs...)
			batches = append(batches, cp)
			return nil
		},
		func(now trajectory.Time) error {
			ticks = append(ticks, now)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 || len(ticks) != 3 {
		t.Fatalf("batches=%d ticks=%d", len(batches), len(ticks))
	}
	if len(batches[0]) != 2 || len(batches[1]) != 1 || len(batches[2]) != 2 {
		t.Errorf("batch sizes: %d %d %d", len(batches[0]), len(batches[1]), len(batches[2]))
	}
	if ticks[0] != 1 || ticks[1] != 2 || ticks[2] != 4 {
		t.Errorf("ticks = %v", ticks)
	}
}

func TestReplayEmpty(t *testing.T) {
	called := false
	err := Replay(strings.NewReader("# nothing\n"),
		func([]Record) error { called = true; return nil },
		func(trajectory.Time) error { called = true; return nil })
	if err != nil || called {
		t.Errorf("empty replay: err=%v called=%v", err, called)
	}
}

func TestReplayPropagatesErrors(t *testing.T) {
	input := "1 0 0 0\n2 0 1 1\n"
	sentinel := io.ErrClosedPipe
	err := Replay(strings.NewReader(input),
		func([]Record) error { return sentinel },
		func(trajectory.Time) error { return nil })
	if err != sentinel {
		t.Errorf("batch error not propagated: %v", err)
	}
}

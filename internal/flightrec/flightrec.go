// Package flightrec is the fleet's flight recorder: a dependency-free,
// bounded, race-clean ring of structured operational events. Metrics
// (internal/metrics) answer "how much, right now"; traces
// (internal/tracing) answer "where did this one request go"; the flight
// recorder answers the third operator question — *what happened, when* —
// for the discrete state transitions that make or break an always-on
// stream processor: epoch barriers, WAL rotations and poisoning,
// checkpoints, replication connect/disconnect, subscriber slow-resets,
// gateway partial reads, and every /healthz state flip.
//
// # Model
//
// A Recorder is a fixed-capacity ring of Events. Recording takes one
// mutex acquisition and one slot write; the oldest event is overwritten
// when the ring is full, so memory is bounded no matter how long the
// process runs. Each event carries a wall-clock timestamp, a type tag
// from the Ev* constants, optional key/value detail, and — when recorded
// through RecordCtx inside a traced request — the active trace ID, which
// stitches the event timeline back to GET /debug/traces.
//
// # Cost contract
//
// Events are batch-granularity, exactly like spans and histogram
// observations: one event per operation (per epoch barrier, per WAL
// rotation, per checkpoint, per 206 response), never per record. The
// batchclock analyzer in hotpathsvet enforces this mechanically for this
// package and every package that records into it.
//
// # Exposition
//
// RegisterDebug mounts GET /debug/events (JSON, oldest-first, filterable
// by type/since/limit) on an admin mux, next to /metrics and
// /debug/traces. DumpTo snapshots the ring to a JSON file for
// post-mortems; AutoDump arms an automatic snapshot when an event of a
// trigger type (canonically EvWALPoisoned) is recorded, so the timeline
// survives the crash-loop that usually follows.
package flightrec

import (
	"context"
	"sync"
	"time"

	"hotpaths/internal/tracing"
)

// Event types recorded across the fleet. A type names the operation, not
// the subsystem log line: filters and alert rules key on these strings,
// so they are part of the observability contract and must stay stable.
const (
	EvEpochBarrier     = "epoch_barrier"
	EvWALFsyncStall    = "wal_fsync_stall"
	EvWALRotation      = "wal_rotation"
	EvWALPoisoned      = "wal_poisoned"
	EvCheckpointStart  = "checkpoint_start"
	EvCheckpointFinish = "checkpoint_finish"
	EvReplConnect      = "replication_connect"
	EvReplDisconnect   = "replication_disconnect"
	EvReplRebootstrap  = "replication_rebootstrap"
	EvSubscriberReset  = "subscriber_slow_reset"
	EvGatewayPartial   = "gateway_partial_read"
	EvTopologyMismatch = "gateway_topology_mismatch"
	EvHealthTransition = "health_transition"
)

// Attr is one key/value detail on an event. Values should be
// JSON-encodable; keep them small — the ring retains thousands of events
// and every byte is resident.
type Attr struct {
	Key   string
	Value any
}

// KV builds an Attr; sugar for call sites.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Event is one recorded operational event. Events are immutable once
// recorded; Snapshot returns copies, so callers may retain them freely.
type Event struct {
	Seq     uint64 // monotone per recorder; gaps mean ring overwrites
	Time    time.Time
	Type    string
	TraceID string // "" when recorded outside a traced context
	Attrs   []Attr
}

// DefaultRingSize is the per-process event buffer capacity. Events are
// rare (state transitions, not requests), so this covers hours of
// ordinary operation.
const DefaultRingSize = 1024

// Recorder is a bounded ring of events. The zero value is not usable;
// use New or the package Default.
type Recorder struct {
	mu  sync.Mutex
	buf []Event
	pos int // next slot to write
	n   int // valid entries, == len(buf) once wrapped
	seq uint64

	// Auto-dump arming, guarded by mu; the dump itself runs without it.
	dumpDir string
	dumpOn  map[string]bool
}

// New returns a recorder retaining the last capacity events.
func New(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Default is the process-wide recorder every instrumented subsystem
// records into, mirroring metrics.Default and tracing.Default.
var Default = New(DefaultRingSize)

// Record appends one event stamped with the current time.
func (r *Recorder) Record(typ string, attrs ...Attr) {
	r.record(time.Now(), typ, "", attrs)
}

// RecordCtx is Record plus trace correlation: when ctx carries a
// recorded span, the event is stamped with its trace ID so the timeline
// links back to /debug/traces.
func (r *Recorder) RecordCtx(ctx context.Context, typ string, attrs ...Attr) {
	var tid string
	if s := tracing.FromContext(ctx); s != nil {
		if id := s.TraceID(); !id.IsZero() {
			tid = id.String()
		}
	}
	r.record(time.Now(), typ, tid, attrs)
}

func (r *Recorder) record(now time.Time, typ, tid string, attrs []Attr) {
	r.mu.Lock()
	r.seq++
	r.buf[r.pos] = Event{Seq: r.seq, Time: now, Type: typ, TraceID: tid, Attrs: attrs}
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	dir := ""
	if r.dumpDir != "" && r.dumpOn[typ] {
		dir = r.dumpDir
	}
	r.mu.Unlock()
	if dir != "" {
		// Dump off the recording goroutine: Record is called under
		// subsystem locks (the WAL poisons while holding its mutex) and
		// must never wait on disk I/O.
		go func() { _, _ = r.DumpTo(dir, "event:"+typ) }()
	}
}

// AutoDump arms automatic ring snapshots: recording an event of any of
// the given types asynchronously dumps the ring to dir. Pass no types to
// disarm.
func (r *Recorder) AutoDump(dir string, types ...string) {
	on := make(map[string]bool, len(types))
	for _, t := range types {
		on[t] = true
	}
	r.mu.Lock()
	if len(on) == 0 {
		r.dumpDir, r.dumpOn = "", nil
	} else {
		r.dumpDir, r.dumpOn = dir, on
	}
	r.mu.Unlock()
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot returns retained events oldest-first. typ filters to one
// event type ("" for all); since drops events before it (zero for all);
// limit keeps only the newest limit events after filtering (0 for all).
func (r *Recorder) Snapshot(typ string, since time.Time, limit int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.n)
	start := r.pos - r.n
	for i := 0; i < r.n; i++ {
		ev := r.buf[(start+i+len(r.buf))%len(r.buf)]
		if typ != "" && ev.Type != typ {
			continue
		}
		if !since.IsZero() && ev.Time.Before(since) {
			continue
		}
		out = append(out, ev)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testRecords builds a deterministic mixed stream of observe and tick
// records.
func testRecords(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		if i%5 == 4 {
			out[i] = Record{Kind: KindTick, T: int64(i)}
			continue
		}
		out[i] = Record{
			Kind:     KindObserve,
			ObjectID: int64(i % 7),
			T:        int64(i),
			X:        float64(i) * 1.5,
			Y:        -float64(i) * 0.25,
			SigmaX:   float64(i%3) * 0.5,
			SigmaY:   float64(i%2) * 0.5,
		}
	}
	return out
}

func readAll(t *testing.T, dir string, from uint64) []Record {
	t.Helper()
	var out []Record
	want := from
	if err := ReadFrom(dir, from, func(lsn uint64, r Record) error {
		if lsn != want {
			t.Fatalf("ReadFrom yielded LSN %d, want %d", lsn, want)
		}
		want++
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(100)
	for i, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("Append returned LSN %d, want %d", lsn, i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, dir, 0); !reflect.DeepEqual(got, recs) {
		t.Fatalf("roundtrip mismatch: got %d records", len(got))
	}
	if got := readAll(t, dir, 40); !reflect.DeepEqual(got, recs[40:]) {
		t.Fatal("ReadFrom(40) mismatch")
	}
}

func TestRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	l, err := Open(dir, Options{SegmentBytes: 256, FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(200)
	if _, err := l.AppendBatch(recs[:120]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	starts, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(starts))
	}

	// Reopen continues at the right LSN.
	l, err = Open(dir, Options{SegmentBytes: 256, FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextLSN(); got != 120 {
		t.Fatalf("NextLSN after reopen = %d, want 120", got)
	}
	for _, r := range recs[120:] {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, dir, 0); !reflect.DeepEqual(got, recs) {
		t.Fatal("records after rotation+reopen diverge")
	}
}

// A crash mid-record must be healed on reopen: the torn bytes are
// truncated and the log continues from the last whole record.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(20)
	if _, err := l.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(0))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut 5 bytes into the last record's frame.
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextLSN(); got != 19 {
		t.Fatalf("NextLSN after torn tail = %d, want 19", got)
	}
	if st := l.Stats(); st.Truncated == 0 {
		t.Error("Stats.Truncated should report the discarded bytes")
	}
	// Appending after the heal keeps the stream contiguous.
	if _, err := l.Append(recs[19]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, dir, 0); !reflect.DeepEqual(got, recs) {
		t.Fatal("healed log diverges")
	}
}

// Corrupting a byte mid-file (not the tail) must be detected by ReadFrom,
// which CRC-validates every record it replays (Open only scans the last
// segment — the only one a crash can tear).
func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(testRecords(100)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	starts, _ := segments(dir)
	if len(starts) < 2 {
		t.Fatal("need multiple segments")
	}
	// Flip one payload byte in the FIRST segment.
	path := filepath.Join(dir, segName(starts[0]))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[12] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadFrom(dir, 0, func(uint64, Record) error { return nil }); err == nil {
		t.Error("ReadFrom must reject corruption in a non-final segment")
	}
}

// Replaying from an LSN older than the oldest surviving segment must
// error — e.g. a fallback to an older checkpoint after truncation — not
// silently skip the missing records.
func TestReadFromBeforeOldestSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(testRecords(100)); err != nil {
		t.Fatal(err)
	}
	starts, _ := segments(dir)
	if err := l.TruncateBefore(starts[2]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ReadFrom(dir, starts[2]-1, func(uint64, Record) error { return nil }); err == nil {
		t.Error("ReadFrom before the oldest surviving segment must fail")
	}
	if err := ReadFrom(dir, starts[2], func(uint64, Record) error { return nil }); err != nil {
		t.Errorf("ReadFrom at the oldest surviving LSN failed: %v", err)
	}
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(100)
	if _, err := l.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	starts, _ := segments(dir)
	if len(starts) < 3 {
		t.Fatal("need >=3 segments")
	}
	cut := starts[2] // everything before segment 2 is coverable by a checkpoint at its start
	if err := l.TruncateBefore(cut); err != nil {
		t.Fatal(err)
	}
	left, _ := segments(dir)
	if left[0] != starts[2] {
		t.Fatalf("oldest surviving segment starts at %d, want %d", left[0], starts[2])
	}
	// The tail from the cut replays intact (after committing the buffer).
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, dir, cut); !reflect.DeepEqual(got, recs[cut:]) {
		t.Fatal("tail after TruncateBefore diverges")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointFiles(t *testing.T) {
	dir := t.TempDir()
	for i, lsn := range []uint64{10, 20, 30} {
		if err := WriteCheckpoint(dir, lsn, []byte{byte(i)}, 2); err != nil {
			t.Fatal(err)
		}
	}
	lsns, err := Checkpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lsns, []uint64{20, 30}) {
		t.Fatalf("retention kept %v, want [20 30]", lsns)
	}
	b, err := ReadCheckpoint(dir, 30)
	if err != nil || len(b) != 1 || b[0] != 2 {
		t.Fatalf("ReadCheckpoint(30) = %v, %v", b, err)
	}
}

func TestGroupCommitSync(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Kind: KindTick, T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Syncs != 1 {
		t.Errorf("Syncs = %d, want 1", st.Syncs)
	}
	// Idle sync is a no-op.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Syncs; got != 1 {
		t.Errorf("idle Sync bumped count to %d", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Kind: KindTick, T: 2}); err != ErrClosed {
		t.Errorf("Append after Close = %v, want ErrClosed", err)
	}
}

// Two writers on one journal directory would interleave frames; the
// second Open must fail while the first holds the flock, and succeed
// after Close releases it.
func TestOpenExcludesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{FsyncInterval: -1}); err == nil {
		t.Fatal("second Open on a locked directory must fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatalf("Open after Close released the lock: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestResetTo(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Kind: KindTick, T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.ResetTo(50); err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(Record{Kind: KindTick, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 50 {
		t.Fatalf("LSN after ResetTo = %d, want 50", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The pre-reset segment is gone (its records precede the checkpoint
	// that justified the reset), so the log has no LSN gap and reopens.
	starts, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 1 || starts[0] != 50 {
		t.Fatalf("segments after ResetTo = %v, want [50]", starts)
	}
	got := readAll(t, dir, 50)
	if len(got) != 1 || got[0].T != 2 {
		t.Fatalf("tail after ResetTo = %+v", got)
	}
	l, err = Open(dir, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatalf("reopen after ResetTo: %v", err)
	}
	if got := l.NextLSN(); got != 51 {
		t.Errorf("NextLSN after reopen = %d, want 51", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

package hotpaths

// IngestWorkload exposes the deterministic random-walk workload generator
// to the external benchmark package, so the correctness tests and the
// ingest benchmarks exercise the same workload.
var IngestWorkload = engineWorkload

// Command hotpaths runs one full simulation of the paper's distributed
// environment and prints per-epoch statistics plus the final top-k hottest
// motion paths.
//
// Usage:
//
//	hotpaths [-n 20000] [-eps 10] [-w 100] [-epoch 10] [-duration 250]
//	         [-k 10] [-agility 0.1] [-step 10] [-err 1] [-seed 1]
//	         [-net network.txt] [-iid] [-dp] [-quiet] [-log-format text|json]
//
// Results print to stdout; diagnostics go to stderr through log/slog in
// the format -log-format selects.
//
// Without -net, the synthetic Athens-like network is generated from the
// seed. Alternatively, -trace replays a recorded measurement trace (as
// written by genworkload) through the full RayTrace + SinglePath pipeline,
// ignoring the workload flags:
//
//	hotpaths -trace trace.txt [-eps 10] [-w 100] [-epoch 10] [-k 10]
//	         [-engine] [-json] [-watch] [-wal-record DIR]
//
// The replay drives the hotpaths.Source interface, so -engine swaps the
// single-goroutine System for the concurrent sharded Engine without
// touching the replay loop; results are bit-identical. -json prints the
// final top-k in the canonical PathJSON wire form instead of a table.
// -watch additionally subscribes a standing top-k query to the replay
// and prints one line per epoch delta — the continuous-query view a
// hotpathsd client would receive on GET /watch.
//
// -wal-record DIR additionally journals the replayed stream into a
// write-ahead log directory (the full journal is kept — no checkpoint
// truncation — so the directory doubles as a portable binary trace), and
// -wal-replay DIR reconstructs the state offline from such a directory —
// or from a crashed hotpathsd -wal directory — and prints the top-k:
//
//	hotpaths -wal-replay DIR [-json]
//
// -wal-tail streams a journal as human-readable records, one line per
// record, following the live tail until interrupted — the replication
// debugging sibling of -wal-replay. The target is either a journal
// directory (tailing the files a live hotpathsd -wal is writing) or a
// primary's base URL (consuming its /wal/stream feed exactly as a
// follower does, heartbeats included):
//
//	hotpaths -wal-tail DIR
//	hotpaths -wal-tail http://primary:8080 [-from 1000]
//
// `hotpaths bench` runs the core benchmark suite (internal/bench) —
// ingest, WAL append, recovery, follower replay, snapshot queries — and
// writes one bench-trajectory point as JSON, optionally gating on a
// checked-in baseline:
//
//	hotpaths bench [-out BENCH_core.json] [-baseline BENCH_core.json]
//	               [-max-regress 0.25] [-run name,...] [-list] [-q]
//	               [-paper BENCH_paper.json]
//
// -paper additionally regenerates the paper's accuracy-vs-communication
// curve (deterministic under the fixed seed) as a separate artifact.
//
// `hotpaths fleet` is the fleet ops view: it polls every named node's
// /stats, /healthz, /metrics and /debug/events and renders a live
// refreshing dashboard — per-node health with its degraded reason, SLO
// burn rates, and the fleet-merged flight-recorder timeline with trace
// IDs preserved. With -once it instead emits one JSON snapshot (for CI
// artifacts and postmortems):
//
//	hotpaths fleet [-once] [-out fleet.json] [-interval 2s] [-events 50] \
//	    p0=http://localhost:8080,http://localhost:6060 \
//	    gw=http://localhost:8090,http://localhost:6061
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hotpaths/internal/dp"
	"hotpaths/internal/replication"
	"hotpaths/internal/roadnet"
	"hotpaths/internal/simulation"
	"hotpaths/internal/stats"
	"hotpaths/internal/trace"
	"hotpaths/internal/tracing"
	"hotpaths/internal/trajectory"
	"hotpaths/internal/wal"
	"hotpaths/internal/workload"

	"hotpaths"
)

func main() {
	// The bench and fleet subcommands have their own FlagSets; dispatch
	// before the simulation flags are parsed.
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		os.Exit(runBench(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		os.Exit(runFleet(os.Args[2:]))
	}
	var (
		n         = flag.Int("n", 20000, "number of moving objects")
		eps       = flag.Float64("eps", 10, "tolerance epsilon, metres")
		w         = flag.Int64("w", 100, "sliding window length, timestamps")
		epoch     = flag.Int64("epoch", 10, "epoch length, timestamps")
		duration  = flag.Int64("duration", 250, "simulation length, timestamps")
		k         = flag.Int("k", 10, "top-k hottest paths to report")
		agility   = flag.Float64("agility", 0.1, "fraction of objects moving per timestamp")
		step      = flag.Float64("step", 10, "displacement per move, metres")
		errAmp    = flag.Float64("err", 1, "positional noise amplitude, metres")
		seed      = flag.Int64("seed", 1, "random seed")
		netFile   = flag.String("net", "", "road network file (default: generate Athens-like)")
		traceIn   = flag.String("trace", "", "replay a recorded measurement trace instead of simulating")
		useEng    = flag.Bool("engine", false, "replay through the concurrent Engine instead of the System")
		jsonOut   = flag.Bool("json", false, "print replay results as canonical PathJSON")
		watch     = flag.Bool("watch", false, "with -trace: print one subscription delta line per epoch while replaying")
		walRecord = flag.String("wal-record", "", "journal the trace replay into this write-ahead log directory")
		walReplay = flag.String("wal-replay", "", "reconstruct state offline from a write-ahead log directory and print the top-k")
		walTail   = flag.String("wal-tail", "", "stream a journal directory or a primary's base URL as human-readable records until interrupted")
		tailFrom  = flag.Uint64("from", 0, "with -wal-tail: start at this LSN")
		iid       = flag.Bool("iid", false, "use the literal i.i.d. agility model instead of traffic lights")
		runDP     = flag.Bool("dp", false, "also run the DP benchmark")
		quiet     = flag.Bool("quiet", false, "suppress per-epoch rows")
		logFmt    = flag.String("log-format", "text", "diagnostic log format: text or json (results stay on stdout)")
	)
	flag.Parse()

	if err := tracing.SetupSlog(*logFmt, "hotpaths"); err != nil {
		fmt.Fprintln(os.Stderr, "hotpaths:", err)
		os.Exit(1)
	}

	if *walTail != "" {
		if err := tailWAL(*walTail, *tailFrom); err != nil {
			fatal(err)
		}
		return
	}
	if *walReplay != "" {
		if err := replayWAL(*walReplay, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *traceIn != "" {
		if err := replayTrace(*traceIn, *eps, *w, *epoch, *k, *useEng, *jsonOut, *watch, *walRecord); err != nil {
			fatal(err)
		}
		return
	}
	if *walRecord != "" {
		fatal(fmt.Errorf("-wal-record requires -trace"))
	}
	if *watch {
		fatal(fmt.Errorf("-watch requires -trace"))
	}

	net, err := loadNetwork(*netFile, *seed)
	if err != nil {
		fatal(err)
	}
	model := workload.Bursty
	if *iid {
		model = workload.IID
	}
	cfg := simulation.Config{
		Net:      net,
		Model:    model,
		N:        *n,
		Eps:      *eps,
		Err:      *errAmp,
		Agility:  *agility,
		Step:     *step,
		W:        trajectory.Time(*w),
		Epoch:    trajectory.Time(*epoch),
		Duration: trajectory.Time(*duration),
		K:        *k,
		Seed:     *seed,
		RunDP:    *runDP,
		DPPolicy: dp.NOPW,
	}
	res, err := simulation.Run(cfg)
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		var tb stats.Table
		if *runDP {
			tb.AddRow("epoch", "t", "reports", "index", "score", "time-ms", "dp-index", "dp-score")
		} else {
			tb.AddRow("epoch", "t", "reports", "index", "score", "time-ms")
		}
		for _, e := range res.PerEpoch {
			cells := []string{
				fmt.Sprintf("%d", e.Epoch),
				fmt.Sprintf("%d", e.Now),
				fmt.Sprintf("%d", e.Reports),
				fmt.Sprintf("%d", e.IndexSize),
				fmt.Sprintf("%.0f", e.TopKScore),
				fmt.Sprintf("%.3f", float64(e.ProcTime.Microseconds())/1000),
			}
			if *runDP {
				cells = append(cells,
					fmt.Sprintf("%d", e.DPIndexSize),
					fmt.Sprintf("%.0f", e.DPTopKScore))
			}
			tb.AddRow(cells...)
		}
		tb.WriteTo(os.Stdout)
		fmt.Println()
	}

	fmt.Printf("averages per epoch: index=%.0f score=%.0f time=%v\n",
		res.AvgIndexSize, res.AvgTopKScore, res.AvgProcTime)
	if *runDP {
		fmt.Printf("DP benchmark:       index=%.0f score=%.0f\n",
			res.AvgDPIndexSize, res.AvgDPTopKScore)
	}
	fmt.Printf("communication: %d measurements -> %d state messages (%.1fx byte compression)\n",
		res.Comm.Measurements, res.Comm.UpMessages, res.CompressionRatio())

	fmt.Printf("\ntop-%d hottest motion paths:\n", *k)
	var tb stats.Table
	tb.AddRow("id", "hotness", "length-m", "score", "from", "to")
	for _, hp := range res.TopK {
		tb.AddRow(
			fmt.Sprintf("%d", hp.Path.ID),
			fmt.Sprintf("%d", hp.Hotness),
			fmt.Sprintf("%.0f", hp.Path.Length()),
			fmt.Sprintf("%.0f", hp.Score()),
			hp.Path.S.String(),
			hp.Path.E.String(),
		)
	}
	tb.WriteTo(os.Stdout)
}

// tailWAL streams a journal — a directory, or a primary's /wal/stream
// feed when the target is an http(s) URL — printing one line per record
// until interrupted. It is the debugging view of replication: what a
// follower would apply, in the order it would apply it.
func tailWAL(target string, from uint64) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	printRec := func(lsn uint64, r wal.Record) {
		switch r.Kind {
		case wal.KindObserve:
			if r.SigmaX != 0 || r.SigmaY != 0 {
				fmt.Printf("lsn=%-8d observe  object=%-6d t=%-8d x=%.3f y=%.3f sigma=(%g,%g)\n",
					lsn, r.ObjectID, r.T, r.X, r.Y, r.SigmaX, r.SigmaY)
				return
			}
			fmt.Printf("lsn=%-8d observe  object=%-6d t=%-8d x=%.3f y=%.3f\n", lsn, r.ObjectID, r.T, r.X, r.Y)
		case wal.KindTick:
			fmt.Printf("lsn=%-8d tick     t=%d\n", lsn, r.T)
		default:
			fmt.Printf("lsn=%-8d kind=%d (unknown)\n", lsn, r.Kind)
		}
	}

	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		c := &replication.Client{Base: target}
		for ctx.Err() == nil {
			err := c.Stream(ctx, from,
				func(lsn uint64, r wal.Record) error {
					printRec(lsn, r)
					from = lsn + 1
					return nil
				},
				func(st replication.Status) {
					fmt.Printf("# heartbeat: primary lsn=%d epoch=%d clock=%d (lag %d records)\n",
						st.NextLSN, st.Epoch, st.Clock, st.NextLSN-from)
				})
			if ctx.Err() != nil {
				return nil
			}
			if errors.Is(err, replication.ErrSnapshotNeeded) {
				lsn, _, cerr := c.Checkpoint(ctx)
				if cerr != nil {
					return fmt.Errorf("records at LSN %d are truncated and no checkpoint is readable: %w", from, cerr)
				}
				fmt.Printf("# records [%d, %d) truncated by a primary checkpoint; skipping ahead\n", from, lsn)
				from = lsn
				continue
			}
			fmt.Printf("# stream dropped (%v); reconnecting from lsn=%d\n", err, from)
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(time.Second):
			}
		}
		return nil
	}

	tl := wal.Follow(target, from)
	defer tl.Close()
	for ctx.Err() == nil {
		frames, lsn, n, err := tl.ReadBatch(0)
		var te *wal.TruncatedError
		if errors.As(err, &te) {
			fmt.Printf("# records [%d, %d) truncated by a checkpoint; skipping ahead\n", te.From, te.Oldest)
			tl.Close()
			tl = wal.Follow(target, te.Oldest)
			continue
		}
		if err != nil {
			return err
		}
		off := 0
		for i := 0; i < n; i++ {
			r, consumed, derr := wal.DecodeRecord(frames[off:])
			if derr != nil {
				return fmt.Errorf("decode frame at LSN %d: %w", lsn+uint64(i), derr)
			}
			printRec(lsn+uint64(i), r)
			off += consumed
		}
		if n == 0 {
			select {
			case <-ctx.Done():
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
	return nil
}

// replayWAL reconstructs the state journaled in a write-ahead log
// directory — checkpoint plus WAL tail — and prints the top-k it held.
// The directory's meta file carries the configuration, so no workload
// flags apply.
func replayWAL(dir string, jsonOut bool) error {
	src, err := hotpaths.Recover(dir)
	if err != nil {
		return err
	}
	return printReplay(src.Snapshot(), jsonOut)
}

// replayTrace feeds a recorded trace through the public API and prints the
// resulting top-k. The loop is written against hotpaths.Source, so the
// System and Engine deployments replay identically. A non-empty walRecord
// journals the stream to that directory as it replays.
func replayTrace(path string, eps float64, w, epoch int64, k int, useEngine, jsonOut, watch bool, walRecord string) (retErr error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	// The trace's extent is unknown upfront; scan once for bounds, then
	// replay. Traces are files, so two passes are fine.
	recs, err := trace.ReadAll(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("trace %s is empty", path)
	}
	lo, hi := recs[0].TP.P, recs[0].TP.P
	for _, r := range recs[1:] {
		lo = lo.Min(r.TP.P)
		hi = hi.Max(r.TP.P)
	}
	cfg := hotpaths.Config{
		Eps:    eps,
		W:      w,
		Epoch:  epoch,
		K:      k,
		Bounds: hotpaths.Rect{Min: hotpaths.Pt(lo.X-eps, lo.Y-eps), Max: hotpaths.Pt(hi.X+eps, hi.Y+eps)},
	}
	var src hotpaths.Source
	switch {
	case walRecord != "":
		// Journal while replaying. The whole journal is kept (automatic
		// checkpoints off) so the directory doubles as a portable binary
		// trace; fsync once at Close rather than on a timer — this is a
		// bulk load, not a live ingest.
		dur, err := hotpaths.OpenDurable(walRecord, hotpaths.DurableConfig{
			Config:          cfg,
			Concurrent:      useEngine,
			FsyncInterval:   -1,
			CheckpointEvery: -1,
		})
		if err != nil {
			return err
		}
		// With the fsync ticker off, Close performs the capture's only
		// flush+fsync — swallowing its error would print a top-k while
		// leaving a truncated journal behind.
		defer func() {
			if cerr := dur.Close(); cerr != nil && retErr == nil {
				retErr = fmt.Errorf("close wal capture: %w", cerr)
			}
		}()
		src = dur
	case useEngine:
		eng, err := hotpaths.NewEngine(hotpaths.EngineConfig{Config: cfg})
		if err != nil {
			return err
		}
		defer eng.Close()
		src = eng
	default:
		sys, err := hotpaths.New(cfg)
		if err != nil {
			return err
		}
		src = sys
	}
	// -watch: a standing top-k query rides along with the replay, printing
	// the per-epoch deltas a live monitoring client would see. The printer
	// runs on its own goroutine — exactly the consumption model of the
	// daemon's SSE handler — and drains before the final table prints.
	var (
		watchSub  *hotpaths.Subscription
		watchDone chan struct{}
	)
	if watch {
		sub, err := src.Subscribe(hotpaths.Query{}.K(k))
		if err != nil {
			return err
		}
		watchSub = sub
		watchDone = make(chan struct{})
		go func() {
			defer close(watchDone)
			for d := range sub.Deltas() {
				if d.Empty() && !d.Reset {
					continue
				}
				tag := ""
				if d.Reset {
					tag = "  [reset]"
				}
				fmt.Printf("watch: t=%-6d epoch=%-4d +%d entered  ~%d changed  -%d left  missed=%d%s\n",
					d.Clock, d.Epoch, len(d.Entered), len(d.Changed), len(d.Left), d.Missed, tag)
			}
		}()
	}

	// Walk every timestamp so epochs fire on schedule even through silent
	// stretches; records are time-ordered, so a single cursor suffices.
	endT := int64(recs[len(recs)-1].TP.T)
	i := 0
	for t := int64(1); t <= endT; t++ {
		for i < len(recs) && int64(recs[i].TP.T) == t {
			r := recs[i]
			if err := src.Observe(r.ObjectID, r.TP.P.X, r.TP.P.Y, t); err != nil {
				return err
			}
			i++
		}
		if err := src.Tick(t); err != nil {
			return err
		}
	}

	if watchSub != nil {
		// Detach the watcher; buffered deltas stay readable after Close,
		// so the printer drains them before the final table prints.
		watchSub.Close()
		<-watchDone
	}

	// One snapshot answers every read consistently.
	return printReplay(src.Snapshot(), jsonOut)
}

// printReplay prints a replay's final state: the canonical PathJSON
// wire form with -json, a summary plus top-k table otherwise.
func printReplay(snap hotpaths.Snapshot, jsonOut bool) error {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(hotpaths.PathsJSON(snap.TopK()))
	}
	st := snap.Stats()
	fmt.Printf("replayed %d measurements: %d reports, %d paths live\n",
		st.Observations, st.Reports, st.IndexSize)
	top := snap.TopK()
	fmt.Printf("\ntop-%d hottest motion paths:\n", len(top))
	var tb stats.Table
	tb.AddRow("id", "hotness", "length-m", "score")
	for _, hp := range top {
		tb.AddRow(
			fmt.Sprintf("%d", hp.ID),
			fmt.Sprintf("%d", hp.Hotness),
			fmt.Sprintf("%.0f", hp.Length()),
			fmt.Sprintf("%.0f", hp.Score()),
		)
	}
	tb.WriteTo(os.Stdout)
	return nil
}

func loadNetwork(path string, seed int64) (*roadnet.Network, error) {
	if path == "" {
		return roadnet.GenerateAthens(seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return roadnet.Read(f)
}

func fatal(err error) {
	slog.Error("run failed", "error", err)
	os.Exit(1)
}

package replication

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff produces exponentially growing, jittered reconnect delays.
//
// The jitter is the point: every follower of a partition reconnects when
// its primary restarts, and deterministic exponential backoff keeps the
// whole follower set in lockstep — each retry wave arrives as one
// synchronized stampede exactly when the primary is trying to come back
// up. Equal jitter (half fixed, half uniform-random) breaks the wave up
// while keeping the delay within [d/2, d) of the nominal value d, so the
// worst-case reconnect latency bound survives.
//
// Backoff is safe for use from one goroutine (the applier loop owns it);
// the shared process-wide RNG behind it is locked internally.
type Backoff struct {
	// Min is the first nominal delay; Max caps the growth. Both must be
	// positive with Min <= Max.
	Min, Max time.Duration

	cur time.Duration
}

// rngMu guards the package RNG: backoffs are per-follower but followers
// share a process.
var (
	rngMu sync.Mutex
	rng   = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// Next returns the next delay: half the current nominal value plus a
// uniformly random share of the other half, then doubles the nominal
// value (capped at Max) for the call after.
func (b *Backoff) Next() time.Duration {
	if b.cur <= 0 {
		b.cur = b.Min
	}
	d := b.cur
	if b.cur *= 2; b.cur > b.Max {
		b.cur = b.Max
	}
	half := d / 2
	rngMu.Lock()
	j := time.Duration(rng.Int63n(int64(half) + 1))
	rngMu.Unlock()
	return half + j
}

// Reset restores the nominal delay to Min; call it after a healthy
// connection so one blip does not inherit a maxed-out delay.
func (b *Backoff) Reset() { b.cur = 0 }

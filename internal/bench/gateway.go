package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"hotpaths"
	"hotpaths/internal/gateway"
	"hotpaths/internal/partition"
)

// The gateway benches answer the scaling question the partitioned
// deployment poses: what does putting a scatter-gather hop in front of
// the fleet cost a reader? primary_topk is the baseline — one HTTP /topk
// against a single snapshot-backed server; gateway_scatter_topk is the
// steady-state gateway (merged view cached between writes, the common
// case because all writes flow through the gateway); and
// gateway_scatter_merge forces the cache cold every iteration, pricing
// the full 4-partition fan-out + epoch-aligned merge a reader pays right
// after a write. The acceptance bar: steady-state gateway /topk within
// 2x of primary_topk.

const benchGatewayPartitions = 4

// benchPrimaryHandler is a minimal single-primary /topk: hotpathsd's
// response shape (query the snapshot, encode PathsJSON, stamp the epoch
// header) without dragging package main into the library.
func benchPrimaryHandler(snap hotpaths.Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /topk", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(hotpaths.EpochHeader, strconv.FormatInt(snap.Epoch(), 10))
		w.Header().Set(hotpaths.ClockHeader, strconv.FormatInt(snap.Clock(), 10))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(hotpaths.PathsJSON(snap.Query(hotpaths.Query{}.K(10))))
	})
	return mux
}

// benchPartitionHandler is the slice of the hotpathsd surface the gateway
// consumes: /paths with the epoch header, /tick, and the probe endpoints.
func benchPartitionHandler(id int, paths []hotpaths.PathJSON) http.Handler {
	body, err := json.Marshal(paths)
	if err != nil {
		panic(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /paths", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(hotpaths.EpochHeader, "1")
		w.Header().Set(hotpaths.ClockHeader, "10")
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("POST /tick", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, `{"now": 10}`)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"partition_id": %d, "partition_count": %d, "epoch": 1, "clock": 10}`,
			id, benchGatewayPartitions)
	})
	return mux
}

// benchFleet splits the standard 10k-path snapshot workload across 4
// partition servers and fronts them with a gateway. close tears the
// whole assembly down.
func benchFleet() (gw *httptest.Server, close func(), err error) {
	all := hotpaths.PathsJSON(benchSnapshot(10_000).Query(hotpaths.Query{}))
	shares := make([][]hotpaths.PathJSON, benchGatewayPartitions)
	for _, p := range all {
		i := partition.Index(int(p.ID), benchGatewayPartitions)
		shares[i] = append(shares[i], p)
	}
	var closers []func()
	closeAll := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	urls := make([]string, benchGatewayPartitions)
	for i := range urls {
		srv := httptest.NewServer(benchPartitionHandler(i, shares[i]))
		closers = append(closers, srv.Close)
		urls[i] = srv.URL
	}
	g, err := gateway.New(gateway.Config{
		Table:         partition.NewTable(urls...),
		K:             10,
		ProbeInterval: -1,
	})
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	closers = append(closers, g.Close)
	gw = httptest.NewServer(g.Handler())
	closers = append(closers, gw.Close)
	return gw, closeAll, nil
}

// benchGet fetches url and fails on anything but a drained 200.
func benchGet(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || n == 0 {
		return fmt.Errorf("GET %s: status %d, %d bytes", url, resp.StatusCode, n)
	}
	return nil
}

func gatewayCases() []benchCase {
	return []benchCase{
		{"primary_topk", 0, func(b *testing.B) error {
			srv := httptest.NewServer(benchPrimaryHandler(benchSnapshot(10_000)))
			defer srv.Close()
			client := srv.Client()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := benchGet(client, srv.URL+"/topk"); err != nil {
					return err
				}
			}
			return nil
		}},

		{"gateway_scatter_topk", 0, func(b *testing.B) error {
			gw, closeAll, err := benchFleet()
			if err != nil {
				return err
			}
			defer closeAll()
			client := gw.Client()
			// Warm the merged-view cache: steady state is what a reader
			// sees between writes.
			if err := benchGet(client, gw.URL+"/topk"); err != nil {
				return err
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := benchGet(client, gw.URL+"/topk"); err != nil {
					return err
				}
			}
			return nil
		}},

		{"gateway_scatter_merge", 0, func(b *testing.B) error {
			gw, closeAll, err := benchFleet()
			if err != nil {
				return err
			}
			defer closeAll()
			client := gw.Client()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A routed write invalidates the merged view, so each
				// read pays the full scatter + merge.
				b.StopTimer()
				resp, err := client.Post(gw.URL+"/tick", "application/json",
					bytes.NewReader([]byte(`{"now": 10}`)))
				if err != nil {
					return err
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				b.StartTimer()
				if err := benchGet(client, gw.URL+"/topk"); err != nil {
					return err
				}
			}
			return nil
		}},
	}
}

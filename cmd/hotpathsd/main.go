// Command hotpathsd serves on-line hot motion path discovery over
// HTTP/JSON, backed by the concurrent sharded hotpaths.Engine.
//
// Usage:
//
//	hotpathsd [-addr :8080] [-eps 10] [-delta 0] [-w 100] [-epoch 10]
//	          [-k 10] [-shards 0] [-buffer 256] [-grid 64]
//	          [-bounds 0,0,16000,16000] [-snapshot paths.geojson]
//
// Endpoints:
//
//	POST /observe        {"observations":[{"object":1,"x":10,"y":20,"t":3}], "tick":3}
//	POST /tick           {"now": 4}
//	GET  /topk           top-k hottest paths as JSON (k defaults to -k)
//	GET  /paths          every live path as JSON
//	GET  /paths.geojson  live paths as a GeoJSON FeatureCollection
//	GET  /stats          ingestion and coordinator counters
//	GET  /healthz        liveness probe
//
// The three read endpoints answer from one consistent engine snapshot per
// request and share the query parameters
//
//	k=10 | limit=10                   cap the result (k defaults to -k on /topk)
//	min_hotness=3                     only paths with hotness >= 3
//	bbox=minx,miny,maxx,maxy          only paths ending inside the box
//	sort=hotness|score                rank by hotness (default) or hotness×length
//
// Time is logical and client-driven: producers POST observation batches
// for a timestamp, then advance the clock (inline via "tick", or from a
// single place via POST /tick). On SIGINT/SIGTERM the daemon stops
// accepting requests, drains the ingestion shards, and — with -snapshot —
// writes the final hot paths as GeoJSON before exiting. The snapshot
// reflects the last processed epoch: reports raised after it are not
// included (as with hotpaths.System, epochs only fire on ticks), so
// clients wanting a complete snapshot should POST a final epoch-crossing
// /tick before stopping the daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hotpaths"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		eps      = flag.Float64("eps", 10, "tolerance epsilon, metres")
		delta    = flag.Float64("delta", 0, "uncertainty delta; 0 disables the (eps,delta) model")
		w        = flag.Int64("w", 100, "sliding window length, timestamps")
		epoch    = flag.Int64("epoch", 10, "epoch length, timestamps")
		k        = flag.Int("k", 10, "top-k hottest paths to report")
		shards   = flag.Int("shards", 0, "filter shards (0 = GOMAXPROCS)")
		buffer   = flag.Int("buffer", 256, "per-shard ingestion queue capacity")
		grid     = flag.Int("grid", 64, "coordinator grid resolution (grid x grid cells)")
		bounds   = flag.String("bounds", "0,0,16000,16000", "monitored region: minx,miny,maxx,maxy")
		snapshot = flag.String("snapshot", "", "write final paths as GeoJSON here on shutdown")
	)
	flag.Parse()

	rect, err := parseBounds(*bounds)
	if err != nil {
		fatal(err)
	}
	eng, err := hotpaths.NewEngine(hotpaths.EngineConfig{
		Config: hotpaths.Config{
			Eps:      *eps,
			Delta:    *delta,
			W:        *w,
			Epoch:    *epoch,
			K:        *k,
			Bounds:   rect,
			GridCols: *grid,
			GridRows: *grid,
		},
		Shards: *shards,
		Buffer: *buffer,
	})
	if err != nil {
		fatal(err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(eng).handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logf("listening on %s (%d shards, eps=%g, w=%d, epoch=%d)",
		*addr, eng.Shards(), *eps, *w, *epoch)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish in-flight requests, then
	// drain the ingestion shards and snapshot the final state.
	logf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logf("http shutdown: %v", err)
	}
	if err := eng.Close(); err != nil {
		logf("engine drain: %v", err)
	}
	if *snapshot != "" {
		if err := writeSnapshot(*snapshot, eng); err != nil {
			logf("snapshot: %v", err)
		} else {
			logf("snapshot written to %s", *snapshot)
		}
	}
	st := eng.Stats()
	logf("final: %d observations, %d reports, %d live paths",
		st.Observations, st.Reports, st.IndexSize)
}

// writeSnapshot dumps every live path as GeoJSON, using the same encoding
// as GET /paths.geojson.
func writeSnapshot(path string, eng *hotpaths.Engine) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := eng.WriteGeoJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseBounds(s string) (hotpaths.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return hotpaths.Rect{}, fmt.Errorf("bounds must be minx,miny,maxx,maxy, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return hotpaths.Rect{}, fmt.Errorf("bounds component %q: %w", p, err)
		}
		vals[i] = v
	}
	return hotpaths.Rect{
		Min: hotpaths.Pt(vals[0], vals[1]),
		Max: hotpaths.Pt(vals[2], vals[3]),
	}, nil
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hotpathsd: "+format+"\n", args...)
}

func fatal(err error) {
	logf("%v", err)
	os.Exit(1)
}

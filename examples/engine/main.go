// Engine quickstart: feed observations from multiple producer goroutines
// into the concurrent sharded hotpaths.Engine and read back the hottest
// motion paths.
//
// Sixty-four commuters drive the same two-leg route (east, then north)
// with small lateral offsets and staggered departures. Each timestamp,
// four producer goroutines push their partition of the fleet concurrently
// — the shape of a network ingest tier — then a single clock goroutine
// ticks the engine. The discovered paths are identical to what a
// single-threaded System would find on the same stream.
//
// Run with: go run ./examples/engine
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"

	"hotpaths"
)

func main() {
	eng, err := hotpaths.NewEngine(hotpaths.EngineConfig{
		Config: hotpaths.Config{
			Eps:    15,  // metres: how much trajectories may deviate and still share a path
			W:      300, // timestamps: crossings older than this stop counting
			Epoch:  10,  // coordinator cadence
			K:      5,   // how many hot paths to report
			Bounds: hotpaths.Rect{Min: hotpaths.Pt(-100, -100), Max: hotpaths.Pt(2000, 2000)},
		},
		Shards: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	rng := rand.New(rand.NewSource(42))
	const (
		commuters = 64
		producers = 4
		legLen    = 100 // steps per leg
		speed     = 8.0 // metres per step
		horizon   = 300
	)
	depart := make([]int64, commuters)
	offset := make([]float64, commuters)
	for i := range depart {
		depart[i] = int64(rng.Intn(40))
		offset[i] = rng.Float64()*10 - 5
	}
	// Position of commuter i at step s: east leg, north leg, then parked at
	// the destination (the stop is a velocity change the safe area cannot
	// absorb, which flushes the final leg).
	pos := func(i int, s int64) (x, y float64) {
		switch {
		case s <= legLen:
			return float64(s) * speed, offset[i]
		case s <= 2*legLen:
			return legLen * speed, offset[i] + float64(s-legLen)*speed
		default:
			return legLen * speed, offset[i] + legLen*speed
		}
	}

	for now := int64(1); now <= horizon; now++ {
		// Each producer owns a fixed partition of the fleet, so per-object
		// timestamp order is preserved without extra coordination.
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				var batch []hotpaths.Observation
				for i := p; i < commuters; i += producers {
					s := now - depart[i]
					if s < 1 || s > 2*legLen+30 {
						continue // not on the road yet / phone gone quiet after arrival
					}
					x, y := pos(i, s)
					batch = append(batch, hotpaths.Observation{ObjectID: i, X: x, Y: y, T: now})
				}
				if err := eng.ObserveBatch(batch); err != nil {
					log.Fatal(err)
				}
			}(p)
		}
		wg.Wait()
		if err := eng.Tick(now); err != nil {
			log.Fatal(err)
		}
	}

	// Snapshot captures paths, counters and clock at one consistent point
	// under the engine lock; it is safe to query from any goroutine while
	// producers keep ingesting.
	snap := eng.Snapshot()
	st := snap.Stats()
	fmt.Printf("ingested %d observations over %d shards: %d reports, %d paths live\n",
		st.Observations, eng.Shards(), st.Reports, st.IndexSize)
	fmt.Println("hottest motion paths:")
	for _, hp := range snap.TopK() {
		fmt.Printf("  #%d  hotness %d  length %.0fm  (%.0f,%.0f) -> (%.0f,%.0f)\n",
			hp.ID, hp.Hotness, hp.Length(),
			hp.Start.X, hp.Start.Y, hp.End.X, hp.End.Y)
	}
}

// Replication quickstart: a two-node topology in one process — a primary
// that journals a commuter flow and serves its write-ahead log, and a
// read-only follower that attaches MID-STREAM, bootstraps from the
// primary's checkpoint, tails the log, and converges to the exact same
// top-k.
//
// The wire protocol is the real one (HTTP chunked WAL frames, the same
// endpoints hotpathsd serves with -wal and consumes with -follow); only
// the network is loopback. A production topology is the same picture with
// more machines:
//
//	writers ──> hotpathsd -wal /var/lib/hotpaths   (primary: all writes)
//	              │ GET /wal/stream
//	      ┌───────┼────────────┐
//	      ▼       ▼            ▼
//	  hotpathsd -follow ...  (followers: /topk /paths /watch, 403 writes)
//
// Run with: go run ./examples/replication
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"hotpaths"
)

func main() {
	dir := filepath.Join(os.TempDir(), "hotpaths-replication-example")
	if err := os.RemoveAll(dir); err != nil {
		log.Fatal(err)
	}

	// The primary: a durable deployment whose journal doubles as the
	// replication log. Fast group commit so the follower's lag stays low.
	dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
		Config: hotpaths.Config{
			Eps:    10,
			W:      120,
			Epoch:  10,
			K:      5,
			Bounds: hotpaths.Rect{Min: hotpaths.Pt(-100, -100), Max: hotpaths.Pt(2000, 400)},
		},
		Concurrent:    true,
		FsyncInterval: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dur.Close()

	// Serve the replication feed — hotpathsd mounts exactly this when run
	// with -wal; here it rides a loopback test server.
	mux := http.NewServeMux()
	mux.Handle("/wal/", hotpaths.NewReplicationFeed(dur, nil))
	primary := httptest.NewServer(mux)
	defer primary.Close()

	// Commuters stream along two avenues; lane offsets keep them within
	// Eps of each other so shared paths heat up.
	rng := rand.New(rand.NewSource(11))
	const commuters, horizon = 40, 300
	offset := make([]float64, commuters)
	for i := range offset {
		offset[i] = rng.Float64()*6 - 3
	}
	feed := func(from, to int64) {
		for now := from; now <= to; now++ {
			var batch []hotpaths.Observation
			for i := 0; i < commuters; i++ {
				s := (now + int64(i)*7) % 150
				avenue := float64(i%2) * 250
				batch = append(batch, hotpaths.Observation{
					ObjectID: i, X: float64(s) * 8, Y: avenue + offset[i], T: now,
				})
			}
			if err := dur.ObserveBatch(batch); err != nil {
				log.Fatal(err)
			}
			if err := dur.Tick(now); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Half the workload happens before the follower exists; a checkpoint
	// in between gives the late joiner a bootstrap that skips most of the
	// replay.
	feed(1, horizon/2)
	if _, err := dur.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// The follower attaches mid-stream: checkpoint restore + WAL tail.
	fol, err := hotpaths.OpenFollower(primary.URL, hotpaths.FollowerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer fol.Close()
	rs := fol.Replication()
	fmt.Printf("follower attached mid-stream: bootstrapped at lsn %d (%d checkpoint restore)\n",
		rs.AppliedLSN, rs.Bootstraps)

	// Writes belong on the primary; the follower says so.
	if err := fol.Observe(0, 1, 2, 3); err != nil {
		fmt.Printf("follower rejects writes: %v\n", err)
	}

	// Second half of the workload, with the follower tailing live.
	feed(horizon/2+1, horizon)

	// Wait until the follower has applied everything the primary wrote,
	// then both must answer the standing question — "what are the hottest
	// paths right now?" — identically, byte for byte.
	for fol.Replication().AppliedLSN < dur.NextLSN() {
		time.Sleep(2 * time.Millisecond)
	}
	ptop, ftop := dur.Snapshot().TopK(), fol.Snapshot().TopK()
	if !reflect.DeepEqual(ptop, ftop) {
		log.Fatalf("follower diverged:\nprimary:  %v\nfollower: %v", ptop, ftop)
	}
	rs = fol.Replication()
	fmt.Printf("caught up: applied %d records, lag %d, epoch %d (primary epoch %d)\n",
		rs.AppliedLSN, rs.LagRecords, rs.AppliedEpoch, rs.PrimaryEpoch)
	fmt.Println("top paths, identical on both nodes:")
	for i, hp := range ptop {
		fmt.Printf("  primary #%d hotness %d length %.0fm   == follower #%d hotness %d length %.0fm\n",
			hp.ID, hp.Hotness, hp.Length(), ftop[i].ID, ftop[i].Hotness, ftop[i].Length())
	}
}

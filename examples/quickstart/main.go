// Quickstart: feed a stream of object positions into a hotpaths.System and
// read back the hottest motion paths.
//
// Thirty commuters drive the same two-leg route (east, then north) with
// small lateral offsets and staggered departures; the system consolidates
// their trajectories into a handful of shared motion paths whose hotness
// counts the commuters that crossed them within the sliding window.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hotpaths"
)

func main() {
	sys, err := hotpaths.New(hotpaths.Config{
		Eps:    15,  // metres: how much trajectories may deviate and still share a path
		W:      300, // timestamps: crossings older than this stop counting
		Epoch:  10,  // coordinator cadence
		K:      5,   // how many hot paths to report
		Bounds: hotpaths.Rect{Min: hotpaths.Pt(-100, -100), Max: hotpaths.Pt(2000, 2000)},
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	const (
		commuters = 30
		legLen    = 100 // steps per leg
		speed     = 8.0 // metres per step
	)
	depart := make([]int64, commuters)
	offset := make([]float64, commuters)
	for i := range depart {
		depart[i] = int64(rng.Intn(40))
		offset[i] = rng.Float64()*10 - 5
	}

	for now := int64(1); now <= 300; now++ {
		for id := 0; id < commuters; id++ {
			step := now - depart[id]
			if step < 1 || step > 2*legLen+30 {
				continue // not on the road yet / phone gone quiet after arrival
			}
			var x, y float64
			switch {
			case step <= legLen:
				x, y = float64(step)*speed, offset[id] // east leg
			case step <= 2*legLen:
				x, y = float64(legLen)*speed, offset[id]+float64(step-legLen)*speed // north leg
			default:
				// Parked at the destination; the stop is a velocity change the
				// safe area cannot absorb, which flushes the final leg.
				x, y = float64(legLen)*speed, offset[id]+float64(legLen)*speed
			}
			// A metre of GPS jitter.
			x += rng.Float64()*2 - 1
			y += rng.Float64()*2 - 1
			if err := sys.Observe(id, x, y, now); err != nil {
				log.Fatal(err)
			}
		}
		if err := sys.Tick(now); err != nil {
			log.Fatal(err)
		}
	}

	// One immutable snapshot answers every read from the same instant —
	// counters, top-k and spatial queries can never disagree.
	snap := sys.Snapshot()
	st := snap.Stats()
	fmt.Printf("observations: %d, reports to coordinator: %d (%.1f%% suppressed by RayTrace)\n",
		st.Observations, st.Reports,
		100*(1-float64(st.Reports)/float64(st.Observations)))
	fmt.Printf("motion paths stored: %d\n\n", snap.Len())

	fmt.Println("top hot motion paths (hotness = commuters crossing within the window):")
	for i, hp := range snap.TopK() {
		fmt.Printf("%d. (%.0f,%.0f) -> (%.0f,%.0f)  hotness=%d  length=%.0fm  score=%.0f\n",
			i+1, hp.Start.X, hp.Start.Y, hp.End.X, hp.End.Y,
			hp.Hotness, hp.Length(), hp.Score())
	}

	// Composable queries select over the same snapshot: here, the busiest
	// stretches by score among the paths ending near the destination.
	dest := hotpaths.Rect{Min: hotpaths.Pt(700, 700), Max: hotpaths.Pt(900, 900)}
	busy := snap.Query(hotpaths.Query{}.
		Region(dest).
		MinHotness(2).
		SortBy(hotpaths.ByScore).
		K(3))
	fmt.Printf("\nbusiest paths ending near the destination %v:\n", dest)
	for i, hp := range busy {
		fmt.Printf("%d. (%.0f,%.0f) -> (%.0f,%.0f)  hotness=%d  score=%.0f\n",
			i+1, hp.Start.X, hp.Start.Y, hp.End.X, hp.End.Y, hp.Hotness, hp.Score())
	}
}

// Package roadnet models the road network used by the paper's workload
// generator (Section 6.1): an undirected graph whose nodes are major
// crossroads connected by straight links, classified into four weighted
// categories (motorways, highways, primary and secondary roads). Objects
// leaving a node pick an incident link with probability proportional to
// its weight, which concentrates traffic on major roads — exactly the skew
// that makes hot motion paths emerge.
//
// The paper uses the real greater-Athens network (1125 nodes, 1831 links,
// 250 km²). That data is not available, so GenerateAthens produces a
// deterministic synthetic stand-in with matching statistics: a perturbed
// grid of ~1125 nodes over a ~15.8 km square, ring plus radial motorways,
// a highway cross, several primary avenues, and secondary streets pruned
// to ~1831 links. The discovery algorithms never see the graph, so only
// these statistics matter for the experiments. Networks can also be
// serialised to and loaded from a simple text format.
package roadnet

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"hotpaths/internal/geom"
)

// Class is a road category.
type Class int

const (
	Secondary Class = iota
	Primary
	Highway
	Motorway
)

// Weight returns the link-choice weight of the class, reflecting its
// significance in vehicle circulation.
func (c Class) Weight() float64 {
	switch c {
	case Motorway:
		return 10
	case Highway:
		return 5
	case Primary:
		return 2
	default:
		return 1
	}
}

func (c Class) String() string {
	switch c {
	case Motorway:
		return "motorway"
	case Highway:
		return "highway"
	case Primary:
		return "primary"
	default:
		return "secondary"
	}
}

// ParseClass converts a class name back to a Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "motorway":
		return Motorway, nil
	case "highway":
		return Highway, nil
	case "primary":
		return Primary, nil
	case "secondary":
		return Secondary, nil
	}
	return 0, fmt.Errorf("roadnet: unknown class %q", s)
}

// Node is a crossroad.
type Node struct {
	ID int
	P  geom.Point
}

// Link is an undirected straight road between two nodes.
type Link struct {
	ID       int
	From, To int
	Class    Class
}

// Network is an undirected road graph with per-node adjacency.
type Network struct {
	Nodes []Node
	Links []Link
	adj   [][]int // node -> incident link ids
}

// Build finalises a network from nodes and links, constructing adjacency
// and validating references.
func Build(nodes []Node, links []Link) (*Network, error) {
	n := &Network{Nodes: nodes, Links: links}
	n.adj = make([][]int, len(nodes))
	for i, nd := range nodes {
		if nd.ID != i {
			return nil, fmt.Errorf("roadnet: node %d has id %d; ids must be dense indices", i, nd.ID)
		}
	}
	for i, l := range links {
		if l.ID != i {
			return nil, fmt.Errorf("roadnet: link %d has id %d; ids must be dense indices", i, l.ID)
		}
		if l.From < 0 || l.From >= len(nodes) || l.To < 0 || l.To >= len(nodes) {
			return nil, fmt.Errorf("roadnet: link %d references missing node (%d-%d)", i, l.From, l.To)
		}
		if l.From == l.To {
			return nil, fmt.Errorf("roadnet: link %d is a self-loop at node %d", i, l.From)
		}
		n.adj[l.From] = append(n.adj[l.From], i)
		n.adj[l.To] = append(n.adj[l.To], i)
	}
	return n, nil
}

// Incident returns the ids of links touching the node.
func (n *Network) Incident(node int) []int { return n.adj[node] }

// Other returns the endpoint of link l opposite to node.
func (n *Network) Other(l int, node int) int {
	lk := n.Links[l]
	if lk.From == node {
		return lk.To
	}
	return lk.From
}

// LinkLength returns the Euclidean length of link l.
func (n *Network) LinkLength(l int) float64 {
	lk := n.Links[l]
	return n.Nodes[lk.From].P.Dist(n.Nodes[lk.To].P)
}

// Bounds returns the bounding rectangle of all nodes (zero Rect if empty).
func (n *Network) Bounds() geom.Rect {
	if len(n.Nodes) == 0 {
		return geom.Rect{}
	}
	r := geom.Rect{Lo: n.Nodes[0].P, Hi: n.Nodes[0].P}
	for _, nd := range n.Nodes[1:] {
		r.Lo = r.Lo.Min(nd.P)
		r.Hi = r.Hi.Max(nd.P)
	}
	return r
}

// TotalWeight returns the sum of incident link weights at node; 0 for an
// isolated node.
func (n *Network) TotalWeight(node int) float64 {
	var sum float64
	for _, l := range n.adj[node] {
		sum += n.Links[l].Class.Weight()
	}
	return sum
}

// ClassCounts returns the number of links per class.
func (n *Network) ClassCounts() map[Class]int {
	out := make(map[Class]int)
	for _, l := range n.Links {
		out[l.Class]++
	}
	return out
}

// ConnectedComponents returns the number of connected components and the
// size of the largest one.
func (n *Network) ConnectedComponents() (count, largest int) {
	seen := make([]bool, len(n.Nodes))
	for start := range n.Nodes {
		if seen[start] {
			continue
		}
		count++
		size := 0
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, l := range n.adj[v] {
				w := n.Other(l, v)
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		if size > largest {
			largest = size
		}
	}
	return count, largest
}

// WriteTo serialises the network in a line-oriented text format:
//
//	node <id> <x> <y>
//	link <id> <from> <to> <class>
func (n *Network) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	for _, nd := range n.Nodes {
		c, err := fmt.Fprintf(bw, "node %d %g %g\n", nd.ID, nd.P.X, nd.P.Y)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	for _, l := range n.Links {
		c, err := fmt.Fprintf(bw, "link %d %d %d %s\n", l.ID, l.From, l.To, l.Class)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Read parses the text format written by WriteTo.
func Read(r io.Reader) (*Network, error) {
	var nodes []Node
	var links []Link
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 4 {
				return nil, fmt.Errorf("roadnet: line %d: want 'node id x y'", lineNo)
			}
			var id int
			var x, y float64
			if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%d %g %g", &id, &x, &y); err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", lineNo, err)
			}
			nodes = append(nodes, Node{ID: id, P: geom.Pt(x, y)})
		case "link":
			if len(fields) != 5 {
				return nil, fmt.Errorf("roadnet: line %d: want 'link id from to class'", lineNo)
			}
			var id, from, to int
			if _, err := fmt.Sscanf(strings.Join(fields[1:4], " "), "%d %d %d", &id, &from, &to); err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", lineNo, err)
			}
			cls, err := ParseClass(fields[4])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", lineNo, err)
			}
			links = append(links, Link{ID: id, From: from, To: to, Class: cls})
		default:
			return nil, fmt.Errorf("roadnet: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return Build(nodes, links)
}

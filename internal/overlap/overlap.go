// Package overlap analyses the arrangement of the final safe areas (FSAs)
// of a batch of reporting objects, supporting the Rall structure of the
// SinglePath strategy (paper Section 5.3, Algorithm 2 lines 8–12, 23–34).
//
// Two queries are provided:
//
//   - StabCount(p): how many rectangles contain p. The smallest
//     intersection region containing p is exactly the intersection of all
//     rectangles containing p, so its count equals the stabbing number —
//     this implements line 24–25 without materialising the (potentially
//     exponential) set of intersection regions.
//
//   - DeepestWithin(q): an exact maximum-depth point of the rectangle
//     arrangement restricted to q, with its depth. This implements the
//     choice of the hottest overlap region Rm (lines 27–34): the returned
//     point is the centroid of a deepest cell.
//
// A uniform spatial hash bucketises rectangles so that both queries touch
// only nearby rectangles; FSAs are small (at most one tolerance square), so
// batches of many thousands of objects stay fast.
package overlap

import (
	"fmt"
	"math"
	"sort"

	"hotpaths/internal/geom"
)

// Set is a batch of rectangles. It is built once per epoch and queried many
// times; it is not safe for concurrent mutation.
type Set struct {
	rects    []geom.Rect
	cellSize float64
	buckets  map[[2]int][]int // cell -> indices into rects
}

// NewSet creates a set with the given bucket cell size, which should be on
// the order of the typical rectangle diameter (e.g. 2ε for FSAs).
func NewSet(cellSize float64) (*Set, error) {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		return nil, fmt.Errorf("overlap: cell size must be positive and finite, got %v", cellSize)
	}
	return &Set{cellSize: cellSize, buckets: make(map[[2]int][]int)}, nil
}

// Len returns the number of rectangles in the set.
func (s *Set) Len() int { return len(s.rects) }

func (s *Set) cellRange(r geom.Rect) (c0, r0, c1, r1 int) {
	c0 = int(math.Floor(r.Lo.X / s.cellSize))
	r0 = int(math.Floor(r.Lo.Y / s.cellSize))
	c1 = int(math.Floor(r.Hi.X / s.cellSize))
	r1 = int(math.Floor(r.Hi.Y / s.cellSize))
	return
}

// Add inserts a rectangle. Invalid (empty) rectangles are ignored.
func (s *Set) Add(r geom.Rect) {
	if r.Empty() {
		return
	}
	idx := len(s.rects)
	s.rects = append(s.rects, r)
	c0, r0, c1, r1 := s.cellRange(r)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			key := [2]int{col, row}
			s.buckets[key] = append(s.buckets[key], idx)
		}
	}
}

// candidates returns indices of rectangles whose buckets overlap q,
// deduplicated.
func (s *Set) candidates(q geom.Rect) []int {
	c0, r0, c1, r1 := s.cellRange(q)
	seen := make(map[int]struct{})
	var out []int
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			for _, i := range s.buckets[[2]int{col, row}] {
				if _, dup := seen[i]; dup {
					continue
				}
				seen[i] = struct{}{}
				out = append(out, i)
			}
		}
	}
	return out
}

// StabCount returns the number of rectangles containing p (inclusive).
func (s *Set) StabCount(p geom.Point) int {
	key := [2]int{int(math.Floor(p.X / s.cellSize)), int(math.Floor(p.Y / s.cellSize))}
	n := 0
	for _, i := range s.buckets[key] {
		if s.rects[i].Contains(p) {
			n++
		}
	}
	return n
}

// Cell returns the smallest intersection region containing p — the
// intersection of every rectangle in the set that contains p — together
// with the number of such rectangles. When no rectangle contains p it
// returns an empty rect and 0.
//
// The cell is a property of the arrangement alone (not of any query
// window), so two objects whose deepest points land in the same cell
// compute the exact same rectangle — and hence the same centroid vertex.
func (s *Set) Cell(p geom.Point) (geom.Rect, int) {
	key := [2]int{int(math.Floor(p.X / s.cellSize)), int(math.Floor(p.Y / s.cellSize))}
	var cell geom.Rect
	n := 0
	for _, i := range s.buckets[key] {
		r := s.rects[i]
		if !r.Contains(p) {
			continue
		}
		if n == 0 {
			cell = r
		} else {
			cell = cell.Intersect(r)
		}
		n++
	}
	if n == 0 {
		return geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(0, 0)}, 0
	}
	return cell, n
}

// DeepestWithin returns a point inside q covered by the maximum number of
// rectangles in the set, together with that count. If no rectangle
// intersects q it returns q's centroid with count 0.
//
// The computation is exact: rectangles are clipped to q, their x
// coordinates partition q into vertical strips, and within each strip a
// 1-D sweep over y events finds the deepest interval. The returned point is
// the centroid of one deepest cell, which keeps it strictly inside the
// deepest region whenever that region has positive area.
func (s *Set) DeepestWithin(q geom.Rect) (geom.Point, int) {
	if q.Empty() {
		return geom.Point{}, 0
	}
	var clipped []geom.Rect
	for _, i := range s.candidates(q) {
		c := s.rects[i].Intersect(q)
		if !c.Empty() {
			clipped = append(clipped, c)
		}
	}
	if len(clipped) == 0 {
		return q.Centroid(), 0
	}

	// X breakpoints.
	xs := make([]float64, 0, 2*len(clipped))
	for _, c := range clipped {
		xs = append(xs, c.Lo.X, c.Hi.X)
	}
	sort.Float64s(xs)
	xs = dedup(xs)

	bestDepth := 0
	var bestPt geom.Point
	consider := func(depth int, pt geom.Point) {
		if depth > bestDepth {
			bestDepth = depth
			bestPt = pt
		}
	}

	// Examine every strip [xs[i], xs[i+1]] and every degenerate strip
	// {xs[i]} (degenerate strips matter when rectangles touch only along a
	// vertical line).
	for i := 0; i < len(xs); i++ {
		// Degenerate strip at xs[i].
		s.sweepStrip(clipped, xs[i], xs[i], consider)
		if i+1 < len(xs) {
			s.sweepStrip(clipped, xs[i], xs[i+1], consider)
		}
	}
	if bestDepth == 0 {
		return q.Centroid(), 0
	}
	return bestPt, bestDepth
}

// sweepStrip finds the deepest y interval among rectangles spanning the
// whole x strip [x0,x1] and reports (depth, centroid of deepest cell).
func (s *Set) sweepStrip(clipped []geom.Rect, x0, x1 float64, consider func(int, geom.Point)) {
	type yev struct {
		y     float64
		delta int
	}
	var evs []yev
	for _, c := range clipped {
		if c.Lo.X <= x0 && c.Hi.X >= x1 {
			evs = append(evs, yev{c.Lo.Y, +1}, yev{c.Hi.Y, -1})
		}
	}
	if len(evs) == 0 {
		return
	}
	// Sort by y; at equal y, openings (+1) before closings (−1) so that
	// rectangles touching at a single y line still count as overlapping
	// (bounds are inclusive).
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].y != evs[j].y {
			return evs[i].y < evs[j].y
		}
		return evs[i].delta > evs[j].delta
	})
	depth := 0
	xmid := (x0 + x1) / 2
	for i, e := range evs {
		depth += e.delta
		if e.delta != +1 {
			continue
		}
		// Depth holds from this y until the next event's y.
		yStart := e.y
		yEnd := yStart
		if i+1 < len(evs) {
			yEnd = evs[i+1].y
		}
		consider(depth, geom.Pt(xmid, (yStart+yEnd)/2))
	}
}

func dedup(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

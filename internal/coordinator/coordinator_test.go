package coordinator

import (
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/trajectory"
)

func testConfig() Config {
	return Config{
		Bounds: geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(1000, 1000)},
		Cols:   16,
		Rows:   16,
		W:      100,
		Eps:    10,
	}
}

func mustCoord(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func report(obj int, s geom.Point, fsa geom.Rect, ts, te trajectory.Time) Report {
	return Report{ObjectID: obj, State: raytrace.State{Start: s, Ts: ts, FSA: fsa, Te: te}}
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Eps = 0
	if _, err := New(cfg); err == nil {
		t.Error("Eps=0 must error")
	}
	cfg = testConfig()
	cfg.W = 0
	if _, err := New(cfg); err == nil {
		t.Error("W=0 must error")
	}
	cfg = testConfig()
	cfg.Bounds = geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(0, 0)}
	if _, err := New(cfg); err == nil {
		t.Error("bad bounds must error")
	}
	// Defaults fill in.
	cfg = testConfig()
	cfg.Cols, cfg.Rows = 0, 0
	if _, err := New(cfg); err != nil {
		t.Errorf("defaults should apply: %v", err)
	}
}

func TestProcessEpochValidation(t *testing.T) {
	c := mustCoord(t, testConfig())
	bad := report(1, geom.Pt(0, 0), geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(0, 0)}, 0, 5)
	if _, err := c.ProcessEpoch([]Report{bad}); err == nil {
		t.Error("empty FSA must error")
	}
	bad2 := report(1, geom.Pt(0, 0), geom.RectAround(geom.Pt(5, 5), 2), 5, 5)
	if _, err := c.ProcessEpoch([]Report{bad2}); err == nil {
		t.Error("zero-length interval must error")
	}
}

func TestCase3CreatesPath(t *testing.T) {
	c := mustCoord(t, testConfig())
	fsa := geom.RectAround(geom.Pt(100, 100), 10)
	resps, err := c.ProcessEpoch([]Report{report(1, geom.Pt(50, 50), fsa, 0, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 1 {
		t.Fatalf("got %d responses", len(resps))
	}
	r := resps[0]
	if r.Case != 3 {
		t.Errorf("case = %d want 3", r.Case)
	}
	if !fsa.Contains(r.End.P) {
		t.Errorf("endpoint %v outside FSA", r.End.P)
	}
	if r.End.T != 10 {
		t.Errorf("endpoint timestamp = %d", r.End.T)
	}
	if c.IndexSize() != 1 {
		t.Errorf("index size = %d", c.IndexSize())
	}
	if c.Hotness(r.PathID) != 1 {
		t.Errorf("hotness = %d", c.Hotness(r.PathID))
	}
	p, ok := c.Path(r.PathID)
	if !ok || !p.S.Eq(geom.Pt(50, 50)) || !p.E.Eq(r.End.P) {
		t.Errorf("stored path = %v", p)
	}
}

func TestCase1ReusesPath(t *testing.T) {
	c := mustCoord(t, testConfig())
	s := geom.Pt(50, 50)
	fsa := geom.RectAround(geom.Pt(100, 100), 10)
	first, err := c.ProcessEpoch([]Report{report(1, s, fsa, 0, 10)})
	if err != nil {
		t.Fatal(err)
	}
	// Same start, overlapping FSA containing the existing endpoint.
	second, err := c.ProcessEpoch([]Report{report(2, s, fsa, 5, 15)})
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Case != 1 {
		t.Fatalf("case = %d want 1", second[0].Case)
	}
	if second[0].PathID != first[0].PathID {
		t.Error("existing path must be reused")
	}
	if c.IndexSize() != 1 {
		t.Errorf("index size = %d want 1 (no new path)", c.IndexSize())
	}
	if c.Hotness(first[0].PathID) != 2 {
		t.Errorf("hotness = %d want 2", c.Hotness(first[0].PathID))
	}
}

func TestCase2PicksExistingVertex(t *testing.T) {
	c := mustCoord(t, testConfig())
	// Object 1 creates path (50,50)→v.
	fsa := geom.RectAround(geom.Pt(100, 100), 10)
	first, _ := c.ProcessEpoch([]Report{report(1, geom.Pt(50, 50), fsa, 0, 10)})
	v := first[0].End.P
	// Object 2 starts elsewhere but its FSA contains v: no path from its
	// start exists → Case 2, and it should adopt v as its endpoint.
	second, err := c.ProcessEpoch([]Report{report(2, geom.Pt(200, 200), fsa, 2, 12)})
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Case != 2 {
		t.Fatalf("case = %d want 2", second[0].Case)
	}
	if !second[0].End.P.Eq(v) {
		t.Errorf("endpoint %v want existing vertex %v", second[0].End.P, v)
	}
	if c.IndexSize() != 2 {
		t.Errorf("index size = %d want 2", c.IndexSize())
	}
}

func TestHotterVertexWins(t *testing.T) {
	c := mustCoord(t, testConfig())
	// Build two vertices with different hotness: v1 crossed 3 times, v2 once.
	fsa1 := geom.RectAround(geom.Pt(100, 100), 5)
	r1, _ := c.ProcessEpoch([]Report{report(1, geom.Pt(50, 50), fsa1, 0, 10)})
	c.ProcessEpoch([]Report{report(2, geom.Pt(50, 50), geom.RectAround(r1[0].End.P, 1), 1, 11)})
	c.ProcessEpoch([]Report{report(3, geom.Pt(50, 50), geom.RectAround(r1[0].End.P, 1), 2, 12)})
	fsa2 := geom.RectAround(geom.Pt(130, 100), 5)
	c.ProcessEpoch([]Report{report(4, geom.Pt(60, 60), fsa2, 0, 10)})

	// Object 5's FSA covers both vertices; it must pick the hotter v1.
	big := geom.Rect{Lo: geom.Pt(90, 90), Hi: geom.Pt(140, 110)}
	resp, err := c.ProcessEpoch([]Report{report(5, geom.Pt(300, 300), big, 5, 15)})
	if err != nil {
		t.Fatal(err)
	}
	if resp[0].Case != 2 {
		t.Fatalf("case = %d want 2", resp[0].Case)
	}
	if !resp[0].End.P.Eq(r1[0].End.P) {
		t.Errorf("picked %v want hotter vertex %v", resp[0].End.P, r1[0].End.P)
	}
}

func TestOverlapVertexSharedAcrossObjects(t *testing.T) {
	// Paper Example 2: several objects with overlapping FSAs and an empty
	// index should converge on a vertex in the common intersection.
	c := mustCoord(t, testConfig())
	fsaA := geom.Rect{Lo: geom.Pt(90, 90), Hi: geom.Pt(110, 110)}
	fsaB := geom.Rect{Lo: geom.Pt(95, 95), Hi: geom.Pt(115, 115)}
	fsaC := geom.Rect{Lo: geom.Pt(85, 98), Hi: geom.Pt(105, 118)}
	resps, err := c.ProcessEpoch([]Report{
		report(1, geom.Pt(10, 10), fsaA, 0, 10),
		report(2, geom.Pt(20, 10), fsaB, 0, 10),
		report(3, geom.Pt(10, 20), fsaC, 0, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The triple intersection is [95,105]x[98,110].
	core := geom.Rect{Lo: geom.Pt(95, 98), Hi: geom.Pt(105, 110)}
	if !core.Contains(resps[0].End.P) {
		t.Errorf("object 1 endpoint %v not in core %v", resps[0].End.P, core)
	}
	// Later objects see object 1's fresh vertex through the live index and
	// should share it exactly.
	if !resps[1].End.P.Eq(resps[0].End.P) || !resps[2].End.P.Eq(resps[0].End.P) {
		t.Errorf("objects did not converge: %v %v %v",
			resps[0].End.P, resps[1].End.P, resps[2].End.P)
	}
}

func TestAdvanceExpiresPaths(t *testing.T) {
	c := mustCoord(t, testConfig()) // W = 100
	fsa := geom.RectAround(geom.Pt(100, 100), 10)
	resp, _ := c.ProcessEpoch([]Report{report(1, geom.Pt(50, 50), fsa, 0, 10)})
	id := resp[0].PathID
	c.Advance(109)
	if c.IndexSize() != 1 {
		t.Error("path must survive until te+W")
	}
	c.Advance(110)
	if c.IndexSize() != 0 {
		t.Error("path must expire at te+W")
	}
	if c.Hotness(id) != 0 {
		t.Error("hotness must be 0 after expiry")
	}
	if c.Stats().PathsExpired != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
	// Expired vertex is gone from the grid, so a new identical report
	// re-discovers the path from scratch (Case 3) — and, because ids are
	// content-addressed, the re-discovered path carries the SAME id.
	resp2, _ := c.ProcessEpoch([]Report{report(2, geom.Pt(50, 50), fsa, 120, 130)})
	if resp2[0].PathID != id {
		t.Errorf("re-discovered identical geometry got id %d, want the content-addressed %d", resp2[0].PathID, id)
	}
	if resp2[0].Case != 3 {
		t.Errorf("case = %d want 3 after expiry", resp2[0].Case)
	}
}

func TestTopKAndScore(t *testing.T) {
	c := mustCoord(t, testConfig())
	s := geom.Pt(0, 0)
	// Path A crossed twice, path B once; both from s.
	fsaA := geom.RectAround(geom.Pt(100, 0), 5)
	rA, _ := c.ProcessEpoch([]Report{report(1, s, fsaA, 0, 10)})
	c.ProcessEpoch([]Report{report(2, s, geom.RectAround(rA[0].End.P, 1), 1, 11)})
	fsaB := geom.RectAround(geom.Pt(0, 50), 5)
	rB, _ := c.ProcessEpoch([]Report{report(3, geom.Pt(10, 300), fsaB, 0, 10)})

	top := c.TopK(10)
	if len(top) != 2 {
		t.Fatalf("TopK returned %d", len(top))
	}
	if top[0].Path.ID != rA[0].PathID || top[0].Hotness != 2 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Path.ID != rB[0].PathID || top[1].Hotness != 1 {
		t.Errorf("top[1] = %+v", top[1])
	}
	one := c.TopK(1)
	if len(one) != 1 || one[0].Path.ID != rA[0].PathID {
		t.Error("TopK(1) truncation wrong")
	}
	if got := c.Score(10); got <= 0 {
		t.Errorf("score = %v", got)
	}
	if len(c.AllPaths()) != 2 {
		t.Error("AllPaths size")
	}
	if c.Score(0) != c.Score(10) {
		t.Error("Score(0) should use all paths")
	}
}

func TestStatsCounters(t *testing.T) {
	c := mustCoord(t, testConfig())
	fsa := geom.RectAround(geom.Pt(100, 100), 10)
	c.ProcessEpoch([]Report{report(1, geom.Pt(50, 50), fsa, 0, 10)})
	c.ProcessEpoch([]Report{report(2, geom.Pt(50, 50), fsa, 1, 11)})
	st := c.Stats()
	if st.Epochs != 2 || st.Reports != 2 || st.Crossings != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Case3 != 1 || st.Case1 != 1 {
		t.Errorf("case counts = %+v", st)
	}
	if st.PathsCreated != 1 {
		t.Errorf("paths created = %d", st.PathsCreated)
	}
}

func TestSharedCandidateBoost(t *testing.T) {
	// Two objects share a start vertex and two candidate paths exist; the
	// cross-object boost (Alg. 2 lines 13–15) must not change which path is
	// hottest when both objects see the same candidates, but both must pick
	// the SAME path, concentrating hotness.
	c := mustCoord(t, testConfig())
	s := geom.Pt(0, 0)
	// Create two paths from s with distinct endpoints.
	r1, _ := c.ProcessEpoch([]Report{report(1, s, geom.RectAround(geom.Pt(100, 0), 3), 0, 10)})
	c.ProcessEpoch([]Report{report(2, s, geom.RectAround(geom.Pt(100, 30), 3), 0, 10)})
	// Make path 1 hotter.
	c.ProcessEpoch([]Report{report(3, s, geom.RectAround(r1[0].End.P, 1), 1, 11)})

	// Both objects' FSAs include both endpoints.
	big := geom.Rect{Lo: geom.Pt(90, -10), Hi: geom.Pt(110, 40)}
	resps, err := c.ProcessEpoch([]Report{
		report(4, s, big, 5, 15),
		report(5, s, big, 5, 15),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].PathID != resps[1].PathID {
		t.Error("objects with identical candidates must converge")
	}
	if resps[0].PathID != r1[0].PathID {
		t.Error("the hotter path must win")
	}
}

// Regression: two objects reporting from the SAME start vertex in the SAME
// epoch must not create duplicate s→p paths; the second selection must
// reuse the path the first one created intra-batch.
func TestIntraBatchPathReuse(t *testing.T) {
	c := mustCoord(t, testConfig())
	s := geom.Pt(50, 50)
	fsa := geom.RectAround(geom.Pt(100, 100), 10)
	resps, err := c.ProcessEpoch([]Report{
		report(1, s, fsa, 0, 10),
		report(2, s, fsa, 0, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].PathID != resps[1].PathID {
		t.Errorf("objects created distinct paths %d and %d from the same start",
			resps[0].PathID, resps[1].PathID)
	}
	if c.IndexSize() != 1 {
		t.Errorf("index size = %d want 1", c.IndexSize())
	}
	if c.Hotness(resps[0].PathID) != 2 {
		t.Errorf("hotness = %d want 2", c.Hotness(resps[0].PathID))
	}
}

// Every response endpoint must lie inside the reporting FSA — otherwise the
// RayTrace filter would reject it and the covering-set guarantee breaks.
func TestResponseAlwaysInsideFSA(t *testing.T) {
	c := mustCoord(t, testConfig())
	fsas := []geom.Rect{
		geom.RectAround(geom.Pt(100, 100), 10),
		geom.RectAround(geom.Pt(105, 95), 8),
		geom.RectAround(geom.Pt(500, 500), 3),
		{Lo: geom.Pt(98, 92), Hi: geom.Pt(112, 104)},
	}
	var reports []Report
	for i, f := range fsas {
		reports = append(reports, report(i, geom.Pt(float64(i*7), float64(i*13)), f, 0, 10))
	}
	resps, err := c.ProcessEpoch(reports)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if !fsas[i].Contains(r.End.P) {
			t.Errorf("object %d: endpoint %v outside FSA %v", i, r.End.P, fsas[i])
		}
	}
}

package flightrec

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hotpaths/internal/tracing"
)

func TestRecorderBasic(t *testing.T) {
	r := New(16)
	r.Record(EvWALRotation, KV("segment", 3))
	r.Record(EvEpochBarrier, KV("duration_us", 42), KV("changed", 7))
	evs := r.Snapshot("", time.Time{}, 0)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Type != EvWALRotation || evs[1].Type != EvEpochBarrier {
		t.Fatalf("wrong order: %q, %q", evs[0].Type, evs[1].Type)
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("wrong seqs: %d, %d", evs[0].Seq, evs[1].Seq)
	}
	if evs[1].Attrs[0].Key != "duration_us" {
		t.Fatalf("attrs not retained: %+v", evs[1].Attrs)
	}
	if got := r.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

func TestRecorderWrap(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(EvEpochBarrier, KV("i", i))
	}
	evs := r.Snapshot("", time.Time{}, 0)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want ring capacity 4", len(evs))
	}
	// Oldest retained is seq 7 (events 1..6 overwritten), newest seq 10.
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("retained seqs %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seqs not consecutive: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestRecorderFilters(t *testing.T) {
	r := New(64)
	r.Record(EvWALRotation)
	r.Record(EvEpochBarrier)
	cut := time.Now()
	r.Record(EvEpochBarrier)
	r.Record(EvWALPoisoned, KV("error", "disk gone"))

	if evs := r.Snapshot(EvEpochBarrier, time.Time{}, 0); len(evs) != 2 {
		t.Fatalf("type filter: got %d, want 2", len(evs))
	}
	if evs := r.Snapshot("", cut, 0); len(evs) != 2 {
		t.Fatalf("since filter: got %d, want 2", len(evs))
	}
	evs := r.Snapshot("", time.Time{}, 3)
	if len(evs) != 3 || evs[0].Type != EvEpochBarrier || evs[2].Type != EvWALPoisoned {
		t.Fatalf("limit filter keeps newest: %+v", evs)
	}
	if evs := r.Snapshot(EvEpochBarrier, cut, 1); len(evs) != 1 || evs[0].Seq != 3 {
		t.Fatalf("combined filters: %+v", evs)
	}
}

func TestRecorderTraceCorrelation(t *testing.T) {
	r := New(8)
	tr := tracing.New("flightrec-test", 1, 0)
	ctx, span := tr.StartRoot(context.Background(), "op")
	if span == nil {
		t.Fatal("rate-1 tracer did not sample")
	}
	r.RecordCtx(ctx, EvCheckpointStart, KV("lsn", 99))
	r.RecordCtx(context.Background(), EvCheckpointFinish)
	span.End()

	evs := r.Snapshot("", time.Time{}, 0)
	if want := span.TraceID().String(); evs[0].TraceID != want {
		t.Fatalf("trace id %q, want %q", evs[0].TraceID, want)
	}
	if evs[1].TraceID != "" {
		t.Fatalf("untraced context got trace id %q", evs[1].TraceID)
	}
}

// TestRecorderConcurrent hammers concurrent Record/RecordCtx/Snapshot;
// it exists to fail under -race if any path touches the ring unlocked.
func TestRecorderConcurrent(t *testing.T) {
	r := New(128)
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if i%2 == 0 {
					r.Record(EvEpochBarrier, KV("worker", w))
				} else {
					r.RecordCtx(context.Background(), EvWALRotation)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			evs := r.Snapshot("", time.Time{}, 0)
			for j := 1; j < len(evs); j++ {
				if evs[j].Seq <= evs[j-1].Seq {
					t.Errorf("snapshot seqs out of order: %d then %d", evs[j-1].Seq, evs[j].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	if got := r.Len(); got != 128 {
		t.Fatalf("Len = %d, want full ring 128", got)
	}
}

func TestEventsHandler(t *testing.T) {
	r := New(32)
	r.Record(EvWALRotation, KV("segment", 1))
	r.Record(EvHealthTransition, KV("from", "ok"), KV("to", "degraded"), KV("reason", "wal_poisoned"))
	mux := http.NewServeMux()
	r.RegisterDebug(mux)

	get := func(url string) (*httptest.ResponseRecorder, []map[string]any) {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var out []map[string]any
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("%s: bad JSON: %v", url, err)
			}
		}
		return rec, out
	}

	if _, out := get("/debug/events"); len(out) != 2 {
		t.Fatalf("unfiltered: got %d events, want 2", len(out))
	}
	_, out := get("/debug/events?type=health_transition")
	if len(out) != 1 || out[0]["type"] != EvHealthTransition {
		t.Fatalf("type filter: %+v", out)
	}
	attrs, _ := out[0]["attrs"].(map[string]any)
	if attrs["reason"] != "wal_poisoned" {
		t.Fatalf("attrs lost: %+v", out[0])
	}
	if _, out := get("/debug/events?limit=1"); len(out) != 1 || out[0]["type"] != EvHealthTransition {
		t.Fatalf("limit keeps newest: %+v", out)
	}
	if _, out := get("/debug/events?since=5m"); len(out) != 2 {
		t.Fatalf("relative since: got %d, want 2", len(out))
	}
	old := time.Now().Add(time.Hour).UTC().Format(time.RFC3339Nano)
	if _, out := get("/debug/events?since=" + old); len(out) != 0 {
		t.Fatalf("future since: got %d, want 0", len(out))
	}
	if rec, _ := get("/debug/events?since=yesterday"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad since: status %d, want 400", rec.Code)
	}
	if rec, _ := get("/debug/events?limit=-1"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d, want 400", rec.Code)
	}
}

func TestDumpTo(t *testing.T) {
	r := New(8)
	r.Record(EvWALPoisoned, KV("error", "short write"))
	dir := t.TempDir()
	path, err := r.DumpTo(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Reason string `json:"reason"`
		PID    int    `json:"pid"`
		Events []struct {
			Type  string         `json:"type"`
			Attrs map[string]any `json:"attrs"`
		} `json:"events"`
	}
	if err := json.Unmarshal(b, &dump); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if dump.Reason != "test" || dump.PID != os.Getpid() {
		t.Fatalf("header wrong: %+v", dump)
	}
	if len(dump.Events) != 1 || dump.Events[0].Type != EvWALPoisoned {
		t.Fatalf("events wrong: %+v", dump.Events)
	}
	if dump.Events[0].Attrs["error"] != "short write" {
		t.Fatalf("attrs wrong: %+v", dump.Events[0].Attrs)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(left) != 0 {
		t.Fatalf("temp files left behind: %v", left)
	}
}

func TestDumpAuto(t *testing.T) {
	r := New(8)
	dir := t.TempDir()
	r.AutoDump(dir, EvWALPoisoned)
	r.Record(EvWALRotation) // not a trigger
	if files, _ := filepath.Glob(filepath.Join(dir, "flightrec-*.json")); len(files) != 0 {
		t.Fatalf("non-trigger event dumped: %v", files)
	}
	r.Record(EvWALPoisoned, KV("error", "boom"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		files, _ := filepath.Glob(filepath.Join(dir, "flightrec-*.json"))
		if len(files) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto dump never appeared (found %d files)", len(files))
		}
		time.Sleep(10 * time.Millisecond)
	}
	r.AutoDump("")
	r.Record(EvWALPoisoned)
	time.Sleep(50 * time.Millisecond)
	if files, _ := filepath.Glob(filepath.Join(dir, "flightrec-*.json")); len(files) != 1 {
		t.Fatalf("disarmed recorder still dumped: %v", files)
	}
}

// TestRecorderSeqContiguity drives enough concurrent writers through a
// tiny ring that wraparound and seq assignment interleave; snapshots
// must stay strictly ordered throughout.
func TestRecorderSeqContiguity(t *testing.T) {
	r := New(3)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(EvEpochBarrier)
			}
		}()
	}
	wg.Wait()
	evs := r.Snapshot("", time.Time{}, 0)
	if len(evs) != 3 {
		t.Fatalf("got %d, want 3", len(evs))
	}
	if evs[2].Seq != 400 {
		t.Fatalf("newest seq %d, want 400", evs[2].Seq)
	}
	_ = fmt.Sprint(evs)
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// runFleet implements the `hotpaths fleet` subcommand: a fleet-wide ops
// view assembled from every node's public (/stats, /healthz) and admin
// (/metrics, /debug/events) surfaces. Each positional argument names one
// node:
//
//	label=http://host:port                 public listener only
//	label=http://host:port,http://admin    public + admin (-pprof) listener
//
// Without the admin URL the node still contributes health and counters;
// the SLO burn gauges and flight-recorder events need the admin
// listener.
//
// By default the view refreshes in place every -interval. With -once the
// fleet is polled a single time and the full snapshot — per-node status
// plus the merged, time-ordered flight-recorder timeline with trace IDs
// preserved — is printed (or written to -out) as JSON, the form CI
// archives and operators diff:
//
//	hotpaths fleet -once [-out fleet.json] [-events 100] \
//	    p0=http://localhost:8080,http://localhost:6060 \
//	    gw=http://localhost:8090,http://localhost:6061
func runFleet(args []string) int {
	fs := flag.NewFlagSet("hotpaths fleet", flag.ExitOnError)
	var (
		once     = fs.Bool("once", false, "poll once and print a JSON snapshot instead of the live view")
		interval = fs.Duration("interval", 2*time.Second, "refresh interval for the live view")
		events   = fs.Int("events", 50, "merged timeline length: keep the newest N events across the fleet")
		out      = fs.String("out", "", "with -once: write the JSON snapshot here instead of stdout")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request timeout when polling a node")
	)
	fs.Parse(args)

	nodes, err := parseNodeSpecs(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotpaths fleet:", err)
		return 2
	}
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "hotpaths fleet: no nodes given; pass label=URL[,adminURL] arguments")
		return 2
	}
	client := &http.Client{Timeout: *timeout}

	if *once {
		snap := pollFleet(client, nodes, *events)
		body, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotpaths fleet:", err)
			return 2
		}
		body = append(body, '\n')
		if *out != "" {
			if err := os.WriteFile(*out, body, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "hotpaths fleet:", err)
				return 2
			}
		} else {
			os.Stdout.Write(body)
		}
		return 0
	}

	// Live mode: redraw the whole view each round. Plain ANSI
	// clear-and-home keeps the dependency surface at zero.
	for {
		snap := pollFleet(client, nodes, *events)
		fmt.Print("\x1b[2J\x1b[H")
		renderFleet(os.Stdout, snap)
		time.Sleep(*interval)
	}
}

// fleetNode is one node spec from the command line.
type fleetNode struct {
	label    string
	url      string
	adminURL string
}

func parseNodeSpecs(args []string) ([]fleetNode, error) {
	var nodes []fleetNode
	seen := map[string]bool{}
	for _, a := range args {
		label, rest, ok := strings.Cut(a, "=")
		if !ok || label == "" || rest == "" {
			return nil, fmt.Errorf("node spec %q must be label=URL[,adminURL]", a)
		}
		if seen[label] {
			return nil, fmt.Errorf("duplicate node label %q", label)
		}
		seen[label] = true
		main, admin, _ := strings.Cut(rest, ",")
		nodes = append(nodes, fleetNode{
			label:    label,
			url:      strings.TrimRight(strings.TrimSpace(main), "/"),
			adminURL: strings.TrimRight(strings.TrimSpace(admin), "/"),
		})
	}
	return nodes, nil
}

// fleetSnapshot is the -once JSON document: every node's status plus the
// merged flight-recorder timeline across the fleet.
type fleetSnapshot struct {
	CapturedAt time.Time          `json:"captured_at"`
	Nodes      []nodeStatus       `json:"nodes"`
	Timeline   []fleetEvent       `json:"timeline"`
	SLO        map[string]sloView `json:"slo,omitempty"`
}

type nodeStatus struct {
	Label    string         `json:"label"`
	URL      string         `json:"url"`
	AdminURL string         `json:"admin_url,omitempty"`
	Health   map[string]any `json:"health,omitempty"`
	Stats    map[string]any `json:"stats,omitempty"`
	Events   int            `json:"events"`
	Errors   []string       `json:"errors,omitempty"`
}

// sloView is the burn-rate summary parsed out of one node's /metrics.
type sloView struct {
	AvailabilityFast float64 `json:"availability_burn_fast"`
	AvailabilitySlow float64 `json:"availability_burn_slow"`
	LatencyFast      float64 `json:"latency_burn_fast"`
	LatencySlow      float64 `json:"latency_burn_slow"`
}

// fleetEvent is one merged-timeline entry: a node's flight-recorder
// event tagged with the node it came from, trace ID preserved so events
// of one request on different fleet members correlate.
type fleetEvent struct {
	Node     string         `json:"node"`
	Seq      uint64         `json:"seq"`
	Time     string         `json:"time"`
	UnixNano int64          `json:"unix_nano"`
	Type     string         `json:"type"`
	TraceID  string         `json:"trace_id,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

func pollFleet(client *http.Client, nodes []fleetNode, maxEvents int) fleetSnapshot {
	snap := fleetSnapshot{
		CapturedAt: time.Now().UTC(),
		SLO:        map[string]sloView{},
		Timeline:   []fleetEvent{},
	}
	for _, n := range nodes {
		st := nodeStatus{Label: n.label, URL: n.url, AdminURL: n.adminURL}
		if health, err := getJSONMap(client, n.url+"/healthz?verbose=1"); err != nil {
			st.Errors = append(st.Errors, fmt.Sprintf("healthz: %v", err))
		} else {
			st.Health = health
		}
		if stats, err := getJSONMap(client, n.url+"/stats"); err != nil {
			st.Errors = append(st.Errors, fmt.Sprintf("stats: %v", err))
		} else {
			st.Stats = stats
		}
		if n.adminURL != "" {
			if slo, err := getSLO(client, n.adminURL+"/metrics"); err != nil {
				st.Errors = append(st.Errors, fmt.Sprintf("metrics: %v", err))
			} else {
				snap.SLO[n.label] = slo
			}
			evs, err := getEvents(client, n.adminURL+"/debug/events")
			if err != nil {
				st.Errors = append(st.Errors, fmt.Sprintf("events: %v", err))
			} else {
				st.Events = len(evs)
				for _, ev := range evs {
					ev.Node = n.label
					snap.Timeline = append(snap.Timeline, ev)
				}
			}
		}
		snap.Nodes = append(snap.Nodes, st)
	}
	// The fleet timeline: every node's ring merged into one
	// time-ordered stream, newest maxEvents kept.
	sort.Slice(snap.Timeline, func(i, j int) bool {
		return snap.Timeline[i].UnixNano < snap.Timeline[j].UnixNano
	})
	if maxEvents > 0 && len(snap.Timeline) > maxEvents {
		snap.Timeline = snap.Timeline[len(snap.Timeline)-maxEvents:]
	}
	return snap
}

func getJSONMap(client *http.Client, url string) (map[string]any, error) {
	body, _, err := get(client, url)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, err
	}
	return m, nil
}

func getEvents(client *http.Client, url string) ([]fleetEvent, error) {
	body, _, err := get(client, url)
	if err != nil {
		return nil, err
	}
	var evs []fleetEvent
	if err := json.Unmarshal(body, &evs); err != nil {
		return nil, err
	}
	return evs, nil
}

// get fetches a URL, tolerating non-2xx statuses that still carry a
// useful body (/healthz answers 503 while degraded — that is data, not
// an error).
func get(client *http.Client, url string) ([]byte, int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return body, resp.StatusCode, nil
}

// getSLO extracts the hotpaths_slo_* burn gauges from one node's
// Prometheus exposition. Both processes export the same family names
// (the daemon from its request instruments, the gateway from its own),
// so one parse works fleet-wide.
func getSLO(client *http.Client, url string) (sloView, error) {
	body, _, err := get(client, url)
	if err != nil {
		return sloView{}, err
	}
	var v sloView
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "hotpaths_slo_") || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := parseMetricLine(line)
		if !ok {
			continue
		}
		switch name {
		case `hotpaths_slo_availability_burn_ratio{window="fast"}`:
			v.AvailabilityFast = val
		case `hotpaths_slo_availability_burn_ratio{window="slow"}`:
			v.AvailabilitySlow = val
		case `hotpaths_slo_latency_burn_ratio{window="fast"}`:
			v.LatencyFast = val
		case `hotpaths_slo_latency_burn_ratio{window="slow"}`:
			v.LatencySlow = val
		}
	}
	return v, nil
}

// parseMetricLine splits one exposition line into its full name
// (including the label set) and value.
func parseMetricLine(line string) (string, float64, bool) {
	idx := strings.LastIndexByte(line, ' ')
	if idx < 0 {
		return "", 0, false
	}
	val, err := strconv.ParseFloat(strings.TrimSpace(line[idx+1:]), 64)
	if err != nil {
		return "", 0, false
	}
	return strings.TrimSpace(line[:idx]), val, true
}

// renderFleet draws the live view: one row per node, then the tail of
// the merged event timeline.
func renderFleet(w io.Writer, snap fleetSnapshot) {
	fmt.Fprintf(w, "hotpaths fleet — %s\n\n", snap.CapturedAt.Format(time.RFC3339))
	fmt.Fprintf(w, "%-12s %-10s %-22s %10s %10s %12s %12s\n",
		"NODE", "HEALTH", "REASON", "EPOCH", "PATHS", "AVAIL BURN", "LAT BURN")
	for _, n := range snap.Nodes {
		health, reason := "?", ""
		if n.Health != nil {
			health, _ = n.Health["status"].(string)
			reason, _ = n.Health["reason"].(string)
		}
		epoch, paths := "-", "-"
		if n.Stats != nil {
			epoch = fmtNum(n.Stats["epoch"])
			paths = fmtNum(n.Stats["index_size"])
		}
		burnA, burnL := "-", "-"
		if slo, ok := snap.SLO[n.Label]; ok {
			burnA = fmt.Sprintf("%.2f", slo.AvailabilityFast)
			burnL = fmt.Sprintf("%.2f", slo.LatencyFast)
		}
		if len(n.Errors) > 0 && health == "?" {
			health, reason = "unreachable", n.Errors[0]
			if len(reason) > 22 {
				reason = reason[:22]
			}
		}
		fmt.Fprintf(w, "%-12s %-10s %-22s %10s %10s %12s %12s\n",
			n.Label, health, reason, epoch, paths, burnA, burnL)
	}
	fmt.Fprintf(w, "\nEVENTS (%d, fleet-merged, oldest first)\n", len(snap.Timeline))
	for _, ev := range snap.Timeline {
		line := fmt.Sprintf("%s %-10s %-26s", ev.Time, ev.Node, ev.Type)
		if ev.TraceID != "" {
			line += " trace=" + ev.TraceID
		}
		if len(ev.Attrs) > 0 {
			keys := make([]string, 0, len(ev.Attrs))
			for k := range ev.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				line += fmt.Sprintf(" %s=%v", k, ev.Attrs[k])
			}
		}
		fmt.Fprintln(w, line)
	}
}

func fmtNum(v any) string {
	switch n := v.(type) {
	case float64:
		return strconv.FormatFloat(n, 'f', -1, 64)
	case nil:
		return "-"
	default:
		return fmt.Sprint(v)
	}
}

package experiment

import "testing"

func TestMovingClusterContrastValidation(t *testing.T) {
	if _, err := MovingClusterContrast(1, 10, 5); err == nil {
		t.Error("objects<2 must error")
	}
	if _, err := MovingClusterContrast(5, 0, 5); err == nil {
		t.Error("spacing=0 must error")
	}
	if _, err := MovingClusterContrast(5, 10, 0); err == nil {
		t.Error("eps=0 must error")
	}
}

// The paper's Section 2 claim, end to end: an asynchronous flow produces a
// hot motion path (hotness grows with the number of travellers) while the
// moving-cluster detector finds nothing.
func TestHotPathsWithoutMovingClusters(t *testing.T) {
	res, err := MovingClusterContrast(8, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovingClusters != 0 {
		t.Errorf("moving clusters = %d want 0 (spacing keeps objects apart)", res.MovingClusters)
	}
	if res.MaxHotness < 4 {
		t.Errorf("max hotness = %d; the shared route should accumulate most of the 8 travellers",
			res.MaxHotness)
	}
	if res.PathsStored == 0 {
		t.Error("no paths stored")
	}
}

// Conversely, travellers departing together DO form a moving cluster — the
// detector is not trivially blind.
func TestSynchronousFlowFormsCluster(t *testing.T) {
	res, err := MovingClusterContrast(6, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovingClusters == 0 {
		t.Error("near-synchronous travellers should form at least one moving cluster")
	}
}

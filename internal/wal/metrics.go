package wal

import "hotpaths/internal/metrics"

// Instrumentation for the write-ahead log. Appends are timed at the public
// entry points (one clock read per call, not per record); fsync latency is
// measured around the actual File.Sync in group commits and rotations.
var (
	mAppend = metrics.Default.Histogram("hotpaths_wal_append_seconds",
		"Latency of Append/AppendBatch calls (encode plus buffered write).",
		metrics.LatencyBuckets, nil)
	mFsync = metrics.Default.Histogram("hotpaths_wal_fsync_seconds",
		"Latency of segment fsyncs (group commits and rotations).",
		metrics.LatencyBuckets, nil)
	mCommitBatch = metrics.Default.Histogram("hotpaths_wal_commit_batch_records",
		"Records made durable per commit batch (group-commit coalescing).",
		metrics.SizeBuckets, nil)
	mRotations = metrics.Default.Counter("hotpaths_wal_rotations_total",
		"Segment rotations.", nil)
	mRecords = metrics.Default.Counter("hotpaths_wal_records_total",
		"Records appended to the log.", nil)
)

package dp

import (
	"math"
	"math/rand"
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
)

func TestSimplifyTrivial(t *testing.T) {
	if got := Simplify(nil, 1); len(got) != 0 {
		t.Error("nil input")
	}
	one := []geom.Point{geom.Pt(1, 1)}
	if got := Simplify(one, 1); len(got) != 1 {
		t.Error("single point")
	}
	two := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5)}
	if got := Simplify(two, 1); len(got) != 2 {
		t.Error("two points")
	}
}

func TestSimplifyCollinear(t *testing.T) {
	var pts []geom.Point
	for i := 0; i <= 10; i++ {
		pts = append(pts, geom.Pt(float64(i), 2*float64(i)))
	}
	got := Simplify(pts, 0.01)
	if len(got) != 2 {
		t.Errorf("collinear points should simplify to 2, got %d", len(got))
	}
	if !got[0].Eq(pts[0]) || !got[1].Eq(pts[10]) {
		t.Error("endpoints must be preserved")
	}
}

func TestSimplifyKeepsSalientVertex(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 10), geom.Pt(10, 0)}
	got := Simplify(pts, 1)
	if len(got) != 3 {
		t.Errorf("sharp corner must be kept, got %v", got)
	}
	got = Simplify(pts, 100)
	if len(got) != 2 {
		t.Errorf("huge eps should drop the corner, got %v", got)
	}
}

// Property: every dropped point stays within eps of the simplified
// polyline.
func TestSimplifyErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(100)
		pts := make([]geom.Point, n)
		cur := geom.Pt(0, 0)
		for i := range pts {
			cur = cur.Add(geom.Pt(rng.Float64()*10, rng.Float64()*10-5))
			pts[i] = cur
		}
		eps := 1 + rng.Float64()*10
		simp := Simplify(pts, eps)
		for _, p := range pts {
			best := math.Inf(1)
			for i := 1; i < len(simp); i++ {
				if d := geom.Seg(simp[i-1], simp[i]).DistToPoint(p); d < best {
					best = d
				}
			}
			if best > eps+1e-9 {
				t.Fatalf("trial %d: point %v at distance %v > eps %v", trial, p, best, eps)
			}
		}
	}
}

func TestNewOpeningWindowValidation(t *testing.T) {
	if _, err := NewOpeningWindow(0, NOPW); err == nil {
		t.Error("eps=0 must error")
	}
	if _, err := NewOpeningWindow(1, Policy(9)); err == nil {
		t.Error("bad policy must error")
	}
	if NOPW.String() != "NOPW" || BOPW.String() != "BOPW" {
		t.Error("Policy.String")
	}
}

func tp(x, y float64, tt trajectory.Time) trajectory.TimePoint {
	return trajectory.TP(geom.Pt(x, y), tt)
}

func TestOpeningWindowStraightLine(t *testing.T) {
	w, _ := NewOpeningWindow(1, NOPW)
	for i := 0; i < 100; i++ {
		ems, err := w.Process(tp(float64(i)*5, 0, trajectory.Time(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(ems) != 0 {
			t.Fatalf("straight line emitted at %d", i)
		}
	}
	em, ok := w.Flush()
	if !ok {
		t.Fatal("flush must emit")
	}
	if em.Seg != geom.Seg(geom.Pt(0, 0), geom.Pt(495, 0)) || em.Ts != 0 || em.Te != 99 {
		t.Errorf("flush = %+v", em)
	}
	if _, ok := w.Flush(); ok {
		t.Error("second flush must be empty")
	}
}

func TestOpeningWindowTimestampValidation(t *testing.T) {
	w, _ := NewOpeningWindow(1, NOPW)
	w.Process(tp(0, 0, 5))
	if _, err := w.Process(tp(1, 1, 5)); err == nil {
		t.Error("equal timestamp must error")
	}
}

func TestOpeningWindowNOPWBreaksAtDeviant(t *testing.T) {
	w, _ := NewOpeningWindow(1, NOPW)
	// A right-angle turn: up then right. The corner is the deviant point.
	w.Process(tp(0, 0, 0))
	w.Process(tp(0, 10, 1))
	w.Process(tp(0, 20, 2)) // corner
	ems, err := w.Process(tp(20, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ems) != 1 {
		t.Fatalf("expected 1 emission, got %d", len(ems))
	}
	if !ems[0].Seg.B.Eq(geom.Pt(0, 20)) {
		t.Errorf("NOPW must break at the corner, broke at %v", ems[0].Seg.B)
	}
	if ems[0].Ts != 0 || ems[0].Te != 2 {
		t.Errorf("emitted interval [%d,%d]", ems[0].Ts, ems[0].Te)
	}
}

func TestOpeningWindowBOPWBreaksBeforeFloat(t *testing.T) {
	w, _ := NewOpeningWindow(1, BOPW)
	w.Process(tp(0, 0, 0))
	w.Process(tp(0, 10, 1))
	w.Process(tp(0, 20, 2))
	ems, _ := w.Process(tp(20, 20, 3))
	if len(ems) != 1 {
		t.Fatalf("expected 1 emission, got %d", len(ems))
	}
	// BOPW breaks at the point just before the floating endpoint, which
	// here coincides with the corner.
	if !ems[0].Seg.B.Eq(geom.Pt(0, 20)) {
		t.Errorf("BOPW break at %v", ems[0].Seg.B)
	}
}

// Property: for both policies, every input point is within eps of the union
// of emitted segments (plus the final flush), i.e. the synopsis respects
// the tolerance.
func TestOpeningWindowToleranceInvariant(t *testing.T) {
	for _, pol := range []Policy{NOPW, BOPW} {
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 25; trial++ {
			const eps = 3.0
			w, _ := NewOpeningWindow(eps, pol)
			var pts []geom.Point
			cur := geom.Pt(0, 0)
			dir := geom.Pt(5, 0)
			var segs []geom.Segment
			for i := 0; i < 150; i++ {
				if rng.Float64() < 0.15 {
					dir = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
				}
				cur = cur.Add(dir).Add(geom.Pt(rng.Float64()-0.5, rng.Float64()-0.5))
				pts = append(pts, cur)
				ems, err := w.Process(trajectory.TP(cur, trajectory.Time(i)))
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range ems {
					segs = append(segs, e.Seg)
				}
			}
			if em, ok := w.Flush(); ok {
				segs = append(segs, em.Seg)
			}
			for _, p := range pts {
				best := math.Inf(1)
				for _, s := range segs {
					if d := s.DistToPoint(p); d < best {
						best = d
					}
				}
				if best > eps+1e-9 {
					t.Fatalf("%v trial %d: point %v at distance %v from synopsis", pol, trial, p, best)
				}
			}
		}
	}
}

// Emitted segments chain: each segment's start is the previous segment's
// end (the anchor hand-off).
func TestOpeningWindowChaining(t *testing.T) {
	w, _ := NewOpeningWindow(2, NOPW)
	rng := rand.New(rand.NewSource(77))
	var all []Emitted
	cur := geom.Pt(0, 0)
	for i := 0; i < 500; i++ {
		cur = cur.Add(geom.Pt(rng.Float64()*12-2, rng.Float64()*12-6))
		ems, err := w.Process(trajectory.TP(cur, trajectory.Time(i)))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ems...)
	}
	if len(all) < 2 {
		t.Skip("walk too tame")
	}
	for i := 1; i < len(all); i++ {
		if !all[i].Seg.A.Eq(all[i-1].Seg.B) || all[i].Ts != all[i-1].Te {
			t.Fatalf("segments %d and %d do not chain: %+v %+v", i-1, i, all[i-1], all[i])
		}
	}
}

func TestOpeningWindowChecksGrow(t *testing.T) {
	w, _ := NewOpeningWindow(1e9, NOPW) // never violates
	for i := 0; i < 100; i++ {
		w.Process(tp(float64(i), float64(i%7), trajectory.Time(i)))
	}
	// Cost is quadratic when the window never breaks: Σ_{i=3..100}(i−2)
	// = 98·99/2 = 4851 checks.
	if w.Checks() != 98*99/2 {
		t.Errorf("checks = %d, expected quadratic growth", w.Checks())
	}
	if w.WindowLen() != 100 {
		t.Errorf("window len = %d", w.WindowLen())
	}
}

package partition

import (
	"testing"
)

func TestIndexMatchesEngineShardHash(t *testing.T) {
	// The reference mix the Engine has used since PR 1; Index must stay
	// bit-compatible with it (it is the same function, lifted here).
	ref := func(objectID, n int) int {
		h := uint64(objectID)
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return int(h % uint64(n))
	}
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		for id := -3; id < 1000; id += 7 {
			if got, want := Index(id, n), ref(id, n); got != want {
				t.Fatalf("Index(%d,%d) = %d, reference mix gives %d", id, n, got, want)
			}
		}
	}
}

func TestIndexSpread(t *testing.T) {
	const n, ids = 4, 4000
	var counts [n]int
	for id := 0; id < ids; id++ {
		p := Index(id, n)
		if p < 0 || p >= n {
			t.Fatalf("Index(%d,%d) = %d out of range", id, n, p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c < ids/n/2 || c > ids/n*2 {
			t.Errorf("partition %d owns %d of %d ids; mix is not spreading", p, c, ids)
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	tab := NewTable("http://a:8080", "http://b:8080", "http://c:8080")
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.N() != 3 || tab.Version != 1 {
		t.Fatalf("table = %+v", tab)
	}
	b, err := tab.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 || back.Partitions[1].URL != "http://b:8080" {
		t.Fatalf("round trip = %+v", back)
	}
	for id := 0; id < 100; id++ {
		own := tab.Owner(id)
		if own.ID != Index(id, 3) {
			t.Fatalf("Owner(%d) = %+v, want partition %d", id, own, Index(id, 3))
		}
	}
}

func TestTableValidate(t *testing.T) {
	cases := []struct {
		name string
		tab  Table
	}{
		{"empty", Table{Version: 1}},
		{"gap in ids", Table{Version: 1, Partitions: []Partition{
			{ID: 0, URL: "http://a:1"}, {ID: 2, URL: "http://b:1"},
		}}},
		{"relative url", Table{Version: 1, Partitions: []Partition{
			{ID: 0, URL: "a:8080"},
		}}},
		{"no host", Table{Version: 1, Partitions: []Partition{
			{ID: 0, URL: "http://"},
		}}},
	}
	for _, tc := range cases {
		if err := tc.tab.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.tab)
		}
	}
	if _, err := ParseTable([]byte(`{"version":1,"partitions":[],"bogus":1}`)); err == nil {
		t.Error("ParseTable accepted unknown fields")
	}
}

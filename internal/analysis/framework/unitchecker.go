package framework

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// This file implements the cmd/go vet-tool protocol, so the suite runs
// as `go vet -vettool=$(which hotpathsvet) ./...`: cmd/go type-checks
// nothing itself — it hands the tool a JSON config file describing one
// compilation unit (file list, import map, export-data locations) and
// expects diagnostics on stderr with a non-zero exit when there are
// findings. The same protocol x/tools' unitchecker speaks, reimplemented
// here on the standard library.

// VetConfig is the JSON schema cmd/go writes to the .cfg file. Field
// names are fixed by cmd/go/internal/work.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersionAndExit implements the `-V=full` handshake: cmd/go hashes
// the tool's response into the build cache key, so the output must
// change whenever the binary does — hence the self-hash.
func PrintVersionAndExit() {
	progname := os.Args[0]
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
	os.Exit(0)
}

// RunUnitchecker analyzes the single compilation unit described by the
// vet config file and exits: 0 when clean, 1 with findings on stderr.
func RunUnitchecker(cfgFile string, analyzers []*Analyzer) {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The suite computes no cross-package facts, but cmd/go expects the
	// facts file to exist before it will cache the run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("hotpathsvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0) // dependency pass: facts only, and we have none
	}

	pkg, err := checkVetUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.ImportPath, err)
		os.Exit(1)
	}

	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

func readVetConfig(path string) (*VetConfig, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hotpathsvet: reading vet config: %w", err)
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(b, cfg); err != nil {
		return nil, fmt.Errorf("hotpathsvet: parsing vet config %s: %w", path, err)
	}
	return cfg, nil
}

// checkVetUnit parses and type-checks the unit from source against the
// export data cmd/go already compiled for its imports.
func checkVetUnit(cfg *VetConfig) (*Package, error) {
	fset := token.NewFileSet()
	var asts []*ast.File
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	var firstErr error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := NewTypesInfo()
	tpkg, _ := conf.Check(cfg.ImportPath, fset, asts, info)
	if firstErr != nil {
		return nil, firstErr
	}
	return &Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      asts,
		Types:      tpkg,
		Info:       info,
	}, nil
}

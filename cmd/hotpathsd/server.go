package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hotpaths"
	"hotpaths/internal/flightrec"
	"hotpaths/internal/metrics"
	"hotpaths/internal/partition"
	"hotpaths/internal/tracing"
)

// backend is the ingestion and query surface the server drives: the bare
// concurrent Engine, or the Durable wrapper when -wal is set. Both are
// safe for concurrent use. The write methods take the request context so
// the engine/WAL layers can hang their spans off the request's trace.
type backend interface {
	ObserveBatchCtx(ctx context.Context, batch []hotpaths.Observation) error
	TickCtx(ctx context.Context, now int64) error
	Snapshot() hotpaths.Snapshot
	Stats() hotpaths.Stats
	Clock() int64
	Subscribe(q hotpaths.Query) (*hotpaths.Subscription, error)
	Config() hotpaths.Config
	Shards() int
}

// serverOpts are the deployment-mode extras around the core backend:
// exactly one of dur/fol may be set (a daemon is a primary, a follower,
// or a bare in-memory engine).
type serverOpts struct {
	dur    *hotpaths.Durable // -wal: durability + the primary-side replication feed
	fol    *hotpaths.Follower
	maxLag uint64 // -max-lag: /healthz degrades past this record lag (0 = never)

	// partitionID/partitionCount declare this daemon's slot in a
	// partitioned fleet (-partition-id/-partition-count). Zero count means
	// unpartitioned; with a positive count the daemon advertises its slot
	// in /stats and rejects observations whose object id hashes to a
	// different partition — a loud failure beats silently forked state.
	partitionID    int
	partitionCount int
}

// server wires the backend to the HTTP surface. Ingestion state lives in
// the backend; the server only adds its start time and a read-side
// snapshot cache.
type server struct {
	src     backend
	dur     *hotpaths.Durable // non-nil (and == src) when -wal is set
	fol     *hotpaths.Follower
	repl    http.Handler // the WAL feed, mounted when dur != nil
	maxLag  uint64
	partID  int
	partN   int // 0 when unpartitioned
	started time.Time

	// gen counts writes (observe/tick). Readers reuse one cached snapshot
	// — and the region grid built inside it — until a write bumps gen, so
	// a burst of concurrent queries costs one O(paths) copy, not one per
	// request.
	gen    atomic.Uint64
	mu     sync.Mutex
	cached *cachedSnapshot

	// closing is closed when the HTTP server begins shutting down, so
	// /watch streams end instead of pinning Shutdown until its timeout
	// (the backend, whose Close would end them, is only drained after
	// Shutdown returns).
	closing  chan struct{}
	stopOnce sync.Once

	// slo derives burn-rate gauges from the daemon's request instruments.
	slo *metrics.SLO

	// lastHealth remembers the previous /healthz verdict so only state
	// transitions — not every poll — become flight-recorder events.
	healthMu   sync.Mutex
	lastHealth string
}

type cachedSnapshot struct {
	snap hotpaths.Snapshot
	gen  uint64
}

func newServer(src backend, opts serverOpts) *server {
	s := &server{
		src:     src,
		dur:     opts.dur,
		fol:     opts.fol,
		maxLag:  opts.maxLag,
		partID:  opts.partitionID,
		partN:   opts.partitionCount,
		started: time.Now(),
		closing: make(chan struct{}),
	}
	if opts.dur != nil {
		// The library feed, wired to the shutdown channel so open streams
		// end when the HTTP server drains instead of pinning Shutdown.
		s.repl = hotpaths.NewReplicationFeed(opts.dur, s.closing)
	}
	s.slo = metrics.StartSLO(metrics.Default, metrics.SLOOptions{
		RequestsTotal:  "hotpaths_http_requests_total",
		LatencySeconds: "hotpaths_http_request_seconds",
	})
	return s
}

// stopWatches ends every open /watch stream; registered with the HTTP
// server's shutdown hook. It also stops the SLO sampler — shutdown is
// the last burn-rate reading anyone will scrape.
func (s *server) stopWatches() {
	s.stopOnce.Do(func() {
		close(s.closing)
		s.slo.Stop()
	})
}

// readGen is the cache key for the snapshot cache: the local write count
// normally, the follower's apply generation in -follow mode (writes
// arrive from the replication stream there, not through this server, so
// the local counter would never move and the cache would pin a stale
// view forever).
func (s *server) readGen() uint64 {
	if s.fol != nil {
		return s.fol.Generation()
	}
	return s.gen.Load()
}

// snapshot returns the cached engine snapshot, taking a fresh one when a
// write has happened since it was cached. A snapshot taken concurrently
// with a write is served to its own request but not cached: the
// generation check guarantees the cache never pins a view older than the
// last completed write.
func (s *server) snapshot() hotpaths.Snapshot {
	g := s.readGen()
	s.mu.Lock()
	c := s.cached
	s.mu.Unlock()
	if c != nil && c.gen == g {
		return c.snap
	}
	snap := s.src.Snapshot()
	s.mu.Lock()
	if s.readGen() == g {
		s.cached = &cachedSnapshot{snap: snap, gen: g}
	}
	s.mu.Unlock()
	return snap
}

// invalidate marks the cached snapshot stale after a write.
func (s *server) invalidate() { s.gen.Add(1) }

func (s *server) handler() http.Handler {
	// Every route is wrapped at registration (an outer middleware cannot
	// see which ServeMux pattern matched), so each handler's histogram and
	// status counters are bound to its route label up front. The tracing
	// middleware stacks inside the metrics one: metrics always run, the
	// tracing layer adds a server span only when the request is sampled
	// (or continues a sampled trace) and otherwise costs one header check.
	mux := http.NewServeMux()
	wrap := func(route string, h http.HandlerFunc) http.HandlerFunc {
		return instrument(route, tracing.Default.Middleware(route, h))
	}
	mux.HandleFunc("POST /observe", wrap("/observe", s.handleObserve))
	mux.HandleFunc("POST /tick", wrap("/tick", s.handleTick))
	mux.HandleFunc("GET /topk", wrap("/topk", s.handleTopK))
	mux.HandleFunc("GET /paths", wrap("/paths", s.handlePaths))
	mux.HandleFunc("GET /paths.geojson", wrap("/paths.geojson", s.handleGeoJSON))
	mux.HandleFunc("GET /stats", wrap("/stats", s.handleStats))
	mux.HandleFunc("GET /watch", wrap("/watch", s.handleWatch))
	mux.HandleFunc("POST /admin/checkpoint", wrap("/admin/checkpoint", s.handleCheckpoint))
	mux.HandleFunc("GET /healthz", wrap("/healthz", s.handleHealthz))
	mux.Handle("GET /metrics", instrument("/metrics", metrics.Handler().ServeHTTP))
	if s.repl != nil {
		// The primary-side replication feed: followers bootstrap from the
		// checkpoint and tail the WAL as a long-lived frame stream.
		mux.Handle("/wal/", wrap("/wal/", s.repl.ServeHTTP))
	}
	if s.fol != nil {
		mux.HandleFunc("POST /admin/reconnect", wrap("/admin/reconnect", s.handleReconnect))
	}
	return mux
}

// rejectReadOnly answers writes on a follower: 403 rather than 400/405,
// because the request is well-formed and allowed — just not here. The
// body names the primary so a misconfigured client can be redirected by
// its operator.
func (s *server) rejectReadOnly(w http.ResponseWriter) bool {
	if s.fol == nil {
		return false
	}
	writeJSON(w, http.StatusForbidden, map[string]any{
		"error":   hotpaths.ErrReadOnly.Error(),
		"primary": s.fol.Primary(),
	})
	return true
}

// observationJSON is the wire form of one measurement — the library's
// canonical encoding, shared with the gateway's router.
type observationJSON = hotpaths.ObservationJSON

// observeRequest is the POST /observe body. Tick, when positive, advances
// the engine clock after the batch is ingested — the convenient form for a
// single-writer feed that ticks as it streams; multi-writer deployments
// should leave it zero and drive POST /tick from one place.
type observeRequest struct {
	Observations []observationJSON `json:"observations"`
	Tick         int64             `json:"tick,omitempty"`
}

type tickRequest struct {
	Now int64 `json:"now"`
}

// maxRequestBytes caps request bodies so one oversized batch cannot
// exhaust the daemon's memory.
const maxRequestBytes = 8 << 20

// decodeBody decodes a size-limited JSON request body, reporting 413 for
// oversized payloads and 400 for malformed ones. It returns false after
// writing the error response.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		}
		return false
	}
	return true
}

func (s *server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	var req observeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	batch := make([]hotpaths.Observation, len(req.Observations))
	for i, o := range req.Observations {
		if s.partN > 0 {
			if owner := partition.Index(o.Object, s.partN); owner != s.partID {
				httpError(w, http.StatusBadRequest, fmt.Errorf(
					"object %d belongs to partition %d of %d, not this daemon (partition %d); check the router's table",
					o.Object, owner, s.partN, s.partID))
				return
			}
		}
		batch[i] = o.Observation()
	}
	if err := s.src.ObserveBatchCtx(r.Context(), batch); err != nil {
		httpError(w, s.writeErrStatus(), err)
		return
	}
	s.invalidate()
	resp := map[string]any{"accepted": len(batch)}
	if req.Tick > 0 {
		err := s.src.TickCtx(r.Context(), req.Tick)
		s.invalidate()
		if err != nil {
			// The batch was already ingested; report that alongside the
			// tick failure so clients don't re-send the observations.
			writeJSON(w, s.writeErrStatus(), map[string]any{
				"error":    err.Error(),
				"accepted": len(batch),
			})
			return
		}
		resp["now"] = req.Tick
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeErrStatus picks the status for a failed write: 400 for what must
// be the client's bad input, 503 once the WAL is poisoned — then every
// write fails server-side no matter what the client sent, and a 4xx
// would make well-behaved clients drop their batches instead of failing
// over (retry policies do not retry client errors).
func (s *server) writeErrStatus() int {
	if s.dur != nil && s.dur.Err() != nil {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func (s *server) handleTick(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	var req tickRequest
	if !decodeBody(w, r, &req) {
		return
	}
	err := s.src.TickCtx(r.Context(), req.Now)
	s.invalidate()
	if err != nil {
		httpError(w, s.writeErrStatus(), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"now": req.Now})
}

// queryParams builds a hotpaths.Query from the shared URL parameters
// k (or limit), min_hotness, bbox=minx,miny,maxx,maxy and
// sort=hotness|score. defaultK caps the result when no k is given
// (0 means unlimited).
func queryParams(r *http.Request, defaultK int) (hotpaths.Query, error) {
	q := hotpaths.Query{}
	vals := r.URL.Query()
	if vals.Get("k") != "" && vals.Get("limit") != "" {
		return q, fmt.Errorf("k and limit are aliases; pass only one")
	}
	k := defaultK
	for _, name := range []string{"k", "limit"} {
		if s := vals.Get(name); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				return q, fmt.Errorf("%s must be a non-negative integer, got %q", name, s)
			}
			k = n
		}
	}
	q = q.K(k)
	if s := vals.Get("min_hotness"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return q, fmt.Errorf("min_hotness must be a non-negative integer, got %q", s)
		}
		q = q.MinHotness(n)
	}
	if s := vals.Get("bbox"); s != "" {
		rect, err := parseBounds(s)
		if err != nil {
			return q, fmt.Errorf("bbox: %w", err)
		}
		if rect.Max.X < rect.Min.X || rect.Max.Y < rect.Min.Y {
			return q, fmt.Errorf("bbox %q has max < min", s)
		}
		q = q.Region(rect)
	}
	switch s := vals.Get("sort"); s {
	case "", "hotness":
		q = q.SortBy(hotpaths.ByHotness)
	case "score":
		q = q.SortBy(hotpaths.ByScore)
	default:
		return q, fmt.Errorf("sort must be \"hotness\" or \"score\", got %q", s)
	}
	return q, nil
}

// epochHeaders stamps the answering snapshot's epoch and clock on the
// response, so a scatter-gather reader can verify that every partition
// answered at the same epoch before merging.
func epochHeaders(w http.ResponseWriter, snap hotpaths.Snapshot) {
	w.Header().Set(hotpaths.EpochHeader, strconv.FormatInt(snap.Epoch(), 10))
	w.Header().Set(hotpaths.ClockHeader, strconv.FormatInt(snap.Clock(), 10))
}

// handleTopK serves GET /topk: the k hottest paths (k defaults to the
// engine's Config.K), optionally restricted by bbox/min_hotness and
// re-ranked by sort=score.
func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q, err := queryParams(r, s.src.Config().K)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	snap := s.snapshot()
	epochHeaders(w, snap)
	writeJSON(w, http.StatusOK, hotpaths.PathsJSON(snap.Query(q)))
}

// handlePaths serves GET /paths: every live path, with the same
// k/min_hotness/bbox/sort selection as /topk but no default cap.
func (s *server) handlePaths(w http.ResponseWriter, r *http.Request) {
	q, err := queryParams(r, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	snap := s.snapshot()
	epochHeaders(w, snap)
	writeJSON(w, http.StatusOK, hotpaths.PathsJSON(snap.Query(q)))
}

// handleGeoJSON serves GET /paths.geojson, accepting the same bbox and
// limit parameters. The FeatureCollection is buffered before the first
// byte is written — it is bounded by the live index size — so an encoding
// failure still returns a proper 500 instead of a truncated body after
// headers are gone.
func (s *server) handleGeoJSON(w http.ResponseWriter, r *http.Request) {
	q, err := queryParams(r, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	snap := s.snapshot()
	var buf bytes.Buffer
	if err := hotpaths.WriteGeoJSON(&buf, snap.Query(q)); err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("encode geojson: %w", err))
		return
	}
	epochHeaders(w, snap)
	w.Header().Set("Content-Type", "application/geo+json")
	if _, err := buf.WriteTo(w); err != nil {
		// The client went away mid-response; nothing left to salvage.
		slog.Warn("write geojson failed", append([]any{"error", err}, tracing.LogAttrs(r.Context())...)...)
	}
}

// deltaJSON is the wire form of one subscription delta, carried as the
// data of an SSE "delta" event on GET /watch. Entered and changed use
// the PathJSON shape of /topk except that rank is 0: a delta only sees a
// slice of the result, so a real rank cannot be assigned, and a
// positional one would read as the /topk meaning and mislead clients.
type deltaJSON struct {
	Clock   int64               `json:"clock"`
	Epoch   int64               `json:"epoch"`
	Reset   bool                `json:"reset,omitempty"`
	Missed  int                 `json:"missed,omitempty"`
	Entered []hotpaths.PathJSON `json:"entered"`
	Changed []hotpaths.PathJSON `json:"changed"`
	Left    []uint64            `json:"left"`
}

// unranked converts delta paths to the wire form with rank zeroed (see
// deltaJSON).
func unranked(paths []hotpaths.HotPath) []hotpaths.PathJSON {
	out := hotpaths.PathsJSON(paths)
	for i := range out {
		out[i].Rank = 0
	}
	return out
}

func writeSSE(w http.ResponseWriter, d hotpaths.Delta) error {
	left := d.Left
	if left == nil {
		left = []uint64{}
	}
	body, err := json.Marshal(deltaJSON{
		Clock:   d.Clock,
		Epoch:   d.Epoch,
		Reset:   d.Reset,
		Missed:  d.Missed,
		Entered: unranked(d.Entered),
		Changed: unranked(d.Changed),
		Left:    left,
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: delta\ndata: %s\n\n", d.Epoch, body)
	return err
}

// handleWatch serves GET /watch: a Server-Sent Events stream carrying one
// JSON delta per epoch boundary for a standing query built from the same
// k/min_hotness/bbox/sort parameters as /topk (k defaults to -k). The
// first event is a reset carrying the query's current result; the stream
// ends when the client disconnects or the daemon shuts down. A client
// that reads too slowly never blocks ingestion — it is re-baselined by a
// reset event whose missed field counts the dropped epochs (see the
// README's watching section).
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	q, err := queryParams(r, s.src.Config().K)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("streaming unsupported by connection"))
		return
	}
	sub, err := s.src.Subscribe(q)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	defer sub.Close()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.closing:
			return
		case d, open := <-sub.Deltas():
			if !open {
				return // backend closed: daemon shutting down
			}
			if err := writeSSE(w, d); err != nil {
				return // client went away mid-event
			}
			fl.Flush()
		}
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.src.Stats()
	// Counters only: the epoch/clock/path-count trio comes from the
	// backend's incrementally-tracked accessors (Stats and Clock), never
	// from Snapshot — a monitoring scrape must not copy the path table.
	resp := map[string]any{
		"observations":   st.Observations,
		"reports":        st.Reports,
		"responses":      st.Responses,
		"paths_created":  st.PathsCreated,
		"paths_expired":  st.PathsExpired,
		"crossings":      st.Crossings,
		"index_size":     st.IndexSize,
		"epoch":          st.Epochs,
		"clock":          s.src.Clock(),
		"snapshot_paths": st.IndexSize,
		"shards":         s.src.Shards(),
		"uptime_seconds": int(time.Since(s.started).Seconds()),
		"wal_enabled":    s.dur != nil,
		"replica":        s.fol != nil,
		// Zero partition_count means unpartitioned (the default); the
		// gateway's prober cross-checks both fields against its table.
		"partition_id":    s.partID,
		"partition_count": s.partN,
	}
	if s.fol != nil {
		rs := s.fol.Replication()
		resp["replication_primary"] = rs.Primary
		resp["replication_connected"] = rs.Connected
		resp["replication_applied_lsn"] = rs.AppliedLSN
		resp["replication_applied_epoch"] = rs.AppliedEpoch
		resp["replication_applied_clock"] = rs.AppliedClock
		resp["replication_primary_lsn"] = rs.PrimaryLSN
		resp["replication_primary_epoch"] = rs.PrimaryEpoch
		resp["replication_lag_records"] = rs.LagRecords
		resp["replication_lag_epochs"] = rs.LagEpochs
		resp["replication_reconnects"] = rs.Reconnects
		resp["replication_bootstraps"] = rs.Bootstraps
		resp["replication_last_error"] = rs.LastError
	}
	if s.dur != nil {
		ws := s.dur.WAL()
		resp["wal_records"] = ws.NextLSN
		resp["wal_segments"] = ws.Segments
		resp["wal_bytes"] = ws.Bytes
		resp["wal_syncs"] = ws.Syncs
		resp["wal_checkpoints"] = ws.Checkpoints
		resp["wal_checkpoint_lsn"] = ws.LastCheckpointLSN
		resp["wal_replayed"] = ws.Replayed
		// Empty while healthy; the poisoning error once journal I/O has
		// failed (every write then 503s until the daemon restarts).
		walErr := ""
		if err := s.dur.Err(); err != nil {
			walErr = err.Error()
		}
		resp["wal_error"] = walErr
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCheckpoint serves POST /admin/checkpoint: force a full-state
// checkpoint and truncate WAL segments it covers. 409 when the daemon
// runs without -wal.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	if s.dur == nil {
		httpError(w, http.StatusConflict, errors.New("durability is disabled; start the daemon with -wal"))
		return
	}
	lsn, err := s.dur.Checkpoint()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"lsn": lsn})
}

// sloDegradedBurn is the fast-window burn rate past which the /healthz
// slo component reports degraded: spending error budget an order of
// magnitude faster than the objective allows is an incident, not noise.
const sloDegradedBurn = 10.0

// handleHealthz reports liveness — and, with -wal, writability: once the
// journal is poisoned by an I/O failure every write is failing, so
// answering 200 would keep load balancers routing ingest at a daemon
// that can only refuse it. In -follow mode it reports replication health
// instead: a follower that lost its primary, or whose record lag exceeds
// -max-lag, serves stale answers and must be rotated out of read pools.
//
// The body carries a stable machine-readable `reason` token
// (wal_poisoned, replication_disconnected, replication_lag) so operators
// and automation can branch on the cause without parsing prose, and
// `?verbose=1` adds a per-component breakdown (wal, replication,
// topology, slo). Every ok<->degraded flip is recorded in the flight
// recorder as a health_transition event.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reason, errMsg := "", ""
	body := map[string]any{}
	if s.dur != nil {
		if err := s.dur.Err(); err != nil {
			reason, errMsg = "wal_poisoned", err.Error()
		}
	}
	var rs hotpaths.ReplicationStats
	if s.fol != nil {
		rs = s.fol.Replication()
		body["replication_lag_records"] = rs.LagRecords
		body["replication_lag_epochs"] = rs.LagEpochs
		if reason == "" {
			switch {
			case !rs.Connected:
				reason = "replication_disconnected"
				errMsg = "replication stream disconnected"
				if rs.LastError != "" {
					errMsg += ": " + rs.LastError
				}
			case s.maxLag > 0 && rs.LagRecords > s.maxLag:
				reason = "replication_lag"
				errMsg = fmt.Sprintf("replication lag %d records exceeds the %d threshold", rs.LagRecords, s.maxLag)
			}
		}
	}
	status, code := "ok", http.StatusOK
	if reason != "" {
		status, code = "degraded", http.StatusServiceUnavailable
		body["reason"] = reason
		body["error"] = errMsg
	}
	body["status"] = status
	s.recordHealthTransition(r.Context(), status, reason)
	if r.URL.Query().Get("verbose") == "1" {
		body["components"] = s.healthComponents(rs, reason)
	}
	writeJSON(w, code, body)
}

// healthComponents is the ?verbose=1 breakdown: one entry per subsystem
// with its own ok/degraded verdict, so an operator sees which layer —
// journal, stream, slot assignment, or error budget — is the problem.
func (s *server) healthComponents(rs hotpaths.ReplicationStats, reason string) map[string]any {
	comps := map[string]any{}
	wal := map[string]any{"status": "disabled"}
	if s.dur != nil {
		wal["status"] = "ok"
		if reason == "wal_poisoned" {
			wal["status"] = "degraded"
			wal["error"] = s.dur.Err().Error()
		}
	}
	comps["wal"] = wal
	repl := map[string]any{"status": "disabled"}
	if s.fol != nil {
		repl = map[string]any{
			"status":      "ok",
			"primary":     rs.Primary,
			"connected":   rs.Connected,
			"lag_records": rs.LagRecords,
			"lag_epochs":  rs.LagEpochs,
		}
		if reason == "replication_disconnected" || reason == "replication_lag" {
			repl["status"] = "degraded"
		}
	}
	comps["replication"] = repl
	topo := map[string]any{"status": "ok", "partitioned": s.partN > 0}
	if s.partN > 0 {
		topo["partition_id"] = s.partID
		topo["partition_count"] = s.partN
	}
	comps["topology"] = topo
	slo := s.slo.Status()
	sloStatus := "ok"
	if slo.Max() >= sloDegradedBurn {
		sloStatus = "degraded"
	}
	comps["slo"] = map[string]any{"status": sloStatus, "burn": slo}
	return comps
}

// recordHealthTransition emits one health_transition event per state
// change. /healthz is polled constantly; repeats are not news.
func (s *server) recordHealthTransition(ctx context.Context, status, reason string) {
	s.healthMu.Lock()
	prev := s.lastHealth
	s.lastHealth = status
	s.healthMu.Unlock()
	if prev == status {
		return
	}
	if prev == "" {
		prev = "unknown"
	}
	attrs := []flightrec.Attr{
		flightrec.KV("component", "daemon"),
		flightrec.KV("from", prev),
		flightrec.KV("to", status),
	}
	if reason != "" {
		attrs = append(attrs, flightrec.KV("reason", reason))
	}
	flightrec.Default.RecordCtx(ctx, flightrec.EvHealthTransition, attrs...)
}

// handleReconnect serves POST /admin/reconnect on followers: drop the
// replication stream and resume from the applied LSN — the operational
// lever after a primary failover behind a stable URL, and what the e2e
// test uses to force a mid-run reconnect.
func (s *server) handleReconnect(w http.ResponseWriter, r *http.Request) {
	s.fol.Reconnect()
	writeJSON(w, http.StatusOK, map[string]any{"reconnecting": true})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Warn("write response failed", "error", err)
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}

package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"hotpaths"
)

// server wires the Engine to the HTTP surface. All handler state lives in
// the Engine, which is safe for concurrent use; the server itself is
// stateless beyond its start time.
type server struct {
	eng     *hotpaths.Engine
	started time.Time
}

func newServer(eng *hotpaths.Engine) *server {
	return &server{eng: eng, started: time.Now()}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /observe", s.handleObserve)
	mux.HandleFunc("POST /tick", s.handleTick)
	mux.HandleFunc("GET /topk", s.handleTopK)
	mux.HandleFunc("GET /paths.geojson", s.handleGeoJSON)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// observationJSON is the wire form of one measurement.
type observationJSON struct {
	Object int     `json:"object"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	T      int64   `json:"t"`
	SigmaX float64 `json:"sigma_x,omitempty"`
	SigmaY float64 `json:"sigma_y,omitempty"`
}

// observeRequest is the POST /observe body. Tick, when positive, advances
// the engine clock after the batch is ingested — the convenient form for a
// single-writer feed that ticks as it streams; multi-writer deployments
// should leave it zero and drive POST /tick from one place.
type observeRequest struct {
	Observations []observationJSON `json:"observations"`
	Tick         int64             `json:"tick,omitempty"`
}

type tickRequest struct {
	Now int64 `json:"now"`
}

type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type pathJSON struct {
	ID      uint64    `json:"id"`
	Rank    int       `json:"rank"`
	Hotness int       `json:"hotness"`
	Length  float64   `json:"length"`
	Score   float64   `json:"score"`
	Start   pointJSON `json:"start"`
	End     pointJSON `json:"end"`
}

// maxRequestBytes caps request bodies so one oversized batch cannot
// exhaust the daemon's memory.
const maxRequestBytes = 8 << 20

// decodeBody decodes a size-limited JSON request body, reporting 413 for
// oversized payloads and 400 for malformed ones. It returns false after
// writing the error response.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		}
		return false
	}
	return true
}

func (s *server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req observeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	batch := make([]hotpaths.Observation, len(req.Observations))
	for i, o := range req.Observations {
		batch[i] = hotpaths.Observation{
			ObjectID: o.Object,
			X:        o.X, Y: o.Y, T: o.T,
			SigmaX: o.SigmaX, SigmaY: o.SigmaY,
		}
	}
	if err := s.eng.ObserveBatch(batch); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp := map[string]any{"accepted": len(batch)}
	if req.Tick > 0 {
		if err := s.eng.Tick(req.Tick); err != nil {
			// The batch was already ingested; report that alongside the
			// tick failure so clients don't re-send the observations.
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error":    err.Error(),
				"accepted": len(batch),
			})
			return
		}
		resp["now"] = req.Tick
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleTick(w http.ResponseWriter, r *http.Request) {
	var req tickRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.eng.Tick(req.Now); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"now": req.Now})
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, toPathJSON(s.eng.TopK()))
}

func (s *server) handleGeoJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/geo+json")
	if err := s.eng.WriteGeoJSON(w); err != nil {
		// Headers are gone; all we can do is log.
		logf("write geojson: %v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"observations":   st.Observations,
		"reports":        st.Reports,
		"responses":      st.Responses,
		"paths_created":  st.PathsCreated,
		"paths_expired":  st.PathsExpired,
		"crossings":      st.Crossings,
		"index_size":     st.IndexSize,
		"shards":         s.eng.Shards(),
		"uptime_seconds": int(time.Since(s.started).Seconds()),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func toPathJSON(paths []hotpaths.HotPath) []pathJSON {
	out := make([]pathJSON, len(paths))
	for i, hp := range paths {
		out[i] = pathJSON{
			ID:      hp.ID,
			Rank:    i + 1,
			Hotness: hp.Hotness,
			Length:  hp.Length(),
			Score:   hp.Score(),
			Start:   pointJSON{hp.Start.X, hp.Start.Y},
			End:     pointJSON{hp.End.X, hp.End.Y},
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logf("write response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}

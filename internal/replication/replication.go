// Package replication ships a primary's write-ahead log to read-only
// followers over HTTP, turning the durability journal into a replication
// log: because System and Engine are observation-order-deterministic and
// the WAL fixes a total observation order, a follower that applies the
// same record stream reconstructs bit-identical state.
//
// # Protocol
//
// The primary mounts three endpoints (hotpathsd does this when -wal is
// set):
//
//	GET /wal/meta        the journal's meta.json — the Config the log was
//	                     written under, which the follower must replay with
//	GET /wal/checkpoint  the newest checkpoint blob; the X-Hotpaths-Checkpoint-Lsn
//	                     header carries the LSN its state covers up to
//	GET /wal/stream?from=LSN
//	                     a long-lived chunked response of raw WAL frames
//	                     (the on-disk length-prefixed CRC framing, decoded
//	                     with wal.DecodeRecord) starting at LSN `from`,
//	                     with KindHeartbeat control frames interleaved so
//	                     the follower tracks the primary's position and the
//	                     link's liveness even when no records flow
//
// When `from` has been truncated away by a checkpoint — or lies beyond
// the primary's log end, which happens when a primary lost its unsynced
// tail in a crash and the follower is ahead of the rewritten LSN space —
// the stream answers 410 Gone and the follower must bootstrap again:
// fetch the checkpoint, restore it, and resume from its LSN.
//
// The stream carries flushed bytes, not fsynced ones, so a follower can
// briefly hold records the primary loses in a power failure; the 410
// re-bootstrap is what heals that divergence. Replication lag is bounded
// by the primary's group-commit flush cadence plus the poll interval.
package replication

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"hotpaths/internal/wal"
)

// Endpoint paths, shared by the server handlers and the client.
const (
	StreamPath     = "/wal/stream"
	CheckpointPath = "/wal/checkpoint"
	MetaPath       = "/wal/meta"
)

// Header names carrying LSN positions alongside binary bodies.
const (
	HeaderFromLSN       = "X-Hotpaths-From-Lsn"
	HeaderCheckpointLSN = "X-Hotpaths-Checkpoint-Lsn"
)

// metaFile is the config descriptor the durability layer writes into the
// log directory (hotpaths' meta.json); served verbatim by ServeMeta.
const metaFile = "meta.json"

// Status is the primary's replication position: the LSN the next appended
// record will get, plus the epoch sequence and clock of the last processed
// epoch. Heartbeat frames carry it to followers.
type Status struct {
	NextLSN uint64
	Epoch   int64
	Clock   int64
}

// Server serves one WAL directory to followers. The handlers read the
// segment and checkpoint files directly — never through the writing Log —
// so they need no coordination with the ingest path beyond the frame CRCs.
type Server struct {
	// Dir is the primary's WAL directory.
	Dir string

	// Position reports the primary's current Status; heartbeats carry it.
	Position func() Status

	// Poll is how often a caught-up stream re-checks the log for new
	// records (default 25ms — the default group-commit interval).
	Poll time.Duration

	// Heartbeat is the cadence of heartbeat frames on an idle stream
	// (default 1s). Every batch of records is also followed by one, so an
	// active stream carries fresher positions than the cadence implies.
	Heartbeat time.Duration

	// Closing, when non-nil, ends every open stream when closed (the
	// daemon's shutdown hook), so streams do not pin a graceful shutdown.
	Closing <-chan struct{}
}

func (s *Server) poll() time.Duration {
	if s.Poll > 0 {
		return s.Poll
	}
	return 25 * time.Millisecond
}

func (s *Server) heartbeat() time.Duration {
	if s.Heartbeat > 0 {
		return s.Heartbeat
	}
	return time.Second
}

// ServeMeta serves the journal's meta.json: the Config the log was
// written under, which a follower must replay with.
func (s *Server) ServeMeta(w http.ResponseWriter, r *http.Request) {
	b, err := os.ReadFile(filepath.Join(s.Dir, metaFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			http.Error(w, `{"error":"no meta.json; not a durable log directory"}`, http.StatusNotFound)
			return
		}
		http.Error(w, `{"error":"read meta"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// ServeCheckpoint serves the newest readable checkpoint blob, its covered
// LSN in the X-Hotpaths-Checkpoint-Lsn header. 404 when the directory has
// no checkpoint yet (the follower then replays from LSN 0).
func (s *Server) ServeCheckpoint(w http.ResponseWriter, r *http.Request) {
	lsns, err := wal.Checkpoints(s.Dir)
	if err != nil {
		http.Error(w, `{"error":"list checkpoints"}`, http.StatusInternalServerError)
		return
	}
	// Newest first; skip files deleted by retention between list and read.
	for i := len(lsns) - 1; i >= 0; i-- {
		payload, err := wal.ReadCheckpoint(s.Dir, lsns[i])
		if err != nil {
			continue
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set(HeaderCheckpointLSN, strconv.FormatUint(lsns[i], 10))
		w.Write(payload)
		return
	}
	http.Error(w, `{"error":"no checkpoint"}`, http.StatusNotFound)
}

// ServeStream serves GET /wal/stream?from=LSN: a long-lived chunked
// response of raw WAL frames starting at `from`, interleaved with
// heartbeat frames. It ends when the client disconnects, the server's
// Closing channel closes, or the position is truncated mid-stream (the
// client reconnects and receives the 410 then).
func (s *Server) ServeStream(w http.ResponseWriter, r *http.Request) {
	fromStr := r.URL.Query().Get("from")
	if fromStr == "" {
		fromStr = "0"
	}
	from, err := strconv.ParseUint(fromStr, 10, 64)
	if err != nil {
		http.Error(w, `{"error":"from must be a non-negative integer"}`, http.StatusBadRequest)
		return
	}
	if st := s.position(); from > st.NextLSN {
		// The follower is ahead of the log — it streamed records a crashed
		// primary lost. Resuming would silently hand it different records
		// under the same LSNs; force a checkpoint bootstrap instead.
		s.gone(w, fmt.Sprintf("requested LSN %d is beyond the log end %d; bootstrap from the checkpoint", from, st.NextLSN))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, `{"error":"streaming unsupported by connection"}`, http.StatusInternalServerError)
		return
	}

	tailer := wal.Follow(s.Dir, from)
	defer tailer.Close()
	// Probe before committing to a 200: a truncated position must surface
	// as a 410 status, which is impossible once the header is out.
	frames, _, n, err := tailer.ReadBatch(0)
	var te *wal.TruncatedError
	if errors.As(err, &te) {
		s.gone(w, te.Error())
		return
	}
	if err != nil {
		http.Error(w, `{"error":`+strconv.Quote(err.Error())+`}`, http.StatusInternalServerError)
		return
	}

	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set(HeaderFromLSN, strconv.FormatUint(from, 10))
	w.WriteHeader(http.StatusOK)
	mStreams.Add(1)
	defer mStreams.Add(-1)

	hb := time.NewTicker(s.heartbeat())
	defer hb.Stop()
	poll := time.NewTicker(s.poll())
	defer poll.Stop()

	// First write: a heartbeat so the client learns the primary position
	// immediately, then whatever the probe read; every later batch is
	// chased by a heartbeat too, so the follower's lag reading stays
	// current while records flow.
	if err := s.writeHeartbeat(w); err != nil {
		return
	}
	for {
		if n > 0 {
			if _, err := w.Write(frames); err != nil {
				return
			}
			mStreamBytes.Add(uint64(len(frames)))
			mStreamRecords.Add(uint64(n))
			if err := s.writeHeartbeat(w); err != nil {
				return
			}
			fl.Flush()
		} else {
			fl.Flush()
			select {
			case <-r.Context().Done():
				return
			case <-s.closing():
				return
			case <-hb.C:
				if err := s.writeHeartbeat(w); err != nil {
					return
				}
			case <-poll.C:
			}
		}
		frames, _, n, err = tailer.ReadBatch(0)
		if err != nil {
			// Truncated mid-stream (or worse): end the response; the client
			// reconnects and the fresh request reports the real status.
			return
		}
	}
}

func (s *Server) position() Status {
	if s.Position == nil {
		return Status{}
	}
	return s.Position()
}

func (s *Server) closing() <-chan struct{} {
	return s.Closing
}

func (s *Server) gone(w http.ResponseWriter, msg string) {
	lsns, _ := wal.Checkpoints(s.Dir)
	if len(lsns) > 0 {
		w.Header().Set(HeaderCheckpointLSN, strconv.FormatUint(lsns[len(lsns)-1], 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusGone)
	fmt.Fprintf(w, `{"error":%s}`+"\n", strconv.Quote(msg))
}

func (s *Server) writeHeartbeat(w io.Writer) error {
	st := s.position()
	frame, err := wal.AppendRecord(nil, wal.Record{
		Kind:    wal.KindHeartbeat,
		NextLSN: st.NextLSN,
		Epoch:   st.Epoch,
		T:       st.Clock,
	})
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	if err == nil {
		mStreamBytes.Add(uint64(len(frame)))
	}
	return err
}

// ErrSnapshotNeeded is returned by Client.Stream when the primary cannot
// resume from the requested LSN (truncated away, or beyond the log end
// after a primary crash): the follower must re-bootstrap from the
// checkpoint before streaming again.
var ErrSnapshotNeeded = errors.New("replication: primary cannot resume from this LSN; bootstrap from the checkpoint")

// ErrNoCheckpoint is returned by Client.Checkpoint when the primary has
// not written one yet; the follower then replays from LSN 0.
var ErrNoCheckpoint = errors.New("replication: primary has no checkpoint yet")

// Client fetches a primary's replication feed.
type Client struct {
	// Base is the primary's base URL, e.g. "http://primary:8080".
	Base string

	// HTTP is the client used for every request (default: a client with
	// no overall timeout — streams are long-lived).
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	u := strings.TrimSuffix(c.Base, "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	return c.httpClient().Do(req)
}

// bodyError summarises a non-OK response.
func bodyError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("replication: %s %s: %s: %s", resp.Request.Method, resp.Request.URL.Path, resp.Status, strings.TrimSpace(string(b)))
}

// Meta fetches the primary's journal configuration (the meta.json bytes).
func (c *Client) Meta(ctx context.Context) ([]byte, error) {
	resp, err := c.get(ctx, MetaPath)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, bodyError(resp)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}

// Checkpoint fetches the primary's newest checkpoint blob and the LSN its
// state covers up to. ErrNoCheckpoint when none exists yet.
func (c *Client) Checkpoint(ctx context.Context) (lsn uint64, payload []byte, err error) {
	resp, err := c.get(ctx, CheckpointPath)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return 0, nil, ErrNoCheckpoint
	}
	if resp.StatusCode != http.StatusOK {
		return 0, nil, bodyError(resp)
	}
	lsn, err = strconv.ParseUint(resp.Header.Get(HeaderCheckpointLSN), 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("replication: checkpoint response has bad %s header: %w", HeaderCheckpointLSN, err)
	}
	payload, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("replication: read checkpoint body: %w", err)
	}
	return lsn, payload, nil
}

// Stream connects to the primary's WAL stream at LSN from and delivers
// records until the connection ends: fn receives every data record with
// its LSN (strictly sequential from `from`), hb every heartbeat (hb may
// be nil). It returns ErrSnapshotNeeded when the primary cannot resume
// from `from`, fn's error if fn rejects a record, and the transport error
// otherwise (io.EOF-like errors mean the primary went away or shut down;
// the caller reconnects with its new position).
func (c *Client) Stream(ctx context.Context, from uint64, fn func(lsn uint64, rec wal.Record) error, hb func(Status)) error {
	resp, err := c.get(ctx, StreamPath+"?from="+strconv.FormatUint(from, 10))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone || resp.StatusCode == http.StatusConflict {
		return fmt.Errorf("%w (primary said: %v)", ErrSnapshotNeeded, bodyError(resp))
	}
	if resp.StatusCode != http.StatusOK {
		return bodyError(resp)
	}
	if got := resp.Header.Get(HeaderFromLSN); got != strconv.FormatUint(from, 10) {
		return fmt.Errorf("replication: stream started at LSN %s, requested %d", got, from)
	}

	// The frame loop issues two small reads per record; buffering keeps
	// those out of the chunked-transfer parser (measurably faster on the
	// follower's hot replay path).
	body := bufio.NewReaderSize(resp.Body, 64<<10)
	lsn := from
	hdr := make([]byte, 8)
	frame := make([]byte, 0, wal.MaxFrame)
	for {
		if _, err := io.ReadFull(body, hdr); err != nil {
			return fmt.Errorf("replication: stream ended: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n == 0 || n > wal.MaxPayload {
			return fmt.Errorf("replication: stream carried implausible payload length %d", n)
		}
		frame = append(frame[:0], hdr...)
		frame = frame[:8+int(n)]
		if _, err := io.ReadFull(body, frame[8:]); err != nil {
			return fmt.Errorf("replication: stream ended mid-frame: %w", err)
		}
		rec, _, err := wal.DecodeRecord(frame)
		if err != nil {
			return fmt.Errorf("replication: corrupt stream frame at LSN %d: %w", lsn, err)
		}
		if rec.Kind == wal.KindHeartbeat {
			if hb != nil {
				hb(Status{NextLSN: rec.NextLSN, Epoch: rec.Epoch, Clock: rec.T})
			}
			continue
		}
		if err := fn(lsn, rec); err != nil {
			return err
		}
		lsn++
	}
}

// ParseBase validates a primary base URL for early, friendly errors.
func ParseBase(base string) error {
	u, err := url.Parse(base)
	if err != nil {
		return fmt.Errorf("replication: primary URL %q: %w", base, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("replication: primary URL %q must be http or https", base)
	}
	if u.Host == "" {
		return fmt.Errorf("replication: primary URL %q has no host", base)
	}
	return nil
}

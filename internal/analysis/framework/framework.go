// Package framework is the dependency-free driver core behind
// cmd/hotpathsvet, the repo's contract-enforcing static-analysis suite.
// It reimplements the small slice of golang.org/x/tools/go/analysis the
// suite needs — Analyzer, Pass, diagnostics, a package loader, the
// `go vet -vettool` unit-checker protocol and suppression directives —
// on the standard library alone (go/ast, go/types, go/importer), so the
// main module stays dependency-free, matching internal/metrics and
// internal/tracing.
//
// # Analyzers
//
// An Analyzer inspects one type-checked package at a time and reports
// diagnostics through its Pass. Analyzers are purely intra-package: no
// facts flow between packages, which keeps the vettool protocol trivial
// and the analyses order-independent.
//
// # Suppression directives
//
// A finding can be waived at a call site that deliberately breaks a
// contract — the waiver is part of the contract's documentation:
//
//	//hotpathsvet:ignore locksnapshot flush barrier: queues quiesce under the write lock by design
//	e.shards[i].ch <- msg{flush: ack}
//
// The directive names one analyzer (or a comma-separated list, or "all")
// and MUST carry a reason after the names; a bare directive is itself
// reported. It applies to findings on its own line or the line directly
// below, mirroring //lint:ignore.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one contract check. Doc states the contract it
// enforces — the prose that used to live only in CHANGES.md and review
// comments.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string

	// Doc is the contract statement, shown by cmd/hotpathsvet -help.
	Doc string

	// Run inspects one package, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the standard vet shape editors parse:
// file:line:col: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers applies each analyzer to the package and returns the
// surviving findings: suppressed ones are dropped, and malformed ignore
// directives (no reason) are themselves reported. Findings come back
// sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs, bad := collectDirectives(pkg.Fset, pkg.Files)
	var out []Diagnostic
	out = append(out, bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return out, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
		for _, d := range pass.diags {
			if !dirs.suppresses(a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "hotpathsvet:ignore"

// directive is one parsed //hotpathsvet:ignore comment.
type directive struct {
	names map[string]bool // analyzer names, or {"all": true}
	file  string
	line  int
}

type directives []directive

// suppresses reports whether any directive covers the finding: same
// file, on the directive's line or the line directly below it.
func (ds directives) suppresses(analyzer string, pos token.Position) bool {
	for _, d := range ds {
		if d.file != pos.Filename {
			continue
		}
		if pos.Line != d.line && pos.Line != d.line+1 {
			continue
		}
		if d.names["all"] || d.names[analyzer] {
			return true
		}
	}
	return false
}

// collectDirectives parses every suppression comment in the package.
// Directives without a reason are returned as findings — an unexplained
// waiver defeats the point of machine-checked contracts.
func collectDirectives(fset *token.FileSet, files []*ast.File) (directives, []Diagnostic) {
	var ds directives
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "framework",
						Pos:      pos,
						Message:  "hotpathsvet:ignore directive needs an analyzer name and a reason: //hotpathsvet:ignore <analyzer> <why this site is exempt>",
					})
					continue
				}
				names := make(map[string]bool)
				for _, n := range strings.Split(fields[0], ",") {
					names[strings.TrimSpace(n)] = true
				}
				ds = append(ds, directive{names: names, file: pos.Filename, line: pos.Line})
			}
		}
	}
	return ds, bad
}

// ---- shared type-aware helpers -------------------------------------------

// ErrorType is the built-in error interface.
var ErrorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorErrorCall reports whether e is a call of the error interface's
// Error() method — `err.Error()` for any err whose type implements error.
func IsErrorErrorCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	if basic, ok := sig.Results().At(0).Type().(*types.Basic); !ok || basic.Kind() != types.String {
		return false
	}
	return types.Implements(sig.Recv().Type(), ErrorType)
}

// Callee resolves the static callee of a call, or nil for dynamic calls
// (function values, interface methods resolve to the interface method).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsPkgFunc reports whether fn is the named function of the package with
// the given import path (exact, or a path ending in "/"+path so fixture
// and vendored copies match).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == pkgPath || strings.HasSuffix(p, "/"+pkgPath)
}

// RecvNamed returns the named type of fn's receiver (de-pointered), or
// nil when fn has none.
func RecvNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsMethodOf reports whether fn is a method named methodName on a type
// named typeName defined in a package whose name is pkgName. Matching by
// package NAME (not path) lets analyzers recognise both the real
// internal packages and their analyzertest fixture stand-ins.
func IsMethodOf(fn *types.Func, pkgName, typeName, methodName string) bool {
	if fn == nil || fn.Name() != methodName {
		return false
	}
	named := RecvNamed(fn)
	if named == nil || named.Obj().Name() != typeName {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == pkgName
}

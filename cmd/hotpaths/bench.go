package main

import (
	"errors"
	"flag"
	"fmt"
	iofs "io/fs"
	"os"
	"strings"

	"hotpaths/internal/bench"
)

// runBench implements the `hotpaths bench` subcommand: run the core
// benchmark suite, write the trajectory point, and — when a baseline
// exists — gate on regressions. Exit status 0 means the point was
// written and no bench regressed past -max-regress; 1 is a regression;
// 2 is a usage or runtime error.
//
//	hotpaths bench [-out BENCH_core.json] [-baseline BENCH_core.json]
//	               [-max-regress 0.25] [-run name,name] [-list] [-q]
//	               [-paper BENCH_paper.json]
func runBench(args []string) int {
	fs := flag.NewFlagSet("hotpaths bench", flag.ExitOnError)
	var (
		out        = fs.String("out", "BENCH_core.json", "file to write the bench report to (empty: stdout only)")
		baseline   = fs.String("baseline", "", "baseline report to diff against (missing file: comparison skipped)")
		maxRegress = fs.Float64("max-regress", 0.25, "fail when ns/op grows by more than this fraction over baseline")
		run        = fs.String("run", "", "comma-separated subset of benches to run (default: all)")
		list       = fs.Bool("list", false, "list bench names and exit")
		quiet      = fs.Bool("q", false, "suppress per-bench progress on stderr")
		paper      = fs.String("paper", "", "also regenerate the paper_accuracy accuracy-vs-communication curve to this file (deterministic; empty disables)")
	)
	fs.Parse(args)

	if *list {
		for _, name := range bench.Names() {
			fmt.Println(name)
		}
		return 0
	}

	var filter []string
	if *run != "" {
		filter = strings.Split(*run, ",")
	}
	rep, err := bench.Run(filter, !*quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotpaths bench:", err)
		return 2
	}

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "hotpaths bench:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "wrote %d benches to %s\n", len(rep.Points), *out)
	}

	if *paper != "" {
		prep, err := bench.RunPaper(!*quiet)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotpaths bench:", err)
			return 2
		}
		if err := prep.WriteFile(*paper); err != nil {
			fmt.Fprintln(os.Stderr, "hotpaths bench:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "wrote paper_accuracy curve (%d eps points) to %s\n",
			len(prep.Points), *paper)
	}

	if *baseline != "" {
		base, err := bench.Load(*baseline)
		switch {
		case errors.Is(err, iofs.ErrNotExist):
			fmt.Fprintf(os.Stderr, "no baseline at %s; comparison skipped\n", *baseline)
		case err != nil:
			fmt.Fprintln(os.Stderr, "hotpaths bench:", err)
			return 2
		default:
			regressions, notes := bench.Compare(base, rep, *maxRegress)
			for _, n := range notes {
				fmt.Fprintln(os.Stderr, "note:", n)
			}
			if len(regressions) > 0 {
				for _, r := range regressions {
					fmt.Fprintln(os.Stderr, "REGRESSION:", r)
				}
				return 1
			}
			fmt.Fprintf(os.Stderr, "no regressions vs %s (limit +%.0f%%)\n",
				*baseline, *maxRegress*100)
		}
	}
	return 0
}

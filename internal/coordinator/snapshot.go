package coordinator

import (
	"sort"
	"sync"

	"hotpaths/internal/geom"
	"hotpaths/internal/gridindex"
	"hotpaths/internal/motion"
)

// Snapshot is an immutable copy of the coordinator's path store at one
// instant: every live path with its hotness, in canonical order (hottest
// first, ties broken by length then id — the TopK order). Taking one is
// O(paths); the grid index over end vertices that answers Region is
// derived lazily from the copied paths on first use, so snapshots that
// never run a spatial query pay nothing for it.
//
// A Snapshot never changes after extraction and is safe to share across
// goroutines while the live coordinator keeps mutating. Counters are not
// part of it — the caller captures whatever stats it needs at the same
// instant (the public hotpaths.Snapshot does exactly that).
type Snapshot struct {
	Paths []motion.HotPath // canonical hottest-first order

	// Epoch is the coordinator's epoch sequence number (Stats.Epochs) at
	// the instant the snapshot was taken. Subscription deltas carry it as
	// their cursor; synthetic snapshots built with SnapshotOf leave it 0.
	Epoch int

	bounds     geom.Rect
	cols, rows int

	once sync.Once
	grid *gridindex.Grid
	rank map[motion.PathID]int // path id -> index into Paths
}

// Snapshot extracts an immutable copy of the current path store. The
// caller must hold whatever lock protects the coordinator; the returned
// value needs no further synchronisation.
func (c *Coordinator) Snapshot() *Snapshot {
	s := SnapshotOf(c.TopK(0), c.cfg.Bounds, c.cfg.Cols, c.cfg.Rows)
	s.Epoch = c.stats.Epochs
	return s
}

// SnapshotOf builds a snapshot directly from a path set in canonical
// (hottest-first) order, with the grid geometry Region queries should use.
// It is how coordinators take snapshots, and lets benchmarks and tools
// assemble synthetic snapshots without replaying a workload.
func SnapshotOf(paths []motion.HotPath, bounds geom.Rect, cols, rows int) *Snapshot {
	return &Snapshot{
		Paths:  paths,
		bounds: bounds,
		cols:   cols,
		rows:   rows,
	}
}

// buildIndex populates the snapshot's grid over the copied paths' end
// vertices. The bounds and resolution were validated when the live
// coordinator was constructed; if reconstruction fails anyway the grid
// stays nil and Region falls back to a linear scan.
func (s *Snapshot) buildIndex() {
	g, err := gridindex.New(s.bounds, s.cols, s.rows)
	if err != nil {
		return
	}
	s.rank = make(map[motion.PathID]int, len(s.Paths))
	for i, hp := range s.Paths {
		s.rank[hp.Path.ID] = i
		g.Insert(gridindex.Entry{ID: hp.Path.ID, End: hp.Path.E, Start: hp.Path.S})
	}
	s.grid = g
}

// Region returns the snapshot's paths whose end vertex lies inside r
// (inclusive), in canonical order. It is answered by a grid-index range
// scan — only the cells overlapping r are visited — so small viewports
// over large snapshots cost far less than a linear filter.
func (s *Snapshot) Region(r geom.Rect) []motion.HotPath {
	s.once.Do(s.buildIndex)
	if s.grid == nil {
		var out []motion.HotPath
		for _, hp := range s.Paths {
			if r.Contains(hp.Path.E) {
				out = append(out, hp)
			}
		}
		return out
	}
	var idx []int
	s.grid.Query(r, func(e gridindex.Entry) bool {
		idx = append(idx, s.rank[e.ID])
		return true
	})
	sort.Ints(idx)
	out := make([]motion.HotPath, len(idx))
	for i, j := range idx {
		out[i] = s.Paths[j]
	}
	return out
}

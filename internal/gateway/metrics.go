package gateway

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"hotpaths/internal/metrics"
)

// Gateway-wide instruments. Per-partition instruments (request-duration
// histograms, health gauges) are registered per partition in New.
var (
	mPartitions = metrics.Default.Gauge("hotpathsgw_partitions",
		"Number of partitions in the routing table.", nil)
	mInflight = metrics.Default.Gauge("hotpathsgw_fanout_inflight",
		"Partition sub-requests currently in flight.", nil)
	mMergeSeconds = metrics.Default.Histogram("hotpathsgw_merge_seconds",
		"Time to merge the fleet's path sets into one view.",
		metrics.LatencyBuckets, nil)
	mPartial = metrics.Default.Counter("hotpathsgw_partial_responses_total",
		"Scatter-gather responses missing at least one partition.", nil)
)

// statusClasses matches hotpathsd's per-route counter buckets.
var statusClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// instrument wraps one gateway route with a request-duration histogram
// and status-class counters, hotpathsd's idiom: instruments register at
// wrap time, the request path touches only atomics.
func (g *Gateway) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := metrics.Default.Histogram("hotpathsgw_http_request_seconds",
		"Gateway HTTP request duration by route.",
		metrics.LatencyBuckets, metrics.Labels{"route": route})
	var counts [5]*metrics.Counter
	for i, class := range statusClasses {
		counts[i] = metrics.Default.Counter("hotpathsgw_http_requests_total",
			"Gateway HTTP requests by route and status class.",
			metrics.Labels{"route": route, "code": class})
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		hist.ObserveSince(t0)
		cls := rec.status / 100
		if cls < 1 || cls > 5 {
			cls = 2 // nothing written: net/http sends an implicit 200
		}
		counts[cls-1].Inc()
	}
}

// statusRecorder captures the response status for the class counters. It
// implements Flusher unconditionally so the SSE /watch fan-in — which
// type-asserts its writer — keeps streaming through the wrapper, and
// forwards Hijacker/ReaderFrom to the underlying writer when it supports
// them.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := r.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, fmt.Errorf("hotpathsgw: underlying ResponseWriter does not support hijacking")
}

func (r *statusRecorder) ReadFrom(src io.Reader) (int64, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	if rf, ok := r.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(src)
	}
	// Strip ReadFrom from the destination or io.Copy would recurse right
	// back into this method.
	return io.Copy(struct{ io.Writer }{r.ResponseWriter}, src)
}

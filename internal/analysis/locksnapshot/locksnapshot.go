// Package locksnapshot defines an analyzer that keeps expensive or
// blocking work out of the engine and coordinator write-lock critical
// sections.
//
// # Contract
//
// The engine's single sync.RWMutex serialises every write; the tick
// loop, the gateway's routing table and the subscription hub all hold
// plain mutexes on their hot paths. Work done under those locks is work
// every other writer waits for, so the critical sections must stay
// O(dirty set): no building full O(paths) snapshots, no blocking channel
// sends, and absolutely no network round-trips. Each of those has been a
// reviewed-away regression risk since PR 4.
//
// Inside a region where a sync.Mutex or sync.RWMutex write lock is held
// (between x.Lock() and x.Unlock(), to the end of the function when the
// unlock is deferred, and throughout functions whose name ends in
// "Locked" — the repo convention for "caller holds the lock"), the
// analyzer flags:
//
//   - calls to any method named Snapshot — except when the enclosing
//     function is itself named Snapshot, which is the sanctioned
//     delegation pattern (Durable.Snapshot → sys.Snapshot under d.mu)
//   - channel sends not wrapped in a select with a default clause
//     (a send to a full/unbuffered channel blocks every writer behind
//     the lock)
//   - network I/O: net.Dial*, http.Get/Post/PostForm/Head, and any
//     method on *net/http.Client
//
// RLock sections are not checked: readers don't serialise each other.
// Scope: internal/engine, internal/gateway, internal/coordinator and
// the root hotpaths package.
package locksnapshot

import (
	"go/ast"
	"go/types"
	"strings"

	"hotpaths/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "locksnapshot",
	Doc:  "no Snapshot(), blocking channel send, or network I/O while holding an engine/coordinator write lock",
	Run:  run,
}

var scopeFragments = []string{
	"internal/engine",
	"internal/gateway",
	"internal/coordinator",
	"/testdata/",
}

func inScope(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	if pkg.Name() == "hotpaths" {
		return true // the root package owns the subscription hub and Durable
	}
	for _, frag := range scopeFragments {
		if strings.Contains(pkg.Path(), frag) {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if !inScope(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &scanner{pass: pass, funcName: fd.Name.Name}
			// *Locked suffix is the repo convention: caller holds the lock.
			s.block(fd.Body.List, strings.HasSuffix(fd.Name.Name, "Locked"))
		}
	}
	return nil
}

type scanner struct {
	pass     *framework.Pass
	funcName string
}

// block walks a statement list carrying the held-lock state. Nested
// function literals are skipped: they run later, usually on another
// goroutine, outside the critical section.
func (s *scanner) block(stmts []ast.Stmt, held bool) {
	for _, stmt := range stmts {
		switch st := stmt.(type) {
		case *ast.ExprStmt:
			switch s.lockOp(st.X) {
			case opLock:
				held = true
				continue
			case opUnlock:
				held = false
				continue
			}
			if held {
				s.checkExpr(st.X)
			}
		case *ast.DeferStmt:
			// defer x.Unlock() releases at return: held stays true for
			// the rest of the body. Other deferred work runs after (or
			// before, LIFO) the unlock — not checked.
			continue
		case *ast.GoStmt:
			continue // runs on its own goroutine
		case *ast.SendStmt:
			if held {
				s.pass.Reportf(st.Pos(), "channel send while holding the write lock can block every writer; send after unlocking, or use select with default")
			}
		case *ast.SelectStmt:
			if held {
				hasDefault := false
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					for _, c := range st.Body.List {
						cc := c.(*ast.CommClause)
						if send, ok := cc.Comm.(*ast.SendStmt); ok {
							s.pass.Reportf(send.Pos(), "select without default around this send still blocks under the write lock; add a default branch or move the send out")
						}
					}
				}
			}
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					s.block(cc.Body, held)
				}
			}
		case *ast.IfStmt:
			if held {
				if st.Init != nil {
					s.checkStmtExprs(st.Init)
				}
				s.checkExpr(st.Cond)
			}
			s.block(st.Body.List, held)
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				s.block(e.List, held)
			case *ast.IfStmt:
				s.block([]ast.Stmt{e}, held)
			}
		case *ast.ForStmt:
			s.block(st.Body.List, held)
		case *ast.RangeStmt:
			if held {
				s.checkExpr(st.X)
			}
			s.block(st.Body.List, held)
		case *ast.SwitchStmt:
			if held && st.Tag != nil {
				s.checkExpr(st.Tag)
			}
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					s.block(cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					s.block(cc.Body, held)
				}
			}
		case *ast.BlockStmt:
			s.block(st.List, held)
		case *ast.LabeledStmt:
			s.block([]ast.Stmt{st.Stmt}, held)
		default:
			if held {
				s.checkStmtExprs(stmt)
			}
		}
	}
}

// checkStmtExprs checks a leaf statement's expressions under the lock.
func (s *scanner) checkStmtExprs(stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			s.checkOne(e)
		}
		return true
	})
}

func (s *scanner) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			s.checkOne(e)
		}
		return true
	})
}

// checkOne flags a single expression if it is a forbidden call.
func (s *scanner) checkOne(e ast.Expr) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := framework.Callee(s.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if fn.Name() == "Snapshot" && framework.RecvNamed(fn) != nil {
		if s.funcName != "Snapshot" {
			s.pass.Reportf(call.Pos(), "Snapshot() under the write lock does O(paths) work while every writer waits; snapshot outside the lock or delegate from a Snapshot method")
		}
		return
	}
	if isNetIO(fn) {
		s.pass.Reportf(call.Pos(), "network I/O (%s.%s) while holding the write lock stalls every writer for a round-trip; do it outside the critical section", pkgName(fn), fn.Name())
	}
}

func pkgName(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name()
	}
	return "?"
}

func isNetIO(fn *types.Func) bool {
	switch {
	case framework.IsPkgFunc(fn, "net", "Dial"),
		framework.IsPkgFunc(fn, "net", "DialTimeout"),
		framework.IsPkgFunc(fn, "net/http", "Get"),
		framework.IsPkgFunc(fn, "net/http", "Post"),
		framework.IsPkgFunc(fn, "net/http", "PostForm"),
		framework.IsPkgFunc(fn, "net/http", "Head"):
		return true
	}
	// Any method on *net/http.Client (Do, Get, Post, ...).
	named := framework.RecvNamed(fn)
	if named == nil || named.Obj().Name() != "Client" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "net/http"
}

type lockKind int

const (
	opNone lockKind = iota
	opLock
	opUnlock
)

// lockOp classifies x.Lock() / x.Unlock() calls on sync.Mutex or
// sync.RWMutex values (RLock/RUnlock are deliberately opNone).
func (s *scanner) lockOp(e ast.Expr) lockKind {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return opNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone
	}
	var kind lockKind
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "Unlock":
		kind = opUnlock
	default:
		return opNone
	}
	tv, ok := s.pass.TypesInfo.Types[sel.X]
	if !ok {
		return opNone
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return opNone
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return opNone
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return opNone
	}
	return kind
}

package metricname_test

import (
	"testing"

	"hotpaths/internal/analysis/analyzertest"
	"hotpaths/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	analyzertest.Run(t, metricname.Analyzer, "a")
}

// Command hotpathsd serves on-line hot motion path discovery over
// HTTP/JSON, backed by the concurrent sharded hotpaths.Engine.
//
// Usage:
//
//	hotpathsd [-addr :8080] [-eps 10] [-delta 0] [-w 100] [-epoch 10]
//	          [-k 10] [-shards 0] [-buffer 256] [-grid 64]
//	          [-bounds 0,0,16000,16000] [-snapshot paths.geojson]
//	          [-wal DIR] [-fsync 25ms] [-pprof localhost:6060]
//	          [-log-format text|json] [-trace-sample 0.01] [-trace-slow 250ms]
//	hotpathsd -follow http://primary:8080 [-addr :8081] [-shards 0]
//	          [-buffer 256] [-max-lag 100000]
//
// Endpoints:
//
//	POST /observe           {"observations":[{"object":1,"x":10,"y":20,"t":3}], "tick":3}
//	POST /tick              {"now": 4}
//	GET  /topk              top-k hottest paths as JSON (k defaults to -k)
//	GET  /paths             every live path as JSON
//	GET  /paths.geojson     live paths as a GeoJSON FeatureCollection
//	GET  /stats             ingestion, coordinator, WAL and replication counters
//	GET  /metrics           Prometheus text exposition: latency histograms and
//	                        counters for every layer (see the README's
//	                        Observability section for the metric families)
//	GET  /watch             Server-Sent Events: one result delta per epoch
//	POST /admin/checkpoint  force a checkpoint + WAL truncation (-wal only)
//	GET  /healthz           liveness probe; 503 once WAL I/O has failed
//	                        or (with -follow) replication is down/lagging
//	GET  /wal/meta          -wal only: the journal's Config (followers fetch it)
//	GET  /wal/checkpoint    -wal only: newest checkpoint blob for follower bootstrap
//	GET  /wal/stream        -wal only: live WAL frame stream from ?from=LSN
//	POST /admin/reconnect   -follow only: drop and re-establish the stream
//
// With -pprof ADDR a second, admin-only listener serves net/http/pprof
// under /debug/pprof/, another /metrics mount, and the distributed-tracing
// ring: GET /debug/traces lists recently completed traces and
// GET /debug/traces/{id} returns every span this process recorded for one
// trace ID (spans of the same request on other fleet members are fetched
// from their admin listeners under the same ID). Debug endpoints never
// appear on the public port; bind the admin listener to localhost or a
// management network.
//
// Tracing is sampled: -trace-sample RATE records that fraction of
// requests (continued traceparent decisions from a gateway always win),
// and -trace-slow DURATION force-records any request slower than the
// threshold and logs it with its trace_id. Logs are structured (log/slog);
// -log-format selects text (default) or json, and request-scoped lines
// carry trace_id/span_id so logs and traces cross-reference.
//
// With -wal DIR the daemon journals every observation and tick to a
// write-ahead log before applying it, checkpoints the full engine state
// at epoch boundaries, and on startup recovers the pre-crash state from
// the directory — restarts and crashes lose at most the last -fsync
// interval of acknowledged writes. See the README's "Durability &
// operations" section for the on-disk layout and recovery procedure.
//
// With -partition-count N -partition-id I the daemon declares itself
// partition I of an N-primary fleet fronted by a hotpathsgw gateway: the
// partition slot is advertised in /stats (partition_id/partition_count),
// and observations whose object id hashes to a different partition are
// rejected with 400 — a misconfigured router fails loudly instead of
// silently forking state across primaries. See the README's "Horizontal
// write scaling" section.
//
// A -wal daemon is also a replication primary: it serves its journal to
// followers over /wal/stream. With -follow URL the daemon is instead a
// read-only follower of that primary — it bootstraps from the primary's
// checkpoint, tails its WAL, and serves the same read endpoints with
// results byte-identical to the primary's at every shared epoch. Write
// endpoints answer 403 on a follower; the pipeline flags (-eps, -w,
// -epoch, -k, -bounds, ...) are ignored because the follower adopts the
// primary's journal configuration; /healthz answers 503 while the stream
// is down or the record lag exceeds -max-lag. See the README's
// "Replication & read scaling" section.
//
// The three read endpoints answer from one consistent engine snapshot per
// request and share the query parameters
//
//	k=10 | limit=10                   cap the result (k defaults to -k on /topk)
//	min_hotness=3                     only paths with hotness >= 3
//	bbox=minx,miny,maxx,maxy          only paths ending inside the box
//	sort=hotness|score                rank by hotness (default) or hotness×length
//
// GET /watch accepts the same parameters (k defaulting to -k, like /topk)
// but holds the connection open as a Server-Sent Events stream: the first
// "delta" event carries the query's current result, and each epoch
// boundary afterwards emits the paths that entered, left or changed
// hotness. A slow consumer never blocks ingestion — undelivered deltas
// are dropped and the next event re-baselines the client with the full
// result ("reset": true, "missed" counting the dropped epochs).
//
// Time is logical and client-driven: producers POST observation batches
// for a timestamp, then advance the clock (inline via "tick", or from a
// single place via POST /tick). On SIGINT/SIGTERM the daemon stops
// accepting requests, drains the ingestion shards, and — with -snapshot —
// writes the final hot paths as GeoJSON before exiting. The snapshot
// reflects the last processed epoch: reports raised after it are not
// included (as with hotpaths.System, epochs only fire on ticks), so
// clients wanting a complete snapshot should POST a final epoch-crossing
// /tick before stopping the daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hotpaths"
	"hotpaths/internal/flightrec"
	"hotpaths/internal/tracing"
)

func main() {
	os.Exit(run())
}

// run is main behind an exit code: a failed shutdown snapshot or WAL
// close must exit non-zero so orchestrators notice the lost dump (defers
// still run, unlike calling os.Exit inline).
func run() int {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		eps      = flag.Float64("eps", 10, "tolerance epsilon, metres")
		delta    = flag.Float64("delta", 0, "uncertainty delta; 0 disables the (eps,delta) model")
		w        = flag.Int64("w", 100, "sliding window length, timestamps")
		epoch    = flag.Int64("epoch", 10, "epoch length, timestamps")
		k        = flag.Int("k", 10, "top-k hottest paths to report")
		shards   = flag.Int("shards", 0, "filter shards (0 = GOMAXPROCS)")
		buffer   = flag.Int("buffer", 256, "per-shard ingestion queue capacity")
		grid     = flag.Int("grid", 64, "coordinator grid resolution (grid x grid cells)")
		bounds   = flag.String("bounds", "0,0,16000,16000", "monitored region: minx,miny,maxx,maxy")
		snapshot = flag.String("snapshot", "", "write final paths as GeoJSON here on shutdown")
		walDir   = flag.String("wal", "", "journal directory: enables the write-ahead log, checkpoints, crash recovery and the replication feed")
		fsync    = flag.Duration("fsync", 25*time.Millisecond, "WAL group-commit interval (with -wal); negative disables timed fsync")
		segBytes = flag.Int64("wal-segment", 0, "WAL segment rotation size in bytes (with -wal; 0 = 64 MiB default)")
		follow   = flag.String("follow", "", "primary base URL: run as a read-only replica of that hotpathsd (e.g. http://primary:8080)")
		maxLag   = flag.Uint64("max-lag", 100_000, "with -follow: /healthz degrades once the follower lags this many records behind the primary (0 disables)")
		pprof    = flag.String("pprof", "", "admin listen address (e.g. localhost:6060) serving net/http/pprof, /metrics and /debug/traces; empty disables it")
		partID   = flag.Int("partition-id", 0, "with -partition-count: this daemon's partition slot (0-based)")
		partN    = flag.Int("partition-count", 0, "run as partition -partition-id of this many primaries behind a hotpathsgw gateway; 0 = unpartitioned")
		logFmt   = flag.String("log-format", "text", "log output format: text or json")
		frDump   = flag.String("flightrec-dump", "", "directory for flight-recorder ring dumps: written on WAL poisoning and on shutdown; empty disables dumps")
		trSample = flag.Float64("trace-sample", 0, "fraction of requests to trace in [0,1]; sampled traces are kept in the /debug/traces ring")
		trSlow   = flag.Duration("trace-slow", 0, "force-trace and log any request slower than this (0 disables); works even with -trace-sample 0")
	)
	flag.Parse()

	if err := tracing.SetupSlog(*logFmt, "hotpathsd"); err != nil {
		fmt.Fprintf(os.Stderr, "hotpathsd: %v\n", err)
		return 1
	}
	if *trSample < 0 || *trSample > 1 {
		return fail(fmt.Errorf("-trace-sample must be in [0,1], got %g", *trSample))
	}
	tracing.Default.Configure("hotpathsd", *trSample, *trSlow)
	if *frDump != "" {
		// Arm the crash-forensics dump: the moment the WAL poisons, the
		// event ring — the last N things the daemon did — hits disk, even
		// if nobody reaches /debug/events before a restart wipes it.
		flightrec.Default.AutoDump(*frDump, flightrec.EvWALPoisoned)
	}

	if *partN < 0 {
		return fail(errors.New("-partition-count must be non-negative"))
	}
	if *partN == 0 && *partID != 0 {
		return fail(errors.New("-partition-id requires -partition-count"))
	}
	if *partN > 0 && (*partID < 0 || *partID >= *partN) {
		return fail(fmt.Errorf("-partition-id %d out of range for -partition-count %d", *partID, *partN))
	}

	rect, err := parseBounds(*bounds)
	if err != nil {
		return fail(err)
	}
	cfg := hotpaths.Config{
		Eps:      *eps,
		Delta:    *delta,
		W:        *w,
		Epoch:    *epoch,
		K:        *k,
		Bounds:   rect,
		GridCols: *grid,
		GridRows: *grid,
	}
	// The backend: a bare Engine; the Durable wrapper around one when -wal
	// is set (which first recovers any state already journaled there); or
	// a read-only Follower replicating a primary when -follow is set.
	var (
		src   backend
		dur   *hotpaths.Durable
		fol   *hotpaths.Follower
		drain func() error
	)
	if *follow != "" {
		if *walDir != "" {
			return fail(errors.New("-follow and -wal are mutually exclusive: a follower replays the primary's journal instead of writing its own"))
		}
		fol, err = hotpaths.OpenFollower(*follow, hotpaths.FollowerConfig{
			Shards: *shards,
			Buffer: *buffer,
		})
		if err != nil {
			return fail(err)
		}
		src, drain = fol, fol.Close
		rs := fol.Replication()
		slog.Info("following primary",
			"primary", *follow,
			"lsn", rs.AppliedLSN,
			"epoch", rs.AppliedEpoch,
			"config", fmt.Sprintf("%+v", fol.Config()))
	} else if *walDir != "" {
		dur, err = hotpaths.OpenDurable(*walDir, hotpaths.DurableConfig{
			Config:        cfg,
			Concurrent:    true,
			Shards:        *shards,
			Buffer:        *buffer,
			FsyncInterval: *fsync,
			SegmentBytes:  *segBytes,
		})
		if err != nil {
			return fail(err)
		}
		src, drain = dur, dur.Close
		ws := dur.WAL()
		slog.Info("wal open",
			"dir", *walDir,
			"records", ws.NextLSN,
			"replayed", ws.Replayed,
			"checkpoint_lsn", ws.LastCheckpointLSN)
	} else {
		eng, err := hotpaths.NewEngine(hotpaths.EngineConfig{
			Config: cfg,
			Shards: *shards,
			Buffer: *buffer,
		})
		if err != nil {
			return fail(err)
		}
		src, drain = eng, eng.Close
	}

	api := newServer(src, serverOpts{
		dur: dur, fol: fol, maxLag: *maxLag,
		partitionID: *partID, partitionCount: *partN,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// End open /watch streams when Shutdown begins: their subscriptions
	// only close when the backend drains, which happens after Shutdown —
	// without the hook every watcher would pin Shutdown to its timeout.
	srv.RegisterOnShutdown(api.stopWatches)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The admin mux carries profiling and metrics on its own listener so
	// pprof is never reachable through the public port. Its failure is
	// fatal: an operator who asked for profiling and silently did not get
	// it would debug the wrong thing.
	var admin *http.Server
	if *pprof != "" {
		admin = &http.Server{
			Addr:              *pprof,
			Handler:           adminHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if admin != nil {
		go func() {
			if err := admin.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("admin listener: %w", err)
			}
		}()
		slog.Info("admin listener up (pprof + metrics + traces)", "addr", *pprof)
	}
	// Log the resolved config, not the flags: a follower adopts the
	// primary's journal parameters and ignores the local pipeline flags.
	rcfg := src.Config()
	slog.Info("listening",
		"addr", *addr,
		"shards", src.Shards(),
		"eps", rcfg.Eps,
		"w", rcfg.W,
		"epoch", rcfg.Epoch)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return fail(err)
		}
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish in-flight requests, then
	// drain the ingestion shards (checkpointing and closing the WAL when
	// enabled) and snapshot the final state.
	slog.Info("shutting down")
	code := 0
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		slog.Error("http shutdown failed", "error", err)
	}
	if admin != nil {
		if err := admin.Shutdown(shutCtx); err != nil {
			slog.Error("admin shutdown failed", "error", err)
		}
	}
	if err := drain(); err != nil {
		slog.Error("drain failed", "error", err)
		code = 1
	}
	if *snapshot != "" {
		if err := writeSnapshot(*snapshot, src); err != nil {
			slog.Error("snapshot failed", "error", err)
			code = 1
		} else {
			slog.Info("snapshot written", "path", *snapshot)
		}
	}
	if *frDump != "" {
		// The final flight-recorder snapshot: what the daemon was doing in
		// its last moments, for postmortems that start after the process
		// (and its in-memory ring) is gone.
		if path, err := flightrec.Default.DumpTo(*frDump, "shutdown"); err != nil {
			slog.Error("flight-recorder dump failed", "error", err)
		} else {
			slog.Info("flight-recorder dump written", "path", path)
		}
	}
	st := src.Stats()
	slog.Info("final state",
		"observations", st.Observations,
		"reports", st.Reports,
		"live_paths", st.IndexSize)
	return code
}

// writeSnapshot dumps every live path as GeoJSON, using the same encoding
// as GET /paths.geojson.
func writeSnapshot(path string, src backend) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := src.Snapshot().WriteGeoJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseBounds(s string) (hotpaths.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return hotpaths.Rect{}, fmt.Errorf("bounds must be minx,miny,maxx,maxy, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return hotpaths.Rect{}, fmt.Errorf("bounds component %q: %w", p, err)
		}
		// ParseFloat accepts "NaN" and "Inf", and every ordered comparison
		// downstream (max < min, rectangle containment) is false for NaN —
		// a non-finite box would silently match nothing.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return hotpaths.Rect{}, fmt.Errorf("bounds component %q must be finite", p)
		}
		vals[i] = v
	}
	return hotpaths.Rect{
		Min: hotpaths.Pt(vals[0], vals[1]),
		Max: hotpaths.Pt(vals[2], vals[3]),
	}, nil
}

func fail(err error) int {
	slog.Error("startup failed", "error", err)
	return 1
}

package replication

import (
	"testing"
	"time"
)

func TestBackoffBoundsAndGrowth(t *testing.T) {
	b := &Backoff{Min: 100 * time.Millisecond, Max: 800 * time.Millisecond}
	// Nominal sequence: 100, 200, 400, 800, 800, ... Each Next must land
	// in [nominal/2, nominal].
	for i, nominal := range []time.Duration{100, 200, 400, 800, 800, 800} {
		nominal *= time.Millisecond
		d := b.Next()
		if d < nominal/2 || d > nominal {
			t.Fatalf("Next #%d = %v, want within [%v, %v]", i, d, nominal/2, nominal)
		}
	}
	b.Reset()
	if d := b.Next(); d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Errorf("after Reset, Next = %v, want within [50ms, 100ms]", d)
	}
}

func TestBackoffJitters(t *testing.T) {
	// With equal jitter, 32 fresh backoffs almost surely do not all agree
	// (the random half spans 50ms in 1ns steps); identical values would
	// mean the stampede is back.
	seen := make(map[time.Duration]struct{})
	for i := 0; i < 32; i++ {
		b := &Backoff{Min: 100 * time.Millisecond, Max: time.Second}
		seen[b.Next()] = struct{}{}
	}
	if len(seen) < 2 {
		t.Errorf("32 backoffs produced %d distinct delays; jitter is not jittering", len(seen))
	}
}

// Package stats provides the small numeric summaries used by the
// experiment harness: means, percentiles, standard deviation and a fixed
// width table formatter for figure/table rows.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation; 0 for fewer than two
// samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks; 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Median is the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Min returns the minimum; 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum; 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Table renders rows of cells as a fixed-width text table. The first row is
// treated as the header and underlined.
type Table struct {
	rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row built from format/args pairs; each argument becomes
// one cell formatted with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	if len(t.rows) == 0 {
		return 0, nil
	}
	widths := make([]int, 0)
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var total int64
	writeRow := func(row []string) error {
		var b strings.Builder
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		n, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		total += int64(n)
		return err
	}
	for i, row := range t.rows {
		if err := writeRow(row); err != nil {
			return total, err
		}
		if i == 0 {
			under := make([]string, len(row))
			for j := range row {
				under[j] = strings.Repeat("-", widths[j])
			}
			if err := writeRow(under); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}

// Package trajectory models moving-object trajectories as sequences of
// timestamped locations ("timepoints") over discrete time, with the linear
// interpolation semantics of the paper: between consecutive timepoints the
// object moves with constant velocity.
package trajectory

import (
	"fmt"
	"sort"

	"hotpaths/internal/geom"
)

// Time is a discrete timestamp (a multiple of the system time granule).
type Time int64

// TimePoint is a location paired with the timestamp at which it was taken.
type TimePoint struct {
	P geom.Point
	T Time
}

// TP is shorthand for TimePoint{p, t}.
func TP(p geom.Point, t Time) TimePoint { return TimePoint{P: p, T: t} }

func (tp TimePoint) String() string { return fmt.Sprintf("<%v @%d>", tp.P, tp.T) }

// Trajectory is a time-ordered sequence of timepoints.
type Trajectory struct {
	pts []TimePoint
}

// New returns a trajectory from the given timepoints, which must be in
// strictly increasing timestamp order.
func New(pts ...TimePoint) (*Trajectory, error) {
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			return nil, fmt.Errorf("trajectory: timestamps not strictly increasing at index %d (%d after %d)",
				i, pts[i].T, pts[i-1].T)
		}
	}
	cp := make([]TimePoint, len(pts))
	copy(cp, pts)
	return &Trajectory{pts: cp}, nil
}

// MustNew is New but panics on error; intended for tests and literals.
func MustNew(pts ...TimePoint) *Trajectory {
	tr, err := New(pts...)
	if err != nil {
		panic(err)
	}
	return tr
}

// Append adds a timepoint at the end. It returns an error if the timestamp
// does not advance strictly.
func (tr *Trajectory) Append(tp TimePoint) error {
	if n := len(tr.pts); n > 0 && tp.T <= tr.pts[n-1].T {
		return fmt.Errorf("trajectory: non-increasing timestamp %d after %d", tp.T, tr.pts[n-1].T)
	}
	tr.pts = append(tr.pts, tp)
	return nil
}

// Len returns the number of stored timepoints.
func (tr *Trajectory) Len() int { return len(tr.pts) }

// At returns the i-th timepoint.
func (tr *Trajectory) At(i int) TimePoint { return tr.pts[i] }

// Points returns the underlying timepoints (not a copy; treat as read-only).
func (tr *Trajectory) Points() []TimePoint { return tr.pts }

// Start returns the first timepoint; it panics on an empty trajectory.
func (tr *Trajectory) Start() TimePoint { return tr.pts[0] }

// End returns the last timepoint; it panics on an empty trajectory.
func (tr *Trajectory) End() TimePoint { return tr.pts[len(tr.pts)-1] }

// Span returns the first and last timestamps (0,0 for an empty trajectory).
func (tr *Trajectory) Span() (Time, Time) {
	if len(tr.pts) == 0 {
		return 0, 0
	}
	return tr.pts[0].T, tr.pts[len(tr.pts)-1].T
}

// LocationAt returns the interpolated location T(t). The second return is
// false when t falls outside the trajectory's time span.
func (tr *Trajectory) LocationAt(t Time) (geom.Point, bool) {
	n := len(tr.pts)
	if n == 0 || t < tr.pts[0].T || t > tr.pts[n-1].T {
		return geom.Point{}, false
	}
	// Binary search for the first timepoint with timestamp ≥ t.
	i := sort.Search(n, func(i int) bool { return tr.pts[i].T >= t })
	if tr.pts[i].T == t {
		return tr.pts[i].P, true
	}
	a, b := tr.pts[i-1], tr.pts[i]
	lambda := float64(t-a.T) / float64(b.T-a.T)
	return a.P.Lerp(b.P, lambda), true
}

// Sub returns the timepoints with timestamps in [t0, t1], without
// interpolated boundary points.
func (tr *Trajectory) Sub(t0, t1 Time) []TimePoint {
	lo := sort.Search(len(tr.pts), func(i int) bool { return tr.pts[i].T >= t0 })
	hi := sort.Search(len(tr.pts), func(i int) bool { return tr.pts[i].T > t1 })
	return tr.pts[lo:hi]
}

// PathLength returns the total Euclidean length of the polyline.
func (tr *Trajectory) PathLength() float64 {
	var sum float64
	for i := 1; i < len(tr.pts); i++ {
		sum += tr.pts[i-1].P.Dist(tr.pts[i].P)
	}
	return sum
}

// MBB returns the minimum bounding rectangle of all locations; the zero Rect
// for an empty trajectory.
func (tr *Trajectory) MBB() geom.Rect {
	if len(tr.pts) == 0 {
		return geom.Rect{}
	}
	r := geom.Rect{Lo: tr.pts[0].P, Hi: tr.pts[0].P}
	for _, tp := range tr.pts[1:] {
		r.Lo = r.Lo.Min(tp.P)
		r.Hi = r.Hi.Max(tp.P)
	}
	return r
}

// MotionPath is the paper's core object: a directed segment s→e paired with
// the time interval [Ts,Te] during which an object crosses it. A motion path
// fits an object's movement when the point moving uniformly from S at Ts to
// E at Te stays within tolerance ε of the object at every timestamp.
type MotionPath struct {
	S, E   geom.Point
	Ts, Te Time
}

// Segment returns the path's spatial segment.
func (mp MotionPath) Segment() geom.Segment { return geom.Seg(mp.S, mp.E) }

// Length returns the Euclidean length of the path.
func (mp MotionPath) Length() float64 { return mp.S.Dist(mp.E) }

// Duration returns Te−Ts.
func (mp MotionPath) Duration() Time { return mp.Te - mp.Ts }

// LocationAt returns the crossing point p(λ) at timestamp t, clamped to the
// path's interval.
func (mp MotionPath) LocationAt(t Time) geom.Point {
	if mp.Te == mp.Ts {
		return mp.S
	}
	lambda := float64(t-mp.Ts) / float64(mp.Te-mp.Ts)
	if lambda < 0 {
		lambda = 0
	} else if lambda > 1 {
		lambda = 1
	}
	return mp.S.Lerp(mp.E, lambda)
}

// Fits reports whether the motion path fits the trajectory within tolerance
// eps under the metric m: at every discrete timestamp in [Ts,Te] the
// uniformly-moving point must be within eps of the interpolated trajectory.
func (mp MotionPath) Fits(tr *Trajectory, eps float64, m geom.Metric) bool {
	for t := mp.Ts; t <= mp.Te; t++ {
		loc, ok := tr.LocationAt(t)
		if !ok {
			return false
		}
		if m.Distance(mp.LocationAt(t), loc) > eps {
			return false
		}
	}
	return true
}

func (mp MotionPath) String() string {
	return fmt.Sprintf("%v->%v @[%d,%d]", mp.S, mp.E, mp.Ts, mp.Te)
}

// CoveringSet reports whether the motion paths form a covering motion path
// set for the time range [t0,t1]: consecutive paths must chain exactly (one
// path's end point and timestamp are the next path's start), the first must
// start at t0 and the last end at t1.
func CoveringSet(paths []MotionPath, t0, t1 Time) bool {
	if len(paths) == 0 {
		return t0 == t1
	}
	if paths[0].Ts != t0 || paths[len(paths)-1].Te != t1 {
		return false
	}
	for i := 1; i < len(paths); i++ {
		prev, cur := paths[i-1], paths[i]
		if prev.Te != cur.Ts || !prev.E.Eq(cur.S) {
			return false
		}
	}
	return true
}

package svg

import (
	"strings"
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
	"hotpaths/internal/roadnet"
)

func testNet(t *testing.T) *roadnet.Network {
	t.Helper()
	nodes := []roadnet.Node{
		{ID: 0, P: geom.Pt(0, 0)},
		{ID: 1, P: geom.Pt(1000, 0)},
		{ID: 2, P: geom.Pt(1000, 1000)},
	}
	links := []roadnet.Link{
		{ID: 0, From: 0, To: 1, Class: roadnet.Motorway},
		{ID: 1, From: 1, To: 2, Class: roadnet.Secondary},
	}
	n, err := roadnet.Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRenderNetwork(t *testing.T) {
	out := RenderNetwork(testNet(t), Options{})
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(out, "</svg>\n") {
		t.Error("not a well-formed SVG wrapper")
	}
	if strings.Count(out, "<line ") != 2 {
		t.Errorf("want 2 lines, got %d", strings.Count(out, "<line "))
	}
	// Motorway styled differently from secondary.
	if !strings.Contains(out, "#c0392b") || !strings.Contains(out, "#bdc3c7") {
		t.Error("class styling missing")
	}
}

func TestRenderNetworkCrop(t *testing.T) {
	crop := geom.Rect{Lo: geom.Pt(900, 500), Hi: geom.Pt(1100, 1100)}
	out := RenderNetwork(testNet(t), Options{Crop: crop})
	// Only the vertical secondary link intersects the crop.
	if got := strings.Count(out, "<line "); got != 1 {
		t.Errorf("cropped render has %d lines want 1", got)
	}
}

func TestRenderHotPaths(t *testing.T) {
	paths := []motion.HotPath{
		{Path: motion.Path{ID: 0, S: geom.Pt(0, 0), E: geom.Pt(100, 0)}, Hotness: 1},
		{Path: motion.Path{ID: 1, S: geom.Pt(0, 50), E: geom.Pt(100, 50)}, Hotness: 10},
	}
	bounds := geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(100, 100)}
	out := RenderHotPaths(paths, bounds, Options{WidthPx: 400})
	if strings.Count(out, "<line ") != 2 {
		t.Errorf("want 2 lines, got %d", strings.Count(out, "<line "))
	}
	// The hot path must be drawn thicker: max width 5.0 vs thin ~1.2.
	if !strings.Contains(out, `stroke-width="5.0"`) {
		t.Errorf("hottest path not at max width:\n%s", out)
	}
	if !strings.Contains(out, `width="400"`) {
		t.Error("width option ignored")
	}
}

func TestRenderHotPathsEmpty(t *testing.T) {
	out := RenderHotPaths(nil, geom.Rect{}, Options{})
	if !strings.HasPrefix(out, "<svg ") {
		t.Error("empty render must still be valid SVG")
	}
}

func TestRenderDeterministicOrder(t *testing.T) {
	paths := []motion.HotPath{
		{Path: motion.Path{ID: 0, S: geom.Pt(0, 0), E: geom.Pt(10, 0)}, Hotness: 5},
		{Path: motion.Path{ID: 1, S: geom.Pt(0, 1), E: geom.Pt(10, 1)}, Hotness: 2},
	}
	bounds := geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)}
	a := RenderHotPaths(paths, bounds, Options{})
	b := RenderHotPaths([]motion.HotPath{paths[1], paths[0]}, bounds, Options{})
	if a != b {
		t.Error("rendering must be order-independent (cold drawn first)")
	}
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hotpaths"
	"hotpaths/internal/gateway"
	"hotpaths/internal/partition"
)

// The gateway golden test: a 4-partition fleet behind a hotpathsgw
// gateway must answer every read byte-identically to a single engine fed
// the same interleaved workload, at every shared epoch — including the
// /watch delta stream. Content-addressed path ids and the canonical
// result order are what make this possible; the test is what holds the
// merge to them.

const goldenPartitions = 4

// partitionObjects returns the first n object ids owned by partition p
// of count, scanning ids upward from 1. The workload assigns each lane's
// objects to one partition so a lane's trajectory stays on one primary.
func partitionObjects(p, count, n int) []int {
	var out []int
	for id := 1; len(out) < n; id++ {
		if partition.Index(id, count) == p {
			out = append(out, id)
		}
	}
	return out
}

// goldenFleet builds the 4 partition daemons (ordinary engine-backed
// servers declaring their slots), a gateway over them, and the single
// reference engine. Everything is torn down via t.Cleanup.
func goldenFleet(t *testing.T) (gw, ref *httptest.Server) {
	t.Helper()
	urls := make([]string, goldenPartitions)
	for i := 0; i < goldenPartitions; i++ {
		eng, err := hotpaths.NewEngine(hotpaths.EngineConfig{
			Config: serverTestConfig(),
			Shards: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		srv := httptest.NewServer(newServer(eng, serverOpts{
			partitionID: i, partitionCount: goldenPartitions,
		}).handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	g, err := gateway.New(gateway.Config{
		Table:         partition.NewTable(urls...),
		K:             serverTestConfig().K,
		ProbeInterval: -1, // probed once in New; the test needs no poller
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	gw = httptest.NewServer(g.Handler())
	t.Cleanup(gw.Close)

	refEng, err := hotpaths.NewEngine(hotpaths.EngineConfig{
		Config: serverTestConfig(),
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { refEng.Close() })
	ref = httptest.NewServer(newServer(refEng, serverOpts{}).handler())
	t.Cleanup(ref.Close)
	return gw, ref
}

// goldenBatch builds the observation batch for one timestamp: 8 spatially
// disjoint lanes (separation 200 ≫ 2ε, so lanes never interact), lane l
// at y = 200·l driven by two objects owned by partition l mod 4, zigging
// like feedZigZag so corridors form and expire.
func goldenBatch(lanes [][]int, now int64) []observationJSON {
	var batch []observationJSON
	for l, objs := range lanes {
		base := float64(200 * l)
		x := float64(now) * 6
		y := base
		if (now/5)%2 == 0 {
			y = base + 40
		}
		batch = append(batch,
			observationJSON{Object: objs[0], X: x, Y: y, T: now},
			observationJSON{Object: objs[1], X: x, Y: y + 0.5, T: now},
		)
	}
	return batch
}

// goldenQueries is the read surface the fleet must answer identically:
// the three endpoints across the parameter space (defaults, k/limit,
// min_hotness, bbox, sort, combinations).
var goldenQueries = []string{
	"/topk",
	"/paths",
	"/paths.geojson",
	"/topk?sort=score",
	"/topk?k=3",
	"/paths?limit=5",
	"/paths?min_hotness=2",
	"/paths?bbox=0,0,400,450",
	"/topk?bbox=0,0,400,450&sort=score&k=4",
	"/paths.geojson?limit=3&sort=score",
	"/paths?min_hotness=1&sort=score",
}

func fetchGolden(t *testing.T, base, path string) (status int, epoch, body string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get(hotpaths.EpochHeader), string(b)
}

// readSSEEvent reads one blank-line-terminated SSE event block.
func readSSEEvent(rd *bufio.Reader) (string, error) {
	var b strings.Builder
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return "", err
		}
		if line == "\n" {
			return b.String(), nil
		}
		b.WriteString(line)
	}
}

func TestGatewayMatchesSingleNode(t *testing.T) {
	gw, ref := goldenFleet(t)

	lanes := make([][]int, 8)
	for l := range lanes {
		lanes[l] = partitionObjects(l%goldenPartitions, goldenPartitions, 2)
		// Distinct lanes sharing a partition must not share objects.
		if l >= goldenPartitions {
			lanes[l] = partitionObjects(l%goldenPartitions, goldenPartitions, 4)[2:4]
		}
	}

	// Open the /watch streams before the first epoch so both sides
	// baseline at epoch 0; headers returned means the subscription (and
	// the gateway's partition fan-in) is established.
	watchStreams := make(map[string][2]*bufio.Reader)
	for _, wq := range []string{"/watch", "/watch?bbox=0,0,400,450&k=5"} {
		var readers [2]*bufio.Reader
		for i, base := range []string{gw.URL, ref.URL} {
			resp, err := http.Get(base + wq)
			if err != nil {
				t.Fatalf("GET %s: %v", wq, err)
			}
			t.Cleanup(func() { resp.Body.Close() })
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d", wq, resp.StatusCode)
			}
			readers[i] = bufio.NewReader(resp.Body)
		}
		watchStreams[wq] = readers
	}

	const (
		lastTick   = 60
		epochEvery = 10 // serverTestConfig().Epoch
	)
	for now := int64(1); now <= lastTick; now++ {
		req := observeRequest{Observations: goldenBatch(lanes, now), Tick: now}
		for _, base := range []string{gw.URL, ref.URL} {
			rec := postJSON(t, base+"/observe", req)
			if rec != http.StatusOK {
				t.Fatalf("observe t=%d against %s: status %d", now, base, rec)
			}
		}
		if now%epochEvery != 0 {
			continue
		}
		// Epoch boundary: every read must agree byte for byte, and the
		// epoch header must advertise the same shared epoch.
		for _, q := range goldenQueries {
			gs, ge, gb := fetchGolden(t, gw.URL, q)
			rs, re, rb := fetchGolden(t, ref.URL, q)
			if gs != rs {
				t.Fatalf("t=%d %s: gateway status %d, single node %d", now, q, gs, rs)
			}
			if ge != re {
				t.Fatalf("t=%d %s: gateway epoch %q, single node %q", now, q, ge, re)
			}
			if gb != rb {
				t.Fatalf("t=%d %s: bodies diverge\ngateway: %s\nsingle:  %s", now, q, gb, rb)
			}
		}
	}

	// The delta streams: baseline (epoch 0) plus one event per epoch,
	// byte-identical including the SSE framing.
	for wq, readers := range watchStreams {
		for ev := 0; ev <= lastTick/epochEvery; ev++ {
			g, err := readSSEEvent(readers[0])
			if err != nil {
				t.Fatalf("%s: gateway event %d: %v", wq, ev, err)
			}
			r, err := readSSEEvent(readers[1])
			if err != nil {
				t.Fatalf("%s: single-node event %d: %v", wq, ev, err)
			}
			if g != r {
				t.Fatalf("%s: event %d diverges\ngateway: %q\nsingle:  %q", wq, ev, g, r)
			}
		}
	}
}

// postJSON posts v to url and returns the status code.
func postJSON(t *testing.T, url string, v any) int {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Logf("POST %s: %d %s", url, resp.StatusCode, b)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

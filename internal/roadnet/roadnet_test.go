package roadnet

import (
	"bytes"
	"strings"
	"testing"

	"hotpaths/internal/geom"
)

func smallNet(t *testing.T) *Network {
	t.Helper()
	nodes := []Node{
		{0, geom.Pt(0, 0)},
		{1, geom.Pt(100, 0)},
		{2, geom.Pt(100, 100)},
		{3, geom.Pt(0, 100)},
	}
	links := []Link{
		{0, 0, 1, Motorway},
		{1, 1, 2, Primary},
		{2, 2, 3, Secondary},
		{3, 3, 0, Highway},
		{4, 0, 2, Secondary},
	}
	n, err := Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestClassWeightsOrdering(t *testing.T) {
	if !(Motorway.Weight() > Highway.Weight() &&
		Highway.Weight() > Primary.Weight() &&
		Primary.Weight() > Secondary.Weight()) {
		t.Error("class weights must be strictly decreasing by importance")
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range []Class{Secondary, Primary, Highway, Motorway} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("round trip %v: %v %v", c, got, err)
		}
	}
	if _, err := ParseClass("cowpath"); err == nil {
		t.Error("unknown class must error")
	}
}

func TestBuildValidation(t *testing.T) {
	nodes := []Node{{0, geom.Pt(0, 0)}, {1, geom.Pt(1, 1)}}
	if _, err := Build([]Node{{ID: 5, P: geom.Pt(0, 0)}}, nil); err == nil {
		t.Error("non-dense node ids must error")
	}
	if _, err := Build(nodes, []Link{{ID: 3, From: 0, To: 1}}); err == nil {
		t.Error("non-dense link ids must error")
	}
	if _, err := Build(nodes, []Link{{ID: 0, From: 0, To: 9}}); err == nil {
		t.Error("dangling link must error")
	}
	if _, err := Build(nodes, []Link{{ID: 0, From: 1, To: 1}}); err == nil {
		t.Error("self loop must error")
	}
}

func TestAdjacency(t *testing.T) {
	n := smallNet(t)
	inc := n.Incident(0)
	if len(inc) != 3 {
		t.Fatalf("node 0 incident = %v", inc)
	}
	if n.Other(0, 0) != 1 || n.Other(0, 1) != 0 {
		t.Error("Other mismatch")
	}
	if n.LinkLength(0) != 100 {
		t.Errorf("LinkLength = %v", n.LinkLength(0))
	}
	if n.TotalWeight(0) != Motorway.Weight()+Highway.Weight()+Secondary.Weight() {
		t.Errorf("TotalWeight = %v", n.TotalWeight(0))
	}
}

func TestBoundsAndComponents(t *testing.T) {
	n := smallNet(t)
	if n.Bounds() != (geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(100, 100)}) {
		t.Errorf("Bounds = %v", n.Bounds())
	}
	count, largest := n.ConnectedComponents()
	if count != 1 || largest != 4 {
		t.Errorf("components = %d largest %d", count, largest)
	}
	empty, _ := Build(nil, nil)
	if empty.Bounds() != (geom.Rect{}) {
		t.Error("empty Bounds")
	}
	cc := n.ClassCounts()
	if cc[Secondary] != 2 || cc[Motorway] != 1 {
		t.Errorf("ClassCounts = %v", cc)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	n := smallNet(t)
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(n.Nodes) || len(got.Links) != len(n.Links) {
		t.Fatalf("round trip sizes: %d/%d nodes, %d/%d links",
			len(got.Nodes), len(n.Nodes), len(got.Links), len(n.Links))
	}
	for i := range n.Nodes {
		if !got.Nodes[i].P.Eq(n.Nodes[i].P) {
			t.Errorf("node %d position mismatch", i)
		}
	}
	for i := range n.Links {
		if got.Links[i] != n.Links[i] {
			t.Errorf("link %d mismatch: %v vs %v", i, got.Links[i], n.Links[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"frob 1 2 3",
		"node 0 abc def",
		"node 0 1",
		"link 0 0 1",
		"link 0 0 1 cowpath",
		"link x 0 1 primary",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("input %q must error", c)
		}
	}
	// Comments and blank lines are fine.
	ok := "# comment\n\nnode 0 0 0\nnode 1 5 5\nlink 0 0 1 primary\n"
	if _, err := Read(strings.NewReader(ok)); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{GridCols: 2, GridRows: 5, Size: 100}); err == nil {
		t.Error("tiny grid must error")
	}
	if _, err := Generate(GenConfig{GridCols: 5, GridRows: 5, Size: 0}); err == nil {
		t.Error("zero size must error")
	}
	if _, err := Generate(GenConfig{GridCols: 5, GridRows: 5, Size: 100, Jitter: 0.6}); err == nil {
		t.Error("excessive jitter must error")
	}
}

func TestGenerateAthensStatistics(t *testing.T) {
	n, err := GenerateAthens(42)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Nodes); got != 34*34 {
		t.Errorf("nodes = %d want 1156 (≈ paper's 1125)", got)
	}
	if got := len(n.Links); got != 1831 {
		t.Errorf("links = %d want exactly 1831", got)
	}
	count, largest := n.ConnectedComponents()
	if count != 1 || largest != len(n.Nodes) {
		t.Errorf("network must be connected: %d components, largest %d", count, largest)
	}
	// All four classes present, with secondary the most numerous.
	cc := n.ClassCounts()
	for _, cl := range []Class{Secondary, Primary, Highway, Motorway} {
		if cc[cl] == 0 {
			t.Errorf("class %v absent", cl)
		}
	}
	if !(cc[Secondary] > cc[Primary] && cc[Primary] > cc[Motorway]) {
		t.Errorf("class skew looks wrong: %v", cc)
	}
	// Bounds approximately cover the configured square.
	b := n.Bounds()
	if b.Width() < 14000 || b.Width() > 18000 || b.Height() < 14000 || b.Height() > 18000 {
		t.Errorf("bounds = %v, expected ≈ 15.8 km square", b)
	}
	// Every node remains reachable: no isolated nodes.
	for i := range n.Nodes {
		if len(n.Incident(i)) == 0 {
			t.Errorf("node %d is isolated", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GenerateAthens(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateAthens(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Links) != len(b.Links) {
		t.Fatal("link counts differ across identical seeds")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs across identical seeds", i)
		}
	}
	for i := range a.Nodes {
		if !a.Nodes[i].P.Eq(b.Nodes[i].P) {
			t.Fatalf("node %d differs across identical seeds", i)
		}
	}
	c, err := GenerateAthens(8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Nodes {
		if !a.Nodes[i].P.Eq(c.Nodes[i].P) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should perturb node positions")
	}
}

func TestGenerateAthensSerializationRoundTrip(t *testing.T) {
	n, err := GenerateAthens(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(n.Nodes) || len(got.Links) != len(n.Links) {
		t.Error("round trip changed sizes")
	}
}

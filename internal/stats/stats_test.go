package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single-sample stddev")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {-5, 15}, {110, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{10, 20}, 50); got != 15 {
		t.Errorf("interpolated P50 = %v", got)
	}
	if Median(xs) != 35 {
		t.Error("Median")
	}
	// Percentile must not mutate its input.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 || unsorted[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max")
	}
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestTable(t *testing.T) {
	var tb Table
	tb.AddRow("N", "index", "score")
	tb.AddRowf(10000, 4.2, "ok")
	tb.AddRow("100000", "10.9", "better")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing underline: %q", lines[1])
	}
	// Columns aligned: "index" starts at the same offset in all rows.
	idx := strings.Index(lines[0], "index")
	if !strings.HasPrefix(lines[2][idx:], "4.2") {
		t.Errorf("misaligned row: %q", lines[2])
	}
	var empty Table
	if empty.String() != "" {
		t.Error("empty table output")
	}
}

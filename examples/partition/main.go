// Partitioning quickstart: a 4-partition fleet behind a scatter-gather
// gateway, in one process. Each partition is an ordinary hotpaths engine
// owning the objects that hash to it; the gateway splits writes by
// object ID, drives ticks as an epoch barrier, and merges reads at one
// shared epoch — so the fleet answers exactly like a single node fed the
// same workload.
//
// The wire protocol is the real one (the gateway speaks the same HTTP it
// speaks to hotpathsd daemons); only the network is loopback. A
// production topology is the same picture with more machines:
//
//	writers ──> hotpathsgw -partitions p0,p1,p2,p3
//	   split by hash(object) │ ticks + reads fan out to all
//	    ┌─────────┬──────────┼──────────┐
//	    ▼         ▼          ▼          ▼
//	hotpathsd -wal … -partition-count 4 -partition-id 0..3
//
// Run with: go run ./examples/partition
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"time"

	"hotpaths"
	"hotpaths/internal/gateway"
	"hotpaths/internal/partition"
)

const partitions = 4

var cfg = hotpaths.Config{
	Eps:    10,
	W:      120,
	Epoch:  10,
	K:      5,
	Bounds: hotpaths.Rect{Min: hotpaths.Pt(-100, -100), Max: hotpaths.Pt(2000, 400)},
}

// partitionNode serves the slice of hotpathsd's surface the gateway
// consumes, for one partition slot. hotpathsd -partition-count N
// -partition-id i is the production version of exactly this.
func partitionNode(id int, eng *hotpaths.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /observe", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Observations []hotpaths.ObservationJSON `json:"observations"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		batch := make([]hotpaths.Observation, 0, len(req.Observations))
		for _, o := range req.Observations {
			// Ownership check before any state is touched: a misrouted
			// writer fails loudly instead of splitting a trajectory.
			if own := partition.Index(o.Object, partitions); own != id {
				httpError(w, http.StatusBadRequest, fmt.Errorf(
					"object %d belongs to partition %d, not %d: route writes through the gateway", o.Object, own, id))
				return
			}
			batch = append(batch, o.Observation())
		}
		if err := eng.ObserveBatch(batch); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		fmt.Fprintf(w, `{"accepted": %d}`, len(batch))
	})
	mux.HandleFunc("POST /tick", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Now int64 `json:"now"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := eng.Tick(req.Now); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		fmt.Fprintf(w, `{"now": %d}`, req.Now)
	})
	mux.HandleFunc("GET /paths", func(w http.ResponseWriter, r *http.Request) {
		snap := eng.Snapshot()
		w.Header().Set(hotpaths.EpochHeader, strconv.FormatInt(snap.Epoch(), 10))
		w.Header().Set(hotpaths.ClockHeader, strconv.FormatInt(snap.Clock(), 10))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(hotpaths.PathsJSON(snap.Query(hotpaths.Query{})))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		snap, st := eng.Snapshot(), eng.Stats()
		json.NewEncoder(w).Encode(map[string]any{
			"partition_id":    id,
			"partition_count": partitions,
			"epoch":           snap.Epoch(),
			"clock":           snap.Clock(),
			"observations":    st.Observations,
			"index_size":      st.IndexSize,
		})
	})
	return mux
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func main() {
	// The fleet: four independent engines, each the write master for its
	// hash slice of the object space, plus one reference engine that sees
	// the whole workload — the single node the fleet must impersonate.
	engines := make([]*hotpaths.Engine, partitions)
	urls := make([]string, partitions)
	servers := make([]*httptest.Server, partitions)
	for i := range engines {
		eng, err := hotpaths.NewEngine(hotpaths.EngineConfig{Config: cfg})
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		engines[i] = eng
		servers[i] = httptest.NewServer(partitionNode(i, eng))
		defer servers[i].Close()
		urls[i] = servers[i].URL
	}
	ref, err := hotpaths.NewEngine(hotpaths.EngineConfig{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	defer ref.Close()

	gw, err := gateway.New(gateway.Config{
		Table:         partition.NewTable(urls...),
		K:             cfg.K,
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	front := httptest.NewServer(gw.Handler())
	defer front.Close()
	client := front.Client()

	// Commuters stream along two avenues; every observation goes through
	// the gateway, which splits each batch by owning partition. The
	// reference engine ingests the identical interleaved batches.
	const commuters, horizon = 40, 240
	for now := int64(1); now <= horizon; now++ {
		var batch []hotpaths.ObservationJSON
		for i := 0; i < commuters; i++ {
			s := (now + int64(i)*7) % 150
			batch = append(batch, hotpaths.ObservationJSON{
				Object: i, X: float64(s) * 8, Y: float64(i%2) * 250, T: now,
			})
		}
		body, _ := json.Marshal(map[string]any{"observations": batch, "tick": now})
		resp, err := client.Post(front.URL+"/observe_batch", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("gateway observe at t=%d: status %d", now, resp.StatusCode)
		}
		refBatch := make([]hotpaths.Observation, len(batch))
		for j, o := range batch {
			refBatch[j] = o.Observation()
		}
		if err := ref.ObserveBatch(refBatch); err != nil {
			log.Fatal(err)
		}
		if err := ref.Tick(now); err != nil {
			log.Fatal(err)
		}
	}

	// The standing question — hottest paths right now — answered by the
	// merged fleet, must equal the single node's answer exactly.
	resp, err := client.Get(front.URL + "/topk")
	if err != nil {
		log.Fatal(err)
	}
	var merged []hotpaths.PathJSON
	if err := json.NewDecoder(resp.Body).Decode(&merged); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	single := hotpaths.PathsJSON(ref.Snapshot().Query(hotpaths.Query{}.K(cfg.K)))
	if !reflect.DeepEqual(merged, single) {
		log.Fatalf("fleet diverged from single node:\nfleet:  %v\nsingle: %v", merged, single)
	}
	fmt.Printf("merged top-k at epoch %s, identical to a single node:\n", resp.Header.Get(hotpaths.EpochHeader))
	for _, p := range merged {
		fmt.Printf("  #%d path %d hotness %d\n", p.Rank, p.ID, p.Hotness)
	}

	// Misrouted writes fail loudly: partition 1 refuses an object that
	// hashes elsewhere, before touching any state.
	stray := 0
	for partition.Index(stray, partitions) == 1 {
		stray++
	}
	body, _ := json.Marshal(map[string]any{"observations": []hotpaths.ObservationJSON{
		{Object: stray, X: 1, Y: 1, T: horizon + 1},
	}})
	resp, err = http.Post(urls[1]+"/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("direct write to the wrong partition: status %d, %s", resp.StatusCode, msg)

	// A lost partition degrades, not destroys: health goes 503 naming the
	// partition, and reads carry on with the survivors as 206 + the
	// missing list in X-Hotpaths-Partial.
	servers[3].Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err = client.Get(front.URL + "/healthz")
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("after losing partition 3: /healthz %d\n", resp.StatusCode)
	// A write invalidates the merged cache, so the next read re-scatters
	// and discovers the hole.
	resp, _ = client.Post(front.URL+"/tick", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"now": %d}`, horizon+1))))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = client.Get(front.URL + "/topk")
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("degraded read: status %d, partial partitions: %s\n",
		resp.StatusCode, resp.Header.Get(hotpaths.PartialHeader))
}

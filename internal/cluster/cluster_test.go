package cluster

import (
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
)

func cfg() Config {
	return Config{R: 10, MinPts: 3, Theta: 0.5, MinDuration: 5}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{R: 0, MinPts: 3, Theta: 0.5},
		{R: 10, MinPts: 1, Theta: 0.5},
		{R: 10, MinPts: 3, Theta: 0},
		{R: 10, MinPts: 3, Theta: 1.5},
		{R: 10, MinPts: 3, Theta: 0.5, MinDuration: -1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d must error", i)
		}
	}
	if _, err := New(cfg()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestObserveTimestampValidation(t *testing.T) {
	d, _ := New(cfg())
	if err := d.Observe(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Observe(5, nil); err == nil {
		t.Error("repeated timestamp must error")
	}
}

// A convoy of 5 objects moving together forms one moving cluster spanning
// the whole run.
func TestConvoyDetected(t *testing.T) {
	d, _ := New(cfg())
	for now := trajectory.Time(0); now <= 20; now++ {
		pos := make(map[int]geom.Point)
		base := float64(now) * 8
		for id := 0; id < 5; id++ {
			pos[id] = geom.Pt(base+float64(id)*3, float64(id%2)*3)
		}
		if err := d.Observe(now, pos); err != nil {
			t.Fatal(err)
		}
	}
	mcs := d.Close()
	if len(mcs) != 1 {
		t.Fatalf("moving clusters = %d want 1", len(mcs))
	}
	mc := mcs[0]
	if mc.Start != 0 || mc.End != 20 {
		t.Errorf("span [%d,%d]", mc.Start, mc.End)
	}
	if len(mc.Members) != 5 {
		t.Errorf("members = %d", len(mc.Members))
	}
	if len(mc.Trail) != 21 {
		t.Errorf("trail length = %d", len(mc.Trail))
	}
}

// Clusters below MinPts never register.
func TestSmallGroupsIgnored(t *testing.T) {
	d, _ := New(cfg()) // MinPts 3
	for now := trajectory.Time(0); now <= 20; now++ {
		pos := map[int]geom.Point{
			0: geom.Pt(float64(now)*5, 0),
			1: geom.Pt(float64(now)*5+3, 0),
			// A third object, far away.
			2: geom.Pt(float64(now)*5, 500),
		}
		if err := d.Observe(now, pos); err != nil {
			t.Fatal(err)
		}
	}
	if mcs := d.Close(); len(mcs) != 0 {
		t.Errorf("pairs must not form clusters: %d", len(mcs))
	}
}

// Short-lived gatherings below MinDuration are dropped.
func TestMinDuration(t *testing.T) {
	d, _ := New(cfg()) // MinDuration 5
	for now := trajectory.Time(0); now <= 2; now++ {
		pos := map[int]geom.Point{
			0: geom.Pt(0, 0), 1: geom.Pt(3, 0), 2: geom.Pt(0, 3),
		}
		if err := d.Observe(now, pos); err != nil {
			t.Fatal(err)
		}
	}
	// Disperse.
	for now := trajectory.Time(3); now <= 10; now++ {
		pos := map[int]geom.Point{
			0: geom.Pt(0, 0), 1: geom.Pt(300, 0), 2: geom.Pt(0, 300),
		}
		if err := d.Observe(now, pos); err != nil {
			t.Fatal(err)
		}
	}
	if mcs := d.Close(); len(mcs) != 0 {
		t.Errorf("2-tick gathering must not count: %d", len(mcs))
	}
}

// Membership may drift: the chain survives while Jaccard stays above Theta,
// and the union of members is recorded.
func TestMembershipDrift(t *testing.T) {
	d, _ := New(Config{R: 10, MinPts: 3, Theta: 0.4, MinDuration: 3})
	members := [][]int{
		{0, 1, 2, 3}, {0, 1, 2, 3}, {1, 2, 3, 4}, {1, 2, 3, 4}, {2, 3, 4, 5},
	}
	for now, ms := range members {
		pos := make(map[int]geom.Point)
		base := float64(now) * 6
		for i, id := range ms {
			pos[id] = geom.Pt(base+float64(i)*3, 0)
		}
		if err := d.Observe(trajectory.Time(now), pos); err != nil {
			t.Fatal(err)
		}
	}
	mcs := d.Close()
	if len(mcs) != 1 {
		t.Fatalf("clusters = %d want 1", len(mcs))
	}
	if len(mcs[0].Members) != 6 {
		t.Errorf("union membership = %d want 6", len(mcs[0].Members))
	}
}

// A split into two far groups ends the chain (at most one successor match).
func TestSplitTerminatesOneBranch(t *testing.T) {
	d, _ := New(Config{R: 10, MinPts: 3, Theta: 0.5, MinDuration: 2})
	// 6 objects together for 5 ticks.
	for now := trajectory.Time(0); now < 5; now++ {
		pos := make(map[int]geom.Point)
		for id := 0; id < 6; id++ {
			pos[id] = geom.Pt(float64(now)*5+float64(id)*2, 0)
		}
		d.Observe(now, pos)
	}
	// Then they split into two trios far apart; Jaccard with the old set is
	// 3/6 = 0.5 ≥ Theta for each, but only one can extend the chain.
	for now := trajectory.Time(5); now < 10; now++ {
		pos := make(map[int]geom.Point)
		for id := 0; id < 3; id++ {
			pos[id] = geom.Pt(float64(now)*5+float64(id)*2, 0)
		}
		for id := 3; id < 6; id++ {
			pos[id] = geom.Pt(float64(now)*5+float64(id)*2, 1000)
		}
		d.Observe(now, pos)
	}
	mcs := d.Close()
	// One long chain (original extended by a trio) and one fresh trio chain.
	if len(mcs) != 2 {
		t.Fatalf("clusters = %d want 2", len(mcs))
	}
}

func TestActiveVsFinished(t *testing.T) {
	d, _ := New(Config{R: 10, MinPts: 3, Theta: 0.5, MinDuration: 2})
	for now := trajectory.Time(0); now <= 4; now++ {
		pos := map[int]geom.Point{
			0: geom.Pt(0, 0), 1: geom.Pt(3, 0), 2: geom.Pt(0, 3),
		}
		d.Observe(now, pos)
	}
	if len(d.Active()) != 1 {
		t.Errorf("active = %d", len(d.Active()))
	}
	if len(d.Finished()) != 0 {
		t.Errorf("finished = %d", len(d.Finished()))
	}
	// Disperse: chain terminates into finished.
	d.Observe(5, map[int]geom.Point{0: geom.Pt(0, 0), 1: geom.Pt(500, 0), 2: geom.Pt(0, 500)})
	if len(d.Finished()) != 1 {
		t.Errorf("finished after dispersal = %d", len(d.Finished()))
	}
}

// The paper's differentiation claim (Section 2): objects crossing the same
// route ASYNCHRONOUSLY share a hot motion path but never form a moving
// cluster. See internal/experiment for the end-to-end version against the
// real pipeline; here we verify the detector half directly.
func TestAsynchronousFlowFormsNoCluster(t *testing.T) {
	d, _ := New(Config{R: 20, MinPts: 2, Theta: 0.5, MinDuration: 2})
	// 10 objects traverse the same 400 m route one after another, 60 ts
	// apart, at 10 m/ts: no two are ever within 20 m simultaneously.
	const spacing = 60
	for now := trajectory.Time(0); now <= 12*spacing; now++ {
		pos := make(map[int]geom.Point)
		for id := 0; id < 10; id++ {
			step := int64(now) - int64(id*spacing)
			if step < 0 || step > 40 {
				continue
			}
			pos[id] = geom.Pt(float64(step)*10, 0)
		}
		if len(pos) > 0 {
			if err := d.Observe(now, pos); err != nil {
				t.Fatal(err)
			}
		}
	}
	if mcs := d.Close(); len(mcs) != 0 {
		t.Errorf("asynchronous flow produced %d moving clusters; want 0", len(mcs))
	}
}

package workload

import (
	"math"
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/roadnet"
	"hotpaths/internal/trajectory"
)

func lineNet(t *testing.T) *roadnet.Network {
	t.Helper()
	nodes := []roadnet.Node{
		{ID: 0, P: geom.Pt(0, 0)},
		{ID: 1, P: geom.Pt(100, 0)},
		{ID: 2, P: geom.Pt(200, 0)},
	}
	links := []roadnet.Link{
		{ID: 0, From: 0, To: 1, Class: roadnet.Primary},
		{ID: 1, From: 1, To: 2, Class: roadnet.Primary},
	}
	n, err := roadnet.Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func defaultCfg() Config {
	return Config{N: 10, Agility: 1.0, Step: 10, Err: 0, Seed: 1}
}

func TestNewValidation(t *testing.T) {
	net := lineNet(t)
	bad := []Config{
		{N: 0, Agility: 0.5, Step: 1},
		{N: 5, Agility: 0, Step: 1},
		{N: 5, Agility: 1.5, Step: 1},
		{N: 5, Agility: 0.5, Step: 0},
		{N: 5, Agility: 0.5, Step: 1, Err: -1},
		{N: 5, Agility: 0.5, Step: 1, Model: MovementModel(9)},
		{N: 5, Agility: 0.5, Step: 1, StopProb: 1.5},
	}
	for i, cfg := range bad {
		if _, err := New(net, cfg); err == nil {
			t.Errorf("case %d: config %+v must error", i, cfg)
		}
	}
	if _, err := New(nil, defaultCfg()); err == nil {
		t.Error("nil network must error")
	}
	empty, _ := roadnet.Build(nil, nil)
	if _, err := New(empty, defaultCfg()); err == nil {
		t.Error("empty network must error")
	}
}

func TestAllObjectsMoveAtFullAgility(t *testing.T) {
	s, err := New(lineNet(t), defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	ms := s.Tick(1)
	if len(ms) != 10 {
		t.Errorf("agility 1.0: %d of 10 objects moved", len(ms))
	}
	if s.Moves() != 10 {
		t.Errorf("Moves = %d", s.Moves())
	}
	if s.N() != 10 {
		t.Errorf("N = %d", s.N())
	}
}

func TestAgilityFractionIID(t *testing.T) {
	cfg := Config{N: 10000, Agility: 0.1, Step: 10, Err: 0, Seed: 3, Model: IID}
	s, err := New(lineNet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const ticks = 20
	for i := 1; i <= ticks; i++ {
		total += len(s.Tick(trajectory.Time(i)))
	}
	got := float64(total) / float64(ticks*cfg.N)
	if math.Abs(got-0.1) > 0.01 {
		t.Errorf("moving fraction = %v want ≈ 0.1", got)
	}
}

// The bursty model must reproduce the same long-run moving fraction α,
// just with temporal correlation (objects drive, then wait at lights).
func TestAgilityFractionBursty(t *testing.T) {
	cfg := Config{N: 4000, Agility: 0.1, Step: 10, Err: 0, Seed: 3, Model: Bursty}
	s, err := New(lineNet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const ticks = 400
	for i := 1; i <= ticks; i++ {
		total += len(s.Tick(trajectory.Time(i)))
	}
	got := float64(total) / float64(ticks*cfg.N)
	if math.Abs(got-0.1) > 0.035 {
		t.Errorf("long-run moving fraction = %v want ≈ 0.1", got)
	}
}

// Under the bursty model an object moves at constant full speed between
// stops: consecutive measurements of a moving object are Step apart at
// consecutive timestamps.
func TestBurstyConstantSpeedWithinBurst(t *testing.T) {
	cfg := Config{N: 50, Agility: 0.2, Step: 10, Err: 0, Seed: 13, Model: Bursty}
	s, err := New(lineNet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	type obs struct {
		t trajectory.Time
		p geom.Point
	}
	last := make(map[int]obs)
	for tick := 1; tick <= 300; tick++ {
		for _, m := range s.Tick(trajectory.Time(tick)) {
			if prev, ok := last[m.ObjectID]; ok && m.TP.T == prev.t+1 {
				d := prev.p.Dist(m.True)
				if d > 10+1e-9 {
					t.Fatalf("consecutive move of %vm exceeds step", d)
				}
			}
			last[m.ObjectID] = obs{m.TP.T, m.True}
		}
	}
}

func TestStoppedAccessor(t *testing.T) {
	cfg := Config{N: 500, Agility: 0.1, Step: 10, Err: 0, Seed: 5, Model: Bursty}
	s, err := New(lineNet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stopped := 0
	for id := 0; id < 500; id++ {
		if s.Stopped(id, 1) {
			stopped++
		}
	}
	// Steady-state init: about 1−α of the population waits at a light.
	if stopped < 300 {
		t.Errorf("stopped at t=1: %d of 500; steady-state init looks wrong", stopped)
	}
}

func TestMovementStaysOnNetwork(t *testing.T) {
	net := lineNet(t)
	s, err := New(net, Config{N: 5, Agility: 1, Step: 30, Err: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 1; tick <= 50; tick++ {
		for _, m := range s.Tick(trajectory.Time(tick)) {
			// With zero noise the measurement equals the truth, and the
			// truth must lie on the single horizontal line y=0, x∈[0,200].
			if m.TP.P.Y != 0 || m.TP.P.X < -1e-9 || m.TP.P.X > 200+1e-9 {
				t.Fatalf("object left the network: %v", m.TP.P)
			}
			if !m.True.Eq(m.TP.P) {
				t.Fatal("zero-noise measurement must equal truth")
			}
		}
	}
}

func TestStepDisplacement(t *testing.T) {
	net := lineNet(t)
	s, err := New(net, Config{N: 1, Agility: 1, Step: 10, Err: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	prev := s.Position(0)
	for tick := 1; tick <= 30; tick++ {
		ms := s.Tick(trajectory.Time(tick))
		if len(ms) != 1 {
			t.Fatal("object must move every tick at agility 1")
		}
		d := prev.Dist(ms[0].True)
		// Each move is exactly Step except when clamped at a node.
		if d > 10+1e-9 {
			t.Fatalf("move of %v exceeds step", d)
		}
		prev = ms[0].True
	}
}

func TestNoiseBounded(t *testing.T) {
	net := lineNet(t)
	s, err := New(net, Config{N: 100, Agility: 1, Step: 10, Err: 2.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sawNoise := false
	for tick := 1; tick <= 10; tick++ {
		for _, m := range s.Tick(trajectory.Time(tick)) {
			dx := math.Abs(m.TP.P.X - m.True.X)
			dy := math.Abs(m.TP.P.Y - m.True.Y)
			if dx > 2.5 || dy > 2.5 {
				t.Fatalf("noise (%v,%v) exceeds err", dx, dy)
			}
			if dx > 0.1 || dy > 0.1 {
				sawNoise = true
			}
		}
	}
	if !sawNoise {
		t.Error("expected some noticeable noise")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	net := lineNet(t)
	cfg := Config{N: 20, Agility: 0.5, Step: 10, Err: 1, Seed: 13}
	a, _ := New(net, cfg)
	b, _ := New(net, cfg)
	for tick := 1; tick <= 10; tick++ {
		ma := a.Tick(trajectory.Time(tick))
		mb := b.Tick(trajectory.Time(tick))
		if len(ma) != len(mb) {
			t.Fatalf("tick %d: %d vs %d measurements", tick, len(ma), len(mb))
		}
		for i := range ma {
			if ma[i].ObjectID != mb[i].ObjectID || !ma[i].TP.P.Eq(mb[i].TP.P) {
				t.Fatalf("tick %d measurement %d differs", tick, i)
			}
		}
	}
}

// Traffic must concentrate on high-weight roads: on a star network with one
// motorway and several secondary spokes, most traversals pick the motorway.
func TestWeightedLinkChoice(t *testing.T) {
	nodes := []roadnet.Node{
		{ID: 0, P: geom.Pt(0, 0)},
		{ID: 1, P: geom.Pt(50, 0)},
		{ID: 2, P: geom.Pt(0, 50)},
		{ID: 3, P: geom.Pt(-50, 0)},
		{ID: 4, P: geom.Pt(0, -50)},
	}
	links := []roadnet.Link{
		{ID: 0, From: 0, To: 1, Class: roadnet.Motorway},  // weight 10
		{ID: 1, From: 0, To: 2, Class: roadnet.Secondary}, // weight 1
		{ID: 2, From: 0, To: 3, Class: roadnet.Secondary},
		{ID: 3, From: 0, To: 4, Class: roadnet.Secondary},
	}
	net, err := roadnet.Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(net, Config{N: 1000, Agility: 1, Step: 25, Err: 0, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// In steady state each pass through the hub picks the motorway arm
	// w.p. 10/13 ≈ 0.77, so measurements on the x>0 arm must dominate the
	// three secondary arms combined. Skip a warm-up for seeding effects.
	onMotorway, offCentre := 0, 0
	for tick := 1; tick <= 300; tick++ {
		ms := s.Tick(trajectory.Time(tick))
		if tick <= 50 {
			continue
		}
		for _, m := range ms {
			if m.True.Dist(geom.Pt(0, 0)) < 1 {
				continue // at the hub, arm undefined
			}
			offCentre++
			if m.True.X > 1e-9 {
				onMotorway++
			}
		}
	}
	frac := float64(onMotorway) / float64(offCentre)
	if frac < 0.6 {
		t.Errorf("motorway share = %v, weighting looks ineffective", frac)
	}
}

// Measurement timestamps must be strictly increasing per object across
// ticks (a filter prerequisite).
func TestPerObjectTimestampsIncrease(t *testing.T) {
	net := lineNet(t)
	s, _ := New(net, Config{N: 50, Agility: 0.3, Step: 10, Err: 1, Seed: 19})
	last := make(map[int]trajectory.Time)
	for tick := 1; tick <= 100; tick++ {
		for _, m := range s.Tick(trajectory.Time(tick)) {
			if prev, ok := last[m.ObjectID]; ok && m.TP.T <= prev {
				t.Fatalf("object %d: timestamp %d after %d", m.ObjectID, m.TP.T, prev)
			}
			last[m.ObjectID] = m.TP.T
		}
	}
}

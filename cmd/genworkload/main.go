// Command genworkload generates the synthetic road network and, optionally,
// a trace of moving-object measurements, writing both to files for external
// tooling or reproducible runs.
//
// Usage:
//
//	genworkload -net network.txt [-trace trace.txt] [-seed 1]
//	            [-n 1000] [-duration 250] [-agility 0.1] [-step 10] [-err 1]
//
// The trace format is one measurement per line:
//
//	<timestamp> <objectID> <x> <y>
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"hotpaths/internal/roadnet"
	"hotpaths/internal/trajectory"
	"hotpaths/internal/workload"
)

func main() {
	var (
		netFile   = flag.String("net", "network.txt", "output network file")
		traceFile = flag.String("trace", "", "optional output measurement trace")
		seed      = flag.Int64("seed", 1, "random seed")
		n         = flag.Int("n", 1000, "objects for the trace")
		duration  = flag.Int64("duration", 250, "trace length, timestamps")
		agility   = flag.Float64("agility", 0.1, "moving fraction per timestamp")
		step      = flag.Float64("step", 10, "displacement per move, metres")
		errAmp    = flag.Float64("err", 1, "noise amplitude, metres")
	)
	flag.Parse()

	net, err := roadnet.GenerateAthens(*seed)
	if err != nil {
		fatal(err)
	}
	if err := writeNetwork(net, *netFile); err != nil {
		fatal(err)
	}
	counts := net.ClassCounts()
	fmt.Printf("wrote %s: %d nodes, %d links (%d motorway, %d highway, %d primary, %d secondary)\n",
		*netFile, len(net.Nodes), len(net.Links),
		counts[roadnet.Motorway], counts[roadnet.Highway],
		counts[roadnet.Primary], counts[roadnet.Secondary])

	if *traceFile == "" {
		return
	}
	sim, err := workload.New(net, workload.Config{
		N: *n, Agility: *agility, Step: *step, Err: *errAmp, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*traceFile)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	total := 0
	for now := trajectory.Time(1); now <= trajectory.Time(*duration); now++ {
		for _, m := range sim.Tick(now) {
			fmt.Fprintf(w, "%d %d %g %g\n", m.TP.T, m.ObjectID, m.TP.P.X, m.TP.P.Y)
			total++
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d measurements from %d objects over %d timestamps\n",
		*traceFile, total, *n, *duration)
}

func writeNetwork(net *roadnet.Network, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = net.WriteTo(f)
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genworkload:", err)
	os.Exit(1)
}

package wal

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// TruncatedError reports that a Tailer's position has been truncated away:
// the records at From were deleted by a checkpoint (TruncateBefore) or a
// reset (ResetTo) before the tailer read them. The reader cannot resume
// from the log alone; it must bootstrap from a checkpoint at or past
// Oldest and re-attach from there.
type TruncatedError struct {
	From   uint64 // the LSN the tailer needed
	Oldest uint64 // the oldest LSN still on disk (0 when no segments survive)
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("wal: records from LSN %d truncated; oldest surviving LSN is %d", e.From, e.Oldest)
}

// Tailer is a streaming reader over a log directory: sealed segments first,
// then the live tail as the writer appends to it. It is the replication
// feed behind the primary's /wal/stream endpoint and the `hotpaths
// -wal-tail` debugging command.
//
// A Tailer never takes the writer's lock — it reads the segment files the
// same way recovery does, trusting the frame CRCs — so it may run in the
// writing process, in another process, or long after the writer exited.
// The torn-tail rules carry over: an undecodable tail in the NEWEST
// segment is data the writer has not finished flushing yet (ReadBatch
// reports "caught up" and the caller polls again), while an undecodable
// tail in a sealed segment is real corruption and surfaces as an error.
// Records the writer truncated away from under the tailer surface as
// *TruncatedError.
//
// A Tailer is not safe for concurrent use; each consumer follows with its
// own.
type Tailer struct {
	dir string
	pos uint64 // next LSN to emit

	f        *os.File // open segment, nil between segments
	segStart uint64   // first LSN of the open segment
	next     uint64   // LSN of the first frame at off
	off      int64    // byte offset of the next unparsed byte's frame run
	buf      []byte   // carry-over bytes read but not yet decoded
	scratch  []byte
}

// Follow positions a new Tailer at LSN from. The position is validated
// lazily by the first ReadBatch, so Follow works on directories that do
// not exist yet.
func Follow(dir string, from uint64) *Tailer {
	return &Tailer{dir: dir, pos: from}
}

// Pos returns the LSN the next emitted record will have.
func (t *Tailer) Pos() uint64 { return t.pos }

// Close releases the open segment handle, if any. The Tailer stays usable;
// the next ReadBatch reopens at its position.
func (t *Tailer) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	t.buf = nil
	return err
}

// ReadBatch reads the complete frames available at the tailer's position,
// up to roughly maxBytes of frame data (<= 0 selects a default), and
// returns them raw — exactly the bytes on disk, re-checksummed — along
// with the LSN of the first frame and the frame count. n == 0 with a nil
// error means the tailer is caught up with the writer; the caller polls
// again after its interval. The returned slice is valid until the next
// ReadBatch.
func (t *Tailer) ReadBatch(maxBytes int) (frames []byte, first uint64, n int, err error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	first = t.pos
	var out []byte
	for len(out) < maxBytes {
		if t.f == nil {
			ok, err := t.locate()
			if err != nil {
				return out, first, n, err
			}
			if !ok {
				return out, first, n, nil // nothing on disk yet
			}
		}
		// Top the carry-over buffer up from the file.
		if cap(t.scratch) == 0 {
			t.scratch = make([]byte, 256<<10)
		}
		read, rerr := t.f.ReadAt(t.scratch[:cap(t.scratch)], t.off+int64(len(t.buf)))
		if read > 0 {
			t.buf = append(t.buf, t.scratch[:read]...)
		}
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return out, first, n, fmt.Errorf("wal: follow %s: %w", segName(t.segStart), rerr)
		}
		// Decode as many complete frames as the buffer holds.
		used := 0
		for {
			_, consumed, derr := DecodeRecord(t.buf[used:])
			if derr != nil {
				break
			}
			if t.next >= t.pos {
				out = append(out, t.buf[used:used+consumed]...)
				n++
				t.pos++
			}
			t.next++
			used += consumed
		}
		if used > 0 {
			t.off += int64(used)
			t.buf = append(t.buf[:0], t.buf[used:]...)
			continue
		}
		if read > 0 {
			continue // a frame may straddle the chunk boundary; keep reading
		}
		// No new bytes and no decodable frame: end of this segment as it
		// stands. A sealed segment (one with a successor) must end exactly
		// on a frame boundary; leftover bytes there are corruption, and a
		// clean boundary moves the tailer to the successor. On the newest
		// segment the leftover is the writer's unflushed tail — caught up.
		starts, lerr := segments(t.dir)
		if lerr != nil {
			return out, first, n, lerr
		}
		// The open segment may have been deleted under us (TruncateBefore
		// racing a slow tailer, or ResetTo wiping the directory). Its
		// remaining records are gone; report the truncation with the
		// resume point instead of misreading the successor as corruption.
		if !contains(starts, t.segStart) {
			t.f.Close()
			t.f = nil
			if len(starts) > 0 && t.pos >= starts[0] {
				// Truncation only removes a prefix, so the surviving
				// segments still cover our position; relocate and go on.
				continue
			}
			te := &TruncatedError{From: t.pos}
			if len(starts) > 0 {
				te.Oldest = starts[0]
			}
			return out, first, n, te
		}
		nextSeg, sealed := successor(starts, t.segStart)
		if !sealed {
			return out, first, n, nil // live tail; poll again later
		}
		// The segment may have been sealed between our read and the
		// listing, with its final frames flushed in that window. One more
		// read settles it — sealed segments never grow again.
		read, rerr = t.f.ReadAt(t.scratch[:cap(t.scratch)], t.off+int64(len(t.buf)))
		if read > 0 {
			t.buf = append(t.buf, t.scratch[:read]...)
			continue
		}
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return out, first, n, fmt.Errorf("wal: follow %s: %w", segName(t.segStart), rerr)
		}
		if len(t.buf) > 0 {
			return out, first, n, fmt.Errorf("wal: segment %s is corrupt at byte %d (not the last segment)",
				filepath.Join(t.dir, segName(t.segStart)), t.off)
		}
		if t.next != nextSeg {
			return out, first, n, fmt.Errorf("wal: segment %s ends at LSN %d but next segment starts at LSN %d",
				segName(t.segStart), t.next, nextSeg)
		}
		t.f.Close()
		t.f = nil
	}
	return out, first, n, nil
}

// locate opens the segment containing t.pos and fast-forwards past the
// frames below it. It returns false (and no error) when the directory has
// no segments yet and the tailer waits at LSN 0.
func (t *Tailer) locate() (bool, error) {
	starts, err := segments(t.dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) && t.pos == 0 {
			return false, nil
		}
		return false, err
	}
	if len(starts) == 0 {
		if t.pos == 0 {
			return false, nil
		}
		// pos > 0 with an empty directory: everything the tailer wanted is
		// gone (e.g. the directory was rebuilt).
		return false, &TruncatedError{From: t.pos}
	}
	if starts[0] > t.pos {
		return false, &TruncatedError{From: t.pos, Oldest: starts[0]}
	}
	seg := starts[0]
	for _, s := range starts {
		if s <= t.pos {
			seg = s
		}
	}
	f, err := os.Open(filepath.Join(t.dir, segName(seg)))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// Deleted between the listing and the open (a truncation racing
			// us); re-resolve on the next call.
			return false, &TruncatedError{From: t.pos, Oldest: seg}
		}
		return false, err
	}
	t.f = f
	t.segStart = seg
	t.next = seg
	t.off = 0
	t.buf = t.buf[:0]
	return true, nil
}

func contains(starts []uint64, s uint64) bool {
	for _, v := range starts {
		if v == s {
			return true
		}
	}
	return false
}

// successor returns the start LSN of the segment following segStart, and
// whether one exists (i.e. segStart is sealed).
func successor(starts []uint64, segStart uint64) (uint64, bool) {
	for _, s := range starts {
		if s > segStart {
			return s, true
		}
	}
	return 0, false
}

// Package gateway implements the scatter-gather router in front of a
// partitioned hotpathsd fleet: N independent -wal primaries, each owning
// the objects that hash to its partition (internal/partition), fronted by
// one process that routes writes to owners and merges reads at a shared
// epoch.
//
// # Write routing
//
// POST /observe splits each batch by partition.Index(object, N) and
// forwards every record to exactly one primary, exactly once (failed
// sub-batches are reported, never retried — a retry could double-apply).
// POST /tick is an epoch barrier: the tick is forwarded to every primary
// and succeeds only when all of them applied it, so the fleet shares one
// epoch sequence. All writes MUST flow through the gateway — that is
// what lets it cache merged reads per epoch and know when they go stale.
//
// # Read merging
//
// GET /topk, /paths and /paths.geojson are answered from one merged view:
// the gateway fetches every partition's full /paths at an agreed epoch
// (the X-Hotpaths-Epoch response header, re-fetching laggards until all
// partitions answer at the same epoch), sums hotness by path id — ids are
// content-addressed, so a corridor discovered by several partitions
// merges by id alone — and sorts the union in the canonical order. The
// merged view is cached until the next write, mirroring hotpathsd's own
// snapshot cache, so steady-state reads cost one local query, not a
// fan-out. Query parameters (k/limit, min_hotness, bbox, sort) are
// applied to the merged view with Snapshot.Query's exact semantics, so a
// fleet behind a gateway answers byte-identically to one hotpathsd fed
// the same workload.
//
// When a partition cannot be reached the gateway answers 206 with the
// partitions it could merge and names the missing ones in the
// X-Hotpaths-Partial header — a partial answer a client can see is
// partial, never a silently shrunken one.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hotpaths"
	"hotpaths/internal/flightrec"
	"hotpaths/internal/metrics"
	"hotpaths/internal/partition"
	"hotpaths/internal/tracing"
)

// sloDegradedBurn is the fast-window burn rate past which the /healthz
// slo component reports degraded: spending error budget an order of
// magnitude faster than the objective allows is an incident, not noise.
const sloDegradedBurn = 10.0

// Config parameterises a Gateway.
type Config struct {
	// Table is the fleet: partition i's base URL at slot i (required).
	Table partition.Table

	// K is the default /topk and /watch result cap (default 10),
	// mirroring hotpathsd's -k.
	K int

	// Client is the HTTP client for partition requests (default: a
	// dedicated client; streams rely on no overall timeout, so per-call
	// deadlines come from RequestTimeout instead).
	Client *http.Client

	// RequestTimeout bounds each per-partition sub-request (default 10s).
	RequestTimeout time.Duration

	// AlignRetries and AlignWait govern epoch agreement on reads: a
	// partition that answers at an older epoch than its peers is
	// re-fetched up to AlignRetries times, AlignWait apart (defaults 50
	// and 5ms), before the read fails. Alignment only races in-flight
	// ticks, so one round is the common case.
	AlignRetries int
	AlignWait    time.Duration

	// ProbeInterval is the health prober cadence (default 1s). Negative
	// disables background probing (New still probes once).
	ProbeInterval time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.AlignRetries <= 0 {
		cfg.AlignRetries = 50
	}
	if cfg.AlignWait <= 0 {
		cfg.AlignWait = 5 * time.Millisecond
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	return cfg
}

// part is one partition's runtime state: its table entry plus the
// prober's latest view.
type part struct {
	id  int
	url string

	reqHist *metrics.Histogram
	upG     *metrics.Gauge
	failC   *metrics.Counter

	mu      sync.Mutex
	checked bool // at least one probe round completed
	healthy bool
	lastErr string
	epoch   int64
	clock   int64
}

// setHealth updates the prober's view of one partition. Transitions —
// and only transitions; probes repeat, state flips do not — are recorded
// as flight-recorder events, carrying the trace ID when the flip was
// detected inside a traced request (a failed scatter leg) rather than by
// the background prober.
func (p *part) setHealth(ctx context.Context, healthy bool, err string, epoch, clock int64) {
	p.mu.Lock()
	wasChecked, wasHealthy := p.checked, p.healthy
	p.checked = true
	p.healthy = healthy
	p.lastErr = err
	if healthy {
		p.epoch, p.clock = epoch, clock
	}
	p.mu.Unlock()
	v := int64(0)
	if healthy {
		v = 1
	} else {
		p.failC.Inc()
	}
	p.upG.Set(v)
	if !wasChecked || wasHealthy != healthy {
		from := "unknown"
		if wasChecked {
			from = healthState(wasHealthy)
		}
		attrs := []flightrec.Attr{
			flightrec.KV("component", "partition"),
			flightrec.KV("partition", p.id),
			flightrec.KV("from", from),
			flightrec.KV("to", healthState(healthy)),
		}
		if err != "" {
			attrs = append(attrs, flightrec.KV("reason", err))
		}
		flightrec.Default.RecordCtx(ctx, flightrec.EvHealthTransition, attrs...)
	}
}

func healthState(healthy bool) string {
	if healthy {
		return "ok"
	}
	return "degraded"
}

// lastError returns the partition's most recent probe error ("" when
// healthy).
func (p *part) lastError() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastErr
}

// Gateway routes writes to partition owners and merges reads across the
// fleet. Build one with New, mount Handler, and Close it on shutdown.
type Gateway struct {
	cfg    Config
	client *http.Client
	parts  []*part
	start  time.Time

	// gen counts writes routed through the gateway; the merged read view
	// is cached per generation, exactly like hotpathsd's snapshot cache.
	gen    atomic.Uint64
	mu     sync.Mutex
	cached *mergedView

	closing   chan struct{}
	closeOnce sync.Once
	probeDone chan struct{}

	// slo derives burn-rate gauges from the gateway's request instruments.
	slo *metrics.SLO

	// lastHealth remembers the previous /healthz verdict so only state
	// transitions — not every poll — become flight-recorder events.
	healthMu   sync.Mutex
	lastHealth string
}

// mergedView is the fleet's merged read state at one epoch: every
// partition's paths with hotness summed by id, in canonical order.
type mergedView struct {
	gen   uint64
	epoch int64
	clock int64
	paths []hotpaths.HotPath
}

// New validates the table, probes the fleet once, and returns a running
// gateway (background prober included unless ProbeInterval < 0).
func New(cfg Config) (*Gateway, error) {
	if err := cfg.Table.Validate(); err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:       cfg,
		client:    cfg.Client,
		start:     time.Now(),
		closing:   make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	for _, pt := range cfg.Table.Partitions {
		label := metrics.Labels{"partition": strconv.Itoa(pt.ID)}
		g.parts = append(g.parts, &part{
			id:  pt.ID,
			url: strings.TrimRight(pt.URL, "/"),
			reqHist: metrics.Default.Histogram("hotpathsgw_partition_request_seconds",
				"Sub-request duration by partition.", metrics.LatencyBuckets, label),
			upG: metrics.Default.Gauge("hotpathsgw_partition_up",
				"1 while the partition's last probe succeeded.", label),
			failC: metrics.Default.Counter("hotpathsgw_partition_probe_failures_total",
				"Probe rounds that found the partition unhealthy.", label),
		})
	}
	mPartitions.Set(int64(len(g.parts)))
	g.slo = metrics.StartSLO(metrics.Default, metrics.SLOOptions{
		RequestsTotal:  "hotpathsgw_http_requests_total",
		LatencySeconds: "hotpathsgw_http_request_seconds",
	})
	g.probeAll()
	if cfg.ProbeInterval > 0 {
		go g.probeLoop()
	} else {
		close(g.probeDone)
	}
	return g, nil
}

// Close stops the background prober. In-flight requests finish on their
// own; open /watch fan-ins end.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() { close(g.closing) })
	<-g.probeDone
	g.slo.Stop()
}

// Handler mounts the gateway's HTTP surface: the hotpathsd read/write
// endpoints (routed/merged), /stats, /healthz and /metrics.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	// Metrics outermost, tracing inside: the histogram sees the whole
	// request, the root span starts before any partition leg.
	wrap := func(route string, h http.HandlerFunc) http.HandlerFunc {
		return g.instrument(route, tracing.Default.Middleware(route, h))
	}
	mux.HandleFunc("POST /observe", wrap("/observe", g.handleObserve))
	mux.HandleFunc("POST /observe_batch", wrap("/observe_batch", g.handleObserve))
	mux.HandleFunc("POST /tick", wrap("/tick", g.handleTick))
	mux.HandleFunc("GET /topk", wrap("/topk", g.handleTopK))
	mux.HandleFunc("GET /paths", wrap("/paths", g.handlePaths))
	mux.HandleFunc("GET /paths.geojson", wrap("/paths.geojson", g.handleGeoJSON))
	mux.HandleFunc("GET /watch", wrap("/watch", g.handleWatch))
	mux.HandleFunc("GET /stats", wrap("/stats", g.handleStats))
	mux.HandleFunc("GET /healthz", wrap("/healthz", g.handleHealthz))
	mux.Handle("GET /metrics", g.instrument("/metrics", metrics.Handler().ServeHTTP))
	return mux
}

// ---- partition sub-requests ----------------------------------------------

// do runs one sub-request against a partition with the configured
// deadline, recording its latency. When the caller's context carries a
// sampled trace, the leg gets its own child span — ended when the caller
// closes the body, so body-read time counts — and the trace context is
// propagated to the partition in the traceparent header.
func (g *Gateway) do(ctx context.Context, p *part, method, path string, body []byte) (*http.Response, error) {
	parent := ctx
	ctx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
	ctx, span := tracing.StartSpan(ctx, "partition.leg")
	span.SetAttr("partition", p.id)
	span.SetAttr("http.method", method)
	span.SetAttr("http.path", path)
	done := func() {
		span.End()
		cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, p.url+path, rd)
	if err != nil {
		done()
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	tracing.Inject(ctx, req.Header)
	mInflight.Add(1)
	t0 := time.Now()
	resp, err := g.client.Do(req)
	p.reqHist.ObserveSince(t0)
	mInflight.Add(-1)
	if err != nil {
		span.Annotate("leg failed: %v", err)
		done()
		// A transport failure on a live request is fresher evidence than
		// the last probe: flip the partition to degraded now, in the
		// request's trace context, so the health transition and the 206
		// the caller is about to emit correlate. Skip it when the caller
		// itself went away — a client disconnect says nothing about the
		// partition.
		if parent.Err() == nil {
			p.setHealth(parent, false, err.Error(), 0, 0)
		}
		return nil, err
	}
	span.SetAttr("http.status", resp.StatusCode)
	// Tie the deadline (and the leg span) to the body: the caller just
	// reads and closes.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: done}
	return resp, nil
}

type cancelBody struct {
	io.ReadCloser
	cancel func()
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// partError is a sub-request failure tagged with its partition.
type partError struct {
	id  int
	err error
}

func (e partError) Error() string { return fmt.Sprintf("partition %d: %v", e.id, e.err) }
func (e partError) Unwrap() error { return e.err }

// upstreamError is a non-2xx sub-response. The status travels as a typed
// field so callers classify by code, never by parsing the message (which
// embeds the upstream's error body verbatim).
type upstreamError struct {
	status int
	msg    string
}

func (e *upstreamError) Error() string { return fmt.Sprintf("upstream status %d%s", e.status, e.msg) }

// readError turns a non-2xx sub-response into an *upstreamError carrying
// the status and the upstream's error body, when one decodes.
func readError(resp *http.Response) error {
	defer resp.Body.Close()
	var body struct {
		Error string `json:"error"`
	}
	msg := ""
	if b, err := io.ReadAll(io.LimitReader(resp.Body, 4096)); err == nil {
		if json.Unmarshal(b, &body) == nil && body.Error != "" {
			msg = ": " + body.Error
		}
	}
	return &upstreamError{status: resp.StatusCode, msg: msg}
}

// ---- merged reads --------------------------------------------------------

// fetchPaths fetches one partition's full path set and the epoch/clock it
// was answered at.
func (g *Gateway) fetchPaths(ctx context.Context, p *part) (paths []hotpaths.PathJSON, epoch, clock int64, err error) {
	resp, err := g.do(ctx, p, http.MethodGet, "/paths", nil)
	if err != nil {
		return nil, 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, 0, readError(resp)
	}
	defer resp.Body.Close()
	epoch, err = strconv.ParseInt(resp.Header.Get(hotpaths.EpochHeader), 10, 64)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("missing %s header: is this a current hotpathsd?", hotpaths.EpochHeader)
	}
	clock, _ = strconv.ParseInt(resp.Header.Get(hotpaths.ClockHeader), 10, 64)
	if err := json.NewDecoder(resp.Body).Decode(&paths); err != nil {
		return nil, 0, 0, fmt.Errorf("decode paths: %w", err)
	}
	return paths, epoch, clock, nil
}

// gather fetches every partition's paths at one agreed epoch. Partitions
// that keep failing are reported in missing (with their last error) and
// excluded from the merge; a partition that answers at an older epoch
// than the newest is re-fetched until the fleet agrees.
func (g *Gateway) gather(ctx context.Context) (merged *mergedView, missing []partError) {
	type result struct {
		paths []hotpaths.PathJSON
		epoch int64
		clock int64
		err   error
	}
	results := make([]result, len(g.parts))
	fetch := func(idxs []int) {
		var wg sync.WaitGroup
		for _, i := range idxs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				paths, epoch, clock, err := g.fetchPaths(ctx, g.parts[i])
				results[i] = result{paths: paths, epoch: epoch, clock: clock, err: err}
			}(i)
		}
		wg.Wait()
	}
	all := make([]int, len(g.parts))
	for i := range all {
		all[i] = i
	}
	fetch(all)

	// Epoch agreement: every successful partition must answer at the
	// newest epoch seen. Laggards are re-fetched — their tick barrier is
	// mid-flight — rather than merged inconsistently.
	for retry := 0; retry < g.cfg.AlignRetries; retry++ {
		target := int64(-1)
		for i := range results {
			if results[i].err == nil && results[i].epoch > target {
				target = results[i].epoch
			}
		}
		var stale []int
		for i := range results {
			if results[i].err == nil && results[i].epoch < target {
				stale = append(stale, i)
			}
		}
		if len(stale) == 0 {
			break
		}
		tracing.FromContext(ctx).Annotate(
			"alignment retry %d: %d partitions behind epoch %d", retry+1, len(stale), target)
		select {
		case <-ctx.Done():
			stale = nil
		case <-time.After(g.cfg.AlignWait):
		}
		if stale == nil {
			break
		}
		fetch(stale)
	}

	t0 := time.Now()
	// Pick the target epoch first — the newest any partition answered at —
	// then merge only the partitions that reached it. A partition still
	// stuck at an older epoch after the retries above is failed like an
	// unreachable one (reported in missing, its paths excluded): merging
	// it would interleave two points in time.
	var epoch, clock int64
	for i := range results {
		if results[i].err == nil && results[i].epoch > epoch {
			epoch = results[i].epoch
		}
	}
	byID := make(map[uint64]hotpaths.HotPath)
	for i := range results {
		switch {
		case results[i].err != nil:
			missing = append(missing, partError{id: g.parts[i].id, err: results[i].err})
			continue
		case results[i].epoch != epoch:
			missing = append(missing, partError{
				id:  g.parts[i].id,
				err: fmt.Errorf("stuck at epoch %d while the fleet reached %d", results[i].epoch, epoch),
			})
			continue
		}
		if results[i].clock > clock {
			clock = results[i].clock
		}
		for _, pj := range results[i].paths {
			hp := pj.HotPath()
			if prev, ok := byID[hp.ID]; ok {
				// The same corridor discovered by more than one partition:
				// content-addressed ids make the merge a sum by id.
				hp.Hotness += prev.Hotness
			}
			byID[hp.ID] = hp
		}
	}
	out := make([]hotpaths.HotPath, 0, len(byID))
	for _, hp := range byID {
		out = append(out, hp)
	}
	hotpaths.SortResults(out, hotpaths.ByHotness)
	mMergeSeconds.ObserveSince(t0)
	sort.Slice(missing, func(i, j int) bool { return missing[i].id < missing[j].id })
	return &mergedView{epoch: epoch, clock: clock, paths: out}, missing
}

// merged returns the fleet's merged view, cached per write generation.
// Partial views (missing partitions) are returned but never cached, so
// the next read retries the failed partitions.
func (g *Gateway) merged(ctx context.Context) (*mergedView, []partError) {
	gen := g.gen.Load()
	g.mu.Lock()
	c := g.cached
	g.mu.Unlock()
	if c != nil && c.gen == gen {
		return c, nil
	}
	mv, missing := g.gather(ctx)
	if len(missing) == 0 {
		mv.gen = gen
		g.mu.Lock()
		if g.gen.Load() == gen {
			g.cached = mv
		}
		g.mu.Unlock()
	}
	return mv, missing
}

// invalidate marks the merged view stale after a routed write.
func (g *Gateway) invalidate() { g.gen.Add(1) }

// writePartial stamps a partial scatter-gather response: 206 with the
// missing partition ids in the X-Hotpaths-Partial header. Each partial
// response is one flight-recorder event carrying the request's trace ID,
// so a fleet timeline can tie the 206 to the partition outage behind it.
func writePartial(ctx context.Context, w http.ResponseWriter, missing []partError) int {
	if len(missing) == 0 {
		return http.StatusOK
	}
	ids := make([]string, len(missing))
	for i, pe := range missing {
		ids[i] = strconv.Itoa(pe.id)
	}
	w.Header().Set(hotpaths.PartialHeader, strings.Join(ids, ","))
	mPartial.Inc()
	flightrec.Default.RecordCtx(ctx, flightrec.EvGatewayPartial,
		flightrec.KV("missing_partitions", strings.Join(ids, ",")),
		flightrec.KV("missing_count", len(missing)),
	)
	return http.StatusPartialContent
}

func (g *Gateway) answerQuery(w http.ResponseWriter, r *http.Request, defaultK int, geo bool) {
	q, err := parseQuery(r, defaultK)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	mv, missing := g.merged(r.Context())
	if len(missing) == len(g.parts) {
		httpError(w, http.StatusBadGateway, errors.Join(asErrs(missing)...))
		return
	}
	sel := q.apply(mv.paths)
	w.Header().Set(hotpaths.EpochHeader, strconv.FormatInt(mv.epoch, 10))
	w.Header().Set(hotpaths.ClockHeader, strconv.FormatInt(mv.clock, 10))
	status := writePartial(r.Context(), w, missing)
	if geo {
		var buf bytes.Buffer
		if err := hotpaths.WriteGeoJSON(&buf, sel); err != nil {
			httpError(w, http.StatusInternalServerError, fmt.Errorf("encode geojson: %w", err))
			return
		}
		w.Header().Set("Content-Type", "application/geo+json")
		w.WriteHeader(status)
		buf.WriteTo(w)
		return
	}
	writeJSON(w, status, hotpaths.PathsJSON(sel))
}

func asErrs(pes []partError) []error {
	out := make([]error, len(pes))
	for i, pe := range pes {
		out[i] = pe
	}
	return out
}

func (g *Gateway) handleTopK(w http.ResponseWriter, r *http.Request) {
	g.answerQuery(w, r, g.cfg.K, false)
}

func (g *Gateway) handlePaths(w http.ResponseWriter, r *http.Request) {
	g.answerQuery(w, r, 0, false)
}

func (g *Gateway) handleGeoJSON(w http.ResponseWriter, r *http.Request) {
	g.answerQuery(w, r, 0, true)
}

// ---- write routing -------------------------------------------------------

type observeRequest struct {
	Observations []hotpaths.ObservationJSON `json:"observations"`
	Tick         int64                      `json:"tick,omitempty"`
}

type tickRequest struct {
	Now int64 `json:"now"`
}

// maxRequestBytes mirrors hotpathsd's request-body cap.
const maxRequestBytes = 8 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		}
		return false
	}
	return true
}

// postAll posts one body to the given partitions concurrently and
// collects the failures. bodies[i] addresses parts[i]; a nil body skips
// that partition.
func (g *Gateway) postAll(ctx context.Context, path string, bodies [][]byte) []partError {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []partError
	)
	for i, body := range bodies {
		if body == nil {
			continue
		}
		wg.Add(1)
		go func(p *part, body []byte) {
			defer wg.Done()
			var err error
			resp, derr := g.do(ctx, p, http.MethodPost, path, body)
			if derr != nil {
				err = derr
			} else if resp.StatusCode != http.StatusOK {
				err = readError(resp)
			} else {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if err != nil {
				mu.Lock()
				errs = append(errs, partError{id: p.id, err: err})
				mu.Unlock()
			}
		}(g.parts[i], body)
	}
	wg.Wait()
	sort.Slice(errs, func(i, j int) bool { return errs[i].id < errs[j].id })
	return errs
}

// tickAll drives the epoch barrier: POST /tick to every partition.
func (g *Gateway) tickAll(ctx context.Context, now int64) []partError {
	body, _ := json.Marshal(tickRequest{Now: now})
	bodies := make([][]byte, len(g.parts))
	for i := range bodies {
		bodies[i] = body
	}
	defer g.invalidate()
	return g.postAll(ctx, "/tick", bodies)
}

// writeErrStatus maps sub-request failures to the gateway response: 503
// when any partition failed server-side or was unreachable (retryable),
// else the client's 400 passes through (every failure was the request's
// own fault, rejected upstream with a 4xx).
func writeErrStatus(errs []partError) int {
	status := http.StatusBadRequest
	for _, pe := range errs {
		var ue *upstreamError
		if !errors.As(pe.err, &ue) || ue.status < 400 || ue.status >= 500 {
			status = http.StatusServiceUnavailable
		}
	}
	return status
}

// errPartitions is the per-partition detail of a failed routed write:
// "ok" for the partitions that applied their share, the error for those
// that did not — the operator-facing answer to "which primaries have the
// records?".
func (g *Gateway) errPartitions(errs []partError, touched [][]byte) map[string]string {
	out := make(map[string]string)
	failed := make(map[int]string, len(errs))
	for _, pe := range errs {
		failed[pe.id] = pe.err.Error()
	}
	for i, p := range g.parts {
		if touched != nil && touched[i] == nil {
			continue // no records routed there; nothing to report
		}
		if msg, ok := failed[p.id]; ok {
			out[strconv.Itoa(p.id)] = msg
		} else {
			out[strconv.Itoa(p.id)] = "ok"
		}
	}
	return out
}

// handleObserve serves POST /observe and /observe_batch: split the batch
// by owner, forward each share exactly once, then (with "tick") drive the
// epoch barrier.
func (g *Gateway) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req observeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n := len(g.parts)
	shares := make([][]hotpaths.ObservationJSON, n)
	for _, o := range req.Observations {
		i := partition.Index(o.Object, n)
		shares[i] = append(shares[i], o)
	}
	bodies := make([][]byte, n)
	for i, share := range shares {
		if len(share) == 0 {
			continue
		}
		b, err := json.Marshal(observeRequest{Observations: share})
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		bodies[i] = b
	}
	// Invalidate only once the writes have landed (mirroring tickAll):
	// bumping the generation first would let a concurrent read gather the
	// pre-write state and cache it under the post-write generation, which
	// nothing would ever invalidate. Invalidate even on partial failure —
	// the healthy partitions applied their shares.
	errs := g.postAll(r.Context(), "/observe", bodies)
	g.invalidate()
	if len(errs) != 0 {
		// Exactly-once means no blind retry: the failed partitions never
		// saw their share, the others applied theirs. Report both sides.
		writeJSON(w, writeErrStatus(errs), map[string]any{
			"error":      errors.Join(asErrs(errs)...).Error(),
			"partitions": g.errPartitions(errs, bodies),
		})
		return
	}
	resp := map[string]any{"accepted": len(req.Observations)}
	if req.Tick > 0 {
		if errs := g.tickAll(r.Context(), req.Tick); len(errs) != 0 {
			writeJSON(w, writeErrStatus(errs), map[string]any{
				"error":      errors.Join(asErrs(errs)...).Error(),
				"accepted":   len(req.Observations),
				"partitions": g.errPartitions(errs, nil),
			})
			return
		}
		resp["now"] = req.Tick
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTick serves POST /tick as the fleet-wide epoch barrier.
func (g *Gateway) handleTick(w http.ResponseWriter, r *http.Request) {
	var req tickRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if errs := g.tickAll(r.Context(), req.Now); len(errs) != 0 {
		writeJSON(w, writeErrStatus(errs), map[string]any{
			"error":      errors.Join(asErrs(errs)...).Error(),
			"partitions": g.errPartitions(errs, nil),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"now": req.Now})
}

// ---- health and stats ----------------------------------------------------

// probeLoop re-probes the fleet every ProbeInterval until Close.
func (g *Gateway) probeLoop() {
	defer close(g.probeDone)
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.closing:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

// probeAll checks every partition once: /healthz must answer 200 and
// /stats must advertise the partition slot the table assigns it (daemons
// started without -partition-count advertise 0/0 and are trusted).
func (g *Gateway) probeAll() {
	var wg sync.WaitGroup
	for _, p := range g.parts {
		wg.Add(1)
		go func(p *part) {
			defer wg.Done()
			g.probe(p)
		}(p)
	}
	wg.Wait()
}

type statsProbe struct {
	PartitionID    int   `json:"partition_id"`
	PartitionCount int   `json:"partition_count"`
	Epoch          int64 `json:"epoch"`
	Clock          int64 `json:"clock"`
}

func (g *Gateway) probe(p *part) {
	ctx := context.Background()
	resp, err := g.do(ctx, p, http.MethodGet, "/healthz", nil)
	if err != nil {
		p.setHealth(ctx, false, err.Error(), 0, 0)
		return
	}
	if resp.StatusCode != http.StatusOK {
		p.setHealth(ctx, false, readError(resp).Error(), 0, 0)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = g.do(ctx, p, http.MethodGet, "/stats", nil)
	if err != nil {
		p.setHealth(ctx, false, err.Error(), 0, 0)
		return
	}
	if resp.StatusCode != http.StatusOK {
		p.setHealth(ctx, false, readError(resp).Error(), 0, 0)
		return
	}
	var st statsProbe
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		p.setHealth(ctx, false, fmt.Sprintf("decode stats: %v", err), 0, 0)
		return
	}
	if st.PartitionCount != 0 && (st.PartitionCount != len(g.parts) || st.PartitionID != p.id) {
		msg := fmt.Sprintf(
			"topology mismatch: daemon declares partition %d of %d, table assigns %d of %d",
			st.PartitionID, st.PartitionCount, p.id, len(g.parts))
		// A mismatched daemon stays mismatched for as long as it runs:
		// record the event once per distinct message, not once per probe.
		if msg != p.lastError() {
			flightrec.Default.Record(flightrec.EvTopologyMismatch,
				flightrec.KV("partition", p.id),
				flightrec.KV("declared_id", st.PartitionID),
				flightrec.KV("declared_count", st.PartitionCount),
				flightrec.KV("assigned_id", p.id),
				flightrec.KV("assigned_count", len(g.parts)),
			)
		}
		p.setHealth(ctx, false, msg, 0, 0)
		return
	}
	p.setHealth(ctx, true, "", st.Epoch, st.Clock)
}

// partStatus is one partition's row in /stats and /healthz.
type partStatus struct {
	ID      int    `json:"id"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Epoch   int64  `json:"epoch"`
	Clock   int64  `json:"clock"`
	Error   string `json:"error,omitempty"`
}

func (g *Gateway) status() []partStatus {
	out := make([]partStatus, len(g.parts))
	for i, p := range g.parts {
		p.mu.Lock()
		out[i] = partStatus{
			ID: p.id, URL: p.url,
			Healthy: p.checked && p.healthy,
			Epoch:   p.epoch, Clock: p.clock,
			Error: p.lastErr,
		}
		if !p.checked && p.lastErr == "" {
			out[i].Error = "not probed yet"
		}
		p.mu.Unlock()
	}
	return out
}

// handleHealthz reports fleet health: 503 when any partition is down,
// fails its topology check, or lags the fleet's epoch by more than one
// (transient skew of one epoch is an in-flight tick barrier). The body
// carries a stable machine-readable `reason` token so operators can
// distinguish degraded causes without parsing prose; `?verbose=1` adds a
// per-component breakdown (topology, slo).
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sts := g.status()
	var degraded []string
	var maxEpoch int64
	topologyMismatch, unhealthy, lagging := false, false, false
	for _, st := range sts {
		if st.Healthy && st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
	}
	for _, st := range sts {
		switch {
		case !st.Healthy:
			unhealthy = true
			if strings.Contains(st.Error, "topology mismatch") {
				topologyMismatch = true
			}
			degraded = append(degraded, fmt.Sprintf("partition %d: %s", st.ID, st.Error))
		case maxEpoch-st.Epoch > 1:
			lagging = true
			degraded = append(degraded, fmt.Sprintf(
				"partition %d lagging: epoch %d while the fleet reached %d", st.ID, st.Epoch, maxEpoch))
		}
	}
	// Stable reason tokens, most specific first: a mismatched partition
	// is also unhealthy, but the mismatch is the actionable cause.
	reason := ""
	switch {
	case topologyMismatch:
		reason = "topology_mismatch"
	case unhealthy:
		reason = "partition_unhealthy"
	case lagging:
		reason = "partition_lagging"
	}
	status, code := "ok", http.StatusOK
	if len(degraded) > 0 {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	g.recordHealthTransition(r.Context(), status, reason)
	body := map[string]any{
		"status":     status,
		"partitions": sts,
	}
	if reason != "" {
		body["reason"] = reason
		body["error"] = strings.Join(degraded, "; ")
	}
	if r.URL.Query().Get("verbose") == "1" {
		topoStatus := "ok"
		if len(degraded) > 0 {
			topoStatus = "degraded"
		}
		slo := g.slo.Status()
		sloStatus := "ok"
		if slo.Max() >= sloDegradedBurn {
			sloStatus = "degraded"
		}
		body["components"] = map[string]any{
			"topology": map[string]any{
				"status":     topoStatus,
				"partitions": len(sts),
				"max_epoch":  maxEpoch,
			},
			"slo": map[string]any{
				"status": sloStatus,
				"burn":   slo,
			},
		}
	}
	writeJSON(w, code, body)
}

// recordHealthTransition emits one gateway-level health_transition event
// per state change. /healthz is polled constantly; repeats are not news.
func (g *Gateway) recordHealthTransition(ctx context.Context, status, reason string) {
	g.healthMu.Lock()
	prev := g.lastHealth
	g.lastHealth = status
	g.healthMu.Unlock()
	if prev == status {
		return
	}
	if prev == "" {
		prev = "unknown"
	}
	attrs := []flightrec.Attr{
		flightrec.KV("component", "gateway"),
		flightrec.KV("from", prev),
		flightrec.KV("to", status),
	}
	if reason != "" {
		attrs = append(attrs, flightrec.KV("reason", reason))
	}
	flightrec.Default.RecordCtx(ctx, flightrec.EvHealthTransition, attrs...)
}

// handleStats aggregates the fleet's counters: sums for the additive
// counters, the shared epoch/clock, and the per-partition status rows.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	type counters struct {
		Observations int   `json:"observations"`
		Reports      int   `json:"reports"`
		Responses    int   `json:"responses"`
		PathsCreated int   `json:"paths_created"`
		PathsExpired int   `json:"paths_expired"`
		Crossings    int   `json:"crossings"`
		IndexSize    int   `json:"index_size"`
		Epoch        int   `json:"epoch"`
		Clock        int64 `json:"clock"`
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		sum  counters
		errs []partError
	)
	for _, p := range g.parts {
		wg.Add(1)
		go func(p *part) {
			defer wg.Done()
			var c counters
			resp, err := g.do(r.Context(), p, http.MethodGet, "/stats", nil)
			if err == nil {
				if resp.StatusCode != http.StatusOK {
					err = readError(resp)
				} else {
					err = json.NewDecoder(resp.Body).Decode(&c)
					resp.Body.Close()
				}
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, partError{id: p.id, err: err})
				return
			}
			sum.Observations += c.Observations
			sum.Reports += c.Reports
			sum.Responses += c.Responses
			sum.PathsCreated += c.PathsCreated
			sum.PathsExpired += c.PathsExpired
			sum.Crossings += c.Crossings
			sum.IndexSize += c.IndexSize
			if c.Epoch > sum.Epoch {
				sum.Epoch = c.Epoch
			}
			if c.Clock > sum.Clock {
				sum.Clock = c.Clock
			}
		}(p)
	}
	wg.Wait()
	sort.Slice(errs, func(i, j int) bool { return errs[i].id < errs[j].id })
	if len(errs) == len(g.parts) {
		// No partition answered: all-zero sums would be a lie. Fail hard,
		// matching the merged read endpoints.
		httpError(w, http.StatusBadGateway, errors.Join(asErrs(errs)...))
		return
	}
	resp := map[string]any{
		"gateway":         true,
		"partition_count": len(g.parts),
		"table_version":   g.cfg.Table.Version,
		"uptime_seconds":  int(time.Since(g.start).Seconds()),
		// Sums over the fleet. index_size double-counts a corridor that
		// straddles partitions (each owner stores it); the merged read
		// path dedupes by id, this probe does not fan in path sets.
		"observations":  sum.Observations,
		"reports":       sum.Reports,
		"responses":     sum.Responses,
		"paths_created": sum.PathsCreated,
		"paths_expired": sum.PathsExpired,
		"crossings":     sum.Crossings,
		"index_size":    sum.IndexSize,
		"epoch":         sum.Epoch,
		"clock":         sum.Clock,
		"partitions":    g.status(),
	}
	status := http.StatusOK
	if len(errs) > 0 {
		resp["error"] = errors.Join(asErrs(errs)...).Error()
		status = writePartial(r.Context(), w, errs)
	}
	writeJSON(w, status, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}

package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"hotpaths/internal/flightrec"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// fsyncStallThreshold is the group-commit fsync duration past which a
// wal_fsync_stall event is recorded: an order of magnitude over the
// default commit cadence, long enough to back up appenders.
const fsyncStallThreshold = 250 * time.Millisecond

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"
	lsnDigits  = 20
)

// Options parameterises a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this size
	// (default 64 MiB).
	SegmentBytes int64

	// FsyncInterval is the group-commit cadence: appended records are
	// flushed and fsynced together every interval (default 25ms). Negative
	// disables the ticker; the caller then controls durability via Sync.
	// An acknowledged append is durable only after the next commit.
	FsyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FsyncInterval == 0 {
		o.FsyncInterval = 25 * time.Millisecond
	}
	return o
}

// Stats are a log's lifetime counters (since Open).
type Stats struct {
	Records   uint64 // records appended in this process (not counting preexisting)
	NextLSN   uint64 // LSN the next appended record will get
	Segments  int    // live segment files
	Bytes     int64  // bytes across live segment files
	Syncs     uint64 // fsync batches issued
	Truncated int64  // torn-tail bytes discarded by Open
}

// Log is an append-only segmented record log opened for writing. Append
// and Sync are safe for concurrent use; the group-commit goroutine runs
// until Close.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	segStart uint64 // LSN of the active segment's first record
	segSize  int64  // bytes in the active segment (including buffered)
	nextLSN  uint64
	dirty    bool // buffered or written bytes not yet fsynced
	closed   bool
	scratch  []byte
	pending  uint64 // records appended since the last commit

	stats   Stats
	stop    chan struct{}
	done    chan struct{}
	lock    *os.File // flock'd wal.lock, held for the log's lifetime
	syncErr error    // first background sync failure, surfaced on next op
}

// lockDir takes an exclusive advisory lock on dir/wal.lock. Two processes
// appending to the same journal would interleave and tear each other's
// frames, so a second Open must fail cleanly instead. The flock dies with
// the process, so a crash never leaves a stale lock behind.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "wal.lock"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s is in use by another process: %w", dir, err)
	}
	return f, nil
}

func segName(start uint64) string {
	return fmt.Sprintf("%s%0*d%s", segPrefix, lsnDigits, start, segSuffix)
}

func ckptName(lsn uint64) string {
	return fmt.Sprintf("%s%0*d%s", ckptPrefix, lsnDigits, lsn, ckptSuffix)
}

func parseLSN(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// segments lists the directory's segment files sorted by start LSN.
func segments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var starts []uint64
	for _, e := range entries {
		if start, ok := parseLSN(e.Name(), segPrefix, segSuffix); ok {
			starts = append(starts, start)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// scanSegment walks one segment file, calling fn (which may be nil) for
// each valid record, and returns the record count and the byte offset just
// past the last valid record.
func scanSegment(path string, start uint64, fn func(lsn uint64, r Record) error) (n uint64, validEnd int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	off := 0
	for off < len(b) {
		r, consumed, derr := DecodeRecord(b[off:])
		if derr != nil {
			break // torn or corrupt tail: the valid prefix ends here
		}
		if fn != nil {
			if err := fn(start+n, r); err != nil {
				return n, int64(off), err
			}
		}
		off += consumed
		n++
	}
	return n, int64(off), nil
}

// Open opens dir (creating it if needed) for appending. Existing segments
// are scanned to find the end of the log; a torn or corrupt tail in the
// LAST segment — the only kind of damage a crash can produce — is
// truncated away. Corruption in an earlier segment is reported as an
// error, since a crash cannot cause it.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	starts, err := segments(dir)
	if err != nil {
		lock.Close()
		return nil, err
	}
	l := &Log{
		dir:  dir,
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
		lock: lock,
	}
	opened := false
	defer func() {
		if !opened {
			lock.Close() // releases the flock on every error path
		}
	}()

	// Establish the end of the existing log. Sealed segments' record
	// counts are implied by the next segment's start LSN (ReadFrom
	// re-verifies that when it replays them); only the last segment — the
	// only one a crash can tear — needs a full CRC scan, so Open's I/O is
	// one segment, not the whole log.
	for i, start := range starts {
		if i+1 < len(starts) {
			if starts[i+1] <= start {
				return nil, fmt.Errorf("wal: segments at LSN %d and %d overlap", start, starts[i+1])
			}
			continue
		}
		path := filepath.Join(dir, segName(start))
		n, validEnd, err := scanSegment(path, start, nil)
		if err != nil {
			return nil, fmt.Errorf("wal: scan %s: %w", path, err)
		}
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		if validEnd < info.Size() {
			if err := os.Truncate(path, validEnd); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
			l.stats.Truncated = info.Size() - validEnd
		}
		l.nextLSN = start + n
		l.segStart = start
		l.segSize = validEnd
	}

	if len(starts) == 0 {
		if err := l.openSegmentLocked(0); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(filepath.Join(dir, segName(l.segStart)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.f = f
		l.w = bufio.NewWriterSize(f, 1<<16)
	}

	opened = true
	go l.commitLoop()
	return l, nil
}

// openSegmentLocked starts a fresh segment whose first record is LSN
// start. The directory entry is fsynced: otherwise a crash could drop the
// whole file even after group commits fsynced its contents, losing
// records that were acknowledged as durable.
func (l *Log) openSegmentLocked(start uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(start)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.segStart = start
	l.segSize = 0
	return nil
}

// syncDir fsyncs a directory so renames, creations and deletions inside it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// commitLoop is the group-commit ticker: flush + fsync every interval.
func (l *Log) commitLoop() {
	defer close(l.done)
	if l.opts.FsyncInterval < 0 {
		<-l.stop
		return
	}
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if err := l.syncLocked(); err != nil && l.syncErr == nil {
				l.syncErr = err
			}
			l.mu.Unlock()
		}
	}
}

// syncLocked flushes the buffer and fsyncs the active segment if anything
// was appended since the last commit.
func (l *Log) syncLocked() error {
	if l.closed || !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	d := time.Since(t0)
	mFsync.Observe(d.Seconds())
	if d >= fsyncStallThreshold {
		flightrec.Default.Record(flightrec.EvWALFsyncStall,
			flightrec.KV("duration_ms", d.Milliseconds()),
			flightrec.KV("pending_records", l.pending))
	}
	mCommitBatch.Observe(float64(l.pending))
	l.pending = 0
	l.dirty = false
	l.stats.Syncs++
	return nil
}

// Append journals one record. It buffers in memory and returns once the
// record is in the log's write buffer; durability follows at the next
// group commit (or Sync). The returned LSN identifies the record's
// position in the stream.
func (l *Log) Append(r Record) (uint64, error) {
	t0 := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn, err := l.appendLocked(r)
	if err == nil {
		mAppend.ObserveSince(t0)
	}
	return lsn, err
}

// AppendBatch journals records under one lock acquisition — the fast
// path for batched ingestion (records may straddle a segment rotation).
// An I/O failure mid-batch poisons the log, so a partially journaled
// batch can never be silently followed by more records. It returns the
// LSN of the first record.
func (l *Log) AppendBatch(recs []Record) (uint64, error) {
	t0 := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	first := l.nextLSN
	for _, r := range recs {
		if _, err := l.appendLocked(r); err != nil {
			return first, err
		}
	}
	mAppend.ObserveSince(t0)
	return first, nil
}

// guardLocked rejects appends on a closed or poisoned log.
func (l *Log) guardLocked() error {
	if l.closed {
		return ErrClosed
	}
	return l.syncErr
}

func (l *Log) appendLocked(r Record) (uint64, error) {
	if err := l.guardLocked(); err != nil {
		return 0, err
	}
	var err error
	l.scratch, err = AppendRecord(l.scratch[:0], r)
	if err != nil {
		return 0, err
	}
	if err := l.writeLocked(l.scratch); err != nil {
		return 0, err
	}
	lsn := l.nextLSN
	l.nextLSN++
	l.stats.Records++
	l.pending++
	mRecords.Inc()
	return lsn, nil
}

// writeLocked rotates if needed and buffers one encoded frame (or batch of
// frames). An I/O failure here poisons the log: the buffer may hold a
// partially-written unit, so every later append and sync fails too rather
// than journaling records after a hole. Recovery still works — whatever
// prefix reached disk is CRC-framed and replays cleanly.
func (l *Log) writeLocked(frames []byte) error {
	if l.segSize > 0 && l.segSize+int64(len(frames)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.poisonLocked(err)
			return err
		}
	}
	if _, err := l.w.Write(frames); err != nil {
		l.poisonLocked(err)
		return err
	}
	l.segSize += int64(len(frames))
	l.dirty = true
	return nil
}

func (l *Log) poisonLocked(err error) {
	if l.syncErr == nil {
		l.syncErr = fmt.Errorf("wal: log failed, restart to recover: %w", err)
		// First failure only: the flip from healthy to poisoned is the
		// event; repeated rejections afterwards are not.
		flightrec.Default.Record(flightrec.EvWALPoisoned,
			flightrec.KV("error", err.Error()),
			flightrec.KV("next_lsn", l.nextLSN))
	}
}

// rotateLocked seals the active segment (flush + fsync + close) and opens
// a fresh one starting at the next LSN.
func (l *Log) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	d := time.Since(t0)
	mFsync.Observe(d.Seconds())
	if d >= fsyncStallThreshold {
		flightrec.Default.Record(flightrec.EvWALFsyncStall,
			flightrec.KV("duration_ms", d.Milliseconds()),
			flightrec.KV("pending_records", l.pending))
	}
	mCommitBatch.Observe(float64(l.pending))
	l.pending = 0
	l.dirty = false
	l.stats.Syncs++
	if err := l.f.Close(); err != nil {
		return err
	}
	mRotations.Inc()
	flightrec.Default.Record(flightrec.EvWALRotation,
		flightrec.KV("sealed_start_lsn", l.segStart),
		flightrec.KV("sealed_bytes", l.segSize),
		flightrec.KV("next_start_lsn", l.nextLSN))
	return l.openSegmentLocked(l.nextLSN)
}

// Sync forces a commit: everything appended so far becomes durable before
// it returns.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	return l.syncLocked()
}

// Err reports the log's poisoned state: the first unrecoverable I/O
// failure (from an append, a rotation, or a background group commit), or
// nil while the log is healthy. Once non-nil, every later Append and Sync
// fails with the same error; the process must restart and recover.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncErr
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Stats returns the log's counters plus the current on-disk footprint.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	st := l.stats
	st.NextLSN = l.nextLSN
	l.mu.Unlock()
	if starts, err := segments(l.dir); err == nil {
		st.Segments = len(starts)
		for _, s := range starts {
			if info, err := os.Stat(filepath.Join(l.dir, segName(s))); err == nil {
				st.Bytes += info.Size()
			}
		}
	}
	return st
}

// TruncateBefore deletes whole segments whose records all precede lsn,
// keeping the log replayable from lsn onward. It is called after a
// checkpoint at lsn becomes durable. The active segment is never deleted.
func (l *Log) TruncateBefore(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	starts, err := segments(l.dir)
	if err != nil {
		return err
	}
	var errs []error
	// A segment is safe to delete when the NEXT segment starts at or
	// before lsn (then every record in it has LSN < lsn).
	for i := 0; i+1 < len(starts); i++ {
		if starts[i+1] > lsn || starts[i] == l.segStart {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segName(starts[i]))); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ResetTo fast-forwards the append position to lsn when a checkpoint is
// newer than the log's decodable end (e.g. segments were removed by
// hand): appending below the checkpoint's LSN would write records that
// recovery, which replays from the checkpoint, skips. Every existing
// segment is deleted — all of their records precede lsn, so the
// checkpoint covers them — and a fresh segment starts at lsn; leaving
// them in place would create an LSN gap that Open and ReadFrom rightly
// reject on the next start.
func (l *Log) ResetTo(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.guardLocked(); err != nil {
		return err
	}
	if lsn <= l.nextLSN {
		return nil
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	starts, err := segments(l.dir)
	if err != nil {
		return err
	}
	var errs []error
	for _, s := range starts {
		if err := os.Remove(filepath.Join(l.dir, segName(s))); err != nil {
			errs = append(errs, err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	l.dirty = false
	l.nextLSN = lsn
	return l.openSegmentLocked(lsn)
}

// Close commits outstanding records, stops the group-commit goroutine and
// closes the active segment. It is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	if err == nil {
		err = l.syncErr
	}
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if cerr := l.lock.Close(); err == nil { // releases the flock
		err = cerr
	}
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	return err
}

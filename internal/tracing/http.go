package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"time"
)

// Middleware wraps an HTTP handler with the per-request server span: a
// continuation of the caller's traceparent when one arrives, a fresh root
// otherwise. Stacks with the metrics middleware; on an unrecorded request
// the only cost is the sampling check in StartRequest. With a slow
// threshold configured, a request exceeding it is committed to the ring
// regardless of sampling and logged through slog with its trace ID.
func (t *Tracer) Middleware(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, span := t.StartRequest(r.Context(), route, r.Header.Get(Header))
		if span == nil {
			h(w, r)
			return
		}
		rec := &responseRecorder{ResponseWriter: w}
		h(rec, r.WithContext(ctx))
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		span.SetAttr("http.method", r.Method)
		span.SetAttr("http.status", status)
		dur := span.End()
		if slow := t.SlowThreshold(); slow > 0 && dur >= slow {
			slog.Warn("slow request",
				"route", route,
				"method", r.Method,
				"status", status,
				"duration", dur,
				"trace_id", span.TraceID().String(),
				"span_id", span.SpanID().String(),
			)
		}
	}
}

// responseRecorder captures the status code while forwarding the optional
// ResponseWriter interfaces (Flusher for SSE, Hijacker for connection
// takeover, ReaderFrom for sendfile) to the underlying writer when it
// supports them.
type responseRecorder struct {
	http.ResponseWriter
	status int
}

func (r *responseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *responseRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *responseRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *responseRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := r.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, fmt.Errorf("tracing: underlying ResponseWriter does not support hijacking")
}

func (r *responseRecorder) ReadFrom(src io.Reader) (int64, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	if rf, ok := r.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(src)
	}
	// Strip ReadFrom from the copy destination or io.Copy would recurse
	// right back into this method.
	return io.Copy(struct{ io.Writer }{r.ResponseWriter}, src)
}

// RegisterDebug mounts GET /debug/traces and GET /debug/traces/{id} on an
// admin mux, alongside /metrics and /debug/pprof.
func (t *Tracer) RegisterDebug(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/traces", t.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", t.handleTraceByID)
}

// traceSummaryJSON is one entry of the GET /debug/traces listing.
type traceSummaryJSON struct {
	TraceID    string  `json:"trace_id"`
	Service    string  `json:"service"`
	Root       string  `json:"root"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
	Sampled    bool    `json:"sampled"`
}

// spanJSON is one span of the GET /debug/traces/{id} detail.
type spanJSON struct {
	TraceID       string         `json:"trace_id"`
	SpanID        string         `json:"span_id"`
	ParentID      string         `json:"parent_id,omitempty"`
	Service       string         `json:"service"`
	Name          string         `json:"name"`
	StartUnixNano int64          `json:"start_unix_nano"`
	DurationUS    float64        `json:"duration_us"`
	Attrs         map[string]any `json:"attrs,omitempty"`
	Notes         []string       `json:"notes,omitempty"`
}

func (t *Tracer) handleTraces(w http.ResponseWriter, r *http.Request) {
	service := t.Service()
	traces := t.ring.snapshot()
	out := make([]traceSummaryJSON, 0, len(traces))
	for _, tr := range traces {
		tr.mu.Lock()
		entry := traceSummaryJSON{
			TraceID: tr.id.String(),
			Service: service,
			Spans:   len(tr.spans),
			Sampled: tr.sampled,
		}
		if len(tr.spans) > 0 {
			root := tr.spans[0]
			entry.Root = root.name
			entry.Start = root.start.UTC().Format(time.RFC3339Nano)
			if !root.end.IsZero() {
				entry.DurationMS = float64(root.end.Sub(root.start)) / float64(time.Millisecond)
			}
		}
		tr.mu.Unlock()
		out = append(out, entry)
	}
	writeJSON(w, out)
}

func (t *Tracer) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id, err := ParseTraceID(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A process can hold several committed span sets for one trace ID
	// (e.g. the /observe and /tick legs of one gateway write); the detail
	// view merges them into a single span list.
	traces := t.ring.byID(id)
	if len(traces) == 0 {
		http.Error(w, "trace not found", http.StatusNotFound)
		return
	}
	service := t.Service()
	var spans []spanJSON
	for _, tr := range traces {
		tr.mu.Lock()
		for _, s := range tr.spans {
			sj := spanJSON{
				TraceID:       tr.id.String(),
				SpanID:        s.id.String(),
				Service:       service,
				Name:          s.name,
				StartUnixNano: s.start.UnixNano(),
			}
			if !s.parent.IsZero() {
				sj.ParentID = s.parent.String()
			}
			if !s.end.IsZero() {
				sj.DurationUS = float64(s.end.Sub(s.start)) / float64(time.Microsecond)
			}
			if len(s.attrs) > 0 {
				sj.Attrs = make(map[string]any, len(s.attrs))
				for _, a := range s.attrs {
					sj.Attrs[a.Key] = a.Value
				}
			}
			if len(s.notes) > 0 {
				sj.Notes = append([]string(nil), s.notes...)
			}
			spans = append(spans, sj)
		}
		tr.mu.Unlock()
	}
	writeJSON(w, struct {
		TraceID string     `json:"trace_id"`
		Spans   []spanJSON `json:"spans"`
	}{id.String(), spans})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Package batchclock defines an analyzer that keeps observability at
// batch granularity on the hot paths.
//
// # Contract
//
// The ingest path meters work once per call, never once per record: a
// single time.Now() pair brackets the batch, one histogram observation
// records it, and one span covers it (PR 6/8 hold the whole
// observability layer to a +0.7% throughput overhead budget, which a
// per-record clock read or span allocation would blow by orders of
// magnitude on a 10k-record batch). Per-record counter *increments* are
// fine — they are a single add — and code outside the hot packages may
// do as it likes.
//
// The analyzer therefore flags, inside any for/range loop body in
// internal/engine, internal/wal and internal/gateway (non-test files):
//
//   - time.Now / time.Since calls
//   - Observe / ObserveSince on a metrics Histogram
//   - starting a tracing span
//
// Function literals inside a loop are not descended into: goroutines
// launched per shard or per upstream legitimately time their own work
// at that coarser granularity (the gateway's scatter loop does exactly
// this).
package batchclock

import (
	"go/ast"
	"strings"

	"hotpaths/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "batchclock",
	Doc:  "no time.Now, histogram Observe, span creation, or flight-recorder events inside per-record loops on hot paths",
	Run:  run,
}

// hotPackages are the import-path fragments that mark a package as a
// hot path. "/testdata/" keeps analyzer fixtures in scope.
var hotPackages = []string{
	"internal/engine",
	"internal/wal",
	"internal/gateway",
	"internal/flightrec",
	"/testdata/",
}

func inScope(pkgPath string) bool {
	for _, frag := range hotPackages {
		if strings.Contains(pkgPath, frag) {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if pass.Pkg == nil || !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // benchmarks and tests measure per-record on purpose
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			checkLoopBody(pass, body)
			return true // nested loops get their own (redundant but harmless) pass
		})
	}
	return nil
}

// checkLoopBody flags per-record metering anywhere in the loop body,
// except inside nested function literals.
func checkLoopBody(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch {
		case framework.IsPkgFunc(fn, "time", "Now") || framework.IsPkgFunc(fn, "time", "Since"):
			pass.Reportf(call.Pos(), "time.%s inside a loop on a hot path reads the clock per record; hoist it and time the whole batch once", fn.Name())
		case framework.IsMethodOf(fn, "metrics", "Histogram", "Observe") || framework.IsMethodOf(fn, "metrics", "Histogram", "ObserveSince"):
			pass.Reportf(call.Pos(), "histogram %s inside a loop on a hot path records per record; observe once per batch after the loop", fn.Name())
		case framework.IsSpanStart(pass.TypesInfo, call):
			pass.Reportf(call.Pos(), "starting a span inside a loop on a hot path allocates per record; one span must cover the whole batch")
		case framework.IsMethodOf(fn, "flightrec", "Recorder", "Record") || framework.IsMethodOf(fn, "flightrec", "Recorder", "RecordCtx"):
			pass.Reportf(call.Pos(), "flight-recorder %s inside a loop on a hot path emits an event per record; record one event per batch after the loop", fn.Name())
		}
		return true
	})
}

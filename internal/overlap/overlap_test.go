package overlap

import (
	"math/rand"
	"testing"

	"hotpaths/internal/geom"
)

func mustSet(t *testing.T, cell float64) *Set {
	t.Helper()
	s, err := NewSet(cell)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(0); err == nil {
		t.Error("cell=0 must error")
	}
	if _, err := NewSet(-1); err == nil {
		t.Error("negative cell must error")
	}
}

func TestAddIgnoresEmpty(t *testing.T) {
	s := mustSet(t, 10)
	s.Add(geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(0, 0)})
	if s.Len() != 0 {
		t.Error("empty rect must be ignored")
	}
	s.Add(geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(1, 1)})
	if s.Len() != 1 {
		t.Error("valid rect must be added")
	}
}

func TestStabCount(t *testing.T) {
	s := mustSet(t, 10)
	s.Add(geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)})
	s.Add(geom.Rect{Lo: geom.Pt(5, 5), Hi: geom.Pt(15, 15)})
	s.Add(geom.Rect{Lo: geom.Pt(100, 100), Hi: geom.Pt(110, 110)})
	cases := []struct {
		p    geom.Point
		want int
	}{
		{geom.Pt(2, 2), 1},
		{geom.Pt(7, 7), 2},
		{geom.Pt(12, 12), 1},
		{geom.Pt(50, 50), 0},
		{geom.Pt(105, 105), 1},
		{geom.Pt(5, 5), 2},   // boundary inclusive
		{geom.Pt(10, 10), 2}, // boundary inclusive
	}
	for _, c := range cases {
		if got := s.StabCount(c.p); got != c.want {
			t.Errorf("StabCount(%v) = %d want %d", c.p, got, c.want)
		}
	}
}

func TestDeepestWithinExample(t *testing.T) {
	// The paper's Example 2: three FSAs R1,R2,R3 with a common core R123.
	s := mustSet(t, 10)
	r1 := geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)}
	r2 := geom.Rect{Lo: geom.Pt(4, 4), Hi: geom.Pt(14, 14)}
	r3 := geom.Rect{Lo: geom.Pt(-2, 6), Hi: geom.Pt(8, 16)}
	s.Add(r1)
	s.Add(r2)
	s.Add(r3)
	// The triple intersection is [4,6]x[6,10] wait: x in [4, min(10,14,8)=8],
	// y in [6, min(10,14,16)=10] → [4,8]x[6,10].
	pt, depth := s.DeepestWithin(r1)
	if depth != 3 {
		t.Fatalf("depth = %d want 3 (point %v)", depth, pt)
	}
	core := geom.Rect{Lo: geom.Pt(4, 6), Hi: geom.Pt(8, 10)}
	if !core.Contains(pt) {
		t.Errorf("deepest point %v not in triple intersection %v", pt, core)
	}
	if !r1.Contains(pt) {
		t.Errorf("deepest point %v escapes the query rect", pt)
	}
}

func TestDeepestWithinNoCandidates(t *testing.T) {
	s := mustSet(t, 10)
	s.Add(geom.Rect{Lo: geom.Pt(100, 100), Hi: geom.Pt(110, 110)})
	q := geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)}
	pt, depth := s.DeepestWithin(q)
	if depth != 0 {
		t.Errorf("depth = %d want 0", depth)
	}
	if !pt.Eq(q.Centroid()) {
		t.Errorf("fallback point = %v want centroid", pt)
	}
	if _, d := s.DeepestWithin(geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(0, 0)}); d != 0 {
		t.Error("empty query rect must report 0")
	}
}

func TestDeepestWithinTouchingRects(t *testing.T) {
	// Rectangles touching along a line: the shared line has depth 2.
	s := mustSet(t, 10)
	s.Add(geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)})
	s.Add(geom.Rect{Lo: geom.Pt(10, 0), Hi: geom.Pt(20, 10)})
	q := geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(20, 10)}
	pt, depth := s.DeepestWithin(q)
	if depth != 2 {
		t.Fatalf("depth = %d want 2 (touching boundary), pt=%v", depth, pt)
	}
	if pt.X != 10 {
		t.Errorf("deepest point must sit on the shared line, got %v", pt)
	}
}

func TestDeepestRespectsQueryClip(t *testing.T) {
	// The deepest region globally lies outside the query rect; the answer
	// must be the deepest *within* the query.
	s := mustSet(t, 10)
	for i := 0; i < 5; i++ {
		s.Add(geom.Rect{Lo: geom.Pt(100, 100), Hi: geom.Pt(110, 110)})
	}
	s.Add(geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)})
	q := geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(20, 20)}
	pt, depth := s.DeepestWithin(q)
	if depth != 1 {
		t.Fatalf("depth = %d want 1", depth)
	}
	if !q.Contains(pt) {
		t.Errorf("point %v outside query", pt)
	}
}

// Property: DeepestWithin's depth matches the best stabbing count over a
// dense sample grid, and the returned point's own stab count equals the
// reported depth.
func TestDeepestWithinMatchesSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		s := mustSet(t, 8)
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			lo := geom.Pt(rng.Float64()*40, rng.Float64()*40)
			s.Add(geom.Rect{Lo: lo, Hi: lo.Add(geom.Pt(2+rng.Float64()*15, 2+rng.Float64()*15))})
		}
		qlo := geom.Pt(rng.Float64()*30, rng.Float64()*30)
		q := geom.Rect{Lo: qlo, Hi: qlo.Add(geom.Pt(5+rng.Float64()*20, 5+rng.Float64()*20))}
		pt, depth := s.DeepestWithin(q)
		if depth > 0 {
			if !q.Contains(pt) {
				t.Fatalf("trial %d: point %v outside query %v", trial, pt, q)
			}
			if got := s.StabCount(pt); got != depth {
				t.Fatalf("trial %d: stab(%v)=%d but reported depth %d", trial, pt, got, depth)
			}
		}
		// Sampled lower bound on the true maximum.
		best := 0
		const grid = 60
		for ix := 0; ix <= grid; ix++ {
			for iy := 0; iy <= grid; iy++ {
				p := geom.Pt(
					q.Lo.X+q.Width()*float64(ix)/grid,
					q.Lo.Y+q.Height()*float64(iy)/grid,
				)
				if c := s.StabCount(p); c > best {
					best = c
				}
			}
		}
		if depth < best {
			t.Fatalf("trial %d: reported depth %d < sampled depth %d", trial, depth, best)
		}
	}
}

func TestManyDisjointRectsFastPath(t *testing.T) {
	// The bucket structure must keep queries local: a large set of far-away
	// rectangles should not affect results near the origin.
	s := mustSet(t, 20)
	for i := 0; i < 10000; i++ {
		lo := geom.Pt(float64(1000+i*30), float64(1000+i*30))
		s.Add(geom.Rect{Lo: lo, Hi: lo.Add(geom.Pt(10, 10))})
	}
	s.Add(geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)})
	pt, depth := s.DeepestWithin(geom.Rect{Lo: geom.Pt(-5, -5), Hi: geom.Pt(15, 15)})
	if depth != 1 {
		t.Fatalf("depth = %d", depth)
	}
	if s.StabCount(pt) != 1 {
		t.Error("stab mismatch")
	}
}

// Emergency evacuation (the paper's second motivating scenario, Section 1):
// a fire breaks out in a rural area and residents flee their villages
// toward two exits. Authorities track phones and must identify the popular
// escape routes ON-LINE — every few minutes the current hottest paths are
// re-read from the sliding window, so assistance (ambulances, fire engines)
// is directed where people are actually moving NOW, not where they moved an
// hour ago.
//
// The fire spreads mid-simulation and cuts the northern route; the hot-path
// ranking visibly shifts to the southern exit as the window slides.
//
// Run with: go run ./examples/evacuation
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"hotpaths"
)

func main() {
	var (
		villageA = hotpaths.Pt(3000, 3000) // north village
		villageB = hotpaths.Pt(3200, 1000) // south village
		exitN    = hotpaths.Pt(6000, 3400) // northern highway junction
		exitS    = hotpaths.Pt(6200, 600)  // southern coastal road
	)

	sys, err := hotpaths.New(hotpaths.Config{
		Eps:    30,
		W:      120, // a short window: authorities care about the last "hour"
		Epoch:  10,
		K:      2,
		Bounds: hotpaths.Rect{Min: hotpaths.Pt(0, 0), Max: hotpaths.Pt(8000, 4000)},
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	const residents = 60
	type resident struct {
		id      int
		from    hotpaths.Point
		depart  int64
		jitter  float64
		northOK bool // originally preferred exit
	}
	var people []resident
	for i := 0; i < residents; i++ {
		from := villageA
		if i%2 == 1 {
			from = villageB
		}
		people = append(people, resident{
			id:      i,
			from:    from,
			depart:  int64(rng.Intn(80)),
			jitter:  rng.Float64()*40 - 20,
			northOK: from == villageA, // northerners prefer the north exit
		})
	}

	const speed = 16.0
	const fireCutsNorth = int64(200) // the northern route becomes impassable

	report := func(now int64) {
		top := sys.TopK()
		fmt.Printf("t=%3d | ", now)
		if len(top) == 0 {
			fmt.Println("no hot escape routes in window")
			return
		}
		for i, hp := range top {
			dirN := math.Abs(hp.End.Y-exitN.Y) < math.Abs(hp.End.Y-exitS.Y)
			name := "south"
			if dirN {
				name = "north"
			}
			if i > 0 {
				fmt.Print(" ; ")
			}
			fmt.Printf("#%d %s route (%.0f,%.0f)->(%.0f,%.0f) hotness=%d",
				i+1, name, hp.Start.X, hp.Start.Y, hp.End.X, hp.End.Y, hp.Hotness)
		}
		fmt.Println()
	}

	for now := int64(1); now <= 400; now++ {
		for _, p := range people {
			step := now - p.depart
			if step < 1 {
				continue
			}
			target := exitS
			if p.northOK && now < fireCutsNorth {
				target = exitN
			}
			dx, dy := target.X-p.from.X, target.Y-p.from.Y
			total := math.Hypot(dx, dy)
			done := float64(step) * speed
			if done >= total+30*speed {
				continue // long safe; phone stops mattering
			}
			if done > total {
				done = total // waiting at the exit — the stop flushes the route
			}
			frac := done / total
			px, py := -dy/total, dx/total
			x := p.from.X + dx*frac + px*p.jitter + rng.Float64()*6 - 3
			y := p.from.Y + dy*frac + py*p.jitter + rng.Float64()*6 - 3
			if err := sys.Observe(p.id, x, y, now); err != nil {
				log.Fatal(err)
			}
		}
		if err := sys.Tick(now); err != nil {
			log.Fatal(err)
		}
		if now%50 == 0 {
			report(now)
		}
	}

	fmt.Println("\nfinal hot escape routes:")
	for i, hp := range sys.TopK() {
		fmt.Printf("%d. (%.0f,%.0f) -> (%.0f,%.0f)  hotness=%d  length=%.0fm\n",
			i+1, hp.Start.X, hp.Start.Y, hp.End.X, hp.End.Y, hp.Hotness, hp.Length())
	}
	st := sys.Stats()
	fmt.Printf("\n%d observations compressed into %d reports; %d paths expired from the window\n",
		st.Observations, st.Reports, st.PathsExpired)
}

// Package wal implements the durability substrate behind
// hotpaths.OpenDurable: a segment-based append-only write-ahead log of
// Observe/Tick records, plus checkpoint files that bound recovery cost.
//
// # Log layout
//
// A log directory holds numbered segment files
//
//	wal-00000000000000000000.seg
//	wal-00000000000000002481.seg
//	...
//
// where the number is the LSN (log sequence number — the zero-based index
// in the whole record stream) of the segment's first record. Appends go to
// the highest-numbered segment; when it exceeds the configured size the
// log rotates to a fresh segment. Checkpoints are separate files
// (ckpt-<LSN>.ckpt) holding an opaque payload — the serialized engine
// state as of just before record LSN — and once a checkpoint is durable,
// every segment whose records all precede it can be deleted.
//
// # Record framing
//
// Each record is framed as
//
//	uint32 LE  payload length
//	uint32 LE  CRC-32C (Castagnoli) of the payload
//	payload    (kind byte + fixed-width LE fields)
//
// so a torn write at the tail — a crash mid-record — is detected by a
// short frame or a CRC mismatch and cleanly truncated on reopen. The
// decoder never trusts the length field beyond MaxPayload and never reads
// past the buffer it was given, which FuzzWALDecode locks in.
//
// # Durability model
//
// Append buffers in memory; a group-commit ticker flushes and fsyncs every
// FsyncInterval. An acknowledged append is therefore durable only after
// the next group commit — a crash can lose at most the last interval's
// records, and recovery replays the longest decodable prefix, which the
// deterministic engine turns into the exact state that prefix produced.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// Kind discriminates record payloads.
type Kind uint8

const (
	// KindObserve journals one Observe/ObserveNoisy call.
	KindObserve Kind = 1
	// KindTick journals one Tick call.
	KindTick Kind = 2
	// KindHeartbeat is a replication control frame: it never appears in a
	// journal on disk, but the log-shipping stream interleaves heartbeats
	// with the data records so a follower learns the primary's position
	// (NextLSN/Epoch/T) even while no records flow. Heartbeats share the
	// record framing so one decoder reads the whole stream; repliers must
	// skip them when applying (they carry no state change and no LSN).
	KindHeartbeat Kind = 3
)

// Record is one journaled engine input, or a replication control frame.
// KindObserve uses ObjectID/T/X/Y/SigmaX/SigmaY (sigmas zero for exact
// measurements); KindTick uses only T (the clock passed to Tick);
// KindHeartbeat uses NextLSN, Epoch and T (the primary's log position,
// epoch sequence and clock).
type Record struct {
	Kind     Kind
	ObjectID int64
	T        int64
	X, Y     float64
	SigmaX   float64
	SigmaY   float64

	// NextLSN and Epoch are meaningful only on KindHeartbeat frames.
	NextLSN uint64
	Epoch   int64
}

const (
	frameHeader = 8 // uint32 length + uint32 crc

	observePayload   = 1 + 6*8
	tickPayload      = 1 + 8
	heartbeatPayload = 1 + 3*8

	// MaxPayload bounds the length field a decoder will trust, so corrupt
	// input cannot trigger huge allocations or over-reads.
	MaxPayload = 64
)

// MaxFrame is the largest encoded record size, used to size buffers.
const MaxFrame = frameHeader + MaxPayload

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord encodes r framed into dst and returns the extended slice.
func AppendRecord(dst []byte, r Record) ([]byte, error) {
	var payload [observePayload]byte
	var n int
	switch r.Kind {
	case KindObserve:
		payload[0] = byte(KindObserve)
		binary.LittleEndian.PutUint64(payload[1:], uint64(r.ObjectID))
		binary.LittleEndian.PutUint64(payload[9:], uint64(r.T))
		binary.LittleEndian.PutUint64(payload[17:], floatBits(r.X))
		binary.LittleEndian.PutUint64(payload[25:], floatBits(r.Y))
		binary.LittleEndian.PutUint64(payload[33:], floatBits(r.SigmaX))
		binary.LittleEndian.PutUint64(payload[41:], floatBits(r.SigmaY))
		n = observePayload
	case KindTick:
		payload[0] = byte(KindTick)
		binary.LittleEndian.PutUint64(payload[1:], uint64(r.T))
		n = tickPayload
	case KindHeartbeat:
		payload[0] = byte(KindHeartbeat)
		binary.LittleEndian.PutUint64(payload[1:], r.NextLSN)
		binary.LittleEndian.PutUint64(payload[9:], uint64(r.Epoch))
		binary.LittleEndian.PutUint64(payload[17:], uint64(r.T))
		n = heartbeatPayload
	default:
		return dst, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload[:n], castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload[:n]...), nil
}

// DecodeRecord decodes the first framed record in b. It returns the record
// and the number of bytes consumed, or an error when b does not start with
// a complete, checksummed, well-formed record. It never reads past b and
// never allocates proportionally to corrupt length fields.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, fmt.Errorf("wal: short frame header: %d bytes", len(b))
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n == 0 || n > MaxPayload {
		return Record{}, 0, fmt.Errorf("wal: implausible payload length %d", n)
	}
	if len(b) < frameHeader+int(n) {
		return Record{}, 0, fmt.Errorf("wal: truncated payload: have %d of %d bytes", len(b)-frameHeader, n)
	}
	payload := b[frameHeader : frameHeader+int(n)]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("wal: checksum mismatch: %08x != %08x", got, want)
	}
	var r Record
	switch Kind(payload[0]) {
	case KindObserve:
		if len(payload) != observePayload {
			return Record{}, 0, fmt.Errorf("wal: observe payload is %d bytes, want %d", len(payload), observePayload)
		}
		r = Record{
			Kind:     KindObserve,
			ObjectID: int64(binary.LittleEndian.Uint64(payload[1:])),
			T:        int64(binary.LittleEndian.Uint64(payload[9:])),
			X:        floatFrom(binary.LittleEndian.Uint64(payload[17:])),
			Y:        floatFrom(binary.LittleEndian.Uint64(payload[25:])),
			SigmaX:   floatFrom(binary.LittleEndian.Uint64(payload[33:])),
			SigmaY:   floatFrom(binary.LittleEndian.Uint64(payload[41:])),
		}
	case KindTick:
		if len(payload) != tickPayload {
			return Record{}, 0, fmt.Errorf("wal: tick payload is %d bytes, want %d", len(payload), tickPayload)
		}
		r = Record{Kind: KindTick, T: int64(binary.LittleEndian.Uint64(payload[1:]))}
	case KindHeartbeat:
		if len(payload) != heartbeatPayload {
			return Record{}, 0, fmt.Errorf("wal: heartbeat payload is %d bytes, want %d", len(payload), heartbeatPayload)
		}
		r = Record{
			Kind:    KindHeartbeat,
			NextLSN: binary.LittleEndian.Uint64(payload[1:]),
			Epoch:   int64(binary.LittleEndian.Uint64(payload[9:])),
			T:       int64(binary.LittleEndian.Uint64(payload[17:])),
		}
	default:
		return Record{}, 0, fmt.Errorf("wal: unknown record kind %d", payload[0])
	}
	return r, frameHeader + int(n), nil
}

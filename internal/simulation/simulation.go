// Package simulation drives the complete distributed environment of the
// paper (Section 3.2): N moving objects, each running a RayTrace filter,
// stream noisy measurements; state messages travel to the coordinator and
// are answered at epoch boundaries (every Λ timestamps); the coordinator
// runs SinglePath, maintains the MotionPath index and the sliding hotness
// window, and reports the top-k hottest motion paths.
//
// The harness also runs the paper's DP benchmark (opening-window
// Douglas-Peucker + hot-segment store) on the same measurement stream when
// enabled, so every experiment reports both methods under identical input.
// Message and byte counts account the communication the distributed setting
// would incur; the naive upload volume (every measurement shipped) is
// tracked alongside for the communication-savings ablation.
package simulation

import (
	"fmt"
	"time"

	"hotpaths/internal/coordinator"
	"hotpaths/internal/dp"
	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/roadnet"
	"hotpaths/internal/trajectory"
	"hotpaths/internal/workload"
)

// Config collects all experiment parameters; zero fields take the paper's
// defaults (Table 2) via ApplyDefaults.
type Config struct {
	Net *roadnet.Network // road network (required)

	N       int     // objects
	Eps     float64 // tolerance ε, metres
	Err     float64 // positional noise, metres
	Agility float64 // α
	Step    float64 // displacement s, metres
	// Model selects the movement realisation of α: workload.Bursty
	// (default; traffic lights at crossroads) or workload.IID (the paper's
	// literal per-timestamp coin flip). See the workload package.
	Model workload.MovementModel
	// StopProb is the red-light probability for the Bursty model.
	StopProb float64

	W        trajectory.Time // sliding window length, timestamps
	Epoch    trajectory.Time // epoch length Λ, timestamps
	Duration trajectory.Time // simulation length, timestamps
	K        int             // top-k

	Seed int64

	GridCols, GridRows int // coordinator grid resolution

	RunDP    bool      // run the DP benchmark alongside
	DPPolicy dp.Policy // opening-window policy for DP
}

// ApplyDefaults fills zero fields with the paper's Table 2 defaults.
func (c *Config) ApplyDefaults() {
	if c.N == 0 {
		c.N = 20000
	}
	if c.Eps == 0 {
		c.Eps = 10
	}
	if c.Err == 0 {
		c.Err = 1
	}
	if c.Agility == 0 {
		c.Agility = 0.1
	}
	if c.Step == 0 {
		c.Step = 10
	}
	if c.W == 0 {
		c.W = 100
	}
	if c.Epoch == 0 {
		c.Epoch = 10
	}
	if c.Duration == 0 {
		c.Duration = 250
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.GridCols == 0 {
		c.GridCols = 64
	}
	if c.GridRows == 0 {
		c.GridRows = 64
	}
}

// EpochStats are the per-epoch metrics the paper's evaluation plots.
type EpochStats struct {
	Epoch       int
	Now         trajectory.Time
	Reports     int           // state messages processed this epoch
	Responses   int           // responses sent
	IndexSize   int           // motion paths stored after processing
	TopKScore   float64       // avg hotness×length of the top-k set
	ProcTime    time.Duration // SinglePath processing time
	DPIndexSize int           // DP segments stored (if RunDP)
	DPTopKScore float64       // DP top-k score (if RunDP)
}

// Comm tallies communication volume.
type Comm struct {
	UpMessages   int // state messages objects→coordinator
	UpBytes      int64
	DownMessages int // responses coordinator→objects
	DownBytes    int64
	Measurements int   // total measurements taken (naive up-messages)
	NaiveUpBytes int64 // bytes the naive ship-everything scheme would use
}

// Result aggregates a complete run.
type Result struct {
	Config     Config
	PerEpoch   []EpochStats
	Comm       Comm
	TopK       []motion.HotPath // final top-k set
	AllPaths   []motion.HotPath // all live paths at the end
	DPTopK     []motion.HotPath
	DPAll      []motion.HotPath
	CoordStats coordinator.Stats

	// Averages per epoch (the paper's reported quantities).
	AvgIndexSize   float64
	AvgTopKScore   float64
	AvgProcTime    time.Duration
	AvgDPIndexSize float64
	AvgDPTopKScore float64
}

// measurementBytes is the naive per-measurement wire size: a point plus a
// timestamp.
const measurementBytes = 2*8 + 8

// Run executes the simulation and returns the collected metrics.
func Run(cfg Config) (*Result, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("simulation: Config.Net is required")
	}
	cfg.ApplyDefaults()

	world, err := workload.New(cfg.Net, workload.Config{
		N:        cfg.N,
		Agility:  cfg.Agility,
		Step:     cfg.Step,
		Err:      cfg.Err,
		Seed:     cfg.Seed,
		Model:    cfg.Model,
		StopProb: cfg.StopProb,
	})
	if err != nil {
		return nil, err
	}
	bounds := cfg.Net.Bounds().Expand(cfg.Eps * 2)
	coord, err := coordinator.New(coordinator.Config{
		Bounds: bounds,
		Cols:   cfg.GridCols,
		Rows:   cfg.GridRows,
		W:      cfg.W,
		Eps:    cfg.Eps,
	})
	if err != nil {
		return nil, err
	}

	filters := make([]*raytrace.Filter, cfg.N)
	var dpWins []*dp.OpeningWindow
	var dpStore *dp.HotSegments
	if cfg.RunDP {
		dpWins = make([]*dp.OpeningWindow, cfg.N)
		dpStore, err = dp.NewHotSegments(cfg.Eps, cfg.W)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Config: cfg}
	var pending []coordinator.Report

	enqueue := func(obj int, st raytrace.State) {
		pending = append(pending, coordinator.Report{ObjectID: obj, State: st})
		res.Comm.UpMessages++
		res.Comm.UpBytes += raytrace.StateBytes
	}

	for now := trajectory.Time(1); now <= cfg.Duration; now++ {
		for _, m := range world.Tick(now) {
			res.Comm.Measurements++
			res.Comm.NaiveUpBytes += measurementBytes
			// RayTrace pipeline.
			if f := filters[m.ObjectID]; f == nil {
				filters[m.ObjectID] = raytrace.New(m.TP, cfg.Eps)
			} else {
				st, report, err := f.Process(m.TP)
				if err != nil {
					return nil, fmt.Errorf("object %d at t=%d: %w", m.ObjectID, now, err)
				}
				if report {
					enqueue(m.ObjectID, st)
				}
			}
			// DP pipeline.
			if cfg.RunDP {
				if dpWins[m.ObjectID] == nil {
					dpWins[m.ObjectID], err = dp.NewOpeningWindow(cfg.Eps, cfg.DPPolicy)
					if err != nil {
						return nil, err
					}
				}
				ems, err := dpWins[m.ObjectID].Process(m.TP)
				if err != nil {
					return nil, fmt.Errorf("dp object %d at t=%d: %w", m.ObjectID, now, err)
				}
				for _, em := range ems {
					dpStore.Offer(em.Seg, em.Te)
				}
			}
		}

		// Slide the hotness windows every timestamp.
		coord.Advance(now)
		if cfg.RunDP {
			dpStore.Advance(now)
		}

		// Epoch boundary: the coordinator processes the batch and responds.
		if now%cfg.Epoch != 0 {
			continue
		}
		batch := pending
		pending = nil
		start := time.Now()
		resps, err := coord.ProcessEpoch(batch)
		procTime := time.Since(start)
		if err != nil {
			return nil, err
		}
		for _, r := range resps {
			res.Comm.DownMessages++
			res.Comm.DownBytes += raytrace.ResponseBytes
			st, report, err := filters[r.ObjectID].Respond(r.End)
			if err != nil {
				return nil, fmt.Errorf("respond to object %d: %w", r.ObjectID, err)
			}
			if report {
				// The replayed buffer violated the fresh SSA: this report
				// joins the next epoch's batch.
				enqueue(r.ObjectID, st)
			}
		}
		es := EpochStats{
			Epoch:     len(res.PerEpoch) + 1,
			Now:       now,
			Reports:   len(batch),
			Responses: len(resps),
			IndexSize: coord.IndexSize(),
			TopKScore: coord.Score(cfg.K),
			ProcTime:  procTime,
		}
		if cfg.RunDP {
			es.DPIndexSize = dpStore.IndexSize()
			es.DPTopKScore = dpStore.Score(cfg.K)
		}
		res.PerEpoch = append(res.PerEpoch, es)
	}

	res.TopK = coord.TopK(cfg.K)
	res.AllPaths = coord.AllPaths()
	res.CoordStats = coord.Stats()
	if cfg.RunDP {
		res.DPTopK = dpStore.TopK(cfg.K)
		res.DPAll = dpStore.TopK(0)
	}
	res.computeAverages()
	return res, nil
}

func (r *Result) computeAverages() {
	n := len(r.PerEpoch)
	if n == 0 {
		return
	}
	var size, score, dpSize, dpScore float64
	var proc time.Duration
	for _, e := range r.PerEpoch {
		size += float64(e.IndexSize)
		score += e.TopKScore
		proc += e.ProcTime
		dpSize += float64(e.DPIndexSize)
		dpScore += e.DPTopKScore
	}
	fn := float64(n)
	r.AvgIndexSize = size / fn
	r.AvgTopKScore = score / fn
	r.AvgProcTime = proc / time.Duration(n)
	r.AvgDPIndexSize = dpSize / fn
	r.AvgDPTopKScore = dpScore / fn
}

// CompressionRatio returns naive bytes divided by filtered up-bytes; higher
// is better. It returns 0 when nothing was sent.
func (r *Result) CompressionRatio() float64 {
	if r.Comm.UpBytes == 0 {
		return 0
	}
	return float64(r.Comm.NaiveUpBytes) / float64(r.Comm.UpBytes)
}

// VerifyTopKWithin checks a basic sanity invariant used in tests: every
// reported hot path has positive hotness and its endpoints lie within the
// expanded network bounds.
func (r *Result) VerifyTopKWithin(bounds geom.Rect) error {
	for _, hp := range r.TopK {
		if hp.Hotness <= 0 {
			return fmt.Errorf("path %d has non-positive hotness %d", hp.Path.ID, hp.Hotness)
		}
		if !bounds.Contains(hp.Path.S) || !bounds.Contains(hp.Path.E) {
			return fmt.Errorf("path %d endpoints outside bounds", hp.Path.ID)
		}
	}
	return nil
}

// Package deadreckon implements the classic dead-reckoning location update
// policy, used as an ablation baseline for RayTrace's communication
// suppression. The client shares its position and velocity with the server;
// both extrapolate linearly, and the client sends a fresh update only when
// its true position drifts more than the threshold away from the shared
// prediction.
//
// Dead reckoning suppresses updates about as well as RayTrace on smooth
// movement, but its updates carry no safe-area geometry: the server learns
// WHERE the object is, not WHICH motion path segment summarises the recent
// trip within a tolerance. It therefore cannot drive hot-path discovery
// with guarantees — which is exactly the gap RayTrace's state messages fill
// at a modest per-message byte premium.
package deadreckon

import (
	"fmt"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
)

// Update is the message sent to the server: an anchor position, a velocity
// estimate, and the anchor timestamp.
type Update struct {
	P geom.Point
	V geom.Point // metres per time unit
	T trajectory.Time
}

// UpdateBytes is the wire size: position + velocity + timestamp.
const UpdateBytes = 2*8 + 2*8 + 8

// Filter is the per-object dead-reckoning state. Not safe for concurrent
// use.
type Filter struct {
	eps     float64
	anchor  geom.Point
	vel     geom.Point
	anchorT trajectory.Time
	lastP   geom.Point
	lastT   trajectory.Time
	primed  bool
	sent    int
	seen    int
}

// New returns a filter with the given deviation threshold and initial
// observation; the initial observation counts as the first update (the
// server must be seeded).
func New(initial trajectory.TimePoint, eps float64) (*Filter, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("deadreckon: eps must be positive, got %v", eps)
	}
	return &Filter{
		eps:     eps,
		anchor:  initial.P,
		anchorT: initial.T,
		lastP:   initial.P,
		lastT:   initial.T,
		primed:  true,
		sent:    1,
	}, nil
}

// Predicted returns the server-side extrapolated position at time t.
func (f *Filter) Predicted(t trajectory.Time) geom.Point {
	dt := float64(t - f.anchorT)
	return f.anchor.Add(f.vel.Scale(dt))
}

// Process consumes one observation. It returns an update and true when the
// deviation from the shared prediction exceeds the threshold; the update
// re-anchors both sides with a fresh velocity estimate.
func (f *Filter) Process(tp trajectory.TimePoint) (Update, bool, error) {
	if !f.primed {
		return Update{}, false, fmt.Errorf("deadreckon: filter used before initialization")
	}
	if tp.T <= f.lastT {
		return Update{}, false, fmt.Errorf("deadreckon: non-increasing timestamp %d after %d", tp.T, f.lastT)
	}
	deviation := f.Predicted(tp.T).Dist(tp.P)
	// Velocity estimate from the last pair of observations.
	dt := float64(tp.T - f.lastT)
	vel := tp.P.Sub(f.lastP).Scale(1 / dt)
	f.lastP, f.lastT = tp.P, tp.T
	if deviation <= f.eps {
		f.seen++
		return Update{}, false, nil
	}
	f.anchor, f.anchorT, f.vel = tp.P, tp.T, vel
	f.sent++
	f.seen++
	return Update{P: tp.P, V: vel, T: tp.T}, true, nil
}

// Sent returns the number of updates transmitted (including the seed).
func (f *Filter) Sent() int { return f.sent }

// Seen returns the number of observations processed after the seed.
func (f *Filter) Seen() int { return f.seen }

package replication

import "hotpaths/internal/metrics"

// Primary-side stream instrumentation: what the replication feed ships to
// followers. The follower side (lag, reconnects, bootstraps) is measured
// where the applier lives, in the hotpaths package.
var (
	mStreamBytes = metrics.Default.Counter("hotpaths_replication_stream_bytes_total",
		"WAL frame bytes written to follower streams (heartbeats included).", nil)
	mStreamRecords = metrics.Default.Counter("hotpaths_replication_stream_records_total",
		"WAL records shipped to follower streams.", nil)
	mStreams = metrics.Default.Gauge("hotpaths_replication_streams",
		"Follower streams currently connected.", nil)
)

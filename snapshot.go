package hotpaths

import (
	"io"
	"sort"

	"hotpaths/internal/coordinator"
	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
)

// Source is the common surface of the package's deployments: the
// single-goroutine System, the concurrent sharded Engine, the journaled
// Durable, and the replicated Follower. Callers that ingest a stream and
// read results back — replay tools, network frontends, tests — can be
// written once against Source and handed any of them.
//
// The concurrency contract stays per-implementation: System must be driven
// from one goroutine; Engine accepts concurrent Observes. Snapshot is the
// read side — an immutable view the caller can query freely. A Follower
// implements only the read half: its write methods (Observe, Tick and the
// Observe variants) always return ErrReadOnly, because its state is
// replicated from a primary's journal — test with errors.Is rather than
// assuming every Source accepts writes.
type Source interface {
	// Observe feeds one location measurement for objectID at timestamp t.
	Observe(objectID int, x, y float64, t int64) error
	// Tick advances the clock; epochs fire when it crosses a multiple of
	// Config.Epoch.
	Tick(now int64) error
	// Snapshot captures an immutable view of the current hot paths,
	// counters and clock.
	Snapshot() Snapshot
	// Subscribe registers a standing query, re-evaluated at every epoch
	// boundary; the subscription receives one Delta per epoch.
	Subscribe(q Query) (*Subscription, error)
}

var (
	_ Source = (*System)(nil)
	_ Source = (*Engine)(nil)
)

// SortOrder selects how a Query orders its results.
type SortOrder int

const (
	// ByHotness orders hottest first (ties: longer path, then smaller id).
	// This is the canonical order of TopK and HotPaths.
	ByHotness SortOrder = iota
	// ByScore orders by the paper's quality metric hotness×length,
	// highest first (ties: hotter, then smaller id).
	ByScore
)

// Query is a composable selection over a Snapshot. The zero value selects
// every path in canonical (hottest-first) order; the builder methods
// narrow and shape it:
//
//	snap.Query(hotpaths.Query{}.
//		Region(viewport). // only paths ending inside the viewport
//		MinHotness(3).    // at least 3 crossings in the window
//		SortBy(hotpaths.ByScore).
//		K(20))            // top 20 of what remains
//
// Each method returns a modified copy, so queries can be built up and
// reused across snapshots.
type Query struct {
	region     Rect
	hasRegion  bool
	minHotness int
	k          int
	order      SortOrder
}

// Region restricts the query to paths whose end vertex lies inside r
// (inclusive). It is answered by a range scan over the snapshot's grid
// index, not a linear filter.
func (q Query) Region(r Rect) Query {
	q.region, q.hasRegion = r, true
	return q
}

// MinHotness restricts the query to paths with hotness ≥ n.
func (q Query) MinHotness(n int) Query {
	q.minHotness = n
	return q
}

// K caps the result at the n best paths under the query's sort order.
// n ≤ 0 (the default) returns all matches.
func (q Query) K(n int) Query {
	q.k = n
	return q
}

// SortBy sets the result order.
func (q Query) SortBy(o SortOrder) Query {
	q.order = o
	return q
}

// Snapshot is an immutable view of a System's or Engine's discovered hot
// paths at one instant: the paths with their hotness, the clock, and the
// lifetime counters, all captured at a single consistent point. It is safe
// to share across goroutines and to query repeatedly while ingestion
// continues on the live Source; two reads from the same Snapshot always
// agree, which two successive live accessor calls (which may straddle an
// epoch) do not guarantee.
//
// Taking a snapshot is O(paths); the grid index behind Region queries is
// built lazily on first use.
type Snapshot struct {
	snap  *coordinator.Snapshot
	clock int64
	stats Stats
	k     int
}

// Snapshot captures an immutable view of the system's current hot paths,
// counters and clock.
func (s *System) Snapshot() Snapshot {
	return Snapshot{snap: s.coord.Snapshot(), clock: s.lastNow, stats: s.Stats(), k: s.cfg.K}
}

// Snapshot captures an immutable view of the engine's hot paths, counters
// and clock, all read at one consistent point under the engine lock. It is
// safe to call concurrently with ingestion; the view reflects the last
// processed epoch.
func (e *Engine) Snapshot() Snapshot {
	snap, now, st := e.eng.Snapshot()
	return Snapshot{
		snap:  snap,
		clock: int64(now),
		stats: convertStats(st),
		k:     e.cfg.K,
	}
}

// Clock returns the timestamp of the last Tick before the snapshot was
// taken.
func (s Snapshot) Clock() int64 { return s.clock }

// Epoch returns the number of epochs the source had processed when the
// snapshot was taken. It is the sequence number subscription deltas carry,
// so a consumer can line a snapshot up against a delta stream.
func (s Snapshot) Epoch() int64 {
	if s.snap == nil {
		return 0
	}
	return int64(s.snap.Epoch)
}

// Stats returns the counters at the snapshot instant.
func (s Snapshot) Stats() Stats { return s.stats }

// Len returns the number of live paths in the snapshot.
func (s Snapshot) Len() int {
	if s.snap == nil {
		return 0
	}
	return len(s.snap.Paths)
}

// Query runs a selection over the snapshot and returns the matching paths
// in the query's order. The result is a fresh slice owned by the caller.
func (s Snapshot) Query(q Query) []HotPath {
	if s.snap == nil {
		return nil
	}
	var sel []motion.HotPath
	if q.hasRegion {
		sel = s.snap.Region(geom.Rect{
			Lo: geom.Pt(q.region.Min.X, q.region.Min.Y),
			Hi: geom.Pt(q.region.Max.X, q.region.Max.Y),
		})
	} else {
		sel = s.snap.Paths
	}
	if q.minHotness > 0 {
		// sel is in canonical order — hotness descending — so the matches
		// are exactly a prefix.
		cut := sort.Search(len(sel), func(i int) bool { return sel[i].Hotness < q.minHotness })
		sel = sel[:cut]
	}
	if q.order == ByHotness {
		// Canonical order already — the k best are a prefix, so cut
		// before materialising the public copies.
		if q.k > 0 && q.k < len(sel) {
			sel = sel[:q.k]
		}
		return convert(sel)
	}
	out := convert(sel)
	sortResults(out, q.order)
	if q.k > 0 && q.k < len(out) {
		out = out[:q.k]
	}
	return out
}

// TopK returns the Config.K hottest paths, hottest first.
func (s Snapshot) TopK() []HotPath { return s.Query(Query{}.K(s.k)) }

// HotPaths returns every path in the snapshot, hottest first.
func (s Snapshot) HotPaths() []HotPath { return s.Query(Query{}) }

// Score returns the paper's quality metric over the snapshot's top-k set:
// the average hotness×length.
func (s Snapshot) Score() float64 {
	if s.snap == nil {
		return 0
	}
	top := s.snap.Paths
	if s.k > 0 && s.k < len(top) {
		top = top[:s.k]
	}
	return motion.TopKScore(top)
}

// WriteGeoJSON writes the snapshot's paths as a GeoJSON FeatureCollection,
// hottest first, with id/rank/hotness/length/score properties.
func (s Snapshot) WriteGeoJSON(w io.Writer) error {
	return WriteGeoJSON(w, s.HotPaths())
}

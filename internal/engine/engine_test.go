package engine

import (
	"errors"
	"testing"

	"hotpaths/internal/coordinator"
	"hotpaths/internal/geom"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/trajectory"
)

func testCoordinator(t *testing.T) *coordinator.Coordinator {
	t.Helper()
	c, err := coordinator.New(coordinator.Config{
		Bounds: geom.Rect{Lo: geom.Pt(-5000, -5000), Hi: geom.Pt(5000, 5000)},
		W:      100,
		Eps:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fixedTol(_, _ float64) raytrace.ToleranceFunc { return raytrace.FixedTolerance(5) }

func testEngine(t *testing.T, shards int) *Engine {
	t.Helper()
	e, err := New(Config{
		Coord:     testCoordinator(t),
		Epoch:     10,
		Tolerance: fixedTol,
		Shards:    shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestNewValidation(t *testing.T) {
	coord := testCoordinator(t)
	bad := []Config{
		{Epoch: 10, Tolerance: fixedTol},               // no coordinator
		{Coord: coord, Tolerance: fixedTol},            // no epoch
		{Coord: coord, Epoch: -1, Tolerance: fixedTol}, // negative epoch
		{Coord: coord, Epoch: 10},                      // no tolerance factory
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config must be rejected", i)
		}
	}
	e, err := New(Config{Coord: coord, Epoch: 10, Tolerance: fixedTol})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Shards() <= 0 {
		t.Errorf("defaulted shard count = %d", e.Shards())
	}
}

func TestShardIndexStableAndInRange(t *testing.T) {
	e := testEngine(t, 8)
	for id := -100; id < 100; id++ {
		i := e.shardIndex(id)
		if i < 0 || i >= 8 {
			t.Fatalf("shardIndex(%d) = %d out of range", id, i)
		}
		if j := e.shardIndex(id); j != i {
			t.Fatalf("shardIndex(%d) unstable: %d then %d", id, i, j)
		}
	}
}

// The epoch-boundary barrier must drain every queued observation before
// Stats are read, making the counters exact.
func TestBarrierDrains(t *testing.T) {
	e := testEngine(t, 8)
	const n = 1000
	batch := make([]Observation, n)
	for i := range batch {
		batch[i] = Observation{ObjectID: i, P: geom.Pt(float64(i), 0), T: 1}
	}
	if err := e.ObserveBatch(batch); err != nil {
		t.Fatal(err)
	}
	for now := trajectory.Time(1); now <= 10; now++ {
		if err := e.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().Observations; got != n {
		t.Errorf("Observations = %d after barrier, want %d", got, n)
	}
}

// A per-observation processing error must surface from the next
// epoch-boundary Tick, naming the object — without suppressing the epoch
// for everyone else.
func TestProcessingErrorSurfaces(t *testing.T) {
	e := testEngine(t, 4)
	feed := []Observation{
		{ObjectID: 7, P: geom.Pt(0, 0), T: 5},
		{ObjectID: 7, P: geom.Pt(1, 1), T: 6},
		{ObjectID: 7, P: geom.Pt(2, 2), T: 6}, // repeated timestamp
	}
	if err := e.ObserveBatch(feed); err != nil {
		t.Fatal(err)
	}
	err := e.Tick(10)
	if err == nil {
		t.Fatal("Tick must surface the shard processing error")
	}
	// Typed classification (errstring contract): the object is carried
	// on *ObjectError, not fished out of the rendered message.
	var objErr *ObjectError
	if !errors.As(err, &objErr) || objErr.ObjectID != 7 {
		t.Errorf("error %q does not carry *ObjectError for object 7", err)
	}
	// The epoch itself still ran: one bad client must not stall hot-path
	// discovery for well-behaved objects.
	if got := e.Stats().Coordinator.Epochs; got != 1 {
		t.Errorf("Epochs = %d after erroring Tick, want 1", got)
	}
	// The error is consumed; the engine keeps working.
	if err := e.Tick(20); err != nil {
		t.Errorf("engine did not recover: %v", err)
	}
}

func TestTickMonotonic(t *testing.T) {
	e := testEngine(t, 2)
	if err := e.Tick(0); err == nil {
		t.Error("Tick(0) must error (clock starts at 0)")
	}
	if err := e.Tick(5); err != nil {
		t.Fatal(err)
	}
	if err := e.Tick(5); err == nil {
		t.Error("repeated Tick must error")
	}
	if err := e.Tick(3); err == nil {
		t.Error("backwards Tick must error")
	}
}

func TestCloseSemantics(t *testing.T) {
	e := testEngine(t, 4)
	if err := e.Observe(Observation{ObjectID: 1, P: geom.Pt(0, 0), T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("double Close must be a no-op, got %v", err)
	}
	if err := e.Observe(Observation{ObjectID: 1, P: geom.Pt(1, 1), T: 2}); err != ErrClosed {
		t.Errorf("Observe after Close = %v, want ErrClosed", err)
	}
	if err := e.Tick(10); err != ErrClosed {
		t.Errorf("Tick after Close = %v, want ErrClosed", err)
	}
	// Queries remain valid.
	if got := e.Stats().Observations; got != 1 {
		t.Errorf("Stats after Close: Observations = %d, want 1", got)
	}
	if paths := e.AllPaths(); paths == nil && len(paths) != 0 {
		t.Error("AllPaths after Close must not panic")
	}
}

package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"hotpaths/internal/geom"
)

// edge is an undirected lattice edge used during generation.
type edge struct{ a, b int }

// GenConfig parameterises the synthetic network generator.
type GenConfig struct {
	// GridCols, GridRows give the node lattice dimensions.
	GridCols, GridRows int
	// Size is the side length of the covered square, in metres.
	Size float64
	// Jitter perturbs node positions by ±Jitter×spacing.
	Jitter float64
	// TargetLinks prunes secondary links down to this total (0 = no prune).
	TargetLinks int
	// Seed makes generation deterministic.
	Seed int64
}

// AthensConfig returns the configuration matching the paper's network
// statistics: ~1125 nodes and ~1831 links over 250 km² (a 15.81 km square).
func AthensConfig(seed int64) GenConfig {
	return GenConfig{
		GridCols:    34,
		GridRows:    34,
		Size:        15810, // metres; 15.81² km² ≈ 250 km²
		Jitter:      0.25,
		TargetLinks: 1831,
		Seed:        seed,
	}
}

// GenerateAthens builds the synthetic greater-Athens stand-in network.
func GenerateAthens(seed int64) (*Network, error) {
	return Generate(AthensConfig(seed))
}

// Generate builds a synthetic urban network: a jittered lattice of
// secondary streets, overlaid with primary avenues every few rows/columns,
// a central highway cross, and a motorway ring plus two diagonals. Random
// secondary links are then pruned (preserving a spanning tree, so the
// network stays connected) until TargetLinks remain.
func Generate(cfg GenConfig) (*Network, error) {
	if cfg.GridCols < 3 || cfg.GridRows < 3 {
		return nil, fmt.Errorf("roadnet: grid must be at least 3x3, got %dx%d", cfg.GridCols, cfg.GridRows)
	}
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("roadnet: size must be positive, got %v", cfg.Size)
	}
	if cfg.Jitter < 0 || cfg.Jitter >= 0.5 {
		return nil, fmt.Errorf("roadnet: jitter must be in [0, 0.5), got %v", cfg.Jitter)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cols, rows := cfg.GridCols, cfg.GridRows

	// Nodes: a lattice warped toward the centre. Real urban networks are
	// dense downtown and sparse at the periphery; the warp gives central
	// links of ~100–200 m (where traffic concentrates and objects turn
	// often) and peripheral links of several hundred metres, while keeping
	// the configured overall extent. warp maps u∈[0,1] to [0,1] with a
	// small derivative at the centre.
	warp := func(u float64) float64 {
		v := 2*u - 1 // [-1,1]
		s := math.Abs(v)
		w := math.Pow(s, 1.5)
		if v < 0 {
			w = -w
		}
		return 0.5 + 0.5*w
	}
	at := func(c, r int) int { return r*cols + c }
	base := make([]geom.Point, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			base[at(c, r)] = geom.Pt(
				warp(float64(c)/float64(cols-1))*cfg.Size,
				warp(float64(r)/float64(rows-1))*cfg.Size,
			)
		}
	}
	// Jitter each node by a fraction of its local lattice spacing so dense
	// areas stay dense and links never cross their neighbours.
	nodes := make([]Node, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			local := math.Inf(1)
			p := base[at(c, r)]
			for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nc, nr := c+d[0], r+d[1]
				if nc < 0 || nc >= cols || nr < 0 || nr >= rows {
					continue
				}
				if dd := p.Dist(base[at(nc, nr)]); dd < local {
					local = dd
				}
			}
			jx := (rng.Float64()*2 - 1) * cfg.Jitter * local
			jy := (rng.Float64()*2 - 1) * cfg.Jitter * local
			nodes[at(c, r)] = Node{ID: at(c, r), P: p.Add(geom.Pt(jx, jy))}
		}
	}

	// Lattice links, initially all secondary.
	var edges []edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, edge{at(c, r), at(c+1, r)})
			}
			if r+1 < rows {
				edges = append(edges, edge{at(c, r), at(c, r+1)})
			}
		}
	}
	class := make(map[edge]Class, len(edges))
	for _, e := range edges {
		class[e] = Secondary
	}
	upgrade := func(a, b int, cl Class) {
		e := edge{a, b}
		if _, ok := class[e]; !ok {
			e = edge{b, a}
			if _, ok := class[e]; !ok {
				return
			}
		}
		if cl > class[e] {
			class[e] = cl
		}
	}

	// Primary avenues: every 5th row and column.
	for r := 2; r < rows; r += 5 {
		for c := 0; c+1 < cols; c++ {
			upgrade(at(c, r), at(c+1, r), Primary)
		}
	}
	for c := 2; c < cols; c += 5 {
		for r := 0; r+1 < rows; r++ {
			upgrade(at(c, r), at(c, r+1), Primary)
		}
	}
	// Highway cross through the centre.
	midR, midC := rows/2, cols/2
	for c := 0; c+1 < cols; c++ {
		upgrade(at(c, midR), at(c+1, midR), Highway)
	}
	for r := 0; r+1 < rows; r++ {
		upgrade(at(midC, r), at(midC, r+1), Highway)
	}
	// Motorway ring at ~70% radius plus the two diagonals.
	ringLo, ringHiC, ringHiR := 5, cols-6, rows-6
	for c := ringLo; c < ringHiC; c++ {
		upgrade(at(c, ringLo), at(c+1, ringLo), Motorway)
		upgrade(at(c, ringHiR), at(c+1, ringHiR), Motorway)
	}
	for r := ringLo; r < ringHiR; r++ {
		upgrade(at(ringLo, r), at(ringLo, r+1), Motorway)
		upgrade(at(ringHiC, r), at(ringHiC, r+1), Motorway)
	}
	// Diagonals (staircase pattern) as motorways feeding the ring.
	steps := int(math.Min(float64(cols), float64(rows))) - 1
	for i := 0; i < steps; i++ {
		if i+1 < cols && i+1 < rows {
			upgrade(at(i, i), at(i+1, i), Motorway)
			upgrade(at(i+1, i), at(i+1, i+1), Motorway)
		}
	}

	// Prune secondary links down to the target, preserving connectivity
	// with a union-find spanning structure over non-removable links first.
	if cfg.TargetLinks > 0 && cfg.TargetLinks < len(edges) {
		need := len(edges) - cfg.TargetLinks
		// Shuffle candidate secondary edges.
		var cand []edge
		for _, e := range edges {
			if class[e] == Secondary {
				cand = append(cand, e)
			}
		}
		rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		removed := make(map[edge]bool)
		for _, e := range cand {
			if need == 0 {
				break
			}
			removed[e] = true
			if stillConnected(len(nodes), edges, removed) {
				need--
			} else {
				delete(removed, e)
			}
		}
		if need > 0 {
			return nil, fmt.Errorf("roadnet: could not prune to %d links without disconnecting", cfg.TargetLinks)
		}
		var kept []edge
		for _, e := range edges {
			if !removed[e] {
				kept = append(kept, e)
			}
		}
		edges = kept
	}

	links := make([]Link, len(edges))
	for i, e := range edges {
		links[i] = Link{ID: i, From: e.a, To: e.b, Class: class[e]}
	}
	return Build(nodes, links)
}

// stillConnected checks connectivity of the lattice graph minus removed
// edges using union-find. It runs per candidate removal; the generator is
// an offline tool, so the O(E α(V)) per check is acceptable.
func stillConnected(nNodes int, edges []edge, removed map[edge]bool) bool {
	parent := make([]int, nNodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := nNodes
	for _, e := range edges {
		if removed[e] {
			continue
		}
		ra, rb := find(e.a), find(e.b)
		if ra != rb {
			parent[ra] = rb
			comps--
		}
	}
	return comps == 1
}

// Fixture for the metricname analyzer: Prometheus naming at every
// registration site, with kinds agreeing across sites.
package a

import "hotpaths/internal/metrics"

func register(r *metrics.Registry, dyn string) {
	// Allowed: the repo's naming contract.
	r.Counter("requests_total", "requests served", nil)
	r.Gauge("queue_depth", "entries currently queued", nil)
	r.Histogram("batch_latency_seconds", "batch latency", nil, nil)
	r.GaugeFunc("heap_bytes", "live heap size", nil, func() float64 { return 0 })

	r.Counter("requests", "dropped suffix", nil)  // want `counter "requests" must end in _total`
	r.Gauge("drops_total", "wrong suffix", nil)   // want `gauge "drops_total" must not end in _total`
	r.Histogram("latency", "no unit", nil, nil)   // want `histogram "latency" must end in a unit suffix`
	r.Counter("Bad-Name_total", "bad chars", nil) // want `does not match Prometheus naming`
	r.Counter(dyn, "dynamic name", nil)           // want `metric name must be a compile-time constant`
	r.Counter("empty_help_total", "", nil)        // want `needs a non-empty help string`

	// Kind disagreement panics the registry at runtime; caught here at
	// vet time instead. (The _total complaint rides along.)
	r.Counter("dual_total", "first site", nil)
	r.Gauge("dual_total", "second site", nil) // want `must not end in _total` `registered as gauge here but as counter`

	// Allowed: repeat registration with the same kind is the registry's
	// idempotent GetOrCreate contract.
	r.Counter("requests_total", "requests served", nil)

	// Allowed: the SLO burn-rate gauge family — derived ratios and
	// thresholds are gauges with unit suffixes, never counters.
	r.GaugeFunc("hotpaths_slo_availability_burn_ratio", "availability error-budget burn rate", metrics.Labels{"window": "fast"}, func() float64 { return 0 })
	r.GaugeFunc("hotpaths_slo_latency_burn_ratio", "latency error-budget burn rate", metrics.Labels{"window": "slow"}, func() float64 { return 0 })
	r.GaugeFunc("hotpaths_slo_latency_threshold_seconds", "latency SLO threshold", nil, func() float64 { return 0 })

	// A burn-rate gauge misnamed as a counter trips both contracts.
	r.Counter("hotpaths_slo_error_burn_ratio_total", "burn rate as a counter", nil)
	r.Gauge("hotpaths_slo_error_burn_ratio_total", "burn rate as a gauge", nil) // want `must not end in _total` `registered as gauge here but as counter`

	// Allowed: a reasoned suppression directive waives the finding.
	//hotpathsvet:ignore metricname legacy dashboard keys on this exact name; renaming is a breaking change tracked separately
	r.Counter("legacy_request_count", "requests served (legacy name)", nil)
}

package hotpaths

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hotpaths/internal/engine"
	"hotpaths/internal/flightrec"
	"hotpaths/internal/replication"
	"hotpaths/internal/tracing"
	"hotpaths/internal/wal"
)

// ErrReadOnly is returned by every write method of a Follower: replicated
// state flows one way, from the primary's write-ahead log, and a local
// write would fork the follower's state away from the stream it replays.
// Writes must go to the primary.
var ErrReadOnly = errors.New("hotpaths: follower is read-only; writes must go to the primary")

// ErrFollowerClosed is returned by operations on a closed Follower.
var ErrFollowerClosed = errors.New("hotpaths: follower closed")

// FollowerConfig parameterises OpenFollower. The pipeline configuration
// (Eps, W, Epoch, Bounds, ...) is NOT here: the follower adopts the
// primary's journal configuration, fetched from /wal/meta, because
// replaying the primary's record stream under different parameters would
// not reproduce its state.
type FollowerConfig struct {
	// Shards, Buffer are the local Engine's concurrency knobs (the
	// follower may shard differently from the primary — state is
	// deployment-agnostic).
	Shards, Buffer int

	// ConnectTimeout bounds the initial meta + checkpoint fetch (default
	// 10s). OpenFollower fails fast when the primary is unreachable;
	// after that, the applier reconnects forever.
	ConnectTimeout time.Duration

	// ReconnectMin, ReconnectMax bound the reconnect backoff after a
	// stream drops (defaults 100ms and 5s; the nominal delay doubles
	// between consecutive failures and resets on a healthy connection).
	// The actual delay is jittered within [nominal/2, nominal] so the
	// followers of a restarted primary spread their reconnects out
	// instead of stampeding it in lockstep waves.
	ReconnectMin, ReconnectMax time.Duration

	// StallTimeout is how long a live stream may go without any activity
	// (a record or a heartbeat — the primary heartbeats idle streams
	// every second) before the applier declares it hung, drops it, and
	// reconnects (default 10s). Without it, a SIGSTOPped primary or a
	// black-holed network path would leave the follower "connected" —
	// and its health probe green — while serving unboundedly stale data.
	StallTimeout time.Duration

	// HTTPClient overrides the client used for every primary request
	// (default: http.DefaultClient — streams rely on no overall timeout).
	HTTPClient *http.Client
}

func (cfg FollowerConfig) withDefaults() FollowerConfig {
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 10 * time.Second
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 100 * time.Millisecond
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 5 * time.Second
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 10 * time.Second
	}
	return cfg
}

// ReplicationStats reports a Follower's position relative to its primary.
type ReplicationStats struct {
	Primary   string // the primary's base URL
	Connected bool   // a stream is live and has heartbeated

	AppliedLSN   uint64 // records applied to the local engine
	AppliedEpoch int64  // local epoch sequence (matches the primary's at equal LSN)
	AppliedClock int64  // local clock (last applied Tick)

	PrimaryLSN   uint64 // primary log end, from the last heartbeat
	PrimaryEpoch int64
	PrimaryClock int64

	LagRecords uint64 // PrimaryLSN - AppliedLSN (0 when ahead, e.g. pre-heartbeat)
	LagEpochs  int64  // PrimaryEpoch - AppliedEpoch (0 floor)

	Reconnects uint64 // streams that dropped and were re-established
	Bootstraps uint64 // checkpoint restores (initial one included)
	LastError  string // most recent stream/bootstrap error, "" when none
}

// followerBatch is how many consecutive Observe records the applier
// groups into one Engine.ObserveBatch call. Batching is what keeps
// follower apply throughput at the same order as recovery replay; it
// cannot change results because the Engine merges observations back into
// arrival order at epoch boundaries regardless of batch boundaries.
const followerBatch = 1024

// Follower is a read-only replica: it bootstraps from the primary's
// latest checkpoint, tails the primary's write-ahead log over HTTP, and
// applies the records to a local Engine. Because both deployments are
// observation-order-deterministic, the follower's Snapshot().Query(q) is
// byte-identical to the primary's at every shared epoch boundary.
//
// Follower implements Source, but it is the read-only half: Observe,
// ObserveNoisy, ObserveBatch and Tick always return ErrReadOnly, while
// Snapshot, Subscribe and Stats serve local state with no primary
// round-trip. Reads are eventually consistent with the primary —
// replication lag is bounded by the primary's group-commit flush cadence
// plus one poll interval, and Replication() reports the current lag.
//
// The applier reconnects with resume-from-LSN after network errors, and
// re-bootstraps from the newest checkpoint when the primary reports the
// resume position is gone (truncated by a checkpoint, or rewritten after
// a primary crash that lost unsynced tail records). A re-bootstrap while
// subscribers are attached can make the local epoch sequence jump;
// subscription streams stay ordered (stale epochs are dropped), so
// watchers observe a gap, not a reordering.
type Follower struct {
	primary string
	cfg     FollowerConfig
	conf    Config
	client  *replication.Client
	eng     *Engine

	cancel context.CancelFunc
	done   chan struct{}
	gen    atomic.Uint64 // bumped on every applied batch/tick/bootstrap

	mu           sync.Mutex
	streamCancel context.CancelFunc // cancels the live stream (Reconnect)
	applied      uint64
	clock        int64
	epoch        int64 // local epoch sequence, mirrored incrementally off applied ticks
	hb           replication.Status
	hbSeen       bool
	connected    bool
	reconnects   uint64
	bootstraps   uint64
	lastErr      error
	closed       bool
}

// OpenFollower connects to a primary hotpathsd (its base URL, e.g.
// "http://primary:8080") and returns a read-only replica of it. The
// primary must run with -wal, which exposes the /wal/meta, /wal/checkpoint
// and /wal/stream endpoints this feeds on. OpenFollower fails when the
// primary is unreachable or not serving a journal; once open, the
// follower reconnects and re-bootstraps on its own until Close.
func OpenFollower(primary string, cfg FollowerConfig) (*Follower, error) {
	if err := replication.ParseBase(primary); err != nil {
		return nil, fmt.Errorf("hotpaths: %w", err)
	}
	cfg = cfg.withDefaults()
	client := &replication.Client{Base: primary, HTTP: cfg.HTTPClient}

	ctx, cancelConnect := context.WithTimeout(context.Background(), cfg.ConnectTimeout)
	defer cancelConnect()
	metaB, err := client.Meta(ctx)
	if err != nil {
		return nil, fmt.Errorf("hotpaths: fetch primary config: %w", err)
	}
	var conf Config
	if err := json.Unmarshal(metaB, &conf); err != nil {
		return nil, fmt.Errorf("hotpaths: primary served corrupt journal config: %w", err)
	}
	eng, err := NewEngine(EngineConfig{Config: conf, Shards: cfg.Shards, Buffer: cfg.Buffer})
	if err != nil {
		return nil, fmt.Errorf("hotpaths: primary journal config rejected: %w", err)
	}

	runCtx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		primary: primary,
		cfg:     cfg,
		conf:    eng.Config(),
		client:  client,
		eng:     eng,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	if err := f.bootstrap(ctx); err != nil {
		cancel()
		eng.Close()
		return nil, fmt.Errorf("hotpaths: bootstrap from primary checkpoint: %w", err)
	}
	go f.run(runCtx)
	return f, nil
}

// bootstrap loads the primary's newest checkpoint into the local engine
// and positions the applier at its LSN. With no checkpoint yet, the
// follower replays the stream from LSN 0 — which, on a RE-bootstrap
// (the primary refused to resume from our LSN), requires wiping the
// local state first: keeping it and retrying the same invalid LSN would
// loop forever serving diverged answers.
func (f *Follower) bootstrap(ctx context.Context) error {
	t0 := time.Now()
	lsn, payload, err := f.client.Checkpoint(ctx)
	if errors.Is(err, replication.ErrNoCheckpoint) {
		f.mu.Lock()
		applied := f.applied
		f.mu.Unlock()
		if applied == 0 {
			return nil // initial open: the engine is already fresh at LSN 0
		}
		if err := f.eng.eng.RestoreState(engine.State{}); err != nil {
			return err
		}
		f.mu.Lock()
		f.applied, f.clock, f.epoch = 0, 0, 0
		f.bootstraps++
		f.mu.Unlock()
		f.gen.Add(1)
		mFollowerBootstrap.ObserveSince(t0)
		return nil
	}
	if err != nil {
		return err
	}
	st, err := decodeCheckpoint(payload, f.conf)
	if err != nil {
		return err
	}
	if err := f.eng.eng.RestoreState(st); err != nil {
		return err
	}
	epoch := f.eng.Snapshot().Epoch()
	f.mu.Lock()
	f.applied = lsn
	f.clock = int64(st.Clock)
	f.epoch = epoch
	f.bootstraps++
	f.mu.Unlock()
	f.gen.Add(1)
	mFollowerBootstrap.ObserveSince(t0)
	return nil
}

// run is the applier loop: stream, apply, reconnect with jittered
// backoff, re-bootstrap when resume is impossible. It exits when Close
// cancels the context.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	backoff := &replication.Backoff{Min: f.cfg.ReconnectMin, Max: f.cfg.ReconnectMax}
	for {
		hadConnection, err := f.streamOnce(ctx)
		if ctx.Err() != nil {
			return
		}
		f.mu.Lock()
		wasConnected := f.connected
		f.connected = false
		applied := f.applied
		mFollowerConnected.Set(0)
		if hadConnection {
			f.reconnects++
			mFollowerReconnects.Inc()
			backoff.Reset()
		}
		if err != nil && !errors.Is(err, context.Canceled) {
			f.lastErr = err
		}
		f.mu.Unlock()
		if wasConnected {
			// Only the true-to-false flip is an event; failed reconnect
			// attempts while already down are not.
			attrs := []flightrec.Attr{
				flightrec.KV("primary", f.primary),
				flightrec.KV("applied_lsn", applied),
			}
			if err != nil && !errors.Is(err, context.Canceled) {
				attrs = append(attrs, flightrec.KV("error", err.Error()))
			}
			flightrec.Default.Record(flightrec.EvReplDisconnect, attrs...)
		}

		if errors.Is(err, replication.ErrSnapshotNeeded) {
			flightrec.Default.Record(flightrec.EvReplRebootstrap,
				flightrec.KV("primary", f.primary),
				flightrec.KV("refused_lsn", applied))
			bctx, cancel := context.WithTimeout(ctx, f.cfg.ConnectTimeout)
			berr := f.bootstrap(bctx)
			cancel()
			if berr != nil && ctx.Err() == nil {
				f.mu.Lock()
				f.lastErr = fmt.Errorf("re-bootstrap: %w", berr)
				f.mu.Unlock()
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff.Next()):
		}
	}
}

// streamOnce runs one stream connection until it ends, applying records
// to the local engine. Observe records are grouped into batches flushed
// at every Tick, heartbeat, or followerBatch records — so the applied
// LSN only advances over fully-applied prefixes, and a dropped connection
// resumes exactly after the last applied record. Apply errors are
// discarded: the primary saw the identical error from the identical call
// and carried on, so discarding reproduces its state (the same contract
// recovery's replay uses).
func (f *Follower) streamOnce(ctx context.Context) (hadConnection bool, err error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	f.mu.Lock()
	from := f.applied
	f.streamCancel = cancel
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.streamCancel = nil
		f.mu.Unlock()
	}()

	// Stall watchdog: every record or heartbeat is activity; a stream
	// with none for StallTimeout is hung (the read blocks forever on a
	// dead-but-unclosed connection) and gets cancelled so the reconnect
	// path takes over and the follower stops reporting itself healthy.
	var actMu sync.Mutex
	lastActivity := time.Now()
	touch := func() {
		actMu.Lock()
		lastActivity = time.Now()
		actMu.Unlock()
	}
	stalled := false
	watchdogDone := make(chan struct{})
	go func() {
		defer close(watchdogDone)
		t := time.NewTicker(f.cfg.StallTimeout / 4)
		defer t.Stop()
		for {
			select {
			case <-sctx.Done():
				return
			case <-t.C:
				actMu.Lock()
				stale := time.Since(lastActivity) > f.cfg.StallTimeout
				actMu.Unlock()
				if stale {
					stalled = true
					cancel()
					return
				}
			}
		}
	}()

	batch := make([]Observation, 0, followerBatch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		// The apply loop has no inbound request to continue, so each flush
		// is its own probabilistically sampled local-root trace — slow
		// follower applies surface in /debug/traces like slow writes do on
		// the primary.
		actx, span := tracing.Default.StartRoot(context.Background(), "replication.apply")
		span.SetAttr("records", len(batch))
		_ = f.eng.ObserveBatchCtx(actx, batch)
		span.End()
		f.mu.Lock()
		f.applied += uint64(len(batch))
		f.mu.Unlock()
		mFollowerApplied.Add(uint64(len(batch)))
		batch = batch[:0]
		f.gen.Add(1)
	}
	err = f.client.Stream(sctx, from,
		func(lsn uint64, rec wal.Record) error {
			touch()
			switch rec.Kind {
			case wal.KindObserve:
				batch = append(batch, Observation{
					ObjectID: int(rec.ObjectID),
					X:        rec.X, Y: rec.Y, T: rec.T,
					SigmaX: rec.SigmaX, SigmaY: rec.SigmaY,
				})
				if len(batch) >= followerBatch {
					flush()
				}
			case wal.KindTick:
				flush()
				actx, span := tracing.Default.StartRoot(context.Background(), "replication.tick")
				span.SetAttr("tick", rec.T)
				_ = f.eng.TickCtx(actx, rec.T)
				span.End()
				f.mu.Lock()
				f.applied = lsn + 1
				// Mirror the engine's epoch/clock rules instead of taking a
				// snapshot per tick: the clock only moves forward (a
				// non-advancing Tick was an error on the primary too), and
				// an epoch fires when it crosses a multiple of Epoch.
				if rec.T > f.clock {
					if rec.T/f.conf.Epoch != f.clock/f.conf.Epoch {
						f.epoch++
					}
					f.clock = rec.T
				}
				f.mu.Unlock()
				mFollowerApplied.Inc()
				f.gen.Add(1)
			default:
				// A record kind this build does not know: it cannot apply
				// it, and silently skipping would diverge. Surface it; the
				// operator must upgrade the follower.
				return fmt.Errorf("hotpaths: stream carried unknown record kind %d at LSN %d; follower too old?", rec.Kind, lsn)
			}
			return nil
		},
		func(st replication.Status) {
			touch()
			flush()
			f.mu.Lock()
			wasConnected := f.connected
			f.hb = st
			f.hbSeen = true
			f.connected = true
			applied := f.applied
			lag := int64(0)
			if st.NextLSN > applied {
				lag = int64(st.NextLSN - applied)
			}
			f.mu.Unlock()
			if !wasConnected {
				// Heartbeats repeat; only the false-to-true flip is an event.
				flightrec.Default.Record(flightrec.EvReplConnect,
					flightrec.KV("primary", f.primary),
					flightrec.KV("primary_lsn", st.NextLSN),
					flightrec.KV("applied_lsn", applied))
			}
			mFollowerConnected.Set(1)
			mFollowerLag.Set(lag)
			hadConnection = true
		})
	flush() // records received before the drop are valid; keep them
	cancel()
	<-watchdogDone // also orders the `stalled` read after its last write
	if stalled {
		err = fmt.Errorf("hotpaths: replication stream stalled: no records or heartbeats for %v", f.cfg.StallTimeout)
	}
	return hadConnection, err
}

// Observe always returns ErrReadOnly: followers reject writes.
func (f *Follower) Observe(objectID int, x, y float64, t int64) error { return ErrReadOnly }

// ObserveNoisy always returns ErrReadOnly: followers reject writes.
func (f *Follower) ObserveNoisy(objectID int, x, y, sigmaX, sigmaY float64, t int64) error {
	return ErrReadOnly
}

// ObserveBatch always returns ErrReadOnly: followers reject writes.
func (f *Follower) ObserveBatch(batch []Observation) error { return ErrReadOnly }

// ObserveBatchCtx always returns ErrReadOnly, like ObserveBatch.
func (f *Follower) ObserveBatchCtx(ctx context.Context, batch []Observation) error {
	return ErrReadOnly
}

// Tick always returns ErrReadOnly: the follower's clock advances by
// applying the primary's journaled ticks.
func (f *Follower) Tick(now int64) error { return ErrReadOnly }

// TickCtx always returns ErrReadOnly, like Tick.
func (f *Follower) TickCtx(ctx context.Context, now int64) error { return ErrReadOnly }

// Snapshot captures an immutable view of the replicated hot paths,
// counters and clock. It is served locally (no primary round-trip) and is
// safe concurrently with the applier.
func (f *Follower) Snapshot() Snapshot { return f.eng.Snapshot() }

// Subscribe registers a standing query against the replicated state;
// deltas fire at every applied epoch boundary, exactly as they do on the
// primary (the epoch stream is part of the replicated determinism).
func (f *Follower) Subscribe(q Query) (*Subscription, error) { return f.eng.Subscribe(q) }

// Stats returns the replicated deployment's counters.
func (f *Follower) Stats() Stats { return f.eng.Stats() }

// Clock returns the timestamp of the last applied Tick — cheap (no
// snapshot), for monitoring probes.
func (f *Follower) Clock() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.clock
}

// Config returns the primary's journal configuration, which the follower
// replays under (defaults applied).
func (f *Follower) Config() Config { return f.conf }

// Shards returns the local engine's shard count.
func (f *Follower) Shards() int { return f.eng.Shards() }

// Primary returns the primary's base URL.
func (f *Follower) Primary() string { return f.primary }

// Generation returns a counter that increases whenever replicated state
// is applied locally (a batch, a tick, or a checkpoint bootstrap).
// Read-through caches key on it the way hotpathsd keys its snapshot
// cache on the write count.
func (f *Follower) Generation() uint64 { return f.gen.Load() }

// Reconnect drops the live replication stream, if any; the applier
// reconnects with resume-from-LSN after its usual backoff. Useful for
// forcing a fresh connection after a primary failover behind a stable
// URL, and for testing reconnect behaviour.
func (f *Follower) Reconnect() {
	f.mu.Lock()
	cancel := f.streamCancel
	f.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Replication reports the follower's position and lag relative to the
// primary. The primary-side fields come from the stream's heartbeats and
// are zero until the first one arrives.
func (f *Follower) Replication() ReplicationStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := ReplicationStats{
		Primary:      f.primary,
		Connected:    f.connected,
		AppliedLSN:   f.applied,
		AppliedEpoch: f.epoch,
		AppliedClock: f.clock,
		Reconnects:   f.reconnects,
		Bootstraps:   f.bootstraps,
	}
	if f.hbSeen {
		st.PrimaryLSN = f.hb.NextLSN
		st.PrimaryEpoch = f.hb.Epoch
		st.PrimaryClock = f.hb.Clock
		if st.PrimaryLSN > st.AppliedLSN {
			st.LagRecords = st.PrimaryLSN - st.AppliedLSN
		}
		if st.PrimaryEpoch > st.AppliedEpoch {
			st.LagEpochs = st.PrimaryEpoch - st.AppliedEpoch
		}
	}
	if f.lastErr != nil {
		st.LastError = f.lastErr.Error()
	}
	return st
}

// NewReplicationFeed returns an http.Handler serving the primary-side
// replication feed for a Durable deployment: GET /wal/meta,
// /wal/checkpoint and /wal/stream — the endpoints OpenFollower consumes.
// hotpathsd mounts exactly this feed when -wal is set; mount it into
// your own mux to make any process built on OpenDurable a replication
// primary:
//
//	dur, _ := hotpaths.OpenDurable(dir, cfg)
//	mux.Handle("/wal/", hotpaths.NewReplicationFeed(dur, nil))
//
// closing, when non-nil, ends every open stream when it is closed; wire
// it to your HTTP server's shutdown hook so long-lived streams do not
// pin a graceful shutdown to its timeout.
func NewReplicationFeed(d *Durable, closing <-chan struct{}) http.Handler {
	rs := &replication.Server{
		Dir: d.dir,
		// Counters, not a snapshot: heartbeats ride the stream's hot path,
		// and an O(paths) copy per heartbeat would tax ingest for telemetry.
		Position: func() replication.Status {
			return replication.Status{
				NextLSN: d.NextLSN(),
				Epoch:   int64(d.Stats().Epochs),
				Clock:   d.Clock(),
			}
		},
		Closing: closing,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+replication.StreamPath, rs.ServeStream)
	mux.HandleFunc("GET "+replication.CheckpointPath, rs.ServeCheckpoint)
	mux.HandleFunc("GET "+replication.MetaPath, rs.ServeMeta)
	return mux
}

// Close stops the applier and shuts the local engine down, closing every
// subscription channel. Queries on previously taken Snapshots stay valid.
// Close is idempotent.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	f.cancel()
	<-f.done
	mFollowerConnected.Set(0)
	return f.eng.Close()
}

var _ Source = (*Follower)(nil)

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"hotpaths/internal/experiment"
)

// PaperPoint is one ε on the accuracy-vs-communication curve: how close
// SinglePath's top-k scores get to the exhaustive DP benchmark, against
// the uplink messages RayTrace filtering actually sent. This is the
// paper's central trade-off (Figures 7/8 read together): a larger ε buys
// communication savings with index-size and score drift.
type PaperPoint struct {
	Eps           float64 `json:"eps"`
	Accuracy      float64 `json:"accuracy"` // SP top-k score / DP top-k score
	SPScore       float64 `json:"sp_score"`
	DPScore       float64 `json:"dp_score"`
	SPIndexSize   float64 `json:"sp_index_size"`
	DPIndexSize   float64 `json:"dp_index_size"`
	UpMessages    int     `json:"up_messages"`
	NaiveMessages int     `json:"naive_messages"`
	Compression   float64 `json:"compression"` // naive / raytrace messages
}

// PaperReport is the paper_accuracy artifact (BENCH_paper.json). Every
// numeric field is deterministic under the fixed seed, so regenerating
// the file on an unchanged tree is a no-op diff — drift in the curve is a
// behaviour change, not noise, and CI can treat it as such.
type PaperReport struct {
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Name      string       `json:"name"` // always "paper_accuracy"
	Seed      int64        `json:"seed"`
	Points    []PaperPoint `json:"points"`
}

// paperEps are the swept tolerances: the QuickBase network is 3 km
// across, so the range spans "almost exact" to "very loose" like the
// paper's Figure 8 x-axis does at city scale.
var paperEps = []float64{2.5, 5, 10, 20}

// RunPaper regenerates the accuracy-vs-communication curve on the
// scaled-down QuickBase configuration (seconds, not the full Section 6
// run — `hotpaths eval` does that).
func RunPaper(verbose bool) (PaperReport, error) {
	rep := PaperReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Name:      "paper_accuracy",
		Seed:      seed,
	}
	base, err := experiment.QuickBase(seed)
	if err != nil {
		return rep, fmt.Errorf("paper_accuracy: %w", err)
	}
	rows, err := experiment.SweepEps(base, paperEps)
	if err != nil {
		return rep, fmt.Errorf("paper_accuracy: %w", err)
	}
	for _, r := range rows {
		p := PaperPoint{
			Eps:           r.Param,
			SPScore:       r.SPScore,
			DPScore:       r.DPScore,
			SPIndexSize:   r.SPIndexSize,
			DPIndexSize:   r.DPIndexSize,
			UpMessages:    r.UpMessages,
			NaiveMessages: r.Measurements,
		}
		if r.DPScore > 0 {
			p.Accuracy = r.SPScore / r.DPScore
		}
		if r.UpMessages > 0 {
			p.Compression = float64(r.Measurements) / float64(r.UpMessages)
		}
		rep.Points = append(rep.Points, p)
		if verbose {
			fmt.Fprintf(os.Stderr, "paper_accuracy eps=%-5g accuracy=%.3f compression=%.1fx (%d/%d msgs)\n",
				p.Eps, p.Accuracy, p.Compression, p.UpMessages, p.NaiveMessages)
		}
	}
	return rep, nil
}

// WriteFile serialises the curve as indented JSON, newline-terminated so
// the artifact diffs cleanly in git.
func (r PaperReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

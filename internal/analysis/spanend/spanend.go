// Package spanend defines an analyzer that checks every tracing span
// reaches End() on all return paths.
//
// # Contract
//
// A span returned by tracing.StartSpan, (*Tracer).StartRequest or
// (*Tracer).StartRoot must be ended exactly once on every path out of
// the function that started it — usually `defer span.End()` on the next
// line. A span that is never ended reports no duration, leaks its
// entry from the active-span set, and silently truncates the trace tree
// under it, which is exactly the failure mode that is invisible in tests
// and only shows up as missing spans in production traces.
//
// The analyzer tracks each span variable through the block structure of
// its function. A path is considered covered when it reaches a direct
// span.End() call, a `defer span.End()` (or a defer whose closure
// captures the span), or when the span escapes the function — passed as
// an argument, returned, stored in a struct or captured by a closure —
// at which point responsibility transfers to the escapee, mirroring
// x/tools' lostcancel. Assigning the span to `_` is reported outright.
//
// The analysis is deliberately biased against false positives: method
// calls on the span (span.SetAttr(...)) and nil-comparisons are neutral,
// any escape counts as coverage, and the nil branch of
// `if span == nil { ... }` is a covered path (an unsampled request has
// no span to end). _test.go files are skipped: tracing's own tests
// create spans precisely to inspect their un-ended state.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hotpaths/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "spanend",
	Doc:  "require tracing spans to reach End() on every return path",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				findCreations(pass, body)
			}
			return true // keep descending: nested FuncLits analyzed separately
		})
	}
	return nil
}

// findCreations walks one function body (not entering nested function
// literals) looking for span-start statements, and tracks each resulting
// span variable through the rest of its block.
func findCreations(pass *framework.Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if obj, call := spanCreation(pass, s); call != nil {
				if obj == nil {
					pass.Reportf(call.Pos(), "span discarded with _; the span must be ended — assign it and defer its End()")
					continue
				}
				t := &tracker{pass: pass, obj: obj}
				exit, term := t.scan(block.List[i+1:], false)
				if !exit && !term && !t.reported {
					pass.Reportf(call.Pos(), "span %s is not ended before the function returns; defer %s.End() after starting it", obj.Name(), obj.Name())
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && framework.IsSpanStart(pass.TypesInfo, call) {
				pass.Reportf(call.Pos(), "span-start result discarded; the span must be ended — assign it and defer its End()")
			}
		}
		// Recurse into nested control flow so creations inside branches
		// are tracked too.
		for _, inner := range nestedBlocks(stmt) {
			findCreations(pass, inner)
		}
	}
}

// nestedBlocks returns the blocks directly nested in stmt, skipping
// function literals (they are separate functions for this analysis).
func nestedBlocks(stmt ast.Stmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s)
	case *ast.IfStmt:
		out = append(out, s.Body)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			out = append(out, e)
		case *ast.IfStmt:
			out = append(out, nestedBlocks(e)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body)
	case *ast.RangeStmt:
		out = append(out, s.Body)
	case *ast.SwitchStmt:
		out = append(out, clauseBlocks(s.Body)...)
	case *ast.TypeSwitchStmt:
		out = append(out, clauseBlocks(s.Body)...)
	case *ast.SelectStmt:
		out = append(out, clauseBlocks(s.Body)...)
	case *ast.LabeledStmt:
		out = append(out, nestedBlocks(s.Stmt)...)
	}
	return out
}

func clauseBlocks(body *ast.BlockStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, &ast.BlockStmt{List: c.Body})
		case *ast.CommClause:
			out = append(out, &ast.BlockStmt{List: c.Body})
		}
	}
	return out
}

// spanCreation matches `ctx, span := ...StartSpan(...)` and returns the
// span variable's object (nil for the blank identifier) and the call.
func spanCreation(pass *framework.Pass, assign *ast.AssignStmt) (types.Object, *ast.CallExpr) {
	if len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
		return nil, nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || !framework.IsSpanStart(pass.TypesInfo, call) {
		return nil, nil
	}
	id, ok := assign.Lhs[1].(*ast.Ident)
	if !ok {
		return nil, nil
	}
	if id.Name == "_" {
		return nil, call
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id] // plain = assignment to existing var
	}
	if obj == nil {
		return nil, nil
	}
	return obj, call
}

// tracker follows one span variable through block-structured control
// flow. State is a single boolean: has this path ended (or handed off)
// the span yet?
type tracker struct {
	pass     *framework.Pass
	obj      types.Object
	reported bool
}

// scan processes a statement list with entry state st and returns the
// fall-through state plus whether the list always terminates the
// function (so there is no fall-through).
func (t *tracker) scan(stmts []ast.Stmt, st bool) (exit bool, terminated bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			if t.touched(s) {
				st = true // returning the span is a hand-off
			}
			if !st {
				t.reported = true
				t.pass.Reportf(s.Pos(), "return without ending span %s; call %s.End() on this path or defer it at the start", t.obj.Name(), t.obj.Name())
			}
			return st, true
		case *ast.BranchStmt:
			// break/continue/goto: control leaves this list. The loop
			// merge below already treats loop bodies conservatively, so
			// just stop without reporting.
			return st, true
		case *ast.DeferStmt:
			if t.touched(s) {
				st = true // defer span.End() or a deferred closure using it
			}
		case *ast.IfStmt:
			if s.Init != nil && t.touched(s.Init) {
				st = true
			}
			if s.Cond != nil && t.touched(s.Cond) {
				st = true
			}
			// `if span == nil` means the span doesn't exist in the then
			// branch (and vice versa): that path needs no End.
			bodyEntry, elseEntry := st, st
			switch t.nilCheck(s.Cond) {
			case token.EQL:
				bodyEntry = true
			case token.NEQ:
				elseEntry = true
			}
			bodySt, bodyTerm := t.scan(s.Body.List, bodyEntry)
			elseSt, elseTerm := elseEntry, false
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseSt, elseTerm = t.scan(e.List, elseEntry)
			case *ast.IfStmt:
				elseSt, elseTerm = t.scan([]ast.Stmt{e}, elseEntry)
			}
			switch {
			case bodyTerm && elseTerm:
				return st, true
			case bodyTerm:
				st = elseSt
			case elseTerm:
				st = bodySt
			default:
				st = bodySt && elseSt
			}
		case *ast.ForStmt:
			if s.Init != nil && t.touched(s.Init) {
				st = true
			}
			if s.Cond != nil && t.touched(s.Cond) {
				st = true
			}
			bodySt, _ := t.scan(s.Body.List, st)
			if s.Cond == nil {
				st = bodySt // for{} only exits through its body
			} else {
				st = st && bodySt // may run zero times
			}
		case *ast.RangeStmt:
			if t.touched(s.X) {
				st = true
			}
			bodySt, _ := t.scan(s.Body.List, st)
			st = st && bodySt
		case *ast.SwitchStmt:
			if s.Init != nil && t.touched(s.Init) {
				st = true
			}
			if s.Tag != nil && t.touched(s.Tag) {
				st = true
			}
			st2, term := t.scanClauses(s.Body, st, false)
			if term {
				return st2, true
			}
			st = st2
		case *ast.TypeSwitchStmt:
			st2, term := t.scanClauses(s.Body, st, false)
			if term {
				return st2, true
			}
			st = st2
		case *ast.SelectStmt:
			st2, term := t.scanClauses(s.Body, st, true)
			if term {
				return st2, true
			}
			st = st2
		case *ast.BlockStmt:
			st2, term := t.scan(s.List, st)
			if term {
				return st2, true
			}
			st = st2
		case *ast.LabeledStmt:
			st2, term := t.scan([]ast.Stmt{s.Stmt}, st)
			if term {
				return st2, true
			}
			st = st2
		default:
			if t.touched(stmt) {
				st = true
			}
		}
	}
	return st, false
}

// scanClauses merges the case/comm clauses of a switch or select.
// isSelect: a select with no default always executes some clause, so the
// pre-state does not flow around it.
func (t *tracker) scanClauses(body *ast.BlockStmt, st bool, isSelect bool) (exit bool, terminated bool) {
	if len(body.List) == 0 {
		return st, false
	}
	allSt, allTerm, hasDefault := true, true, false
	for _, c := range body.List {
		var list []ast.Stmt
		entry := st
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				if t.touched(e) {
					entry = true
				}
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else if t.touched(c.Comm) {
				entry = true
			}
			list = c.Body
		}
		cSt, cTerm := t.scan(list, entry)
		if !cTerm {
			allTerm = false
			if !cSt {
				allSt = false
			}
		}
	}
	exhaustive := hasDefault || isSelect
	if allTerm && exhaustive {
		return st, true
	}
	if exhaustive {
		return allSt, false
	}
	return st && allSt, false
}

// nilCheck classifies cond as `span == nil` (EQL), `span != nil` (NEQ),
// or neither (ILLEGAL).
func (t *tracker) nilCheck(cond ast.Expr) token.Token {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return token.ILLEGAL
	}
	if (t.isObjExpr(be.X) && isNil(be.Y)) || (t.isObjExpr(be.Y) && isNil(be.X)) {
		return be.Op
	}
	return token.ILLEGAL
}

// touched reports whether n ends or hands off the span: a direct
// obj.End() call, or any escaping use (argument, return value, struct
// field, channel send, closure capture, reassignment). Neutral uses —
// other method calls on the span and nil comparisons — return false.
func (t *tracker) touched(n ast.Node) bool {
	found := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// Capture by a closure is a hand-off; don't analyze its body
			// as part of this function.
			if t.usesObj(n) {
				found = true
			}
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && t.isObj(id) {
					if sel.Sel.Name == "End" {
						found = true
					} else {
						// span.SetAttr(...) etc: neutral receiver use,
						// but its arguments may still touch.
						for _, a := range n.Args {
							ast.Inspect(a, visit)
						}
					}
					return false
				}
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if (t.isObjExpr(n.X) && isNil(n.Y)) || (t.isObjExpr(n.Y) && isNil(n.X)) {
					return false // nil check is neutral
				}
			}
			return true
		case *ast.Ident:
			if t.isObj(n) {
				found = true // any other use escapes
			}
			return false
		}
		return true
	}
	ast.Inspect(n, visit)
	return found
}

func (t *tracker) usesObj(n ast.Node) bool {
	used := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && t.isObj(id) {
			used = true
		}
		return !used
	})
	return used
}

func (t *tracker) isObj(id *ast.Ident) bool {
	return t.pass.TypesInfo.Uses[id] == t.obj
}

func (t *tracker) isObjExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && t.isObj(id)
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// Package coordinator implements the server side of the framework: the
// MotionPath store (grid index + hotness window) and the SinglePath
// discovery strategy of the paper (Section 5, Algorithm 2).
//
// Per epoch, the coordinator receives the batch of RayTrace state messages
// from reporting objects and, for each object i with start vertex sⁱ and
// final safe area FSAⁱ, finds the endpoint of its next motion path:
//
//	Case 1 — an existing path sⁱ→p with p ∈ FSAⁱ exists: pick the hottest
//	         one (hotness boosted by the other objects that share it this
//	         epoch) and record a crossing.
//	Case 2 — no such path, but end vertices of other paths fall in FSAⁱ:
//	         pick the hottest vertex. A vertex's hotness is the sum of the
//	         hotness of the paths converging on it, plus the number of
//	         concurrently-reporting FSAs containing it (the count of the
//	         smallest Rall overlap region around it).
//	Case 3 — nothing in the index: pick the deepest point of the FSA
//	         overlap arrangement within FSAⁱ (the centroid of the hottest
//	         Rm region). This vertex is also offered as an extra candidate
//	         in Case 2, so objects converge on shared vertices.
//
// New paths are inserted under their content-addressed id (see
// motion.PathIDFor); every selection records a crossing with the report's
// [ts,te] interval, scheduled to expire from the sliding window at te+W.
package coordinator

import (
	"fmt"
	"math"
	"sort"

	"hotpaths/internal/geom"
	"hotpaths/internal/gridindex"
	"hotpaths/internal/hotness"
	"hotpaths/internal/motion"
	"hotpaths/internal/overlap"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/trajectory"
)

// Config parameterises a coordinator.
type Config struct {
	Bounds geom.Rect       // monitored space, used to size the grid index
	Cols   int             // grid columns (default 64)
	Rows   int             // grid rows (default 64)
	W      trajectory.Time // sliding window length (required, positive)
	Eps    float64         // tolerance; sizes the overlap buckets (required, positive)
}

// Report is a RayTrace state message tagged with its sender.
type Report struct {
	ObjectID int
	State    raytrace.State
}

// Response is the coordinator's answer to one report: the endpoint that
// seeds the object's next SSA, plus the id of the path the object crossed.
type Response struct {
	ObjectID int
	End      trajectory.TimePoint
	PathID   motion.PathID
	// Case records which SinglePath case produced the endpoint (1, 2, 3);
	// exposed for evaluation and ablation.
	Case int
}

// Stats aggregates coordinator-side counters.
type Stats struct {
	Epochs               int
	Reports              int
	Case1, Case2W, Case3 int // selections per case (Case2W = case 2 with existing vertex)
	PathsCreated         int
	PathsExpired         int
	Crossings            int
}

// Coordinator holds the MotionPath index and runs SinglePath.
type Coordinator struct {
	cfg   Config
	grid  *gridindex.Grid
	hot   *hotness.Window
	paths map[motion.PathID]motion.Path
	stats Stats
}

// New validates cfg and builds a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Cols == 0 {
		cfg.Cols = 64
	}
	if cfg.Rows == 0 {
		cfg.Rows = 64
	}
	if cfg.Eps <= 0 {
		return nil, fmt.Errorf("coordinator: Eps must be positive, got %v", cfg.Eps)
	}
	grid, err := gridindex.New(cfg.Bounds, cfg.Cols, cfg.Rows)
	if err != nil {
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	hot, err := hotness.New(cfg.W)
	if err != nil {
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	return &Coordinator{
		cfg:   cfg,
		grid:  grid,
		hot:   hot,
		paths: make(map[motion.PathID]motion.Path),
	}, nil
}

// IndexSize returns the number of stored motion paths (hotness > 0).
func (c *Coordinator) IndexSize() int { return len(c.paths) }

// Stats returns a copy of the coordinator's counters.
func (c *Coordinator) Stats() Stats { return c.stats }

// Path returns the stored geometry for id.
func (c *Coordinator) Path(id motion.PathID) (motion.Path, bool) {
	p, ok := c.paths[id]
	return p, ok
}

// Hotness returns the current hotness of id.
func (c *Coordinator) Hotness(id motion.PathID) int { return c.hot.Hotness(id) }

// Advance slides the hotness window to now, evicting expired crossings and
// deleting paths whose hotness reaches zero (from both the hash table and
// the grid index, as in the paper).
func (c *Coordinator) Advance(now trajectory.Time) {
	c.hot.Advance(now, func(id motion.PathID) {
		if p, ok := c.paths[id]; ok {
			c.grid.Remove(id, p.E)
			delete(c.paths, id)
			c.stats.PathsExpired++
		}
	})
}

// candidatePath is an available motion path with its tentatively boosted
// hotness (Algorithm 2's AP/CP sets).
type candidatePath struct {
	id  motion.PathID
	end geom.Point
	h   int
}

// ProcessEpoch runs the SinglePath strategy over one epoch's batch of
// reports and returns one response per report, in input order.
func (c *Coordinator) ProcessEpoch(reports []Report) ([]Response, error) {
	// Phase 0: candidate motion paths per object, and the Rall overlap
	// structure over all reporting FSAs. Nothing on the coordinator is
	// mutated until the whole batch has validated, so a rejected batch
	// leaves the coordinator unchanged.
	rall, err := overlap.NewSet(2 * c.cfg.Eps)
	if err != nil {
		return nil, err
	}
	cps := make([][]candidatePath, len(reports))
	// pathUses counts how many objects see each path among their
	// candidates, implementing Algorithm 2 lines 13–15 (cross-object
	// hotness accentuation) without materialising set intersections.
	pathUses := make(map[motion.PathID]int)
	for i, r := range reports {
		if r.State.FSA.Empty() {
			return nil, fmt.Errorf("coordinator: object %d reported empty FSA", r.ObjectID)
		}
		if r.State.Te <= r.State.Ts {
			return nil, fmt.Errorf("coordinator: object %d reported non-positive interval [%d,%d]",
				r.ObjectID, r.State.Ts, r.State.Te)
		}
		cps[i] = c.candidatePaths(r.State.Start, r.State.FSA)
		for _, cp := range cps[i] {
			pathUses[cp.id]++
		}
		rall.Add(r.State.FSA)
	}
	for i := range cps {
		for j := range cps[i] {
			// Boost by the number of OTHER objects sharing this candidate.
			cps[i][j].h += pathUses[cps[i][j].id] - 1
		}
	}

	// Selection phase.
	c.stats.Epochs++
	c.stats.Reports += len(reports)
	out := make([]Response, len(reports))
	for i, r := range reports {
		if len(cps[i]) > 0 {
			out[i] = c.selectPath(r, cps[i])
			continue
		}
		out[i] = c.selectVertex(r, rall)
	}
	return out, nil
}

// candidatePaths returns the available motion paths starting at s and
// ending inside fsa, with hotness pre-incremented by one (the reporting
// object's own potential crossing), per Algorithm 2's GetCandidatePaths.
func (c *Coordinator) candidatePaths(s geom.Point, fsa geom.Rect) []candidatePath {
	var out []candidatePath
	c.grid.Query(fsa, func(e gridindex.Entry) bool {
		if e.Start.Eq(s) {
			out = append(out, candidatePath{id: e.ID, end: e.End, h: c.hot.Hotness(e.ID) + 1})
		}
		return true
	})
	return out
}

// selectPath handles Case 1: choose the hottest candidate path and record
// the crossing. Ties prefer the longer path (the paper's score metric
// rewards length), then the smaller id for determinism.
func (c *Coordinator) selectPath(r Report, cands []candidatePath) Response {
	best := cands[0]
	bestLen := r.State.Start.Dist(best.end)
	for _, cp := range cands[1:] {
		l := r.State.Start.Dist(cp.end)
		if cp.h > best.h || (cp.h == best.h && (l > bestLen || (l == bestLen && cp.id < best.id))) {
			best, bestLen = cp, l
		}
	}
	c.hot.Cross(best.id, r.State.Te)
	c.stats.Crossings++
	c.stats.Case1++
	return Response{
		ObjectID: r.ObjectID,
		End:      trajectory.TP(best.end, r.State.Te),
		PathID:   best.id,
		Case:     1,
	}
}

// candidateVertex is an available end vertex with its adjusted hotness.
type candidateVertex struct {
	p     geom.Point
	h     int
	fresh bool // true for the Case-3 overlap-generated vertex
}

// selectVertex handles Cases 2 and 3: gather candidate vertices, adjust
// their hotness by the overlap stabbing counts, add the deepest-overlap
// vertex, pick the hottest, and insert the new path sⁱ→p.
func (c *Coordinator) selectVertex(r Report, rall *overlap.Set) Response {
	fsa := r.State.FSA
	// Available vertices: distinct end vertices of paths ending in the FSA,
	// hotness = Σ hotness of converging paths (GetCandidateVertices).
	sums := make(map[geom.Point]int)
	c.grid.Query(fsa, func(e gridindex.Entry) bool {
		sums[e.End] += c.hot.Hotness(e.ID)
		return true
	})
	cands := make([]candidateVertex, 0, len(sums)+1)
	for p, h := range sums {
		// Adjust by the count of the smallest overlap region containing p
		// (= the number of reporting FSAs stabbing p).
		cands = append(cands, candidateVertex{p: p, h: h + rall.StabCount(p)})
	}
	hadVertices := len(cands) > 0

	// Case-3 vertex: the deepest point of the FSA arrangement within this
	// FSA, canonicalised so objects reporting around the same road spot
	// pick the SAME vertex. The paper leaves the vertex choice within the
	// hottest overlap region Rm free ("e.g., by taking the centroid"); we
	// take the centroid of the ARRANGEMENT CELL around the deepest point —
	// the intersection of every reporting FSA containing it. The cell does
	// not depend on whose FSA the query came from, so every object whose
	// deepest point lands in that cell derives a bit-identical vertex (and
	// the cell lies inside each of those FSAs, keeping the response a valid
	// SSA seed). An ε-grid point inside the cell is preferred, aligning
	// vertices across epochs too. Subsequent paths then chain through
	// shared vertices, letting Case 1 accumulate hotness instead of
	// spawning near-duplicate paths.
	vm, hm := rall.DeepestWithin(fsa)
	if cell, n := rall.Cell(vm); n > 0 {
		vm = snapInto(cell.Centroid(), cell, c.cfg.Eps)
		if hm < n {
			hm = n
		}
	}
	cands = append(cands, candidateVertex{p: vm, h: hm, fresh: true})

	// Choose the hottest; ties prefer existing vertices (they merge flows),
	// then the farther vertex from sⁱ (longer paths score higher).
	best := cands[0]
	for _, cv := range cands[1:] {
		if better(cv, best, r.State.Start) {
			best = cv
		}
	}

	// Reuse an identical path inserted earlier in this very epoch: phase-0
	// candidate sets cannot see intra-batch inserts, and storing duplicate
	// s→p paths would split their hotness.
	id, exists := c.findPath(r.State.Start, best.p)
	if !exists {
		id = c.insertPath(r.State.Start, best.p)
	}
	c.hot.Cross(id, r.State.Te)
	c.stats.Crossings++
	if hadVertices && !best.fresh {
		c.stats.Case2W++
	} else {
		c.stats.Case3++
	}
	return Response{
		ObjectID: r.ObjectID,
		End:      trajectory.TP(best.p, r.State.Te),
		PathID:   id,
		Case:     caseNumber(hadVertices, best.fresh),
	}
}

func caseNumber(hadVertices, fresh bool) int {
	if hadVertices && !fresh {
		return 2
	}
	return 3
}

// better reports whether a should be preferred over b as an endpoint for an
// object starting at s.
func better(a, b candidateVertex, s geom.Point) bool {
	if a.h != b.h {
		return a.h > b.h
	}
	if a.fresh != b.fresh {
		return !a.fresh // prefer existing vertices on ties
	}
	da, db := s.Dist(a.p), s.Dist(b.p)
	if da != db {
		return da > db
	}
	// Final deterministic tiebreak on coordinates.
	if a.p.X != b.p.X {
		return a.p.X < b.p.X
	}
	return a.p.Y < b.p.Y
}

// snapInto rounds p to the nearest point of the ε-grid; if that canonical
// point falls outside r (which caps the snap displacement at ε/√2·…, well
// within tolerance), the original point is kept so the response stays a
// valid SSA seed.
func snapInto(p geom.Point, r geom.Rect, eps float64) geom.Point {
	snapped := geom.Pt(
		math.Round(p.X/eps)*eps,
		math.Round(p.Y/eps)*eps,
	)
	if r.Contains(snapped) {
		return snapped
	}
	return p
}

// findPath looks up an existing path with exactly the given endpoints.
func (c *Coordinator) findPath(s, e geom.Point) (motion.PathID, bool) {
	var id motion.PathID
	found := false
	c.grid.Query(geom.Rect{Lo: e, Hi: e}, func(entry gridindex.Entry) bool {
		if entry.End.Eq(e) && entry.Start.Eq(s) {
			id, found = entry.ID, true
			return false
		}
		return true
	})
	return id, found
}

// insertPath stores a new motion path under its content-addressed id and
// indexes its end vertex. The id depends only on the geometry, so a path
// that expires and is re-discovered — or is discovered independently by
// another partition of a split deployment — comes back under the same id.
func (c *Coordinator) insertPath(s, e geom.Point) motion.PathID {
	id := motion.PathIDFor(s, e)
	c.paths[id] = motion.Path{ID: id, S: s, E: e}
	c.grid.Insert(gridindex.Entry{ID: id, End: e, Start: s})
	c.stats.PathsCreated++
	return id
}

// TopK returns the k hottest stored paths, sorted by hotness descending
// (ties: longer first, then smaller id). k ≤ 0 returns all paths sorted.
// This comparator defines the canonical result order; the public
// package's subscription layer (sortResults in subscribe.go) reproduces
// it to reconstruct query results from deltas, so any tie-break change
// here must be mirrored there.
func (c *Coordinator) TopK(k int) []motion.HotPath {
	out := make([]motion.HotPath, 0, len(c.paths))
	c.hot.ForEach(func(id motion.PathID, h int) bool {
		if p, ok := c.paths[id]; ok {
			out = append(out, motion.HotPath{Path: p, Hotness: h})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hotness != out[j].Hotness {
			return out[i].Hotness > out[j].Hotness
		}
		li, lj := out[i].Path.Length(), out[j].Path.Length()
		if li != lj {
			return li > lj
		}
		return out[i].Path.ID < out[j].Path.ID
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Score returns the paper's quality metric: the average hotness×length over
// the top-k hottest paths.
func (c *Coordinator) Score(k int) float64 {
	return motion.TopKScore(c.TopK(k))
}

// AllPaths returns every stored path with its hotness, unsorted.
func (c *Coordinator) AllPaths() []motion.HotPath {
	return c.TopK(0)
}

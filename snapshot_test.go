package hotpaths

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// feedBoth drives the same workload through a System and an Engine and
// returns both, ticked to the same instant.
func feedBoth(t *testing.T, cfg Config, nObjects int, horizon, seed int64) (*System, *Engine) {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	for _, batch := range IngestWorkload(nObjects, horizon, seed) {
		for _, o := range batch {
			if err := sys.Observe(o.ObjectID, o.X, o.Y, o.T); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.ObserveBatch(batch); err != nil {
			t.Fatal(err)
		}
		now := batch[0].T
		if err := sys.Tick(now); err != nil {
			t.Fatal(err)
		}
		if err := eng.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	return sys, eng
}

// Golden contract: Snapshot().Query() answers are bit-identical between
// the System and Engine deployments for every query shape, including the
// snapshot's clock, counters and GeoJSON serialisation. CI runs this
// under -race.
func TestSnapshotQueryGoldenSystemVsEngine(t *testing.T) {
	sys, eng := feedBoth(t, engineTestConfig(), 48, 120, 42)
	ss, es := sys.Snapshot(), eng.Snapshot()

	if ss.Clock() != es.Clock() {
		t.Errorf("clocks diverge: system %d engine %d", ss.Clock(), es.Clock())
	}
	if !reflect.DeepEqual(ss.Stats(), es.Stats()) {
		t.Errorf("stats diverge:\n system %+v\n engine %+v", ss.Stats(), es.Stats())
	}
	if ss.Len() == 0 {
		t.Fatal("workload produced no paths")
	}

	queries := []Query{
		{},
		Query{}.K(3),
		Query{}.MinHotness(2),
		Query{}.SortBy(ByScore),
		Query{}.SortBy(ByScore).K(5),
		Query{}.Region(Rect{Min: Pt(-500, -500), Max: Pt(500, 500)}),
		Query{}.Region(Rect{Min: Pt(-500, -500), Max: Pt(500, 500)}).MinHotness(2).SortBy(ByScore).K(4),
	}
	for i, q := range queries {
		a, b := ss.Query(q), es.Query(q)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("query %d diverges:\n system %+v\n engine %+v", i, a, b)
		}
	}

	var gs, ge bytes.Buffer
	if err := ss.WriteGeoJSON(&gs); err != nil {
		t.Fatal(err)
	}
	if err := es.WriteGeoJSON(&ge); err != nil {
		t.Fatal(err)
	}
	if gs.String() != ge.String() {
		t.Error("GeoJSON serialisations diverge between System and Engine snapshots")
	}
}

// Region queries must match a brute-force end-vertex filter over the full
// path set, on randomized workloads and randomized rectangles.
func TestRegionMatchesBruteForce(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		sys, err := New(engineTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range IngestWorkload(48, 100, seed) {
			for _, o := range batch {
				if err := sys.Observe(o.ObjectID, o.X, o.Y, o.T); err != nil {
					t.Fatal(err)
				}
			}
			if err := sys.Tick(batch[0].T); err != nil {
				t.Fatal(err)
			}
		}
		snap := sys.Snapshot()
		all := snap.HotPaths()
		if len(all) == 0 {
			t.Fatalf("seed %d produced no paths", seed)
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 50; trial++ {
			lo := Pt(rng.Float64()*1200-600, rng.Float64()*1200-600)
			r := Rect{Min: lo, Max: Pt(lo.X+rng.Float64()*400, lo.Y+rng.Float64()*400)}
			var want []HotPath
			for _, hp := range all {
				if hp.End.X >= r.Min.X && hp.End.X <= r.Max.X &&
					hp.End.Y >= r.Min.Y && hp.End.Y <= r.Max.Y {
					want = append(want, hp)
				}
			}
			got := snap.Query(Query{}.Region(r))
			if len(want) == 0 {
				if len(got) != 0 {
					t.Fatalf("seed %d trial %d: got %d paths, want none", seed, trial, len(got))
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d trial %d: region %v\n got %+v\n want %+v", seed, trial, r, got, want)
			}
		}
	}
}

// The legacy accessors must be exactly the documented thin wrappers, with
// the seed semantics: TopK is the K hottest in hotness-descending order,
// HotPaths is every live path, Score averages hotness×length over TopK.
func TestWrapperSeedSemantics(t *testing.T) {
	sys, eng := feedBoth(t, engineTestConfig(), 48, 120, 21)
	for name, src := range map[string]Source{"system": Source(sys), "engine": Source(eng)} {
		snap := src.Snapshot()
		var top []HotPath
		var all []HotPath
		var score float64
		var k int
		switch s := src.(type) {
		case *System:
			top, all, score, k = s.TopK(), s.HotPaths(), s.Score(), s.cfg.K
		case *Engine:
			top, all, score, k = s.TopK(), s.HotPaths(), s.Score(), s.cfg.K
		}
		if !reflect.DeepEqual(top, snap.TopK()) {
			t.Errorf("%s: TopK() != Snapshot().TopK()", name)
		}
		if !reflect.DeepEqual(all, snap.HotPaths()) {
			t.Errorf("%s: HotPaths() != Snapshot().HotPaths()", name)
		}
		if score != snap.Score() {
			t.Errorf("%s: Score() %v != Snapshot().Score() %v", name, score, snap.Score())
		}
		if len(top) > k {
			t.Errorf("%s: TopK returned %d > K=%d paths", name, len(top), k)
		}
		if !sort.SliceIsSorted(top, func(i, j int) bool { return top[i].Hotness > top[j].Hotness }) &&
			!sort.SliceIsSorted(top, func(i, j int) bool { return top[i].Hotness >= top[j].Hotness }) {
			t.Errorf("%s: TopK not hotness-descending: %+v", name, top)
		}
		if len(all) < len(top) {
			t.Errorf("%s: HotPaths (%d) smaller than TopK (%d)", name, len(all), len(top))
		}
		var sum float64
		for _, hp := range top {
			sum += hp.Score()
		}
		if want := sum / float64(len(top)); score != want {
			t.Errorf("%s: Score %v, want avg top-k %v", name, score, want)
		}
	}
}

// A snapshot is a frozen instant: ingestion that continues afterwards must
// not change its answers — and concurrent queries against one snapshot
// must be race-free while the engine keeps ingesting.
func TestSnapshotImmuneToLaterIngestion(t *testing.T) {
	cfg := engineTestConfig()
	eng, err := NewEngine(EngineConfig{Config: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	batches := IngestWorkload(48, 200, 5)
	for _, batch := range batches[:100] {
		if err := eng.ObserveBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := eng.Tick(batch[0].T); err != nil {
			t.Fatal(err)
		}
	}
	snap := eng.Snapshot()
	before := snap.Query(Query{}.SortBy(ByScore))
	beforeRegion := snap.Query(Query{}.Region(Rect{Min: Pt(-400, -400), Max: Pt(600, 600)}))
	if snap.Len() == 0 {
		t.Fatal("first half produced no paths")
	}

	// Hammer the snapshot from readers while the second half ingests.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = snap.Query(Query{}.Region(Rect{Min: Pt(-400, -400), Max: Pt(600, 600)}))
				_ = snap.TopK()
			}
		}()
	}
	for _, batch := range batches[100:] {
		if err := eng.ObserveBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := eng.Tick(batch[0].T); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	if !reflect.DeepEqual(before, snap.Query(Query{}.SortBy(ByScore))) {
		t.Error("snapshot answer changed after later ingestion")
	}
	if !reflect.DeepEqual(beforeRegion, snap.Query(Query{}.Region(Rect{Min: Pt(-400, -400), Max: Pt(600, 600)}))) {
		t.Error("snapshot region answer changed after later ingestion")
	}
	if live := eng.Snapshot(); live.Stats().Observations == snap.Stats().Observations {
		t.Error("live engine did not advance past the snapshot")
	}
}

// MinHotness and K must compose with both sort orders.
func TestQueryComposition(t *testing.T) {
	sys, _ := feedBoth(t, engineTestConfig(), 48, 120, 13)
	snap := sys.Snapshot()
	all := snap.HotPaths()
	if len(all) < 3 {
		t.Fatalf("workload too tame: %d paths", len(all))
	}
	min := all[len(all)/2].Hotness + 1
	for _, hp := range snap.Query(Query{}.MinHotness(min)) {
		if hp.Hotness < min {
			t.Errorf("MinHotness(%d) returned hotness %d", min, hp.Hotness)
		}
	}
	got := snap.Query(Query{}.SortBy(ByScore).K(2))
	if len(got) > 2 {
		t.Errorf("K(2) returned %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score() > got[i-1].Score() {
			t.Errorf("ByScore not descending: %v > %v", got[i].Score(), got[i-1].Score())
		}
	}
	// The zero Query is HotPaths.
	if !reflect.DeepEqual(snap.Query(Query{}), all) {
		t.Error("zero Query != HotPaths")
	}
	// A zero-value Snapshot answers emptily instead of panicking.
	var empty Snapshot
	if empty.Len() != 0 || empty.Query(Query{}) != nil || empty.Score() != 0 {
		t.Error("zero Snapshot must be empty")
	}
}

// Config.Bounds validation happens in the public constructor with a
// hotpaths-prefixed error, not deep inside the coordinator.
func TestBoundsValidation(t *testing.T) {
	for _, bad := range []Rect{
		{},                               // zero area
		{Min: Pt(10, 0), Max: Pt(0, 10)}, // max.X < min.X
		{Min: Pt(0, 10), Max: Pt(10, 0)}, // max.Y < min.Y
		{Min: Pt(0, 0), Max: Pt(100, 0)}, // degenerate strip
		{Min: Pt(5, 5), Max: Pt(5, 5)},   // degenerate point
	} {
		cfg := testConfig()
		cfg.Bounds = bad
		_, err := New(cfg)
		if err == nil {
			t.Errorf("bounds %+v must be rejected", bad)
			continue
		}
		// Typed classification (errstring contract): the rejected field
		// is carried on *ConfigError, not parsed out of the message.
		var cfgErr *ConfigError
		if !errors.As(err, &cfgErr) || cfgErr.Field != "Bounds" {
			t.Errorf("bounds %+v: error %q should be a *ConfigError for Bounds", bad, err)
		}
		if _, err := NewEngine(EngineConfig{Config: cfg}); err == nil {
			t.Errorf("engine with bounds %+v must be rejected", bad)
		}
	}
}

// Command hotpathsgw is the scatter-gather gateway for a partitioned
// hotpathsd fleet: N independent -wal primaries, each owning the objects
// that hash to its partition, behind one endpoint that speaks hotpathsd's
// HTTP API.
//
// Usage:
//
//	hotpathsgw -partitions http://p0:8080,http://p1:8080,... [-addr :8090]
//	           [-k 10] [-timeout 10s] [-probe 1s]
//
// Endpoints (hotpathsd's public surface, routed or merged):
//
//	POST /observe        split by owning partition and forwarded exactly once
//	POST /observe_batch  alias of /observe
//	POST /tick           epoch barrier: forwarded to every partition
//	GET  /topk           merged top-k across the fleet at one shared epoch
//	GET  /paths          merged live paths (same k/min_hotness/bbox/sort params)
//	GET  /paths.geojson  merged paths as GeoJSON
//	GET  /watch          merged SSE delta stream, one delta per shared epoch
//	GET  /stats          fleet-wide counter sums + per-partition status
//	GET  /healthz        503 while any partition is down, misdeclared or lagging
//	GET  /metrics        gateway request/fan-out/merge instruments
//
// Partition slot i of the -partitions list must be the base URL of a
// hotpathsd started with -partition-count N -partition-id i (the prober
// cross-checks the daemons' declared slots and degrades /healthz on a
// mismatch). All writes must flow through the gateway: routing is what
// keeps each object's trajectory on a single primary, and the gateway
// caches its merged read view between writes on that assumption. See the
// README's "Horizontal write scaling" section for topology and failover.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hotpaths/internal/gateway"
	"hotpaths/internal/partition"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":8090", "listen address")
		parts   = flag.String("partitions", "", "comma-separated partition base URLs, slot order (required); slot i must run hotpathsd -partition-count N -partition-id i")
		k       = flag.Int("k", 10, "default top-k for /topk and /watch (mirrors hotpathsd -k)")
		timeout = flag.Duration("timeout", 10*time.Second, "per-partition sub-request timeout")
		probe   = flag.Duration("probe", time.Second, "partition health probe interval")
	)
	flag.Parse()

	if *parts == "" {
		return fail(errors.New("-partitions is required: a comma-separated list of partition base URLs"))
	}
	var urls []string
	for _, u := range strings.Split(*parts, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	gw, err := gateway.New(gateway.Config{
		Table:          partition.NewTable(urls...),
		K:              *k,
		RequestTimeout: *timeout,
		ProbeInterval:  *probe,
	})
	if err != nil {
		return fail(err)
	}
	defer gw.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logf("listening on %s, routing %d partitions (k=%d)", *addr, len(urls), *k)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return fail(err)
		}
	case <-ctx.Done():
	}

	logf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Closing the gateway first ends open /watch fan-ins, which would
	// otherwise pin Shutdown to its timeout.
	gw.Close()
	if err := srv.Shutdown(shutCtx); err != nil {
		logf("http shutdown: %v", err)
		return 1
	}
	return 0
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hotpathsgw: "+format+"\n", args...)
}

func fail(err error) int {
	logf("%v", err)
	return 1
}

// Package bench runs the core benchmark suite outside `go test` and
// records the results as one point on the repository's bench trajectory.
//
// The suite mirrors the hot-path benchmarks in bench_test.go — ingest
// through System and Engine, durable ingest through the WAL, both crash
// recovery paths, follower replay over a loopback replication stream,
// and the snapshot query tier — driving the exact same workload
// generator (hotpaths.IngestWorkload / hotpaths.NewBenchSnapshot), so a
// point emitted by `hotpaths bench` is comparable to `go test -bench`
// output and, more importantly, to the previous checked-in point.
// Compare gates CI on that comparison.
package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"hotpaths"
	"hotpaths/internal/flightrec"
)

// Point is one benchmark's measurement.
type Point struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	ObsPerSec   float64 `json:"obs_per_sec,omitempty"`
}

// Report is a full suite run plus enough environment to judge whether
// two points are comparable at all.
type Report struct {
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	CPUs      int     `json:"cpus"`
	Points    []Point `json:"points"`
}

// The ingest benches replay the same scaled workload as bench_test.go:
// 512 objects over a 60-timestamp horizon, seed 21.
const (
	nObjects = 512
	horizon  = 60
	seed     = 21
)

func config() hotpaths.Config {
	return hotpaths.Config{
		Eps:    5,
		W:      100,
		Epoch:  10,
		K:      10,
		Bounds: hotpaths.Rect{Min: hotpaths.Pt(-3000, -3000), Max: hotpaths.Pt(4000, 4000)},
	}
}

// A benchCase couples a name with a function driven by testing.Benchmark.
// The function reports setup/verification failures through the returned
// error captured by the closure, not b.Fatal, because testing.Benchmark
// has no harness to surface a failure — it would silently yield a
// zero-iteration result.
type benchCase struct {
	name       string
	obsPerIter int // when >0, ObsPerSec is derived from ns/op
	run        func(b *testing.B) error
}

func cases() []benchCase {
	batches := hotpaths.IngestWorkload(nObjects, horizon, seed)
	ingested := nObjects * horizon

	cs := []benchCase{
		{"system_ingest", ingested, func(b *testing.B) error {
			for i := 0; i < b.N; i++ {
				sys, err := hotpaths.New(config())
				if err != nil {
					return err
				}
				for _, batch := range batches {
					for _, o := range batch {
						if err := sys.Observe(o.ObjectID, o.X, o.Y, o.T); err != nil {
							return err
						}
					}
					if err := sys.Tick(batch[0].T); err != nil {
						return err
					}
				}
			}
			return nil
		}},

		{"engine_ingest", ingested, func(b *testing.B) error {
			for i := 0; i < b.N; i++ {
				eng, err := hotpaths.NewEngine(hotpaths.EngineConfig{Config: config()})
				if err != nil {
					return err
				}
				for _, batch := range batches {
					if err := eng.ObserveBatch(batch); err != nil {
						return err
					}
					if err := eng.Tick(batch[0].T); err != nil {
						return err
					}
				}
				if err := eng.Close(); err != nil {
					return err
				}
			}
			return nil
		}},

		{"wal_append", ingested, func(b *testing.B) error {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir, err := os.MkdirTemp("", "hotpaths-bench-")
				if err != nil {
					return err
				}
				b.StartTimer()
				dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
					Config:     config(),
					Concurrent: true,
				})
				if err != nil {
					return err
				}
				for _, batch := range batches {
					if err := dur.ObserveBatch(batch); err != nil {
						return err
					}
					if err := dur.Tick(batch[0].T); err != nil {
						return err
					}
				}
				if err := dur.Sync(); err != nil {
					return err
				}
				b.StopTimer()
				if err := dur.Close(); err != nil {
					return err
				}
				os.RemoveAll(dir)
				b.StartTimer()
			}
			return nil
		}},

		{"recover_replay", ingested, recoverCase(batches, -1)},
		{"recover_checkpoint", ingested, recoverCase(batches, 0)},

		{"follower_replay", ingested, func(b *testing.B) error {
			dir, err := os.MkdirTemp("", "hotpaths-bench-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
				Config:          config(),
				FsyncInterval:   -1,
				CheckpointEvery: -1,
			})
			if err != nil {
				return err
			}
			defer dur.Close()
			for _, batch := range batches {
				if err := dur.ObserveBatch(batch); err != nil {
					return err
				}
				if err := dur.Tick(batch[0].T); err != nil {
					return err
				}
			}
			if err := dur.Sync(); err != nil {
				return err
			}
			srv := httptest.NewServer(hotpaths.NewReplicationFeed(dur, nil))
			defer srv.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := hotpaths.OpenFollower(srv.URL, hotpaths.FollowerConfig{})
				if err != nil {
					return err
				}
				for f.Replication().AppliedLSN < dur.NextLSN() {
					time.Sleep(200 * time.Microsecond)
				}
				b.StopTimer()
				if got := f.Snapshot().Stats().Observations; got != nObjects*horizon {
					f.Close()
					return fmt.Errorf("follower replayed %d observations, want %d", got, nObjects*horizon)
				}
				if err := f.Close(); err != nil {
					return err
				}
				b.StartTimer()
			}
			return nil
		}},

		{"flightrec_record", 0, func(b *testing.B) error {
			// The flight recorder sits on the WAL rotation, epoch barrier,
			// and prober paths; this point bounds the cost of one Record so
			// the ingest benches above (which run with the recorder live, as
			// production does) can attribute any drift.
			rec := flightrec.New(1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Record(flightrec.EvEpochBarrier,
					flightrec.KV("epoch", "12"),
					flightrec.KV("clock", "120"),
					flightrec.KV("paths", "64"))
			}
			if got := len(rec.Snapshot("", time.Time{}, 0)); got == 0 {
				return fmt.Errorf("recorder ring empty after %d records", b.N)
			}
			return nil
		}},

		{"snapshot_query_topk", 0, func(b *testing.B) error {
			snap := benchSnapshot(10_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := snap.Query(hotpaths.Query{}.K(10)); len(got) != 10 {
					return fmt.Errorf("topk returned %d paths, want 10", len(got))
				}
			}
			return nil
		}},

		{"snapshot_query_region", 0, func(b *testing.B) error {
			snap := benchSnapshot(10_000)
			viewports := benchViewports()
			snap.Query(hotpaths.Query{}.Region(viewports[0])) // warm the lazy index
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap.Query(hotpaths.Query{}.Region(viewports[i%len(viewports)]))
			}
			return nil
		}},
	}
	return append(cs, gatewayCases()...)
}

func recoverCase(batches [][]hotpaths.Observation, ckptEvery int64) func(b *testing.B) error {
	return func(b *testing.B) error {
		dir, err := os.MkdirTemp("", "hotpaths-bench-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
			Config:          config(),
			FsyncInterval:   -1,
			CheckpointEvery: ckptEvery,
		})
		if err != nil {
			return err
		}
		for _, batch := range batches {
			if err := dur.ObserveBatch(batch); err != nil {
				return err
			}
			if err := dur.Tick(batch[0].T); err != nil {
				return err
			}
		}
		if err := dur.Close(); err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, err := hotpaths.Recover(dir)
			if err != nil {
				return err
			}
			if got := src.Snapshot().Stats().Observations; got != nObjects*horizon {
				return fmt.Errorf("recovered %d observations, want %d", got, nObjects*horizon)
			}
		}
		return nil
	}
}

// benchSnapshot mirrors bench_test.go's generator: n short paths over a
// 16 km square with zipf-ish hotness, deterministic under seed 31.
func benchSnapshot(n int) hotpaths.Snapshot {
	rng := rand.New(rand.NewSource(31))
	bounds := hotpaths.Rect{Min: hotpaths.Pt(0, 0), Max: hotpaths.Pt(16000, 16000)}
	paths := make([]hotpaths.HotPath, n)
	for i := range paths {
		sx, sy := rng.Float64()*16000, rng.Float64()*16000
		paths[i] = hotpaths.HotPath{
			ID:      uint64(i),
			Start:   hotpaths.Pt(sx, sy),
			End:     hotpaths.Pt(sx+rng.Float64()*100-50, sy+rng.Float64()*100-50),
			Hotness: 1 + rng.Intn(64)/(1+rng.Intn(8)),
		}
	}
	return hotpaths.NewBenchSnapshot(paths, bounds, 64, 64, 10)
}

func benchViewports() []hotpaths.Rect {
	rng := rand.New(rand.NewSource(37))
	viewports := make([]hotpaths.Rect, 64)
	for i := range viewports {
		lo := hotpaths.Pt(rng.Float64()*15800, rng.Float64()*15800)
		viewports[i] = hotpaths.Rect{Min: lo, Max: hotpaths.Pt(lo.X+200, lo.Y+200)}
	}
	return viewports
}

// Run executes the suite and assembles the trajectory point. An empty
// filter runs everything; otherwise only the named benches run. Progress
// goes to stderr so stdout can stay machine-readable.
func Run(filter []string, verbose bool) (Report, error) {
	want := make(map[string]bool, len(filter))
	for _, name := range filter {
		want[name] = true
	}
	rep := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
	}
	for _, c := range cases() {
		if len(want) > 0 && !want[c.name] {
			continue
		}
		var runErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			if err := c.run(b); err != nil && runErr == nil {
				runErr = err
			}
		})
		if runErr != nil {
			return rep, fmt.Errorf("%s: %w", c.name, runErr)
		}
		if res.N == 0 {
			return rep, fmt.Errorf("%s: benchmark did not run", c.name)
		}
		p := Point{
			Name:        c.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if c.obsPerIter > 0 && p.NsPerOp > 0 {
			p.ObsPerSec = float64(c.obsPerIter) / (p.NsPerOp / 1e9)
		}
		rep.Points = append(rep.Points, p)
		if verbose {
			fmt.Fprintf(os.Stderr, "%-24s %10d ns/op %12.0f obs/s %8d B/op %6d allocs/op\n",
				c.name, int64(p.NsPerOp), p.ObsPerSec, p.BytesPerOp, p.AllocsPerOp)
		}
	}
	sort.Slice(rep.Points, func(i, j int) bool { return rep.Points[i].Name < rep.Points[j].Name })
	return rep, nil
}

// Names lists every bench in the suite, for -list and error messages.
func Names() []string {
	cs := cases()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.name
	}
	return names
}

// Load reads a previously written report.
func Load(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// WriteFile serialises the report as indented JSON, newline-terminated
// so the artifact diffs cleanly in git.
func (r Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Compare checks current against baseline and returns one line per
// regression: a bench whose ns/op grew by more than maxRegress (0.25 =
// 25%). Benches present on only one side are noted but never fail the
// gate — the suite is allowed to grow. Throughput jitter on shared CI
// runners is why the gate is deliberately loose.
func Compare(baseline, current Report, maxRegress float64) (regressions, notes []string) {
	base := make(map[string]Point, len(baseline.Points))
	for _, p := range baseline.Points {
		base[p.Name] = p
	}
	seen := make(map[string]bool, len(current.Points))
	for _, p := range current.Points {
		seen[p.Name] = true
		bp, ok := base[p.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: new bench, no baseline", p.Name))
			continue
		}
		if bp.NsPerOp <= 0 {
			continue
		}
		ratio := p.NsPerOp / bp.NsPerOp
		if ratio > 1+maxRegress {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, limit %+.0f%%)",
				p.Name, p.NsPerOp, bp.NsPerOp, (ratio-1)*100, maxRegress*100))
		}
	}
	for _, p := range baseline.Points {
		if !seen[p.Name] {
			notes = append(notes, fmt.Sprintf("%s: in baseline but not run", p.Name))
		}
	}
	return regressions, notes
}

package hotpaths

import (
	"sort"

	"hotpaths/internal/coordinator"
	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
)

// IngestWorkload exposes the deterministic random-walk workload generator
// to the external benchmark package, so the correctness tests and the
// ingest benchmarks exercise the same workload.
var IngestWorkload = engineWorkload

// NewBenchSnapshot assembles a Snapshot directly from synthetic paths, so
// the query benchmarks can exercise 10k–100k-path snapshots without
// replaying a workload of that size. Paths are put into canonical
// hottest-first order; cols/rows are the grid resolution behind Region.
func NewBenchSnapshot(paths []HotPath, bounds Rect, cols, rows, k int) Snapshot {
	mp := make([]motion.HotPath, len(paths))
	for i, hp := range paths {
		mp[i] = motion.HotPath{
			Path: motion.Path{
				ID: motion.PathID(hp.ID),
				S:  geom.Pt(hp.Start.X, hp.Start.Y),
				E:  geom.Pt(hp.End.X, hp.End.Y),
			},
			Hotness: hp.Hotness,
		}
	}
	sort.Slice(mp, func(i, j int) bool {
		if mp[i].Hotness != mp[j].Hotness {
			return mp[i].Hotness > mp[j].Hotness
		}
		li, lj := mp[i].Path.Length(), mp[j].Path.Length()
		if li != lj {
			return li > lj
		}
		return mp[i].Path.ID < mp[j].Path.ID
	})
	gb := geom.Rect{Lo: geom.Pt(bounds.Min.X, bounds.Min.Y), Hi: geom.Pt(bounds.Max.X, bounds.Max.Y)}
	return Snapshot{snap: coordinator.SnapshotOf(mp, gb, cols, rows), k: k}
}

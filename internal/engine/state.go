package engine

import (
	"fmt"
	"sort"

	"hotpaths/internal/coordinator"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/trajectory"
)

// FilterEntry is one object's filter-bank state: the RayTrace filter dump
// plus the noise levels its tolerance model was built with.
type FilterEntry struct {
	ObjectID       int
	SigmaX, SigmaY float64
	Filter         raytrace.FilterState
}

// State is the engine's complete mutable state, exported for
// checkpointing. It is deployment-agnostic: the same State restores into
// an Engine with any shard count, or into the single-goroutine
// hotpaths.System, with bit-identical future behaviour — Pending holds
// the next epoch's reports (follow-ups first, then observation-raised
// reports) in the exact order that epoch's batch will process them.
type State struct {
	Clock        trajectory.Time
	Observations int64
	Reports      int64
	Responses    int
	Pending      []coordinator.Report // next epoch's batch prefix, in order
	Filters      []FilterEntry        // sorted by object id
	Coord        coordinator.State
}

// DumpState drains the shards and captures the engine's state at one
// consistent point. The caller must guarantee no concurrent ingestion
// (hotpaths.Durable holds its write path closed while checkpointing).
// Dumping is read-only apart from moving already-raised shard reports
// into the engine's staged buffer, which the next Tick would do anyway.
func (e *Engine) DumpState() (State, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return State{}, ErrClosed
	}
	e.drainLocked()
	for _, s := range e.shards {
		e.staged = append(e.staged, s.reports...)
		s.reports = nil
	}
	sort.Slice(e.staged, func(i, j int) bool { return e.staged[i].seq < e.staged[j].seq })

	st := State{
		Clock:        e.lastNow,
		Responses:    e.responses,
		Reports:      int64(e.followed) + e.baseReported,
		Observations: e.baseObserved,
		Coord:        e.coord.DumpState(),
	}
	for _, s := range e.shards {
		st.Observations += s.observed.Load()
		st.Reports += s.reported.Load()
	}
	st.Pending = append(st.Pending, e.followUps...)
	for _, tr := range e.staged {
		st.Pending = append(st.Pending, tr.rep)
	}
	for _, s := range e.shards {
		for id, f := range s.filters {
			sig := s.sigmas[id]
			st.Filters = append(st.Filters, FilterEntry{
				ObjectID: id,
				SigmaX:   sig[0],
				SigmaY:   sig[1],
				Filter:   f.Dump(),
			})
		}
	}
	sort.Slice(st.Filters, func(i, j int) bool { return st.Filters[i].ObjectID < st.Filters[j].ObjectID })
	return st, nil
}

// RestoreState replaces the engine's state with a dumped one. The engine
// must be freshly built from the same Config (any shard count); filters
// are redistributed to the current shards by the object-id hash.
func (e *Engine) RestoreState(st State) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.drainLocked()
	if err := e.coord.RestoreState(st.Coord); err != nil {
		return err
	}
	for _, s := range e.shards {
		s.filters = make(map[int]*raytrace.Filter)
		s.sigmas = make(map[int][2]float64)
		s.reports = nil
		s.err = nil
		s.observed.Store(0)
		s.reported.Store(0)
	}
	for _, fe := range st.Filters {
		s := e.shards[e.shardIndex(fe.ObjectID)]
		if _, dup := s.filters[fe.ObjectID]; dup {
			return fmt.Errorf("engine: restored filter for object %d is duplicated", fe.ObjectID)
		}
		s.filters[fe.ObjectID] = raytrace.Restore(fe.Filter, e.cfg.Tolerance(fe.SigmaX, fe.SigmaY))
		if fe.SigmaX != 0 || fe.SigmaY != 0 {
			s.sigmas[fe.ObjectID] = [2]float64{fe.SigmaX, fe.SigmaY}
		}
	}
	// Reinstate the pending batch with fresh ascending sequence numbers:
	// reports raised after the restore get higher ones, so the next
	// epoch's merge reproduces the dumped batch order exactly.
	e.staged = nil
	e.followUps = nil
	for _, p := range st.Pending {
		e.staged = append(e.staged, taggedReport{seq: e.seq.Add(1) - 1, rep: p})
	}
	e.lastNow = st.Clock
	e.responses = st.Responses
	e.followed = 0
	e.baseObserved = st.Observations
	e.baseReported = st.Reports
	return nil
}

package tracing

import (
	"context"
	"encoding/hex"
	"net/http"
)

// Header is the W3C trace-context propagation header.
const Header = "traceparent"

// formatTraceparent renders a version-00 traceparent:
// 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>.
func formatTraceparent(tid TraceID, sid SpanID, sampled bool) string {
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = hex.AppendEncode(buf, tid[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, sid[:])
	if sampled {
		buf = append(buf, '-', '0', '1')
	} else {
		buf = append(buf, '-', '0', '0')
	}
	return string(buf)
}

// parseTraceparent parses a traceparent header value. ok is false — and the
// caller must mint a fresh root — when the header is absent, malformed,
// carries the forbidden version 0xff, or names an all-zero trace or parent
// ID. Per the spec, versions above 00 are parsed by the version-00 prefix
// rule: at least 55 chars, and any extra content must start with '-'.
func parseTraceparent(s string) (tid TraceID, parent SpanID, sampled, ok bool) {
	if len(s) < 55 {
		return tid, parent, false, false
	}
	ver, e := hexByte(s[0], s[1])
	if e != nil || ver == 0xff {
		return tid, parent, false, false
	}
	if ver == 0 && len(s) != 55 {
		return tid, parent, false, false
	}
	if len(s) > 55 && s[55] != '-' {
		return tid, parent, false, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tid, parent, false, false
	}
	// The spec mandates lowercase hex throughout (hex.Decode would also
	// accept uppercase).
	for i := 3; i < 52; i++ {
		if i == 35 {
			continue
		}
		if _, ok := hexNibble(s[i]); !ok {
			return tid, parent, false, false
		}
	}
	if _, err := hex.Decode(tid[:], []byte(s[3:35])); err != nil {
		return TraceID{}, parent, false, false
	}
	if _, err := hex.Decode(parent[:], []byte(s[36:52])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	flags, e := hexByte(s[53], s[54])
	if e != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if tid.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	return tid, parent, flags&0x01 != 0, true
}

type hexError struct{}

func (hexError) Error() string { return "tracing: invalid hex digit" }

func hexByte(hi, lo byte) (byte, error) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	if !ok1 || !ok2 {
		return 0, hexError{}
	}
	return h<<4 | l, nil
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	// The spec mandates lowercase hex; uppercase is malformed.
	return 0, false
}

// Inject stamps the context's trace onto an outbound request's headers so
// the receiving process continues the same trace. No-op on an unrecorded
// context.
func Inject(ctx context.Context, h http.Header) {
	s := FromContext(ctx)
	if s == nil {
		return
	}
	h.Set(Header, formatTraceparent(s.tr.id, s.id, s.tr.sampled))
}

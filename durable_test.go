package hotpaths_test

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hotpaths"
	"hotpaths/internal/wal"
)

func durableTestConfig() hotpaths.Config {
	return hotpaths.Config{
		Eps:    5,
		W:      60,
		Epoch:  10,
		K:      10,
		Bounds: hotpaths.Rect{Min: hotpaths.Pt(-3000, -3000), Max: hotpaths.Pt(4000, 4000)},
	}
}

// feed drives src with the workload: per timestamp, the batch's
// observations then one tick (errors are fatal — this workload is clean).
func feed(t *testing.T, src hotpaths.Source, batches [][]hotpaths.Observation) {
	t.Helper()
	for _, batch := range batches {
		for _, o := range batch {
			if err := src.Observe(o.ObjectID, o.X, o.Y, o.T); err != nil {
				t.Fatal(err)
			}
		}
		if err := src.Tick(batch[0].T); err != nil {
			t.Fatal(err)
		}
	}
}

// assertSameState asserts two sources are bit-identical on their public
// read surface: every live path, the counters and the clock.
func assertSameState(t *testing.T, label string, want, got hotpaths.Snapshot) {
	t.Helper()
	if w, g := want.Clock(), got.Clock(); w != g {
		t.Errorf("%s: clock %d != %d", label, g, w)
	}
	if w, g := want.Stats(), got.Stats(); w != g {
		t.Errorf("%s: stats diverge:\n want %+v\n got  %+v", label, w, g)
	}
	if w, g := want.HotPaths(), got.HotPaths(); !reflect.DeepEqual(w, g) {
		t.Errorf("%s: hot paths diverge: want %d paths, got %d", label, len(w), len(g))
	}
	if w, g := want.Score(), got.Score(); w != g {
		t.Errorf("%s: score %v != %v", label, g, w)
	}
}

// A Durable deployment must be indistinguishable from the in-memory
// System it wraps, and Recover must reproduce it from disk alone.
func TestDurableMatchesSystem(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		t.Run(fmt.Sprintf("concurrent=%v", concurrent), func(t *testing.T) {
			cfg := durableTestConfig()
			dir := t.TempDir()
			batches := hotpaths.IngestWorkload(48, 120, 42)

			sys, err := hotpaths.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
				Config:        cfg,
				Concurrent:    concurrent,
				FsyncInterval: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			feed(t, sys, batches)
			feed(t, dur, batches)

			want := sys.Snapshot()
			assertSameState(t, "live durable vs system", want, dur.Snapshot())
			if err := dur.Close(); err != nil {
				t.Fatal(err)
			}

			rec, err := hotpaths.Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			assertSameState(t, "recovered vs system", want, rec.Snapshot())
		})
	}
}

// Restarting a durable deployment mid-stream — checkpoint on close,
// recover on open — must not perturb the state: a run split across three
// processes equals one uninterrupted in-memory run.
func TestDurableRestartContinuity(t *testing.T) {
	cfg := durableTestConfig()
	dcfg := hotpaths.DurableConfig{Config: cfg, FsyncInterval: -1, SegmentBytes: 4096}
	dir := t.TempDir()
	batches := hotpaths.IngestWorkload(48, 150, 7)

	sys, err := hotpaths.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, sys, batches)

	cuts := []int{0, 47, 103, len(batches)} // uneven, mid-epoch splits
	for i := 0; i+1 < len(cuts); i++ {
		dur, err := hotpaths.OpenDurable(dir, dcfg)
		if err != nil {
			t.Fatalf("open #%d: %v", i, err)
		}
		feed(t, dur, batches[cuts[i]:cuts[i+1]])
		if i == 1 {
			if _, err := dur.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := dur.Close(); err != nil {
			t.Fatal(err)
		}
	}

	rec, err := hotpaths.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, "split run vs uninterrupted", sys.Snapshot(), rec.Snapshot())

	// Reopening with a different Config must be refused: replaying a
	// journal under different parameters silently breaks determinism.
	bad := dcfg
	bad.Eps = 7
	if _, err := hotpaths.OpenDurable(dir, bad); err == nil {
		t.Error("OpenDurable with mismatched config must fail")
	}
}

// cutDir clones a durable directory as it would look if the process had
// crashed once the first `keep` journal bytes had reached disk: full
// segments before the cut survive, the segment containing it is torn
// mid-file, later segments never existed. Checkpoint and meta files are
// carried over verbatim.
func cutDir(t *testing.T, src string, keep int64) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			segs = append(segs, e.Name())
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(segs) // zero-padded LSNs sort lexicographically
	left := keep
	for _, name := range segs {
		if left <= 0 {
			break
		}
		b, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(b)) > left {
			b = b[:left]
		}
		if err := os.WriteFile(filepath.Join(dst, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
		left -= int64(len(b))
	}
	return dst
}

// oldestSegStart returns the start LSN of the directory's oldest
// surviving segment (parsed from the zero-padded filename).
func oldestSegStart(t *testing.T, dir string) uint64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	best := uint64(math.MaxUint64)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || filepath.Ext(name) != ".seg" {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n < best {
			best = n
		}
	}
	if best == math.MaxUint64 {
		t.Fatal("no segments in", dir)
	}
	return best
}

// walSize sums the directory's segment bytes.
func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			info, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			total += info.Size()
		}
	}
	return total
}

// replayPrefix rebuilds the state an uninterrupted run would have had
// after the journal's first n records, using the test's own copy of the
// input stream.
func replayPrefix(t *testing.T, cfg hotpaths.Config, recs []wal.Record, n uint64) hotpaths.Snapshot {
	t.Helper()
	sys, err := hotpaths.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[:n] {
		switch r.Kind {
		case wal.KindObserve:
			if err := sys.Observe(int(r.ObjectID), r.X, r.Y, r.T); err != nil {
				t.Fatal(err)
			}
		case wal.KindTick:
			if err := sys.Tick(r.T); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sys.Snapshot()
}

// The crash-recovery golden test: cut the journal at arbitrary byte
// offsets — including mid-record torn tails — recover, and require the
// recovered state to be bit-identical to an uninterrupted run over the
// longest decodable record prefix.
func TestCrashRecoveryGolden(t *testing.T) {
	cfg := durableTestConfig()
	dir := t.TempDir()
	batches := hotpaths.IngestWorkload(32, 100, 11)

	dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
		Config:          cfg,
		FsyncInterval:   -1,
		SegmentBytes:    8 << 10, // several segments
		CheckpointEvery: -1,      // keep the whole journal for full-prefix replay
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, dur, batches)
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal must be a faithful transcript of the input stream.
	var recs []wal.Record
	if err := wal.ReadFrom(dir, 0, func(lsn uint64, r wal.Record) error {
		if lsn != uint64(len(recs)) {
			t.Fatalf("journal LSN %d out of order", lsn)
		}
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	wantRecords := 0
	for _, b := range batches {
		wantRecords += len(b) + 1
	}
	if len(recs) != wantRecords {
		t.Fatalf("journal holds %d records, fed %d", len(recs), wantRecords)
	}

	total := walSize(t, dir)
	// Deterministic cuts: tiny prefixes, odd unaligned offsets, spread
	// through every segment, and the exact end.
	cuts := []int64{0, 1, 7, 13, 58, 115, total - 1, total - 7, total}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 12; i++ {
		cuts = append(cuts, rng.Int63n(total))
	}
	for _, cut := range cuts {
		if cut < 0 {
			continue
		}
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			crashed := cutDir(t, dir, cut)
			rec, err := hotpaths.Recover(crashed)
			if err != nil {
				t.Fatal(err)
			}
			// The longest decodable prefix of the torn journal.
			n := uint64(0)
			if err := wal.ReadFrom(crashed, 0, func(lsn uint64, r wal.Record) error {
				if r != recs[lsn] {
					t.Fatalf("record %d differs after cut", lsn)
				}
				n = lsn + 1
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			assertSameState(t, "recovered vs longest-prefix replay",
				replayPrefix(t, cfg, recs, n), rec.Snapshot())
		})
	}
}

// Same golden property when a checkpoint has truncated the journal's
// head: recovery = checkpoint + decodable tail, which must equal the
// uninterrupted prefix run even though the early records are gone.
func TestCrashRecoveryAfterCheckpoint(t *testing.T) {
	cfg := durableTestConfig()
	dir := t.TempDir()
	batches := hotpaths.IngestWorkload(32, 100, 13)

	dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
		Config:          cfg,
		FsyncInterval:   -1,
		SegmentBytes:    8 << 10,
		CheckpointEvery: -1, // only the explicit mid-run checkpoint below
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, dur, batches[:60])
	ckptLSN, err := dur.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	feed(t, dur, batches[60:])
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}

	// Keep the test honest: the head must actually be gone.
	firstSurviving := oldestSegStart(t, dir)
	if firstSurviving == 0 {
		t.Fatalf("checkpoint at LSN %d did not truncate the journal head", ckptLSN)
	}

	// recs is the test's transcript of the full input stream, by LSN.
	var recs []wal.Record
	for _, b := range batches {
		for _, o := range b {
			recs = append(recs, wal.Record{Kind: wal.KindObserve, ObjectID: int64(o.ObjectID), T: o.T, X: o.X, Y: o.Y})
		}
		recs = append(recs, wal.Record{Kind: wal.KindTick, T: b[0].T})
	}

	total := walSize(t, dir)
	// A real crash cannot lose bytes that were fsynced before the
	// checkpoint was written (checkpointing commits the journal first),
	// so cuts start at the checkpoint's byte position in the surviving
	// stream: total minus the framed size of the records after it.
	var tailBytes int64
	for _, r := range recs[ckptLSN:] {
		frame, err := wal.AppendRecord(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		tailBytes += int64(len(frame))
	}
	minCut := total - tailBytes
	rng := rand.New(rand.NewSource(101))
	cuts := []int64{minCut, minCut + 3, total - 5, total}
	for i := 0; i < 8; i++ {
		cuts = append(cuts, minCut+rng.Int63n(total-minCut))
	}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			crashed := cutDir(t, dir, cut)
			rec, err := hotpaths.Recover(crashed)
			if err != nil {
				t.Fatal(err)
			}
			n := ckptLSN // with the whole tail gone, the checkpoint state stands
			if err := wal.ReadFrom(crashed, oldestSegStart(t, crashed), func(lsn uint64, r wal.Record) error {
				if r != recs[lsn] {
					t.Fatalf("record %d differs after cut", lsn)
				}
				if lsn+1 > n {
					n = lsn + 1
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			assertSameState(t, "recovered vs prefix replay",
				replayPrefix(t, cfg, recs, n), rec.Snapshot())
		})
	}
}

// Concurrent producers hammering a Durable Engine under -race: whatever
// interleaving the journal fixed, recovery must reproduce the exact final
// state.
func TestDurableConcurrentProducers(t *testing.T) {
	cfg := durableTestConfig()
	dir := t.TempDir()
	const producers = 4
	batches := hotpaths.IngestWorkload(64, 80, 17)

	dur, err := hotpaths.OpenDurable(dir, hotpaths.DurableConfig{
		Config:     cfg,
		Concurrent: true,
		Shards:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches {
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			part := make([]hotpaths.Observation, 0, len(batch)/producers+1)
			for _, o := range batch {
				if o.ObjectID%producers == p {
					part = append(part, o)
				}
			}
			wg.Add(1)
			go func(part []hotpaths.Observation) {
				defer wg.Done()
				if err := dur.ObserveBatch(part); err != nil {
					t.Error(err)
				}
			}(part)
		}
		wg.Wait()
		if err := dur.Tick(batch[0].T); err != nil {
			t.Fatal(err)
		}
	}
	want := dur.Snapshot()
	st := dur.WAL()
	if st.Records == 0 || st.Checkpoints == 0 {
		t.Fatalf("journal inactive: %+v", st)
	}
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := hotpaths.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, "recovered vs live concurrent", want, rec.Snapshot())
}

func TestRecoverErrors(t *testing.T) {
	if _, err := hotpaths.Recover(t.TempDir()); err == nil {
		t.Error("Recover on an empty directory must fail (no meta)")
	}
}

// Package engine implements the concurrent, object-sharded ingestion
// pipeline behind hotpaths.Engine.
//
// # Architecture
//
// Observations hash by object id to one of N shards. Each shard is a
// goroutine owning the RayTrace filters of its objects, fed through a
// buffered queue, so per-object timestamp order is preserved (observations
// for one object always land on one shard, and queues are FIFO per
// sender). Filters run concurrently across shards; the coordinator tier
// stays single-threaded.
//
// Every observation is stamped with a global sequence number when it
// enters the engine. When a filter emits a state report, the report
// carries the sequence number of the observation that triggered it. At an
// epoch boundary Tick raises a flush barrier — a token per shard queue,
// acknowledged once everything queued before it has been processed — then
// gathers the shards' report buffers, sorts them by sequence number, and
// prepends the follow-up reports produced by the previous epoch's
// responses. That is exactly the batch order the single-threaded
// hotpaths.System would have produced for the same input order, so the
// coordinator's order-sensitive SinglePath processing yields bit-identical
// paths, hotness and counters.
//
// # Synchronisation
//
// A single RWMutex protects the coordinator tier and the engine clock:
// ingestion takes the read lock (many producers run concurrently, touching
// only the sequence counter and the shard queues), while Tick and Close
// take the write lock. While Tick holds the write lock no producer can
// enqueue, so after the flush barrier the shard goroutines are guaranteed
// idle and Tick may touch their filter banks directly — delivering epoch
// responses without any per-message channel round trips. Queries
// (TopK/AllPaths/Score/Stats) take the read lock: the coordinator is only
// mutated under the write lock, so they are safe concurrently with
// ingestion.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hotpaths/internal/coordinator"
	"hotpaths/internal/flightrec"
	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
	"hotpaths/internal/partition"
	"hotpaths/internal/raytrace"
	"hotpaths/internal/tracing"
	"hotpaths/internal/trajectory"
)

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("engine: closed")

// Observation is one location measurement. SigmaX/SigmaY, when positive,
// carry the measurement's Gaussian noise for the (ε,δ) tolerance model.
type Observation struct {
	ObjectID       int
	P              geom.Point
	T              trajectory.Time
	SigmaX, SigmaY float64
}

// Config parameterises an engine. The coordinator and tolerance factory
// are built by the public hotpaths package so that System and Engine share
// one configuration surface.
type Config struct {
	// Coord is the coordinator tier processing epoch batches (required).
	Coord *coordinator.Coordinator

	// Epoch is the coordinator cadence Λ in timestamps (required, positive).
	Epoch trajectory.Time

	// Tolerance builds the per-object tolerance model from the noise levels
	// of the object's first observation (required).
	Tolerance func(sigmaX, sigmaY float64) raytrace.ToleranceFunc

	// Shards is the number of filter shards (default: GOMAXPROCS).
	Shards int

	// Buffer is the per-shard queue capacity in messages (default 256).
	Buffer int

	// OnEpoch, when set, is invoked once per epoch-boundary Tick — after
	// the merged batch has been processed, responses delivered and the
	// window advanced. Its arguments are captured under the write lock
	// (so they are always a consistent post-epoch view), but the call
	// itself runs after the lock is released, so the callback's fan-out
	// cost never stalls ingestion. Callers that violate the Tick
	// contract by ticking concurrently (the daemon's HTTP surface can)
	// may therefore deliver callbacks out of epoch order — never torn
	// state — so the callback must tolerate a stale view arriving after
	// a newer one (the hotpaths hub drops them by epoch number).
	OnEpoch func(snap *coordinator.Snapshot, now trajectory.Time, st Stats)

	// EpochWanted, when set alongside OnEpoch, is consulted under the
	// lock before the snapshot is captured: returning false skips both
	// the O(paths) capture and the callback for that epoch. It lets the
	// owner pay nothing while nobody subscribes.
	EpochWanted func() bool
}

// Stats aggregates the engine's counters. While ingestion is in flight the
// Observations/Reports counters are eventually consistent; after a Tick at
// an epoch boundary they are exact.
type Stats struct {
	Observations int
	Reports      int
	Responses    int
	IndexSize    int
	Coordinator  coordinator.Stats
}

// Engine is the sharded ingestion pipeline. See the package comment for
// the concurrency contract.
type Engine struct {
	cfg    Config
	shards []*shard
	seq    atomic.Uint64

	mu        sync.RWMutex // write: Tick/Close; read: ingestion and queries
	coord     *coordinator.Coordinator
	lastNow   trajectory.Time
	staged    []taggedReport       // shard reports collected but not yet processed
	followUps []coordinator.Report // reports raised by the previous epoch's responses
	responses int
	followed  int // follow-up reports, counted into Stats.Reports
	// Counter baselines carried over from a restored checkpoint (the
	// shard-level atomics restart at zero after RestoreState).
	baseObserved int64
	baseReported int64
	closed       bool
}

// New validates cfg and starts the shard goroutines.
func New(cfg Config) (*Engine, error) {
	if cfg.Coord == nil {
		return nil, fmt.Errorf("engine: Config.Coord is required")
	}
	if cfg.Epoch <= 0 {
		return nil, fmt.Errorf("engine: Config.Epoch must be positive, got %d", cfg.Epoch)
	}
	if cfg.Tolerance == nil {
		return nil, fmt.Errorf("engine: Config.Tolerance is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	e := &Engine{cfg: cfg, coord: cfg.Coord}
	for i := 0; i < cfg.Shards; i++ {
		s := newShard(cfg.Buffer, cfg.Tolerance)
		e.shards = append(e.shards, s)
		go s.run()
	}
	return e, nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// shardIndex hashes an object id to its shard. The hash lives in
// internal/partition — the same deterministic map a scatter-gather
// gateway uses to route objects across whole primaries — so "which shard
// inside an engine" and "which partition of a fleet" are one function at
// two scales.
func (e *Engine) shardIndex(objectID int) int {
	return partition.Index(objectID, len(e.shards))
}

// Observe enqueues a single observation without the batching overhead of
// ObserveBatch (no per-shard grouping allocations). See ObserveBatch for
// the ordering contract.
func (e *Engine) Observe(o Observation) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	one := obs{Observation: o, seq: e.seq.Add(1) - 1}
	e.shards[e.shardIndex(o.ObjectID)].ch <- msg{one: one, hasOne: true}
	mObservations.Inc()
	return nil
}

// ObserveBatch enqueues a batch of observations, preserving their order
// per object. It is safe to call from many goroutines, but observations
// for the same object must be produced in timestamp order by a single
// producer (or otherwise externally ordered). Processing is asynchronous:
// per-observation errors (e.g. a non-increasing timestamp) surface from
// the next epoch-boundary Tick.
func (e *Engine) ObserveBatch(batch []Observation) error {
	return e.ObserveBatchCtx(context.Background(), batch)
}

// ObserveBatchCtx is ObserveBatch recording a span on the context's trace.
// Span granularity is one span per batch, never per record; on an
// unrecorded context the only cost is the context check.
func (e *Engine) ObserveBatchCtx(ctx context.Context, batch []Observation) error {
	if len(batch) == 0 {
		return nil
	}
	_, span := tracing.StartSpan(ctx, "engine.observe_batch")
	span.SetAttr("records", len(batch))
	defer span.End()
	t0 := time.Now()
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	n := uint64(len(batch))
	base := e.seq.Add(n) - n
	groups := make([][]obs, len(e.shards))
	for i, o := range batch {
		si := e.shardIndex(o.ObjectID)
		groups[si] = append(groups[si], obs{Observation: o, seq: base + uint64(i)})
	}
	for si, g := range groups {
		if len(g) > 0 {
			e.shards[si].ch <- msg{obs: g}
		}
	}
	mObservations.Add(uint64(len(batch)))
	mObserveBatch.ObserveSince(t0)
	return nil
}

// Tick advances the engine clock to now. The hotness window slides every
// tick; at epoch boundaries — whenever the clock reaches or crosses a
// multiple of Config.Epoch, so sparse client-driven clocks cannot skip an
// epoch — the engine drains all shards, merges their reports back into
// arrival order, runs the coordinator's SinglePath batch, and re-seeds the
// reporting filters.
// Tick must not be called concurrently with itself; it is safe
// concurrently with ObserveBatch, but observations racing a Tick may only
// be counted in a later epoch — callers wanting the System-identical
// schedule must order Observe-before-Tick themselves.
func (e *Engine) Tick(now trajectory.Time) error {
	return e.TickCtx(context.Background(), now)
}

// TickCtx is Tick recording spans on the context's trace: an engine.tick
// span per epoch-boundary batch, with an engine.epoch_barrier child timing
// the shard drain.
func (e *Engine) TickCtx(ctx context.Context, now trajectory.Time) error {
	err, view := e.tick(ctx, now)
	if view != nil {
		// Captured under the write lock, delivered outside it: the
		// callback's fan-out work never stalls ingestion. See
		// Config.OnEpoch for the ordering caveat.
		e.cfg.OnEpoch(view.snap, view.now, view.st)
	}
	return err
}

// epochView is the OnEpoch argument set, captured atomically with the
// epoch that produced it.
type epochView struct {
	snap *coordinator.Snapshot
	now  trajectory.Time
	st   Stats
}

// tick is Tick under the write lock; a non-nil view means an epoch batch
// was processed and OnEpoch should run with it.
func (e *Engine) tick(ctx context.Context, now trajectory.Time) (err error, view *epochView) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed, nil
	}
	if now <= e.lastNow {
		return fmt.Errorf("engine: Tick(%d) after Tick(%d); time must advance", now, e.lastNow), nil
	}
	prev := e.lastNow
	e.lastNow = now
	e.coord.Advance(now)
	if now/e.cfg.Epoch == prev/e.cfg.Epoch {
		return nil, nil
	}
	tEpoch := time.Now()
	ctx, span := tracing.StartSpan(ctx, "engine.tick")
	span.SetAttr("now", int64(now))
	defer span.End()
	depth := 0
	for _, s := range e.shards {
		depth += len(s.ch)
	}
	mQueueDepth.Set(int64(depth))
	_, barrier := tracing.StartSpan(ctx, "engine.epoch_barrier")
	barrier.SetAttr("queue_depth", depth)
	e.drainLocked()
	barrier.End()
	mBarrier.ObserveSince(tEpoch)
	var nReports, nResponses int
	defer func() {
		mEpochs.Inc()
		d := time.Since(tEpoch)
		mTick.Observe(d.Seconds())
		// One event per epoch barrier (batch granularity), carrying the
		// trace ID when the tick ran inside a traced request.
		flightrec.Default.RecordCtx(ctx, flightrec.EvEpochBarrier,
			flightrec.KV("now", int64(now)),
			flightrec.KV("duration_us", d.Microseconds()),
			flightrec.KV("queue_depth", depth),
			flightrec.KV("reports", nReports),
			flightrec.KV("responses", nResponses))
	}()

	// Collect this epoch's shard reports and restore arrival order.
	// Shard errors (e.g. one object's non-increasing timestamps) are
	// informational — the bad observation was skipped, exactly as a
	// System caller that ignores an Observe error would skip it — so the
	// epoch still processes everyone else's reports.
	var errs []error
	for _, s := range e.shards {
		e.staged = append(e.staged, s.reports...)
		s.reports = nil
		if s.err != nil {
			errs = append(errs, fmt.Errorf("engine: %w", s.err))
			s.err = nil
		}
	}
	sort.Slice(e.staged, func(i, j int) bool { return e.staged[i].seq < e.staged[j].seq })

	batch := make([]coordinator.Report, 0, len(e.followUps)+len(e.staged))
	batch = append(batch, e.followUps...)
	for _, tr := range e.staged {
		batch = append(batch, tr.rep)
	}
	resps, perr := e.coord.ProcessEpoch(batch)
	span.SetAttr("reports", len(batch))
	span.SetAttr("responses", len(resps))
	nReports, nResponses = len(batch), len(resps)
	e.staged = e.staged[:0]
	e.followUps = nil
	if perr != nil {
		// Validation is deterministic per report, so a rejected batch can
		// never succeed later; it is dropped rather than wedging every
		// future epoch (mirrors System.Tick). RayTrace filters cannot
		// produce such reports.
		errs = append(errs, perr)
		return errors.Join(errs...), nil
	}
	// A sparse clock that jumped more than W past the reports' exit
	// timestamps makes the just-recorded crossings already stale; expire
	// them now so TopK/Score never surface phantom hot paths.
	e.coord.Advance(now)
	for _, r := range resps {
		e.responses++
		st, report, err := e.shards[e.shardIndex(r.ObjectID)].filters[r.ObjectID].Respond(r.End)
		if err != nil {
			// Respond validates before mutating, so the filter stays
			// waiting; keep delivering the remaining responses rather
			// than leaving other filters un-reseeded.
			errs = append(errs, fmt.Errorf("engine: respond to object %d: %w", r.ObjectID, err))
			continue
		}
		if report {
			e.followUps = append(e.followUps, coordinator.Report{ObjectID: r.ObjectID, State: st})
			e.followed++
		}
	}
	if e.cfg.OnEpoch != nil && (e.cfg.EpochWanted == nil || e.cfg.EpochWanted()) {
		//hotpathsvet:ignore locksnapshot epoch views are EpochWanted-gated and the snapshot must be consistent with this tick's staged reports, which only the lock guarantees
		view = &epochView{snap: e.coord.Snapshot(), now: e.lastNow, st: e.statsLocked()}
	}
	return errors.Join(errs...), view
}

// drainLocked flushes every shard queue and waits until all shards are
// idle. Caller holds the write lock, so no new work can be enqueued.
func (e *Engine) drainLocked() {
	acks := make([]chan struct{}, len(e.shards))
	for i, s := range e.shards {
		acks[i] = make(chan struct{})
		//hotpathsvet:ignore locksnapshot flush barrier: shards always drain their queue, and the lock is exactly what keeps new senders out while they do
		s.ch <- msg{flush: acks[i]}
	}
	for _, ack := range acks {
		<-ack
	}
}

// Close drains the shards and stops their goroutines. Queries remain
// valid after Close, reflecting the last processed epoch; ingestion and
// Tick return ErrClosed. Close returns the first unprocessed shard error,
// if any. It is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.drainLocked()
	var firstErr error
	for _, s := range e.shards {
		if s.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("engine: %w", s.err)
		}
		close(s.ch)
		<-s.done
	}
	return firstErr
}

// TopK returns the k hottest motion paths, hottest first.
func (e *Engine) TopK(k int) []motion.HotPath {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.coord.TopK(k)
}

// AllPaths returns every live motion path, hottest first.
func (e *Engine) AllPaths() []motion.HotPath {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.coord.AllPaths()
}

// Score returns the paper's quality metric over the current top-k set.
func (e *Engine) Score(k int) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.coord.Score(k)
}

// Clock returns the timestamp of the last Tick — cheap (no snapshot, no
// path copies), for monitoring probes.
func (e *Engine) Clock() trajectory.Time {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lastNow
}

// Stats returns the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.statsLocked()
}

func (e *Engine) statsLocked() Stats {
	st := Stats{
		Observations: int(e.baseObserved),
		Reports:      e.followed + int(e.baseReported),
		Responses:    e.responses,
		IndexSize:    e.coord.IndexSize(),
		Coordinator:  e.coord.Stats(),
	}
	for _, s := range e.shards {
		st.Observations += int(s.observed.Load())
		st.Reports += int(s.reported.Load())
	}
	return st
}

// Snapshot extracts an immutable copy of the coordinator's path store
// together with the engine clock and counters, all read at one consistent
// point under the engine lock. The snapshot is safe to share across
// goroutines while ingestion continues; it reflects the last processed
// epoch (reports still queued in the shards are not included until their
// epoch-boundary Tick).
func (e *Engine) Snapshot() (*coordinator.Snapshot, trajectory.Time, Stats) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.coord.Snapshot(), e.lastNow, e.statsLocked()
}

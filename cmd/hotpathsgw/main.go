// Command hotpathsgw is the scatter-gather gateway for a partitioned
// hotpathsd fleet: N independent -wal primaries, each owning the objects
// that hash to its partition, behind one endpoint that speaks hotpathsd's
// HTTP API.
//
// Usage:
//
//	hotpathsgw -partitions http://p0:8080,http://p1:8080,... [-addr :8090]
//	           [-k 10] [-timeout 10s] [-probe 1s] [-pprof localhost:6061]
//	           [-log-format text|json] [-trace-sample 0.01] [-trace-slow 250ms]
//
// Endpoints (hotpathsd's public surface, routed or merged):
//
//	POST /observe        split by owning partition and forwarded exactly once
//	POST /observe_batch  alias of /observe
//	POST /tick           epoch barrier: forwarded to every partition
//	GET  /topk           merged top-k across the fleet at one shared epoch
//	GET  /paths          merged live paths (same k/min_hotness/bbox/sort params)
//	GET  /paths.geojson  merged paths as GeoJSON
//	GET  /watch          merged SSE delta stream, one delta per shared epoch
//	GET  /stats          fleet-wide counter sums + per-partition status
//	GET  /healthz        503 while any partition is down, misdeclared or lagging
//	GET  /metrics        gateway request/fan-out/merge instruments
//
// With -pprof ADDR a second, admin-only listener serves net/http/pprof
// under /debug/pprof/, another /metrics mount, and the distributed-tracing
// ring under /debug/traces — the same admin surface hotpathsd exposes.
//
// Tracing: -trace-sample P records that fraction of requests; each
// partition leg becomes a child span and the trace context propagates to
// the partitions in the traceparent header, so a gateway write shows up as
// one trace spanning the gateway and every touched hotpathsd (start the
// daemons with -pprof to read their half from /debug/traces/{id}).
// -trace-slow D force-traces and logs any request slower than D even when
// unsampled. Logs go to stderr via log/slog; -log-format json switches
// them to one-JSON-object-per-line.
//
// Partition slot i of the -partitions list must be the base URL of a
// hotpathsd started with -partition-count N -partition-id i (the prober
// cross-checks the daemons' declared slots and degrades /healthz on a
// mismatch). All writes must flow through the gateway: routing is what
// keeps each object's trajectory on a single primary, and the gateway
// caches its merged read view between writes on that assumption. See the
// README's "Horizontal write scaling" section for topology and failover.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hotpaths/internal/flightrec"
	"hotpaths/internal/gateway"
	"hotpaths/internal/partition"
	"hotpaths/internal/tracing"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		parts    = flag.String("partitions", "", "comma-separated partition base URLs, slot order (required); slot i must run hotpathsd -partition-count N -partition-id i")
		k        = flag.Int("k", 10, "default top-k for /topk and /watch (mirrors hotpathsd -k)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-partition sub-request timeout")
		probe    = flag.Duration("probe", time.Second, "partition health probe interval")
		pprofA   = flag.String("pprof", "", "admin listen address (e.g. localhost:6061) serving net/http/pprof, /metrics and /debug/traces; empty disables it")
		logFmt   = flag.String("log-format", "text", "log output format: text or json")
		trSample = flag.Float64("trace-sample", 0, "fraction of requests to trace in [0,1]; sampled traces are kept in the /debug/traces ring")
		trSlow   = flag.Duration("trace-slow", 0, "force-trace and log any request slower than this (0 disables); works even with -trace-sample 0")
		frDump   = flag.String("flightrec-dump", "", "directory for a flight-recorder ring dump on shutdown; empty disables it")
	)
	flag.Parse()

	if err := tracing.SetupSlog(*logFmt, "hotpathsgw"); err != nil {
		fmt.Fprintf(os.Stderr, "hotpathsgw: %v\n", err)
		return 1
	}
	if *trSample < 0 || *trSample > 1 {
		return fail(fmt.Errorf("-trace-sample must be in [0,1], got %g", *trSample))
	}
	tracing.Default.Configure("hotpathsgw", *trSample, *trSlow)

	if *parts == "" {
		return fail(errors.New("-partitions is required: a comma-separated list of partition base URLs"))
	}
	var urls []string
	for _, u := range strings.Split(*parts, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	gw, err := gateway.New(gateway.Config{
		Table:          partition.NewTable(urls...),
		K:              *k,
		RequestTimeout: *timeout,
		ProbeInterval:  *probe,
	})
	if err != nil {
		return fail(err)
	}
	defer gw.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	var admin *http.Server
	if *pprofA != "" {
		admin = &http.Server{
			Addr:              *pprofA,
			Handler:           adminHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if admin != nil {
		go func() {
			if err := admin.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("admin listener: %w", err)
			}
		}()
		slog.Info("admin listener up (pprof + metrics + traces)", "addr", *pprofA)
	}
	slog.Info("listening", "addr", *addr, "partitions", len(urls), "k", *k)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return fail(err)
		}
	case <-ctx.Done():
	}

	slog.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Closing the gateway first ends open /watch fan-ins, which would
	// otherwise pin Shutdown to its timeout.
	gw.Close()
	code := 0
	if err := srv.Shutdown(shutCtx); err != nil {
		slog.Error("http shutdown failed", "error", err)
		code = 1
	}
	if admin != nil {
		if err := admin.Shutdown(shutCtx); err != nil {
			slog.Error("admin shutdown failed", "error", err)
			code = 1
		}
	}
	if *frDump != "" {
		if path, err := flightrec.Default.DumpTo(*frDump, "shutdown"); err != nil {
			slog.Error("flight-recorder dump failed", "error", err)
			code = 1
		} else {
			slog.Info("flight-recorder dump written", "path", path)
		}
	}
	return code
}

func fail(err error) int {
	slog.Error("startup failed", "error", err)
	return 1
}

// Package workload simulates the paper's moving-object population
// (Section 6.1). Objects travel on the road network with a fixed
// displacement s per move and take one noisy location measurement per move
// (white noise uniform in [−err, +err] per coordinate); at any instant only
// a fraction α (the agility) of the population is moving. Leaving a node,
// an object picks the next link with probability proportional to the link's
// class weight, which concentrates traffic on major roads.
//
// Two movement models realise the agility parameter:
//
//   - IID: the paper's literal reading — at every timestamp each object
//     independently moves with probability α. The inter-arrival times of an
//     object's measurements are then geometric, which makes its position a
//     random staircase over wall-clock time.
//
//   - Bursty (default): a traffic interpretation — objects drive at full
//     speed (one move per timestamp) and stop at red lights when they reach
//     a crossroads, with stop durations calibrated so the long-run moving
//     fraction is α. Movement between stops has constant velocity, so
//     trajectory approximation errors concentrate at intersections — the
//     same locations for every object — exactly as in real road traffic.
//     DESIGN.md discusses why this substitution is needed to reproduce the
//     paper's evaluation shapes.
package workload

import (
	"fmt"
	"math/rand"

	"hotpaths/internal/geom"
	"hotpaths/internal/roadnet"
	"hotpaths/internal/trajectory"
)

// MovementModel selects how agility is realised.
type MovementModel int

const (
	// Bursty is the traffic-light model (default).
	Bursty MovementModel = iota
	// IID is the independent per-timestamp coin-flip model.
	IID
)

func (m MovementModel) String() string {
	if m == IID {
		return "iid"
	}
	return "bursty"
}

// Config parameterises a simulated population.
type Config struct {
	N       int     // number of objects (paper default 20,000)
	Agility float64 // long-run fraction of objects moving per timestamp (default 0.1)
	Step    float64 // displacement s per move, metres (default 10)
	Err     float64 // positional white-noise amplitude, metres (default 1)
	Seed    int64   // RNG seed
	Model   MovementModel
	// StopProb is the probability of a red light when reaching a node
	// (Bursty model only; default 0.4).
	StopProb float64
}

// Measurement is one noisy location reading taken by a moving object.
type Measurement struct {
	ObjectID int
	TP       trajectory.TimePoint // noisy position with timestamp
	True     geom.Point           // ground-truth position (for verification)
}

// objState tracks one object's position on the network: travelling on link
// `link` from node `from` towards node `to`, `dist` metres from `from`.
type objState struct {
	link      int
	from, to  int
	dist      float64
	stopUntil trajectory.Time // Bursty: stopped until this timestamp
}

// Simulator drives the population over discrete timestamps.
type Simulator struct {
	net      *roadnet.Network
	cfg      Config
	rng      *rand.Rand
	objs     []objState
	moves    int
	stopMean float64 // Bursty: mean red-light duration
}

// New validates cfg and places the N objects at random nodes.
func New(net *roadnet.Network, cfg Config) (*Simulator, error) {
	if net == nil || len(net.Nodes) == 0 || len(net.Links) == 0 {
		return nil, fmt.Errorf("workload: network must be non-empty")
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: N must be positive, got %d", cfg.N)
	}
	if cfg.Agility <= 0 || cfg.Agility > 1 {
		return nil, fmt.Errorf("workload: agility must be in (0,1], got %v", cfg.Agility)
	}
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("workload: step must be positive, got %v", cfg.Step)
	}
	if cfg.Err < 0 {
		return nil, fmt.Errorf("workload: err must be non-negative, got %v", cfg.Err)
	}
	if cfg.Model != Bursty && cfg.Model != IID {
		return nil, fmt.Errorf("workload: unknown movement model %d", cfg.Model)
	}
	if cfg.StopProb < 0 || cfg.StopProb > 1 {
		return nil, fmt.Errorf("workload: stop probability must be in [0,1], got %v", cfg.StopProb)
	}
	if cfg.StopProb == 0 {
		cfg.StopProb = 0.4
	}
	s := &Simulator{
		net:  net,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		objs: make([]objState, cfg.N),
	}
	// Calibrate red-light duration so the long-run moving fraction is α:
	// a cycle is (drive one link, maybe stop); moving time per cycle is
	// linkTime = avgLink/Step, stopped time is StopProb·stopMean, so
	// α = linkTime / (linkTime + StopProb·stopMean).
	if cfg.Model == Bursty && cfg.Agility < 1 {
		var total float64
		for i := range net.Links {
			total += net.LinkLength(i)
		}
		avgLink := total / float64(len(net.Links))
		linkTime := avgLink / cfg.Step
		s.stopMean = linkTime * (1 - cfg.Agility) / (cfg.Agility * cfg.StopProb)
	}
	for i := range s.objs {
		node := s.rng.Intn(len(net.Nodes))
		link := s.chooseLink(node)
		s.objs[i] = objState{link: link, from: node, to: net.Other(link, node), dist: 0}
		if cfg.Model == Bursty && cfg.Agility < 1 {
			// Start the population in steady state: 1−α of the objects are
			// waiting at a light with a residual duration.
			if s.rng.Float64() >= cfg.Agility {
				s.objs[i].stopUntil = trajectory.Time(1 + s.rng.Intn(int(2*s.stopMean)+1))
			}
		}
	}
	return s, nil
}

// N returns the population size.
func (s *Simulator) N() int { return s.cfg.N }

// Moves returns the total number of object moves so far.
func (s *Simulator) Moves() int { return s.moves }

// chooseLink picks an incident link of node with probability proportional
// to its class weight.
func (s *Simulator) chooseLink(node int) int {
	inc := s.net.Incident(node)
	total := 0.0
	for _, l := range inc {
		total += s.net.Links[l].Class.Weight()
	}
	x := s.rng.Float64() * total
	for _, l := range inc {
		x -= s.net.Links[l].Class.Weight()
		if x <= 0 {
			return l
		}
	}
	return inc[len(inc)-1]
}

// position returns the object's current true position.
func (s *Simulator) position(o *objState) geom.Point {
	a := s.net.Nodes[o.from].P
	b := s.net.Nodes[o.to].P
	length := a.Dist(b)
	if length == 0 {
		return a
	}
	return a.Lerp(b, o.dist/length)
}

// Position returns the true position of object id (for tests/inspection).
func (s *Simulator) Position(id int) geom.Point {
	return s.position(&s.objs[id])
}

// Stopped reports whether object id is currently waiting at a light
// (always false under the IID model).
func (s *Simulator) Stopped(id int, now trajectory.Time) bool {
	return s.objs[id].stopUntil > now
}

// Tick advances the world to timestamp now; objects that move emit one
// noisy measurement each.
func (s *Simulator) Tick(now trajectory.Time) []Measurement {
	var out []Measurement
	for i := range s.objs {
		o := &s.objs[i]
		switch s.cfg.Model {
		case IID:
			if s.rng.Float64() >= s.cfg.Agility {
				continue
			}
		default: // Bursty
			if o.stopUntil > now {
				continue
			}
		}
		s.advance(o, now)
		s.moves++
		truth := s.position(o)
		noisy := geom.Pt(
			truth.X+(s.rng.Float64()*2-1)*s.cfg.Err,
			truth.Y+(s.rng.Float64()*2-1)*s.cfg.Err,
		)
		out = append(out, Measurement{
			ObjectID: i,
			TP:       trajectory.TP(noisy, now),
			True:     truth,
		})
	}
	return out
}

// advance moves one object Step metres along its link, clamping at the far
// node ("the next location will be along that link or at the opposite end
// node at most"). At a node the object either hits a red light (Bursty) or
// immediately picks the next link by the weighted rule.
func (s *Simulator) advance(o *objState, now trajectory.Time) {
	length := s.net.Nodes[o.from].P.Dist(s.net.Nodes[o.to].P)
	if o.dist >= length {
		// At the far node: choose the next link from there.
		node := o.to
		link := s.chooseLink(node)
		o.link = link
		o.from = node
		o.to = s.net.Other(link, node)
		o.dist = 0
		length = s.net.Nodes[o.from].P.Dist(s.net.Nodes[o.to].P)
	}
	o.dist += s.cfg.Step
	if o.dist >= length {
		o.dist = length // arrived: clamp at the node
		if s.cfg.Model == Bursty && s.cfg.Agility < 1 && s.rng.Float64() < s.cfg.StopProb {
			// Red light: exponential duration with the calibrated mean.
			dur := 1 + int(s.rng.ExpFloat64()*s.stopMean)
			o.stopUntil = now + trajectory.Time(dur)
		}
	}
}

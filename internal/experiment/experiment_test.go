package experiment

import (
	"strings"
	"testing"
)

func TestQuickBaseDefaults(t *testing.T) {
	cfg, err := QuickBase(1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Net == nil || cfg.N != 1000 || !cfg.RunDP || cfg.Agility != 0.5 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.Eps != 10 || cfg.W != 100 {
		t.Error("paper defaults not applied")
	}
}

func TestSweepNShapes(t *testing.T) {
	base, err := QuickBase(2)
	if err != nil {
		t.Fatal(err)
	}
	base.Duration = 100
	rows, err := SweepN(base, []int{200, 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More objects → more stored paths and more messages, for both methods.
	if rows[1].SPIndexSize <= rows[0].SPIndexSize {
		t.Errorf("SP index must grow with N: %v -> %v", rows[0].SPIndexSize, rows[1].SPIndexSize)
	}
	if rows[1].DPIndexSize <= rows[0].DPIndexSize {
		t.Errorf("DP index must grow with N: %v -> %v", rows[0].DPIndexSize, rows[1].DPIndexSize)
	}
	if rows[1].UpMessages <= rows[0].UpMessages {
		t.Error("messages must grow with N")
	}
	if rows[1].Measurements <= rows[0].Measurements {
		t.Error("measurements must grow with N")
	}
}

func TestSweepEpsShapes(t *testing.T) {
	base, err := QuickBase(3)
	if err != nil {
		t.Fatal(err)
	}
	base.Duration = 100
	rows, err := SweepEps(base, []float64{2, 20})
	if err != nil {
		t.Fatal(err)
	}
	// Larger tolerance → fewer stored paths and fewer messages (Fig 8a).
	if rows[1].SPIndexSize >= rows[0].SPIndexSize {
		t.Errorf("SP index must shrink with eps: %v -> %v", rows[0].SPIndexSize, rows[1].SPIndexSize)
	}
	if rows[1].UpMessages >= rows[0].UpMessages {
		t.Error("messages must shrink with eps")
	}
}

func TestWriteRows(t *testing.T) {
	rows := []Row{{Param: 10, SPIndexSize: 100, DPIndexSize: 90, SPScore: 5, DPScore: 6}}
	var b strings.Builder
	if err := WriteRows(&b, "N", rows); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"N", "sp-index", "dp-index", "100", "90"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigures9And10(t *testing.T) {
	base, err := QuickBase(4)
	if err != nil {
		t.Fatal(err)
	}
	base.Duration = 80
	paths, network, err := Figure9(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(paths, "<svg ") || !strings.HasPrefix(network, "<svg ") {
		t.Error("figure 9 outputs must be SVG")
	}
	if strings.Count(paths, "<line ") == 0 {
		t.Error("figure 9 has no discovered paths")
	}
	fig10, err := Figure10(base, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fig10, "<svg ") {
		t.Error("figure 10 must be SVG")
	}
}

func TestTable2(t *testing.T) {
	base, err := QuickBase(5)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Table2(&b, base); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"objects (N)", "tolerance", "window size", "1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestCommAblation(t *testing.T) {
	base, err := QuickBase(6)
	if err != nil {
		t.Fatal(err)
	}
	base.Duration = 80
	rows, err := CommAblation(base, []float64{2, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	for _, r := range rows {
		// Message-count suppression must hold at every tolerance; the BYTE
		// ratio can dip below 1 at tiny eps because a state message (64 B)
		// outweighs a raw measurement (24 B).
		if r.UpMessages >= r.Measurements {
			t.Errorf("eps=%v: filtering must reduce messages", r.Eps)
		}
	}
	if rows[1].Ratio <= rows[0].Ratio {
		t.Error("larger eps must compress more")
	}
	if rows[1].Ratio <= 1 {
		t.Errorf("eps=20 byte compression = %v, should exceed 1", rows[1].Ratio)
	}
	var b strings.Builder
	if err := WriteCommRows(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "compression") {
		t.Error("comm table header missing")
	}
}

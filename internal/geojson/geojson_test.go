package geojson

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
	"hotpaths/internal/roadnet"
)

func TestFromHotPaths(t *testing.T) {
	paths := []motion.HotPath{
		{Path: motion.Path{ID: 7, S: geom.Pt(0, 0), E: geom.Pt(30, 40)}, Hotness: 3},
		{Path: motion.Path{ID: 9, S: geom.Pt(1, 1), E: geom.Pt(1, 11)}, Hotness: 1},
	}
	fc := FromHotPaths(paths)
	if fc.Type != "FeatureCollection" || len(fc.Features) != 2 {
		t.Fatalf("fc = %+v", fc)
	}
	f := fc.Features[0]
	if f.Geometry.Type != "LineString" {
		t.Error("geometry type")
	}
	if f.Geometry.Coordinates[0] != [2]float64{0, 0} || f.Geometry.Coordinates[1] != [2]float64{30, 40} {
		t.Errorf("coords = %v", f.Geometry.Coordinates)
	}
	if f.Properties["hotness"] != 3 || f.Properties["rank"] != 1 {
		t.Errorf("props = %v", f.Properties)
	}
	if f.Properties["length"].(float64) != 50 || f.Properties["score"].(float64) != 150 {
		t.Errorf("derived props = %v", f.Properties)
	}
	if fc.Features[1].Properties["rank"] != 2 {
		t.Error("rank ordering")
	}
	if len(FromHotPaths(nil).Features) != 0 {
		t.Error("empty input")
	}
}

func TestFromNetwork(t *testing.T) {
	nodes := []roadnet.Node{
		{ID: 0, P: geom.Pt(0, 0)},
		{ID: 1, P: geom.Pt(100, 0)},
	}
	links := []roadnet.Link{{ID: 0, From: 0, To: 1, Class: roadnet.Motorway}}
	net, err := roadnet.Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	fc := FromNetwork(net)
	if len(fc.Features) != 1 {
		t.Fatal("feature count")
	}
	if fc.Features[0].Properties["class"] != "motorway" {
		t.Errorf("class = %v", fc.Features[0].Properties["class"])
	}
	if fc.Features[0].Properties["weight"].(float64) != 10 {
		t.Errorf("weight = %v", fc.Features[0].Properties["weight"])
	}
}

func TestWriteRoundTrip(t *testing.T) {
	paths := []motion.HotPath{
		{Path: motion.Path{ID: 1, S: geom.Pt(2, 3), E: geom.Pt(4, 5)}, Hotness: 2},
	}
	var buf bytes.Buffer
	if err := Write(&buf, FromHotPaths(paths)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"type": "FeatureCollection"`) {
		t.Errorf("output missing collection type:\n%s", out)
	}
	// Valid JSON that decodes back to an equivalent structure.
	var back FeatureCollection
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back.Features) != 1 || back.Features[0].Geometry.Coordinates[1] != [2]float64{4, 5} {
		t.Errorf("decoded = %+v", back)
	}
}

package replication

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"hotpaths/internal/wal"
)

// testFeed builds a WAL directory with n synced records and an httptest
// server exposing it through a replication Server.
func testFeed(t *testing.T, n int) (dir string, log *wal.Log, srv *httptest.Server, pos *atomic.Uint64) {
	t.Helper()
	dir = t.TempDir()
	log, err := wal.Open(dir, wal.Options{SegmentBytes: 1 << 10, FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	for i := 0; i < n; i++ {
		if _, err := log.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	pos = &atomic.Uint64{}
	pos.Store(uint64(n))
	rs := &Server{
		Dir:      dir,
		Position: func() Status { return Status{NextLSN: pos.Load(), Epoch: 3, Clock: 30} },
		Poll:     time.Millisecond,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+StreamPath, rs.ServeStream)
	mux.HandleFunc("GET "+CheckpointPath, rs.ServeCheckpoint)
	mux.HandleFunc("GET "+MetaPath, rs.ServeMeta)
	srv = httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return dir, log, srv, pos
}

func testRecord(i int) wal.Record {
	if i%5 == 4 {
		return wal.Record{Kind: wal.KindTick, T: int64(i)}
	}
	return wal.Record{Kind: wal.KindObserve, ObjectID: int64(i % 7), T: int64(i), X: float64(i), Y: float64(-i)}
}

// TestStreamDeliversLiveRecords streams an existing log, then appends more
// while the stream is open, and checks every record arrives in LSN order
// with heartbeats carrying the primary position.
func TestStreamDeliversLiveRecords(t *testing.T) {
	const preexisting, extra = 100, 50
	_, log, srv, pos := testFeed(t, preexisting)
	c := &Client{Base: srv.URL}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []wal.Record
	var hbs atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- c.Stream(ctx, 0, func(lsn uint64, rec wal.Record) error {
			if lsn != uint64(len(got)) {
				t.Errorf("lsn %d out of order (have %d records)", lsn, len(got))
			}
			got = append(got, rec)
			if len(got) == preexisting+extra {
				cancel()
			}
			return nil
		}, func(st Status) {
			hbs.Add(1)
			if st.Epoch != 3 {
				t.Errorf("heartbeat epoch = %d, want 3", st.Epoch)
			}
		})
	}()

	for i := 0; i < extra; i++ {
		if _, err := log.Append(testRecord(preexisting + i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	pos.Store(preexisting + extra)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) && err != nil && ctx.Err() == nil {
			t.Fatalf("stream: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("stream did not deliver %d records (got %d)", preexisting+extra, len(got))
	}
	if len(got) != preexisting+extra {
		t.Fatalf("got %d records, want %d", len(got), preexisting+extra)
	}
	for i, r := range got {
		if r != testRecord(i) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	if hbs.Load() == 0 {
		t.Fatal("no heartbeats received")
	}
}

// TestStreamResumesFromLSN checks mid-stream attachment: from=N delivers
// exactly the records at N and beyond.
func TestStreamResumesFromLSN(t *testing.T) {
	const n, from = 120, 77
	_, _, srv, _ := testFeed(t, n)
	c := &Client{Base: srv.URL}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []wal.Record
	err := c.Stream(ctx, from, func(lsn uint64, rec wal.Record) error {
		if want := uint64(from + len(got)); lsn != want {
			t.Fatalf("lsn %d, want %d", lsn, want)
		}
		got = append(got, rec)
		if len(got) == n-from {
			cancel()
		}
		return nil
	}, nil)
	if ctx.Err() == nil {
		t.Fatalf("stream ended early: %v", err)
	}
	for i, r := range got {
		if r != testRecord(from+i) {
			t.Fatalf("record %d mismatch", from+i)
		}
	}
}

// TestStreamGoneAfterTruncation: a from-LSN below the oldest surviving
// segment answers 410 and the client maps it to ErrSnapshotNeeded; the
// checkpoint endpoint then hands over the bootstrap state.
func TestStreamGoneAfterTruncation(t *testing.T) {
	const n = 200
	dir, log, srv, _ := testFeed(t, n)
	payload := []byte("checkpoint-state-blob")
	if err := wal.WriteCheckpoint(dir, 150, payload, 2); err != nil {
		t.Fatal(err)
	}
	if err := log.TruncateBefore(150); err != nil {
		t.Fatal(err)
	}
	c := &Client{Base: srv.URL}
	err := c.Stream(context.Background(), 0, func(uint64, wal.Record) error { return nil }, nil)
	if !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("stream from truncated LSN: got %v, want ErrSnapshotNeeded", err)
	}
	lsn, got, err := c.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 150 || string(got) != string(payload) {
		t.Fatalf("checkpoint = (%d, %q), want (150, %q)", lsn, got, payload)
	}
}

// TestStreamBeyondLogEnd: a follower ahead of the primary's LSN space
// (the primary lost its unsynced tail in a crash) must be told to
// re-bootstrap, never silently handed different records.
func TestStreamBeyondLogEnd(t *testing.T) {
	_, _, srv, _ := testFeed(t, 10)
	c := &Client{Base: srv.URL}
	err := c.Stream(context.Background(), 10_000, func(uint64, wal.Record) error { return nil }, nil)
	if !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("stream beyond log end: got %v, want ErrSnapshotNeeded", err)
	}
}

// TestCheckpointMissing: no checkpoint file yet -> ErrNoCheckpoint.
func TestCheckpointMissing(t *testing.T) {
	_, _, srv, _ := testFeed(t, 10)
	c := &Client{Base: srv.URL}
	if _, _, err := c.Checkpoint(context.Background()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("got %v, want ErrNoCheckpoint", err)
	}
}

// TestMetaRoundTrip serves the meta.json bytes verbatim.
func TestMetaRoundTrip(t *testing.T) {
	dir, _, srv, _ := testFeed(t, 1)
	meta := []byte(`{"Eps":10,"W":100}`)
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), meta, 0o644); err != nil {
		t.Fatal(err)
	}
	c := &Client{Base: srv.URL}
	got, err := c.Meta(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(meta) {
		t.Fatalf("meta = %q, want %q", got, meta)
	}
}

func TestParseBase(t *testing.T) {
	for _, ok := range []string{"http://localhost:8080", "https://primary.example.com"} {
		if err := ParseBase(ok); err != nil {
			t.Errorf("ParseBase(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"", "localhost:8080", "ftp://x", "http://"} {
		if err := ParseBase(bad); err == nil {
			t.Errorf("ParseBase(%q) accepted", bad)
		}
	}
}

// Package partition maps object ids to the partition that owns them and
// describes a partitioned fleet as a versioned table.
//
// The map is the same 64-bit finalizer mix the Engine has always used to
// spread objects over its in-process shards, lifted one level up: a
// gateway hashes an object id to one of N independent primaries exactly
// the way an Engine hashes it to one of N shards. Determinism is the
// point — every router, every daemon and every test derives the same
// owner from (object id, partition count) with no coordination.
package partition

import (
	"encoding/json"
	"fmt"
	"net/url"
	"strings"
)

// Hash mixes an object id into a uniformly spread 64-bit value (the
// murmur3 finalizer, so adjacent ids land far apart).
func Hash(objectID int) uint64 {
	h := uint64(objectID)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Index returns the owner of objectID among n partitions (or shards).
// n must be positive.
func Index(objectID, n int) int {
	return int(Hash(objectID) % uint64(n))
}

// Partition is one entry of a Table: a partition id and the base URL of
// the hotpathsd primary that owns it.
type Partition struct {
	ID  int    `json:"id"`
	URL string `json:"url"`
}

// Table is the versioned description of a partitioned fleet: partition i
// of len(Partitions) owns every object id with Index(id, n) == i. The
// wire form is JSON, like every other hotpaths wire structure, so tables
// can be checked into config management and served by gateways. Version
// lets operators tell two table generations apart during a resharding
// rollout; routing itself depends only on the partition count.
type Table struct {
	Version    uint64      `json:"version"`
	Partitions []Partition `json:"partitions"`
}

// NewTable builds a version-1 table owning the given primaries in order:
// urls[i] becomes partition i of len(urls).
func NewTable(urls ...string) Table {
	parts := make([]Partition, len(urls))
	for i, u := range urls {
		parts[i] = Partition{ID: i, URL: u}
	}
	return Table{Version: 1, Partitions: parts}
}

// N returns the partition count.
func (t Table) N() int { return len(t.Partitions) }

// Owner returns the partition owning objectID. The table must be valid.
func (t Table) Owner(objectID int) Partition {
	return t.Partitions[Index(objectID, len(t.Partitions))]
}

// Validate checks the table is routable: at least one partition, ids
// exactly 0..n-1 in order (the id IS the hash slot, so gaps or
// permutations would misroute), and well-formed absolute http(s) URLs.
func (t Table) Validate() error {
	if len(t.Partitions) == 0 {
		return fmt.Errorf("partition: table has no partitions")
	}
	for i, p := range t.Partitions {
		if p.ID != i {
			return fmt.Errorf("partition: entry %d carries id %d; ids must be exactly 0..%d in order",
				i, p.ID, len(t.Partitions)-1)
		}
		u, err := url.Parse(p.URL)
		if err != nil {
			return fmt.Errorf("partition %d: url %q: %w", i, p.URL, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("partition %d: url %q must be absolute http(s)", i, p.URL)
		}
	}
	return nil
}

// Encode returns the table's canonical wire form (compact JSON).
func (t Table) Encode() ([]byte, error) {
	return json.Marshal(t)
}

// ParseTable decodes and validates a wire-form table.
func ParseTable(b []byte) (Table, error) {
	var t Table
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Table{}, fmt.Errorf("partition: decode table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Table{}, err
	}
	return t, nil
}

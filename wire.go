package hotpaths

import (
	"io"

	"hotpaths/internal/geojson"
	"hotpaths/internal/geom"
	"hotpaths/internal/motion"
)

// PointJSON is the wire form of a Point.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// PathJSON is the canonical wire form of a HotPath: the path's identity
// and geometry plus its 1-based rank in the result it was taken from and
// the derived length and score, so clients need no follow-up computation.
// It is the element type of hotpathsd's /topk and /paths responses.
type PathJSON struct {
	ID      uint64    `json:"id"`
	Rank    int       `json:"rank"`
	Hotness int       `json:"hotness"`
	Length  float64   `json:"length"`
	Score   float64   `json:"score"`
	Start   PointJSON `json:"start"`
	End     PointJSON `json:"end"`
}

// PathsJSON converts a query result to its wire form, assigning ranks in
// the order given (pass a TopK or Query result so rank 1 is the best
// match). It returns a non-nil slice so an empty result encodes as [].
func PathsJSON(paths []HotPath) []PathJSON {
	out := make([]PathJSON, len(paths))
	for i, hp := range paths {
		out[i] = PathJSON{
			ID:      hp.ID,
			Rank:    i + 1,
			Hotness: hp.Hotness,
			Length:  hp.Length(),
			Score:   hp.Score(),
			Start:   PointJSON{hp.Start.X, hp.Start.Y},
			End:     PointJSON{hp.End.X, hp.End.Y},
		}
	}
	return out
}

// WriteGeoJSON writes paths as a GeoJSON FeatureCollection in the order
// given: one LineString feature per path with id/rank/hotness/length/score
// properties, rank following the input order. The encoding is the single
// internal/geojson schema, so the daemon, the snapshot dump and the render
// tools all emit the same wire format.
func WriteGeoJSON(w io.Writer, paths []HotPath) error {
	mp := make([]motion.HotPath, len(paths))
	for i, hp := range paths {
		mp[i] = motion.HotPath{
			Path: motion.Path{
				ID: motion.PathID(hp.ID),
				S:  geom.Pt(hp.Start.X, hp.Start.Y),
				E:  geom.Pt(hp.End.X, hp.End.Y),
			},
			Hotness: hp.Hotness,
		}
	}
	return geojson.Write(w, geojson.FromHotPaths(mp))
}

package hotpaths

import (
	"context"
	"fmt"
	"io"

	"hotpaths/internal/coordinator"
	"hotpaths/internal/engine"
	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
)

// Observation is one location measurement for batched ingestion into an
// Engine. SigmaX/SigmaY are optional per-axis Gaussian standard
// deviations; leave them zero for exact measurements. Noisy observations
// require Config.Delta > 0.
type Observation struct {
	ObjectID       int
	X, Y           float64
	T              int64
	SigmaX, SigmaY float64
}

// EngineConfig parameterises an Engine: the common Config plus the
// concurrency knobs.
type EngineConfig struct {
	Config

	// Shards is the number of filter shards, each a goroutine owning the
	// RayTrace filters of the objects that hash to it (default: GOMAXPROCS).
	Shards int

	// Buffer is the per-shard ingestion queue capacity in messages
	// (default 256). Larger buffers decouple producers from slow shards at
	// the cost of memory.
	Buffer int
}

// Engine is the concurrent, object-sharded deployment of the paper's
// architecture. Observations hash by object id to shard goroutines running
// the RayTrace filters; at epoch boundaries Tick drains the shards and
// feeds the merged report batch — restored to arrival order — to a single
// SinglePath coordinator, so results are bit-identical to a System fed the
// same observations in the same order.
//
// Concurrency contract: Observe/ObserveNoisy/ObserveBatch may be called
// from many goroutines concurrently, and queries (TopK, HotPaths, Score,
// Stats) are safe at any time. Observations for one object must be
// produced in timestamp order by one producer at a time. Tick must not
// race itself, and producers that need an observation counted in a
// specific epoch must order their Observe calls before that Tick.
type Engine struct {
	cfg Config
	eng *engine.Engine
	// subs fans epoch snapshots out to standing queries; published from
	// the internal engine's OnEpoch hook, after the epoch barrier.
	subs hub
}

// NewEngine validates cfg and starts the engine's shard goroutines. Call
// Close to stop them.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	c, err := cfg.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	coord, err := c.newCoordinator()
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: c}
	// The epoch hook's snapshot is captured under the engine write lock —
	// always a consistent post-epoch view — while the fan-out work
	// (per-subscription query + diff + delivery) runs after the lock is
	// released and never stalls producers. The capture itself is skipped
	// while nobody subscribes (EpochWanted). Callers that tick from
	// several goroutines at once can reorder hook deliveries; the hub
	// drops the stale ones by epoch number, so subscribers still see a
	// strictly ordered stream.
	eng, err := engine.New(engine.Config{
		Coord:     coord,
		Epoch:     trajectory.Time(c.Epoch),
		Tolerance: c.toleranceFunc,
		Shards:    cfg.Shards,
		Buffer:    cfg.Buffer,
		OnEpoch: func(snap *coordinator.Snapshot, now trajectory.Time, st engine.Stats) {
			e.subs.publish(Snapshot{
				snap:  snap,
				clock: int64(now),
				stats: convertStats(st),
				k:     c.K,
			})
		},
		EpochWanted: func() bool { return e.subs.any() },
	})
	if err != nil {
		return nil, err
	}
	e.eng = eng
	return e, nil
}

// Shards returns the engine's shard count.
func (e *Engine) Shards() int { return e.eng.Shards() }

// Observe enqueues one exact location measurement for objectID at
// timestamp t. Coordinates must be finite. Processing is asynchronous:
// per-observation errors (e.g. a non-increasing timestamp) surface from
// the next epoch-boundary Tick.
func (e *Engine) Observe(objectID int, x, y float64, t int64) error {
	if err := checkCoords(x, y); err != nil {
		return err
	}
	return e.eng.Observe(engine.Observation{
		ObjectID: objectID,
		P:        geom.Pt(x, y),
		T:        trajectory.Time(t),
	})
}

// ObserveNoisy enqueues a Gaussian measurement with per-axis standard
// deviations. It requires Config.Delta > 0.
func (e *Engine) ObserveNoisy(objectID int, x, y, sigmaX, sigmaY float64, t int64) error {
	if e.cfg.Delta <= 0 {
		return fmt.Errorf("hotpaths: ObserveNoisy requires Config.Delta > 0")
	}
	if err := checkCoords(x, y); err != nil {
		return err
	}
	if err := checkSigmas(sigmaX, sigmaY); err != nil {
		return err
	}
	return e.eng.Observe(engine.Observation{
		ObjectID: objectID,
		P:        geom.Pt(x, y),
		T:        trajectory.Time(t),
		SigmaX:   sigmaX,
		SigmaY:   sigmaY,
	})
}

// checkObservation validates one batched observation against the
// deployment's noise mode, before it can reach shard-queue or WAL state;
// the index locates the bad element for the client. The rules are the
// shared badCoords/badSigmas predicates, so the batch and single-call
// ingest paths can never drift apart.
func checkObservation(i int, o Observation, delta float64) error {
	if err := badCoords(o.X, o.Y); err != nil {
		return fmt.Errorf("hotpaths: observation %d: %w", i, err)
	}
	if o.SigmaX == 0 && o.SigmaY == 0 {
		return nil
	}
	if delta <= 0 {
		return fmt.Errorf("hotpaths: observation %d carries noise but Config.Delta is 0", i)
	}
	if err := badSigmas(o.SigmaX, o.SigmaY); err != nil {
		return fmt.Errorf("hotpaths: observation %d: %w", i, err)
	}
	return nil
}

// ObserveBatch enqueues a batch of observations in one pass — the fast
// path for network ingestion: the batch is split into at most one queue
// message per shard. Order is preserved per object. The batch is
// validated up front, so a rejected batch enqueues nothing.
func (e *Engine) ObserveBatch(batch []Observation) error {
	return e.ObserveBatchCtx(context.Background(), batch)
}

// ObserveBatchCtx is ObserveBatch recording spans on the context's trace
// (one engine span per batch — never per record). Tracing-aware callers
// like the daemon's HTTP layer use it; everyone else keeps ObserveBatch.
func (e *Engine) ObserveBatchCtx(ctx context.Context, batch []Observation) error {
	conv := make([]engine.Observation, len(batch))
	for i, o := range batch {
		if err := checkObservation(i, o, e.cfg.Delta); err != nil {
			return err
		}
		conv[i] = engine.Observation{
			ObjectID: o.ObjectID,
			P:        geom.Pt(o.X, o.Y),
			T:        trajectory.Time(o.T),
			SigmaX:   o.SigmaX,
			SigmaY:   o.SigmaY,
		}
	}
	return e.eng.ObserveBatchCtx(ctx, conv)
}

// Tick advances the engine clock to now: the hotness window slides, and at
// epoch boundaries — whenever the clock reaches or crosses a multiple of
// Config.Epoch — the shards are drained and the coordinator processes the
// merged report batch. Call it once per timestamp, after that timestamp's
// observations; sparse clocks that jump over a boundary still trigger the
// epoch.
func (e *Engine) Tick(now int64) error {
	return e.eng.Tick(trajectory.Time(now))
}

// TickCtx is Tick recording the epoch-boundary spans (engine.tick and its
// epoch-barrier child) on the context's trace.
func (e *Engine) TickCtx(ctx context.Context, now int64) error {
	return e.eng.TickCtx(ctx, trajectory.Time(now))
}

// Close drains and stops the shard goroutines and closes every
// subscription channel (no further epochs can fire). Queries remain valid
// after Close; ingestion, Tick and Subscribe fail. It is idempotent and
// returns the first unsurfaced processing error, if any.
func (e *Engine) Close() error {
	err := e.eng.Close()
	e.subs.closeAll()
	return err
}

// Config returns the engine's configuration with defaults applied.
func (e *Engine) Config() Config { return e.cfg }

// TopK returns the Config.K hottest motion paths, hottest first. It is a
// live accessor — shorthand for Snapshot().TopK(); use Snapshot directly
// when several reads must agree on one instant.
func (e *Engine) TopK() []HotPath {
	return e.Snapshot().TopK()
}

// HotPaths returns every live motion path, hottest first. Shorthand for
// Snapshot().HotPaths().
func (e *Engine) HotPaths() []HotPath {
	return e.Snapshot().HotPaths()
}

// Score returns the paper's quality metric over the current top-k set: the
// average hotness×length. Shorthand for Snapshot().Score().
func (e *Engine) Score() float64 { return e.Snapshot().Score() }

// WriteGeoJSON writes every live motion path as a GeoJSON
// FeatureCollection, hottest first, with hotness/length/score properties.
// Shorthand for Snapshot().WriteGeoJSON(w).
func (e *Engine) WriteGeoJSON(w io.Writer) error {
	return e.Snapshot().WriteGeoJSON(w)
}

// Stats returns the engine's counters. While ingestion is in flight the
// Observations/Reports counters are eventually consistent; after an
// epoch-boundary Tick they exactly match a System fed the same input.
func (e *Engine) Stats() Stats {
	return convertStats(e.eng.Stats())
}

// Clock returns the timestamp of the last Tick. Unlike Snapshot().Clock()
// it copies no paths, so monitoring probes can call it at any rate.
func (e *Engine) Clock() int64 {
	return int64(e.eng.Clock())
}

func convertStats(es engine.Stats) Stats {
	return Stats{
		Observations: es.Observations,
		Reports:      es.Reports,
		Responses:    es.Responses,
		Epochs:       es.Coordinator.Epochs,
		PathsCreated: es.Coordinator.PathsCreated,
		PathsExpired: es.Coordinator.PathsExpired,
		Crossings:    es.Coordinator.Crossings,
		IndexSize:    es.IndexSize,
	}
}

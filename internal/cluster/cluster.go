// Package cluster implements a moving-cluster detector in the style of
// Kalnis, Mamoulis & Bakiras (SSTD 2005), the closest related work the
// paper contrasts itself against (Section 2).
//
// A snapshot cluster is a maximal set of at least MinPts objects whose
// proximity graph (edges between objects within distance R) is connected at
// one timestamp. A moving cluster is a chain of snapshot clusters at
// consecutive observation timestamps whose member sets keep a Jaccard
// similarity of at least Theta; the chain counts once it survives at least
// MinDuration time units.
//
// The detector exists to validate the paper's differentiation claim: a
// motion path becomes hot when many objects cross it within the window —
// even if they do so minutes apart — whereas a moving cluster additionally
// requires the objects to travel TOGETHER. The experiment suite constructs
// asynchronous flows where hot paths exist but no moving cluster ever
// forms.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"hotpaths/internal/geom"
	"hotpaths/internal/trajectory"
)

// Config parameterises the detector.
type Config struct {
	R           float64         // proximity radius for snapshot clustering
	MinPts      int             // minimum snapshot-cluster size
	Theta       float64         // Jaccard continuity threshold in (0,1]
	MinDuration trajectory.Time // minimum chain lifetime to count
}

// MovingCluster is a (finished or active) chain of snapshot clusters.
type MovingCluster struct {
	Start, End trajectory.Time
	// Members is the union of object ids that ever belonged to the chain
	// (moving clusters may change membership over time).
	Members map[int]struct{}
	// Trail is the per-snapshot centroid sequence.
	Trail []geom.Point
}

// Duration returns End−Start.
func (mc *MovingCluster) Duration() trajectory.Time { return mc.End - mc.Start }

type chain struct {
	mc      MovingCluster
	current map[int]struct{} // member set at the latest snapshot
}

// Detector consumes per-timestamp position snapshots.
type Detector struct {
	cfg      Config
	chains   []*chain
	finished []MovingCluster
	lastT    trajectory.Time
	primed   bool
}

// New validates cfg and returns an empty detector.
func New(cfg Config) (*Detector, error) {
	if cfg.R <= 0 {
		return nil, fmt.Errorf("cluster: R must be positive, got %v", cfg.R)
	}
	if cfg.MinPts < 2 {
		return nil, fmt.Errorf("cluster: MinPts must be at least 2, got %d", cfg.MinPts)
	}
	if cfg.Theta <= 0 || cfg.Theta > 1 {
		return nil, fmt.Errorf("cluster: Theta must be in (0,1], got %v", cfg.Theta)
	}
	if cfg.MinDuration < 0 {
		return nil, fmt.Errorf("cluster: MinDuration must be non-negative, got %d", cfg.MinDuration)
	}
	return &Detector{cfg: cfg}, nil
}

// Observe processes the positions of all observable objects at timestamp
// now. Timestamps must be strictly increasing.
func (d *Detector) Observe(now trajectory.Time, positions map[int]geom.Point) error {
	if d.primed && now <= d.lastT {
		return fmt.Errorf("cluster: non-increasing timestamp %d after %d", now, d.lastT)
	}
	d.primed = true
	d.lastT = now

	snaps := snapshotClusters(positions, d.cfg.R, d.cfg.MinPts)

	// Greedy one-to-one matching between active chains and snapshot
	// clusters by Jaccard similarity, best matches first.
	type cand struct {
		chainIdx, snapIdx int
		sim               float64
	}
	var cands []cand
	for ci, ch := range d.chains {
		for si, sc := range snaps {
			if sim := jaccard(ch.current, sc.members); sim >= d.cfg.Theta {
				cands = append(cands, cand{ci, si, sim})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sim != cands[j].sim {
			return cands[i].sim > cands[j].sim
		}
		if cands[i].chainIdx != cands[j].chainIdx {
			return cands[i].chainIdx < cands[j].chainIdx
		}
		return cands[i].snapIdx < cands[j].snapIdx
	})
	chainTaken := make([]bool, len(d.chains))
	snapTaken := make([]bool, len(snaps))
	for _, c := range cands {
		if chainTaken[c.chainIdx] || snapTaken[c.snapIdx] {
			continue
		}
		chainTaken[c.chainIdx] = true
		snapTaken[c.snapIdx] = true
		ch := d.chains[c.chainIdx]
		sc := snaps[c.snapIdx]
		ch.mc.End = now
		ch.mc.Trail = append(ch.mc.Trail, sc.centroid)
		for id := range sc.members {
			ch.mc.Members[id] = struct{}{}
		}
		ch.current = sc.members
	}

	// Unmatched chains terminate; keep those that lived long enough.
	var alive []*chain
	for i, ch := range d.chains {
		if chainTaken[i] {
			alive = append(alive, ch)
			continue
		}
		if ch.mc.Duration() >= d.cfg.MinDuration {
			d.finished = append(d.finished, ch.mc)
		}
	}
	// Unmatched snapshot clusters start new chains.
	for i, sc := range snaps {
		if snapTaken[i] {
			continue
		}
		members := make(map[int]struct{}, len(sc.members))
		for id := range sc.members {
			members[id] = struct{}{}
		}
		alive = append(alive, &chain{
			mc: MovingCluster{
				Start:   now,
				End:     now,
				Members: members,
				Trail:   []geom.Point{sc.centroid},
			},
			current: sc.members,
		})
	}
	d.chains = alive
	return nil
}

// Active returns the chains currently alive that already satisfy
// MinDuration.
func (d *Detector) Active() []MovingCluster {
	var out []MovingCluster
	for _, ch := range d.chains {
		if ch.mc.Duration() >= d.cfg.MinDuration {
			out = append(out, ch.mc)
		}
	}
	return out
}

// Finished returns terminated moving clusters that satisfied MinDuration.
func (d *Detector) Finished() []MovingCluster { return d.finished }

// Close terminates all chains (end of stream) and returns every qualifying
// moving cluster, finished and active.
func (d *Detector) Close() []MovingCluster {
	for _, ch := range d.chains {
		if ch.mc.Duration() >= d.cfg.MinDuration {
			d.finished = append(d.finished, ch.mc)
		}
	}
	d.chains = nil
	return d.finished
}

type snapCluster struct {
	members  map[int]struct{}
	centroid geom.Point
}

// snapshotClusters computes connected components of the proximity graph
// using a uniform grid of cell size R: objects within distance R (L2) are
// connected, components smaller than minPts are discarded.
func snapshotClusters(positions map[int]geom.Point, r float64, minPts int) []snapCluster {
	if len(positions) == 0 {
		return nil
	}
	ids := make([]int, 0, len(positions))
	for id := range positions {
		ids = append(ids, id)
	}
	sort.Ints(ids) // determinism

	cell := func(p geom.Point) [2]int {
		return [2]int{int(math.Floor(p.X / r)), int(math.Floor(p.Y / r))}
	}
	buckets := make(map[[2]int][]int)
	for _, id := range ids {
		c := cell(positions[id])
		buckets[c] = append(buckets[c], id)
	}

	visited := make(map[int]bool, len(ids))
	var out []snapCluster
	for _, seed := range ids {
		if visited[seed] {
			continue
		}
		// BFS over the proximity graph.
		comp := []int{seed}
		visited[seed] = true
		for head := 0; head < len(comp); head++ {
			p := positions[comp[head]]
			c := cell(p)
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					for _, other := range buckets[[2]int{c[0] + dx, c[1] + dy}] {
						if visited[other] {
							continue
						}
						if p.Dist(positions[other]) <= r {
							visited[other] = true
							comp = append(comp, other)
						}
					}
				}
			}
		}
		if len(comp) < minPts {
			continue
		}
		members := make(map[int]struct{}, len(comp))
		var cx, cy float64
		for _, id := range comp {
			members[id] = struct{}{}
			cx += positions[id].X
			cy += positions[id].Y
		}
		out = append(out, snapCluster{
			members:  members,
			centroid: geom.Pt(cx/float64(len(comp)), cy/float64(len(comp))),
		})
	}
	return out
}

func jaccard(a, b map[int]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, big := a, b
	if len(small) > len(big) {
		small, big = big, small
	}
	inter := 0
	for id := range small {
		if _, ok := big[id]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

package flightrec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// dumpJSON is the on-disk snapshot format: a self-describing header plus
// the full retained timeline, oldest event first.
type dumpJSON struct {
	DumpedAt string      `json:"dumped_at"`
	Reason   string      `json:"reason"`
	PID      int         `json:"pid"`
	Events   []eventJSON `json:"events"`
}

// DumpTo snapshots the ring to a JSON file in dir (created if needed)
// and returns the file's path. The filename embeds the PID and a
// nanosecond timestamp, so repeated dumps — shutdown after a poisoning,
// two processes sharing a dump dir — never collide. The file is written
// to a temp name and renamed, so a reader never sees a torn snapshot.
func (r *Recorder) DumpTo(dir, reason string) (string, error) {
	now := time.Now()
	evs := r.Snapshot("", time.Time{}, 0)
	out := dumpJSON{
		DumpedAt: now.UTC().Format(time.RFC3339Nano),
		Reason:   reason,
		PID:      os.Getpid(),
		Events:   make([]eventJSON, len(evs)),
	}
	for i, ev := range evs {
		out.Events[i] = toJSON(ev)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flightrec: dump dir: %w", err)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", fmt.Errorf("flightrec: encode dump: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("flightrec-%d-%d.json", os.Getpid(), now.UnixNano()))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return "", fmt.Errorf("flightrec: write dump: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("flightrec: finalise dump: %w", err)
	}
	return path, nil
}

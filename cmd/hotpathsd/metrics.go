package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"hotpaths/internal/flightrec"
	"hotpaths/internal/metrics"
	"hotpaths/internal/tracing"
)

// adminHandler is the -pprof listener's mux: the profiling endpoints, a
// second /metrics mount, the completed-trace ring under /debug/traces,
// and the flight-recorder ring under /debug/events — all kept off the
// public port so the debug surface is opt-in and never internet-facing
// by accident.
func adminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", metrics.Handler())
	tracing.Default.RegisterDebug(mux)
	flightrec.Default.RegisterDebug(mux)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// statusClasses are the buckets the per-route request counters use; a
// class per status keeps cardinality at five per route instead of one per
// code.
var statusClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// instrument wraps one route's handler with a request-duration histogram
// and status-class counters. Instruments are registered at wrap time —
// route patterns are static — so the request path touches only atomics,
// never the registry lock.
func instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := metrics.Default.Histogram("hotpaths_http_request_seconds",
		"HTTP request duration by route.",
		metrics.LatencyBuckets, metrics.Labels{"route": route})
	var counts [5]*metrics.Counter
	for i, class := range statusClasses {
		counts[i] = metrics.Default.Counter("hotpaths_http_requests_total",
			"HTTP requests by route and status class.",
			metrics.Labels{"route": route, "code": class})
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		hist.ObserveSince(t0)
		cls := rec.status / 100
		if cls < 1 || cls > 5 {
			cls = 2 // nothing written: net/http sends an implicit 200
		}
		counts[cls-1].Inc()
	}
}

// statusRecorder captures the response status for the class counters. It
// implements Flusher unconditionally so the SSE /watch and /wal/stream
// handlers — which type-assert their writer — keep streaming through the
// wrapper, and forwards Hijacker/ReaderFrom to the underlying writer when
// it supports them (connection takeover and sendfile keep working behind
// the middleware stack).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := r.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, fmt.Errorf("hotpathsd: underlying ResponseWriter does not support hijacking")
}

func (r *statusRecorder) ReadFrom(src io.Reader) (int64, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	if rf, ok := r.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(src)
	}
	// Strip ReadFrom from the destination or io.Copy would recurse right
	// back into this method.
	return io.Copy(struct{ io.Writer }{r.ResponseWriter}, src)
}

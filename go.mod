module hotpaths

go 1.24

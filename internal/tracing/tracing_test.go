package tracing

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid := NewTraceID()
	sid := newSpanID()
	for _, sampled := range []bool{true, false} {
		hdr := formatTraceparent(tid, sid, sampled)
		if len(hdr) != 55 {
			t.Fatalf("traceparent length = %d, want 55 (%q)", len(hdr), hdr)
		}
		gotTID, gotSID, gotSampled, ok := parseTraceparent(hdr)
		if !ok {
			t.Fatalf("parseTraceparent(%q) not ok", hdr)
		}
		if gotTID != tid || gotSID != sid || gotSampled != sampled {
			t.Fatalf("round trip mismatch: %q -> %v %v %v", hdr, gotTID, gotSID, gotSampled)
		}
	}
}

func TestTraceparentMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := map[string]string{
		"empty":              "",
		"short":              valid[:54],
		"version ff":         "ff" + valid[2:],
		"version not hex":    "zz" + valid[2:],
		"uppercase hex":      strings.ToUpper(valid),
		"bad separator":      strings.Replace(valid, "-", "_", 1),
		"zero trace id":      "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero parent id":     "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"v00 trailing data":  valid + "-extra",
		"future ver no dash": "01" + valid[2:] + "x",
	}
	for name, hdr := range cases {
		if _, _, _, ok := parseTraceparent(hdr); ok {
			t.Errorf("%s: parseTraceparent(%q) ok, want malformed", name, hdr)
		}
	}
	// A future version with correctly dash-delimited extra content parses
	// by the version-00 prefix rule.
	if tid, _, sampled, ok := parseTraceparent("01" + valid[2:] + "-extra"); !ok || tid.IsZero() || !sampled {
		t.Errorf("future version with -suffix should parse, got ok=%v", ok)
	}
}

func TestStartRequestFallsBackToFreshRoot(t *testing.T) {
	tr := New("test", 1, 0) // sample everything
	for _, hdr := range []string{
		"",
		"not a traceparent",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	} {
		_, span := tr.StartRequest(context.Background(), "req", hdr)
		if span == nil {
			t.Fatalf("header %q: want fresh sampled root, got nil span", hdr)
		}
		if span.TraceID().IsZero() {
			t.Fatalf("header %q: zero trace ID on fresh root", hdr)
		}
		if span.tr.id.String() == "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Fatalf("header %q: malformed header's trace ID was adopted", hdr)
		}
		if !span.parent.IsZero() {
			t.Fatalf("header %q: fresh root should have no parent, got %v", hdr, span.parent)
		}
	}
}

func TestStartRequestContinuesTrace(t *testing.T) {
	tr := New("test", 0, 0) // rate 0: only the inherited decision can record
	hdr := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	_, span := tr.StartRequest(context.Background(), "req", hdr)
	if span == nil {
		t.Fatal("sampled traceparent must be recorded even at rate 0")
	}
	if got := span.TraceID().String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID = %s, want continued ID", got)
	}
	if got := span.parent.String(); got != "00f067aa0ba902b7" {
		t.Fatalf("parent = %s, want caller's span ID", got)
	}
	if !span.Sampled() {
		t.Fatal("continued span must inherit the sampled flag")
	}

	// Unsampled flag, rate 0, no slow threshold: nothing to record.
	if _, span := tr.StartRequest(context.Background(), "req", strings.TrimSuffix(hdr, "01")+"00"); span != nil {
		t.Fatal("unsampled traceparent at rate 0 must not be recorded")
	}
}

func TestUnsampledPathIsFree(t *testing.T) {
	tr := New("test", 0, 0)
	ctx, span := tr.StartRequest(context.Background(), "req", "")
	if span != nil {
		t.Fatal("rate 0 without slow threshold must return nil span")
	}
	ctx2, child := StartSpan(ctx, "child")
	if child != nil || ctx2 != ctx {
		t.Fatal("StartSpan on unrecorded context must be a no-op")
	}
	// The nil span's full method set must be safe.
	child.SetAttr("k", "v")
	child.Annotate("note %d", 1)
	child.End()
	if !child.TraceID().IsZero() || !child.SpanID().IsZero() || child.Sampled() {
		t.Fatal("nil span accessors must return zero values")
	}
	if got := LogAttrs(ctx); got != nil {
		t.Fatalf("LogAttrs on unrecorded context = %v, want nil", got)
	}
}

func TestSpanTreeAndCommit(t *testing.T) {
	tr := New("test", 1, 0)
	ctx, root := tr.StartRequest(context.Background(), "req", "")
	ctx2, child := StartSpan(ctx, "engine.observe_batch")
	_, grandchild := StartSpan(ctx2, "wal.append")
	if child.parent != root.id || grandchild.parent != child.id {
		t.Fatal("parent links broken")
	}
	if child.TraceID() != root.TraceID() || grandchild.TraceID() != root.TraceID() {
		t.Fatal("children must share the root's trace ID")
	}
	grandchild.End()
	child.End()
	if got := len(tr.ring.snapshot()); got != 0 {
		t.Fatalf("ring has %d traces before root end, want 0", got)
	}
	root.End()
	got := tr.ring.byID(root.TraceID())
	if len(got) != 1 || len(got[0].spans) != 3 {
		t.Fatalf("committed trace: got %d entries, want 1 with 3 spans", len(got))
	}
}

func TestSlowThresholdForcesCommit(t *testing.T) {
	tr := New("test", 0, time.Nanosecond)
	ctx, span := tr.StartRequest(context.Background(), "req", "")
	if span == nil {
		t.Fatal("slow threshold must record unsampled requests")
	}
	if span.Sampled() {
		t.Fatal("slow-only recording must not claim the sampled flag")
	}
	_ = ctx
	time.Sleep(time.Millisecond)
	span.End()
	if len(tr.ring.byID(span.TraceID())) != 1 {
		t.Fatal("root slower than threshold must be committed")
	}

	// Fast request under a high threshold: recorded but dropped at End.
	tr2 := New("test", 0, time.Hour)
	_, fast := tr2.StartRequest(context.Background(), "req", "")
	fast.End()
	if got := len(tr2.ring.snapshot()); got != 0 {
		t.Fatalf("fast unsampled request committed %d traces, want 0", got)
	}
}

func TestInject(t *testing.T) {
	tr := New("test", 1, 0)
	ctx, span := tr.StartRequest(context.Background(), "req", "")
	h := http.Header{}
	Inject(ctx, h)
	tid, sid, sampled, ok := parseTraceparent(h.Get(Header))
	if !ok || tid != span.TraceID() || sid != span.SpanID() || !sampled {
		t.Fatalf("Inject produced %q", h.Get(Header))
	}
	// Unrecorded context: no header.
	h2 := http.Header{}
	Inject(context.Background(), h2)
	if h2.Get(Header) != "" {
		t.Fatal("Inject on unrecorded context must not set the header")
	}
}

func TestRingEviction(t *testing.T) {
	r := newRing(4)
	tracer := New("test", 1, 0)
	for i := 0; i < 10; i++ {
		tr := tracer.newTrace(NewTraceID(), true)
		tr.newSpan(fmt.Sprintf("t%d", i), SpanID{}, true)
		r.commit(tr)
	}
	got := r.snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	// Newest first: t9 t8 t7 t6.
	for i, tr := range got {
		if want := fmt.Sprintf("t%d", 9-i); tr.spans[0].name != want {
			t.Fatalf("snapshot[%d] = %s, want %s", i, tr.spans[0].name, want)
		}
	}
}

func TestRingConcurrentWriters(t *testing.T) {
	const (
		writers   = 8
		perWriter = 200
		capacity  = 32
	)
	r := newRing(capacity)
	tracer := New("test", 1, 0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr := tracer.newTrace(NewTraceID(), true)
				tr.newSpan("concurrent", SpanID{}, true)
				r.commit(tr)
				// Readers race the writers on purpose.
				if i%16 == 0 {
					r.snapshot()
				}
			}
		}()
	}
	wg.Wait()
	got := r.snapshot()
	if len(got) != capacity {
		t.Fatalf("ring holds %d traces after %d commits, want %d", len(got), writers*perWriter, capacity)
	}
	// Eviction order invariant: newest-first by commit sequence, and the
	// retained traces are exactly the last `capacity` commits.
	total := uint64(writers * perWriter)
	for i, tr := range got {
		if tr.seq != total-1-uint64(i) {
			t.Fatalf("snapshot[%d].seq = %d, want %d", i, tr.seq, total-1-uint64(i))
		}
	}
}

func TestDebugHandlers(t *testing.T) {
	tracer := New("test", 1, 0)
	ctx, root := tracer.StartRequest(context.Background(), "POST /observe_batch", "")
	_, child := StartSpan(ctx, "engine.observe_batch")
	child.SetAttr("records", 42)
	child.Annotate("barrier drained")
	child.End()
	root.End()

	mux := http.NewServeMux()
	tracer.RegisterDebug(mux)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", rec.Code)
	}
	var list []traceSummaryJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Spans != 2 || list[0].Root != "POST /observe_batch" {
		t.Fatalf("listing = %+v", list)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+root.TraceID().String(), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces/{id} = %d: %s", rec.Code, rec.Body)
	}
	var detail struct {
		TraceID string     `json:"trace_id"`
		Spans   []spanJSON `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if len(detail.Spans) != 2 {
		t.Fatalf("detail has %d spans, want 2", len(detail.Spans))
	}
	if detail.Spans[1].ParentID != root.SpanID().String() {
		t.Fatalf("child parent_id = %s, want root %s", detail.Spans[1].ParentID, root.SpanID())
	}
	if detail.Spans[1].Attrs["records"] != float64(42) || len(detail.Spans[1].Notes) != 1 {
		t.Fatalf("child attrs/notes = %+v", detail.Spans[1])
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+NewTraceID().String(), nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/nothex", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad trace id = %d, want 400", rec.Code)
	}
}

func TestMiddlewareContinuesAndRecords(t *testing.T) {
	tracer := New("test", 0, 0)
	var sawSpan *Span
	h := tracer.Middleware("POST /observe_batch", func(w http.ResponseWriter, r *http.Request) {
		sawSpan = FromContext(r.Context())
		w.WriteHeader(http.StatusAccepted)
	})

	// Sampled traceparent: handler sees the span; trace commits on return.
	req := httptest.NewRequest("POST", "/observe_batch", nil)
	req.Header.Set(Header, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	h(httptest.NewRecorder(), req)
	if sawSpan == nil {
		t.Fatal("handler did not see the request span")
	}
	entries := tracer.ring.byID(sawSpan.TraceID())
	if len(entries) != 1 {
		t.Fatalf("trace not committed: %d entries", len(entries))
	}
	var status any
	for _, a := range entries[0].spans[0].attrs {
		if a.Key == "http.status" {
			status = a.Value
		}
	}
	if status != http.StatusAccepted {
		t.Fatalf("http.status attr = %v, want 202", status)
	}

	// No header at rate 0: handler runs without a span, nothing recorded.
	sawSpan = nil
	h(httptest.NewRecorder(), httptest.NewRequest("POST", "/observe_batch", nil))
	if sawSpan != nil {
		t.Fatal("unsampled request should not carry a span")
	}
}

func TestSetupSlogFormats(t *testing.T) {
	var buf strings.Builder
	if err := setupSlog(&buf, "json", "hotpathsd"); err != nil {
		t.Fatal(err)
	}
	if err := setupSlog(&buf, "text", "hotpathsd"); err != nil {
		t.Fatal(err)
	}
	if err := setupSlog(&buf, "", "hotpathsd"); err != nil {
		t.Fatal(err)
	}
	if err := setupSlog(&buf, "yaml", "hotpathsd"); err == nil {
		t.Fatal("unknown format must error")
	}
}

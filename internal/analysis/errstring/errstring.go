// Package errstring defines an analyzer that forbids classifying errors
// by their rendered text.
//
// # Contract
//
// Errors cross package boundaries as typed values, never as formatted
// strings. Callers that need to branch on an error classify it with
// errors.Is / errors.As against a sentinel or typed error; they never
// substring-match err.Error(). Matching text is how the PR 7 gateway bug
// happened: writeErrStatus matched "upstream status 4" inside formatted
// strings, so a record payload containing that text — or an upstream
// message wrapped one level deeper — misclassified the whole response.
// The fix gave readError a typed *upstreamError and classified with
// errors.As; this analyzer keeps that class of bug out.
//
// The same reasoning covers the legacy os.IsNotExist / os.IsExist /
// os.IsPermission / os.IsTimeout predicates: they predate error wrapping
// and test the error's concrete value without unwrapping, so any
// fmt.Errorf("...: %w", err) wrapper defeats them. Use
// errors.Is(err, fs.ErrNotExist) and friends instead.
//
// Flagged:
//   - strings.Contains / HasPrefix / HasSuffix / EqualFold / Index /
//     Count with any argument derived from err.Error()
//   - == / != comparisons where either side is err.Error()
//   - switch err.Error() { ... }
//   - os.IsNotExist, os.IsExist, os.IsPermission, os.IsTimeout
package errstring

import (
	"go/ast"
	"go/token"

	"hotpaths/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "errstring",
	Doc:  "forbid classifying errors by their rendered text; require errors.Is/errors.As",
	Run:  run,
}

// stringsMatchers are the strings-package predicates that, applied to
// err.Error(), amount to substring classification.
var stringsMatchers = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"EqualFold": true,
	"Index":     true,
	"Count":     true,
}

// legacyPredicates maps the pre-wrapping os predicates to their modern
// replacement, for the diagnostic text.
var legacyPredicates = map[string]string{
	"IsNotExist":   "errors.Is(err, fs.ErrNotExist)",
	"IsExist":      "errors.Is(err, fs.ErrExist)",
	"IsPermission": "errors.Is(err, fs.ErrPermission)",
	"IsTimeout":    "errors.Is(err, os.ErrDeadlineExceeded) or a net.Error check",
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					if framework.IsErrorErrorCall(pass.TypesInfo, n.X) || framework.IsErrorErrorCall(pass.TypesInfo, n.Y) {
						pass.Reportf(n.Pos(), "comparing err.Error() text classifies errors by their message; use errors.Is or errors.As on a typed error")
					}
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && framework.IsErrorErrorCall(pass.TypesInfo, n.Tag) {
					pass.Reportf(n.Tag.Pos(), "switching on err.Error() text classifies errors by their message; use errors.Is or errors.As on a typed error")
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := framework.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if stringsMatchers[fn.Name()] && framework.IsPkgFunc(fn, "strings", fn.Name()) {
		for _, arg := range call.Args {
			if containsErrorCall(pass, arg) {
				pass.Reportf(call.Pos(), "strings.%s on err.Error() matches error text, which breaks when messages are wrapped or reworded; use errors.Is or errors.As on a typed error", fn.Name())
				return
			}
		}
	}
	if repl, ok := legacyPredicates[fn.Name()]; ok && framework.IsPkgFunc(fn, "os", fn.Name()) {
		pass.Reportf(call.Pos(), "os.%s does not unwrap wrapped errors; use %s", fn.Name(), repl)
	}
}

// containsErrorCall reports whether any subexpression of e is an
// err.Error() call — catching strings.Contains(err.Error(), x),
// strings.Contains(strings.ToLower(err.Error()), x), and similar.
func containsErrorCall(pass *framework.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if expr, ok := n.(ast.Expr); ok && framework.IsErrorErrorCall(pass.TypesInfo, expr) {
			found = true
			return false
		}
		return true
	})
	return found
}
